// Batch-vs-scalar bitwise pins for the batch inference engine.
//
// Every batch kernel (SVM blocked GEMV margin sweep, neural-net chunked
// fused forward pass, flattened-forest traversal) must reproduce the scalar
// per-row path bit for bit — the selectors and golden-baseline replay rely
// on it. These tests pin exact equality (EXPECT_EQ on doubles, no
// tolerance) across chunk boundaries, degenerate row sets, and thread
// counts 1 and 4 through the core Learner fan-out.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "core/learner.h"
#include "ml/decision_tree.h"
#include "ml/linear_svm.h"
#include "ml/neural_net.h"
#include "ml/random_forest.h"
#include "ml/serialization.h"
#include "ml/tree_flat.h"
#include "parallel/pool.h"
#include "util/rng.h"

namespace alem {
namespace {

// Two noisy clusters plus a sprinkle of exact zeros so tree splits and SVM
// blocking-style sparsity both get exercised.
void MakeBlobs(size_t n, size_t dims, uint64_t seed, FeatureMatrix* features,
               std::vector<int>* labels) {
  Rng rng(seed);
  *features = FeatureMatrix(n, dims);
  labels->resize(n);
  for (size_t i = 0; i < n; ++i) {
    const bool positive = i % 2 == 0;
    const double center = positive ? 0.8 : 0.2;
    for (size_t d = 0; d < dims; ++d) {
      const float v =
          static_cast<float>(center + rng.NextGaussian() * 0.15);
      features->Set(i, d, rng.NextBernoulli(0.1) ? 0.0f : v);
    }
    (*labels)[i] = positive ? 1 : 0;
  }
}

std::vector<size_t> AllRows(size_t n) {
  std::vector<size_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0u);
  return rows;
}

// Row counts straddling the kernels' internal chunk sizes: the SVM blocks
// by 8, the NN chunks by 32, the core fan-out grains by 256.
const size_t kEdgeSizes[] = {0, 1, 7, 8, 9, 31, 32, 33, 63, 64, 65, 257};

// ---- LinearSvm ----

TEST(MlBatchTest, SvmMarginBatchBitwiseEqualsScalar) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeBlobs(300, 6, 1, &features, &labels);
  LinearSvm svm(LinearSvmConfig{});
  svm.Fit(features, labels);

  const std::vector<size_t> rows = AllRows(features.rows());
  std::vector<double> batch(rows.size());
  svm.MarginBatch(features, rows, batch.data());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(batch[i], svm.Margin(features.Row(rows[i]))) << "row " << i;
  }
}

TEST(MlBatchTest, SvmBatchEdgeRowCounts) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeBlobs(300, 6, 2, &features, &labels);
  LinearSvm svm(LinearSvmConfig{});
  svm.Fit(features, labels);

  for (const size_t count : kEdgeSizes) {
    // Non-contiguous rows: stride-3 wraparound through the pool.
    std::vector<size_t> rows(count);
    for (size_t i = 0; i < count; ++i) rows[i] = (i * 3) % features.rows();
    std::vector<double> margins(count);
    std::vector<int> predictions(count);
    svm.MarginBatch(features, rows, margins.data());
    svm.PredictBatch(features, rows, predictions.data());
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ(margins[i], svm.Margin(features.Row(rows[i])));
      EXPECT_EQ(predictions[i], svm.Predict(features.Row(rows[i])));
    }
  }
}

// ---- NeuralNetwork ----

TEST(MlBatchTest, NeuralNetProbaBatchBitwiseAcrossChunkBoundaries) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeBlobs(200, 4, 3, &features, &labels);
  NeuralNetConfig config;
  config.epochs = 10;
  NeuralNetwork net(config);
  net.Fit(features, labels);

  for (const size_t count : kEdgeSizes) {
    std::vector<size_t> rows(count);
    for (size_t i = 0; i < count; ++i) rows[i] = (i * 7) % features.rows();
    std::vector<double> margins(count);
    std::vector<double> probabilities(count);
    std::vector<int> predictions(count);
    net.MarginBatch(features, rows, margins.data());
    net.ProbaBatch(features, rows, probabilities.data());
    net.PredictBatch(features, rows, predictions.data());
    for (size_t i = 0; i < count; ++i) {
      const float* x = features.Row(rows[i]);
      EXPECT_EQ(margins[i], net.Margin(x)) << "chunk edge " << count;
      EXPECT_EQ(probabilities[i], net.PredictProbability(x));
      EXPECT_EQ(predictions[i], net.Predict(x));
    }
  }
}

TEST(MlBatchTest, NeuralNetBatchNormPathBitwise) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeBlobs(200, 4, 4, &features, &labels);
  for (const bool use_batch_norm : {false, true}) {
    NeuralNetConfig config;
    config.epochs = 10;
    config.use_batch_norm = use_batch_norm;
    NeuralNetwork net(config);
    net.Fit(features, labels);
    const std::vector<size_t> rows = AllRows(features.rows());
    std::vector<double> batch(rows.size());
    net.MarginBatch(features, rows, batch.data());
    for (size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(batch[i], net.Margin(features.Row(rows[i])))
          << "batch_norm=" << use_batch_norm << " row " << i;
    }
  }
}

// ---- Decision tree flattening ----

TEST(MlBatchTest, FlatTreeEqualsPointerTree) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeBlobs(400, 5, 5, &features, &labels);
  DecisionTree tree(DecisionTreeConfig{});
  tree.Fit(features, labels);

  std::vector<FlatNode> nodes;
  const int32_t root = tree.FlattenInto(&nodes);
  EXPECT_EQ(nodes.size(), tree.num_nodes());
  for (size_t i = 0; i < features.rows(); ++i) {
    EXPECT_EQ(FlatPredict(nodes.data(), root, features.Row(i)),
              tree.Predict(features.Row(i)))
        << "row " << i;
  }
}

TEST(MlBatchTest, FlatForestSharesOneNodeArray) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeBlobs(200, 5, 6, &features, &labels);
  RandomForestConfig config;
  config.num_trees = 5;
  RandomForest forest(config);
  forest.Fit(features, labels);

  const std::vector<size_t> rows = AllRows(features.rows());
  std::vector<int> votes(rows.size());
  std::vector<double> fractions(rows.size());
  std::vector<int> predictions(rows.size());
  forest.VotesBatch(features, rows, votes.data());
  forest.PositiveFractionBatch(features, rows, fractions.data());
  forest.PredictBatch(features, rows, predictions.data());
  for (size_t i = 0; i < rows.size(); ++i) {
    const float* x = features.Row(rows[i]);
    EXPECT_EQ(fractions[i], forest.PositiveFraction(x)) << "row " << i;
    EXPECT_EQ(predictions[i], forest.Predict(x)) << "row " << i;
    EXPECT_EQ(static_cast<double>(votes[i]) / config.num_trees, fractions[i]);
  }
}

// ---- Core Learner fan-out: bitwise at 1 and 4 threads ----

class MlBatchThreadsTest : public ::testing::Test {
 protected:
  void TearDown() override { parallel::SetNumThreads(1); }
};

TEST_F(MlBatchThreadsTest, LearnerBatchBitwiseAtOneAndFourThreads) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeBlobs(600, 6, 7, &features, &labels);

  SvmLearner svm;
  NeuralNetConfig nn_config;
  nn_config.epochs = 10;
  NeuralNetLearner net(nn_config);
  RandomForestConfig forest_config;
  forest_config.num_trees = 5;
  ForestLearner forest(forest_config);
  parallel::SetNumThreads(1);
  svm.Fit(features, labels);
  net.Fit(features, labels);
  forest.Fit(features, labels);

  const std::vector<size_t> rows = AllRows(features.rows());
  for (const Learner* learner :
       {static_cast<const Learner*>(&svm), static_cast<const Learner*>(&net),
        static_cast<const Learner*>(&forest)}) {
    // Scalar reference, serial.
    std::vector<int> scalar(rows.size());
    std::vector<double> scalar_proba(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      scalar[i] = learner->Predict(features.Row(rows[i]));
    }

    for (const int threads : {1, 4}) {
      parallel::SetNumThreads(threads);
      std::vector<int> batch(rows.size());
      std::vector<double> proba(rows.size());
      learner->PredictBatch(features, rows, batch.data());
      learner->ProbaBatch(features, rows, proba.data());
      EXPECT_EQ(batch, scalar) << learner->name() << " threads=" << threads;
      EXPECT_EQ(learner->PredictAll(features), scalar)
          << learner->name() << " threads=" << threads;
      if (threads == 1) {
        scalar_proba = proba;
      } else {
        EXPECT_EQ(proba, scalar_proba)
            << learner->name() << " proba threads=" << threads;
      }
    }
    parallel::SetNumThreads(1);
  }
}

TEST_F(MlBatchThreadsTest, MarginBatchBitwiseAtOneAndFourThreads) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeBlobs(600, 6, 8, &features, &labels);
  SvmLearner svm;
  parallel::SetNumThreads(1);
  svm.Fit(features, labels);

  const std::vector<size_t> rows = AllRows(features.rows());
  std::vector<double> scalar(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    scalar[i] = svm.Margin(features.Row(rows[i]));
  }
  for (const int threads : {1, 4}) {
    parallel::SetNumThreads(threads);
    std::vector<double> batch(rows.size());
    svm.MarginBatch(features, rows, batch.data());
    EXPECT_EQ(batch, scalar) << "threads=" << threads;
  }
}

TEST_F(MlBatchThreadsTest, ForestProbaBatchIsPositiveFraction) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeBlobs(300, 5, 9, &features, &labels);
  RandomForestConfig config;
  config.num_trees = 7;
  ForestLearner forest(config);
  parallel::SetNumThreads(1);
  forest.Fit(features, labels);

  const std::vector<size_t> rows = AllRows(features.rows());
  for (const int threads : {1, 4}) {
    parallel::SetNumThreads(threads);
    std::vector<double> proba(rows.size());
    forest.ProbaBatch(features, rows, proba.data());
    for (size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(proba[i], forest.PositiveFraction(features.Row(rows[i])))
          << "threads=" << threads << " row " << i;
    }
  }
}

TEST(MlBatchTest, EmptyRowSetIsANoOp) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeBlobs(50, 4, 10, &features, &labels);
  SvmLearner svm;
  svm.Fit(features, labels);
  const std::vector<size_t> rows;
  svm.PredictBatch(features, rows, nullptr);
  svm.ProbaBatch(features, rows, nullptr);
  svm.MarginBatch(features, rows, nullptr);
}

TEST(MlBatchTest, SerializedForestKeepsBatchPath) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeBlobs(200, 5, 11, &features, &labels);
  RandomForestConfig config;
  config.num_trees = 3;
  RandomForest forest(config);
  forest.Fit(features, labels);

  RandomForest restored;
  ASSERT_TRUE(DeserializeForest(SerializeForest(forest), &restored));
  const std::vector<size_t> rows = AllRows(features.rows());
  std::vector<double> original(rows.size());
  std::vector<double> roundtrip(rows.size());
  forest.PositiveFractionBatch(features, rows, original.data());
  restored.PositiveFractionBatch(features, rows, roundtrip.data());
  EXPECT_EQ(original, roundtrip);
}

}  // namespace
}  // namespace alem
