// Tests for the framework extensions beyond the paper's core grid:
// IWAL and density-weighted selectors, NN blocking dimensions, majority-vote
// label correction, and plateau-based termination.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/active_loop.h"
#include "core/evaluator.h"
#include "core/learner.h"
#include "core/oracle.h"
#include "core/pool.h"
#include "core/selector.h"
#include "util/rng.h"

namespace alem {
namespace {

ActivePool MakeLinePool(size_t n) {
  FeatureMatrix features(n, 1);
  for (size_t i = 0; i < n; ++i) {
    features.Set(i, 0, static_cast<float>(i) / static_cast<float>(n - 1));
  }
  return ActivePool(std::move(features));
}

void LabelEndpoints(ActivePool& pool, size_t n) {
  for (size_t i = 0; i < 5; ++i) {
    pool.AddLabel(i, 0);
    pool.AddLabel(n - 1 - i, 1);
  }
}

// ---- IwalSelector ----

TEST(IwalSelectorTest, CompatibleWithEveryLearner) {
  IwalSelector selector(3, 0.1, 1);
  SvmLearner svm;
  ForestLearner forest;
  RuleLearner rules;
  EXPECT_TRUE(selector.CompatibleWith(svm));
  EXPECT_TRUE(selector.CompatibleWith(forest));
  EXPECT_TRUE(selector.CompatibleWith(rules));
}

TEST(IwalSelectorTest, FillsBatchWithoutDuplicates) {
  ActivePool pool = MakeLinePool(100);
  LabelEndpoints(pool, 100);
  SvmLearner learner{LinearSvmConfig{}};
  learner.Fit(pool.ActiveLabeledFeatures(), pool.ActiveLabeledLabels());
  IwalSelector selector(3, 0.1, 7);
  SelectionTiming timing;
  const std::vector<size_t> batch = selector.Select(learner, pool, 10,
                                                    &timing);
  EXPECT_EQ(batch.size(), 10u);
  std::set<size_t> unique(batch.begin(), batch.end());
  EXPECT_EQ(unique.size(), batch.size());
  EXPECT_GT(timing.committee_seconds, 0.0);
  for (const size_t row : batch) {
    EXPECT_FALSE(pool.IsLabeled(row));
  }
}

TEST(IwalSelectorTest, RunsInsideTheLoop) {
  Rng rng(3);
  FeatureMatrix features(400, 2);
  std::vector<int> truth(400);
  for (size_t i = 0; i < 400; ++i) {
    const bool positive = i % 8 == 0;
    const double center = positive ? 0.75 : 0.3;
    features.Set(i, 0, static_cast<float>(center + rng.NextGaussian() * 0.07));
    features.Set(i, 1, static_cast<float>(center + rng.NextGaussian() * 0.07));
    truth[i] = positive ? 1 : 0;
  }
  ActivePool pool(features);
  PerfectOracle oracle(truth);
  ProgressiveEvaluator evaluator(truth);
  SvmLearner learner{LinearSvmConfig{}};
  IwalSelector selector(3, 0.1, 5);
  ActiveLearningConfig config;
  config.max_labels = 150;
  ActiveLearningLoop loop(learner, selector, oracle, evaluator, config);
  const auto curve = loop.Run(pool);
  EXPECT_GT(curve.back().metrics.f1, 0.8);
}

// ---- DensityWeightedSelector ----

TEST(DensityWeightedSelectorTest, RequiresMarginLearner) {
  DensityWeightedSelector selector(1.0, 1);
  SvmLearner svm;
  ForestLearner forest;
  EXPECT_TRUE(selector.CompatibleWith(svm));
  EXPECT_FALSE(selector.CompatibleWith(forest));
}

TEST(DensityWeightedSelectorTest, PrefersDenseAmbiguousRegions) {
  // Two ambiguous candidates at the same margin: one in a dense cluster,
  // one isolated outlier. The dense one must be picked first.
  FeatureMatrix features(42, 2);
  // Rows 0..39: dense cluster near (0.5, 0.5) — also near the boundary.
  Rng rng(11);
  for (size_t i = 0; i < 40; ++i) {
    features.Set(i, 0, static_cast<float>(0.5 + rng.NextGaussian() * 0.01));
    features.Set(i, 1, static_cast<float>(0.5 + rng.NextGaussian() * 0.01));
  }
  // Row 40: outlier, same distance from the boundary but far away in space.
  features.Set(40, 0, 0.5f);
  features.Set(40, 1, 0.0f);
  // Row 41: clearly positive anchor.
  features.Set(41, 0, 0.9f);
  features.Set(41, 1, 0.9f);
  ActivePool pool(std::move(features));
  pool.AddLabel(41, 1);
  pool.AddLabel(40, 0);  // Label the outlier so it can't be selected.

  // Fake margin learner: margin = x0 - 0.5 (all cluster rows ~equally
  // ambiguous). Use a trained SVM on the two labeled rows as a stand-in.
  SvmLearner learner{LinearSvmConfig{}};
  learner.Fit(pool.ActiveLabeledFeatures(), pool.ActiveLabeledLabels());

  DensityWeightedSelector selector(1.0, 3);
  const std::vector<size_t> batch = selector.Select(learner, pool, 5, nullptr);
  ASSERT_EQ(batch.size(), 5u);
  for (const size_t row : batch) {
    EXPECT_LT(row, 40u);  // All picks from the dense cluster.
  }
}

// ---- NN blocking dimensions ----

TEST(NnBlockingTest, ImportanceIdentifiesInformativeInput) {
  // Feature 1 carries all signal; feature 0 is noise.
  Rng rng(5);
  FeatureMatrix features(300, 2);
  std::vector<int> labels(300);
  for (size_t i = 0; i < 300; ++i) {
    const bool positive = i % 2 == 0;
    features.Set(i, 0, static_cast<float>(rng.NextDouble() * 0.05));
    features.Set(i, 1, positive ? 0.9f : 0.1f);
    labels[i] = positive ? 1 : 0;
  }
  NeuralNetLearner learner{NeuralNetConfig{}};
  learner.Fit(features, labels);
  const std::vector<size_t> blocking = learner.BlockingDimensions(1);
  ASSERT_EQ(blocking.size(), 1u);
  EXPECT_EQ(blocking[0], 1u);
}

TEST(NnBlockingTest, MarginSelectorUsesNnBlocking) {
  Rng rng(6);
  FeatureMatrix features(120, 2);
  std::vector<int> labels;
  for (size_t i = 0; i < 120; ++i) {
    // A third of the rows have a zero signal dimension.
    features.Set(i, 0, i % 3 == 0 ? 0.0f : (i < 60 ? 0.2f : 0.9f));
    features.Set(i, 1, 0.5f);
  }
  ActivePool pool(std::move(features));
  for (size_t i = 0; i < 6; ++i) {
    pool.AddLabel(1 + i, 0);
    pool.AddLabel(119 - i, 1);
  }
  NeuralNetLearner learner{NeuralNetConfig{}};
  learner.Fit(pool.ActiveLabeledFeatures(), pool.ActiveLabeledLabels());

  MarginSelector selector(/*blocking_dims=*/1);
  SelectionTiming timing;
  selector.Select(learner, pool, 5, &timing);
  EXPECT_GT(timing.pruned_examples, 0u);
}

// ---- MajorityVoteOracle ----

TEST(MajorityVoteOracleTest, ReducesEffectiveNoise) {
  const size_t n = 20000;
  std::vector<int> truth(n);
  for (size_t i = 0; i < n; ++i) truth[i] = i % 4 == 0 ? 1 : 0;

  NoisyOracle single(truth, 0.3, 1);
  MajorityVoteOracle voted(truth, 0.3, 5, 1);
  size_t single_flips = 0, voted_flips = 0;
  for (size_t i = 0; i < n; ++i) {
    single_flips += single.Label(i) != truth[i] ? 1 : 0;
    voted_flips += voted.Label(i) != truth[i] ? 1 : 0;
  }
  // Binomial(5, 0.3) majority error ~= 0.163 < 0.3.
  EXPECT_LT(voted_flips, single_flips);
  const double voted_rate = static_cast<double>(voted_flips) / n;
  EXPECT_NEAR(voted_rate, 0.163, 0.02);
}

TEST(MajorityVoteOracleTest, SingleVoterEqualsNoisyOracle) {
  std::vector<int> truth = {1, 0, 1, 1, 0};
  MajorityVoteOracle oracle(truth, 0.0, 1, 1);
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(oracle.Label(i), truth[i]);
  }
}

TEST(MajorityVoteOracleTest, CachesDecisions) {
  std::vector<int> truth(100, 1);
  MajorityVoteOracle oracle(truth, 0.4, 3, 9);
  std::vector<int> first(100);
  for (size_t i = 0; i < 100; ++i) first[i] = oracle.Label(i);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(oracle.Label(i), first[i]);
  }
}

TEST(MajorityVoteOracleTest, EvenVoterCountAborts) {
  EXPECT_DEATH({ MajorityVoteOracle oracle({1}, 0.1, 4, 1); }, "");
}

// ---- Plateau termination ----

TEST(PlateauTerminationTest, StopsWhenPredictionsStabilize) {
  Rng rng(8);
  FeatureMatrix features(500, 2);
  std::vector<int> truth(500);
  for (size_t i = 0; i < 500; ++i) {
    const bool positive = i % 5 == 0;
    const double center = positive ? 0.8 : 0.2;
    features.Set(i, 0, static_cast<float>(center + rng.NextGaussian() * 0.03));
    features.Set(i, 1, static_cast<float>(center + rng.NextGaussian() * 0.03));
    truth[i] = positive ? 1 : 0;
  }
  ActivePool pool(features);
  PerfectOracle oracle(truth);
  ProgressiveEvaluator evaluator(truth);
  SvmLearner learner{LinearSvmConfig{}};
  MarginSelector selector;
  ActiveLearningConfig config;
  config.max_labels = 490;  // Would run ~46 iterations without the plateau.
  config.plateau_window = 3;
  ActiveLearningLoop loop(learner, selector, oracle, evaluator, config);
  const auto curve = loop.Run(pool);
  // An easy separable problem stabilizes long before the budget runs out.
  EXPECT_LT(curve.back().labels_used, 490u);
  // The plateau window requires at least window+1 evaluations.
  EXPECT_GE(curve.size(), 4u);
}

TEST(PlateauTerminationTest, DisabledByDefault) {
  ActiveLearningConfig config;
  EXPECT_EQ(config.plateau_window, 0u);
}

}  // namespace
}  // namespace alem
