// Tests for the observability layer (src/obs/): span nesting, recorder
// exports, metric types, registry snapshots, and the disabled-mode no-op
// guarantees the hot paths rely on.

#include "obs/obs.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "parallel/pool.h"

namespace alem {
namespace obs {
namespace {

// Every test runs with a clean, enabled obs state and leaves the process
// with both subsystems off again (other test binaries' suites assume the
// default-off state).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Global().Clear();
    MetricsRegistry::Global().ResetAll();
    SetTracingEnabled(true);
    SetMetricsEnabled(true);
  }
  void TearDown() override {
    SetTracingEnabled(false);
    SetMetricsEnabled(false);
    TraceRecorder::Global().Clear();
    MetricsRegistry::Global().ResetAll();
  }
};

// ---- Minimal JSON parser -----------------------------------------------
// Just enough JSON to parse the exporter's own output back and verify it
// is well-formed (objects, arrays, strings with escapes, numbers).

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    pos_ = 0;
    if (!ParseValue(out)) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::kString;
      return ParseString(&out->string);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    return ParseNumber(out);
  }
  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char escaped = text_[pos_++];
        switch (escaped) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            pos_ += 4;  // Escaped control char; value irrelevant here.
            out->push_back('?');
            break;
          }
          default: return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;
  }
  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::kNumber;
    out->number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }
  bool ParseArray(JsonValue* out) {
    if (!Consume('[')) return false;
    out->kind = JsonValue::kArray;
    SkipSpace();
    if (Consume(']')) return true;
    while (true) {
      JsonValue element;
      if (!ParseValue(&element)) return false;
      out->array.push_back(std::move(element));
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }
  bool ParseObject(JsonValue* out) {
    if (!Consume('{')) return false;
    out->kind = JsonValue::kObject;
    SkipSpace();
    if (Consume('}')) return true;
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---- Spans -------------------------------------------------------------

TEST_F(ObsTest, SpansRecordNestingDepth) {
  {
    ObsSpan outer("outer", "test");
    {
      ObsSpan middle("middle", "test");
      ObsSpan inner("inner", "test", "leaf");
    }
    ObsSpan sibling("sibling", "test");
  }
  const std::vector<SpanRecord> spans = TraceRecorder::Global().Snapshot();
  ASSERT_EQ(spans.size(), 4u);

  std::map<std::string, SpanRecord> by_name;
  for (const SpanRecord& span : spans) by_name[span.name] = span;
  EXPECT_EQ(by_name.at("outer").depth, 0);
  EXPECT_EQ(by_name.at("middle").depth, 1);
  EXPECT_EQ(by_name.at("inner").depth, 2);
  EXPECT_EQ(by_name.at("sibling").depth, 1);
  EXPECT_EQ(by_name.at("inner").detail, "leaf");
  EXPECT_EQ(by_name.at("outer").category, "test");

  // Children fall inside the parent's [start, start + duration] window.
  const SpanRecord& outer = by_name.at("outer");
  const SpanRecord& inner = by_name.at("inner");
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.duration_ns,
            outer.start_ns + outer.duration_ns);
}

TEST_F(ObsTest, CloseReturnsRecordedDurationAndIsIdempotent) {
  ObsSpan span("timed", "test");
  const double first = span.Close();
  const double second = span.Close();
  EXPECT_GE(first, 0.0);
  EXPECT_EQ(first, second);  // Idempotent, no re-measurement.

  const std::vector<SpanRecord> spans = TraceRecorder::Global().Snapshot();
  ASSERT_EQ(spans.size(), 1u);  // Destructor must not re-record.
  EXPECT_DOUBLE_EQ(static_cast<double>(spans[0].duration_ns) / 1e9, first);
}

TEST_F(ObsTest, SpansMeasureButDoNotRecordWhenDisabled) {
  SetTracingEnabled(false);
  ObsSpan span("ghost");
  const double elapsed = span.Close();
  EXPECT_GE(elapsed, 0.0);  // Still measures (stats are derived from spans).
  EXPECT_EQ(TraceRecorder::Global().size(), 0u);
}

TEST_F(ObsTest, ConcurrentSpansAndCountersSurviveSmokeTest) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 50;
  Counter& counter = MetricsRegistry::Global().GetCounter("test.smoke");

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ObsSpan outer("t.outer", "test");
        ObsSpan inner("t.inner", "test");
        counter.Increment();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(counter.value(),
            static_cast<uint64_t>(kThreads) * kSpansPerThread);
  const std::vector<SpanRecord> spans = TraceRecorder::Global().Snapshot();
  EXPECT_EQ(spans.size(),
            static_cast<size_t>(kThreads) * kSpansPerThread * 2);
  for (const SpanRecord& span : spans) {
    // Depth tracking must stay per-thread: only 0 (outer) or 1 (inner).
    if (span.name == "t.outer") {
      EXPECT_EQ(span.depth, 0);
    } else {
      EXPECT_EQ(span.depth, 1);
    }
  }
}

TEST_F(ObsTest, ParallelForStressKeepsTracesWellFormed) {
  // ~10k spans per worker pushed through the pool: 40k elements, two nested
  // user spans each, plus one "parallel.chunk" span per chunk and the
  // submitter's aggregate span. The trace must stay parseable and per-thread
  // nesting must hold under contention.
  const int original_threads = parallel::NumThreads();
  parallel::SetNumThreads(8);

  constexpr size_t kElements = 40000;
  constexpr size_t kGrain = 10;
  std::atomic<size_t> processed{0};
  parallel::ParallelFor(
      0, kElements, kGrain,
      [&](size_t begin, size_t end, size_t) {
        for (size_t i = begin; i < end; ++i) {
          ObsSpan outer("stress.outer", "test");
          ObsSpan inner("stress.inner", "test");
          processed.fetch_add(1, std::memory_order_relaxed);
        }
      },
      "obs.stress");
  parallel::SetNumThreads(original_threads);

  EXPECT_EQ(processed.load(), kElements);
  const std::vector<SpanRecord> spans = TraceRecorder::Global().Snapshot();
  const size_t num_chunks = parallel::NumChunks(0, kElements, kGrain);
  ASSERT_EQ(spans.size(), 2 * kElements + num_chunks + 1);

  size_t aggregate = 0, chunk_spans = 0, outer_spans = 0, inner_spans = 0;
  for (const SpanRecord& span : spans) {
    if (span.name == "obs.stress.parallel") {
      ++aggregate;
      EXPECT_EQ(span.depth, 0);  // Submitter thread, top level.
    } else if (span.name == "parallel.chunk") {
      ++chunk_spans;
      EXPECT_EQ(span.depth, 0);  // Workers have their own depth counters.
      EXPECT_EQ(span.detail, "obs.stress");
    } else if (span.name == "stress.outer") {
      ++outer_spans;
      EXPECT_EQ(span.depth, 1);  // Nested inside its chunk span.
    } else {
      ++inner_spans;
      EXPECT_EQ(span.depth, 2);  // Per-thread nesting holds under load.
    }
  }
  EXPECT_EQ(aggregate, 1u);
  EXPECT_EQ(chunk_spans, num_chunks);
  EXPECT_EQ(outer_spans, kElements);
  EXPECT_EQ(inner_spans, kElements);

  // The full 84k-span trace still exports as valid Chrome-trace JSON.
  const std::string json = TraceRecorder::Global().ToChromeTraceJson();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root));
  ASSERT_EQ(root.kind, JsonValue::kObject);
  EXPECT_EQ(root.object.at("traceEvents").array.size(), spans.size());
}

TEST_F(ObsTest, ChromeTraceJsonParsesBack) {
  {
    ObsSpan outer("phase \"quoted\"\n", "cat");
    ObsSpan inner("child", "cat", "with\\backslash");
  }
  const std::string json = TraceRecorder::Global().ToChromeTraceJson();

  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json;
  ASSERT_EQ(root.kind, JsonValue::kObject);
  ASSERT_TRUE(root.object.count("traceEvents"));
  const JsonValue& events = root.object.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::kArray);
  ASSERT_EQ(events.array.size(), 2u);

  for (const JsonValue& event : events.array) {
    ASSERT_EQ(event.kind, JsonValue::kObject);
    EXPECT_EQ(event.object.at("ph").string, "X");
    EXPECT_EQ(event.object.at("pid").number, 1.0);
    EXPECT_GE(event.object.at("dur").number, 0.0);
    EXPECT_GE(event.object.at("ts").number, 0.0);
  }
  // Escaping round-trips: the quoted/newlined name survives parsing.
  bool found_quoted = false;
  for (const JsonValue& event : events.array) {
    if (event.object.at("name").string == "phase \"quoted\"\n") {
      found_quoted = true;
    }
  }
  EXPECT_TRUE(found_quoted);
}

TEST_F(ObsTest, JsonlEmitsOneObjectPerLine) {
  {
    ObsSpan a("a");
    ObsSpan b("b");
  }
  const std::string jsonl = TraceRecorder::Global().ToJsonl();
  size_t lines = 0;
  size_t start = 0;
  while (start < jsonl.size()) {
    size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    const std::string line = jsonl.substr(start, end - start);
    if (!line.empty()) {
      ++lines;
      JsonValue value;
      EXPECT_TRUE(JsonParser(line).Parse(&value)) << line;
      EXPECT_EQ(value.kind, JsonValue::kObject);
      EXPECT_TRUE(value.object.count("name"));
      EXPECT_TRUE(value.object.count("dur_us"));
    }
    start = end + 1;
  }
  EXPECT_EQ(lines, 2u);
}

// ---- Metrics -----------------------------------------------------------

TEST_F(ObsTest, CounterAndGaugeBasics) {
  Counter& counter = MetricsRegistry::Global().GetCounter("test.counter");
  counter.Add(3);
  counter.Increment();
  EXPECT_EQ(counter.value(), 4u);

  // Same name returns the same instance.
  EXPECT_EQ(&counter, &MetricsRegistry::Global().GetCounter("test.counter"));

  Gauge& gauge = MetricsRegistry::Global().GetGauge("test.gauge");
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.Set(1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.0);  // Last write wins.
}

TEST_F(ObsTest, MetricsAreNoOpsWhenDisabled) {
  Counter& counter = MetricsRegistry::Global().GetCounter("test.off");
  Gauge& gauge = MetricsRegistry::Global().GetGauge("test.off_gauge");
  Histogram& histogram =
      MetricsRegistry::Global().GetHistogram("test.off_hist", {1.0});
  SetMetricsEnabled(false);
  counter.Add(10);
  gauge.Set(9.0);
  histogram.Observe(0.5);
  CountPredictCall();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  EXPECT_EQ(histogram.Snapshot().count, 0u);

  SetMetricsEnabled(true);
  counter.Add(10);
  EXPECT_EQ(counter.value(), 10u);
}

TEST_F(ObsTest, HistogramBucketBoundariesUseLeSemantics) {
  Histogram& histogram = MetricsRegistry::Global().GetHistogram(
      "test.hist", {0.1, 1.0, 10.0});

  histogram.Observe(0.05);  // <= 0.1          -> bucket 0
  histogram.Observe(0.1);   // == bound, "le"  -> bucket 0
  histogram.Observe(0.5);   // <= 1.0          -> bucket 1
  histogram.Observe(1.0);   // == bound        -> bucket 1
  histogram.Observe(10.0);  // == last bound   -> bucket 2
  histogram.Observe(50.0);  // above all       -> overflow

  const HistogramSnapshot snapshot = histogram.Snapshot();
  ASSERT_EQ(snapshot.bounds.size(), 3u);
  ASSERT_EQ(snapshot.buckets.size(), 4u);
  EXPECT_EQ(snapshot.buckets[0], 2u);
  EXPECT_EQ(snapshot.buckets[1], 2u);
  EXPECT_EQ(snapshot.buckets[2], 1u);
  EXPECT_EQ(snapshot.buckets[3], 1u);  // Overflow.
  EXPECT_EQ(snapshot.count, 6u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 0.05 + 0.1 + 0.5 + 1.0 + 10.0 + 50.0);
}

TEST_F(ObsTest, SnapshotIncludesPredictCallsAndSorts) {
  MetricsRegistry::Global().GetCounter("test.zzz").Add(1);
  MetricsRegistry::Global().GetCounter("test.aaa").Add(2);
  CountPredictCall();
  CountPredictCall();

  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  uint64_t predict_calls = 0;
  bool saw_aaa = false, saw_zzz_after_aaa = false;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "ml.predict_calls") predict_calls = value;
    if (name == "test.aaa") saw_aaa = true;
    if (name == "test.zzz") saw_zzz_after_aaa = saw_aaa;
  }
  EXPECT_EQ(predict_calls, 2u);
  EXPECT_TRUE(saw_zzz_after_aaa);  // Deterministic (sorted) ordering.
}

TEST_F(ObsTest, ResetAllZeroesEverything) {
  MetricsRegistry::Global().GetCounter("test.c").Add(5);
  MetricsRegistry::Global().GetGauge("test.g").Set(5.0);
  MetricsRegistry::Global().GetHistogram("test.h", {1.0}).Observe(0.5);
  CountPredictCall();

  MetricsRegistry::Global().ResetAll();
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  for (const auto& [name, value] : snapshot.counters) {
    EXPECT_EQ(value, 0u) << name;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    EXPECT_DOUBLE_EQ(value, 0.0) << name;
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    EXPECT_EQ(hist.count, 0u) << name;
  }
}

TEST_F(ObsTest, TextAndCsvDumpsContainEveryMetric) {
  MetricsRegistry::Global().GetCounter("test.dump_counter").Add(7);
  MetricsRegistry::Global().GetGauge("test.dump_gauge").Set(3.5);
  MetricsRegistry::Global()
      .GetHistogram("test.dump_hist", {1.0, 2.0})
      .Observe(1.5);

  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  const std::string text = snapshot.ToText();
  EXPECT_NE(text.find("test.dump_counter"), std::string::npos);
  EXPECT_NE(text.find("test.dump_gauge"), std::string::npos);
  EXPECT_NE(text.find("test.dump_hist"), std::string::npos);

  const std::string csv = snapshot.ToCsv();
  EXPECT_NE(csv.find("counter,test.dump_counter"), std::string::npos);
  EXPECT_NE(csv.find("gauge,test.dump_gauge"), std::string::npos);
  EXPECT_NE(csv.find("histogram,test.dump_hist"), std::string::npos);
  // One row per histogram bucket (2 finite + overflow) plus count and sum.
  size_t hist_rows = 0;
  size_t pos = 0;
  while ((pos = csv.find("histogram,test.dump_hist", pos)) !=
         std::string::npos) {
    ++hist_rows;
    pos += 1;
  }
  EXPECT_GE(hist_rows, 5u);
}

// ---- Latency percentiles -----------------------------------------------

TEST_F(ObsTest, QuantileOfEmptyHistogramIsZero) {
  Histogram& histogram =
      MetricsRegistry::Global().GetHistogram("test.q_empty", {1.0, 2.0});
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snapshot.Quantile(1.0), 0.0);
}

TEST_F(ObsTest, QuantileOfSingleObservationStaysInItsBucket) {
  Histogram& histogram = MetricsRegistry::Global().GetHistogram(
      "test.q_single", {1.0, 2.0, 4.0});
  histogram.Observe(1.5);  // The (1, 2] bucket.
  const HistogramSnapshot snapshot = histogram.Snapshot();
  for (const double q : {0.01, 0.5, 0.95, 0.99}) {
    const double value = snapshot.Quantile(q);
    EXPECT_GE(value, 1.0) << "q=" << q;
    EXPECT_LE(value, 2.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(snapshot.Quantile(1.0), 2.0);  // Bucket upper bound.
}

TEST_F(ObsTest, QuantileInterpolatesAtBucketBoundaries) {
  Histogram& histogram = MetricsRegistry::Global().GetHistogram(
      "test.q_bounds", {1.0, 2.0, 4.0});
  // "le" semantics: observations equal to a bound land in that bound's
  // bucket, so all four sit in (1, 2].
  for (int i = 0; i < 4; ++i) histogram.Observe(2.0);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.Quantile(1.0), 2.0);
  const double p50 = snapshot.Quantile(0.5);
  const double p95 = snapshot.Quantile(0.95);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p95, 2.0);
  EXPECT_LE(p50, p95);  // Percentiles are monotone in q.
}

TEST_F(ObsTest, QuantileClampsOverflowBucketToLastBound) {
  Histogram& histogram = MetricsRegistry::Global().GetHistogram(
      "test.q_overflow", {1.0, 2.0, 4.0});
  histogram.Observe(100.0);  // Above every finite bound.
  histogram.Observe(150.0);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  // The overflow bucket has no upper bound, so percentiles clamp to the
  // last finite bound rather than inventing a value.
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.5), 4.0);
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.99), 4.0);
  EXPECT_DOUBLE_EQ(snapshot.P99(), 4.0);
}

TEST_F(ObsTest, SpanCloseObservesLatencyHistogram) {
  { ObsSpan span("auto.region", "test"); }
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  bool found = false;
  for (const auto& [name, histogram] : snapshot.histograms) {
    if (name != "lat.auto.region") continue;
    found = true;
    EXPECT_EQ(histogram.count, 1u);
    EXPECT_GE(histogram.sum, 0.0);
    EXPECT_EQ(histogram.bounds.size(), LatencyBounds().size());
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsTest, SpanCloseSkipsLatencyHistogramWhenMetricsDisabled) {
  SetMetricsEnabled(false);
  { ObsSpan span("ghost.region", "test"); }
  SetMetricsEnabled(true);
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  for (const auto& [name, histogram] : snapshot.histograms) {
    EXPECT_NE(name, "lat.ghost.region");
  }
}

TEST_F(ObsTest, CsvHistogramRowsAreCumulativeWithInfinityLabel) {
  Histogram& histogram =
      MetricsRegistry::Global().GetHistogram("test.cum", {1.0, 2.0});
  histogram.Observe(0.5);  // <= 1
  histogram.Observe(1.5);  // <= 2
  histogram.Observe(9.0);  // Overflow.
  const std::string csv = MetricsRegistry::Global().Snapshot().ToCsv();
  // Bucket rows carry cumulative counts (le semantics), and the overflow
  // row is labeled +Inf and equals the total count.
  EXPECT_NE(csv.find("histogram,test.cum,count,3\n"), std::string::npos)
      << csv;
  EXPECT_NE(csv.find("histogram,test.cum,le=1,1\n"), std::string::npos)
      << csv;
  EXPECT_NE(csv.find("histogram,test.cum,le=2,2\n"), std::string::npos)
      << csv;
  EXPECT_NE(csv.find("histogram,test.cum,le=+Inf,3\n"), std::string::npos)
      << csv;
}

// ---- Telemetry counter events -------------------------------------------

TEST_F(ObsTest, CounterEventsExportAsChromeCounterPhase) {
  TraceRecorder::Global().RecordCounter("telemetry.test_series", 42.5);
  TraceRecorder::Global().RecordCounter("telemetry.test_series", 43.0);
  EXPECT_EQ(TraceRecorder::Global().counter_size(), 2u);
  EXPECT_EQ(TraceRecorder::Global().size(), 0u);  // Spans stay separate.

  const std::string json = TraceRecorder::Global().ToChromeTraceJson();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json;
  const JsonValue& events = root.object.at("traceEvents");
  ASSERT_EQ(events.array.size(), 2u);
  for (const JsonValue& event : events.array) {
    EXPECT_EQ(event.object.at("ph").string, "C");
    EXPECT_EQ(event.object.at("name").string, "telemetry.test_series");
    EXPECT_GE(event.object.at("args").object.at("value").number, 42.0);
  }

  TraceRecorder::Global().Clear();
  EXPECT_EQ(TraceRecorder::Global().counter_size(), 0u);
}

TEST_F(ObsTest, CounterEventsAreDroppedWhenTracingDisabled) {
  SetTracingEnabled(false);
  TraceRecorder::Global().RecordCounter("telemetry.off", 1.0);
  EXPECT_EQ(TraceRecorder::Global().counter_size(), 0u);
}

TEST_F(ObsTest, HistogramBoundsFixedByFirstRegistration) {
  Histogram& first =
      MetricsRegistry::Global().GetHistogram("test.fixed", {1.0, 2.0});
  Histogram& second =
      MetricsRegistry::Global().GetHistogram("test.fixed", {5.0});
  EXPECT_EQ(&first, &second);
  ASSERT_EQ(second.bounds().size(), 2u);
  EXPECT_DOUBLE_EQ(second.bounds()[0], 1.0);
}

// getrusage reports ru_maxrss in KiB on Linux but bytes on macOS; the
// normalization lives in exactly one place and must produce bytes on every
// platform (a 3 GiB process must never read as 3 MiB, nor 8 MiB as 8 GiB).
TEST(PeakRssTest, RuMaxRssNormalizesToBytesPerPlatform) {
#if defined(__APPLE__)
  EXPECT_EQ(detail::RuMaxRssToBytes(8 * 1024 * 1024), 8u * 1024 * 1024);
#else
  EXPECT_EQ(detail::RuMaxRssToBytes(8 * 1024), 8u * 1024 * 1024);
#endif
  EXPECT_EQ(detail::RuMaxRssToBytes(0), 0u);
  EXPECT_EQ(detail::RuMaxRssToBytes(-1), 0u);
  // Whatever source PeakRssBytes used, a running test binary is at least
  // 1 MiB resident — a KiB-vs-bytes mixup would fail this on one side.
  EXPECT_GE(PeakRssBytes(), 1024u * 1024u);
}

}  // namespace
}  // namespace obs
}  // namespace alem
