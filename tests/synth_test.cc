#include <gtest/gtest.h>

#include "blocking/jaccard_blocking.h"
#include "synth/generator.h"
#include "synth/profiles.h"

namespace alem {
namespace {

TEST(SynthTest, DeterministicForSameSeed) {
  const SynthProfile profile = AbtBuyProfile();
  const EmDataset a = GenerateDataset(profile, 42, 0.2);
  const EmDataset b = GenerateDataset(profile, 42, 0.2);
  ASSERT_EQ(a.left.num_rows(), b.left.num_rows());
  ASSERT_EQ(a.right.num_rows(), b.right.num_rows());
  for (size_t r = 0; r < a.left.num_rows(); ++r) {
    EXPECT_EQ(a.left.row(r), b.left.row(r));
  }
  for (size_t r = 0; r < a.right.num_rows(); ++r) {
    EXPECT_EQ(a.right.row(r), b.right.row(r));
  }
  EXPECT_EQ(a.truth.num_matches(), b.truth.num_matches());
}

TEST(SynthTest, DifferentSeedsDiffer) {
  const SynthProfile profile = AbtBuyProfile();
  const EmDataset a = GenerateDataset(profile, 1, 0.2);
  const EmDataset b = GenerateDataset(profile, 2, 0.2);
  ASSERT_EQ(a.left.num_rows(), b.left.num_rows());
  size_t differing = 0;
  for (size_t r = 0; r < a.left.num_rows(); ++r) {
    if (a.left.row(r) != b.left.row(r)) ++differing;
  }
  EXPECT_GT(differing, a.left.num_rows() / 2);
}

TEST(SynthTest, ScaleMultipliesEntityCounts) {
  const SynthProfile profile = DblpAcmProfile();
  const EmDataset small = GenerateDataset(profile, 7, 0.25);
  const EmDataset large = GenerateDataset(profile, 7, 1.0);
  EXPECT_GT(large.left.num_rows(), 3 * small.left.num_rows());
  EXPECT_GT(large.truth.num_matches(), 3 * small.truth.num_matches());
}

TEST(SynthTest, MatchesReferenceValidRows) {
  const SynthProfile profile = CoraProfile();
  const EmDataset dataset = GenerateDataset(profile, 9, 0.3);
  // Every matched pair must reference existing rows. We can't enumerate the
  // truth set directly, so probe all pairs of a sample.
  size_t found = 0;
  for (uint32_t l = 0; l < dataset.left.num_rows(); ++l) {
    for (uint32_t r = 0; r < dataset.right.num_rows(); ++r) {
      if (dataset.truth.IsMatch({l, r})) ++found;
    }
  }
  EXPECT_EQ(found, dataset.truth.num_matches());
}

TEST(SynthTest, CoraHasMultiMatchClusters) {
  const EmDataset dataset = GenerateDataset(CoraProfile(), 5, 0.5);
  // More matches than left-side matched entities implies clusters.
  size_t lefts_with_match = 0;
  size_t total_matches = 0;
  for (uint32_t l = 0; l < dataset.left.num_rows(); ++l) {
    size_t row_matches = 0;
    for (uint32_t r = 0; r < dataset.right.num_rows(); ++r) {
      if (dataset.truth.IsMatch({l, r})) ++row_matches;
    }
    lefts_with_match += row_matches > 0 ? 1 : 0;
    total_matches += row_matches;
  }
  EXPECT_GT(total_matches, lefts_with_match * 3 / 2);
}

TEST(SynthTest, SchemasMatchProfileColumns) {
  for (const SynthProfile& profile : AllPublicProfiles()) {
    const EmDataset dataset = GenerateDataset(profile, 3, 0.1);
    ASSERT_EQ(dataset.left.schema().num_columns(), profile.columns.size());
    for (size_t c = 0; c < profile.columns.size(); ++c) {
      EXPECT_EQ(dataset.left.schema().column(c), profile.columns[c].name);
      EXPECT_EQ(dataset.right.schema().column(c), profile.columns[c].name);
    }
    EXPECT_EQ(dataset.matched_columns.size(), profile.columns.size());
  }
}

// Post-blocking class skew should be in the neighbourhood of Table 1.
class SkewTest : public ::testing::TestWithParam<int> {};

TEST_P(SkewTest, ClassSkewNearPaperValue) {
  // Paper Table 1 skews, same order as AllPublicProfiles().
  const double expected[] = {0.12, 0.09, 0.198, 0.109, 0.124,
                             0.083, 0.147, 0.151, 0.27};
  const std::vector<SynthProfile> profiles = AllPublicProfiles();
  const size_t i = static_cast<size_t>(GetParam());
  const SynthProfile& profile = profiles[i];
  const EmDataset dataset = GenerateDataset(profile, 7);
  const auto pairs =
      JaccardBlocking(dataset, BlockingConfig{profile.blocking_threshold});
  const double skew = dataset.ClassSkew(pairs);
  // Same order of magnitude: within a factor of ~2.5.
  EXPECT_GT(skew, expected[i] / 2.5) << profile.name;
  EXPECT_LT(skew, expected[i] * 2.5) << profile.name;
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, SkewTest, ::testing::Range(0, 9));

TEST(SynthTest, ProfileByNameRoundTrip) {
  for (const SynthProfile& profile : AllPublicProfiles()) {
    EXPECT_EQ(ProfileByName(profile.name).name, profile.name);
  }
  EXPECT_EQ(ProfileByName("SocialMedia").name, "SocialMedia");
}

TEST(SynthTest, SocialMediaRightTableIsLarger) {
  const EmDataset dataset = GenerateDataset(SocialMediaProfile(), 3, 0.2);
  EXPECT_GT(dataset.right.num_rows(), 2 * dataset.left.num_rows());
}

TEST(SynthTest, NullRateProducesMissingValues) {
  const EmDataset dataset = GenerateDataset(WalmartAmazonProfile(), 3, 0.3);
  size_t empty = 0, total = 0;
  for (size_t r = 0; r < dataset.right.num_rows(); ++r) {
    for (const std::string& value : dataset.right.row(r)) {
      ++total;
      empty += value.empty() ? 1 : 0;
    }
  }
  EXPECT_GT(static_cast<double>(empty) / static_cast<double>(total), 0.02);
}

}  // namespace
}  // namespace alem
