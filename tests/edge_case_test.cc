// Edge cases and failure injection across the active-learning stack:
// degenerate pools, single-class data, budgets smaller than the seed,
// batches larger than the remaining pool, and fully noisy oracles.

#include <gtest/gtest.h>

#include "core/active_ensemble.h"
#include "core/active_loop.h"
#include "core/evaluator.h"
#include "core/learner.h"
#include "core/oracle.h"
#include "core/pool.h"
#include "core/selector.h"
#include "util/rng.h"

namespace alem {
namespace {

struct Problem {
  FeatureMatrix features;
  std::vector<int> truth;
};

Problem MakeProblem(size_t n, double positive_rate, uint64_t seed) {
  Rng rng(seed);
  Problem problem;
  problem.features = FeatureMatrix(n, 2);
  problem.truth.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const bool positive = rng.NextDouble() < positive_rate;
    const double center = positive ? 0.8 : 0.2;
    problem.features.Set(i, 0,
                         static_cast<float>(center + rng.NextGaussian() * 0.05));
    problem.features.Set(i, 1,
                         static_cast<float>(center + rng.NextGaussian() * 0.05));
    problem.truth[i] = positive ? 1 : 0;
  }
  return problem;
}

TEST(EdgeCaseTest, PoolSmallerThanSeedLabelsEverything) {
  const Problem problem = MakeProblem(20, 0.4, 1);
  ActivePool pool(problem.features);
  PerfectOracle oracle(problem.truth);
  ProgressiveEvaluator evaluator(problem.truth);
  SvmLearner learner{LinearSvmConfig{}};
  MarginSelector selector;
  ActiveLearningConfig config;
  config.seed_size = 30;  // Bigger than the pool.
  config.max_labels = 100;
  ActiveLearningLoop loop(learner, selector, oracle, evaluator, config);
  const auto curve = loop.Run(pool);
  EXPECT_EQ(pool.num_labeled(), 20u);
  EXPECT_FALSE(curve.empty());
}

TEST(EdgeCaseTest, AllNegativePoolTerminatesGracefully) {
  // No positive example exists anywhere: the seed loop gives up after its
  // retry budget and learners must cope with single-class training data.
  const Problem problem = MakeProblem(200, 0.0, 2);
  ActivePool pool(problem.features);
  PerfectOracle oracle(problem.truth);
  ProgressiveEvaluator evaluator(problem.truth);
  RandomForestConfig forest_config;
  forest_config.num_trees = 3;
  ForestLearner learner(forest_config);
  ForestQbcSelector selector(1);
  ActiveLearningConfig config;
  config.max_labels = 100;
  ActiveLearningLoop loop(learner, selector, oracle, evaluator, config);
  const auto curve = loop.Run(pool);
  ASSERT_FALSE(curve.empty());
  // Everything predicted negative: F1 undefined -> 0, never NaN.
  EXPECT_EQ(curve.back().metrics.f1, 0.0);
}

TEST(EdgeCaseTest, BudgetBelowSeedStopsAfterFirstEvaluation) {
  const Problem problem = MakeProblem(200, 0.3, 3);
  ActivePool pool(problem.features);
  PerfectOracle oracle(problem.truth);
  ProgressiveEvaluator evaluator(problem.truth);
  SvmLearner learner{LinearSvmConfig{}};
  MarginSelector selector;
  ActiveLearningConfig config;
  config.seed_size = 30;
  config.max_labels = 10;  // Below the seed size.
  ActiveLearningLoop loop(learner, selector, oracle, evaluator, config);
  const auto curve = loop.Run(pool);
  EXPECT_EQ(curve.size(), 1u);  // One evaluation, no further selection.
}

TEST(EdgeCaseTest, BatchLargerThanRemainingPool) {
  const Problem problem = MakeProblem(45, 0.4, 4);
  ActivePool pool(problem.features);
  PerfectOracle oracle(problem.truth);
  ProgressiveEvaluator evaluator(problem.truth);
  SvmLearner learner{LinearSvmConfig{}};
  MarginSelector selector;
  ActiveLearningConfig config;
  config.seed_size = 30;
  config.batch_size = 100;  // Far more than the 15 remaining examples.
  config.max_labels = 1000;
  ActiveLearningLoop loop(learner, selector, oracle, evaluator, config);
  loop.Run(pool);
  EXPECT_EQ(pool.num_labeled(), 45u);  // Exhausted, no overflow.
}

TEST(EdgeCaseTest, FullyNoisyOracleStillTerminates) {
  const Problem problem = MakeProblem(300, 0.2, 5);
  ActivePool pool(problem.features);
  NoisyOracle oracle(problem.truth, 1.0, 7);  // Every label inverted.
  ProgressiveEvaluator evaluator(problem.truth);
  RandomForestConfig forest_config;
  forest_config.num_trees = 5;
  ForestLearner learner(forest_config);
  ForestQbcSelector selector(2);
  ActiveLearningConfig config;
  config.max_labels = 80;
  ActiveLearningLoop loop(learner, selector, oracle, evaluator, config);
  const auto curve = loop.Run(pool);
  ASSERT_FALSE(curve.empty());
  // Learning inverted labels: progressive F1 on the true labels collapses.
  EXPECT_LT(curve.back().metrics.f1, 0.3);
}

TEST(EdgeCaseTest, EnsembleOnAllNegativePool) {
  const Problem problem = MakeProblem(150, 0.0, 6);
  ActivePool pool(problem.features);
  PerfectOracle oracle(problem.truth);
  ProgressiveEvaluator evaluator(problem.truth);
  SvmLearner candidate{LinearSvmConfig{}};
  MarginSelector selector;
  ActiveEnsembleConfig config;
  config.base.max_labels = 60;
  ActiveEnsembleLoop loop(candidate, selector, oracle, evaluator, config);
  const auto curve = loop.Run(pool);
  ASSERT_FALSE(curve.empty());
  EXPECT_EQ(loop.accepted_count(), 0u);
}

TEST(EdgeCaseTest, SeedLargerThanBudgetCountsQueriesOnce) {
  const Problem problem = MakeProblem(100, 0.3, 8);
  ActivePool pool(problem.features);
  PerfectOracle oracle(problem.truth);
  SeedPool(pool, oracle, 30, 1);
  EXPECT_EQ(oracle.queries(), pool.num_labeled());
}

TEST(EdgeCaseTest, RepeatedRunsOnSamePoolForbidden) {
  // Labeling the same row twice must abort (programmer error).
  FeatureMatrix features(3, 1);
  ActivePool pool(features);
  pool.AddLabel(0, 1);
  EXPECT_DEATH({ pool.AddLabel(0, 1); }, "");
}

}  // namespace
}  // namespace alem
