// Tests for the CLI support pieces: flag parsing and approach-name parsing.

#include <gtest/gtest.h>

#include "core/approaches.h"
#include "util/flags.h"

namespace alem {
namespace {

FlagParser Parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return FlagParser(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagParserTest, EqualsSyntax) {
  const FlagParser flags = Parse({"--name=value", "--count=42"});
  EXPECT_EQ(flags.GetString("name", ""), "value");
  EXPECT_EQ(flags.GetInt("count", 0), 42);
}

TEST(FlagParserTest, SpaceSyntax) {
  const FlagParser flags = Parse({"--name", "value", "--rate", "0.25"});
  EXPECT_EQ(flags.GetString("name", ""), "value");
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate", 0.0), 0.25);
}

TEST(FlagParserTest, BareBooleanFlag) {
  const FlagParser flags = Parse({"--holdout", "--verbose=false"});
  EXPECT_TRUE(flags.GetBool("holdout", false));
  EXPECT_FALSE(flags.GetBool("verbose", true));
  EXPECT_TRUE(flags.GetBool("absent", true));
  EXPECT_FALSE(flags.GetBool("absent", false));
}

TEST(FlagParserTest, PositionalArguments) {
  const FlagParser flags = Parse({"run", "--x=1", "extra"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "run");
  EXPECT_EQ(flags.positional()[1], "extra");
}

TEST(FlagParserTest, DefaultsWhenAbsent) {
  const FlagParser flags = Parse({});
  EXPECT_EQ(flags.GetString("missing", "fallback"), "fallback");
  EXPECT_EQ(flags.GetInt("missing", 7), 7);
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(FlagParserTest, LastValueWins) {
  const FlagParser flags = Parse({"--n=1", "--n=2"});
  EXPECT_EQ(flags.GetInt("n", 0), 2);
}

// ---- ApproachFromName ----

TEST(ApproachFromNameTest, ParsesAllDocumentedNames) {
  struct Case {
    const char* name;
    const char* display;
  };
  const Case cases[] = {
      {"trees20", "Trees(20)"},
      {"trees2", "Trees(2)"},
      {"supervised-trees10", "SupervisedTrees(Random-10)"},
      {"linear-margin", "Linear-Margin"},
      {"linear-margin-1dim", "Linear-Margin(1Dim)"},
      {"linear-margin-10dim", "Linear-Margin(10Dim)"},
      {"linear-margin-ensemble", "Linear-Margin(Ensemble)"},
      {"linear-qbc2", "Linear-QBC(2)"},
      {"linear-qbc20", "Linear-QBC(20)"},
      {"nn-margin", "NN-Margin"},
      {"nn-margin-ensemble", "NN-Margin(Ensemble)"},
      {"nn-qbc2", "NN-QBC(2)"},
      {"rules", "Rules(LFP/LFN)"},
      {"rules-qbc5", "Rules-QBC(5)"},
      {"deepmatcher", "DeepMatcher"},
  };
  for (const Case& c : cases) {
    ApproachSpec spec;
    ASSERT_TRUE(ApproachFromName(c.name, &spec)) << c.name;
    EXPECT_EQ(spec.DisplayName(), c.display) << c.name;
  }
}

TEST(ApproachFromNameTest, RejectsUnknownNames) {
  ApproachSpec spec;
  EXPECT_FALSE(ApproachFromName("", &spec));
  EXPECT_FALSE(ApproachFromName("trees", &spec));
  EXPECT_FALSE(ApproachFromName("trees0", &spec));
  EXPECT_FALSE(ApproachFromName("treesx", &spec));
  EXPECT_FALSE(ApproachFromName("linear-margin-dim", &spec));
  EXPECT_FALSE(ApproachFromName("linear-margin-xdim", &spec));
  EXPECT_FALSE(ApproachFromName("svm", &spec));
}

TEST(ApproachFromNameTest, ParsedSpecsBuild) {
  for (const char* name : {"trees5", "linear-margin-3dim", "rules-qbc3"}) {
    ApproachSpec spec;
    ASSERT_TRUE(ApproachFromName(name, &spec));
    const Approach approach = MakeApproach(spec, 1);
    EXPECT_TRUE(approach.selector->CompatibleWith(*approach.learner));
  }
}

}  // namespace
}  // namespace alem
