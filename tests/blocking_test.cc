#include <gtest/gtest.h>

#include <algorithm>

#include "blocking/jaccard_blocking.h"
#include "synth/generator.h"
#include "synth/profiles.h"

namespace alem {
namespace {

EmDataset TinyDataset() {
  EmDataset dataset;
  dataset.name = "tiny";
  Schema schema({"name"});
  dataset.left = Table(schema);
  dataset.right = Table(schema);
  dataset.left.AddRow({"sony camera zoom"});
  dataset.left.AddRow({"canon printer"});
  dataset.left.AddRow({""});
  dataset.right.AddRow({"sony camera"});
  dataset.right.AddRow({"office chair"});
  dataset.right.AddRow({"canon printer deluxe"});
  dataset.matched_columns = {{0, 0}};
  dataset.truth.AddMatch({0, 0});
  dataset.truth.AddMatch({1, 2});
  return dataset;
}

TEST(BlockingTest, KeepsOnlyPairsAboveThreshold) {
  const EmDataset dataset = TinyDataset();
  const auto pairs = JaccardBlocking(dataset, BlockingConfig{0.5});
  // (0,0): {sony,camera,zoom} vs {sony,camera} -> 2/3 >= 0.5. Keep.
  // (1,2): {canon,printer} vs {canon,printer,deluxe} -> 2/3. Keep.
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (RecordPair{0, 0}));
  EXPECT_EQ(pairs[1], (RecordPair{1, 2}));
}

TEST(BlockingTest, EmptyRecordsNeverPair) {
  const EmDataset dataset = TinyDataset();
  const auto pairs = JaccardBlocking(dataset, BlockingConfig{0.01});
  for (const RecordPair& pair : pairs) {
    EXPECT_NE(pair.left, 2u);  // Left row 2 is empty.
  }
}

TEST(BlockingTest, ThresholdMonotonicity) {
  const SynthProfile profile = AbtBuyProfile();
  const EmDataset dataset = GenerateDataset(profile, 3, 0.3);
  size_t previous = SIZE_MAX;
  for (const double threshold : {0.05, 0.1, 0.2, 0.4, 0.8}) {
    const size_t count =
        JaccardBlocking(dataset, BlockingConfig{threshold}).size();
    EXPECT_LE(count, previous);
    previous = count;
  }
}

// The inverted-index implementation must agree exactly with brute force.
class BlockingEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(BlockingEquivalenceTest, MatchesBruteForce) {
  const std::vector<SynthProfile> profiles = AllPublicProfiles();
  const SynthProfile& profile =
      profiles[static_cast<size_t>(GetParam()) % profiles.size()];
  const EmDataset dataset = GenerateDataset(profile, 11, 0.15);
  BlockingConfig config{profile.blocking_threshold};

  auto fast = JaccardBlocking(dataset, config);
  auto slow = JaccardBlockingBruteForce(dataset, config);
  auto key = [](const RecordPair& a, const RecordPair& b) {
    return a.left != b.left ? a.left < b.left : a.right < b.right;
  };
  std::sort(slow.begin(), slow.end(), key);
  ASSERT_EQ(fast.size(), slow.size()) << profile.name;
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i], slow[i]) << profile.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, BlockingEquivalenceTest,
                         ::testing::Range(0, 9));

TEST(BlockingTest, RecallOnSyntheticDatasetsIsHigh) {
  for (const SynthProfile& profile : AllPublicProfiles()) {
    const EmDataset dataset = GenerateDataset(profile, 5, 0.5);
    const auto pairs =
        JaccardBlocking(dataset, BlockingConfig{profile.blocking_threshold});
    // Heavily perturbed profiles (heterogeneous noise modes) lose a few
    // matches at the blocking stage, as real blocking does.
    EXPECT_GT(BlockingRecall(dataset, pairs), 0.90) << profile.name;
  }
}

TEST(BlockingTest, SortedJaccardValues) {
  using internal_blocking::SortedJaccard;
  EXPECT_DOUBLE_EQ(SortedJaccard({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(SortedJaccard({1}, {1}), 1.0);
  EXPECT_DOUBLE_EQ(SortedJaccard({1}, {2}), 0.0);
  EXPECT_DOUBLE_EQ(SortedJaccard({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(SortedJaccard({}, {1}), 0.0);
}

}  // namespace
}  // namespace alem
