// Tests for the RunReport flight recorder (src/obs/report.h): JSON
// round-trip fidelity, schema validation, the span self-time rollup, the
// regression-gate comparator, and the JSON parser underneath it all.

#include "obs/report.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "util/json.h"

namespace alem {
namespace obs {
namespace {

// A fully-populated report with awkward values: non-round doubles that
// need all 17 significant digits, strings that need escaping.
RunReport MakeReport() {
  RunReport report;
  report.kind = "run";
  report.tool = "report_test";
  report.build = "deadbeef-dirty";
  report.dataset = "Abt-Buy \"quoted\"";
  report.approach = "linear-margin";
  report.data_seed = 7;
  report.run_seed = 123456789;
  report.scale = 0.1 + 0.2;  // 0.30000000000000004
  report.threads = 4;
  report.seed_size = 30;
  report.batch_size = 10;
  report.max_labels = 200;
  report.oracle_noise = 0.05;
  report.holdout = true;

  for (int i = 1; i <= 3; ++i) {
    ReportIteration point;
    point.iteration = static_cast<uint64_t>(i);
    point.labels_used = static_cast<uint64_t>(30 + 10 * i);
    point.precision = 0.7 + 0.01 * i;
    point.recall = 0.6 + 0.01 * i;
    point.f1 = 1.0 / (3.0 + i);  // Not representable exactly.
    point.train_seconds = 0.001 * i;
    point.evaluate_seconds = 0.0005;
    point.select_seconds = 0.002;
    point.committee_seconds = 0.0015;
    point.scoring_seconds = 0.0004;
    point.label_seconds = 1e-5;
    point.wait_seconds = point.train_seconds + point.select_seconds;
    point.scored_examples = 500;
    point.pruned_examples = 100;
    point.dnf_atoms = 3;
    point.tree_depth = 5;
    point.ensemble_size = static_cast<uint64_t>(i);
    report.curve.push_back(point);
  }
  report.best_f1 = report.curve.back().f1;
  report.final_f1 = report.curve.back().f1;
  report.labels_to_converge = 60;
  report.total_wait_seconds = 0.009;
  report.ensemble_accepted = 3;

  report.counters = {{"oracle.queries", 60},
                     {"selector.scored_examples", 1500},
                     {"blocking.pruned", 300},
                     {"sim.calls", 53802}};
  report.gauges = {{"process.peak_rss_bytes", 8.5e6}};
  report.spans = {{"loop.run", 1, 0.010, 0.002},
                  {"ml.fit", 3, 0.003, 0.003}};
  report.wall_seconds = 0.25;
  report.peak_rss_bytes = 8500000;
  return report;
}

TEST(ReportJsonTest, RoundTripIsLossless) {
  const RunReport report = MakeReport();
  const std::string json = ReportToJson(report);

  RunReport parsed;
  std::string error;
  ASSERT_TRUE(ParseReportJson(json, &parsed, &error)) << error;

  EXPECT_EQ(parsed.schema_version, report.schema_version);
  EXPECT_EQ(parsed.kind, report.kind);
  EXPECT_EQ(parsed.tool, report.tool);
  EXPECT_EQ(parsed.build, report.build);
  EXPECT_EQ(parsed.dataset, report.dataset);
  EXPECT_EQ(parsed.approach, report.approach);
  EXPECT_EQ(parsed.data_seed, report.data_seed);
  EXPECT_EQ(parsed.run_seed, report.run_seed);
  EXPECT_EQ(parsed.scale, report.scale);  // Bitwise: %.17g round-trips.
  EXPECT_EQ(parsed.threads, report.threads);
  EXPECT_EQ(parsed.seed_size, report.seed_size);
  EXPECT_EQ(parsed.batch_size, report.batch_size);
  EXPECT_EQ(parsed.max_labels, report.max_labels);
  EXPECT_EQ(parsed.oracle_noise, report.oracle_noise);
  EXPECT_EQ(parsed.holdout, report.holdout);

  ASSERT_EQ(parsed.curve.size(), report.curve.size());
  for (size_t i = 0; i < report.curve.size(); ++i) {
    EXPECT_EQ(parsed.curve[i].iteration, report.curve[i].iteration);
    EXPECT_EQ(parsed.curve[i].labels_used, report.curve[i].labels_used);
    EXPECT_EQ(parsed.curve[i].f1, report.curve[i].f1);  // Bitwise.
    EXPECT_EQ(parsed.curve[i].precision, report.curve[i].precision);
    EXPECT_EQ(parsed.curve[i].recall, report.curve[i].recall);
    EXPECT_EQ(parsed.curve[i].wait_seconds, report.curve[i].wait_seconds);
    EXPECT_EQ(parsed.curve[i].scored_examples,
              report.curve[i].scored_examples);
    EXPECT_EQ(parsed.curve[i].tree_depth, report.curve[i].tree_depth);
  }
  EXPECT_EQ(parsed.best_f1, report.best_f1);
  EXPECT_EQ(parsed.final_f1, report.final_f1);
  EXPECT_EQ(parsed.labels_to_converge, report.labels_to_converge);
  EXPECT_EQ(parsed.ensemble_accepted, report.ensemble_accepted);

  EXPECT_EQ(parsed.counters, report.counters);
  ASSERT_EQ(parsed.spans.size(), report.spans.size());
  EXPECT_EQ(parsed.spans[0].name, "loop.run");
  EXPECT_EQ(parsed.spans[0].count, 1u);
  EXPECT_EQ(parsed.wall_seconds, report.wall_seconds);
  EXPECT_EQ(parsed.peak_rss_bytes, report.peak_rss_bytes);
}

TEST(ReportJsonTest, FileRoundTrip) {
  const RunReport report = MakeReport();
  const std::string path = ::testing::TempDir() + "/report_test.json";
  ASSERT_TRUE(WriteReportJson(path, report));
  RunReport loaded;
  std::string error;
  ASSERT_TRUE(LoadReportFile(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.final_f1, report.final_f1);
  EXPECT_EQ(loaded.counters, report.counters);
  std::remove(path.c_str());
}

TEST(ReportJsonTest, RejectsMissingRequiredFields) {
  RunReport parsed;
  std::string error;
  EXPECT_FALSE(ParseReportJson("{\"schema_version\": 1}", &parsed, &error));
  EXPECT_NE(error.find("kind"), std::string::npos) << error;
}

TEST(ReportJsonTest, RejectsWrongSchemaVersion) {
  RunReport report = MakeReport();
  report.schema_version = 99;
  RunReport parsed;
  std::string error;
  EXPECT_FALSE(ParseReportJson(ReportToJson(report), &parsed, &error));
  EXPECT_NE(error.find("schema"), std::string::npos) << error;
}

TEST(ReportJsonTest, RejectsRunReportWithEmptyCurve) {
  RunReport report = MakeReport();
  report.curve.clear();
  RunReport parsed;
  std::string error;
  EXPECT_FALSE(ParseReportJson(ReportToJson(report), &parsed, &error));
}

TEST(ReportJsonTest, BenchReportNeedsNoCurve) {
  RunReport report = MakeReport();
  report.kind = "bench";
  report.curve.clear();
  RunReport parsed;
  std::string error;
  EXPECT_TRUE(ParseReportJson(ReportToJson(report), &parsed, &error))
      << error;
}

TEST(ReportJsonTest, RejectsMalformedJson) {
  RunReport parsed;
  std::string error;
  EXPECT_FALSE(ParseReportJson("{\"schema_version\": 1,,}", &parsed,
                               &error));
  EXPECT_FALSE(ParseReportJson("", &parsed, &error));
}

// ---- JSON parser (util/json.h) ----------------------------------------

TEST(JsonParserTest, ParsesScalarsAndContainers) {
  JsonValue value;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(
      R"({"a": [1, 2.5, -3e2], "b": "x\n\"yé", "c": true, "d": null})",
      &value, &error))
      << error;
  const JsonValue* a = value.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array().size(), 3u);
  EXPECT_EQ(a->array()[0].number_value(), 1.0);
  EXPECT_EQ(a->array()[2].number_value(), -300.0);
  const JsonValue* b = value.Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->string_value(), "x\n\"y\xc3\xa9");
  EXPECT_TRUE(value.Find("c")->bool_value());
  EXPECT_EQ(value.Find("d")->kind(), JsonValue::Kind::kNull);
  EXPECT_EQ(value.Find("missing"), nullptr);
}

TEST(JsonParserTest, RejectsTrailingGarbageAndBadSyntax) {
  JsonValue value;
  std::string error;
  EXPECT_FALSE(JsonValue::Parse("{} extra", &value, &error));
  EXPECT_FALSE(JsonValue::Parse("{\"a\": }", &value, &error));
  EXPECT_FALSE(JsonValue::Parse("[1, 2", &value, &error));
  EXPECT_FALSE(JsonValue::Parse("\"unterminated", &value, &error));
}

TEST(JsonParserTest, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  JsonValue value;
  std::string error;
  EXPECT_FALSE(JsonValue::Parse(deep, &value, &error));
}

TEST(JsonParserTest, SeventeenDigitDoubleRoundTrip) {
  std::string out;
  AppendJsonDouble(&out, 0.1 + 0.2);
  JsonValue value;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(out, &value, &error)) << error;
  EXPECT_EQ(value.number_value(), 0.1 + 0.2);
}

// ---- Span self-time rollup --------------------------------------------

SpanRecord Record(const char* name, uint32_t tid, uint64_t start_ns,
                  uint64_t duration_ns) {
  SpanRecord record;
  record.name = name;
  record.thread_id = tid;
  record.start_ns = start_ns;
  record.duration_ns = duration_ns;
  return record;
}

TEST(SelfTimeRollupTest, SubtractsNestedChildren) {
  // outer [0, 1000] contains two inner spans of 200ns and 300ns; a span
  // on another thread overlapping in time must NOT be subtracted.
  const std::vector<SpanRecord> records = {
      Record("outer", 0, 0, 1000),
      Record("inner", 0, 100, 200),
      Record("inner", 0, 500, 300),
      Record("other_thread", 1, 0, 400),
  };
  const std::vector<SpanRollupEntry> rollup = SelfTimeRollup(records);
  double outer_self = -1.0;
  double inner_total = -1.0;
  for (const SpanRollupEntry& entry : rollup) {
    if (entry.name == "outer") outer_self = entry.self_seconds;
    if (entry.name == "inner") inner_total = entry.total_seconds;
  }
  EXPECT_DOUBLE_EQ(outer_self, 500e-9);
  EXPECT_DOUBLE_EQ(inner_total, 500e-9);
}

TEST(SelfTimeRollupTest, SortedBySelfTimeDescending) {
  const std::vector<SpanRecord> records = {
      Record("small", 0, 0, 10),
      Record("big", 0, 100, 1000),
  };
  const std::vector<SpanRollupEntry> rollup = SelfTimeRollup(records);
  ASSERT_EQ(rollup.size(), 2u);
  EXPECT_EQ(rollup[0].name, "big");
  EXPECT_EQ(rollup[1].name, "small");
}

// ---- Process stats -----------------------------------------------------

TEST(ProcessStatsTest, PeakRssIsNonzeroOnLinux) {
#if defined(__linux__)
  EXPECT_GT(PeakRssBytes(), 0u);
#else
  GTEST_SKIP() << "peak RSS source is platform-specific";
#endif
}

TEST(ProcessStatsTest, StampObservabilityFillsBuildAndRss) {
  RunReport report;
  StampObservability(&report);
  EXPECT_FALSE(report.build.empty());
#if defined(__linux__)
  EXPECT_GT(report.peak_rss_bytes, 0u);
#endif
}

// ---- Regression gate ---------------------------------------------------

TEST(CheckReportsTest, IdenticalReportsPass) {
  const RunReport report = MakeReport();
  EXPECT_TRUE(CheckReports(report, report, ReportCheckOptions()).empty());
}

TEST(CheckReportsTest, RegressionBeyondToleranceFails) {
  const RunReport baseline = MakeReport();
  RunReport candidate = baseline;
  candidate.final_f1 = baseline.final_f1 - 0.05;
  candidate.best_f1 = baseline.best_f1 - 0.05;
  const std::vector<std::string> failures =
      CheckReports(baseline, candidate, ReportCheckOptions());
  ASSERT_FALSE(failures.empty());
  EXPECT_NE(failures[0].find("F1"), std::string::npos) << failures[0];
}

TEST(CheckReportsTest, RegressionWithinTolerancePasses) {
  const RunReport baseline = MakeReport();
  RunReport candidate = baseline;
  candidate.final_f1 = baseline.final_f1 - 0.01;  // Inside f1_tol = 0.02.
  EXPECT_TRUE(CheckReports(baseline, candidate, ReportCheckOptions())
                  .empty());
}

TEST(CheckReportsTest, ImprovementAlwaysPasses) {
  const RunReport baseline = MakeReport();
  RunReport candidate = baseline;
  candidate.final_f1 = baseline.final_f1 + 0.10;
  candidate.best_f1 = baseline.best_f1 + 0.10;
  EXPECT_TRUE(CheckReports(baseline, candidate, ReportCheckOptions())
                  .empty());
}

TEST(CheckReportsTest, ToleranceBoundaryIsInclusive) {
  ReportCheckOptions options;
  options.f1_tol = 0.05;
  const RunReport baseline = MakeReport();
  RunReport candidate = baseline;
  candidate.final_f1 = baseline.final_f1 - 0.05;
  candidate.best_f1 = baseline.best_f1 - 0.05;
  EXPECT_TRUE(CheckReports(baseline, candidate, options).empty());
  candidate.final_f1 -= 1e-9;
  EXPECT_FALSE(CheckReports(baseline, candidate, options).empty());
}

TEST(CheckReportsTest, ExactCurveCatchesOneUlp) {
  ReportCheckOptions options;
  options.exact_curve = true;
  const RunReport baseline = MakeReport();
  RunReport candidate = baseline;
  EXPECT_TRUE(CheckReports(baseline, candidate, options).empty());
  candidate.curve[1].f1 =
      std::nextafter(candidate.curve[1].f1, 1.0);  // One ulp.
  EXPECT_FALSE(CheckReports(baseline, candidate, options).empty());
}

TEST(CheckReportsTest, ExactCurveCatchesLengthMismatch) {
  ReportCheckOptions options;
  options.exact_curve = true;
  const RunReport baseline = MakeReport();
  RunReport candidate = baseline;
  candidate.curve.pop_back();
  EXPECT_FALSE(CheckReports(baseline, candidate, options).empty());
}

TEST(CheckReportsTest, ZeroRequiredCounterFails) {
  const RunReport baseline = MakeReport();
  RunReport candidate = baseline;
  for (auto& [name, value] : candidate.counters) {
    if (name == "oracle.queries") value = 0;
  }
  const std::vector<std::string> failures =
      CheckReports(baseline, candidate, ReportCheckOptions());
  ASSERT_FALSE(failures.empty());
  EXPECT_NE(failures[0].find("oracle.queries"), std::string::npos);
}

TEST(CheckReportsTest, KindMismatchFails) {
  const RunReport baseline = MakeReport();
  RunReport candidate = baseline;
  candidate.kind = "bench";
  candidate.curve.clear();
  EXPECT_FALSE(
      CheckReports(baseline, candidate, ReportCheckOptions()).empty());
}

TEST(CheckReportsTest, LatencyGateIsOptIn) {
  const RunReport baseline = MakeReport();
  RunReport candidate = baseline;
  candidate.wall_seconds = baseline.wall_seconds * 100.0;
  candidate.total_wait_seconds = baseline.total_wait_seconds * 100.0;
  // Off by default: a huge slowdown still passes.
  EXPECT_TRUE(CheckReports(baseline, candidate, ReportCheckOptions())
                  .empty());
  ReportCheckOptions options;
  options.latency_tol = 0.25;
  EXPECT_FALSE(CheckReports(baseline, candidate, options).empty());
}

TEST(CheckReportsTest, LatencyGateHasAbsoluteGrace) {
  // Micro-runs jitter by a few ms; the 10ms absolute grace must absorb
  // that even when the relative tolerance alone would fail.
  ReportCheckOptions options;
  options.latency_tol = 0.10;
  RunReport baseline = MakeReport();
  baseline.wall_seconds = 0.001;
  baseline.total_wait_seconds = 0.001;
  RunReport candidate = baseline;
  candidate.wall_seconds = 0.008;  // 8x, but under 1ms*1.1 + 10ms.
  EXPECT_TRUE(CheckReports(baseline, candidate, options).empty());
}

// ---- Latency / pool sections -------------------------------------------

RunReport MakeReportWithTelemetry() {
  RunReport report = MakeReport();
  report.latency = {{"loop.train", 3, 0.0061, 0.0019, 0.0029, 0.003},
                    {"selector.scoring", 3, 0.0072, 0.0021, 0.0033, 0.0039}};
  report.has_pool = true;
  report.pool.workers = 4;
  report.pool.busy_seconds = 0.040;
  report.pool.idle_seconds = 0.010;
  report.pool.queue_wait_seconds = 0.002;
  report.pool.worker_wall_seconds = 0.052;
  report.pool.utilization = 0.040 / 0.052;
  report.pool.regions = {{"ml.batch", 6, 48, 0.0001, 0.0009, 0.0004, 0.71}};
  return report;
}

TEST(ReportJsonTest, LatencyAndPoolSectionsRoundTrip) {
  const RunReport report = MakeReportWithTelemetry();
  RunReport parsed;
  std::string error;
  ASSERT_TRUE(ParseReportJson(ReportToJson(report), &parsed, &error))
      << error;

  ASSERT_EQ(parsed.latency.size(), 2u);
  EXPECT_EQ(parsed.latency[0].name, "loop.train");
  EXPECT_EQ(parsed.latency[0].count, 3u);
  EXPECT_EQ(parsed.latency[0].sum_seconds, 0.0061);  // Bitwise (%.17g).
  EXPECT_EQ(parsed.latency[0].p50_seconds, 0.0019);
  EXPECT_EQ(parsed.latency[0].p95_seconds, 0.0029);
  EXPECT_EQ(parsed.latency[0].p99_seconds, 0.003);
  EXPECT_EQ(parsed.latency[1].name, "selector.scoring");

  ASSERT_TRUE(parsed.has_pool);
  EXPECT_EQ(parsed.pool.workers, 4);
  EXPECT_EQ(parsed.pool.busy_seconds, 0.040);
  EXPECT_EQ(parsed.pool.idle_seconds, 0.010);
  EXPECT_EQ(parsed.pool.queue_wait_seconds, 0.002);
  EXPECT_EQ(parsed.pool.worker_wall_seconds, 0.052);
  EXPECT_EQ(parsed.pool.utilization, 0.040 / 0.052);
  ASSERT_EQ(parsed.pool.regions.size(), 1u);
  EXPECT_EQ(parsed.pool.regions[0].name, "ml.batch");
  EXPECT_EQ(parsed.pool.regions[0].runs, 6u);
  EXPECT_EQ(parsed.pool.regions[0].chunks, 48u);
  EXPECT_EQ(parsed.pool.regions[0].min_chunk_seconds, 0.0001);
  EXPECT_EQ(parsed.pool.regions[0].max_chunk_seconds, 0.0009);
  EXPECT_EQ(parsed.pool.regions[0].mean_chunk_seconds, 0.0004);
  EXPECT_EQ(parsed.pool.regions[0].utilization, 0.71);
}

TEST(ReportJsonTest, LatencyAndPoolSectionsAreOptionalOnParse) {
  // Reports written before the sections existed (or from serial runs)
  // must keep parsing; the absence is the serial-path signal.
  const std::string json = ReportToJson(MakeReport());
  EXPECT_EQ(json.find("\"latency\""), std::string::npos);
  EXPECT_EQ(json.find("\"pool\""), std::string::npos);
  RunReport parsed;
  std::string error;
  ASSERT_TRUE(ParseReportJson(json, &parsed, &error)) << error;
  EXPECT_TRUE(parsed.latency.empty());
  EXPECT_FALSE(parsed.has_pool);
}

TEST(CheckReportsTest, LatencyP95GateIsOptIn) {
  const RunReport baseline = MakeReportWithTelemetry();
  RunReport candidate = baseline;
  candidate.latency[0].p95_seconds = baseline.latency[0].p95_seconds * 100.0;
  // Off by default: a huge tail regression still passes.
  EXPECT_TRUE(CheckReports(baseline, candidate, ReportCheckOptions())
                  .empty());
  ReportCheckOptions options;
  options.latency_p95_tol = 0.25;
  const std::vector<std::string> failures =
      CheckReports(baseline, candidate, options);
  ASSERT_FALSE(failures.empty());
  EXPECT_NE(failures[0].find("p95.loop.train"), std::string::npos)
      << failures[0];
}

TEST(CheckReportsTest, LatencyP95WithinToleranceAndGracePasses) {
  ReportCheckOptions options;
  options.latency_p95_tol = 0.25;
  const RunReport baseline = MakeReportWithTelemetry();
  RunReport candidate = baseline;
  // +10% relative: inside the 25% tolerance.
  candidate.latency[0].p95_seconds = baseline.latency[0].p95_seconds * 1.10;
  // Tiny p95s jitter wildly in relative terms; the 10ms grace absorbs it.
  candidate.latency[1].p95_seconds = baseline.latency[1].p95_seconds + 0.009;
  EXPECT_TRUE(CheckReports(baseline, candidate, options).empty());
}

TEST(CheckReportsTest, LatencyP95GateSkipsRegionsMissingFromEitherSide) {
  ReportCheckOptions options;
  options.latency_p95_tol = 0.0;
  RunReport baseline = MakeReportWithTelemetry();
  RunReport candidate = baseline;
  // Candidate-only region (e.g. parallel.chunk at threads=4) and a
  // baseline-only region are structural, not regressions: both skipped.
  candidate.latency.push_back({"parallel.chunk", 48, 1.0, 0.5, 0.9, 1.0});
  baseline.latency.push_back({"t1.only", 1, 5.0, 5.0, 5.0, 5.0});
  EXPECT_TRUE(CheckReports(baseline, candidate, options).empty());
}

TEST(CheckReportsTest, CounterGateIsOptIn) {
  const RunReport baseline = MakeReport();
  RunReport candidate = baseline;
  for (auto& [name, value] : candidate.counters) {
    if (name == "sim.calls") value *= 3;
  }
  EXPECT_TRUE(CheckReports(baseline, candidate, ReportCheckOptions())
                  .empty());
  ReportCheckOptions options;
  options.counter_tol = 0.5;
  const std::vector<std::string> failures =
      CheckReports(baseline, candidate, options);
  ASSERT_FALSE(failures.empty());
  EXPECT_NE(failures[0].find("sim.calls"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace alem
