// Incremental training engine (docs/training.md): warm-start refits and
// the delta-based progressive-F1 evaluation.
//
// The contracts pinned here:
//   * Warm refits converge: a model warm-started onto a grown labeled set
//     scores within a small F1 tolerance of a cold fit on the same set.
//   * Warm refits are restartable: serialize -> deserialize -> FitWarm is
//     bitwise-identical to FitWarm without the round-trip (the session
//     save/resume contract extends to warm mode).
//   * Forest warm fits are path-independent: warm-fitting at n1 then at n2
//     equals warm-fitting at n2 directly, bitwise — which proves skipped
//     (untouched) trees are exactly what a refit would have produced.
//   * The incremental confusion tally equals a full rescore exactly,
//     including empty and one-row deltas, and warm_start=auto curves are
//     bitwise-identical to warm_start=off curves.
//   * The IEVL snapshot section round-trips, and a corrupt section degrades
//     to a cold evaluation cache — never a restore failure.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "core/active_loop.h"
#include "core/evaluator.h"
#include "core/learner.h"
#include "core/oracle.h"
#include "core/pool.h"
#include "core/selector.h"
#include "core/session.h"
#include "ml/linear_svm.h"
#include "ml/metrics.h"
#include "ml/neural_net.h"
#include "ml/random_forest.h"
#include "ml/serialization.h"
#include "obs/obs.h"
#include "util/rng.h"

namespace alem {
namespace {

// A 2-D, mostly separable problem with 10% class skew (like EM pairs).
struct Problem {
  FeatureMatrix features;
  std::vector<int> truth;
};

Problem MakeProblem(size_t n, uint64_t seed) {
  Rng rng(seed);
  Problem problem;
  problem.features = FeatureMatrix(n, 2);
  problem.truth.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const bool positive = i % 10 == 0;
    const double center = positive ? 0.75 : 0.3;
    problem.features.Set(
        i, 0, static_cast<float>(center + rng.NextGaussian() * 0.07));
    problem.features.Set(
        i, 1, static_cast<float>(center + rng.NextGaussian() * 0.07));
    problem.truth[i] = positive ? 1 : 0;
  }
  return problem;
}

// First-n-rows view of a problem (the labeled set at an earlier iteration).
FeatureMatrix SliceFeatures(const FeatureMatrix& features, size_t n) {
  std::vector<size_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0u);
  return features.Gather(rows);
}

std::vector<int> SliceTruth(const std::vector<int>& truth, size_t n) {
  return std::vector<int>(truth.begin(), truth.begin() + n);
}

double F1On(const std::vector<int>& predictions,
            const std::vector<int>& truth) {
  return ComputeBinaryMetrics(predictions, truth).f1;
}

// ---- Warm-start refits: convergence ------------------------------------

TEST(WarmFitTest, SvmWarmConvergesLikeCold) {
  const Problem p = MakeProblem(400, 21);
  const FeatureMatrix early = SliceFeatures(p.features, 300);
  const std::vector<int> early_truth = SliceTruth(p.truth, 300);

  LinearSvm cold(LinearSvmConfig{});
  cold.Fit(p.features, p.truth);

  LinearSvm warm(LinearSvmConfig{});
  warm.Fit(early, early_truth);
  ASSERT_TRUE(warm.FitWarm(p.features, p.truth));

  const double cold_f1 = F1On(cold.PredictAll(p.features), p.truth);
  const double warm_f1 = F1On(warm.PredictAll(p.features), p.truth);
  EXPECT_GT(warm_f1, 0.8);
  EXPECT_NEAR(warm_f1, cold_f1, 0.05);
}

TEST(WarmFitTest, NeuralNetWarmConvergesLikeCold) {
  const Problem p = MakeProblem(400, 22);
  const FeatureMatrix early = SliceFeatures(p.features, 300);
  const std::vector<int> early_truth = SliceTruth(p.truth, 300);

  NeuralNetwork cold(NeuralNetConfig{});
  cold.Fit(p.features, p.truth);

  NeuralNetwork warm(NeuralNetConfig{});
  warm.Fit(early, early_truth);
  ASSERT_TRUE(warm.FitWarm(p.features, p.truth));

  const double cold_f1 = F1On(cold.PredictAll(p.features), p.truth);
  const double warm_f1 = F1On(warm.PredictAll(p.features), p.truth);
  EXPECT_GT(warm_f1, 0.8);
  EXPECT_NEAR(warm_f1, cold_f1, 0.08);
}

TEST(WarmFitTest, ForestWarmConvergesLikeCold) {
  const Problem p = MakeProblem(400, 23);
  const FeatureMatrix early = SliceFeatures(p.features, 300);
  const std::vector<int> early_truth = SliceTruth(p.truth, 300);

  RandomForestConfig config;
  config.num_trees = 20;
  RandomForest cold(config);
  cold.Fit(p.features, p.truth);

  RandomForest warm(config);
  ASSERT_TRUE(warm.FitWarm(early, early_truth));
  ASSERT_TRUE(warm.FitWarm(p.features, p.truth));

  const double cold_f1 = F1On(cold.PredictAll(p.features), p.truth);
  const double warm_f1 = F1On(warm.PredictAll(p.features), p.truth);
  EXPECT_GT(warm_f1, 0.8);
  EXPECT_NEAR(warm_f1, cold_f1, 0.05);
}

// ---- Warm-start refits: fallbacks --------------------------------------

TEST(WarmFitTest, UntrainedModelsRejectWarmFit) {
  const Problem p = MakeProblem(100, 24);
  LinearSvm svm(LinearSvmConfig{});
  EXPECT_FALSE(svm.FitWarm(p.features, p.truth));
  NeuralNetwork nn(NeuralNetConfig{});
  EXPECT_FALSE(nn.FitWarm(p.features, p.truth));
}

TEST(WarmFitTest, ForestRejectsWarmFitOnShrunkSetOrNoBootstrap) {
  const Problem p = MakeProblem(200, 25);
  RandomForestConfig config;
  config.num_trees = 10;
  RandomForest forest(config);
  ASSERT_TRUE(forest.FitWarm(p.features, p.truth));
  // Shrinking the labeled set is outside the append-only scheme.
  const FeatureMatrix small = SliceFeatures(p.features, 100);
  const std::vector<int> small_truth = SliceTruth(p.truth, 100);
  EXPECT_FALSE(forest.FitWarm(small, small_truth));

  config.bootstrap = false;
  RandomForest no_bootstrap(config);
  no_bootstrap.Fit(p.features, p.truth);
  EXPECT_FALSE(no_bootstrap.FitWarm(p.features, p.truth));
}

TEST(WarmFitTest, LearnerFallsBackColdAndCountsThePath) {
  obs::MetricsRegistry::Global().ResetAll();
  obs::SetMetricsEnabled(true);
  const Problem p = MakeProblem(200, 26);

  SvmLearner learner{LinearSvmConfig{}};
  // First warm-hinted fit has no previous weights: falls back to cold.
  learner.Fit(p.features, p.truth, FitHint::kWarm);
  EXPECT_EQ(
      obs::MetricsRegistry::Global().GetCounter("ml.cold_fits").value(), 1u);
  EXPECT_EQ(
      obs::MetricsRegistry::Global().GetCounter("ml.warm_fits").value(), 0u);
  // Second one resumes from the first.
  learner.Fit(p.features, p.truth, FitHint::kWarm);
  EXPECT_EQ(
      obs::MetricsRegistry::Global().GetCounter("ml.warm_fits").value(), 1u);
  EXPECT_EQ(
      obs::MetricsRegistry::Global().GetCounter("ml.fit_calls").value(), 2u);
  obs::SetMetricsEnabled(false);
  obs::MetricsRegistry::Global().ResetAll();
}

// ---- Warm-start refits: restartability (bitwise) ------------------------

TEST(WarmFitTest, SvmWarmFitIsRestartable) {
  const Problem p = MakeProblem(400, 27);
  const FeatureMatrix early = SliceFeatures(p.features, 300);
  const std::vector<int> early_truth = SliceTruth(p.truth, 300);

  LinearSvm direct(LinearSvmConfig{});
  direct.Fit(early, early_truth);
  const std::string blob = SerializeSvm(direct);

  LinearSvm restored(LinearSvmConfig{});
  ASSERT_TRUE(DeserializeSvm(blob, &restored));

  ASSERT_TRUE(direct.FitWarm(p.features, p.truth));
  ASSERT_TRUE(restored.FitWarm(p.features, p.truth));
  EXPECT_EQ(SerializeSvm(direct), SerializeSvm(restored));
}

TEST(WarmFitTest, NeuralNetWarmFitIsRestartable) {
  const Problem p = MakeProblem(400, 28);
  const FeatureMatrix early = SliceFeatures(p.features, 300);
  const std::vector<int> early_truth = SliceTruth(p.truth, 300);

  NeuralNetwork direct(NeuralNetConfig{});
  direct.Fit(early, early_truth);
  const std::string blob = SerializeNeuralNet(direct);

  NeuralNetwork restored(NeuralNetConfig{});
  ASSERT_TRUE(DeserializeNeuralNet(blob, &restored));

  ASSERT_TRUE(direct.FitWarm(p.features, p.truth));
  ASSERT_TRUE(restored.FitWarm(p.features, p.truth));
  EXPECT_EQ(SerializeNeuralNet(direct), SerializeNeuralNet(restored));
}

TEST(WarmFitTest, ForestWarmFitIsRestartable) {
  const Problem p = MakeProblem(400, 29);
  const FeatureMatrix early = SliceFeatures(p.features, 300);
  const std::vector<int> early_truth = SliceTruth(p.truth, 300);

  RandomForestConfig config;
  config.num_trees = 20;
  RandomForest direct(config);
  ASSERT_TRUE(direct.FitWarm(early, early_truth));
  const std::string blob = SerializeForest(direct);

  RandomForest restored(config);
  ASSERT_TRUE(DeserializeForest(blob, &restored));
  EXPECT_EQ(restored.warm_fit_count(), 300u);

  ASSERT_TRUE(direct.FitWarm(p.features, p.truth));
  ASSERT_TRUE(restored.FitWarm(p.features, p.truth));
  EXPECT_EQ(SerializeForest(direct), SerializeForest(restored));
}

// ---- Forest: untouched trees are bitwise-preserved ----------------------

// Path independence pins the skip-vs-refit equality: warm-fitting at n then
// at n+1 must produce exactly the forest a single warm fit at n+1 produces.
// The incremental path skips every tree whose Poisson sample gained no new
// position, so equality proves a skipped tree IS what refitting would have
// rebuilt. With a one-row delta a substantial fraction of trees (~1/e) is
// skipped, which the trees_refit counter confirms.
TEST(ForestWarmTest, SkippedTreesEqualRefitResult) {
  const Problem p = MakeProblem(301, 30);
  const FeatureMatrix early = SliceFeatures(p.features, 300);
  const std::vector<int> early_truth = SliceTruth(p.truth, 300);

  RandomForestConfig config;
  config.num_trees = 30;
  RandomForest incremental(config);
  ASSERT_TRUE(incremental.FitWarm(early, early_truth));
  size_t trees_refit = 0;
  ASSERT_TRUE(incremental.FitWarm(p.features, p.truth, &trees_refit));
  // A one-row growth leaves each tree untouched with probability e^-1.
  EXPECT_LT(trees_refit, 30u);
  EXPECT_GT(trees_refit, 0u);

  RandomForest oneshot(config);
  ASSERT_TRUE(oneshot.FitWarm(p.features, p.truth));
  EXPECT_EQ(SerializeForest(incremental), SerializeForest(oneshot));
}

TEST(ForestWarmTest, ColdFitResetsTheWarmWatermark) {
  const Problem p = MakeProblem(200, 31);
  RandomForestConfig config;
  config.num_trees = 10;
  RandomForest forest(config);
  ASSERT_TRUE(forest.FitWarm(p.features, p.truth));
  EXPECT_EQ(forest.warm_fit_count(), 200u);
  forest.Fit(p.features, p.truth);
  EXPECT_EQ(forest.warm_fit_count(), 0u);
  // The serialized form of a cold-fit forest carries no watermark line.
  EXPECT_EQ(SerializeForest(forest).find("warm "), std::string::npos);
}

// ---- Incremental tally == full rescore ----------------------------------

// Replays the session's delta-tally scheme against ComputeBinaryMetrics
// over randomized prediction streams, including empty and one-row deltas:
// both funnel through MetricsFromCounts, so the doubles must be
// bitwise-equal.
TEST(IncrementalEvalTest, DeltaTallyMatchesFullRescore) {
  Rng rng(42);
  const size_t n = 500;
  std::vector<int> truth(n);
  for (size_t i = 0; i < n; ++i) truth[i] = rng.NextDouble() < 0.15 ? 1 : 0;

  std::vector<int> current(n, 0);
  size_t tp = 0, fp = 0, fn = 0, tn = 0;
  for (size_t i = 0; i < n; ++i) {
    (current[i] == 1 ? (truth[i] == 1 ? tp : fp)
                     : (truth[i] == 1 ? fn : tn))++;
  }

  for (int round = 0; round < 60; ++round) {
    // Rounds 0 and 1: empty delta. Round 2: one-row delta. Then random
    // flip counts in arbitrary index order.
    size_t flips = 0;
    if (round == 2) flips = 1;
    if (round > 2) flips = static_cast<size_t>(rng.NextDouble() * 40);
    for (size_t f = 0; f < flips; ++f) {
      const size_t i = static_cast<size_t>(rng.NextDouble() * n) % n;
      // Remove the row from its old bucket, flip, add to the new one.
      (current[i] == 1 ? (truth[i] == 1 ? tp : fp)
                       : (truth[i] == 1 ? fn : tn))--;
      current[i] = 1 - current[i];
      (current[i] == 1 ? (truth[i] == 1 ? tp : fp)
                       : (truth[i] == 1 ? fn : tn))++;
    }
    const BinaryMetrics incremental = MetricsFromCounts(tp, fp, fn, tn);
    const BinaryMetrics full = ComputeBinaryMetrics(current, truth);
    EXPECT_EQ(incremental.precision, full.precision);  // bitwise doubles
    EXPECT_EQ(incremental.recall, full.recall);
    EXPECT_EQ(incremental.f1, full.f1);
    EXPECT_EQ(incremental.true_positives, full.true_positives);
    EXPECT_EQ(incremental.false_positives, full.false_positives);
    EXPECT_EQ(incremental.false_negatives, full.false_negatives);
    EXPECT_EQ(incremental.true_negatives, full.true_negatives);
  }
}

// ---- Session-level warm-start modes --------------------------------------

struct Env {
  ActivePool pool;
  NoisyOracle oracle;
  ProgressiveEvaluator evaluator;
  SvmLearner learner;
  QbcSelector selector;

  explicit Env(const Problem& problem)
      : pool(problem.features),
        oracle(problem.truth, 0.05, 99),
        evaluator(problem.truth),
        learner{LinearSvmConfig{}},
        selector(3, 7) {}
};

ActiveLearningConfig TestConfig(WarmStartMode mode) {
  ActiveLearningConfig config;
  config.seed_size = 30;
  config.batch_size = 10;
  config.max_labels = 100;
  // Plateau-termination restarts exercise the interaction between the
  // prediction cache the plateau check keeps and the evaluation cache.
  config.plateau_window = 50;
  config.warm_start = mode;
  return config;
}

void Drive(LabelingSession* session, size_t stop_after = 0) {
  while (!session->finished()) {
    if (stop_after > 0 && session->state() == SessionState::kNeedsStep &&
        session->curve().size() >= stop_after) {
      return;
    }
    switch (session->state()) {
      case SessionState::kNeedsStep:
        ASSERT_TRUE(session->Step());
        break;
      case SessionState::kBatchReady:
        session->NextBatch();
        break;
      case SessionState::kAwaitingLabels:
        ASSERT_TRUE(session->SubmitLabels());
        break;
      default:
        FAIL() << "unexpected state";
    }
  }
}

void ExpectCurvesIdentical(const std::vector<IterationStats>& expected,
                           const std::vector<IterationStats>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE("iteration " + std::to_string(i));
    const IterationStats& a = expected[i];
    const IterationStats& b = actual[i];
    EXPECT_EQ(a.iteration, b.iteration);
    EXPECT_EQ(a.labels_used, b.labels_used);
    EXPECT_EQ(a.metrics.precision, b.metrics.precision);  // bitwise doubles
    EXPECT_EQ(a.metrics.recall, b.metrics.recall);
    EXPECT_EQ(a.metrics.f1, b.metrics.f1);
    EXPECT_EQ(a.scored_examples, b.scored_examples);
  }
}

std::vector<IterationStats> RunSession(const Problem& problem,
                                       WarmStartMode mode) {
  Env env(problem);
  LabelingSession session(env.learner, env.selector, env.oracle,
                          env.evaluator, env.pool, TestConfig(mode));
  Drive(&session);
  EXPECT_EQ(session.state(), SessionState::kFinished);
  return std::move(session).TakeCurve();
}

// `auto` keeps cold refits: the model stream is untouched, so the whole
// curve must be bitwise-identical to `off` — only the evaluation tally
// (and its periodic self-audit, which ALEM_CHECKs against a full rescore
// inside Step) is incremental.
TEST(WarmStartSessionTest, AutoCurveBitwiseIdenticalToOff) {
  const Problem problem = MakeProblem(600, 33);
  const std::vector<IterationStats> off =
      RunSession(problem, WarmStartMode::kOff);
  const std::vector<IterationStats> incremental =
      RunSession(problem, WarmStartMode::kAuto);
  ExpectCurvesIdentical(off, incremental);
}

TEST(WarmStartSessionTest, OnCurveConvergesWithinTolerance) {
  const Problem problem = MakeProblem(600, 34);
  const std::vector<IterationStats> off =
      RunSession(problem, WarmStartMode::kOff);
  const std::vector<IterationStats> warm =
      RunSession(problem, WarmStartMode::kOn);
  ASSERT_FALSE(warm.empty());
  double off_best = 0.0, warm_best = 0.0;
  for (const IterationStats& it : off) off_best = std::max(off_best, it.metrics.f1);
  for (const IterationStats& it : warm) warm_best = std::max(warm_best, it.metrics.f1);
  EXPECT_NEAR(warm_best, off_best, 0.05);
  EXPECT_NEAR(warm.back().metrics.f1, off.back().metrics.f1, 0.05);
}

TEST(WarmStartSessionTest, RowsRescoredNeverExceedsPoolPerEval) {
  obs::MetricsRegistry::Global().ResetAll();
  obs::SetMetricsEnabled(true);
  const Problem problem = MakeProblem(600, 35);
  const std::vector<IterationStats> curve =
      RunSession(problem, WarmStartMode::kAuto);
  const uint64_t rescored =
      obs::MetricsRegistry::Global().GetCounter("eval.rows_rescored").value();
  EXPECT_GT(rescored, 0u);
  // Upper bound: every eval full-rescored plus every audit full-rescored.
  EXPECT_LE(rescored, curve.size() * 2 * problem.truth.size());
  obs::SetMetricsEnabled(false);
  obs::MetricsRegistry::Global().ResetAll();
}

// ---- IEVL snapshot section ----------------------------------------------

// Pause a warm-start=on run at an iteration boundary, round-trip the ALSS
// container, restore into a fresh environment, and finish: the stitched
// curve must equal the uninterrupted warm run bitwise (warm SVM refits are
// deterministic-restartable, and the IEVL section carries the evaluation
// cache across the pause).
TEST(WarmStartSessionTest, WarmSaveResumeBitwiseIdentical) {
  const Problem problem = MakeProblem(600, 36);
  const std::vector<IterationStats> golden =
      RunSession(problem, WarmStartMode::kOn);
  ASSERT_GE(golden.size(), 4u);

  for (const size_t boundary : {size_t{1}, golden.size() / 2}) {
    SCOPED_TRACE("boundary " + std::to_string(boundary));
    Env first_env(problem);
    LabelingSession first(first_env.learner, first_env.selector,
                          first_env.oracle, first_env.evaluator,
                          first_env.pool, TestConfig(WarmStartMode::kOn));
    Drive(&first, boundary);
    ASSERT_EQ(first.state(), SessionState::kNeedsStep);

    SessionSnapshot saved;
    std::string error;
    ASSERT_TRUE(first.SaveTo(&saved, &error)) << error;
    EXPECT_TRUE(saved.has("IEVL"));

    SessionSnapshot loaded;
    ASSERT_TRUE(SessionSnapshot::Parse(saved.Serialize(), &loaded, &error))
        << error;
    // The snapshot's loop config carries the mode.
    ActiveLearningConfig decoded;
    ASSERT_TRUE(DecodeSessionLoopConfig(loaded, &decoded));
    EXPECT_EQ(decoded.warm_start, WarmStartMode::kOn);

    Env second_env(problem);
    std::unique_ptr<LabelingSession> resumed = LabelingSession::Restore(
        second_env.learner, second_env.selector, second_env.oracle,
        second_env.evaluator, second_env.pool, loaded, &error);
    ASSERT_NE(resumed, nullptr) << error;
    Drive(resumed.get());
    ASSERT_EQ(resumed->state(), SessionState::kFinished);
    ExpectCurvesIdentical(golden, std::move(*resumed).TakeCurve());
  }
}

// A corrupt (or garbage) IEVL section must degrade to a cold evaluation
// cache on restore — never fail the restore — and since the incremental
// tally equals a full rescore exactly, the finished curve is still
// bitwise-identical to the uninterrupted run.
TEST(WarmStartSessionTest, CorruptEvalCacheFallsBackCold) {
  const Problem problem = MakeProblem(600, 36);
  const std::vector<IterationStats> golden =
      RunSession(problem, WarmStartMode::kOn);
  ASSERT_GE(golden.size(), 3u);

  Env first_env(problem);
  LabelingSession first(first_env.learner, first_env.selector,
                        first_env.oracle, first_env.evaluator, first_env.pool,
                        TestConfig(WarmStartMode::kOn));
  Drive(&first, 2);
  ASSERT_EQ(first.state(), SessionState::kNeedsStep);

  SessionSnapshot saved;
  std::string error;
  ASSERT_TRUE(first.SaveTo(&saved, &error)) << error;
  ASSERT_TRUE(saved.has("IEVL"));
  saved.set("IEVL", "definitely not a valid eval cache");

  Env second_env(problem);
  std::unique_ptr<LabelingSession> resumed = LabelingSession::Restore(
      second_env.learner, second_env.selector, second_env.oracle,
      second_env.evaluator, second_env.pool, saved, &error);
  ASSERT_NE(resumed, nullptr) << error;
  Drive(resumed.get());
  ASSERT_EQ(resumed->state(), SessionState::kFinished);
  ExpectCurvesIdentical(golden, std::move(*resumed).TakeCurve());
}

// Off-mode sessions write no IEVL section: old-reader compatibility and
// the exact-replay default are unchanged.
TEST(WarmStartSessionTest, OffModeWritesNoEvalSection) {
  const Problem problem = MakeProblem(600, 37);
  Env env(problem);
  LabelingSession session(env.learner, env.selector, env.oracle,
                          env.evaluator, env.pool,
                          TestConfig(WarmStartMode::kOff));
  Drive(&session, 2);
  SessionSnapshot saved;
  std::string error;
  ASSERT_TRUE(session.SaveTo(&saved, &error)) << error;
  EXPECT_FALSE(saved.has("IEVL"));
}

TEST(WarmStartModeTest, NamesRoundTrip) {
  for (const WarmStartMode mode :
       {WarmStartMode::kOff, WarmStartMode::kOn, WarmStartMode::kAuto}) {
    WarmStartMode parsed = WarmStartMode::kOff;
    ASSERT_TRUE(ParseWarmStartMode(WarmStartModeName(mode), &parsed));
    EXPECT_EQ(parsed, mode);
  }
  WarmStartMode parsed = WarmStartMode::kOff;
  EXPECT_FALSE(ParseWarmStartMode("warm", &parsed));
  EXPECT_FALSE(ParseWarmStartMode("", &parsed));
}

}  // namespace
}  // namespace alem
