#include <gtest/gtest.h>

#include "ml/metrics.h"
#include "ml/serialization.h"
#include "util/rng.h"

namespace alem {
namespace {

void MakeXor(size_t n, uint64_t seed, FeatureMatrix* features,
             std::vector<int>* labels) {
  Rng rng(seed);
  *features = FeatureMatrix(n, 2);
  labels->resize(n);
  for (size_t i = 0; i < n; ++i) {
    const bool a = rng.NextBernoulli(0.5);
    const bool b = rng.NextBernoulli(0.5);
    features->Set(i, 0,
                  static_cast<float>((a ? 0.8 : 0.2) + rng.NextGaussian() * 0.05));
    features->Set(i, 1,
                  static_cast<float>((b ? 0.8 : 0.2) + rng.NextGaussian() * 0.05));
    (*labels)[i] = (a != b) ? 1 : 0;
  }
}

TEST(SerializationTest, SvmRoundTripPreservesPredictions) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeXor(200, 1, &features, &labels);
  LinearSvm original(LinearSvmConfig{});
  original.Fit(features, labels);

  LinearSvm restored;
  ASSERT_TRUE(DeserializeSvm(SerializeSvm(original), &restored));
  ASSERT_TRUE(restored.trained());
  EXPECT_EQ(restored.weights(), original.weights());
  EXPECT_DOUBLE_EQ(restored.bias(), original.bias());
  for (size_t i = 0; i < features.rows(); ++i) {
    EXPECT_DOUBLE_EQ(restored.Margin(features.Row(i)),
                     original.Margin(features.Row(i)));
  }
}

TEST(SerializationTest, TreeRoundTripPreservesPredictions) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeXor(300, 2, &features, &labels);
  DecisionTreeConfig config;
  config.max_features = -1;
  DecisionTree original(config);
  original.Fit(features, labels);

  DecisionTree restored;
  ASSERT_TRUE(DeserializeTree(SerializeTree(original), &restored));
  EXPECT_EQ(restored.depth(), original.depth());
  EXPECT_EQ(restored.num_nodes(), original.num_nodes());
  for (size_t i = 0; i < features.rows(); ++i) {
    EXPECT_EQ(restored.Predict(features.Row(i)),
              original.Predict(features.Row(i)));
  }
}

TEST(SerializationTest, ForestRoundTripPreservesVotes) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeXor(250, 3, &features, &labels);
  RandomForestConfig config;
  config.num_trees = 7;
  RandomForest original(config);
  original.Fit(features, labels);

  RandomForest restored;
  ASSERT_TRUE(DeserializeForest(SerializeForest(original), &restored));
  EXPECT_EQ(restored.trees().size(), original.trees().size());
  for (size_t i = 0; i < features.rows(); ++i) {
    EXPECT_DOUBLE_EQ(restored.PositiveFraction(features.Row(i)),
                     original.PositiveFraction(features.Row(i)));
  }
}

TEST(SerializationTest, NeuralNetRoundTripPreservesMargins) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeXor(200, 4, &features, &labels);
  NeuralNetConfig config;
  config.hidden_sizes = {16, 8};
  NeuralNetwork original(config);
  original.Fit(features, labels);

  NeuralNetwork restored;
  ASSERT_TRUE(DeserializeNeuralNet(SerializeNeuralNet(original), &restored));
  for (size_t i = 0; i < features.rows(); ++i) {
    EXPECT_DOUBLE_EQ(restored.Margin(features.Row(i)),
                     original.Margin(features.Row(i)));
  }
}

TEST(SerializationTest, DnfRoundTrip) {
  Dnf original;
  original.conjunctions.push_back(Conjunction{{0, 3, 7}});
  original.conjunctions.push_back(Conjunction{{2}});
  Dnf restored;
  ASSERT_TRUE(DeserializeDnf(SerializeDnf(original), &restored));
  ASSERT_EQ(restored.conjunctions.size(), 2u);
  EXPECT_EQ(restored.conjunctions[0].atoms, original.conjunctions[0].atoms);
  EXPECT_EQ(restored.conjunctions[1].atoms, original.conjunctions[1].atoms);
}

TEST(SerializationTest, EmptyDnfRoundTrip) {
  Dnf original;
  Dnf restored;
  ASSERT_TRUE(DeserializeDnf(SerializeDnf(original), &restored));
  EXPECT_TRUE(restored.conjunctions.empty());
}

TEST(SerializationTest, RejectsWrongTag) {
  LinearSvm svm;
  EXPECT_FALSE(DeserializeSvm("alem-tree\n1\n", &svm));
  DecisionTree tree;
  EXPECT_FALSE(DeserializeTree("alem-svm\n1\n", &tree));
  Dnf dnf;
  EXPECT_FALSE(DeserializeDnf("", &dnf));
}

TEST(SerializationTest, RejectsTruncatedBlob) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeXor(100, 5, &features, &labels);
  LinearSvm original(LinearSvmConfig{});
  original.Fit(features, labels);
  const std::string blob = SerializeSvm(original);
  LinearSvm restored;
  EXPECT_FALSE(DeserializeSvm(blob.substr(0, blob.size() / 2), &restored));
}

TEST(SerializationTest, RejectsCorruptNodeIndices) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeXor(100, 6, &features, &labels);
  DecisionTree original;
  original.Fit(features, labels);
  std::string blob = SerializeTree(original);
  // Corrupt the node count to something absurd.
  const size_t pos = blob.find('\n', blob.find("alem-tree"));
  (void)pos;
  DecisionTree restored;
  EXPECT_FALSE(DeserializeTree("alem-tree\n1\n0 2 0 1\n0\n0\n999999999\n",
                               &restored));
}

TEST(SerializationTest, FileRoundTrip) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeXor(150, 7, &features, &labels);
  RandomForestConfig config;
  config.num_trees = 3;
  RandomForest original(config);
  original.Fit(features, labels);

  const std::string path = ::testing::TempDir() + "/alem_model.txt";
  ASSERT_TRUE(SaveToFile(path, SerializeForest(original)));
  std::string blob;
  ASSERT_TRUE(LoadFromFile(path, &blob));
  RandomForest restored;
  ASSERT_TRUE(DeserializeForest(blob, &restored));
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(restored.Predict(features.Row(i)),
              original.Predict(features.Row(i)));
  }
}

}  // namespace
}  // namespace alem
