// Differential harness for the runtime-dispatched kernel backends
// (src/kernels/). For every backend available on this host, each kernel is
// driven over randomized inputs — seeded RNG, odd lengths, unaligned
// tails, empty and single-row chunks, denormal-adjacent magnitudes — and
// compared against the scalar reference (kernel_scalar.cc).
//
// Equivalence contract (docs/kernels.md): every kernel registered today is
// REORDER-FREE, so the comparisons below assert exact equality — EXPECT_EQ
// on doubles/floats, i.e. 0 ULP. The UlpDistance helper exists so a future
// reassociating backend (e.g. an FMA-tiled GEMV) can be held to a
// documented nonzero ULP bound instead of silently weakening the bitwise
// tests; until such a backend exists, it doubles as a second witness that
// the distance really is zero.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "kernels/backend.h"
#include "ml/linear_svm.h"
#include "ml/neural_net.h"
#include "sim/similarity.h"
#include "util/rng.h"

namespace alem {
namespace {

// Forces a backend for the scope of one test body and restores the
// previously active backend on destruction.
class BackendScope {
 public:
  explicit BackendScope(std::string_view name)
      : previous_(kernels::BackendName()) {
    ok_ = kernels::SetBackend(name, &error_);
  }
  ~BackendScope() { kernels::SetBackend(previous_, nullptr); }
  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

 private:
  std::string previous_;
  std::string error_;
  bool ok_ = false;
};

std::vector<std::string> NonScalarBackends() {
  std::vector<std::string> names;
  for (const std::string_view name : kernels::AvailableBackendNames()) {
    if (name != "scalar") names.emplace_back(name);
  }
  return names;
}

// Raw bit pattern; the strongest possible equality (distinguishes -0.0
// from +0.0 and one NaN payload from another).
uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// ULP distance between two doubles: 0 for numerically equal values (so
// +0.0 and -0.0 are distance 0), max() when either is NaN.
uint64_t UlpDistance(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<uint64_t>::max();
  }
  auto ordered = [](double v) {
    int64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    // Map the sign-magnitude double ordering onto the integer line.
    return bits < 0 ? std::numeric_limits<int64_t>::min() - bits : bits;
  };
  const int64_t ia = ordered(a);
  const int64_t ib = ordered(b);
  return ia > ib ? static_cast<uint64_t>(ia) - static_cast<uint64_t>(ib)
                 : static_cast<uint64_t>(ib) - static_cast<uint64_t>(ia);
}

TEST(UlpDistanceTest, BehavesAsDocumented) {
  EXPECT_EQ(UlpDistance(1.0, 1.0), 0u);
  EXPECT_EQ(UlpDistance(0.0, -0.0), 0u);
  EXPECT_EQ(UlpDistance(1.0, std::nextafter(1.0, 2.0)), 1u);
  EXPECT_EQ(UlpDistance(-1.0, std::nextafter(-1.0, -2.0)), 1u);
  EXPECT_EQ(UlpDistance(std::nan(""), 1.0),
            std::numeric_limits<uint64_t>::max());
}

// ---- Dispatch semantics ------------------------------------------------

TEST(KernelDispatchTest, ScalarIsAlwaysAvailable) {
  EXPECT_TRUE(kernels::BackendAvailable(kernels::Backend::kScalar));
  const auto names = kernels::AvailableBackendNames();
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.front(), "scalar");
}

TEST(KernelDispatchTest, AutoNeverSelectsUnavailableBackend) {
  BackendScope scope("auto");
  ASSERT_TRUE(scope.ok());
  EXPECT_TRUE(kernels::BackendAvailable(kernels::ActiveBackend()));
}

TEST(KernelDispatchTest, EveryAvailableBackendIsSelectable) {
  for (const std::string_view name : kernels::AvailableBackendNames()) {
    BackendScope scope(name);
    EXPECT_TRUE(scope.ok()) << name << ": " << scope.error();
    EXPECT_EQ(kernels::BackendName(), name);
    EXPECT_STREQ(kernels::Active().name, std::string(name).c_str());
  }
}

TEST(KernelDispatchTest, UnknownBackendIsRejected) {
  const std::string before(kernels::BackendName());
  std::string error;
  EXPECT_FALSE(kernels::SetBackend("sse9", &error));
  EXPECT_NE(error.find("sse9"), std::string::npos);
  EXPECT_EQ(kernels::BackendName(), before);  // Active selection unchanged.
}

TEST(KernelDispatchTest, UnavailableBackendIsRejected) {
  if (kernels::BackendAvailable(kernels::Backend::kAvx2)) {
    GTEST_SKIP() << "avx2 is available on this host";
  }
  std::string error;
  EXPECT_FALSE(kernels::SetBackend("avx2", &error));
  EXPECT_NE(error.find("avx2"), std::string::npos);
}

TEST(KernelDispatchTest, BackendNamesRoundTrip) {
  EXPECT_EQ(kernels::BackendToName(kernels::Backend::kScalar), "scalar");
  EXPECT_EQ(kernels::BackendToName(kernels::Backend::kAvx2), "avx2");
}

// ---- Per-kernel randomized differential tests --------------------------
//
// Each test fetches the scalar table once, then replays identical inputs
// through every available non-scalar backend's table and demands exact
// agreement. Inputs deliberately cover empty ranges, single elements,
// sizes straddling the vector widths (8/32 lanes), and misaligned
// pointers (the kernels use unaligned loads; slicing buffers at odd
// offsets would catch any alignment assumption).

const kernels::KernelOps& OpsFor(const std::string& name) {
  // BackendScope flips the active table; grab the pointer while forced.
  BackendScope scope(name);
  EXPECT_TRUE(scope.ok()) << scope.error();
  return kernels::Active();
}

TEST(KernelDifferentialTest, JaroScanMatchesScalar) {
  const kernels::KernelOps& scalar = OpsFor("scalar");
  for (const std::string& backend : NonScalarBackends()) {
    const kernels::KernelOps& ops = OpsFor(backend);
    Rng rng(1234);
    const char alphabet[] = "abcdz";  // Few symbols => many matches.
    for (int round = 0; round < 200; ++round) {
      const size_t m = rng.NextBelow(130);  // 0..129: straddles 32, 64, 96.
      std::string b(m, 'x');
      std::vector<uint8_t> matched(m + 1, 0);  // +1 so m==0 has a pointer.
      for (size_t j = 0; j < m; ++j) {
        b[j] = alphabet[rng.NextBelow(5)];
        matched[j] = rng.NextBernoulli(0.3) ? 1 : 0;
      }
      const char c = alphabet[rng.NextBelow(5)];
      // Random window, including empty (lo == hi) and full-width.
      size_t lo = rng.NextBelow(m + 1);
      size_t hi = rng.NextBelow(m + 1);
      if (lo > hi) std::swap(lo, hi);
      const size_t expected =
          scalar.jaro_scan(b.data(), matched.data(), lo, hi, c);
      const size_t actual = ops.jaro_scan(b.data(), matched.data(), lo, hi, c);
      ASSERT_EQ(actual, expected)
          << backend << " round " << round << " m=" << m << " lo=" << lo
          << " hi=" << hi << " c=" << c;
    }
  }
}

TEST(KernelDifferentialTest, LevRowMatchesScalar) {
  const kernels::KernelOps& scalar = OpsFor("scalar");
  for (const std::string& backend : NonScalarBackends()) {
    const kernels::KernelOps& ops = OpsFor(backend);
    Rng rng(99);
    const size_t lengths[] = {0, 1, 2, 7, 8, 9, 15, 16, 17, 63, 64, 65, 100};
    for (const size_t m : lengths) {
      for (int round = 0; round < 40; ++round) {
        std::string b(m, 'x');
        for (size_t j = 0; j < m; ++j) {
          b[j] = static_cast<char>('a' + rng.NextBelow(4));
        }
        // Random previous row: arbitrary non-negative ints, not just valid
        // DP states, so the prefix-min decomposition is stressed beyond
        // what real edit distances produce.
        std::vector<int> prev(m + 1);
        for (size_t j = 0; j <= m; ++j) {
          prev[j] = static_cast<int>(rng.NextBelow(200));
        }
        const char a_char = static_cast<char>('a' + rng.NextBelow(4));
        const int row_index = static_cast<int>(rng.NextBelow(100));
        std::vector<int> expected(m + 1, -1);
        std::vector<int> actual(m + 1, -2);
        scalar.lev_row(prev.data(), expected.data(), b.data(), m, a_char,
                       row_index);
        ops.lev_row(prev.data(), actual.data(), b.data(), m, a_char,
                    row_index);
        ASSERT_EQ(actual, expected)
            << backend << " m=" << m << " round " << round;
      }
    }
  }
}

// Values spanning ~600 orders of magnitude, including denormal-adjacent
// magnitudes: any double-rounding or flush-to-zero difference in a backend
// would surface as a ULP gap here.
double RandomMagnitude(Rng& rng) {
  static const double magnitudes[] = {
      0.0,    1e-320, 5e-310, 2.2250738585072014e-308,  // Denormal range.
      1e-30,  1e-3,   0.5,    1.0,
      3.7,    1e3,    1e30,   1e300,
  };
  double v = magnitudes[rng.NextBelow(12)] *
             (0.5 + rng.NextDouble());  // Perturb off the round numbers.
  return rng.NextBernoulli(0.5) ? v : -v;
}

// Same idea within float range (float-denormal-adjacent at 1e-40), so
// double->float conversion of test inputs never overflows.
float RandomFloatMagnitude(Rng& rng) {
  static const double magnitudes[] = {0.0, 1e-40, 1e-30, 1e-3, 0.5,
                                      1.0, 3.7,   1e3,   1e30};
  const double v = magnitudes[rng.NextBelow(9)] * (0.5 + rng.NextDouble());
  return static_cast<float>(rng.NextBernoulli(0.5) ? v : -v);
}

TEST(KernelDifferentialTest, SvmMarginBlockMatchesScalarBitwise) {
  const kernels::KernelOps& scalar = OpsFor("scalar");
  for (const std::string& backend : NonScalarBackends()) {
    const kernels::KernelOps& ops = OpsFor(backend);
    Rng rng(7);
    const size_t dims[] = {0, 1, 3, 7, 8, 9, 16, 17, 63, 64, 65};
    for (const size_t d : dims) {
      for (size_t nrows = 0; nrows <= kernels::kSvmMarginBlock; ++nrows) {
        std::vector<double> w(d + 1);
        for (double& v : w) v = RandomMagnitude(rng);
        // One misaligned backing buffer; rows start at odd offsets.
        std::vector<float> storage(kernels::kSvmMarginBlock * (d + 3));
        for (float& v : storage) v = RandomFloatMagnitude(rng);
        const float* x[kernels::kSvmMarginBlock];
        for (size_t r = 0; r < nrows; ++r) {
          x[r] = storage.data() + r * (d + 3) + (r % 3);
        }
        const double bias = RandomMagnitude(rng);
        std::vector<double> expected(nrows + 1, -1.0);
        std::vector<double> actual(nrows + 1, -2.0);
        scalar.svm_margin_block(w.data(), d, bias, x, nrows, expected.data());
        ops.svm_margin_block(w.data(), d, bias, x, nrows, actual.data());
        for (size_t r = 0; r < nrows; ++r) {
          // Raw-bit equality: extreme magnitudes can overflow to inf/NaN,
          // and even those must propagate identically in every backend.
          ASSERT_EQ(DoubleBits(actual[r]), DoubleBits(expected[r]))
              << backend << " d=" << d << " nrows=" << nrows << " row " << r
              << ": " << actual[r] << " vs " << expected[r];
          if (!std::isnan(expected[r])) {
            ASSERT_EQ(UlpDistance(actual[r], expected[r]), 0u);
          }
        }
      }
    }
  }
}

TEST(KernelDifferentialTest, NnAffineMatchesScalarBitwise) {
  const kernels::KernelOps& scalar = OpsFor("scalar");
  for (const std::string& backend : NonScalarBackends()) {
    const kernels::KernelOps& ops = OpsFor(backend);
    Rng rng(11);
    const size_t widths[] = {1, 2, 3, 4, 5, 7, 8, 9, 16, 17, 33};
    for (const size_t in : widths) {
      for (const size_t out : widths) {
        std::vector<double> w(in * out);
        std::vector<double> wt(in * out);
        for (size_t o = 0; o < out; ++o) {
          for (size_t j = 0; j < in; ++j) {
            w[o * in + j] = RandomMagnitude(rng);
            wt[j * out + o] = w[o * in + j];
          }
        }
        std::vector<double> bias(out);
        for (double& v : bias) v = RandomMagnitude(rng);
        std::vector<float> x32(in);
        std::vector<double> x64(in);
        for (size_t j = 0; j < in; ++j) {
          x32[j] = RandomFloatMagnitude(rng);
          x64[j] = RandomMagnitude(rng);
        }
        std::vector<double> expected(out), actual(out);
        scalar.nn_affine_f32(w.data(), nullptr, bias.data(), in, out,
                             x32.data(), expected.data());
        ops.nn_affine_f32(w.data(), wt.data(), bias.data(), in, out,
                          x32.data(), actual.data());
        for (size_t o = 0; o < out; ++o) {
          ASSERT_EQ(DoubleBits(actual[o]), DoubleBits(expected[o]))
              << backend << " f32 in=" << in << " out=" << out << " o=" << o
              << ": " << actual[o] << " vs " << expected[o];
        }
        scalar.nn_affine_f64(w.data(), nullptr, bias.data(), in, out,
                             x64.data(), expected.data());
        ops.nn_affine_f64(w.data(), wt.data(), bias.data(), in, out,
                          x64.data(), actual.data());
        for (size_t o = 0; o < out; ++o) {
          ASSERT_EQ(DoubleBits(actual[o]), DoubleBits(expected[o]))
              << backend << " f64 in=" << in << " out=" << out << " o=" << o
              << ": " << actual[o] << " vs " << expected[o];
          if (!std::isnan(expected[o])) {
            ASSERT_EQ(UlpDistance(actual[o], expected[o]), 0u);
          }
        }
      }
    }
  }
}

// ---- EvaluateBatch differential + chunk-boundary fuzz ------------------
//
// All 21 similarity functions, run through the public batch entry point
// under every available backend and compared bitwise against the forced-
// scalar result. Pair counts straddle the sim.batch grain (256): 0, 1,
// 255, 256, 257. String material includes empty, single-char, multi-byte
// UTF-8 (odd q-gram tails), and strings at/over the kMaxAlignmentLength
// cap of the edit-based functions.

std::vector<AttributeProfile> FuzzProfiles() {
  std::vector<std::string> samples = {
      "",
      "x",
      "sony camera",
      "canon powershot sx",
      "299.99",
      "kx-200 zoom",
      // Multi-byte UTF-8: q-gram windows land mid-codepoint.
      "caf\xc3\xa9 m\xc3\xbcnchen stra\xc3\x9f",
      "\xe6\x9d\xb1\xe4\xba\xac\xe9\x83\xbd",
      std::string(63, 'a'),
      std::string(64, 'b'),
      // Over the kMaxAlignmentLength=64 cap; edit sims truncate these.
      std::string(65, 'c') + "tail",
      std::string(300, 'd') + " tokens here too",
  };
  std::vector<AttributeProfile> profiles;
  profiles.reserve(samples.size());
  for (const std::string& s : samples) {
    profiles.push_back(AttributeProfile::Build(s));
  }
  return profiles;
}

TEST(KernelBatchDifferentialTest, AllSimilaritiesMatchScalarAtChunkEdges) {
  const std::vector<AttributeProfile> profiles = FuzzProfiles();
  Rng rng(42);
  const size_t pair_counts[] = {0, 1, 255, 256, 257};
  const std::vector<std::string> backends = NonScalarBackends();
  for (const SimilarityFunction* function : AllSimilarityFunctions()) {
    for (const size_t count : pair_counts) {
      std::vector<const AttributeProfile*> left(count);
      std::vector<const AttributeProfile*> right(count);
      for (size_t i = 0; i < count; ++i) {
        left[i] = &profiles[rng.NextBelow(profiles.size())];
        right[i] = &profiles[rng.NextBelow(profiles.size())];
      }
      std::vector<float> reference(count + 1, -1.0f);
      {
        BackendScope scope("scalar");
        ASSERT_TRUE(scope.ok());
        function->EvaluateBatch(left, right, reference.data());
      }
      for (const std::string& backend : backends) {
        BackendScope scope(backend);
        ASSERT_TRUE(scope.ok()) << scope.error();
        std::vector<float> candidate(count + 1, -2.0f);
        function->EvaluateBatch(left, right, candidate.data());
        for (size_t i = 0; i < count; ++i) {
          ASSERT_EQ(candidate[i], reference[i])
              << function->name() << " under " << backend << " pair " << i
              << " count=" << count;
        }
      }
    }
  }
}

// ---- End-to-end learner differential -----------------------------------
//
// Models are trained once (training is scalar regardless of backend), then
// batch inference under every backend must reproduce the scalar per-row
// Margin bit for bit — the same pin ml_batch_test enforces for the batch
// path itself, here extended across backends.

void MakeBlobs(size_t n, size_t dims, uint64_t seed, FeatureMatrix* features,
               std::vector<int>* labels) {
  Rng rng(seed);
  *features = FeatureMatrix(n, dims);
  labels->resize(n);
  for (size_t i = 0; i < n; ++i) {
    const bool positive = i % 2 == 0;
    const double center = positive ? 0.8 : 0.2;
    for (size_t d = 0; d < dims; ++d) {
      const float v = static_cast<float>(center + rng.NextGaussian() * 0.15);
      features->Set(i, d, rng.NextBernoulli(0.1) ? 0.0f : v);
    }
    (*labels)[i] = positive ? 1 : 0;
  }
}

TEST(KernelLearnerDifferentialTest, SvmMarginBatchBitwiseAcrossBackends) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeBlobs(300, 13, 5, &features, &labels);  // 13 dims: vector tail of 5.
  LinearSvm svm(LinearSvmConfig{});
  svm.Fit(features, labels);
  std::vector<size_t> rows(features.rows());
  std::iota(rows.begin(), rows.end(), 0u);

  for (const std::string_view backend : kernels::AvailableBackendNames()) {
    BackendScope scope(backend);
    ASSERT_TRUE(scope.ok()) << scope.error();
    std::vector<double> batch(rows.size());
    svm.MarginBatch(features, rows, batch.data());
    for (size_t i = 0; i < rows.size(); ++i) {
      ASSERT_EQ(batch[i], svm.Margin(features.Row(rows[i])))
          << backend << " row " << i;
    }
  }
}

TEST(KernelLearnerDifferentialTest, NeuralNetMarginBatchBitwiseAcrossBackends) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeBlobs(200, 9, 6, &features, &labels);
  for (const bool batch_norm : {false, true}) {
    NeuralNetConfig config;
    config.epochs = 10;
    config.hidden_sizes = {17, 5};  // Unit tails for the 4-wide kernels.
    config.use_batch_norm = batch_norm;
    NeuralNetwork net(config);
    net.Fit(features, labels);
    std::vector<size_t> rows(features.rows());
    std::iota(rows.begin(), rows.end(), 0u);

    for (const std::string_view backend : kernels::AvailableBackendNames()) {
      BackendScope scope(backend);
      ASSERT_TRUE(scope.ok()) << scope.error();
      std::vector<double> batch(rows.size());
      net.MarginBatch(features, rows, batch.data());
      for (size_t i = 0; i < rows.size(); ++i) {
        ASSERT_EQ(batch[i], net.Margin(features.Row(rows[i])))
            << backend << " bn=" << batch_norm << " row " << i;
      }
    }
  }
}

}  // namespace
}  // namespace alem
