#include <gtest/gtest.h>

#include "core/approaches.h"
#include "core/learner.h"
#include "util/rng.h"

namespace alem {
namespace {

void MakeBlobs(size_t n, FeatureMatrix* features, std::vector<int>* labels) {
  Rng rng(1);
  *features = FeatureMatrix(n, 2);
  labels->resize(n);
  for (size_t i = 0; i < n; ++i) {
    const bool positive = i % 2 == 0;
    const double center = positive ? 0.8 : 0.2;
    features->Set(i, 0, static_cast<float>(center + rng.NextGaussian() * 0.05));
    features->Set(i, 1, static_cast<float>(center + rng.NextGaussian() * 0.05));
    (*labels)[i] = positive ? 1 : 0;
  }
}

template <typename LearnerType>
void ExpectCloneIsUntrainedSameType(const LearnerType& learner) {
  const std::unique_ptr<Learner> clone = learner.CloneUntrained();
  EXPECT_FALSE(clone->trained());
  EXPECT_EQ(clone->name(), learner.name());
  EXPECT_NE(dynamic_cast<const LearnerType*>(clone.get()), nullptr);
}

TEST(LearnerWrapperTest, AllWrappersCloneUntrained) {
  ExpectCloneIsUntrainedSameType(SvmLearner{});
  ExpectCloneIsUntrainedSameType(NeuralNetLearner{});
  ExpectCloneIsUntrainedSameType(ForestLearner{});
  ExpectCloneIsUntrainedSameType(RuleLearner{});
}

TEST(LearnerWrapperTest, PredictAllMatchesPredict) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeBlobs(100, &features, &labels);
  SvmLearner learner{LinearSvmConfig{}};
  learner.Fit(features, labels);
  const std::vector<int> all = learner.PredictAll(features);
  for (size_t i = 0; i < features.rows(); ++i) {
    EXPECT_EQ(all[i], learner.Predict(features.Row(i)));
  }
}

TEST(LearnerWrapperTest, SetSeedChangesStochasticModels) {
  // Label noise keeps the trees from all agreeing everywhere, so different
  // bootstrap seeds become observable through the vote fractions.
  FeatureMatrix features;
  std::vector<int> labels;
  MakeBlobs(120, &features, &labels);
  Rng noise(9);
  for (int& label : labels) {
    if (noise.NextBernoulli(0.25)) label = 1 - label;
  }
  ForestLearner a{RandomForestConfig{}};
  ForestLearner b{RandomForestConfig{}};
  a.set_seed(1);
  b.set_seed(2);
  a.Fit(features, labels);
  b.Fit(features, labels);
  bool differs = false;
  for (size_t i = 0; i < features.rows() && !differs; ++i) {
    differs = a.PositiveFraction(features.Row(i)) !=
              b.PositiveFraction(features.Row(i));
  }
  EXPECT_TRUE(differs);
}

TEST(LearnerWrapperTest, MarginLearnersExposeMargins) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeBlobs(100, &features, &labels);
  SvmLearner svm{LinearSvmConfig{}};
  svm.Fit(features, labels);
  NeuralNetLearner nn{NeuralNetConfig{}};
  nn.Fit(features, labels);
  for (const MarginLearner* learner :
       {static_cast<const MarginLearner*>(&svm),
        static_cast<const MarginLearner*>(&nn)}) {
    for (size_t i = 0; i < 10; ++i) {
      const double margin = learner->Margin(features.Row(i));
      EXPECT_EQ(learner->Predict(features.Row(i)), margin > 0.0 ? 1 : 0);
    }
  }
}

// ---- Approach factory ----

TEST(MakeApproachTest, BuildsAllDeclaredCombos) {
  for (const ApproachSpec& spec :
       {TreesSpec(5), LinearMarginSpec(0), LinearMarginSpec(3),
        LinearMarginEnsembleSpec(), LinearQbcSpec(2), NeuralMarginSpec(),
        NeuralMarginEnsembleSpec(),
        NeuralQbcSpec(4), RulesLfpLfnSpec(), RulesQbcSpec(2),
        SupervisedTreesSpec(5), DeepMatcherSpec()}) {
    const Approach approach = MakeApproach(spec, 1);
    ASSERT_NE(approach.learner, nullptr) << spec.DisplayName();
    ASSERT_NE(approach.selector, nullptr) << spec.DisplayName();
    EXPECT_TRUE(approach.selector->CompatibleWith(*approach.learner))
        << spec.DisplayName();
  }
}

TEST(MakeApproachTest, ForestSizeHonored) {
  const Approach approach = MakeApproach(TreesSpec(7), 1);
  const auto* forest = dynamic_cast<ForestLearner*>(approach.learner.get());
  ASSERT_NE(forest, nullptr);
  EXPECT_EQ(forest->model().config().num_trees, 7);
}

TEST(MakeApproachTest, MarginBlockingDimsHonored) {
  const Approach approach = MakeApproach(LinearMarginSpec(4), 1);
  const auto* margin =
      dynamic_cast<MarginSelector*>(approach.selector.get());
  ASSERT_NE(margin, nullptr);
  EXPECT_EQ(margin->blocking_dims(), 4u);
}

TEST(MakeApproachTest, DeepMatcherIsTwoLayerNetwork) {
  const Approach approach = MakeApproach(DeepMatcherSpec(), 1);
  const auto* nn = dynamic_cast<NeuralNetLearner*>(approach.learner.get());
  ASSERT_NE(nn, nullptr);
  EXPECT_EQ(nn->model().config().hidden_sizes.size(), 2u);
  EXPECT_NE(dynamic_cast<RandomSelector*>(approach.selector.get()), nullptr);
}

TEST(MakeApproachTest, IncompatibleEnsembleAborts) {
  ApproachSpec spec = TreesSpec(5);
  spec.active_ensemble = true;  // Forests have no margin.
  EXPECT_DEATH({ MakeApproach(spec, 1); }, "");
}

}  // namespace
}  // namespace alem
