#include <gtest/gtest.h>

#include <cmath>

#include "ml/metrics.h"
#include "ml/neural_net.h"
#include "util/rng.h"

namespace alem {
namespace {

// XOR-like data in the unit square: positives in the (low, high) and
// (high, low) corners — not linearly separable.
void MakeXor(size_t n, uint64_t seed, FeatureMatrix* features,
             std::vector<int>* labels) {
  Rng rng(seed);
  *features = FeatureMatrix(n, 2);
  labels->resize(n);
  for (size_t i = 0; i < n; ++i) {
    const bool a = rng.NextBernoulli(0.5);
    const bool b = rng.NextBernoulli(0.5);
    features->Set(i, 0,
                  static_cast<float>((a ? 0.8 : 0.2) + rng.NextGaussian() * 0.05));
    features->Set(i, 1,
                  static_cast<float>((b ? 0.8 : 0.2) + rng.NextGaussian() * 0.05));
    (*labels)[i] = (a != b) ? 1 : 0;
  }
}

TEST(NeuralNetTest, LearnsNonLinearXor) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeXor(400, 1, &features, &labels);
  NeuralNetConfig config;
  config.epochs = 120;  // XOR needs a few more epochs than the EM default.
  config.dropout = 0.0;
  NeuralNetwork net(config);
  net.Fit(features, labels);
  const BinaryMetrics m =
      ComputeBinaryMetrics(net.PredictAll(features), labels);
  EXPECT_GT(m.f1, 0.95);
}

TEST(NeuralNetTest, MarginAndProbabilityConsistent) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeXor(200, 2, &features, &labels);
  NeuralNetwork net(NeuralNetConfig{});
  net.Fit(features, labels);
  for (size_t i = 0; i < 20; ++i) {
    const float* x = features.Row(i);
    const double margin = net.Margin(x);
    const double p = net.PredictProbability(x);
    // p = sigmoid(margin).
    EXPECT_NEAR(p, 1.0 / (1.0 + std::exp(-margin)), 1e-9);
    EXPECT_EQ(net.Predict(x), p > 0.5 ? 1 : 0);
  }
}

TEST(NeuralNetTest, DeterministicForSameSeed) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeXor(100, 3, &features, &labels);
  NeuralNetConfig config;
  config.seed = 7;
  NeuralNetwork a(config), b(config);
  a.Fit(features, labels);
  b.Fit(features, labels);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.Margin(features.Row(i)), b.Margin(features.Row(i)));
  }
}

TEST(NeuralNetTest, DifferentSeedsGiveDifferentModels) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeXor(100, 4, &features, &labels);
  NeuralNetConfig ca, cb;
  ca.seed = 1;
  cb.seed = 2;
  NeuralNetwork a(ca), b(cb);
  a.Fit(features, labels);
  b.Fit(features, labels);
  bool any_difference = false;
  for (size_t i = 0; i < 10 && !any_difference; ++i) {
    any_difference = a.Margin(features.Row(i)) != b.Margin(features.Row(i));
  }
  EXPECT_TRUE(any_difference);
}

TEST(NeuralNetTest, LowMarginMeansAmbiguousProbability) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeXor(300, 5, &features, &labels);
  NeuralNetwork net(NeuralNetConfig{});
  net.Fit(features, labels);
  // Points with the smallest |margin| must have probability closest to 0.5
  // (the paper's cross-check of margin against output probability).
  double smallest_margin = 1e9;
  double probability_at_smallest = 0.0;
  for (size_t i = 0; i < features.rows(); ++i) {
    const double margin = std::abs(net.Margin(features.Row(i)));
    if (margin < smallest_margin) {
      smallest_margin = margin;
      probability_at_smallest = net.PredictProbability(features.Row(i));
    }
  }
  EXPECT_NEAR(probability_at_smallest, 0.5, 0.25);
}

TEST(NeuralNetTest, DeepMatcherProxyHasTwoLayers) {
  const NeuralNetConfig config = DeepMatcherProxyConfig(1);
  EXPECT_EQ(config.hidden_sizes.size(), 2u);
  FeatureMatrix features;
  std::vector<int> labels;
  MakeXor(200, 6, &features, &labels);
  NeuralNetwork net(config);
  net.Fit(features, labels);
  const BinaryMetrics m =
      ComputeBinaryMetrics(net.PredictAll(features), labels);
  EXPECT_GT(m.f1, 0.8);
}

TEST(NeuralNetTest, SingleExampleBatchDoesNotCrash) {
  FeatureMatrix features(1, 2);
  features.Set(0, 0, 0.5f);
  std::vector<int> labels = {1};
  NeuralNetwork net(NeuralNetConfig{});
  net.Fit(features, labels);  // Batch norm must degrade gracefully at b=1.
  EXPECT_TRUE(net.trained());
}

}  // namespace
}  // namespace alem
