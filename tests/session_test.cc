// LabelingSession: the step-wise state machine, recoverable rejections,
// and the ALSS snapshot/restore determinism contract (docs/sessions.md):
// a run paused at ANY iteration boundary and restored into a freshly
// constructed environment must finish with a curve whose deterministic
// fields are bitwise-identical to the uninterrupted run's, at any thread
// count. Corrupt, truncated, and version-skewed snapshots must fail with
// clean errors, never crashes.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/active_loop.h"
#include "core/evaluator.h"
#include "core/learner.h"
#include "core/oracle.h"
#include "core/pool.h"
#include "core/selector.h"
#include "core/session.h"
#include "parallel/pool.h"
#include "util/rng.h"

namespace alem {
namespace {

// A 2-D, mostly separable problem with 10% class skew (like EM pairs).
struct Problem {
  FeatureMatrix features;
  std::vector<int> truth;
};

Problem MakeProblem(size_t n, uint64_t seed) {
  Rng rng(seed);
  Problem problem;
  problem.features = FeatureMatrix(n, 2);
  problem.truth.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const bool positive = i % 10 == 0;
    const double center = positive ? 0.75 : 0.3;
    problem.features.Set(
        i, 0, static_cast<float>(center + rng.NextGaussian() * 0.07));
    problem.features.Set(
        i, 1, static_cast<float>(center + rng.NextGaussian() * 0.07));
    problem.truth[i] = positive ? 1 : 0;
  }
  return problem;
}

// One run's worth of components, constructed identically every time — the
// restore contract requires the caller to rebuild the same environment a
// fresh run would get. NoisyOracle + QBC give both an oracle and a selector
// RNG stream for the snapshot to carry.
struct Env {
  ActivePool pool;
  NoisyOracle oracle;
  ProgressiveEvaluator evaluator;
  SvmLearner learner;
  QbcSelector selector;

  explicit Env(const Problem& problem)
      : pool(problem.features),
        oracle(problem.truth, 0.05, 99),
        evaluator(problem.truth),
        learner{LinearSvmConfig{}},
        selector(3, 7) {}
};

ActiveLearningConfig TestConfig() {
  ActiveLearningConfig config;
  config.seed_size = 30;
  config.batch_size = 10;
  config.max_labels = 100;
  return config;
}

// Drives the session until it finishes or — when stop_after > 0 — until
// that many iterations have completed and the session sits at the
// needs_step boundary.
void Drive(LabelingSession* session, size_t stop_after = 0) {
  while (!session->finished()) {
    if (stop_after > 0 && session->state() == SessionState::kNeedsStep &&
        session->curve().size() >= stop_after) {
      return;
    }
    switch (session->state()) {
      case SessionState::kNeedsStep:
        ASSERT_TRUE(session->Step());
        break;
      case SessionState::kBatchReady:
        session->NextBatch();
        break;
      case SessionState::kAwaitingLabels:
        ASSERT_TRUE(session->SubmitLabels());
        break;
      default:
        FAIL() << "unexpected state";
    }
  }
}

// Bitwise equality on the deterministic curve fields. Timing fields
// (train/select/wait seconds) are wall-clock and deliberately excluded —
// the determinism contract covers what the run computed, not how long it
// took.
void ExpectCurvesIdentical(const std::vector<IterationStats>& expected,
                           const std::vector<IterationStats>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE("iteration " + std::to_string(i));
    const IterationStats& a = expected[i];
    const IterationStats& b = actual[i];
    EXPECT_EQ(a.iteration, b.iteration);
    EXPECT_EQ(a.labels_used, b.labels_used);
    EXPECT_EQ(a.metrics.true_positives, b.metrics.true_positives);
    EXPECT_EQ(a.metrics.false_positives, b.metrics.false_positives);
    EXPECT_EQ(a.metrics.false_negatives, b.metrics.false_negatives);
    EXPECT_EQ(a.metrics.true_negatives, b.metrics.true_negatives);
    EXPECT_EQ(a.metrics.precision, b.metrics.precision);  // bitwise doubles
    EXPECT_EQ(a.metrics.recall, b.metrics.recall);
    EXPECT_EQ(a.metrics.f1, b.metrics.f1);
    EXPECT_EQ(a.scored_examples, b.scored_examples);
    EXPECT_EQ(a.pruned_examples, b.pruned_examples);
    EXPECT_EQ(a.dnf_atoms, b.dnf_atoms);
    EXPECT_EQ(a.tree_depth, b.tree_depth);
    EXPECT_EQ(a.ensemble_size, b.ensemble_size);
  }
}

TEST(LabelingSessionTest, MatchesActiveLearningLoop) {
  const Problem problem = MakeProblem(600, 11);
  const ActiveLearningConfig config = TestConfig();

  Env loop_env(problem);
  ActiveLearningLoop loop(loop_env.learner, loop_env.selector,
                          loop_env.oracle, loop_env.evaluator, config);
  const std::vector<IterationStats> loop_curve = loop.Run(loop_env.pool);

  Env session_env(problem);
  LabelingSession session(session_env.learner, session_env.selector,
                          session_env.oracle, session_env.evaluator,
                          session_env.pool, config);
  Drive(&session);
  ASSERT_EQ(session.state(), SessionState::kFinished);
  EXPECT_EQ(session.stop_reason(), StopReason::kBudgetExhausted);
  ExpectCurvesIdentical(loop_curve, std::move(session).TakeCurve());
}

// The tentpole contract: pause at EVERY iteration boundary, round-trip the
// snapshot through the serialized container, restore into a fresh
// environment, and finish — the stitched curve must match the
// uninterrupted run bitwise. Verified at 1 and 4 threads.
void SaveRestoreAtEveryBoundary(int threads) {
  parallel::SetNumThreads(threads);
  const Problem problem = MakeProblem(600, 11);
  const ActiveLearningConfig config = TestConfig();

  Env golden_env(problem);
  LabelingSession golden(golden_env.learner, golden_env.selector,
                         golden_env.oracle, golden_env.evaluator,
                         golden_env.pool, config);
  Drive(&golden);
  ASSERT_EQ(golden.state(), SessionState::kFinished);
  const std::vector<IterationStats> golden_curve =
      std::move(golden).TakeCurve();
  ASSERT_GE(golden_curve.size(), 3u);

  for (size_t boundary = 1; boundary < golden_curve.size(); ++boundary) {
    SCOPED_TRACE("boundary " + std::to_string(boundary) + ", threads " +
                 std::to_string(threads));
    Env first_env(problem);
    LabelingSession first(first_env.learner, first_env.selector,
                          first_env.oracle, first_env.evaluator,
                          first_env.pool, config);
    Drive(&first, boundary);
    ASSERT_EQ(first.state(), SessionState::kNeedsStep);
    ASSERT_EQ(first.curve().size(), boundary);

    SessionSnapshot saved;
    std::string error;
    ASSERT_TRUE(first.SaveTo(&saved, &error)) << error;

    // Round-trip through the serialized container, as a real pause does.
    SessionSnapshot loaded;
    ASSERT_TRUE(SessionSnapshot::Parse(saved.Serialize(), &loaded, &error))
        << error;

    Env second_env(problem);
    std::unique_ptr<LabelingSession> resumed = LabelingSession::Restore(
        second_env.learner, second_env.selector, second_env.oracle,
        second_env.evaluator, second_env.pool, loaded, &error);
    ASSERT_NE(resumed, nullptr) << error;
    EXPECT_EQ(resumed->iteration(), boundary);
    EXPECT_EQ(resumed->resume_count(), 1u);

    Drive(resumed.get());
    ASSERT_EQ(resumed->state(), SessionState::kFinished);
    EXPECT_EQ(resumed->stop_reason(), StopReason::kBudgetExhausted);
    ExpectCurvesIdentical(golden_curve, std::move(*resumed).TakeCurve());
  }
  parallel::SetNumThreads(1);
}

TEST(SessionSnapshotTest, SaveRestoreBitwiseEveryBoundarySingleThread) {
  SaveRestoreAtEveryBoundary(1);
}

TEST(SessionSnapshotTest, SaveRestoreBitwiseEveryBoundaryFourThreads) {
  SaveRestoreAtEveryBoundary(4);
}

// A finished session snapshots and restores too (kFinished is an iteration
// boundary); the restored session is immediately finished with the same
// curve and stop reason.
TEST(SessionSnapshotTest, FinishedSessionRoundTrips) {
  const Problem problem = MakeProblem(500, 4);
  const ActiveLearningConfig config = TestConfig();

  Env env(problem);
  LabelingSession session(env.learner, env.selector, env.oracle,
                          env.evaluator, env.pool, config);
  Drive(&session);
  ASSERT_EQ(session.state(), SessionState::kFinished);

  SessionSnapshot snapshot;
  std::string error;
  ASSERT_TRUE(session.SaveTo(&snapshot, &error)) << error;

  Env env2(problem);
  std::unique_ptr<LabelingSession> resumed = LabelingSession::Restore(
      env2.learner, env2.selector, env2.oracle, env2.evaluator, env2.pool,
      snapshot, &error);
  ASSERT_NE(resumed, nullptr) << error;
  EXPECT_EQ(resumed->state(), SessionState::kFinished);
  EXPECT_EQ(resumed->stop_reason(), session.stop_reason());
  ExpectCurvesIdentical(session.curve(), resumed->curve());
}

// ---- Container robustness ---------------------------------------------

std::string SerializedSnapshot() {
  const Problem problem = MakeProblem(400, 5);
  Env env(problem);
  LabelingSession session(env.learner, env.selector, env.oracle,
                          env.evaluator, env.pool, TestConfig());
  Drive(&session, 1);
  SessionSnapshot snapshot;
  std::string error;
  EXPECT_TRUE(session.SaveTo(&snapshot, &error)) << error;
  return snapshot.Serialize();
}

TEST(SessionSnapshotTest, CorruptPayloadFailsChecksum) {
  std::string blob = SerializedSnapshot();
  blob[blob.size() / 2] ^= 0x5a;  // Flip bits mid-payload.
  SessionSnapshot out;
  std::string error;
  EXPECT_FALSE(SessionSnapshot::Parse(blob, &out, &error));
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
}

TEST(SessionSnapshotTest, TruncatedFileFailsCleanly) {
  const std::string blob = SerializedSnapshot();
  SessionSnapshot out;
  std::string error;
  // Truncated mid-payload: size mismatch. Truncated mid-header: header
  // error. Every prefix length must fail cleanly, never crash.
  EXPECT_FALSE(
      SessionSnapshot::Parse(blob.substr(0, blob.size() - 7), &out, &error));
  EXPECT_NE(error.find("mismatch"), std::string::npos) << error;
  EXPECT_FALSE(SessionSnapshot::Parse(blob.substr(0, 10), &out, &error));
  EXPECT_NE(error.find("truncated header"), std::string::npos) << error;
  EXPECT_FALSE(SessionSnapshot::Parse("", &out, &error));
}

TEST(SessionSnapshotTest, VersionSkewFailsCleanly) {
  std::string blob = SerializedSnapshot();
  blob[4] = 99;  // Format version lives at bytes 4..7.
  SessionSnapshot out;
  std::string error;
  EXPECT_FALSE(SessionSnapshot::Parse(blob, &out, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(SessionSnapshotTest, BadMagicFailsCleanly) {
  std::string blob = SerializedSnapshot();
  blob[0] = 'X';
  SessionSnapshot out;
  std::string error;
  EXPECT_FALSE(SessionSnapshot::Parse(blob, &out, &error));
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(SessionSnapshotTest, MissingSectionFailsRestore) {
  const Problem problem = MakeProblem(400, 5);
  Env env(problem);
  LabelingSession session(env.learner, env.selector, env.oracle,
                          env.evaluator, env.pool, TestConfig());
  Drive(&session, 1);
  SessionSnapshot snapshot;
  std::string error;
  ASSERT_TRUE(session.SaveTo(&snapshot, &error)) << error;
  snapshot.sections.erase("CRVE");

  Env env2(problem);
  EXPECT_EQ(LabelingSession::Restore(env2.learner, env2.selector, env2.oracle,
                                     env2.evaluator, env2.pool, snapshot,
                                     &error),
            nullptr);
  EXPECT_NE(error.find("CRVE"), std::string::npos) << error;
}

TEST(SessionSnapshotTest, RestoreRequiresLabelFreePool) {
  const Problem problem = MakeProblem(400, 5);
  Env env(problem);
  LabelingSession session(env.learner, env.selector, env.oracle,
                          env.evaluator, env.pool, TestConfig());
  Drive(&session, 1);
  SessionSnapshot snapshot;
  std::string error;
  ASSERT_TRUE(session.SaveTo(&snapshot, &error)) << error;

  Env env2(problem);
  env2.pool.AddLabel(0, problem.truth[0]);  // Not freshly constructed.
  EXPECT_EQ(LabelingSession::Restore(env2.learner, env2.selector, env2.oracle,
                                     env2.evaluator, env2.pool, snapshot,
                                     &error),
            nullptr);
  EXPECT_NE(error.find("label-free"), std::string::npos) << error;
}

// ---- State-machine rejections -----------------------------------------

TEST(LabelingSessionTest, InvalidTransitionsAreRecoverable) {
  const Problem problem = MakeProblem(400, 6);
  Env env(problem);
  LabelingSession session(env.learner, env.selector, env.oracle,
                          env.evaluator, env.pool, TestConfig());

  // kNeedsStep: only Step() is valid.
  EXPECT_FALSE(session.SubmitLabels());
  EXPECT_FALSE(session.error().empty());
  EXPECT_TRUE(session.NextBatch().empty());
  EXPECT_EQ(session.state(), SessionState::kNeedsStep);

  ASSERT_TRUE(session.Step());
  EXPECT_EQ(session.state(), SessionState::kBatchReady);
  // kBatchReady: only NextBatch() is valid.
  EXPECT_FALSE(session.Step());
  EXPECT_FALSE(session.SubmitLabels());
  EXPECT_EQ(session.state(), SessionState::kBatchReady);

  const std::vector<size_t> batch = session.NextBatch();
  ASSERT_FALSE(batch.empty());
  EXPECT_EQ(session.state(), SessionState::kAwaitingLabels);
  EXPECT_EQ(session.pending_batch(), batch);

  ASSERT_TRUE(session.SubmitLabels());
  EXPECT_EQ(session.state(), SessionState::kNeedsStep);
  // Double submission is rejected, state unchanged.
  EXPECT_FALSE(session.SubmitLabels());
  EXPECT_EQ(session.state(), SessionState::kNeedsStep);

  // The session still works after every rejection above.
  Drive(&session);
  EXPECT_EQ(session.state(), SessionState::kFinished);
}

TEST(LabelingSessionTest, RejectsBadExternalLabels) {
  const Problem problem = MakeProblem(400, 7);
  Env env(problem);
  LabelingSession session(env.learner, env.selector, env.oracle,
                          env.evaluator, env.pool, TestConfig());
  ASSERT_TRUE(session.Step());
  const std::vector<size_t> batch = session.NextBatch();
  ASSERT_FALSE(batch.empty());

  // Wrong batch size: rejected, batch still pending.
  const std::vector<int> short_labels(batch.size() - 1, 0);
  EXPECT_FALSE(session.SubmitLabels(short_labels));
  EXPECT_EQ(session.state(), SessionState::kAwaitingLabels);
  EXPECT_NE(session.error().find("batch"), std::string::npos);

  // Invalid label value: rejected.
  std::vector<int> bad_labels(batch.size(), 0);
  bad_labels[0] = 2;
  EXPECT_FALSE(session.SubmitLabels(bad_labels));
  EXPECT_EQ(session.state(), SessionState::kAwaitingLabels);

  // Valid external labels are accepted and advance the state machine.
  std::vector<int> labels;
  for (const size_t row : batch) labels.push_back(problem.truth[row]);
  EXPECT_TRUE(session.SubmitLabels(labels));
  EXPECT_EQ(session.state(), SessionState::kNeedsStep);
}

TEST(LabelingSessionTest, MidIterationSaveRejected) {
  const Problem problem = MakeProblem(400, 8);
  Env env(problem);
  LabelingSession session(env.learner, env.selector, env.oracle,
                          env.evaluator, env.pool, TestConfig());
  ASSERT_TRUE(session.Step());

  SessionSnapshot snapshot;
  std::string error;
  EXPECT_FALSE(session.SaveTo(&snapshot, &error));  // kBatchReady
  EXPECT_NE(error.find("boundary"), std::string::npos) << error;

  ASSERT_FALSE(session.NextBatch().empty());
  EXPECT_FALSE(session.SaveTo(&snapshot, &error));  // kAwaitingLabels
}

}  // namespace
}  // namespace alem
