#include <gtest/gtest.h>

#include "core/active_ensemble.h"
#include "core/evaluator.h"
#include "core/learner.h"
#include "core/oracle.h"
#include "core/selector.h"
#include "util/rng.h"

namespace alem {
namespace {

// Two disjoint positive clusters; a single linear classifier can cover one
// at high precision but not both, so an ensemble should accept more than one
// member to reach high recall.
struct Problem {
  FeatureMatrix features;
  std::vector<int> truth;
};

Problem MakeTwoClusterProblem(size_t n, uint64_t seed) {
  Rng rng(seed);
  Problem problem;
  problem.features = FeatureMatrix(n, 2);
  problem.truth.resize(n);
  for (size_t i = 0; i < n; ++i) {
    double x, y;
    int label;
    switch (i % 10) {
      case 0:  // Positive cluster A: high-x, low-y.
        x = 0.85;
        y = 0.15;
        label = 1;
        break;
      case 1:  // Positive cluster B: low-x, high-y.
        x = 0.15;
        y = 0.85;
        label = 1;
        break;
      default:  // Negatives: middle.
        x = 0.45;
        y = 0.45;
        label = 0;
        break;
    }
    problem.features.Set(i, 0,
                         static_cast<float>(x + rng.NextGaussian() * 0.04));
    problem.features.Set(i, 1,
                         static_cast<float>(y + rng.NextGaussian() * 0.04));
    problem.truth[i] = label;
  }
  return problem;
}

TEST(ActiveEnsembleTest, AcceptsMembersAndExcludesCoverage) {
  const Problem problem = MakeTwoClusterProblem(600, 1);
  ActivePool pool(problem.features);
  PerfectOracle oracle(problem.truth);
  ProgressiveEvaluator evaluator(problem.truth);
  SvmLearner candidate{LinearSvmConfig{}};
  MarginSelector selector;
  ActiveEnsembleConfig config;
  config.base.max_labels = 200;
  ActiveEnsembleLoop loop(candidate, selector, oracle, evaluator, config);
  const auto curve = loop.Run(pool);

  EXPECT_GE(loop.accepted_count(), 1u);
  // Ensemble size is monotonically non-decreasing along the curve.
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].ensemble_size, curve[i - 1].ensemble_size);
  }
}

TEST(ActiveEnsembleTest, ReachesHighRecallOnTwoClusters) {
  const Problem problem = MakeTwoClusterProblem(600, 2);
  ActivePool pool(problem.features);
  PerfectOracle oracle(problem.truth);
  ProgressiveEvaluator evaluator(problem.truth);
  SvmLearner candidate{LinearSvmConfig{}};
  MarginSelector selector;
  ActiveEnsembleConfig config;
  config.base.max_labels = 250;
  ActiveEnsembleLoop loop(candidate, selector, oracle, evaluator, config);
  const auto curve = loop.Run(pool);
  double best_recall = 0.0;
  for (const IterationStats& stats : curve) {
    best_recall = std::max(best_recall, stats.metrics.recall);
  }
  EXPECT_GT(best_recall, 0.85);
}

TEST(ActiveEnsembleTest, PrecisionGateBlocksLowPrecisionCandidates) {
  // Labels independent of features: no candidate should clear tau = 0.99.
  Rng rng(3);
  FeatureMatrix features(300, 2);
  std::vector<int> truth(300);
  for (size_t i = 0; i < 300; ++i) {
    features.Set(i, 0, static_cast<float>(rng.NextDouble()));
    features.Set(i, 1, static_cast<float>(rng.NextDouble()));
    truth[i] = rng.NextBernoulli(0.3) ? 1 : 0;
  }
  ActivePool pool(features);
  PerfectOracle oracle(truth);
  ProgressiveEvaluator evaluator(truth);
  SvmLearner candidate{LinearSvmConfig{}};
  MarginSelector selector;
  ActiveEnsembleConfig config;
  config.base.max_labels = 120;
  config.precision_threshold = 0.99;
  ActiveEnsembleLoop loop(candidate, selector, oracle, evaluator, config);
  loop.Run(pool);
  EXPECT_EQ(loop.accepted_count(), 0u);
}

TEST(ActiveEnsembleTest, StopsAtLabelBudget) {
  const Problem problem = MakeTwoClusterProblem(500, 4);
  ActivePool pool(problem.features);
  PerfectOracle oracle(problem.truth);
  ProgressiveEvaluator evaluator(problem.truth);
  SvmLearner candidate{LinearSvmConfig{}};
  MarginSelector selector;
  ActiveEnsembleConfig config;
  config.base.max_labels = 80;
  ActiveEnsembleLoop loop(candidate, selector, oracle, evaluator, config);
  loop.Run(pool);
  EXPECT_LE(pool.num_labeled(), 80u);
}

}  // namespace
}  // namespace alem
