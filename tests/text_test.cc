#include <gtest/gtest.h>

#include <cmath>

#include "text/profile.h"
#include "text/soundex.h"
#include "text/tokenizer.h"

namespace alem {
namespace {

// ---- Tokenizer ----

TEST(TokenizerTest, SplitsOnNonAlnumAndLowercases) {
  EXPECT_EQ(TokenizeWords("Sony DSC-W55 Camera!"),
            (std::vector<std::string>{"sony", "dsc", "w55", "camera"}));
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(TokenizeWords("").empty());
  EXPECT_TRUE(TokenizeWords("--- !!! ,,,").empty());
}

TEST(TokenizerTest, DigitsAreTokens) {
  EXPECT_EQ(TokenizeWords("price: 299.99"),
            (std::vector<std::string>{"price", "299", "99"}));
}

TEST(QGramsTest, PaddedBigrams) {
  EXPECT_EQ(QGrams("ab", 2),
            (std::vector<std::string>{"#a", "ab", "b#"}));
}

TEST(QGramsTest, LowercasesInput) {
  EXPECT_EQ(QGrams("AB", 2), QGrams("ab", 2));
}

TEST(QGramsTest, EmptyInput) { EXPECT_TRUE(QGrams("", 2).empty()); }

TEST(QGramsTest, SingleCharTrigram) {
  // "a" padded with two '#' on each side -> "##a##": 3 trigrams.
  EXPECT_EQ(QGrams("a", 3).size(), 3u);
}

// ---- CountedMultiset ----

TEST(CountedMultisetTest, CountsAndTotals) {
  CountedMultiset set({"a", "b", "a", "c"});
  EXPECT_EQ(set.total(), 4);
  EXPECT_EQ(set.distinct(), 3u);
  EXPECT_EQ(set.CountOf("a"), 2);
  EXPECT_EQ(set.CountOf("missing"), 0);
}

TEST(CountedMultisetTest, Intersections) {
  CountedMultiset a({"x", "x", "y", "z"});
  CountedMultiset b({"x", "y", "y", "w"});
  EXPECT_EQ(CountedMultiset::MultisetIntersection(a, b), 2);  // x:1, y:1.
  EXPECT_EQ(CountedMultiset::SetIntersection(a, b), 2);       // {x, y}.
}

TEST(CountedMultisetTest, Distances) {
  CountedMultiset a({"x", "x", "y"});
  CountedMultiset b({"x", "z"});
  // Count vectors: a = (x:2, y:1), b = (x:1, z:1).
  EXPECT_EQ(CountedMultiset::L1Distance(a, b), 3);
  EXPECT_DOUBLE_EQ(CountedMultiset::SquaredL2Distance(a, b), 3.0);
  EXPECT_DOUBLE_EQ(CountedMultiset::Dot(a, b), 2.0);
}

TEST(CountedMultisetTest, NormIsEuclidean) {
  CountedMultiset set({"a", "a", "b"});  // (2, 1).
  EXPECT_DOUBLE_EQ(set.norm(), std::sqrt(5.0));
}

// ---- AttributeProfile ----

TEST(AttributeProfileTest, NullForEmptyOrWhitespace) {
  EXPECT_TRUE(AttributeProfile::Build("").is_null);
  EXPECT_TRUE(AttributeProfile::Build("   \t ").is_null);
}

TEST(AttributeProfileTest, PopulatesAllViews) {
  const AttributeProfile profile = AttributeProfile::Build(" Sony W55 ");
  EXPECT_FALSE(profile.is_null);
  EXPECT_EQ(profile.text, "sony w55");
  EXPECT_EQ(profile.tokens, (std::vector<std::string>{"sony", "w55"}));
  EXPECT_EQ(profile.token_counts.total(), 2);
  EXPECT_GT(profile.bigram_counts.total(), 0);
}

// ---- Soundex ----

TEST(SoundexTest, ClassicExamples) {
  EXPECT_EQ(SoundexCode("Robert"), "R163");
  EXPECT_EQ(SoundexCode("Rupert"), "R163");
  EXPECT_EQ(SoundexCode("Tymczak"), "T522");
  EXPECT_EQ(SoundexCode("Honeyman"), "H555");
}

TEST(SoundexTest, CaseInsensitive) {
  EXPECT_EQ(SoundexCode("ROBERT"), SoundexCode("robert"));
}

TEST(SoundexTest, NoAlphabeticCharacters) {
  EXPECT_EQ(SoundexCode("1234"), "");
  EXPECT_EQ(SoundexCode(""), "");
}

TEST(SoundexTest, ShortNamesPadded) { EXPECT_EQ(SoundexCode("Li"), "L000"); }

}  // namespace
}  // namespace alem
