#include <gtest/gtest.h>

#include "core/evaluator.h"

namespace alem {
namespace {

TEST(ProgressiveEvaluatorTest, EvalRowsCoverEverything) {
  ProgressiveEvaluator evaluator({1, 0, 1, 0, 0});
  const std::vector<size_t>& rows = evaluator.eval_rows();
  ASSERT_EQ(rows.size(), 5u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i], i);
  }
}

TEST(ProgressiveEvaluatorTest, ComputesMetricsAgainstTruth) {
  ProgressiveEvaluator evaluator({1, 0, 1, 0});
  const BinaryMetrics m = evaluator.Evaluate({1, 1, 0, 0});
  EXPECT_EQ(m.true_positives, 1u);
  EXPECT_EQ(m.false_positives, 1u);
  EXPECT_EQ(m.false_negatives, 1u);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
}

TEST(ProgressiveEvaluatorTest, PerfectPredictionsGiveF1One) {
  const std::vector<int> truth = {1, 0, 0, 1, 1};
  ProgressiveEvaluator evaluator(truth);
  EXPECT_DOUBLE_EQ(evaluator.Evaluate(truth).f1, 1.0);
}

TEST(HoldoutEvaluatorTest, EvalRowsAreTheTestSplit) {
  HoldoutEvaluator evaluator({3, 7, 9}, {1, 0, 1});
  EXPECT_EQ(evaluator.eval_rows(), (std::vector<size_t>{3, 7, 9}));
}

TEST(HoldoutEvaluatorTest, MetricsUseAlignedTruth) {
  HoldoutEvaluator evaluator({3, 7, 9}, {1, 0, 1});
  const BinaryMetrics m = evaluator.Evaluate({1, 0, 0});
  EXPECT_EQ(m.true_positives, 1u);
  EXPECT_EQ(m.false_negatives, 1u);
  EXPECT_EQ(m.true_negatives, 1u);
}

TEST(HoldoutEvaluatorTest, EmptySplit) {
  HoldoutEvaluator evaluator({}, {});
  EXPECT_TRUE(evaluator.eval_rows().empty());
  EXPECT_DOUBLE_EQ(evaluator.Evaluate({}).f1, 0.0);
}

}  // namespace
}  // namespace alem
