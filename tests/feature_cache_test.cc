// Persistent feature-matrix cache: store/load round trips, corruption
// robustness (a bad file is a miss, never a crash), key invalidation, and
// the end-to-end PrepareDataset contract — a warm run must be bitwise
// identical to a cold one, at any thread count.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/harness.h"
#include "features/feature_cache.h"
#include "features/feature_matrix.h"
#include "parallel/pool.h"
#include "synth/profiles.h"

namespace alem {
namespace {

namespace fs = std::filesystem;

std::string MakeTempCacheDir(const std::string& tag) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("alem_cache_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

FeatureMatrix PatternMatrix(size_t rows, size_t dims) {
  FeatureMatrix matrix(rows, dims);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t d = 0; d < dims; ++d) {
      matrix.Set(r, d,
                 0.123f * static_cast<float>(r + 1) /
                     static_cast<float>(d + 2));
    }
  }
  return matrix;
}

FeatureCacheKey TestKey() {
  FeatureCacheKey key;
  key.dataset_name = "Abt-Buy";
  key.profile_fingerprint = 0x1111;
  key.data_seed = 7;
  key.scale = 0.5;
  key.sim_fingerprint = 0x2222;
  key.num_dims = 6;
  return key;
}

void ExpectBitwiseEqual(const FeatureMatrix& a, const FeatureMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.dims(), b.dims());
  for (size_t r = 0; r < a.rows(); ++r) {
    ASSERT_EQ(std::memcmp(a.Row(r), b.Row(r), a.dims() * sizeof(float)), 0)
        << "row " << r;
  }
}

TEST(FeatureCacheTest, StoreLoadRoundTripIsBitwise) {
  const FeatureCache cache(MakeTempCacheDir("roundtrip"));
  ASSERT_TRUE(cache.enabled());
  const FeatureCacheKey key = TestKey();
  const FeatureMatrix matrix = PatternMatrix(17, key.num_dims);

  FeatureMatrix loaded;
  EXPECT_FALSE(cache.Load(key, &loaded));  // Cold: nothing stored yet.
  ASSERT_TRUE(cache.Store(key, matrix));
  ASSERT_TRUE(cache.Load(key, &loaded));
  ExpectBitwiseEqual(matrix, loaded);
}

TEST(FeatureCacheTest, DisabledCacheMissesAndStoresNothing) {
  const FeatureCache cache("");
  EXPECT_FALSE(cache.enabled());
  const FeatureMatrix matrix = PatternMatrix(3, TestKey().num_dims);
  EXPECT_FALSE(cache.Store(TestKey(), matrix));
  FeatureMatrix loaded;
  EXPECT_FALSE(cache.Load(TestKey(), &loaded));
}

TEST(FeatureCacheTest, TruncatedEntryIsAMissAndRecoverable) {
  const std::string dir = MakeTempCacheDir("truncated");
  const FeatureCache cache(dir);
  const FeatureCacheKey key = TestKey();
  const FeatureMatrix matrix = PatternMatrix(17, key.num_dims);
  ASSERT_TRUE(cache.Store(key, matrix));

  const fs::path path = fs::path(dir) / key.FileName();
  ASSERT_TRUE(fs::exists(path));
  fs::resize_file(path, fs::file_size(path) / 2);

  FeatureMatrix loaded;
  EXPECT_FALSE(cache.Load(key, &loaded));  // Miss, not a crash.

  // The recompute-and-overwrite path restores a readable entry.
  ASSERT_TRUE(cache.Store(key, matrix));
  ASSERT_TRUE(cache.Load(key, &loaded));
  ExpectBitwiseEqual(matrix, loaded);
}

TEST(FeatureCacheTest, CorruptPayloadIsAMiss) {
  const std::string dir = MakeTempCacheDir("corrupt");
  const FeatureCache cache(dir);
  const FeatureCacheKey key = TestKey();
  ASSERT_TRUE(cache.Store(key, PatternMatrix(17, key.num_dims)));

  const fs::path path = fs::path(dir) / key.FileName();
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekp(static_cast<std::streamoff>(fs::file_size(path)) - 3);
  file.put('\x7f');
  file.close();

  FeatureMatrix loaded;
  EXPECT_FALSE(cache.Load(key, &loaded));
}

TEST(FeatureCacheTest, EveryKeyComponentAddressesADistinctEntry) {
  const FeatureCacheKey base = TestKey();

  FeatureCacheKey profile_changed = base;
  profile_changed.profile_fingerprint ^= 1;
  FeatureCacheKey seed_changed = base;
  seed_changed.data_seed += 1;
  FeatureCacheKey scale_changed = base;
  scale_changed.scale += 0.1;
  FeatureCacheKey sim_changed = base;  // A kSimRegistryVersion bump.
  sim_changed.sim_fingerprint ^= 1;
  FeatureCacheKey dims_changed = base;
  dims_changed.num_dims += kNumSimilarityFunctions;

  for (const FeatureCacheKey& changed :
       {profile_changed, seed_changed, scale_changed, sim_changed,
        dims_changed}) {
    EXPECT_NE(changed.FileName(), base.FileName());
  }

  // A stored entry is invisible under the bumped similarity-registry key:
  // stale matrices are simply never found.
  const FeatureCache cache(MakeTempCacheDir("invalidate"));
  ASSERT_TRUE(cache.Store(base, PatternMatrix(9, base.num_dims)));
  FeatureMatrix loaded;
  EXPECT_FALSE(cache.Load(sim_changed, &loaded));
  EXPECT_TRUE(cache.Load(base, &loaded));
}

// ---- PrepareDataset integration ----

PrepareOptions SmallAbtBuy(const std::string& cache_dir) {
  PrepareOptions options;
  options.profile = AbtBuyProfile();
  options.data_seed = 11;
  options.scale = 0.2;
  options.cache_dir = cache_dir;
  return options;
}

std::vector<double> CurveF1(const PreparedDataset& data) {
  ApproachSpec spec;
  EXPECT_TRUE(ApproachFromName("linear-margin", &spec));
  RunConfig config;
  config.approach = spec;
  config.max_labels = 60;
  config.run_seed = 1;
  const RunResult result = RunActiveLearning(data, config);
  std::vector<double> f1;
  f1.reserve(result.curve.size());
  for (const IterationStats& stats : result.curve) {
    f1.push_back(stats.metrics.f1);
  }
  return f1;
}

TEST(FeatureCachePrepareTest, ColdAndWarmRunsAreBitwiseIdentical) {
  const std::string dir = MakeTempCacheDir("prepare");
  const PrepareOptions options = SmallAbtBuy(dir);

  const PreparedDataset cold = PrepareDataset(options);
  EXPECT_EQ(cold.feature_cache, "miss");
  const PreparedDataset warm = PrepareDataset(options);
  EXPECT_EQ(warm.feature_cache, "hit");

  ExpectBitwiseEqual(cold.float_features, warm.float_features);
  ExpectBitwiseEqual(cold.boolean_features, warm.boolean_features);
  EXPECT_EQ(cold.feature_names, warm.feature_names);

  // The whole learning curve — not just the features — must match.
  const std::vector<double> cold_f1 = CurveF1(cold);
  const std::vector<double> warm_f1 = CurveF1(warm);
  ASSERT_EQ(cold_f1.size(), warm_f1.size());
  for (size_t i = 0; i < cold_f1.size(); ++i) {
    EXPECT_EQ(cold_f1[i], warm_f1[i]) << "iteration " << i;
  }
}

TEST(FeatureCachePrepareTest, WarmHitAtFourThreadsMatchesSerialCold) {
  const int previous_threads = parallel::NumThreads();
  const std::string dir = MakeTempCacheDir("prepare_threads");

  PrepareOptions cold_options = SmallAbtBuy(dir);
  cold_options.threads = 1;
  const PreparedDataset cold = PrepareDataset(cold_options);
  EXPECT_EQ(cold.feature_cache, "miss");

  PrepareOptions warm_options = SmallAbtBuy(dir);
  warm_options.threads = 4;
  const PreparedDataset warm = PrepareDataset(warm_options);
  EXPECT_EQ(warm.feature_cache, "hit");
  ExpectBitwiseEqual(cold.float_features, warm.float_features);

  // And a 4-thread recompute (cache off) matches the serial cold matrix:
  // batch extraction is thread-count independent.
  PrepareOptions nocache_options = SmallAbtBuy("");
  nocache_options.use_cache = false;
  nocache_options.threads = 4;
  const PreparedDataset recomputed = PrepareDataset(nocache_options);
  EXPECT_EQ(recomputed.feature_cache, "off");
  ExpectBitwiseEqual(cold.float_features, recomputed.float_features);

  parallel::SetNumThreads(previous_threads);
}

TEST(FeatureCachePrepareTest, UseCacheFalseBypassesTheDirectory) {
  const std::string dir = MakeTempCacheDir("bypass");
  PrepareOptions options = SmallAbtBuy(dir);
  options.use_cache = false;
  const PreparedDataset data = PrepareDataset(options);
  EXPECT_EQ(data.feature_cache, "off");
  EXPECT_TRUE(fs::is_empty(dir));  // No entry was written.
}

}  // namespace
}  // namespace alem
