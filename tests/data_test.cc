#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/table.h"
#include "util/csv.h"

namespace alem {
namespace {

// ---- Schema ----

TEST(SchemaTest, IndexOfFindsColumns) {
  Schema schema({"name", "price", "brand"});
  EXPECT_EQ(schema.num_columns(), 3u);
  EXPECT_EQ(schema.IndexOf("price"), 1);
  EXPECT_EQ(schema.IndexOf("missing"), -1);
  EXPECT_EQ(schema.column(2), "brand");
}

TEST(SchemaTest, EmptySchema) {
  Schema schema;
  EXPECT_EQ(schema.num_columns(), 0u);
  EXPECT_EQ(schema.IndexOf("x"), -1);
}

// ---- Table ----

TEST(TableTest, AddAndAccessRows) {
  Table table{Schema({"a", "b"})};
  table.AddRow({"1", "2"});
  table.AddRow({"3", "4"});
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.Value(1, 0), "3");
  EXPECT_EQ(table.row(0), (Record{"1", "2"}));
}

TEST(TableTest, ValueOutOfRangeColumnIsEmpty) {
  Table table{Schema({"a"})};
  table.AddRow({"x"});
  EXPECT_EQ(table.Value(0, 5), "");
}

TEST(TableTest, CsvRoundTrip) {
  Table table{Schema({"name", "desc"})};
  table.AddRow({"widget, deluxe", "says \"best\""});
  table.AddRow({"", "empty name"});
  const std::string path = ::testing::TempDir() + "/alem_table_test.csv";
  ASSERT_TRUE(table.ToCsvFile(path));

  Table loaded;
  ASSERT_TRUE(Table::FromCsvFile(path, &loaded));
  EXPECT_EQ(loaded.schema().columns(), table.schema().columns());
  ASSERT_EQ(loaded.num_rows(), table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    EXPECT_EQ(loaded.row(r), table.row(r));
  }
}

TEST(TableTest, FromCsvToleratesRaggedRows) {
  const std::string path = ::testing::TempDir() + "/alem_ragged.csv";
  ASSERT_TRUE(WriteCsvFile(path, {{"a", "b", "c"}, {"1", "2"}, {"3"}}));
  Table table;
  ASSERT_TRUE(Table::FromCsvFile(path, &table));
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.row(0).size(), 3u);  // Padded to header arity.
  EXPECT_EQ(table.Value(0, 2), "");
}

TEST(TableTest, FromMissingFileFails) {
  Table table;
  EXPECT_FALSE(Table::FromCsvFile("/no/such/file.csv", &table));
}

// ---- RecordPair / GroundTruth ----

TEST(RecordPairTest, PairKeyIsInjective) {
  EXPECT_NE(PairKey({1, 2}), PairKey({2, 1}));
  EXPECT_EQ(PairKey({7, 9}), PairKey({7, 9}));
  EXPECT_NE(PairKey({0, 1}), PairKey({1, 0}));
}

TEST(GroundTruthTest, MembershipAndCount) {
  GroundTruth truth;
  truth.AddMatch({3, 4});
  truth.AddMatch({3, 4});  // Duplicate insert is idempotent.
  truth.AddMatch({5, 6});
  EXPECT_EQ(truth.num_matches(), 2u);
  EXPECT_TRUE(truth.IsMatch({3, 4}));
  EXPECT_FALSE(truth.IsMatch({4, 3}));
}

// ---- EmDataset ----

EmDataset MakeDataset() {
  EmDataset dataset;
  dataset.left = Table{Schema({"name", "price"})};
  dataset.right = Table{Schema({"price", "name", "extra"})};
  dataset.left.AddRow({"a", "1"});
  dataset.left.AddRow({"b", "2"});
  dataset.right.AddRow({"1", "a", "x"});
  dataset.truth.AddMatch({0, 0});
  return dataset;
}

TEST(EmDatasetTest, TotalPairsIsCartesian) {
  const EmDataset dataset = MakeDataset();
  EXPECT_EQ(dataset.TotalPairs(), 2u);
}

TEST(EmDatasetTest, LabelsForAlignsWithPairs) {
  const EmDataset dataset = MakeDataset();
  const std::vector<RecordPair> pairs = {{0, 0}, {1, 0}};
  EXPECT_EQ(dataset.LabelsFor(pairs), (std::vector<int>{1, 0}));
  EXPECT_DOUBLE_EQ(dataset.ClassSkew(pairs), 0.5);
}

TEST(EmDatasetTest, ClassSkewOfEmptyPairsIsZero) {
  const EmDataset dataset = MakeDataset();
  EXPECT_DOUBLE_EQ(dataset.ClassSkew({}), 0.0);
}

TEST(EmDatasetTest, AlignByNameMatchesSharedColumns) {
  const EmDataset dataset = MakeDataset();
  const auto aligned =
      EmDataset::AlignByName(dataset.left, dataset.right);
  ASSERT_EQ(aligned.size(), 2u);
  EXPECT_EQ(aligned[0].left_column, 0);   // name.
  EXPECT_EQ(aligned[0].right_column, 1);
  EXPECT_EQ(aligned[1].left_column, 1);   // price.
  EXPECT_EQ(aligned[1].right_column, 0);
}

}  // namespace
}  // namespace alem
