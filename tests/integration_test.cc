// End-to-end integration: every (learner, selector) combination that the
// framework declares compatible runs on a real synthetic dataset and learns
// something meaningful.

#include <gtest/gtest.h>

#include <vector>

#include "core/harness.h"
#include "synth/profiles.h"

namespace alem {
namespace {

const PreparedDataset& Data() {
  static const PreparedDataset& data =
      *new PreparedDataset(PrepareDataset({AbtBuyProfile(), 11, 0.3}));
  return data;
}

struct Combo {
  ApproachSpec spec;
  double min_f1;  // Loose floor; catches broken wiring, not tuning drift.
};

class ComboTest : public ::testing::TestWithParam<size_t> {};

const std::vector<Combo>& Combos() {
  static const auto& combos = *new std::vector<Combo>{
      {TreesSpec(2), 0.6},
      {TreesSpec(10), 0.7},
      {TreesSpec(20), 0.7},
      {LinearMarginSpec(0), 0.4},
      {LinearMarginSpec(1), 0.4},
      {LinearMarginSpec(5), 0.4},
      {LinearMarginEnsembleSpec(), 0.4},
      {LinearQbcSpec(2), 0.4},
      {LinearQbcSpec(20), 0.4},
      {NeuralMarginSpec(), 0.5},
      {NeuralQbcSpec(2), 0.5},
      {RulesLfpLfnSpec(), 0.15},
      {RulesQbcSpec(3), 0.15},
      {SupervisedTreesSpec(10), 0.5},
      {DeepMatcherSpec(), 0.3},
  };
  return combos;
}

TEST_P(ComboTest, RunsAndLearns) {
  const Combo& combo = Combos()[GetParam()];
  RunConfig config;
  config.approach = combo.spec;
  config.max_labels = 180;
  config.run_seed = 5;
  const RunResult result = RunActiveLearning(Data(), config);
  EXPECT_FALSE(result.curve.empty()) << result.approach_name;
  EXPECT_GT(result.best_f1, combo.min_f1) << result.approach_name;
  // Labels never exceed the budget (modulo the seed top-up).
  EXPECT_LE(result.curve.back().labels_used, 200u) << result.approach_name;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, ComboTest, ::testing::Range<size_t>(0, Combos().size()),
    [](const ::testing::TestParamInfo<size_t>& info) {
      std::string name = Combos()[info.param].spec.DisplayName();
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(IntegrationTest, TreesBeatLinearOnHeterogeneousProducts) {
  // The paper's headline: learner-aware tree committees dominate.
  RunConfig trees_config;
  trees_config.approach = TreesSpec(20);
  trees_config.max_labels = 250;
  RunConfig linear_config = trees_config;
  linear_config.approach = LinearMarginSpec(0);
  const RunResult trees = RunActiveLearning(Data(), trees_config);
  const RunResult linear = RunActiveLearning(Data(), linear_config);
  EXPECT_GT(trees.best_f1, linear.best_f1);
}

TEST(IntegrationTest, ActiveTreesBeatSupervisedAtEqualBudget) {
  RunConfig active_config;
  active_config.approach = TreesSpec(10);
  active_config.max_labels = 120;
  active_config.holdout = true;
  RunConfig supervised_config = active_config;
  supervised_config.approach = SupervisedTreesSpec(10);
  const RunResult active = RunActiveLearning(Data(), active_config);
  const RunResult supervised = RunActiveLearning(Data(), supervised_config);
  // At a tight label budget, informative selection should not lose; allow a
  // small slack for seed randomness.
  EXPECT_GE(active.best_f1 + 0.05, supervised.best_f1);
}

TEST(IntegrationTest, BlockingDoesNotHurtQuality) {
  RunConfig full_config;
  full_config.approach = LinearMarginSpec(0);
  full_config.max_labels = 200;
  RunConfig blocked_config = full_config;
  blocked_config.approach = LinearMarginSpec(1);
  const RunResult full = RunActiveLearning(Data(), full_config);
  const RunResult blocked = RunActiveLearning(Data(), blocked_config);
  EXPECT_NEAR(blocked.best_f1, full.best_f1, 0.15);
}

TEST(IntegrationTest, RulesTerminateEarly) {
  RunConfig config;
  config.approach = RulesLfpLfnSpec();
  config.max_labels = 100000;  // Effectively unbounded.
  const RunResult result = RunActiveLearning(Data(), config);
  // LFP/LFN terminates on its own long before exhausting the pool.
  EXPECT_LT(result.curve.back().labels_used, Data().pairs.size());
}

}  // namespace
}  // namespace alem
