// Cross-module property sweeps: invariants of the full preprocessing
// pipeline, checked over every dataset profile (parameterized gtest).

#include <gtest/gtest.h>

#include "core/harness.h"
#include "sim/similarity.h"
#include "synth/profiles.h"

namespace alem {
namespace {

class PipelinePropertyTest : public ::testing::TestWithParam<int> {
 protected:
  // One small prepared dataset per profile, cached across tests.
  static const PreparedDataset& Data(int index) {
    static auto& cache = *new std::map<int, PreparedDataset>();
    auto it = cache.find(index);
    if (it == cache.end()) {
      const std::vector<SynthProfile> profiles = AllPublicProfiles();
      it = cache
               .emplace(index,
                        PrepareDataset(
                            {profiles[static_cast<size_t>(index)], 13, 0.2}))
               .first;
    }
    return it->second;
  }
};

TEST_P(PipelinePropertyTest, FloatFeaturesWithinUnitInterval) {
  const PreparedDataset& data = Data(GetParam());
  for (size_t row = 0; row < data.float_features.rows(); ++row) {
    for (size_t dim = 0; dim < data.float_features.dims(); ++dim) {
      const float value = data.float_features.At(row, dim);
      ASSERT_GE(value, 0.0f) << data.name << " row " << row << " dim " << dim;
      ASSERT_LE(value, 1.0f) << data.name << " row " << row << " dim " << dim;
    }
  }
}

TEST_P(PipelinePropertyTest, DimensionalityContract) {
  const PreparedDataset& data = Data(GetParam());
  const size_t columns = data.dataset.matched_columns.size();
  EXPECT_EQ(data.float_features.dims(),
            columns * static_cast<size_t>(kNumSimilarityFunctions));
  // Boolean atoms: 3 rule similarity functions x 10 thresholds per column.
  EXPECT_EQ(data.boolean_features.dims(), columns * 30u);
  EXPECT_EQ(data.feature_names.size(), data.float_features.dims());
}

TEST_P(PipelinePropertyTest, TruthAlignsWithPairs) {
  const PreparedDataset& data = Data(GetParam());
  ASSERT_EQ(data.truth.size(), data.pairs.size());
  size_t matches = 0;
  for (size_t i = 0; i < data.pairs.size(); ++i) {
    EXPECT_EQ(data.truth[i], data.dataset.truth.IsMatch(data.pairs[i]) ? 1 : 0);
    matches += static_cast<size_t>(data.truth[i]);
  }
  EXPECT_EQ(matches, data.num_matches);
  EXPECT_GT(matches, 0u) << data.name;
  EXPECT_LT(matches, data.pairs.size()) << data.name;
}

TEST_P(PipelinePropertyTest, BooleanFeaturesConsistentWithFloat) {
  const PreparedDataset& data = Data(GetParam());
  const BooleanFeaturizer& featurizer = *data.featurizer;
  // Spot-check a sample of rows against the atom definitions.
  for (size_t row = 0; row < data.pairs.size(); row += 17) {
    for (size_t a = 0; a < featurizer.num_atoms(); a += 7) {
      const BooleanAtom& atom = featurizer.atom(a);
      const bool expected = data.float_features.At(row, atom.float_dim) >=
                            atom.threshold - 1e-9;
      ASSERT_EQ(data.boolean_features.At(row, a) >= 0.5f, expected)
          << data.name << " " << atom.description;
    }
  }
}

TEST_P(PipelinePropertyTest, MatchesScoreHigherOnAverage) {
  // Averaged over all features, matching pairs must look more similar than
  // non-matching ones — or no learner could possibly work.
  const PreparedDataset& data = Data(GetParam());
  double match_sum = 0.0, non_sum = 0.0;
  size_t match_count = 0, non_count = 0;
  for (size_t row = 0; row < data.float_features.rows(); ++row) {
    double row_mean = 0.0;
    for (size_t dim = 0; dim < data.float_features.dims(); ++dim) {
      row_mean += data.float_features.At(row, dim);
    }
    row_mean /= static_cast<double>(data.float_features.dims());
    if (data.truth[row] == 1) {
      match_sum += row_mean;
      ++match_count;
    } else {
      non_sum += row_mean;
      ++non_count;
    }
  }
  ASSERT_GT(match_count, 0u);
  ASSERT_GT(non_count, 0u);
  EXPECT_GT(match_sum / match_count, non_sum / non_count) << data.name;
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, PipelinePropertyTest,
                         ::testing::Range(0, 9),
                         [](const ::testing::TestParamInfo<int>& info) {
                           std::string name =
                               AllPublicProfiles()
                                   [static_cast<size_t>(info.param)]
                                       .name;
                           for (char& c : name) {
                             if (!std::isalnum(
                                     static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace alem
