// Tests for the alternative blocking implementations: the prefix-filtered
// exact join (must be bit-identical to the baseline) and MinHash-LSH
// (approximate: recall/precision properties + determinism).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "blocking/jaccard_blocking.h"
#include "blocking/minhash_lsh.h"
#include "ml/dnf_rule.h"
#include "synth/generator.h"
#include "synth/profiles.h"
#include "util/rng.h"

namespace alem {
namespace {

// ---- Prefix-filtered exact join ----

class PrefixEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(PrefixEquivalenceTest, IdenticalToBaseline) {
  const std::vector<SynthProfile> profiles = AllPublicProfiles();
  const SynthProfile& profile =
      profiles[static_cast<size_t>(GetParam()) % profiles.size()];
  const EmDataset dataset = GenerateDataset(profile, 23, 0.2);
  const BlockingConfig config{profile.blocking_threshold};

  const auto baseline = JaccardBlocking(dataset, config);
  const auto prefix = JaccardBlockingPrefix(dataset, config);
  ASSERT_EQ(prefix.size(), baseline.size()) << profile.name;
  for (size_t i = 0; i < prefix.size(); ++i) {
    EXPECT_EQ(prefix[i], baseline[i]) << profile.name << " pair " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, PrefixEquivalenceTest,
                         ::testing::Range(0, 9));

TEST(PrefixBlockingTest, HighThresholdStillExact) {
  const EmDataset dataset = GenerateDataset(AbtBuyProfile(), 5, 0.2);
  for (const double threshold : {0.5, 0.8, 0.99}) {
    const BlockingConfig config{threshold};
    EXPECT_EQ(JaccardBlockingPrefix(dataset, config),
              JaccardBlocking(dataset, config));
  }
}

// ---- MinHash LSH ----

TEST(MinHashTest, SignatureIsDeterministicAndOrderInvariant) {
  using internal_minhash::Signature;
  std::vector<uint64_t> seeds = {1, 2, 3, 4};
  const std::vector<uint64_t> tokens_a = {10, 20, 30};
  std::vector<uint64_t> tokens_shuffled = {30, 10, 20};
  EXPECT_EQ(Signature(tokens_a, seeds), Signature(tokens_shuffled, seeds));
  EXPECT_EQ(Signature(tokens_a, seeds), Signature(tokens_a, seeds));
}

TEST(MinHashTest, SignatureAgreementTracksJaccard) {
  using internal_minhash::Signature;
  Rng rng(7);
  std::vector<uint64_t> seeds(256);
  for (uint64_t& seed : seeds) seed = rng.Next();

  // Two sets with Jaccard 0.5 (50 shared of 100 union).
  std::vector<uint64_t> a, b;
  for (uint64_t t = 0; t < 50; ++t) {
    a.push_back(t);
    b.push_back(t);
  }
  for (uint64_t t = 100; t < 125; ++t) a.push_back(t);
  for (uint64_t t = 200; t < 225; ++t) b.push_back(t);
  // Jaccard = 50 / 100 = 0.5.
  const auto sig_a = Signature(a, seeds);
  const auto sig_b = Signature(b, seeds);
  size_t agreements = 0;
  for (size_t i = 0; i < seeds.size(); ++i) {
    agreements += sig_a[i] == sig_b[i] ? 1 : 0;
  }
  const double rate = static_cast<double>(agreements) / seeds.size();
  EXPECT_NEAR(rate, 0.5, 0.1);  // E[agreement] = Jaccard.
}

TEST(MinHashTest, CollisionProbabilityFormula) {
  using internal_minhash::CollisionProbability;
  EXPECT_NEAR(CollisionProbability(1.0, 16, 4), 1.0, 1e-12);
  EXPECT_NEAR(CollisionProbability(0.0, 16, 4), 0.0, 1e-12);
  // Monotone in s.
  double previous = 0.0;
  for (double s = 0.0; s <= 1.0; s += 0.1) {
    const double p = CollisionProbability(s, 16, 4);
    EXPECT_GE(p, previous);
    previous = p;
  }
}

TEST(MinHashTest, ConfigForThresholdCentersTheCurve) {
  for (const double threshold : {0.1, 0.2, 0.5, 0.8}) {
    const MinHashConfig config = ConfigForThreshold(threshold, 64);
    const double midpoint =
        std::pow(1.0 / config.num_bands, 1.0 / config.rows_per_band);
    EXPECT_NEAR(midpoint, threshold, 0.15) << "threshold " << threshold;
    EXPECT_LE(config.num_bands * config.rows_per_band, 64);
  }
}

TEST(MinHashTest, VerifiedBlockingIsSubsetOfExactWithHighRecall) {
  const SynthProfile profile = AbtBuyProfile();
  const EmDataset dataset = GenerateDataset(profile, 9, 0.3);
  const BlockingConfig exact_config{profile.blocking_threshold};
  const auto exact = JaccardBlocking(dataset, exact_config);

  MinHashConfig config = ConfigForThreshold(profile.blocking_threshold, 64);
  config.verify = true;
  const auto approximate = MinHashBlocking(dataset, config);

  // Verified LSH output must be a subset of the exact join...
  std::unordered_set<uint64_t> exact_keys;
  for (const RecordPair& pair : exact) exact_keys.insert(PairKey(pair));
  for (const RecordPair& pair : approximate) {
    EXPECT_TRUE(exact_keys.count(PairKey(pair)) > 0);
  }
  // ... and recover the bulk of it (banding misses a tail near threshold).
  EXPECT_GT(static_cast<double>(approximate.size()),
            0.7 * static_cast<double>(exact.size()));
}

TEST(MinHashTest, UnverifiedSupersetsVerified) {
  const EmDataset dataset = GenerateDataset(BeerProfile(), 3, 0.5);
  MinHashConfig config = ConfigForThreshold(0.3, 32);
  config.verify = false;
  const auto raw = MinHashBlocking(dataset, config);
  config.verify = true;
  const auto verified = MinHashBlocking(dataset, config);
  EXPECT_GE(raw.size(), verified.size());
}

TEST(MinHashTest, DeterministicInSeed) {
  const EmDataset dataset = GenerateDataset(BeerProfile(), 3, 0.5);
  const MinHashConfig config = ConfigForThreshold(0.26, 32);
  EXPECT_EQ(MinHashBlocking(dataset, config),
            MinHashBlocking(dataset, config));
}

TEST(MinHashTest, GroundTruthRecallIsHigh) {
  const SynthProfile profile = DblpAcmProfile();
  const EmDataset dataset = GenerateDataset(profile, 7, 0.4);
  MinHashConfig config = ConfigForThreshold(profile.blocking_threshold, 64);
  const auto pairs = MinHashBlocking(dataset, config);
  EXPECT_GT(BlockingRecall(dataset, pairs), 0.9);
}

// ---- Dnf::Simplify ----

TEST(DnfSimplifyTest, RemovesSupersetsAndDuplicates) {
  Dnf dnf;
  dnf.conjunctions.push_back(Conjunction{{1, 2}});
  dnf.conjunctions.push_back(Conjunction{{1, 2, 3}});  // Superset: redundant.
  dnf.conjunctions.push_back(Conjunction{{2, 1}});     // Duplicate (order).
  dnf.conjunctions.push_back(Conjunction{{5}});
  const size_t removed = dnf.Simplify();
  EXPECT_EQ(removed, 2u);
  ASSERT_EQ(dnf.conjunctions.size(), 2u);
  EXPECT_EQ(dnf.conjunctions[0].atoms, (std::vector<size_t>{1, 2}));
  EXPECT_EQ(dnf.conjunctions[1].atoms, (std::vector<size_t>{5}));
}

TEST(DnfSimplifyTest, PreservesSemantics) {
  Rng rng(4);
  Dnf dnf;
  for (int c = 0; c < 8; ++c) {
    Conjunction conjunction;
    const int atoms = static_cast<int>(rng.NextInRange(1, 4));
    for (int a = 0; a < atoms; ++a) {
      conjunction.atoms.push_back(rng.NextBelow(6));
    }
    dnf.conjunctions.push_back(conjunction);
  }
  Dnf simplified = dnf;
  simplified.Simplify();
  // Exhaustively check all 2^6 boolean inputs.
  for (int mask = 0; mask < 64; ++mask) {
    float row[6];
    for (int a = 0; a < 6; ++a) row[a] = (mask >> a) & 1 ? 1.0f : 0.0f;
    EXPECT_EQ(dnf.Matches(row), simplified.Matches(row)) << mask;
  }
}

TEST(DnfSimplifyTest, EmptyAndSingleton) {
  Dnf empty;
  EXPECT_EQ(empty.Simplify(), 0u);
  Dnf single;
  single.conjunctions.push_back(Conjunction{{0}});
  EXPECT_EQ(single.Simplify(), 0u);
  EXPECT_EQ(single.conjunctions.size(), 1u);
}

}  // namespace
}  // namespace alem
