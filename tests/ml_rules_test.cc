#include <gtest/gtest.h>

#include "ml/dnf_rule.h"
#include "ml/metrics.h"
#include "util/rng.h"

namespace alem {
namespace {

// Boolean dataset where the target concept is the DNF
//   (atom0 AND atom1) OR atom3.
void MakeDnfData(size_t n, uint64_t seed, FeatureMatrix* features,
                 std::vector<int>* labels) {
  Rng rng(seed);
  *features = FeatureMatrix(n, 5);
  labels->resize(n);
  for (size_t i = 0; i < n; ++i) {
    int bits[5];
    for (size_t a = 0; a < 5; ++a) {
      bits[a] = rng.NextBernoulli(0.4) ? 1 : 0;
      features->Set(i, a, static_cast<float>(bits[a]));
    }
    (*labels)[i] = ((bits[0] != 0 && bits[1] != 0) || bits[3] != 0) ? 1 : 0;
  }
}

TEST(ConjunctionTest, MatchesRequiresAllAtoms) {
  const float row_match[] = {1.0f, 1.0f, 0.0f};
  const float row_miss[] = {1.0f, 0.0f, 0.0f};
  Conjunction conjunction{{0, 1}};
  EXPECT_TRUE(conjunction.Matches(row_match));
  EXPECT_FALSE(conjunction.Matches(row_miss));
}

TEST(ConjunctionTest, EmptyConjunctionMatchesEverything) {
  const float row[] = {0.0f, 0.0f};
  Conjunction conjunction;
  EXPECT_TRUE(conjunction.Matches(row));
}

TEST(DnfTest, MatchesIsDisjunction) {
  const float row[] = {0.0f, 1.0f, 1.0f};
  Dnf dnf;
  dnf.conjunctions.push_back(Conjunction{{0}});      // Fails.
  dnf.conjunctions.push_back(Conjunction{{1, 2}});   // Matches.
  EXPECT_TRUE(dnf.Matches(row));
  EXPECT_EQ(dnf.NumAtoms(), 3u);
}

TEST(DnfTest, EmptyDnfMatchesNothing) {
  const float row[] = {1.0f};
  Dnf dnf;
  EXPECT_FALSE(dnf.Matches(row));
  EXPECT_EQ(dnf.NumAtoms(), 0u);
}

TEST(DnfTest, RuleMinusDropsOneAtomEachWay) {
  Dnf dnf;
  dnf.conjunctions.push_back(Conjunction{{0, 1, 2}});
  dnf.conjunctions.push_back(Conjunction{{3}});  // Too short to relax.
  const std::vector<Conjunction> variants = dnf.RuleMinusVariants();
  ASSERT_EQ(variants.size(), 3u);
  EXPECT_EQ(variants[0].atoms, (std::vector<size_t>{1, 2}));
  EXPECT_EQ(variants[1].atoms, (std::vector<size_t>{0, 2}));
  EXPECT_EQ(variants[2].atoms, (std::vector<size_t>{0, 1}));
}

TEST(DnfRuleLearnerTest, RecoversPlantedDnf) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeDnfData(600, 1, &features, &labels);
  DnfRuleLearner learner(DnfRuleLearnerConfig{});
  learner.Fit(features, labels);
  const BinaryMetrics m =
      ComputeBinaryMetrics(learner.PredictAll(features), labels);
  EXPECT_GT(m.f1, 0.98);
  // The learned DNF should be compact (the planted concept has 3 atoms).
  EXPECT_LE(learner.dnf().NumAtoms(), 6u);
}

TEST(DnfRuleLearnerTest, LearnedRulesAreHighPrecision) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeDnfData(600, 2, &features, &labels);
  DnfRuleLearnerConfig config;
  config.min_precision = 0.9;
  DnfRuleLearner learner(config);
  learner.Fit(features, labels);
  // Each individual conjunction must clear the precision gate on the data it
  // was accepted against; verify the overall DNF is also high precision.
  const BinaryMetrics m =
      ComputeBinaryMetrics(learner.PredictAll(features), labels);
  EXPECT_GE(m.precision, 0.9);
}

TEST(DnfRuleLearnerTest, AllNegativeDataYieldsEmptyDnf) {
  FeatureMatrix features(50, 4);
  std::vector<int> labels(50, 0);
  DnfRuleLearner learner;
  learner.Fit(features, labels);
  EXPECT_TRUE(learner.dnf().conjunctions.empty());
  EXPECT_EQ(learner.Predict(features.Row(0)), 0);
}

TEST(DnfRuleLearnerTest, NoiseBelowGateLearnsNothingReckless) {
  // Labels independent of features: no high-precision rule should exist.
  Rng rng(3);
  FeatureMatrix features(300, 4);
  std::vector<int> labels(300);
  for (size_t i = 0; i < 300; ++i) {
    for (size_t a = 0; a < 4; ++a) {
      features.Set(i, a, rng.NextBernoulli(0.5) ? 1.0f : 0.0f);
    }
    labels[i] = rng.NextBernoulli(0.3) ? 1 : 0;
  }
  DnfRuleLearnerConfig config;
  config.min_precision = 0.95;
  DnfRuleLearner learner(config);
  learner.Fit(features, labels);
  // Whatever was learned (likely nothing) must keep precision >= gate or be
  // empty; random-label data cannot support a broad high-precision rule.
  const std::vector<int> predictions = learner.PredictAll(features);
  size_t predicted_positives = 0;
  for (const int p : predictions) predicted_positives += p;
  EXPECT_LT(predicted_positives, 60u);
}

TEST(DnfRuleLearnerTest, ToStringMentionsAtoms) {
  Dnf dnf;
  dnf.conjunctions.push_back(Conjunction{{0}});
  // A real featurizer requires a dataset; exercise the empty path only.
  Dnf empty;
  EXPECT_EQ(empty.conjunctions.size(), 0u);
}

TEST(DnfRuleLearnerTest, LearnedDnfIsAlreadySimplified) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeDnfData(500, 5, &features, &labels);
  DnfRuleLearner learner;
  learner.Fit(features, labels);
  // Fit() simplifies on the way out, so a second pass finds nothing.
  Dnf dnf = learner.dnf();
  EXPECT_EQ(dnf.Simplify(), 0u);
}

TEST(DnfRuleLearnerTest, RespectsMaxConjunctions) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeDnfData(400, 4, &features, &labels);
  DnfRuleLearnerConfig config;
  config.max_conjunctions = 1;
  DnfRuleLearner learner(config);
  learner.Fit(features, labels);
  EXPECT_LE(learner.dnf().conjunctions.size(), 1u);
}

}  // namespace
}  // namespace alem
