#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/learner.h"
#include "core/pool.h"
#include "core/selector.h"
#include "util/rng.h"

namespace alem {
namespace {

// Pool over 1-D features in [0, 1]; a linear boundary at 0.5 makes margins
// directly interpretable.
ActivePool MakeLinePool(size_t n) {
  FeatureMatrix features(n, 1);
  for (size_t i = 0; i < n; ++i) {
    features.Set(i, 0, static_cast<float>(i) / static_cast<float>(n - 1));
  }
  return ActivePool(std::move(features));
}

void LabelEndpoints(ActivePool& pool, size_t n) {
  // Label a few points at each extreme so learners have both classes.
  for (size_t i = 0; i < 5; ++i) {
    pool.AddLabel(i, 0);
    pool.AddLabel(n - 1 - i, 1);
  }
}

SvmLearner TrainedSvm(const ActivePool& pool) {
  SvmLearner learner{LinearSvmConfig{}};
  learner.Fit(pool.ActiveLabeledFeatures(), pool.ActiveLabeledLabels());
  return learner;
}

// ---- Compatibility matrix (Fig. 2) ----

TEST(SelectorCompatibilityTest, MatchesClassHierarchy) {
  SvmLearner svm;
  NeuralNetLearner nn;
  ForestLearner forest;
  RuleLearner rules;

  MarginSelector margin;
  EXPECT_TRUE(margin.CompatibleWith(svm));
  EXPECT_TRUE(margin.CompatibleWith(nn));
  EXPECT_FALSE(margin.CompatibleWith(forest));
  EXPECT_FALSE(margin.CompatibleWith(rules));

  QbcSelector qbc(2, 1);
  EXPECT_TRUE(qbc.CompatibleWith(svm));
  EXPECT_TRUE(qbc.CompatibleWith(nn));
  EXPECT_TRUE(qbc.CompatibleWith(forest));
  EXPECT_TRUE(qbc.CompatibleWith(rules));

  ForestQbcSelector forest_qbc(1);
  EXPECT_FALSE(forest_qbc.CompatibleWith(svm));
  EXPECT_TRUE(forest_qbc.CompatibleWith(forest));

  LfpLfnSelector lfp_lfn;
  EXPECT_TRUE(lfp_lfn.CompatibleWith(rules));
  EXPECT_FALSE(lfp_lfn.CompatibleWith(svm));
  EXPECT_FALSE(lfp_lfn.CompatibleWith(forest));

  RandomSelector random(1);
  EXPECT_TRUE(random.CompatibleWith(svm));
  EXPECT_TRUE(random.CompatibleWith(rules));
}

// ---- RandomSelector ----

TEST(RandomSelectorTest, SelectsRequestedCountWithoutDuplicates) {
  ActivePool pool = MakeLinePool(100);
  LabelEndpoints(pool, 100);
  SvmLearner learner = TrainedSvm(pool);
  RandomSelector selector(3);
  const std::vector<size_t> batch = selector.Select(learner, pool, 10, nullptr);
  EXPECT_EQ(batch.size(), 10u);
  std::set<size_t> unique(batch.begin(), batch.end());
  EXPECT_EQ(unique.size(), 10u);
  for (const size_t row : batch) {
    EXPECT_FALSE(pool.IsLabeled(row));
  }
}

TEST(RandomSelectorTest, CapsAtUnlabeledCount) {
  ActivePool pool = MakeLinePool(12);
  LabelEndpoints(pool, 12);  // 10 labeled, 2 left.
  SvmLearner learner = TrainedSvm(pool);
  RandomSelector selector(3);
  EXPECT_EQ(selector.Select(learner, pool, 10, nullptr).size(), 2u);
}

// ---- MarginSelector ----

TEST(MarginSelectorTest, PicksExamplesClosestToBoundary) {
  const size_t n = 101;
  ActivePool pool = MakeLinePool(n);
  LabelEndpoints(pool, n);
  SvmLearner learner = TrainedSvm(pool);

  MarginSelector selector;
  SelectionTiming timing;
  const std::vector<size_t> batch = selector.Select(learner, pool, 5, &timing);
  ASSERT_EQ(batch.size(), 5u);
  EXPECT_EQ(timing.scored_examples, pool.unlabeled_rows().size());

  // All selected rows must have margins no larger than every unselected one.
  double max_selected = 0.0;
  for (const size_t row : batch) {
    max_selected = std::max(
        max_selected, std::abs(learner.Margin(pool.features().Row(row))));
  }
  for (const size_t row : pool.unlabeled_rows()) {
    if (std::find(batch.begin(), batch.end(), row) != batch.end()) continue;
    EXPECT_GE(std::abs(learner.Margin(pool.features().Row(row))) + 1e-12,
              max_selected);
  }
}

TEST(MarginSelectorTest, BlockingPrunesZeroDimensionExamples) {
  // Two features; feature 0 carries the signal, feature 1 is noise. Give
  // some rows an all-zero signal dimension.
  const size_t n = 60;
  FeatureMatrix features(n, 2);
  for (size_t i = 0; i < n; ++i) {
    features.Set(i, 0, i % 3 == 0 ? 0.0f : (i < n / 2 ? 0.2f : 0.9f));
    features.Set(i, 1, 0.5f);
  }
  ActivePool pool(std::move(features));
  for (size_t i = 0; i < 6; ++i) {
    pool.AddLabel(1 + i, 0);          // Low-signal rows.
    pool.AddLabel(n - 1 - i, 1);      // High-signal rows.
  }
  SvmLearner learner = TrainedSvm(pool);

  MarginSelector blocking_selector(/*blocking_dims=*/1);
  SelectionTiming timing;
  const std::vector<size_t> batch =
      blocking_selector.Select(learner, pool, 5, &timing);
  EXPECT_GT(timing.pruned_examples, 0u);
  EXPECT_EQ(timing.pruned_examples + timing.scored_examples,
            pool.unlabeled_rows().size());
  // Pruned rows (feature0 == 0) must not be selected.
  for (const size_t row : batch) {
    EXPECT_NE(pool.features().At(row, 0), 0.0f);
  }
}

TEST(MarginSelectorTest, NoBlockingScoresEverything) {
  ActivePool pool = MakeLinePool(50);
  LabelEndpoints(pool, 50);
  SvmLearner learner = TrainedSvm(pool);
  MarginSelector selector(0);
  SelectionTiming timing;
  selector.Select(learner, pool, 5, &timing);
  EXPECT_EQ(timing.pruned_examples, 0u);
  EXPECT_EQ(timing.scored_examples, pool.unlabeled_rows().size());
}

// ---- QbcSelector ----

TEST(QbcSelectorTest, ReportsCommitteeAndScoringTime) {
  ActivePool pool = MakeLinePool(80);
  LabelEndpoints(pool, 80);
  SvmLearner learner = TrainedSvm(pool);
  QbcSelector selector(4, 11);
  SelectionTiming timing;
  const std::vector<size_t> batch = selector.Select(learner, pool, 5, &timing);
  EXPECT_EQ(batch.size(), 5u);
  EXPECT_GT(timing.committee_seconds, 0.0);
  EXPECT_GE(timing.scoring_seconds, 0.0);
  EXPECT_EQ(timing.scored_examples, pool.unlabeled_rows().size());
}

TEST(QbcSelectorTest, PrefersDisagreementRegion) {
  // The ambiguous region of a 1-D threshold problem is the middle; QBC picks
  // should concentrate closer to the boundary than random expectation.
  const size_t n = 201;
  ActivePool pool = MakeLinePool(n);
  LabelEndpoints(pool, n);
  SvmLearner learner = TrainedSvm(pool);
  QbcSelector selector(8, 5);
  const std::vector<size_t> batch = selector.Select(learner, pool, 10, nullptr);
  double mean_distance = 0.0;
  for (const size_t row : batch) {
    mean_distance += std::abs(pool.features().At(row, 0) - 0.5f);
  }
  mean_distance /= static_cast<double>(batch.size());
  EXPECT_LT(mean_distance, 0.25);  // Random selection would average ~0.25+.
}

TEST(QbcSelectorTest, WorksWithForestLearner) {
  ActivePool pool = MakeLinePool(60);
  LabelEndpoints(pool, 60);
  RandomForestConfig config;
  config.num_trees = 3;
  ForestLearner learner(config);
  learner.Fit(pool.ActiveLabeledFeatures(), pool.ActiveLabeledLabels());
  QbcSelector selector(3, 2);
  EXPECT_EQ(selector.Select(learner, pool, 4, nullptr).size(), 4u);
}

// ---- ForestQbcSelector ----

TEST(ForestQbcSelectorTest, ZeroCommitteeTime) {
  ActivePool pool = MakeLinePool(100);
  LabelEndpoints(pool, 100);
  RandomForestConfig config;
  config.num_trees = 10;
  ForestLearner learner(config);
  learner.Fit(pool.ActiveLabeledFeatures(), pool.ActiveLabeledLabels());

  ForestQbcSelector selector(9);
  SelectionTiming timing;
  const std::vector<size_t> batch = selector.Select(learner, pool, 5, &timing);
  EXPECT_EQ(batch.size(), 5u);
  EXPECT_EQ(timing.committee_seconds, 0.0);
  EXPECT_EQ(timing.scored_examples, pool.unlabeled_rows().size());
}

TEST(ForestQbcSelectorTest, SelectsMaximumVarianceExamples) {
  ActivePool pool = MakeLinePool(100);
  LabelEndpoints(pool, 100);
  RandomForestConfig config;
  config.num_trees = 10;
  ForestLearner learner(config);
  learner.Fit(pool.ActiveLabeledFeatures(), pool.ActiveLabeledLabels());

  ForestQbcSelector selector(9);
  const std::vector<size_t> batch = selector.Select(learner, pool, 3, nullptr);
  double min_selected_variance = 1.0;
  for (const size_t row : batch) {
    const double p = learner.PositiveFraction(pool.features().Row(row));
    min_selected_variance = std::min(min_selected_variance, p * (1 - p));
  }
  // No unselected example may exceed the lowest selected variance.
  for (const size_t row : pool.unlabeled_rows()) {
    if (std::find(batch.begin(), batch.end(), row) != batch.end()) continue;
    const double p = learner.PositiveFraction(pool.features().Row(row));
    EXPECT_LE(p * (1 - p), min_selected_variance + 1e-12);
  }
}

// ---- LfpLfnSelector ----

TEST(LfpLfnSelectorTest, BootstrapModeSelectsMostSimilar) {
  // Untrained/empty DNF: the selector should propose high-proxy rows.
  FeatureMatrix features(20, 4);
  for (size_t i = 0; i < 20; ++i) {
    // Rows 15..19 satisfy all atoms; the rest none.
    for (size_t a = 0; a < 4; ++a) {
      features.Set(i, a, i >= 15 ? 1.0f : 0.0f);
    }
  }
  ActivePool pool(std::move(features));
  RuleLearner learner;
  // Train on something trivial so trained() holds but no rule is learned.
  FeatureMatrix empty_features(2, 4);
  learner.Fit(empty_features, {0, 0});

  LfpLfnSelector selector;
  const std::vector<size_t> batch = selector.Select(learner, pool, 3, nullptr);
  ASSERT_EQ(batch.size(), 3u);
  for (const size_t row : batch) {
    EXPECT_GE(row, 15u);
  }
}

TEST(LfpLfnSelectorTest, EmptyWhenNoCandidates) {
  // A trained rule that matches nothing unlabeled, and no rule-minus hits:
  // selection must come back empty (termination signal).
  FeatureMatrix features(10, 3);  // All-zero rows.
  ActivePool pool(std::move(features));

  // Build training data that teaches the rule (atom0 AND atom1).
  FeatureMatrix train(40, 3);
  std::vector<int> labels(40);
  for (size_t i = 0; i < 40; ++i) {
    const bool positive = i % 2 == 0;
    train.Set(i, 0, positive ? 1.0f : 0.0f);
    train.Set(i, 1, positive ? 1.0f : 0.0f);
    labels[i] = positive ? 1 : 0;
  }
  RuleLearner learner;
  learner.Fit(train, labels);
  ASSERT_FALSE(learner.dnf().conjunctions.empty());

  LfpLfnSelector selector;
  const std::vector<size_t> batch = selector.Select(learner, pool, 5, nullptr);
  EXPECT_TRUE(batch.empty());
}

}  // namespace
}  // namespace alem
