#include <gtest/gtest.h>

#include "ml/metrics.h"

namespace alem {
namespace {

TEST(MetricsTest, PerfectPredictions) {
  const std::vector<int> labels = {1, 0, 1, 0};
  const BinaryMetrics m = ComputeBinaryMetrics(labels, labels);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
  EXPECT_EQ(m.true_positives, 2u);
  EXPECT_EQ(m.true_negatives, 2u);
}

TEST(MetricsTest, KnownConfusion) {
  const std::vector<int> predictions = {1, 1, 1, 0, 0, 0};
  const std::vector<int> labels = {1, 1, 0, 1, 0, 0};
  const BinaryMetrics m = ComputeBinaryMetrics(predictions, labels);
  EXPECT_EQ(m.true_positives, 2u);
  EXPECT_EQ(m.false_positives, 1u);
  EXPECT_EQ(m.false_negatives, 1u);
  EXPECT_EQ(m.true_negatives, 2u);
  EXPECT_DOUBLE_EQ(m.precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.recall, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.f1, 2.0 / 3.0);
}

TEST(MetricsTest, NoPredictedPositives) {
  const BinaryMetrics m = ComputeBinaryMetrics({0, 0, 0}, {1, 0, 1});
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(MetricsTest, NoActualPositives) {
  const BinaryMetrics m = ComputeBinaryMetrics({1, 0}, {0, 0});
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(MetricsTest, AllNegativeAgreement) {
  const BinaryMetrics m = ComputeBinaryMetrics({0, 0}, {0, 0});
  EXPECT_EQ(m.true_negatives, 2u);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);  // Undefined -> 0 by convention.
}

TEST(MetricsTest, EmptyInput) {
  const BinaryMetrics m = ComputeBinaryMetrics({}, {});
  EXPECT_EQ(m.true_positives, 0u);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(MetricsTest, PrecisionRecallAsymmetry) {
  // 1 TP, 3 FP -> precision 0.25; recall 1.0.
  const BinaryMetrics m = ComputeBinaryMetrics({1, 1, 1, 1}, {1, 0, 0, 0});
  EXPECT_DOUBLE_EQ(m.precision, 0.25);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.4);
}

}  // namespace
}  // namespace alem
