#include <gtest/gtest.h>

#include <cstring>

#include "features/boolean_features.h"
#include "features/feature_extractor.h"
#include "features/feature_matrix.h"
#include "features/feature_schema.h"
#include "sim/similarity.h"

namespace alem {
namespace {

EmDataset MakeDataset() {
  EmDataset dataset;
  dataset.name = "test";
  Schema schema({"name", "price"});
  dataset.left = Table(schema);
  dataset.right = Table(schema);
  dataset.left.AddRow({"sony camera", "299.99"});
  dataset.left.AddRow({"canon printer", ""});
  dataset.right.AddRow({"sony camera", "299.99"});
  dataset.right.AddRow({"office chair", "19.99"});
  dataset.matched_columns = {{0, 0}, {1, 1}};
  dataset.truth.AddMatch({0, 0});
  return dataset;
}

// ---- FeatureMatrix ----

TEST(FeatureMatrixTest, ShapeAndAccess) {
  FeatureMatrix matrix(3, 4);
  EXPECT_EQ(matrix.rows(), 3u);
  EXPECT_EQ(matrix.dims(), 4u);
  matrix.Set(1, 2, 0.5f);
  EXPECT_FLOAT_EQ(matrix.At(1, 2), 0.5f);
  EXPECT_FLOAT_EQ(matrix.Row(1)[2], 0.5f);
  EXPECT_FLOAT_EQ(matrix.At(0, 0), 0.0f);
}

TEST(FeatureMatrixTest, GatherCopiesRows) {
  FeatureMatrix matrix(3, 2);
  for (size_t r = 0; r < 3; ++r) {
    matrix.Set(r, 0, static_cast<float>(r));
  }
  const FeatureMatrix gathered = matrix.Gather({2, 0, 2});
  ASSERT_EQ(gathered.rows(), 3u);
  EXPECT_FLOAT_EQ(gathered.At(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(gathered.At(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(gathered.At(2, 0), 2.0f);
}

TEST(FeatureMatrixTest, AppendRowSetsDims) {
  FeatureMatrix matrix;
  matrix.AppendRow({1.0f, 2.0f});
  matrix.AppendRow({3.0f, 4.0f});
  EXPECT_EQ(matrix.rows(), 2u);
  EXPECT_EQ(matrix.dims(), 2u);
  EXPECT_FLOAT_EQ(matrix.At(1, 1), 4.0f);
}

TEST(FeatureMatrixTest, SerializeRoundTripIsBitwise) {
  FeatureMatrix matrix(4, 3);
  for (size_t r = 0; r < 4; ++r) {
    for (size_t d = 0; d < 3; ++d) {
      matrix.Set(r, d, 0.3f * static_cast<float>(r) -
                           0.7f * static_cast<float>(d) + 0.001f);
    }
  }
  const std::string blob = matrix.Serialize();
  FeatureMatrix parsed;
  ASSERT_TRUE(FeatureMatrix::Deserialize(blob, &parsed));
  ASSERT_EQ(parsed.rows(), matrix.rows());
  ASSERT_EQ(parsed.dims(), matrix.dims());
  for (size_t r = 0; r < matrix.rows(); ++r) {
    EXPECT_EQ(std::memcmp(parsed.Row(r), matrix.Row(r),
                          matrix.dims() * sizeof(float)),
              0);
  }
}

TEST(FeatureMatrixTest, DeserializeRejectsCorruption) {
  FeatureMatrix matrix(4, 3);
  matrix.Set(2, 1, 0.5f);
  const std::string blob = matrix.Serialize();
  FeatureMatrix parsed;

  // Truncation (header-only and mid-payload) and trailing garbage.
  EXPECT_FALSE(FeatureMatrix::Deserialize(blob.substr(0, 10), &parsed));
  EXPECT_FALSE(
      FeatureMatrix::Deserialize(blob.substr(0, blob.size() - 5), &parsed));
  EXPECT_FALSE(FeatureMatrix::Deserialize(blob + "x", &parsed));

  // Wrong magic and a flipped payload byte (checksum mismatch).
  std::string bad_magic = blob;
  bad_magic[0] = 'X';
  EXPECT_FALSE(FeatureMatrix::Deserialize(bad_magic, &parsed));
  std::string bad_payload = blob;
  bad_payload[blob.size() - 3] =
      static_cast<char>(bad_payload[blob.size() - 3] + 1);
  EXPECT_FALSE(FeatureMatrix::Deserialize(bad_payload, &parsed));

  // The valid blob still parses after all the rejected variants.
  EXPECT_TRUE(FeatureMatrix::Deserialize(blob, &parsed));
}

// ---- FeatureSchema ----

TEST(FeatureSchemaTest, FromDatasetNamesAndShape) {
  const EmDataset dataset = MakeDataset();
  const FeatureSchema schema = FeatureSchema::FromDataset(dataset);
  EXPECT_EQ(schema.num_matched_columns(), 2u);
  EXPECT_EQ(schema.num_dims(),
            static_cast<size_t>(kNumSimilarityFunctions) * 2);
  EXPECT_EQ(schema.FeatureName(0), "Identity(name)");
  const auto names = schema.FeatureNames();
  ASSERT_EQ(names.size(), schema.num_dims());
  EXPECT_EQ(names.back(), "MongeElkan(price)");
}

// ---- FeatureExtractor ----

TEST(FeatureExtractorTest, DimensionalityIs21PerColumn) {
  const EmDataset dataset = MakeDataset();
  FeatureExtractor extractor(dataset);
  EXPECT_EQ(extractor.num_dims(),
            static_cast<size_t>(kNumSimilarityFunctions) * 2);
  EXPECT_EQ(extractor.num_matched_columns(), 2u);
}

TEST(FeatureExtractorTest, IdenticalPairScoresOnes) {
  const EmDataset dataset = MakeDataset();
  FeatureExtractor extractor(dataset);
  std::vector<float> features(extractor.num_dims());
  extractor.ExtractPair({0, 0}, features.data());  // Identical records.
  for (size_t d = 0; d < features.size(); ++d) {
    EXPECT_NEAR(features[d], 1.0f, 1e-6) << extractor.FeatureName(d);
  }
}

TEST(FeatureExtractorTest, NullAttributeYieldsZeroBlock) {
  const EmDataset dataset = MakeDataset();
  FeatureExtractor extractor(dataset);
  std::vector<float> features(extractor.num_dims());
  // Left row 1 has an empty price -> the whole price block must be 0.
  extractor.ExtractPair({1, 0}, features.data());
  for (int s = 0; s < kNumSimilarityFunctions; ++s) {
    EXPECT_EQ(features[static_cast<size_t>(kNumSimilarityFunctions + s)],
              0.0f);
  }
}

TEST(FeatureExtractorTest, ExtractDimMatchesFullExtraction) {
  const EmDataset dataset = MakeDataset();
  FeatureExtractor extractor(dataset);
  const RecordPair pair{0, 1};
  std::vector<float> features(extractor.num_dims());
  extractor.ExtractPair(pair, features.data());
  for (size_t d = 0; d < extractor.num_dims(); ++d) {
    EXPECT_FLOAT_EQ(extractor.ExtractDim(pair, d), features[d]);
  }
}

TEST(FeatureExtractorTest, ExtractAllAlignsWithPairs) {
  const EmDataset dataset = MakeDataset();
  FeatureExtractor extractor(dataset);
  const std::vector<RecordPair> pairs = {{0, 0}, {0, 1}, {1, 1}};
  const FeatureMatrix matrix = extractor.ExtractAll(pairs);
  EXPECT_EQ(matrix.rows(), 3u);
  std::vector<float> expected(extractor.num_dims());
  extractor.ExtractPair(pairs[1], expected.data());
  for (size_t d = 0; d < extractor.num_dims(); ++d) {
    EXPECT_FLOAT_EQ(matrix.At(1, d), expected[d]);
  }
}

TEST(FeatureExtractorTest, ExtractBatchMatchesPerPairBitwise) {
  const EmDataset dataset = MakeDataset();
  FeatureExtractor extractor(dataset);
  const std::vector<RecordPair> pairs = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  FeatureMatrix batch;
  extractor.ExtractBatch(pairs, &batch);
  ASSERT_EQ(batch.rows(), pairs.size());
  ASSERT_EQ(batch.dims(), extractor.num_dims());
  std::vector<float> expected(extractor.num_dims());
  for (size_t i = 0; i < pairs.size(); ++i) {
    extractor.ExtractPair(pairs[i], expected.data());
    for (size_t d = 0; d < extractor.num_dims(); ++d) {
      EXPECT_EQ(batch.At(i, d), expected[d]) << extractor.FeatureName(d);
    }
  }
}

TEST(FeatureExtractorTest, FeatureNamesMentionFunctionAndColumn) {
  const EmDataset dataset = MakeDataset();
  FeatureExtractor extractor(dataset);
  EXPECT_EQ(extractor.FeatureName(0), "Identity(name)");
  const auto names = extractor.FeatureNames();
  EXPECT_EQ(names.size(), extractor.num_dims());
  EXPECT_EQ(names.back(), "MongeElkan(price)");
}

// ---- BooleanFeaturizer ----

TEST(BooleanFeaturizerTest, AtomGridIs3Sims10ThresholdsPerColumn) {
  const EmDataset dataset = MakeDataset();
  FeatureExtractor extractor(dataset);
  BooleanFeaturizer featurizer(extractor.schema());
  EXPECT_EQ(featurizer.num_atoms(), 2u * 3u * 10u);
}

TEST(BooleanFeaturizerTest, ThresholdSemantics) {
  const EmDataset dataset = MakeDataset();
  FeatureExtractor extractor(dataset);
  BooleanFeaturizer featurizer(extractor.schema());

  const std::vector<RecordPair> pairs = {{0, 0}, {0, 1}};
  const FeatureMatrix float_features = extractor.ExtractAll(pairs);
  const FeatureMatrix boolean = featurizer.Featurize(float_features);
  EXPECT_EQ(boolean.rows(), 2u);
  EXPECT_EQ(boolean.dims(), featurizer.num_atoms());

  for (size_t a = 0; a < featurizer.num_atoms(); ++a) {
    const BooleanAtom& atom = featurizer.atom(a);
    for (size_t row = 0; row < 2; ++row) {
      const bool expected =
          float_features.At(row, atom.float_dim) >= atom.threshold - 1e-9;
      EXPECT_EQ(boolean.At(row, a) >= 0.5f, expected) << atom.description;
      EXPECT_EQ(featurizer.Evaluate(a, float_features.Row(row)), expected);
    }
  }
}

TEST(BooleanFeaturizerTest, IdenticalPairSatisfiesAllAtoms) {
  const EmDataset dataset = MakeDataset();
  FeatureExtractor extractor(dataset);
  BooleanFeaturizer featurizer(extractor.schema());
  const FeatureMatrix float_features = extractor.ExtractAll({{0, 0}});
  const FeatureMatrix boolean = featurizer.Featurize(float_features);
  for (size_t a = 0; a < featurizer.num_atoms(); ++a) {
    EXPECT_EQ(boolean.At(0, a), 1.0f) << featurizer.atom(a).description;
  }
}

TEST(BooleanFeaturizerTest, DescriptionsAreReadable) {
  const EmDataset dataset = MakeDataset();
  FeatureExtractor extractor(dataset);
  BooleanFeaturizer featurizer(extractor.schema());
  EXPECT_EQ(featurizer.atom(0).description, "Identity(name) >= 0.1");
}

}  // namespace
}  // namespace alem
