#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "sim/edit_based.h"
#include "sim/qgram_based.h"
#include "sim/similarity.h"
#include "sim/token_based.h"

namespace alem {
namespace {

AttributeProfile P(const std::string& s) { return AttributeProfile::Build(s); }

double Sim(const SimilarityFunction& f, const std::string& a,
           const std::string& b) {
  return f.Similarity(P(a), P(b));
}

// ---- Registry ----

TEST(RegistryTest, ExactlyTwentyOneFunctions) {
  EXPECT_EQ(AllSimilarityFunctions().size(),
            static_cast<size_t>(kNumSimilarityFunctions));
}

TEST(RegistryTest, NamesAreUniqueAndLookupWorks) {
  const auto& functions = AllSimilarityFunctions();
  for (size_t i = 0; i < functions.size(); ++i) {
    EXPECT_EQ(SimilarityIndexByName(functions[i]->name()),
              static_cast<int>(i));
  }
  EXPECT_EQ(SimilarityIndexByName("NoSuchFunction"), -1);
}

TEST(RegistryTest, RuleFunctionsAreEqualityJaroWinklerJaccard) {
  const std::vector<int>& indices = RuleSimilarityIndices();
  ASSERT_EQ(indices.size(), 3u);
  EXPECT_EQ(AllSimilarityFunctions()[indices[0]]->name(), "Identity");
  EXPECT_EQ(AllSimilarityFunctions()[indices[1]]->name(), "JaroWinkler");
  EXPECT_EQ(AllSimilarityFunctions()[indices[2]]->name(), "Jaccard");
}

// ---- Parameterized properties over all 21 functions ----

class SimilarityPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  const SimilarityFunction& function() const {
    return *AllSimilarityFunctions()[static_cast<size_t>(GetParam())];
  }
};

TEST_P(SimilarityPropertyTest, IdenticalStringsScoreOne) {
  for (const std::string& s :
       {"sony", "digital camera dsc w55", "a", "299.99", "kx-200 zoom"}) {
    EXPECT_NEAR(Sim(function(), s, s), 1.0, 1e-9)
        << function().name() << " on '" << s << "'";
  }
}

TEST_P(SimilarityPropertyTest, RangeIsZeroOne) {
  const std::vector<std::string> samples = {
      "sony camera", "canon powershot", "x", "aaaa bbbb cccc", "42",
      "totally unrelated text here", "sony", "sny camra", ""};
  for (const auto& a : samples) {
    for (const auto& b : samples) {
      const double sim = Sim(function(), a, b);
      EXPECT_GE(sim, 0.0) << function().name();
      EXPECT_LE(sim, 1.0) << function().name();
    }
  }
}

TEST_P(SimilarityPropertyTest, BatchMatchesScalarBitwise) {
  const std::vector<std::string> samples = {
      "sony camera", "canon powershot", "x",  "aaaa bbbb cccc",
      "42",          "sny camra",       "",   "digital camera dsc w55",
      "kx-200 zoom", "299.99",          "sony"};
  std::vector<AttributeProfile> profiles;
  profiles.reserve(samples.size());
  for (const auto& s : samples) profiles.push_back(P(s));

  // Cross product, repeated past the batch chunk size (256) so EvaluateBatch
  // splits the work across multiple ParallelFor chunks.
  std::vector<const AttributeProfile*> left;
  std::vector<const AttributeProfile*> right;
  while (left.size() < 600) {
    for (const auto& a : profiles) {
      for (const auto& b : profiles) {
        left.push_back(&a);
        right.push_back(&b);
      }
    }
  }
  std::vector<float> batch(left.size(), -1.0f);
  function().EvaluateBatch(left, right, batch.data());
  for (size_t i = 0; i < left.size(); ++i) {
    const float scalar =
        static_cast<float>(function().Similarity(*left[i], *right[i]));
    EXPECT_EQ(batch[i], scalar)
        << function().name() << " diverges at pair " << i;
  }
}

TEST_P(SimilarityPropertyTest, Symmetric) {
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"sony camera", "canon camera"},
      {"abcd", "abdc"},
      {"digital zoom lens", "zoom lens kit pro"},
      {"a", "abcdef"},
  };
  for (const auto& [a, b] : pairs) {
    EXPECT_NEAR(Sim(function(), a, b), Sim(function(), b, a), 1e-9)
        << function().name();
  }
}

TEST_P(SimilarityPropertyTest, NullProfileScoresZero) {
  EXPECT_EQ(function().Similarity(P(""), P("something")), 0.0);
  EXPECT_EQ(function().Similarity(P("something"), P("")), 0.0);
  EXPECT_EQ(function().Similarity(P(""), P("")), 0.0);
}

TEST_P(SimilarityPropertyTest, SimilarBeatsDissimilar) {
  // Every function should rank a near-duplicate above unrelated text.
  // Identity is the degenerate exception: both pairs score 0 because the
  // strings are not exactly equal.
  const double near = Sim(function(), "sony cybershot dsc w55 camera",
                          "sony cyber-shot dsc-w55 camera");
  const double far = Sim(function(), "sony cybershot dsc w55 camera",
                         "leather office chair brown");
  if (function().name() == "Identity") {
    EXPECT_GE(near, far);
  } else {
    EXPECT_GT(near, far) << function().name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFunctions, SimilarityPropertyTest,
    ::testing::Range(0, kNumSimilarityFunctions),
    [](const ::testing::TestParamInfo<int>& info) {
      return std::string(
          AllSimilarityFunctions()[static_cast<size_t>(info.param)]->name());
    });

// ---- Specific function values ----

TEST(EditBasedTest, LevenshteinDistanceValues) {
  using internal_edit::LevenshteinDistance;
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0);
}

TEST(EditBasedTest, LevenshteinSimilarityNormalized) {
  LevenshteinSimilarity f;
  EXPECT_NEAR(Sim(f, "kitten", "sitting"), 1.0 - 3.0 / 7.0, 1e-9);
}

TEST(EditBasedTest, DamerauCountsTranspositionAsOne) {
  DamerauLevenshteinSimilarity damerau;
  LevenshteinSimilarity levenshtein;
  // "abcd" -> "abdc" is 1 transposition (Damerau) but 2 edits (Levenshtein).
  EXPECT_NEAR(Sim(damerau, "abcd", "abdc"), 0.75, 1e-9);
  EXPECT_NEAR(Sim(levenshtein, "abcd", "abdc"), 0.5, 1e-9);
}

TEST(EditBasedTest, JaroKnownValue) {
  using internal_edit::JaroRaw;
  EXPECT_NEAR(JaroRaw("martha", "marhta"), 0.9444444, 1e-6);
  EXPECT_NEAR(JaroRaw("dixon", "dicksonx"), 0.7666667, 1e-6);
  EXPECT_EQ(JaroRaw("abc", "xyz"), 0.0);
}

TEST(EditBasedTest, JaroWinklerBoostsSharedPrefix) {
  using internal_edit::JaroRaw;
  using internal_edit::JaroWinklerRaw;
  EXPECT_GT(JaroWinklerRaw("martha", "marhta"), JaroRaw("martha", "marhta"));
  EXPECT_NEAR(JaroWinklerRaw("martha", "marhta"), 0.9611111, 1e-6);
}

TEST(EditBasedTest, SmithWatermanFindsLocalMatch) {
  SmithWatermanSimilarity f;
  // "w55" embedded in a longer string aligns perfectly.
  EXPECT_NEAR(Sim(f, "w55", "camera w55 zoom"), 1.0, 1e-9);
}

TEST(EditBasedTest, LongestCommonSubstring) {
  LongestCommonSubstringSimilarity f;
  // "abcdef" vs "zzabcq": longest common substring "abc" (3) / max len 6.
  EXPECT_NEAR(Sim(f, "abcdef", "zzabcq"), 0.5, 1e-9);
}

TEST(EditBasedTest, LongestCommonSubsequence) {
  LongestCommonSubsequenceSimilarity f;
  // lcs("abcde", "ace") = 3 -> 2*3/(5+3).
  EXPECT_NEAR(Sim(f, "abcde", "ace"), 0.75, 1e-9);
}

TEST(EditBasedTest, NeedlemanWunschPerfectAndDisjoint) {
  NeedlemanWunschSimilarity f;
  EXPECT_NEAR(Sim(f, "abcd", "abcd"), 1.0, 1e-9);
  EXPECT_LT(Sim(f, "aaaa", "zzzz"), 0.3);
}

TEST(TokenBasedTest, JaccardValues) {
  JaccardTokenSimilarity f;
  // {a, b, c} vs {b, c, d}: 2 / 4.
  EXPECT_NEAR(Sim(f, "a b c", "b c d"), 0.5, 1e-9);
  EXPECT_NEAR(Sim(f, "a b", "a b"), 1.0, 1e-9);
  EXPECT_EQ(Sim(f, "a b", "c d"), 0.0);
}

TEST(TokenBasedTest, DiceValues) {
  DiceTokenSimilarity f;
  EXPECT_NEAR(Sim(f, "a b c", "b c d"), 2.0 * 2 / 6, 1e-9);
}

TEST(TokenBasedTest, OverlapCoefficientUsesMinSize) {
  OverlapCoefficientSimilarity f;
  // {a} subset of {a, b, c, d} -> overlap 1.0.
  EXPECT_NEAR(Sim(f, "a", "a b c d"), 1.0, 1e-9);
}

TEST(TokenBasedTest, MatchingCoefficientUsesMaxSize) {
  MatchingCoefficientSimilarity f;
  EXPECT_NEAR(Sim(f, "a", "a b c d"), 0.25, 1e-9);
}

TEST(TokenBasedTest, CosineTokensValue) {
  CosineTokenSimilarity f;
  // |∩|=1, sqrt(1*4) = 2 -> 0.5.
  EXPECT_NEAR(Sim(f, "a", "a b c d"), 0.5, 1e-9);
}

TEST(TokenBasedTest, BlockDistanceValue) {
  BlockDistanceSimilarity f;
  // counts: (a,b) vs (a,c): L1 = 2, totals = 4 -> 1 - 0.5.
  EXPECT_NEAR(Sim(f, "a b", "a c"), 0.5, 1e-9);
}

TEST(TokenBasedTest, MongeElkanForgivesTokenTypos) {
  MongeElkanSimilarity f;
  const double sim = Sim(f, "sony camera", "sonny camera");
  EXPECT_GT(sim, 0.9);
}

TEST(QGramBasedTest, QGramDisjoint) {
  QGramSimilarity f;
  EXPECT_LT(Sim(f, "aaaa", "zzzz"), 0.01);
}

TEST(QGramBasedTest, SimonWhiteSharedBigrams) {
  SimonWhiteSimilarity f;
  const double sim = Sim(f, "healed", "sealed");
  EXPECT_GT(sim, 0.7);  // Classic Simon White example pair.
}

TEST(QGramBasedTest, CosineQGramMatchesManualValue) {
  CosineQGramSimilarity f;
  const double sim = Sim(f, "ab", "ab");
  EXPECT_NEAR(sim, 1.0, 1e-9);
}

TEST(QGramBasedTest, JaccardQGramAvailableOutsideRegistry) {
  // JaccardQGrams is provided as an extra (22nd) function but deliberately
  // not registered, keeping the registry at the paper's 21.
  JaccardQGramSimilarity f;
  EXPECT_NEAR(Sim(f, "abc", "abc"), 1.0, 1e-9);
  EXPECT_EQ(SimilarityIndexByName("JaccardQGrams"), -1);
}

TEST(EditBasedTest, LongInputsAreCappedNotCrashing) {
  const std::string long_a(5000, 'a');
  const std::string long_b(5000, 'b');
  for (const SimilarityFunction* f : AllSimilarityFunctions()) {
    const double sim = f->Similarity(P(long_a), P(long_b));
    EXPECT_GE(sim, 0.0);
    EXPECT_LE(sim, 1.0);
  }
}

}  // namespace
}  // namespace alem
