#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/string_util.h"

namespace alem {
namespace {

// ---- Rng ----

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(13), 13u);
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBelow(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliRateApproximatelyCorrect) {
  Rng rng(5);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  const double rate = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.NextGaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.05);
}

TEST(RngTest, SampleWithoutReplacementUnique) {
  Rng rng(13);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const size_t v : sample) EXPECT_LT(v, 50u);
}

TEST(RngTest, SampleWithoutReplacementFullPermutation) {
  Rng rng(13);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, SampleWithReplacementBounds) {
  Rng rng(17);
  const std::vector<size_t> sample = rng.SampleWithReplacement(5, 200);
  EXPECT_EQ(sample.size(), 200u);
  for (const size_t v : sample) EXPECT_LT(v, 5u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.Fork();
  // Child stream should not mirror the parent stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

// ---- RunningStats ----

TEST(RunningStatsTest, MeanAndStddev) {
  RunningStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add(v);
  }
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
  EXPECT_EQ(stats.count(), 8u);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
}

// ---- string_util ----

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("AbC-12 Z"), "abc-12 z");
}

TEST(StringUtilTest, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  ab c \t\n"), "ab c");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  const std::vector<std::string> parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 1), "2.0");
}

// ---- CSV ----

TEST(CsvTest, ParsesSimpleRows) {
  const auto rows = ParseCsv("a,b,c\n1,2,3\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(CsvTest, HandlesQuotedFields) {
  const auto rows = ParseCsv("\"a,b\",\"he said \"\"hi\"\"\",\"line\nbreak\"\n");
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 3u);
  EXPECT_EQ(rows[0][0], "a,b");
  EXPECT_EQ(rows[0][1], "he said \"hi\"");
  EXPECT_EQ(rows[0][2], "line\nbreak");
}

TEST(CsvTest, HandlesCrLf) {
  const auto rows = ParseCsv("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "d");
}

TEST(CsvTest, LastRowWithoutNewline) {
  const auto rows = ParseCsv("a,b\nc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][0], "c");
}

TEST(CsvTest, EmptyInput) { EXPECT_TRUE(ParseCsv("").empty()); }

TEST(CsvTest, WriteReadRoundTrip) {
  const std::vector<std::vector<std::string>> rows = {
      {"name", "desc"},
      {"widget, deluxe", "says \"best\"\nreally"},
      {"", "trailing"},
  };
  const auto parsed = ParseCsv(WriteCsv(rows));
  EXPECT_EQ(parsed, rows);
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/alem_csv_test.csv";
  const std::vector<std::vector<std::string>> rows = {{"a", "b"}, {"1", "2"}};
  ASSERT_TRUE(WriteCsvFile(path, rows));
  std::vector<std::vector<std::string>> read_back;
  ASSERT_TRUE(ReadCsvFile(path, &read_back));
  EXPECT_EQ(read_back, rows);
}

TEST(CsvTest, ReadMissingFileFails) {
  std::vector<std::vector<std::string>> rows;
  EXPECT_FALSE(ReadCsvFile("/nonexistent/path/file.csv", &rows));
}

}  // namespace
}  // namespace alem
