#include <gtest/gtest.h>

#include "core/harness.h"
#include "synth/profiles.h"

namespace alem {
namespace {

// Prepared once: dataset preparation is the expensive part of these tests.
const PreparedDataset& SmallAbtBuy() {
  static const PreparedDataset& data =
      *new PreparedDataset(PrepareDataset({AbtBuyProfile(), 7, 0.35}));
  return data;
}

TEST(PrepareDatasetTest, PopulatesAllFields) {
  const PreparedDataset& data = SmallAbtBuy();
  EXPECT_EQ(data.name, "Abt-Buy");
  EXPECT_GT(data.pairs.size(), 100u);
  EXPECT_EQ(data.truth.size(), data.pairs.size());
  EXPECT_EQ(data.float_features.rows(), data.pairs.size());
  EXPECT_EQ(data.boolean_features.rows(), data.pairs.size());
  EXPECT_GT(data.num_matches, 0u);
  EXPECT_GT(data.class_skew, 0.0);
  EXPECT_LT(data.class_skew, 1.0);
  EXPECT_EQ(data.float_features.dims(), data.feature_names.size());
  ASSERT_NE(data.featurizer, nullptr);
  EXPECT_EQ(data.boolean_features.dims(), data.featurizer->num_atoms());
}

TEST(RunActiveLearningTest, TreesReachHighF1) {
  RunConfig config;
  config.approach = TreesSpec(10);
  config.max_labels = 200;
  const RunResult result = RunActiveLearning(SmallAbtBuy(), config);
  EXPECT_EQ(result.approach_name, "Trees(10)");
  EXPECT_GT(result.best_f1, 0.85);
  EXPECT_GT(result.curve.size(), 2u);
  EXPECT_LE(result.labels_to_converge, 200u);
  EXPECT_GT(result.total_wait_seconds, 0.0);
}

TEST(RunActiveLearningTest, RulesUseBooleanFeatures) {
  RunConfig config;
  config.approach = RulesLfpLfnSpec();
  config.max_labels = 150;
  const RunResult result = RunActiveLearning(SmallAbtBuy(), config);
  EXPECT_EQ(result.approach_name, "Rules(LFP/LFN)");
  // Rules learn *something* on product data.
  EXPECT_GT(result.best_f1, 0.1);
}

TEST(RunActiveLearningTest, EnsembleReportsAcceptedCount) {
  RunConfig config;
  config.approach = LinearMarginEnsembleSpec();
  config.max_labels = 200;
  const RunResult result = RunActiveLearning(SmallAbtBuy(), config);
  EXPECT_EQ(result.approach_name, "Linear-Margin(Ensemble)");
  // accepted_count is recorded (possibly 0 on an easy split, usually >= 1).
  EXPECT_GE(result.ensemble_accepted, 0u);
}

TEST(RunActiveLearningTest, HoldoutRunsEvaluateOnTestSplit) {
  RunConfig config;
  config.approach = TreesSpec(5);
  config.max_labels = 150;
  config.holdout = true;
  const RunResult result = RunActiveLearning(SmallAbtBuy(), config);
  EXPECT_GT(result.best_f1, 0.5);
}

TEST(RunActiveLearningTest, DeterministicForSameRunSeed) {
  RunConfig config;
  config.approach = TreesSpec(5);
  config.max_labels = 120;
  config.run_seed = 17;
  const RunResult a = RunActiveLearning(SmallAbtBuy(), config);
  const RunResult b = RunActiveLearning(SmallAbtBuy(), config);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.curve[i].metrics.f1, b.curve[i].metrics.f1);
    EXPECT_EQ(a.curve[i].labels_used, b.curve[i].labels_used);
  }
}

TEST(RunActiveLearningTest, NoisyOracleDegradesQuality) {
  RunConfig clean_config;
  clean_config.approach = TreesSpec(10);
  clean_config.max_labels = 200;
  RunConfig noisy_config = clean_config;
  noisy_config.oracle_noise = 0.4;
  const RunResult clean = RunActiveLearning(SmallAbtBuy(), clean_config);
  const RunResult noisy = RunActiveLearning(SmallAbtBuy(), noisy_config);
  EXPECT_GT(clean.best_f1, noisy.best_f1);
}

TEST(RunActiveLearningTest, TargetF1StopsEarly) {
  RunConfig config;
  config.approach = TreesSpec(10);
  config.max_labels = 300;
  config.target_f1 = 0.8;
  const RunResult result = RunActiveLearning(SmallAbtBuy(), config);
  EXPECT_GE(result.curve.back().metrics.f1, 0.8);
  EXPECT_LT(result.curve.back().labels_used, 300u);
}

TEST(AverageCurvesTest, PadsShorterCurvesWithFinalValue) {
  IterationStats a1, a2, b1;
  a1.labels_used = 30;
  a1.metrics.f1 = 0.5;
  a2.labels_used = 40;
  a2.metrics.f1 = 0.7;
  b1.labels_used = 30;
  b1.metrics.f1 = 0.9;
  const std::vector<std::vector<IterationStats>> curves = {{a1, a2}, {b1}};
  const std::vector<AveragedPoint> points = AverageCurves(curves);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].mean_f1, 0.7);   // (0.5 + 0.9) / 2.
  EXPECT_DOUBLE_EQ(points[1].mean_f1, 0.8);   // (0.7 + padded 0.9) / 2.
  EXPECT_EQ(points[1].labels, 40u);
  EXPECT_GT(points[0].stddev_f1, 0.0);
}

TEST(AverageCurvesTest, EmptyInput) {
  EXPECT_TRUE(AverageCurves({}).empty());
}

TEST(ApproachSpecTest, DisplayNamesMatchPaperLegends) {
  EXPECT_EQ(TreesSpec(20).DisplayName(), "Trees(20)");
  EXPECT_EQ(LinearMarginSpec(0).DisplayName(), "Linear-Margin");
  EXPECT_EQ(LinearMarginSpec(1).DisplayName(), "Linear-Margin(1Dim)");
  EXPECT_EQ(LinearMarginEnsembleSpec().DisplayName(),
            "Linear-Margin(Ensemble)");
  EXPECT_EQ(LinearQbcSpec(20).DisplayName(), "Linear-QBC(20)");
  EXPECT_EQ(NeuralMarginSpec().DisplayName(), "NN-Margin");
  EXPECT_EQ(NeuralQbcSpec(2).DisplayName(), "NN-QBC(2)");
  EXPECT_EQ(RulesLfpLfnSpec().DisplayName(), "Rules(LFP/LFN)");
  EXPECT_EQ(RulesQbcSpec(5).DisplayName(), "Rules-QBC(5)");
  EXPECT_EQ(SupervisedTreesSpec(20).DisplayName(),
            "SupervisedTrees(Random-20)");
  EXPECT_EQ(DeepMatcherSpec().DisplayName(), "DeepMatcher");
}

}  // namespace
}  // namespace alem
