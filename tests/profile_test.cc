// Tests for the roofline profiling layer (src/obs/profile.h): the
// perf-unavailable fallback contract, work-counter exactness against
// closed forms, thread-count attribution parity, and the RunReport
// "profile" section round trip.

#include "obs/profile.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "core/learner.h"
#include "ml/linear_svm.h"
#include "obs/report.h"
#include "parallel/pool.h"
#include "sim/similarity.h"
#include "text/profile.h"
#include "util/rng.h"

namespace alem {
namespace obs {
namespace {

// Hardware-counter availability is resolved once per process, so force the
// documented fallback path before anything can touch perf_event_open: this
// whole binary certifies that profiling works end to end when the kernel
// denies (or the platform lacks) perf counters.
[[maybe_unused]] const int kForceHwUnavailable = [] {
#if !defined(_WIN32)
  setenv("ALEM_PROFILE_DISABLE_HW", "1", /*overwrite=*/1);
#endif
  return 0;
}();

class ProfileTest : public ::testing::Test {
 protected:
  void TearDown() override {
    profile::Disable();
    profile::ResetStats();
    parallel::SetNumThreads(1);
  }
};

uint64_t Items(const std::string& name) {
  return profile::GetRegion(name).items.load(std::memory_order_relaxed);
}

// ---- Enable / disable semantics ----------------------------------------

TEST_F(ProfileTest, DisabledSitesAreInertAndCostFree) {
  ASSERT_FALSE(profile::Enabled());
  EXPECT_EQ(profile::ActiveRegion("sim.batch"), nullptr);
  profile::Region& region = profile::GetRegion("sim.batch");
  {
    profile::ScopedWork scope(region);
    EXPECT_FALSE(scope.engaged());
    scope.Add(1000, 1000, 1000);  // Must be a no-op while disengaged.
  }
  EXPECT_EQ(region.spans.load(), 0u);
  EXPECT_EQ(region.items.load(), 0u);
  EXPECT_TRUE(profile::EnabledRegions().empty());
}

TEST_F(ProfileTest, EmptyAllowlistSelectsCuratedDefaults) {
  profile::Enable("");
  const std::vector<std::string> regions = profile::EnabledRegions();
  const std::vector<std::string> expected = {
      "sim.batch", "ml.batch", "selector.scoring", "harness.featurize",
      "loop.evaluate"};
  EXPECT_EQ(regions, expected);
}

TEST_F(ProfileTest, AllowlistTrimsWhitespaceAndDedupes) {
  profile::Enable(" alpha.one ,\tbeta.two , alpha.one ,, ");
  const std::vector<std::string> regions = profile::EnabledRegions();
  const std::vector<std::string> expected = {"alpha.one", "beta.two"};
  EXPECT_EQ(regions, expected);
  EXPECT_NE(profile::ActiveRegion("alpha.one"), nullptr);
  EXPECT_EQ(profile::ActiveRegion("sim.batch"), nullptr);
}

TEST_F(ProfileTest, EnableResetsPriorStats) {
  profile::Enable("alpha.one");
  profile::AddWork(profile::GetRegion("alpha.one"), 42);
  EXPECT_EQ(Items("alpha.one"), 42u);
  profile::Enable("alpha.one");  // Re-enable must start from zero.
  EXPECT_EQ(Items("alpha.one"), 0u);
}

// ---- Hardware fallback contract ----------------------------------------

TEST_F(ProfileTest, HwForcedUnavailableStillProfilesWork) {
  profile::Enable("alpha.one");
  const profile::HwReading reading = profile::ReadHw();
  EXPECT_FALSE(reading.valid);
  EXPECT_EQ(profile::HwAvailability(), "unavailable");

  profile::Region& region = profile::GetRegion("alpha.one");
  {
    profile::ScopedWork scope(region);
    ASSERT_TRUE(scope.engaged());
    scope.Add(7, 100, 10);
  }
  const profile::Snapshot snapshot = profile::TakeSnapshot();
  EXPECT_EQ(snapshot.hw, "unavailable");
  ASSERT_EQ(snapshot.regions.size(), 1u);
  const profile::RegionSnapshot& alpha = snapshot.regions[0];
  EXPECT_EQ(alpha.spans, 1u);
  EXPECT_GT(alpha.seconds, 0.0);
  EXPECT_EQ(alpha.items, 7u);
  EXPECT_EQ(alpha.bytes, 100u);
  EXPECT_EQ(alpha.flops, 10u);
  // No perf group means no hardware counts — zeros, never garbage.
  for (int e = 0; e < profile::kNumHwEvents; ++e) {
    EXPECT_EQ(alpha.hw[e], 0u) << "hw event " << e;
  }
}

TEST_F(ProfileTest, SnapshotListsNeverEnteredRegionsWithZeros) {
  profile::Enable("sim.batch,never.entered");
  const profile::Snapshot snapshot = profile::TakeSnapshot();
  ASSERT_EQ(snapshot.regions.size(), 2u);
  EXPECT_EQ(snapshot.regions[1].name, "never.entered");
  EXPECT_EQ(snapshot.regions[1].spans, 0u);
  EXPECT_EQ(snapshot.regions[1].items, 0u);
  EXPECT_EQ(snapshot.regions[1].seconds, 0.0);
}

// ---- Work-counter exactness --------------------------------------------

struct SimPool {
  std::vector<AttributeProfile> storage;
  std::vector<const AttributeProfile*> left;
  std::vector<const AttributeProfile*> right;
  uint64_t text_bytes = 0;
};

SimPool MakeSimPool(size_t pairs) {
  SimPool pool;
  pool.storage.push_back(AttributeProfile::Build("sony cybershot camera"));
  pool.storage.push_back(AttributeProfile::Build("sony cyber-shot dsc"));
  pool.storage.push_back(AttributeProfile::Build("canon powershot black"));
  for (size_t i = 0; i < pairs; ++i) {
    const AttributeProfile& a = pool.storage[i % pool.storage.size()];
    const AttributeProfile& b = pool.storage[(i + 1) % pool.storage.size()];
    pool.left.push_back(&a);
    pool.right.push_back(&b);
    pool.text_bytes += a.text.size() + b.text.size();
  }
  return pool;
}

TEST_F(ProfileTest, SimBatchCountsEveryPairExactly) {
  profile::Enable("sim.batch");
  const SimPool pool = MakeSimPool(137);
  const SimilarityFunction* jaro =
      AllSimilarityFunctions()[static_cast<size_t>(
          SimilarityIndexByName("Jaro"))];
  std::vector<float> out(pool.left.size());
  jaro->EvaluateBatch(pool.left, pool.right, out.data());
  profile::Region& region = profile::GetRegion("sim.batch");
  EXPECT_EQ(region.items.load(), 137u);
  EXPECT_EQ(region.bytes.load(), pool.text_bytes);
  EXPECT_EQ(region.spans.load(), 1u);
  jaro->EvaluateBatch(pool.left, pool.right, out.data());
  EXPECT_EQ(region.items.load(), 274u);  // Accumulates across batches.
}

void MakeBlobs(size_t n, size_t dims, uint64_t seed, FeatureMatrix* features,
               std::vector<int>* labels) {
  Rng rng(seed);
  *features = FeatureMatrix(n, dims);
  labels->resize(n);
  for (size_t i = 0; i < n; ++i) {
    const bool positive = i % 2 == 0;
    const double center = positive ? 0.8 : 0.2;
    for (size_t d = 0; d < dims; ++d) {
      features->Set(i, d,
                    static_cast<float>(center + rng.NextGaussian() * 0.15));
    }
    (*labels)[i] = positive ? 1 : 0;
  }
}

TEST_F(ProfileTest, SvmMarginFlopsMatchClosedForm) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeBlobs(200, 6, 11, &features, &labels);
  LinearSvm svm(LinearSvmConfig{});
  svm.Fit(features, labels);

  profile::Enable("ml.batch");
  std::vector<size_t> rows(features.rows());
  std::iota(rows.begin(), rows.end(), 0u);
  std::vector<double> margins(rows.size());
  svm.MarginBatch(features, rows, margins.data());

  // The GEMV margin sweep is 2 FLOPs (multiply + accumulate) per weight
  // per row — the closed form the report's GFLOP/s column is derived from.
  profile::Region& region = profile::GetRegion("ml.batch");
  EXPECT_EQ(region.flops.load(),
            static_cast<uint64_t>(rows.size()) * 2 * svm.weights().size());
}

TEST_F(ProfileTest, LearnerPredictBatchItemsMatchPredictCalls) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeBlobs(300, 6, 12, &features, &labels);
  SvmLearner learner;
  learner.Fit(features, labels);

  profile::Enable("ml.batch");
  std::vector<size_t> rows(features.rows());
  std::iota(rows.begin(), rows.end(), 0u);
  std::vector<int> predictions(rows.size());
  learner.PredictBatch(features, rows, predictions.data());
  learner.PredictBatch(features, rows, predictions.data());
  // The "ml.batch items == ml.predict_calls counter" invariant the report
  // gate asserts: items are added once per predicted row, only in
  // Learner::PredictBatch.
  EXPECT_EQ(Items("ml.batch"), 2 * static_cast<uint64_t>(rows.size()));
}

// ---- Thread-count attribution parity -----------------------------------

TEST_F(ProfileTest, WorkAttributionIsThreadCountInvariant) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeBlobs(600, 6, 13, &features, &labels);
  SvmLearner learner;
  learner.Fit(features, labels);
  std::vector<size_t> rows(features.rows());
  std::iota(rows.begin(), rows.end(), 0u);
  std::vector<int> predictions(rows.size());
  const SimPool pool = MakeSimPool(555);
  const SimilarityFunction* jaro =
      AllSimilarityFunctions()[static_cast<size_t>(
          SimilarityIndexByName("Jaro"))];
  std::vector<float> sims(pool.left.size());

  uint64_t per_thread_items[2][2] = {};  // [run][ml, sim]
  uint64_t per_thread_spans[2] = {};
  const int thread_counts[2] = {1, 4};
  for (int run = 0; run < 2; ++run) {
    parallel::SetNumThreads(thread_counts[run]);
    profile::Enable("ml.batch,sim.batch");  // Resets stats.
    learner.PredictBatch(features, rows, predictions.data());
    jaro->EvaluateBatch(pool.left, pool.right, sims.data());
    per_thread_items[run][0] = Items("ml.batch");
    per_thread_items[run][1] = Items("sim.batch");
    per_thread_spans[run] = profile::GetRegion("ml.batch").spans.load();
  }
  // Work is counted at the batch call site, never per pool chunk, so the
  // totals are identical whether the fan-out ran serial or on 4 workers.
  EXPECT_EQ(per_thread_items[0][0], per_thread_items[1][0]);
  EXPECT_EQ(per_thread_items[0][1], per_thread_items[1][1]);
  EXPECT_EQ(per_thread_items[0][0], static_cast<uint64_t>(rows.size()));
  EXPECT_EQ(per_thread_items[0][1], 555u);
  EXPECT_EQ(per_thread_spans[0], per_thread_spans[1]);
}

// ---- RunReport "profile" section ---------------------------------------

RunReport MakeBenchReportWithProfile() {
  RunReport report;
  report.kind = "bench";
  report.tool = "profile_test";
  report.build = "test-build";
  report.counters = {{"sim.calls", 200781}};
  report.wall_seconds = 1.5;
  report.peak_rss_bytes = 1 << 20;
  report.has_profile = true;
  report.profile.hw = "available";
  ProfileRegionStats region;
  region.name = "sim.batch";
  region.spans = 63;
  region.seconds = 0.1 + 0.2;  // 0.30000000000000004: needs %.17g.
  region.items = 200781;
  region.bytes = 12345678;
  region.flops = 0;
  region.cycles = 987654321;
  region.instructions = 1234567890;
  region.cache_refs = 5000;
  region.cache_misses = 250;
  region.branch_misses = 42;
  region.items_per_sec = 200781.0 / region.seconds;
  region.bytes_per_sec = 12345678.0 / region.seconds;
  region.flops_per_sec = 0.0;
  region.ipc = 1234567890.0 / 987654321.0;
  report.profile.regions.push_back(region);
  ProfileRegionStats idle;
  idle.name = "never.entered";
  report.profile.regions.push_back(idle);
  return report;
}

TEST_F(ProfileTest, ReportProfileSectionRoundTripsBitwise) {
  const RunReport report = MakeBenchReportWithProfile();
  const std::string json = ReportToJson(report);
  RunReport parsed;
  std::string error;
  ASSERT_TRUE(ParseReportJson(json, &parsed, &error)) << error;
  ASSERT_TRUE(parsed.has_profile);
  EXPECT_EQ(parsed.profile.hw, "available");
  ASSERT_EQ(parsed.profile.regions.size(), 2u);
  const ProfileRegionStats& a = report.profile.regions[0];
  const ProfileRegionStats& b = parsed.profile.regions[0];
  EXPECT_EQ(b.name, a.name);
  EXPECT_EQ(b.spans, a.spans);
  EXPECT_EQ(b.seconds, a.seconds);  // Bitwise: %.17g round trip.
  EXPECT_EQ(b.items, a.items);
  EXPECT_EQ(b.bytes, a.bytes);
  EXPECT_EQ(b.flops, a.flops);
  EXPECT_EQ(b.cycles, a.cycles);
  EXPECT_EQ(b.instructions, a.instructions);
  EXPECT_EQ(b.cache_refs, a.cache_refs);
  EXPECT_EQ(b.cache_misses, a.cache_misses);
  EXPECT_EQ(b.branch_misses, a.branch_misses);
  EXPECT_EQ(b.items_per_sec, a.items_per_sec);
  EXPECT_EQ(b.bytes_per_sec, a.bytes_per_sec);
  EXPECT_EQ(b.flops_per_sec, a.flops_per_sec);
  EXPECT_EQ(b.ipc, a.ipc);
  EXPECT_EQ(parsed.profile.regions[1].name, "never.entered");
}

TEST_F(ProfileTest, ReportsWithoutProfileSectionStayLoadable) {
  RunReport report = MakeBenchReportWithProfile();
  report.has_profile = false;
  report.profile = ProfileStats();
  const std::string json = ReportToJson(report);
  EXPECT_EQ(json.find("\"profile\""), std::string::npos);
  RunReport parsed;
  std::string error;
  ASSERT_TRUE(ParseReportJson(json, &parsed, &error)) << error;
  EXPECT_FALSE(parsed.has_profile);
  EXPECT_TRUE(parsed.profile.regions.empty());
}

TEST_F(ProfileTest, ThroughputGateFailsOnRegressionOnly) {
  const RunReport baseline = MakeBenchReportWithProfile();
  RunReport candidate = MakeBenchReportWithProfile();
  ReportCheckOptions options;
  options.throughput_tol = 0.25;
  EXPECT_TRUE(CheckReports(baseline, candidate, options).empty());

  candidate.profile.regions[0].items_per_sec =
      baseline.profile.regions[0].items_per_sec * 0.5;  // Beyond 25% tol.
  const std::vector<std::string> failures =
      CheckReports(baseline, candidate, options);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_NE(failures[0].find("sim.batch"), std::string::npos);

  // Throughput improvements never fail.
  candidate.profile.regions[0].items_per_sec =
      baseline.profile.regions[0].items_per_sec * 3.0;
  EXPECT_TRUE(CheckReports(baseline, candidate, options).empty());
}

TEST_F(ProfileTest, ThroughputGateSkipsWhenEitherReportLacksProfile) {
  const RunReport baseline = MakeBenchReportWithProfile();
  RunReport candidate = MakeBenchReportWithProfile();
  candidate.has_profile = false;
  candidate.profile = ProfileStats();
  candidate.profile.regions.clear();
  ReportCheckOptions options;
  options.throughput_tol = 0.0;  // Strictest setting still must skip.
  EXPECT_TRUE(CheckReports(baseline, candidate, options).empty());
  EXPECT_TRUE(CheckReports(candidate, baseline, options).empty());
}

}  // namespace
}  // namespace obs
}  // namespace alem
