#include <gtest/gtest.h>

#include <algorithm>

#include "core/active_loop.h"
#include "core/evaluator.h"
#include "core/learner.h"
#include "core/oracle.h"
#include "core/pool.h"
#include "core/selector.h"
#include "obs/obs.h"
#include "util/rng.h"

namespace alem {
namespace {

// A 2-D, mostly separable problem with 10% class skew (like EM pairs).
struct Problem {
  FeatureMatrix features;
  std::vector<int> truth;
};

Problem MakeProblem(size_t n, uint64_t seed) {
  Rng rng(seed);
  Problem problem;
  problem.features = FeatureMatrix(n, 2);
  problem.truth.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const bool positive = i % 10 == 0;
    const double center = positive ? 0.75 : 0.3;
    problem.features.Set(
        i, 0, static_cast<float>(center + rng.NextGaussian() * 0.07));
    problem.features.Set(
        i, 1, static_cast<float>(center + rng.NextGaussian() * 0.07));
    problem.truth[i] = positive ? 1 : 0;
  }
  return problem;
}

TEST(SeedPoolTest, LabelsBothClasses) {
  const Problem problem = MakeProblem(500, 1);
  ActivePool pool(problem.features);
  PerfectOracle oracle(problem.truth);
  const SeedResult seeded = SeedPool(pool, oracle, 30, 3);
  EXPECT_GE(seeded.labeled, 30u);
  EXPECT_TRUE(seeded.has_both_classes);
  const std::vector<int> labels = pool.ActiveLabeledLabels();
  EXPECT_TRUE(std::count(labels.begin(), labels.end(), 1) > 0);
  EXPECT_TRUE(std::count(labels.begin(), labels.end(), 0) > 0);
}

TEST(ActiveLearningLoopTest, F1ImprovesAndLabelsGrow) {
  const Problem problem = MakeProblem(800, 2);
  ActivePool pool(problem.features);
  PerfectOracle oracle(problem.truth);
  ProgressiveEvaluator evaluator(problem.truth);
  SvmLearner learner{LinearSvmConfig{}};
  MarginSelector selector;
  ActiveLearningConfig config;
  config.max_labels = 150;
  ActiveLearningLoop loop(learner, selector, oracle, evaluator, config);
  const std::vector<IterationStats> curve = loop.Run(pool);

  ASSERT_GE(curve.size(), 2u);
  // Labels grow by the batch size each iteration.
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_EQ(curve[i].labels_used, curve[i - 1].labels_used + 10);
  }
  // Final F1 should be strong on this separable problem.
  EXPECT_GT(curve.back().metrics.f1, 0.9);
  EXPECT_LE(curve.back().labels_used, 150u);
}

TEST(ActiveLearningLoopTest, StopsAtMaxLabels) {
  const Problem problem = MakeProblem(400, 3);
  ActivePool pool(problem.features);
  PerfectOracle oracle(problem.truth);
  ProgressiveEvaluator evaluator(problem.truth);
  SvmLearner learner{LinearSvmConfig{}};
  MarginSelector selector;
  ActiveLearningConfig config;
  config.max_labels = 60;
  ActiveLearningLoop loop(learner, selector, oracle, evaluator, config);
  loop.Run(pool);
  EXPECT_LE(pool.num_labeled(), 60u);
  EXPECT_LE(oracle.queries(), 60u);
}

TEST(ActiveLearningLoopTest, StopsAtTargetF1) {
  const Problem problem = MakeProblem(600, 4);
  ActivePool pool(problem.features);
  PerfectOracle oracle(problem.truth);
  ProgressiveEvaluator evaluator(problem.truth);
  RandomForestConfig forest_config;
  forest_config.num_trees = 10;
  ForestLearner learner(forest_config);
  ForestQbcSelector selector(5);
  ActiveLearningConfig config;
  config.max_labels = 500;
  config.target_f1 = 0.95;
  ActiveLearningLoop loop(learner, selector, oracle, evaluator, config);
  const auto curve = loop.Run(pool);
  EXPECT_GE(curve.back().metrics.f1, 0.95);
  EXPECT_LT(pool.num_labeled(), 500u);  // Stopped well before the budget.
}

TEST(ActiveLearningLoopTest, RecordsLatencyBreakdown) {
  const Problem problem = MakeProblem(400, 5);
  ActivePool pool(problem.features);
  PerfectOracle oracle(problem.truth);
  ProgressiveEvaluator evaluator(problem.truth);
  SvmLearner learner{LinearSvmConfig{}};
  QbcSelector selector(3, 7);
  ActiveLearningConfig config;
  config.max_labels = 70;
  ActiveLearningLoop loop(learner, selector, oracle, evaluator, config);
  const auto curve = loop.Run(pool);
  for (size_t i = 0; i + 1 < curve.size(); ++i) {
    EXPECT_GT(curve[i].train_seconds, 0.0);
    EXPECT_GT(curve[i].committee_seconds, 0.0);  // QBC builds committees.
    EXPECT_GE(curve[i].wait_seconds,
              curve[i].train_seconds + curve[i].committee_seconds);
  }
}

// wait_seconds must equal the sum of the measured train + select phase
// spans (single measurement, no separately restarted wall clock), so the
// trace and the learning curve tell the same latency story.
TEST(ActiveLearningLoopTest, WaitSecondsIsSumOfPhaseSpans) {
  obs::TraceRecorder::Global().Clear();
  obs::SetTracingEnabled(true);

  const Problem problem = MakeProblem(400, 8);
  ActivePool pool(problem.features);
  PerfectOracle oracle(problem.truth);
  ProgressiveEvaluator evaluator(problem.truth);
  SvmLearner learner{LinearSvmConfig{}};
  QbcSelector selector(3, 7);
  ActiveLearningConfig config;
  config.max_labels = 70;
  ActiveLearningLoop loop(learner, selector, oracle, evaluator, config);
  const auto curve = loop.Run(pool);

  obs::SetTracingEnabled(false);
  const std::vector<obs::SpanRecord> spans =
      obs::TraceRecorder::Global().Snapshot();
  obs::TraceRecorder::Global().Clear();

  // Spans close in iteration order on one thread, so the i-th train/select
  // span belongs to curve[i].
  std::vector<double> train_seconds;
  std::vector<double> select_seconds;
  size_t iteration_spans = 0;
  for (const obs::SpanRecord& span : spans) {
    const double seconds = static_cast<double>(span.duration_ns) / 1e9;
    if (span.name == "loop.train") train_seconds.push_back(seconds);
    if (span.name == "loop.select") select_seconds.push_back(seconds);
    if (span.name == "loop.iteration") ++iteration_spans;
  }
  ASSERT_EQ(train_seconds.size(), curve.size());
  ASSERT_EQ(select_seconds.size(), curve.size());
  EXPECT_EQ(iteration_spans, curve.size());
  for (size_t i = 0; i < curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(curve[i].wait_seconds,
                     train_seconds[i] + select_seconds[i])
        << "iteration " << i;
    EXPECT_DOUBLE_EQ(curve[i].train_seconds, train_seconds[i]);
    EXPECT_DOUBLE_EQ(curve[i].select_seconds, select_seconds[i]);
  }
}

TEST(ActiveLearningLoopTest, CollectsInterpretabilityForForests) {
  const Problem problem = MakeProblem(400, 6);
  ActivePool pool(problem.features);
  PerfectOracle oracle(problem.truth);
  ProgressiveEvaluator evaluator(problem.truth);
  RandomForestConfig forest_config;
  forest_config.num_trees = 5;
  ForestLearner learner(forest_config);
  ForestQbcSelector selector(2);
  ActiveLearningConfig config;
  config.max_labels = 60;
  ActiveLearningLoop loop(learner, selector, oracle, evaluator, config);
  const auto curve = loop.Run(pool);
  EXPECT_GT(curve.back().dnf_atoms, 0u);
  EXPECT_GT(curve.back().tree_depth, 0);
}

TEST(ActiveLearningLoopTest, IncompatibleSelectorAborts) {
  SvmLearner svm;
  LfpLfnSelector selector;  // Rules-only.
  PerfectOracle oracle({0, 1});
  ProgressiveEvaluator evaluator({0, 1});
  ActiveLearningConfig config;
  EXPECT_DEATH(
      { ActiveLearningLoop loop(svm, selector, oracle, evaluator, config); },
      "CompatibleWith");
}

TEST(ActiveLearningLoopTest, HoldoutEvaluationNeverSelectsTestRows) {
  const Problem problem = MakeProblem(500, 7);
  ActivePool pool(problem.features);
  // Hold out the first 100 rows.
  std::vector<size_t> test_rows(100);
  std::vector<int> test_truth(100);
  for (size_t i = 0; i < 100; ++i) {
    test_rows[i] = i;
    test_truth[i] = problem.truth[i];
    pool.Exclude(i);
  }
  HoldoutEvaluator evaluator(test_rows, test_truth);
  PerfectOracle oracle(problem.truth);
  SvmLearner learner{LinearSvmConfig{}};
  MarginSelector selector;
  ActiveLearningConfig config;
  config.max_labels = 100;
  ActiveLearningLoop loop(learner, selector, oracle, evaluator, config);
  loop.Run(pool);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(pool.IsLabeled(i)) << "test row " << i << " was labeled";
  }
}

}  // namespace
}  // namespace alem
