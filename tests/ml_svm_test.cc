#include <gtest/gtest.h>

#include <cmath>

#include "ml/linear_svm.h"
#include "ml/metrics.h"
#include "util/rng.h"

namespace alem {
namespace {

// Linearly separable 2-D data: positives around (0.8, 0.8), negatives
// around (0.2, 0.2).
void MakeBlobs(size_t n, uint64_t seed, FeatureMatrix* features,
               std::vector<int>* labels) {
  Rng rng(seed);
  *features = FeatureMatrix(n, 2);
  labels->resize(n);
  for (size_t i = 0; i < n; ++i) {
    const bool positive = i % 2 == 0;
    const double center = positive ? 0.8 : 0.2;
    features->Set(i, 0, static_cast<float>(center + rng.NextGaussian() * 0.05));
    features->Set(i, 1, static_cast<float>(center + rng.NextGaussian() * 0.05));
    (*labels)[i] = positive ? 1 : 0;
  }
}

TEST(LinearSvmTest, LearnsSeparableBlobs) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeBlobs(200, 1, &features, &labels);
  LinearSvm svm(LinearSvmConfig{});
  svm.Fit(features, labels);
  const BinaryMetrics m =
      ComputeBinaryMetrics(svm.PredictAll(features), labels);
  EXPECT_GT(m.f1, 0.98);
}

TEST(LinearSvmTest, MarginSignMatchesPrediction) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeBlobs(100, 2, &features, &labels);
  LinearSvm svm(LinearSvmConfig{});
  svm.Fit(features, labels);
  for (size_t i = 0; i < features.rows(); ++i) {
    const double margin = svm.Margin(features.Row(i));
    EXPECT_EQ(svm.Predict(features.Row(i)), margin > 0.0 ? 1 : 0);
  }
}

TEST(LinearSvmTest, PositiveClassGetsLargerMargins) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeBlobs(200, 3, &features, &labels);
  LinearSvm svm(LinearSvmConfig{});
  svm.Fit(features, labels);
  double positive_mean = 0.0, negative_mean = 0.0;
  size_t np = 0, nn = 0;
  for (size_t i = 0; i < features.rows(); ++i) {
    if (labels[i] == 1) {
      positive_mean += svm.Margin(features.Row(i));
      ++np;
    } else {
      negative_mean += svm.Margin(features.Row(i));
      ++nn;
    }
  }
  EXPECT_GT(positive_mean / np, negative_mean / nn);
}

TEST(LinearSvmTest, DeterministicForSameSeed) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeBlobs(100, 4, &features, &labels);
  LinearSvmConfig config;
  config.seed = 99;
  LinearSvm a(config), b(config);
  a.Fit(features, labels);
  b.Fit(features, labels);
  ASSERT_EQ(a.weights().size(), b.weights().size());
  for (size_t j = 0; j < a.weights().size(); ++j) {
    EXPECT_DOUBLE_EQ(a.weights()[j], b.weights()[j]);
  }
  EXPECT_DOUBLE_EQ(a.bias(), b.bias());
}

TEST(LinearSvmTest, TopWeightDimensionsOrdering) {
  // Feature 1 is perfectly discriminative, feature 0 is pure noise.
  Rng rng(5);
  FeatureMatrix features(200, 2);
  std::vector<int> labels(200);
  for (size_t i = 0; i < 200; ++i) {
    const bool positive = i % 2 == 0;
    features.Set(i, 0, static_cast<float>(rng.NextDouble()));
    features.Set(i, 1, positive ? 0.9f : 0.1f);
    labels[i] = positive ? 1 : 0;
  }
  LinearSvm svm(LinearSvmConfig{});
  svm.Fit(features, labels);
  const std::vector<size_t> top = svm.TopWeightDimensions(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], 1u);
  // Asking for more dims than exist caps at dims.
  EXPECT_EQ(svm.TopWeightDimensions(10).size(), 2u);
}

TEST(LinearSvmTest, HandlesClassSkewWithBalancing) {
  // 5% positives; balanced sampling should still learn them.
  Rng rng(6);
  FeatureMatrix features(400, 2);
  std::vector<int> labels(400);
  for (size_t i = 0; i < 400; ++i) {
    const bool positive = i % 20 == 0;
    const double center = positive ? 0.8 : 0.2;
    features.Set(i, 0, static_cast<float>(center + rng.NextGaussian() * 0.05));
    features.Set(i, 1, static_cast<float>(center + rng.NextGaussian() * 0.05));
    labels[i] = positive ? 1 : 0;
  }
  LinearSvm svm(LinearSvmConfig{});
  svm.Fit(features, labels);
  const BinaryMetrics m =
      ComputeBinaryMetrics(svm.PredictAll(features), labels);
  EXPECT_GT(m.recall, 0.9);
  EXPECT_GT(m.precision, 0.9);
}

TEST(LinearSvmTest, UntrainedReportsNotTrained) {
  LinearSvm svm;
  EXPECT_FALSE(svm.trained());
}

}  // namespace
}  // namespace alem
