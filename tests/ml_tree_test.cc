#include <gtest/gtest.h>

#include <cmath>

#include "ml/decision_tree.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "util/rng.h"

namespace alem {
namespace {

void MakeXor(size_t n, uint64_t seed, FeatureMatrix* features,
             std::vector<int>* labels) {
  Rng rng(seed);
  *features = FeatureMatrix(n, 2);
  labels->resize(n);
  for (size_t i = 0; i < n; ++i) {
    const bool a = rng.NextBernoulli(0.5);
    const bool b = rng.NextBernoulli(0.5);
    features->Set(i, 0,
                  static_cast<float>((a ? 0.8 : 0.2) + rng.NextGaussian() * 0.05));
    features->Set(i, 1,
                  static_cast<float>((b ? 0.8 : 0.2) + rng.NextGaussian() * 0.05));
    (*labels)[i] = (a != b) ? 1 : 0;
  }
}

// Evaluates whether a DNF clause list matches a feature vector.
bool DnfMatches(const std::vector<TreeDnfClause>& clauses, const float* x) {
  for (const TreeDnfClause& clause : clauses) {
    bool all = true;
    for (const TreePredicate& predicate : clause) {
      const bool satisfied = predicate.greater_equal
                                 ? x[predicate.dim] >= predicate.threshold
                                 : x[predicate.dim] < predicate.threshold;
      if (!satisfied) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

TEST(DecisionTreeTest, FitsTrainingDataPerfectlyWithAllFeatures) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeXor(300, 1, &features, &labels);
  DecisionTreeConfig config;
  config.max_features = -1;  // Consider all features at each split.
  DecisionTree tree(config);
  tree.Fit(features, labels);
  const BinaryMetrics m =
      ComputeBinaryMetrics(tree.PredictAll(features), labels);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);  // Unlimited depth memorizes the train set.
}

TEST(DecisionTreeTest, PureNodeBecomesLeaf) {
  FeatureMatrix features(10, 2);
  std::vector<int> labels(10, 1);  // All positive.
  DecisionTree tree;
  tree.Fit(features, labels);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_EQ(tree.depth(), 1);
  EXPECT_EQ(tree.Predict(features.Row(0)), 1);
}

TEST(DecisionTreeTest, MaxDepthRespected) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeXor(300, 2, &features, &labels);
  DecisionTreeConfig config;
  config.max_depth = 3;
  config.max_features = -1;
  DecisionTree tree(config);
  tree.Fit(features, labels);
  EXPECT_LE(tree.depth(), 3);
}

// Property: the DNF extracted from a tree is semantically equivalent to the
// tree's positive predictions (the basis of the Fig. 18 interpretability
// comparison).
TEST(DecisionTreeTest, DnfEquivalentToTreePredictions) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeXor(400, 3, &features, &labels);
  DecisionTreeConfig config;
  config.max_features = -1;
  DecisionTree tree(config);
  tree.Fit(features, labels);
  const std::vector<TreeDnfClause> clauses = tree.ToDnfClauses();
  for (size_t i = 0; i < features.rows(); ++i) {
    EXPECT_EQ(tree.Predict(features.Row(i)) == 1,
              DnfMatches(clauses, features.Row(i)))
        << "row " << i;
  }
}

TEST(DecisionTreeTest, NumDnfAtomsCountsWithRepetition) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeXor(200, 4, &features, &labels);
  DecisionTreeConfig config;
  config.max_features = -1;
  DecisionTree tree(config);
  tree.Fit(features, labels);
  size_t atoms = 0;
  for (const TreeDnfClause& clause : tree.ToDnfClauses()) {
    atoms += clause.size();
  }
  EXPECT_EQ(tree.NumDnfAtoms(), atoms);
  EXPECT_GT(atoms, 0u);
}

TEST(RandomForestTest, LearnsXor) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeXor(400, 5, &features, &labels);
  RandomForestConfig config;
  config.num_trees = 10;
  RandomForest forest(config);
  forest.Fit(features, labels);
  const BinaryMetrics m =
      ComputeBinaryMetrics(forest.PredictAll(features), labels);
  EXPECT_GT(m.f1, 0.97);
}

TEST(RandomForestTest, PositiveFractionInUnitRange) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeXor(200, 6, &features, &labels);
  RandomForestConfig config;
  config.num_trees = 7;
  RandomForest forest(config);
  forest.Fit(features, labels);
  for (size_t i = 0; i < features.rows(); ++i) {
    const double p = forest.PositiveFraction(features.Row(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    // PositiveFraction must be a multiple of 1/7.
    EXPECT_NEAR(p * 7.0, std::round(p * 7.0), 1e-9);
  }
}

TEST(RandomForestTest, MajorityVoteConsistentWithFraction) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeXor(200, 7, &features, &labels);
  RandomForestConfig config;
  config.num_trees = 10;
  RandomForest forest(config);
  forest.Fit(features, labels);
  for (size_t i = 0; i < features.rows(); ++i) {
    const double p = forest.PositiveFraction(features.Row(i));
    EXPECT_EQ(forest.Predict(features.Row(i)), p >= 0.5 ? 1 : 0);
  }
}

TEST(RandomForestTest, TreesAreDiverse) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeXor(300, 8, &features, &labels);
  RandomForestConfig config;
  config.num_trees = 20;
  RandomForest forest(config);
  forest.Fit(features, labels);
  // Bootstrap + feature subsampling should produce at least one
  // non-unanimous vote over the training set.
  bool any_disagreement = false;
  for (size_t i = 0; i < features.rows() && !any_disagreement; ++i) {
    const double p = forest.PositiveFraction(features.Row(i));
    any_disagreement = p > 0.0 && p < 1.0;
  }
  EXPECT_TRUE(any_disagreement);
}

TEST(RandomForestTest, DeterministicForSameSeed) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeXor(150, 9, &features, &labels);
  RandomForestConfig config;
  config.num_trees = 5;
  config.seed = 77;
  RandomForest a(config), b(config);
  a.Fit(features, labels);
  b.Fit(features, labels);
  for (size_t i = 0; i < features.rows(); ++i) {
    EXPECT_EQ(a.PositiveFraction(features.Row(i)),
              b.PositiveFraction(features.Row(i)));
  }
}

TEST(RandomForestTest, InterpretabilityMetricsGrowWithForestSize) {
  FeatureMatrix features;
  std::vector<int> labels;
  MakeXor(300, 10, &features, &labels);
  RandomForestConfig small_config;
  small_config.num_trees = 2;
  RandomForestConfig large_config;
  large_config.num_trees = 20;
  RandomForest small_forest(small_config), large_forest(large_config);
  small_forest.Fit(features, labels);
  large_forest.Fit(features, labels);
  EXPECT_GT(large_forest.TotalDnfAtoms(), small_forest.TotalDnfAtoms());
  EXPECT_GT(large_forest.MaxDepth(), 0);
}

}  // namespace
}  // namespace alem
