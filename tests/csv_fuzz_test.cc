// Randomized round-trip property tests for the CSV layer: any table of
// random field contents (including quotes, commas, newlines, unicode bytes)
// must survive Write -> Parse exactly.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/csv.h"
#include "util/rng.h"

namespace alem {
namespace {

std::string RandomField(Rng& rng) {
  // Alphabet biased toward CSV-hostile characters.
  static constexpr char kAlphabet[] = {
      'a', 'b', 'c', ' ', ',', '"', '\n', '\r', '\t', '0', '9', '-', '.',
      '\'', ';', '|', '\\', '{', '}', static_cast<char>(0xc3),
      static_cast<char>(0xa9)};
  const size_t length = rng.NextBelow(12);
  std::string field;
  field.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    field.push_back(kAlphabet[rng.NextBelow(std::size(kAlphabet))]);
  }
  return field;
}

class CsvFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(CsvFuzzTest, RandomTableRoundTrips) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 1);
  const size_t num_rows = 1 + rng.NextBelow(8);
  const size_t num_columns = 1 + rng.NextBelow(6);

  std::vector<std::vector<std::string>> rows(num_rows);
  for (auto& row : rows) {
    row.resize(num_columns);
    for (auto& field : row) field = RandomField(rng);
  }
  // Caveat of the CSV data model itself (not our parser): a trailing row of
  // all-empty fields with arity 1 is indistinguishable from no row. Avoid
  // generating that single ambiguous case.
  if (rows.back().size() == 1 && rows.back()[0].empty()) {
    rows.back()[0] = "x";
  }

  const std::string encoded = WriteCsv(rows);
  const auto decoded = ParseCsv(encoded);
  ASSERT_EQ(decoded.size(), rows.size()) << "doc: " << encoded;
  for (size_t r = 0; r < rows.size(); ++r) {
    EXPECT_EQ(decoded[r], rows[r]) << "row " << r << " doc: " << encoded;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzTest, ::testing::Range(0, 50));

TEST(CsvFuzzTest, ParserNeverCrashesOnRandomBytes) {
  Rng rng(99);
  for (int doc = 0; doc < 200; ++doc) {
    std::string content;
    const size_t length = rng.NextBelow(200);
    for (size_t i = 0; i < length; ++i) {
      content.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    // Must not crash or hang; output shape is unspecified for garbage.
    const auto rows = ParseCsv(content);
    for (const auto& row : rows) {
      EXPECT_GE(row.size(), 1u);
    }
  }
}

}  // namespace
}  // namespace alem
