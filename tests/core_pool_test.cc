#include <gtest/gtest.h>

#include "core/pool.h"

namespace alem {
namespace {

FeatureMatrix MakeFeatures(size_t rows) {
  FeatureMatrix features(rows, 2);
  for (size_t r = 0; r < rows; ++r) {
    features.Set(r, 0, static_cast<float>(r));
  }
  return features;
}

TEST(ActivePoolTest, StartsFullyUnlabeled) {
  ActivePool pool(MakeFeatures(5));
  EXPECT_EQ(pool.size(), 5u);
  EXPECT_EQ(pool.num_labeled(), 0u);
  EXPECT_EQ(pool.unlabeled_rows().size(), 5u);
}

TEST(ActivePoolTest, AddLabelMovesRow) {
  ActivePool pool(MakeFeatures(5));
  pool.AddLabel(2, 1);
  EXPECT_TRUE(pool.IsLabeled(2));
  EXPECT_EQ(pool.LabelOf(2), 1);
  EXPECT_EQ(pool.num_labeled(), 1u);
  EXPECT_EQ(pool.unlabeled_rows().size(), 4u);
  for (const size_t row : pool.unlabeled_rows()) {
    EXPECT_NE(row, 2u);
  }
}

TEST(ActivePoolTest, LabeledOrderPreserved) {
  ActivePool pool(MakeFeatures(5));
  pool.AddLabel(3, 0);
  pool.AddLabel(1, 1);
  pool.AddLabel(4, 0);
  EXPECT_EQ(pool.labeled_rows(), (std::vector<size_t>{3, 1, 4}));
  EXPECT_EQ(pool.ActiveLabeledLabels(), (std::vector<int>{0, 1, 0}));
}

TEST(ActivePoolTest, ActiveLabeledFeaturesGathersRows) {
  ActivePool pool(MakeFeatures(5));
  pool.AddLabel(3, 1);
  pool.AddLabel(0, 0);
  const FeatureMatrix gathered = pool.ActiveLabeledFeatures();
  ASSERT_EQ(gathered.rows(), 2u);
  EXPECT_FLOAT_EQ(gathered.At(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(gathered.At(1, 0), 0.0f);
}

TEST(ActivePoolTest, ExcludeRemovesFromSelectable) {
  ActivePool pool(MakeFeatures(5));
  pool.Exclude(0);
  pool.Exclude(4);
  EXPECT_EQ(pool.unlabeled_rows().size(), 3u);
  EXPECT_TRUE(pool.IsExcluded(0));
  EXPECT_FALSE(pool.IsExcluded(1));
}

TEST(ActivePoolTest, ExcludedLabeledRowLeavesTrainingSet) {
  ActivePool pool(MakeFeatures(5));
  pool.AddLabel(1, 1);
  pool.AddLabel(2, 0);
  pool.Exclude(1);  // Covered by an accepted ensemble member.
  EXPECT_EQ(pool.ActiveLabeledRows(), (std::vector<size_t>{2}));
  EXPECT_EQ(pool.ActiveLabeledLabels(), (std::vector<int>{0}));
  // Raw labeling history is unchanged.
  EXPECT_EQ(pool.labeled_rows().size(), 2u);
}

TEST(ActivePoolTest, UnlabeledCacheInvalidation) {
  ActivePool pool(MakeFeatures(4));
  EXPECT_EQ(pool.unlabeled_rows().size(), 4u);
  pool.AddLabel(0, 1);
  EXPECT_EQ(pool.unlabeled_rows().size(), 3u);
  pool.Exclude(1);
  EXPECT_EQ(pool.unlabeled_rows().size(), 2u);
}

}  // namespace
}  // namespace alem
