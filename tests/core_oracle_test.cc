#include <gtest/gtest.h>

#include "core/oracle.h"

namespace alem {
namespace {

std::vector<int> MakeTruth(size_t n) {
  std::vector<int> truth(n);
  for (size_t i = 0; i < n; ++i) truth[i] = i % 3 == 0 ? 1 : 0;
  return truth;
}

TEST(PerfectOracleTest, ReturnsGroundTruth) {
  const std::vector<int> truth = MakeTruth(30);
  PerfectOracle oracle(truth);
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(oracle.Label(i), truth[i]);
  }
  EXPECT_EQ(oracle.queries(), truth.size());
}

TEST(NoisyOracleTest, ZeroNoiseEqualsPerfect) {
  const std::vector<int> truth = MakeTruth(50);
  NoisyOracle oracle(truth, 0.0, 1);
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(oracle.Label(i), truth[i]);
  }
}

TEST(NoisyOracleTest, FlipRateApproximatelyMatchesNoise) {
  const size_t n = 20000;
  const std::vector<int> truth = MakeTruth(n);
  NoisyOracle oracle(truth, 0.3, 42);
  size_t flips = 0;
  for (size_t i = 0; i < n; ++i) {
    if (oracle.Label(i) != truth[i]) ++flips;
  }
  const double rate = static_cast<double>(flips) / static_cast<double>(n);
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(NoisyOracleTest, RepeatedQueriesAreConsistent) {
  const std::vector<int> truth = MakeTruth(200);
  NoisyOracle oracle(truth, 0.4, 7);
  std::vector<int> first(200);
  for (size_t i = 0; i < 200; ++i) first[i] = oracle.Label(i);
  for (size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(oracle.Label(i), first[i]) << "row " << i;
  }
}

TEST(NoisyOracleTest, DeterministicPerSeedAndQueryOrder) {
  const std::vector<int> truth = MakeTruth(100);
  NoisyOracle a(truth, 0.25, 99);
  NoisyOracle b(truth, 0.25, 99);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Label(i), b.Label(i));
  }
}

TEST(NoisyOracleTest, FullNoiseInvertsEverything) {
  const std::vector<int> truth = MakeTruth(50);
  NoisyOracle oracle(truth, 1.0, 3);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(oracle.Label(i), 1 - truth[i]);
  }
}

TEST(OracleTest, QueryCounting) {
  const std::vector<int> truth = MakeTruth(10);
  NoisyOracle oracle(truth, 0.1, 5);
  EXPECT_EQ(oracle.queries(), 0u);
  oracle.Label(0);
  oracle.Label(0);
  oracle.Label(1);
  EXPECT_EQ(oracle.queries(), 3u);
}

}  // namespace
}  // namespace alem
