// Tests for src/parallel/: thread-pool lifecycle, exception propagation,
// grain-size edge cases, nested-submit rejection, the per-member seed_seq
// regression pins, and the determinism contract — committee selections,
// forest models/predictions, and progressive-F1 curves must be
// bitwise-identical for threads=1 vs threads=4.

#include "parallel/pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "core/approaches.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "core/harness.h"
#include "core/learner.h"
#include "core/pool.h"
#include "core/selector.h"
#include "features/feature_matrix.h"
#include "ml/random_forest.h"
#include "ml/serialization.h"
#include "synth/profiles.h"
#include "util/rng.h"

namespace alem {
namespace {

// Restores the global thread count after every test so suites that follow
// see the environment-resolved default again.
class ParallelTest : public ::testing::Test {
 protected:
  void SetUp() override { original_threads_ = parallel::NumThreads(); }
  void TearDown() override { parallel::SetNumThreads(original_threads_); }

 private:
  int original_threads_ = 1;
};

// ---- ThreadPool lifecycle ----------------------------------------------

TEST_F(ParallelTest, PoolStartsUpAndShutsDownRepeatedly) {
  for (int threads = 1; threads <= 4; ++threads) {
    for (int round = 0; round < 3; ++round) {
      parallel::ThreadPool pool(threads);
      EXPECT_EQ(pool.num_threads(), threads);
      std::atomic<int> sum{0};
      pool.Run(16, [&](size_t chunk) {
        sum.fetch_add(static_cast<int>(chunk), std::memory_order_relaxed);
      });
      EXPECT_EQ(sum.load(), 120);  // 0 + 1 + ... + 15.
    }
  }
  // A pool that never ran a job must also shut down cleanly.
  { parallel::ThreadPool idle(4); }
}

TEST_F(ParallelTest, RunExecutesEveryChunkExactlyOnce) {
  parallel::ThreadPool pool(4);
  constexpr size_t kChunks = 100;
  std::vector<std::atomic<int>> hits(kChunks);
  pool.Run(kChunks, [&](size_t chunk) {
    hits[chunk].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kChunks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "chunk " << i;
  }
}

TEST_F(ParallelTest, RunWithZeroChunksIsANoOp) {
  parallel::ThreadPool pool(2);
  bool called = false;
  pool.Run(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST_F(ParallelTest, PoolIsReusableAcrossManyJobs) {
  parallel::ThreadPool pool(3);
  for (int job = 0; job < 50; ++job) {
    std::atomic<size_t> count{0};
    pool.Run(7, [&](size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 7u) << "job " << job;
  }
}

// ---- Exception propagation ---------------------------------------------

TEST_F(ParallelTest, LowestChunkExceptionWinsDeterministically) {
  parallel::ThreadPool pool(4);
  for (int round = 0; round < 5; ++round) {
    try {
      pool.Run(32, [&](size_t chunk) {
        if (chunk >= 3) {
          throw std::runtime_error("chunk-" + std::to_string(chunk));
        }
      });
      FAIL() << "Run must rethrow";
    } catch (const std::runtime_error& error) {
      // Chunks 3..31 all throw; regardless of scheduling, the recorded
      // exception must be the lowest-indexed one.
      EXPECT_STREQ(error.what(), "chunk-3");
    }
  }
}

TEST_F(ParallelTest, AllChunksStillRunWhenOneThrows) {
  parallel::ThreadPool pool(2);
  std::atomic<size_t> executed{0};
  EXPECT_THROW(pool.Run(20,
                        [&](size_t chunk) {
                          executed.fetch_add(1);
                          if (chunk == 0) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
  EXPECT_EQ(executed.load(), 20u);
}

TEST_F(ParallelTest, PoolSurvivesAThrowingJob) {
  parallel::ThreadPool pool(2);
  EXPECT_THROW(
      pool.Run(4, [](size_t) { throw std::runtime_error("first job"); }),
      std::runtime_error);
  std::atomic<size_t> count{0};
  pool.Run(4, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 4u);
}

TEST_F(ParallelTest, ParallelForPropagatesExceptions) {
  parallel::SetNumThreads(4);
  EXPECT_THROW(
      parallel::ParallelFor(0, 100, 10,
                            [](size_t, size_t, size_t) {
                              throw std::runtime_error("from chunk");
                            }),
      std::runtime_error);
}

// ---- Nested submission -------------------------------------------------

TEST_F(ParallelTest, NestedRunIsRejectedWithLogicError) {
  parallel::ThreadPool pool(2);
  // The inner Run throws std::logic_error inside a worker; the pool
  // records and rethrows it from the outer Run.
  EXPECT_THROW(pool.Run(2,
                        [&](size_t) {
                          pool.Run(2, [](size_t) {});
                        }),
               std::logic_error);
}

TEST_F(ParallelTest, NestedParallelForRunsInlineInsteadOfDeadlocking) {
  parallel::SetNumThreads(4);
  std::atomic<size_t> inner_total{0};
  parallel::ParallelFor(0, 8, 1, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) {
      // Nested region: must degrade to inline serial execution.
      parallel::ParallelFor(0, 10, 2, [&](size_t b, size_t e, size_t) {
        inner_total.fetch_add(e - b, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 80u);
}

// ---- ParallelFor chunk decomposition -----------------------------------

// Records every (begin, end, chunk) triple a ParallelFor produced.
using Chunk = std::tuple<size_t, size_t, size_t>;
std::vector<Chunk> Chunks(size_t begin, size_t end, size_t grain) {
  std::mutex mutex;
  std::vector<Chunk> chunks;
  parallel::ParallelFor(begin, end, grain,
                        [&](size_t b, size_t e, size_t chunk) {
                          std::lock_guard<std::mutex> lock(mutex);
                          chunks.emplace_back(b, e, chunk);
                        });
  std::sort(chunks.begin(), chunks.end(),
            [](const auto& a, const auto& b) {
              return std::get<2>(a) < std::get<2>(b);
            });
  return chunks;
}

TEST_F(ParallelTest, GrainEdgeCases) {
  parallel::SetNumThreads(4);

  // Empty range: no chunks at all.
  EXPECT_TRUE(Chunks(5, 5, 3).empty());
  EXPECT_TRUE(Chunks(7, 2, 3).empty());

  // Grain larger than the range: one chunk covering everything.
  auto one = Chunks(2, 7, 100);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], Chunk(2, 7, 0));

  // Grain 1: one chunk per element.
  auto singles = Chunks(0, 5, 1);
  ASSERT_EQ(singles.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(singles[i], Chunk(i, i + 1, i));
  }

  // Non-dividing grain: a short final chunk.
  auto uneven = Chunks(0, 10, 4);
  ASSERT_EQ(uneven.size(), 3u);
  EXPECT_EQ(uneven[0], Chunk(0, 4, 0));
  EXPECT_EQ(uneven[1], Chunk(4, 8, 1));
  EXPECT_EQ(uneven[2], Chunk(8, 10, 2));

  // Decomposition is thread-count independent.
  parallel::SetNumThreads(1);
  EXPECT_EQ(Chunks(0, 10, 4), uneven);
  EXPECT_EQ(parallel::NumChunks(0, 10, 4), 3u);
  EXPECT_EQ(parallel::NumChunks(5, 5, 4), 0u);
}

// ---- Deterministic seeding ---------------------------------------------

TEST_F(ParallelTest, TaskSeedIsStableAndDistinct) {
  // Pinned values: changing TaskSeed silently reseeds every parallel
  // region, so a change here must be deliberate.
  EXPECT_EQ(parallel::TaskSeed(0, 0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(parallel::TaskSeed(42, 7), 0xccf635ee9e9e2fa4ULL);

  std::set<uint64_t> seen;
  for (uint64_t index = 0; index < 1000; ++index) {
    seen.insert(parallel::TaskSeed(123, index));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST_F(ParallelTest, MemberSeedsRegressionPins) {
  // Recorded seeds for round_seed 0x123456789abcdef0. A deliberate change
  // to the derivation invalidates every recorded committee selection;
  // update these pins only alongside the determinism goldens.
  const CommitteeMemberSeeds member0 = MemberSeeds(0x123456789abcdef0ULL, 0);
  const CommitteeMemberSeeds member1 = MemberSeeds(0x123456789abcdef0ULL, 1);
  EXPECT_EQ(member0.resample_seed, 0x52ece3ba7fd8e422ULL);
  EXPECT_EQ(member0.learner_seed, 0xf73b196a063d7029ULL);
  EXPECT_NE(member1.resample_seed, member0.resample_seed);
  EXPECT_NE(member1.learner_seed, member0.learner_seed);

  // Pin the member-0 bootstrap resample itself: this is what the fit
  // consumes, so it is the real regression surface.
  Rng resample(member0.resample_seed);
  const std::vector<size_t> sample = resample.SampleWithReplacement(8, 8);
  const std::vector<size_t> expected = {6, 1, 0, 6, 6, 4, 2, 6};
  EXPECT_EQ(sample, expected);
}

TEST_F(ParallelTest, MemberSeedsIndependentOfCommitteeSizeAndOrder) {
  // The seed-stability property the seed_seq fix buys: member m's seeds are
  // a pure function of (round_seed, m). With the old shared-engine scheme,
  // growing the committee or reordering fits changed every member's stream.
  for (int member = 0; member < 4; ++member) {
    const CommitteeMemberSeeds a = MemberSeeds(99, member);
    const CommitteeMemberSeeds b = MemberSeeds(99, member);
    EXPECT_EQ(a.resample_seed, b.resample_seed);
    EXPECT_EQ(a.learner_seed, b.learner_seed);
  }
  std::set<uint64_t> distinct;
  for (int member = 0; member < 64; ++member) {
    distinct.insert(MemberSeeds(7, member).resample_seed);
  }
  EXPECT_EQ(distinct.size(), 64u);
}

// ---- Pool utilization accounting ---------------------------------------

TEST_F(ParallelTest, SerialPathLeavesPoolProfileDisengaged) {
  parallel::ResetPoolProfile();
  parallel::SetNumThreads(1);
  std::atomic<size_t> total{0};
  parallel::ParallelFor(
      0, 100, 10,
      [&](size_t b, size_t e, size_t) {
        total.fetch_add(e - b, std::memory_order_relaxed);
      },
      "acct.serial");
  EXPECT_EQ(total.load(), 100u);

  // threads=1 never creates a pool, so the profile stays empty and
  // StampPoolProfile must leave the report untouched.
  const parallel::PoolProfile profile = parallel::SnapshotPoolProfile();
  EXPECT_FALSE(profile.engaged());
  EXPECT_DOUBLE_EQ(profile.worker_wall_seconds, 0.0);
  obs::RunReport report;
  parallel::StampPoolProfile(&report);
  EXPECT_FALSE(report.has_pool);
}

TEST_F(ParallelTest, PoolAccountingTilesWorkerWall) {
  parallel::ResetPoolProfile();
  obs::SetMetricsEnabled(true);
  parallel::SetNumThreads(4);
  for (int run = 0; run < 3; ++run) {
    parallel::ParallelFor(
        0, 64, 4,
        [&](size_t b, size_t e, size_t) {
          volatile double sink = 0.0;
          for (size_t i = b * 2000; i < e * 2000; ++i) {
            sink = sink + static_cast<double>(i) * 1e-9;
          }
        },
        "acct.pool");
  }
  // Destroy the pool so every worker's wall clock is closed before the
  // invariant check (live snapshots extrapolate open idle waits).
  parallel::SetNumThreads(1);

  const parallel::PoolProfile profile = parallel::SnapshotPoolProfile();
  obs::SetMetricsEnabled(false);
  ASSERT_TRUE(profile.engaged());
  EXPECT_EQ(profile.workers, 4);
  EXPECT_GT(profile.busy_seconds, 0.0);
  EXPECT_GT(profile.utilization, 0.0);
  EXPECT_LE(profile.utilization, 1.0 + 1e-9);

  // The accounting invariant: busy + idle + queue-wait tiles each
  // worker's wall clock (1% relative or 10ms absolute slack).
  const double accounted = profile.busy_seconds + profile.idle_seconds +
                           profile.queue_wait_seconds;
  EXPECT_NEAR(accounted, profile.worker_wall_seconds,
              std::max(0.01 * profile.worker_wall_seconds, 0.01));

  // Region imbalance stats: 16 chunks per run, three runs, and the
  // min/mean/max ordering must hold.
  bool found = false;
  for (const parallel::PoolRegionProfile& region : profile.regions) {
    if (region.name != "acct.pool") continue;
    found = true;
    EXPECT_EQ(region.runs, 3u);
    EXPECT_EQ(region.chunks, 48u);
    EXPECT_GT(region.min_chunk_seconds, 0.0);
    EXPECT_LE(region.min_chunk_seconds, region.mean_chunk_seconds);
    EXPECT_LE(region.mean_chunk_seconds, region.max_chunk_seconds);
    EXPECT_GT(region.utilization, 0.0);
    EXPECT_LE(region.utilization, 1.0 + 1e-9);
  }
  EXPECT_TRUE(found);
  parallel::ResetPoolProfile();
}

TEST_F(ParallelTest, StampPoolProfileFillsReportAfterPoolRuns) {
  parallel::ResetPoolProfile();
  obs::SetMetricsEnabled(true);
  parallel::SetNumThreads(2);
  parallel::ParallelFor(
      0, 32, 2, [](size_t, size_t, size_t) {}, "acct.stamp");
  obs::RunReport report;
  parallel::StampPoolProfile(&report);
  obs::SetMetricsEnabled(false);
  ASSERT_TRUE(report.has_pool);
  EXPECT_EQ(report.pool.workers, 2);
  EXPECT_GT(report.pool.worker_wall_seconds, 0.0);
  ASSERT_EQ(report.pool.regions.size(), 1u);
  EXPECT_EQ(report.pool.regions[0].name, "acct.stamp");
  EXPECT_EQ(report.pool.regions[0].chunks, 16u);
  parallel::ResetPoolProfile();
}

// ---- Determinism goldens: threads=1 vs threads=4 -----------------------

// A small two-cluster feature matrix with an ambiguous band in the middle.
FeatureMatrix SyntheticFeatures(size_t rows, size_t dims, uint64_t seed) {
  Rng rng(seed);
  FeatureMatrix features(rows, dims);
  for (size_t r = 0; r < rows; ++r) {
    const double center = (r % 2 == 0) ? 0.25 : 0.75;
    for (size_t d = 0; d < dims; ++d) {
      features.Set(r, d,
                   static_cast<float>(center + 0.2 * (rng.NextDouble() - 0.5)));
    }
  }
  return features;
}

std::vector<int> SyntheticLabels(size_t rows) {
  std::vector<int> labels(rows);
  for (size_t r = 0; r < rows; ++r) labels[r] = r % 2 == 0 ? 0 : 1;
  return labels;
}

TEST_F(ParallelTest, ForestFitAndPredictionsIdenticalAcrossThreadCounts) {
  const FeatureMatrix features = SyntheticFeatures(120, 6, 3);
  const std::vector<int> labels = SyntheticLabels(120);

  RandomForestConfig config;
  config.num_trees = 12;
  config.seed = 17;

  parallel::SetNumThreads(1);
  RandomForest serial(config);
  serial.Fit(features, labels);
  const std::vector<int> serial_predictions = serial.PredictAll(features);

  parallel::SetNumThreads(4);
  RandomForest threaded(config);
  threaded.Fit(features, labels);
  const std::vector<int> threaded_predictions = threaded.PredictAll(features);

  // Bitwise-identical models, not just matching predictions.
  EXPECT_EQ(SerializeForest(serial), SerializeForest(threaded));
  EXPECT_EQ(serial_predictions, threaded_predictions);
}

std::vector<size_t> QbcSelection(int threads) {
  parallel::SetNumThreads(threads);
  FeatureMatrix features = SyntheticFeatures(200, 5, 11);
  ActivePool pool(std::move(features));
  const std::vector<int> labels = SyntheticLabels(200);
  for (size_t row = 0; row < 40; ++row) pool.AddLabel(row, labels[row]);

  SvmLearner learner;
  learner.Fit(pool.ActiveLabeledFeatures(), pool.ActiveLabeledLabels());
  QbcSelector selector(6, 29);
  return selector.Select(learner, pool, 10, nullptr);
}

TEST_F(ParallelTest, CommitteeSelectionsIdenticalAcrossThreadCounts) {
  const std::vector<size_t> serial = QbcSelection(1);
  const std::vector<size_t> threaded = QbcSelection(4);
  ASSERT_EQ(serial.size(), 10u);
  EXPECT_EQ(serial, threaded);
}

// Full progressive runs on paper-profile datasets: the whole curve —
// selection sequence, labels, and F1 values — must be bitwise-identical.
RunResult ProfileRun(const std::string& profile_name,
                     const std::string& approach, int threads) {
  parallel::SetNumThreads(threads);
  const PreparedDataset data = PrepareDataset(
      {ProfileByName(profile_name), /*data_seed=*/7, /*scale=*/0.2});
  ApproachSpec spec;
  EXPECT_TRUE(ApproachFromName(approach, &spec));
  RunConfig config;
  config.approach = spec;
  config.max_labels = 70;
  config.run_seed = 1;
  return RunActiveLearning(data, config);
}

void ExpectIdenticalCurves(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].labels_used, b.curve[i].labels_used) << i;
    EXPECT_EQ(a.curve[i].metrics.f1, b.curve[i].metrics.f1) << i;
    EXPECT_EQ(a.curve[i].metrics.precision, b.curve[i].metrics.precision)
        << i;
    EXPECT_EQ(a.curve[i].metrics.recall, b.curve[i].metrics.recall) << i;
    EXPECT_EQ(a.curve[i].scored_examples, b.curve[i].scored_examples) << i;
  }
  EXPECT_EQ(a.best_f1, b.best_f1);
  EXPECT_EQ(a.labels_to_converge, b.labels_to_converge);
}

TEST_F(ParallelTest, AbtBuyForestCurveIdenticalAcrossThreadCounts) {
  const RunResult serial = ProfileRun("Abt-Buy", "trees10", 1);
  const RunResult threaded = ProfileRun("Abt-Buy", "trees10", 4);
  ExpectIdenticalCurves(serial, threaded);
}

TEST_F(ParallelTest, AbtBuyLinearQbcCurveIdenticalAcrossThreadCounts) {
  const RunResult serial = ProfileRun("Abt-Buy", "linear-qbc4", 1);
  const RunResult threaded = ProfileRun("Abt-Buy", "linear-qbc4", 4);
  ExpectIdenticalCurves(serial, threaded);
}

TEST_F(ParallelTest, CoraMarginCurveIdenticalAcrossThreadCounts) {
  const RunResult serial = ProfileRun("Cora", "linear-margin-2dim", 1);
  const RunResult threaded = ProfileRun("Cora", "linear-margin-2dim", 4);
  ExpectIdenticalCurves(serial, threaded);
}

}  // namespace
}  // namespace alem
