// Quickstart: match two product catalogs with active learning.
//
// This is the smallest end-to-end use of the library:
//   1. get an EM dataset (here: a synthetic Abt-Buy analogue),
//   2. block the Cartesian pair space,
//   3. extract similarity features,
//   4. run active learning with the paper's best combination
//      (random forest + learner-aware QBC),
//   5. inspect the progressive F1 curve.

#include <cstdio>

#include "core/harness.h"
#include "synth/profiles.h"

int main() {
  using namespace alem;

  // Steps 1-3 in one call: generate -> block -> featurize.
  const PreparedDataset data = PrepareDataset({AbtBuyProfile(), /*seed=*/42});
  std::printf("dataset %s: %zu candidate pairs after blocking, %zu true "
              "matches (skew %.3f)\n",
              data.name.c_str(), data.pairs.size(), data.num_matches,
              data.class_skew);

  // Step 4: random forest of 20 trees, trees-as-committee selection,
  // 30-example seed, 10 labels per iteration, stop at 300 labels.
  RunConfig config;
  config.approach = TreesSpec(20);
  config.max_labels = 300;
  const RunResult result = RunActiveLearning(data, config);

  // Step 5: the learning curve.
  std::printf("\n%8s %10s %10s %10s\n", "#labels", "precision", "recall",
              "F1");
  for (const IterationStats& it : result.curve) {
    std::printf("%8zu %10.3f %10.3f %10.3f\n", it.labels_used,
                it.metrics.precision, it.metrics.recall, it.metrics.f1);
  }
  std::printf("\nbest F1 %.3f reached with %zu labels (%.2fs total user "
              "wait)\n",
              result.best_f1, result.labels_to_converge,
              result.total_wait_seconds);
  return 0;
}
