// Bibliography deduplication with interpretable rules.
//
// Publication datasets (DBLP vs ACM here) are clean enough that concise
// matching rules work well, and in settings where a human must sign off on
// the matching logic, an explainable model beats a slightly more accurate
// black box. This example learns a monotone-DNF rule ensemble with the
// LFP/LFN heuristic, prints it, and contrasts its size with the DNF a
// random forest would imply (the paper's interpretability metric).

#include <cstdio>

#include "core/active_loop.h"
#include "core/evaluator.h"
#include "core/harness.h"
#include "core/oracle.h"
#include "core/pool.h"
#include "core/selector.h"
#include "synth/profiles.h"

int main() {
  using namespace alem;

  const PreparedDataset data = PrepareDataset({DblpAcmProfile(), /*seed=*/3});
  std::printf("dataset %s: %zu pairs, %zu matches\n\n", data.name.c_str(),
              data.pairs.size(), data.num_matches);

  // Learn rules with LFP/LFN (keeps the final model for inspection).
  ActivePool pool(data.boolean_features);
  PerfectOracle oracle(data.truth);
  ProgressiveEvaluator evaluator(data.truth);
  RuleLearner rules;
  LfpLfnSelector selector;
  ActiveLearningConfig loop_config;
  loop_config.max_labels = 300;
  ActiveLearningLoop loop(rules, selector, oracle, evaluator, loop_config);
  const auto curve = loop.Run(pool);

  std::printf("rules terminated after %zu iterations (%zu labels), "
              "progressive F1 = %.3f\n",
              curve.size(), curve.back().labels_used,
              curve.back().metrics.f1);
  std::printf("\nlearned rule ensemble (%zu DNF atoms):\n  %s\n",
              rules.dnf().NumAtoms(),
              rules.dnf().ToString(*data.featurizer).c_str());

  // The accuracy-vs-interpretability trade-off against trees.
  RunConfig config;
  config.approach = TreesSpec(20);
  config.max_labels = 300;
  const RunResult trees = RunActiveLearning(data, config);
  std::printf(
      "\nTrees(20): best F1 %.3f, but its implied DNF has %zu atoms "
      "(vs %zu for rules) at depth %d —\n"
      "three orders of magnitude harder for a human to audit.\n",
      trees.best_f1, trees.curve.back().dnf_atoms, rules.dnf().NumAtoms(),
      trees.curve.back().tree_depth);
  return 0;
}
