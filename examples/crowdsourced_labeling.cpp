// Crowdsourced labeling: how noisy labels change the picture.
//
// When labels come from a crowd instead of an expert, some fraction is
// wrong. This example sweeps Oracle noise from 0% to 40% on a Walmart-Amazon
// analogue and shows (a) how the best achievable F1 degrades per approach
// and (b) why early stopping matters: under noise, F1 peaks and then
// *declines* as more corrupted labels arrive (Section 6.2 of the paper).

#include <cstdio>
#include <vector>

#include "core/harness.h"
#include "synth/profiles.h"

int main() {
  using namespace alem;

  const PreparedDataset data =
      PrepareDataset({WalmartAmazonProfile(), /*seed=*/5});
  std::printf("dataset %s: %zu pairs, %zu matches\n\n", data.name.c_str(),
              data.pairs.size(), data.num_matches);

  const std::vector<ApproachSpec> approaches = {TreesSpec(20),
                                                NeuralMarginSpec(),
                                                LinearMarginSpec(1)};
  std::printf("best F1 under label noise (3-run averages not applied here; "
              "single seeded runs):\n\n");
  std::printf("%-20s", "Approach");
  for (const double noise : {0.0, 0.1, 0.2, 0.3, 0.4}) {
    std::printf(" %7.0f%%", noise * 100);
  }
  std::printf("\n");
  for (const ApproachSpec& spec : approaches) {
    std::printf("%-20s", spec.DisplayName().c_str());
    for (const double noise : {0.0, 0.1, 0.2, 0.3, 0.4}) {
      RunConfig config;
      config.approach = spec;
      config.max_labels = 250;
      config.oracle_noise = noise;
      const RunResult result = RunActiveLearning(data, config);
      std::printf(" %8.3f", result.best_f1);
    }
    std::printf("\n");
  }

  // Early-stopping illustration at 30% noise.
  RunConfig config;
  config.approach = TreesSpec(20);
  config.max_labels = 250;
  config.oracle_noise = 0.3;
  const RunResult noisy = RunActiveLearning(data, config);
  size_t peak_labels = 0;
  double peak_f1 = 0.0;
  for (const IterationStats& it : noisy.curve) {
    if (it.metrics.f1 > peak_f1) {
      peak_f1 = it.metrics.f1;
      peak_labels = it.labels_used;
    }
  }
  std::printf(
      "\nAt 30%% noise, Trees(20) peaked at F1 %.3f after %zu labels and "
      "ended at %.3f after %zu labels —\n"
      "in crowdsourced settings, terminate early or add label-correction "
      "(majority voting).\n",
      peak_f1, peak_labels, noisy.curve.back().metrics.f1,
      noisy.curve.back().labels_used);
  return 0;
}
