// Train once, match forever: persisting learned EM models.
//
// Active learning buys a good model with few labels, but the payoff comes
// from *reusing* that model on future record batches without re-labeling.
// This example trains a random forest with active learning, serializes it,
// restores it in a "fresh process" (a new object), and applies it to pairs
// the original training run never saw.

#include <cstdio>
#include <string>

#include "core/harness.h"
#include "ml/serialization.h"
#include "synth/profiles.h"

int main() {
  using namespace alem;

  // Train on one snapshot of the catalogs...
  const PreparedDataset training_data =
      PrepareDataset({AbtBuyProfile(), /*seed=*/42});
  RunConfig config;
  config.approach = TreesSpec(10);
  config.max_labels = 250;
  const RunResult result = RunActiveLearning(training_data, config);
  std::printf("trained %s: best F1 %.3f with %zu labels\n",
              result.approach_name.c_str(), result.best_f1,
              result.labels_to_converge);

  // ... serialize the model ...
  const auto* forest =
      dynamic_cast<const ForestLearner*>(result.final_model.get());
  if (forest == nullptr) {
    std::fprintf(stderr, "unexpected model type\n");
    return 1;
  }
  const std::string path = "/tmp/alem_abtbuy_forest.txt";
  if (!SaveToFile(path, SerializeForest(forest->model()))) {
    std::fprintf(stderr, "failed to save model\n");
    return 1;
  }
  std::printf("model saved to %s\n", path.c_str());

  // ... and, later, restore it and match a *new* batch of records (same
  // catalogs, different snapshot seed => records never seen in training).
  std::string blob;
  RandomForest restored;
  if (!LoadFromFile(path, &blob) || !DeserializeForest(blob, &restored)) {
    std::fprintf(stderr, "failed to load model\n");
    return 1;
  }
  const PreparedDataset new_batch =
      PrepareDataset({AbtBuyProfile(), /*seed=*/4242});
  const std::vector<int> predictions =
      restored.PredictAll(new_batch.float_features);
  const BinaryMetrics metrics =
      ComputeBinaryMetrics(predictions, new_batch.truth);
  std::printf(
      "restored model on an unseen batch (%zu pairs): precision %.3f, "
      "recall %.3f, F1 %.3f — no additional labels spent\n",
      new_batch.pairs.size(), metrics.precision, metrics.recall, metrics.f1);
  return 0;
}
