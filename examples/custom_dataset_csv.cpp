// Bring your own data: running the pipeline on CSV files.
//
// The other examples use the built-in synthetic dataset profiles. This one
// shows the full manual path for user data:
//   1. load left/right tables from CSV (header row = schema),
//   2. align columns by name and declare ground truth (for evaluation),
//   3. block, extract features, and run active learning with the low-level
//      loop API (instead of the PrepareDataset/RunActiveLearning harness).
// For the demo the CSVs are first written to a temp directory.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "blocking/jaccard_blocking.h"
#include "core/active_loop.h"
#include "core/evaluator.h"
#include "core/learner.h"
#include "core/oracle.h"
#include "core/pool.h"
#include "core/selector.h"
#include "features/feature_extractor.h"
#include "util/csv.h"

namespace {

// A miniature two-catalog product dataset.
constexpr const char* kLeftCsv =
    "name,price\n"
    "sonix powershot z20 camera,199.99\n"
    "sonix powershot z30 camera,249.99\n"
    "velar office chair black,89.00\n"
    "velar office chair white,91.00\n"
    "kordo usb c cable 2m,9.99\n"
    "kordo usb c cable 1m,7.99\n"
    "mistral desk lamp led,34.50\n"
    "mistral floor lamp led,54.50\n";

constexpr const char* kRightCsv =
    "name,price\n"
    "sonix power-shot z20 digital camera,199\n"
    "sonix powershot z30,250.00\n"
    "velar chair black office,89\n"
    "kordo usbc cable 2 m,9.95\n"
    "mistral led desk lamp,34.99\n"
    "garmix running watch,129.00\n";

}  // namespace

int main() {
  using namespace alem;

  // 1. Write and load the CSVs.
  const std::string dir = "/tmp/alem_custom_dataset";
  std::system(("mkdir -p " + dir).c_str());
  WriteCsvFile(dir + "/left.csv", ParseCsv(kLeftCsv));
  WriteCsvFile(dir + "/right.csv", ParseCsv(kRightCsv));

  EmDataset dataset;
  dataset.name = "custom-products";
  if (!Table::FromCsvFile(dir + "/left.csv", &dataset.left) ||
      !Table::FromCsvFile(dir + "/right.csv", &dataset.right)) {
    std::fprintf(stderr, "failed to load CSVs\n");
    return 1;
  }

  // 2. Align columns by name; declare the known matches (left row, right
  //    row) for evaluation / as the Oracle's answer key.
  dataset.matched_columns = EmDataset::AlignByName(dataset.left,
                                                   dataset.right);
  dataset.truth.AddMatch({0, 0});
  dataset.truth.AddMatch({1, 1});
  dataset.truth.AddMatch({2, 2});
  dataset.truth.AddMatch({4, 3});
  dataset.truth.AddMatch({6, 4});

  // 3. Block and featurize.
  const auto pairs = JaccardBlocking(dataset, BlockingConfig{0.15});
  FeatureExtractor extractor(dataset);
  std::printf("%zu candidate pairs after blocking, %zu features each\n",
              pairs.size(), extractor.num_dims());

  ActivePool pool(extractor.ExtractAll(pairs));
  const std::vector<int> truth = dataset.LabelsFor(pairs);
  PerfectOracle oracle(truth);
  ProgressiveEvaluator evaluator(truth);

  RandomForestConfig forest_config;
  forest_config.num_trees = 10;
  ForestLearner learner(forest_config);
  ForestQbcSelector selector(/*seed=*/1);

  ActiveLearningConfig config;
  config.seed_size = 6;   // The toy dataset has very few pairs.
  config.batch_size = 2;
  config.max_labels = 16;
  ActiveLearningLoop loop(learner, selector, oracle, evaluator, config);
  const auto curve = loop.Run(pool);

  std::printf("\n%8s %8s\n", "#labels", "F1");
  for (const IterationStats& it : curve) {
    std::printf("%8zu %8.3f\n", it.labels_used, it.metrics.f1);
  }

  // The trained model can now label the remaining pairs.
  std::printf("\npredicted matches among candidate pairs:\n");
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (learner.Predict(pool.features().Row(i)) == 1) {
      std::printf("  left[%u] '%s'  <->  right[%u] '%s'%s\n", pairs[i].left,
                  std::string(dataset.left.Value(pairs[i].left, 0)).c_str(),
                  pairs[i].right,
                  std::string(dataset.right.Value(pairs[i].right, 0)).c_str(),
                  dataset.truth.IsMatch(pairs[i]) ? "" : "   (FALSE POSITIVE)");
    }
  }
  return 0;
}
