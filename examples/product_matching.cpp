// Product catalog matching: choosing a learner and example selector.
//
// This example mirrors the paper's core benchmarking question — which
// (classifier, selector) combination should a practitioner use? It runs
// four representative approaches on a hard product dataset (an
// Amazon-GoogleProducts analogue, where names, descriptions, and prices are
// each unreliable for a different slice of the matches) and reports
// quality, label consumption, and user wait time side by side.

#include <cstdio>
#include <vector>

#include "core/harness.h"
#include "synth/profiles.h"

int main() {
  using namespace alem;

  const PreparedDataset data =
      PrepareDataset({AmazonGoogleProfile(), /*seed=*/7});
  std::printf("dataset %s: %zu pairs, %zu matches, %zu features\n\n",
              data.name.c_str(), data.pairs.size(), data.num_matches,
              data.float_features.dims());

  const std::vector<ApproachSpec> approaches = {
      TreesSpec(20),                // Learner-aware committee (paper's best).
      LinearMarginSpec(1),          // SVM + margin + selection-time blocking.
      LinearQbcSpec(20),            // SVM + learner-agnostic QBC.
      NeuralMarginSpec(),           // Neural network + margin.
      RulesLfpLfnSpec(),            // Interpretable rules + LFP/LFN.
  };

  std::printf("%-24s %8s %14s %14s %12s\n", "Approach", "bestF1",
              "labels@conv", "totalWait(s)", "iterations");
  for (const ApproachSpec& spec : approaches) {
    RunConfig config;
    config.approach = spec;
    config.max_labels = 300;
    const RunResult result = RunActiveLearning(data, config);
    std::printf("%-24s %8.3f %14zu %14.2f %12zu\n",
                result.approach_name.c_str(), result.best_f1,
                result.labels_to_converge, result.total_wait_seconds,
                result.curve.size());
  }

  std::printf(
      "\nGuidance (matches the paper's conclusions): tree ensembles with\n"
      "learner-aware QBC give the best quality per label and per second;\n"
      "margin-based SVMs are the fastest per iteration; rules trade\n"
      "quality for interpretability and terminate earliest.\n");
  return 0;
}
