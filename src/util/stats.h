// Streaming mean / standard deviation accumulator (Welford's algorithm).
// Used to average F1 curves over repeated noisy-oracle runs and to report
// run-to-run standard deviations (Section 6.2 of the paper).

#ifndef ALEM_UTIL_STATS_H_
#define ALEM_UTIL_STATS_H_

#include <cmath>
#include <cstddef>

namespace alem {

class RunningStats {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }

  // Population variance; 0 for fewer than two samples.
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
  }

  double stddev() const { return std::sqrt(variance()); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace alem

#endif  // ALEM_UTIL_STATS_H_
