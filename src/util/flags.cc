#include "util/flags.h"

#include <cstdlib>

#include "util/string_util.h"

namespace alem {

FlagParser::FlagParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const size_t equals = body.find('=');
    if (equals != std::string::npos) {
      values_[body.substr(0, equals)] = body.substr(equals + 1);
      continue;
    }
    // "--name value" when the next token is not a flag; bare "--name"
    // otherwise.
    if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      values_[body] = argv[i + 1];
      ++i;
    } else {
      values_[body] = "";
    }
  }
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t FlagParser::GetInt(const std::string& name,
                           int64_t default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return default_value;
  return std::atoll(it->second.c_str());
}

double FlagParser::GetDouble(const std::string& name,
                             double default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return default_value;
  return std::atof(it->second.c_str());
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  if (it->second.empty()) return true;  // Bare flag.
  return it->second != "false" && it->second != "0";
}

}  // namespace alem
