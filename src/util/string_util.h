// Small string helpers shared across the library.

#ifndef ALEM_UTIL_STRING_UTIL_H_
#define ALEM_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace alem {

// ASCII lower-casing (the benchmark's normalization step; the public EM
// datasets are ASCII-dominated and the paper's feature extractor does not do
// full Unicode folding either).
std::string ToLowerAscii(std::string_view s);

// Removes leading/trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

// Formats a double with `digits` decimal places (locale independent).
std::string FormatDouble(double value, int digits);

}  // namespace alem

#endif  // ALEM_UTIL_STRING_UTIL_H_
