// Minimal command-line flag parsing for the CLI tools.
//
// Supports --name=value, --name value, bare boolean --name, and positional
// arguments. No registration step: callers query by name with a default.

#ifndef ALEM_UTIL_FLAGS_H_
#define ALEM_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace alem {

class FlagParser {
 public:
  FlagParser(int argc, const char* const* argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  // A bare flag (no value) counts as true; "false"/"0" count as false.
  bool GetBool(const std::string& name, bool default_value) const;

  // Non-flag arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace alem

#endif  // ALEM_UTIL_FLAGS_H_
