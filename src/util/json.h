// Minimal JSON support for the observability exporters and the report
// flight recorder: a tagged value tree with a recursive-descent parser,
// plus the escaping / number-formatting helpers every JSON writer in the
// repo shares. Zero dependencies; no allocation tricks — report files are
// kilobytes, not gigabytes.
//
// Numbers are stored as doubles. Counter values round-trip exactly up to
// 2^53, far beyond anything the metric counters reach.

#ifndef ALEM_UTIL_JSON_H_
#define ALEM_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace alem {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  // Parses one JSON document (trailing whitespace allowed, trailing garbage
  // rejected). On failure returns false and describes the problem and its
  // byte offset in *error.
  static bool Parse(std::string_view text, JsonValue* out, std::string* error);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_value_; }
  double number_value() const { return number_value_; }
  const std::string& string_value() const { return string_value_; }
  const std::vector<JsonValue>& array() const { return array_; }
  // Members in document order (reports are written with a fixed key order).
  const std::vector<std::pair<std::string, JsonValue>>& object() const {
    return object_;
  }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  // Setters used by the parser (and tests building values by hand).
  void SetNull() { *this = JsonValue(); }
  void SetBool(bool v);
  void SetNumber(double v);
  void SetString(std::string v);
  void SetArray() { *this = JsonValue(); kind_ = Kind::kArray; }
  void SetObject() { *this = JsonValue(); kind_ = Kind::kObject; }
  std::vector<JsonValue>& mutable_array() { return array_; }
  std::vector<std::pair<std::string, JsonValue>>& mutable_object() {
    return object_;
  }

 private:
  Kind kind_ = Kind::kNull;
  bool bool_value_ = false;
  double number_value_ = 0.0;
  std::string string_value_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

// Appends `s` as a quoted, escaped JSON string literal.
void AppendJsonString(std::string* out, std::string_view s);

// Appends a double with enough digits (%.17g) that parsing it back yields
// the bit-identical value — the report comparator's --exact-curve mode
// depends on this. Non-finite values are clamped to 0 (JSON has no inf).
void AppendJsonDouble(std::string* out, double v);

void AppendJsonUint(std::string* out, uint64_t v);

}  // namespace alem

#endif  // ALEM_UTIL_JSON_H_
