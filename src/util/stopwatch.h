// Wall-clock timing used for the paper's latency metrics (committee-creation
// time, example-scoring time, training time, user wait time).

#ifndef ALEM_UTIL_STOPWATCH_H_
#define ALEM_UTIL_STOPWATCH_H_

#include <chrono>

namespace alem {

// Measures elapsed wall-clock seconds. Starts running on construction.
class StopWatch {
 public:
  StopWatch() : start_(Clock::now()) {}

  // Restarts the stopwatch.
  void Restart() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace alem

#endif  // ALEM_UTIL_STOPWATCH_H_
