// Lightweight runtime assertion macros.
//
// ALEM_CHECK fires in all build modes (unlike assert) and prints the failing
// condition together with its source location before aborting. The library
// uses it for programmer errors and precondition violations; recoverable
// runtime failures are reported through return values instead.

#ifndef ALEM_UTIL_CHECK_H_
#define ALEM_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace alem {
namespace internal_check {

[[noreturn]] inline void CheckFailed(const char* condition, const char* file,
                                     int line) {
  std::fprintf(stderr, "ALEM_CHECK failed: %s at %s:%d\n", condition, file,
               line);
  std::abort();
}

}  // namespace internal_check
}  // namespace alem

// Aborts the process when `condition` evaluates to false.
#define ALEM_CHECK(condition)                                             \
  do {                                                                    \
    if (!(condition)) {                                                   \
      ::alem::internal_check::CheckFailed(#condition, __FILE__, __LINE__); \
    }                                                                     \
  } while (false)

// Convenience comparison forms; they expand to ALEM_CHECK of the comparison.
#define ALEM_CHECK_EQ(a, b) ALEM_CHECK((a) == (b))
#define ALEM_CHECK_NE(a, b) ALEM_CHECK((a) != (b))
#define ALEM_CHECK_LT(a, b) ALEM_CHECK((a) < (b))
#define ALEM_CHECK_LE(a, b) ALEM_CHECK((a) <= (b))
#define ALEM_CHECK_GT(a, b) ALEM_CHECK((a) > (b))
#define ALEM_CHECK_GE(a, b) ALEM_CHECK((a) >= (b))

#endif  // ALEM_UTIL_CHECK_H_
