#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace alem {

std::vector<std::vector<std::string>> ParseCsv(std::string_view content) {
  std::vector<std::vector<std::string>> rows;
  if (content.empty()) return rows;

  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // Distinguishes "" (one empty field) from "".

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < content.size() && content[i + 1] == '"') {
          field.push_back('"');
          ++i;  // Doubled quote -> literal quote.
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field_started && field.empty()) {
          in_quotes = true;
          field_started = true;
        } else {
          field.push_back(c);  // Stray quote mid-field: keep literally.
        }
        break;
      case ',':
        end_field();
        break;
      case '\r':
        // Swallow; the following '\n' (if any) terminates the row.
        break;
      case '\n':
        end_row();
        break;
      default:
        field.push_back(c);
        field_started = true;
        break;
    }
  }
  // Final row without trailing newline.
  if (field_started || !field.empty() || !row.empty()) end_row();
  return rows;
}

namespace {

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\r\n") != std::string_view::npos;
}

void AppendField(std::string_view field, std::string* out) {
  if (!NeedsQuoting(field)) {
    out->append(field);
    return;
  }
  out->push_back('"');
  for (const char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

std::string WriteCsv(const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendField(row[i], &out);
    }
    out.push_back('\n');
  }
  return out;
}

bool ReadCsvFile(const std::string& path,
                 std::vector<std::vector<std::string>>* rows) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *rows = ParseCsv(buffer.str());
  return true;
}

bool WriteCsvFile(const std::string& path,
                  const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << WriteCsv(rows);
  return static_cast<bool>(out);
}

}  // namespace alem
