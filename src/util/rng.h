// Deterministic pseudo-random number generation.
//
// All randomized components of the benchmark (bootstrap sampling, committee
// tie-breaking, synthetic data generation, noisy oracles, neural-network
// initialization) draw from Rng so that every experiment is exactly
// reproducible from a 64-bit seed. The generator is xoshiro256**, seeded via
// splitmix64, which is fast, high quality, and has no global state.

#ifndef ALEM_UTIL_RNG_H_
#define ALEM_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace alem {

// A small, copyable, deterministic PRNG (xoshiro256**).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  // Next raw 64-bit value.
  uint64_t Next();

  // Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Gaussian (mean 0, stddev 1) via Box-Muller.
  double NextGaussian();

  // Bernoulli draw: true with probability `p`.
  bool NextBernoulli(double p);

  // Derives an independent child generator; useful to give each parallel
  // component (e.g., each tree in a forest) its own stream.
  Rng Fork();

  // Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  // `k` indices sampled uniformly without replacement from [0, n).
  // Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  // `k` indices sampled uniformly with replacement from [0, n).
  std::vector<size_t> SampleWithReplacement(size_t n, size_t k);

  // Serializes the exact generator position (xoshiro256** state words plus
  // the Box-Muller gaussian cache) as a single text line, so a restored
  // stream continues bit-for-bit where the saved one stopped
  // (docs/sessions.md). RestoreState rejects malformed input and leaves
  // the generator unchanged.
  std::string SaveState() const;
  bool RestoreState(const std::string& state);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace alem

#endif  // ALEM_UTIL_RNG_H_
