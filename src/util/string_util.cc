#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace alem {

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(s[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(s.substr(start));
      break;
    }
    parts.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return std::string(buffer);
}

}  // namespace alem
