#include "util/rng.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "util/check.h"

namespace alem {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  ALEM_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  ALEM_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(span == 0 ? Next() : NextBelow(span));
}

double Rng::NextDouble() {
  // 53 uniformly distributed mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(Next()); }

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  ALEM_CHECK_LE(k, n);
  // Partial Fisher-Yates over an index vector.
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(NextBelow(n - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

std::string Rng::SaveState() const {
  // The cached gaussian travels as its raw bit pattern: hex u64s round-trip
  // exactly where a decimal double might not.
  uint64_t gaussian_bits = 0;
  static_assert(sizeof(gaussian_bits) == sizeof(cached_gaussian_));
  std::memcpy(&gaussian_bits, &cached_gaussian_, sizeof(gaussian_bits));
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "xoshiro256ss-v1 %llx %llx %llx %llx %d %llx",
                static_cast<unsigned long long>(state_[0]),
                static_cast<unsigned long long>(state_[1]),
                static_cast<unsigned long long>(state_[2]),
                static_cast<unsigned long long>(state_[3]),
                has_cached_gaussian_ ? 1 : 0,
                static_cast<unsigned long long>(gaussian_bits));
  return buffer;
}

bool Rng::RestoreState(const std::string& state) {
  unsigned long long words[4] = {0, 0, 0, 0};
  unsigned long long gaussian_bits = 0;
  int has_cached = 0;
  // The leading " " directive skips any leading whitespace (callers may hand
  // us the tail of a "rng <state>" line).
  if (std::sscanf(state.c_str(), " xoshiro256ss-v1 %llx %llx %llx %llx %d %llx",
                  &words[0], &words[1], &words[2], &words[3], &has_cached,
                  &gaussian_bits) != 6) {
    return false;
  }
  if (has_cached != 0 && has_cached != 1) return false;
  for (int i = 0; i < 4; ++i) state_[i] = static_cast<uint64_t>(words[i]);
  has_cached_gaussian_ = has_cached == 1;
  const uint64_t bits = static_cast<uint64_t>(gaussian_bits);
  std::memcpy(&cached_gaussian_, &bits, sizeof(cached_gaussian_));
  return true;
}

std::vector<size_t> Rng::SampleWithReplacement(size_t n, size_t k) {
  ALEM_CHECK_GT(n, 0u);
  std::vector<size_t> indices(k);
  for (size_t i = 0; i < k; ++i) {
    indices[i] = static_cast<size_t>(NextBelow(n));
  }
  return indices;
}

}  // namespace alem
