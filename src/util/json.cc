#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace alem {

namespace {

// Nesting guard: reports nest ~3 levels; anything past this is garbage.
constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text;
  size_t pos = 0;
  std::string* error;

  bool Fail(const std::string& message) {
    if (error != nullptr) {
      *error = message + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  bool Consume(char expected) {
    SkipWhitespace();
    if (pos >= text.size() || text[pos] != expected) {
      return Fail(std::string("expected '") + expected + "'");
    }
    ++pos;
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (pos >= text.size()) return Fail("unexpected end of input");
    switch (text[pos]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        if (!ParseString(&s)) return false;
        out->SetString(std::move(s));
        return true;
      }
      case 't':
        if (text.substr(pos, 4) != "true") return Fail("bad literal");
        pos += 4;
        out->SetBool(true);
        return true;
      case 'f':
        if (text.substr(pos, 5) != "false") return Fail("bad literal");
        pos += 5;
        out->SetBool(false);
        return true;
      case 'n':
        if (text.substr(pos, 4) != "null") return Fail("bad literal");
        pos += 4;
        out->SetNull();
        return true;
      default:
        return ParseNumber(out);
    }
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos >= text.size()) return Fail("unterminated escape");
      const char escape = text[pos++];
      switch (escape) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // Our writers only escape control characters; encode the code
          // point as UTF-8 (no surrogate-pair handling needed for them,
          // but accept BMP characters from external files).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() &&
           ((text[pos] >= '0' && text[pos] <= '9') || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E' || text[pos] == '-' ||
            text[pos] == '+')) {
      ++pos;
    }
    if (pos == start) return Fail("expected a value");
    const std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos = start;
      return Fail("malformed number");
    }
    out->SetNumber(value);
    return true;
  }

  bool ParseArray(JsonValue* out, int depth) {
    if (!Consume('[')) return false;
    out->SetArray();
    SkipWhitespace();
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      return true;
    }
    while (true) {
      JsonValue element;
      if (!ParseValue(&element, depth + 1)) return false;
      out->mutable_array().push_back(std::move(element));
      SkipWhitespace();
      if (pos >= text.size()) return Fail("unterminated array");
      if (text[pos] == ',') {
        ++pos;
        continue;
      }
      if (text[pos] == ']') {
        ++pos;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    if (!Consume('{')) return false;
    out->SetObject();
    SkipWhitespace();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return true;
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->mutable_object().emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos >= text.size()) return Fail("unterminated object");
      if (text[pos] == ',') {
        ++pos;
        continue;
      }
      if (text[pos] == '}') {
        ++pos;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }
};

}  // namespace

bool JsonValue::Parse(std::string_view text, JsonValue* out,
                      std::string* error) {
  Parser parser{text, 0, error};
  if (!parser.ParseValue(out, 0)) return false;
  parser.SkipWhitespace();
  if (parser.pos != text.size()) {
    return parser.Fail("trailing characters after document");
  }
  return true;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

void JsonValue::SetBool(bool v) {
  *this = JsonValue();
  kind_ = Kind::kBool;
  bool_value_ = v;
}

void JsonValue::SetNumber(double v) {
  *this = JsonValue();
  kind_ = Kind::kNumber;
  number_value_ = v;
}

void JsonValue::SetString(std::string v) {
  *this = JsonValue();
  kind_ = Kind::kString;
  string_value_ = std::move(v);
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonDouble(std::string* out, double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void AppendJsonUint(std::string* out, uint64_t v) {
  out->append(std::to_string(v));
}

}  // namespace alem
