// Minimal RFC-4180 CSV reader/writer.
//
// Supports quoted fields, embedded separators, doubled quotes, and embedded
// newlines inside quoted fields — enough to round-trip the EM datasets the
// benchmark consumes and emits.

#ifndef ALEM_UTIL_CSV_H_
#define ALEM_UTIL_CSV_H_

#include <string>
#include <string_view>
#include <vector>

namespace alem {

// Parses a full CSV document into rows of fields. Handles \r\n and \n line
// endings. An empty input yields zero rows.
std::vector<std::vector<std::string>> ParseCsv(std::string_view content);

// Serializes rows back to CSV, quoting fields only when necessary.
std::string WriteCsv(const std::vector<std::vector<std::string>>& rows);

// Reads `path` and parses it. Returns false on I/O failure.
bool ReadCsvFile(const std::string& path,
                 std::vector<std::vector<std::string>>* rows);

// Writes rows to `path`. Returns false on I/O failure.
bool WriteCsvFile(const std::string& path,
                  const std::vector<std::vector<std::string>>& rows);

}  // namespace alem

#endif  // ALEM_UTIL_CSV_H_
