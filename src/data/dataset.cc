#include "data/dataset.h"

namespace alem {

std::vector<int> EmDataset::LabelsFor(
    const std::vector<RecordPair>& pairs) const {
  std::vector<int> labels(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    labels[i] = truth.IsMatch(pairs[i]) ? 1 : 0;
  }
  return labels;
}

double EmDataset::ClassSkew(const std::vector<RecordPair>& pairs) const {
  if (pairs.empty()) return 0.0;
  size_t matches = 0;
  for (const RecordPair& pair : pairs) {
    if (truth.IsMatch(pair)) ++matches;
  }
  return static_cast<double>(matches) / static_cast<double>(pairs.size());
}

std::vector<MatchedColumns> EmDataset::AlignByName(const Table& left,
                                                   const Table& right) {
  std::vector<MatchedColumns> aligned;
  for (size_t i = 0; i < left.schema().num_columns(); ++i) {
    const int j = right.schema().IndexOf(left.schema().column(i));
    if (j >= 0) {
      aligned.push_back(MatchedColumns{static_cast<int>(i), j});
    }
  }
  return aligned;
}

}  // namespace alem
