// EM dataset representation: two tables, aligned columns, candidate pairs,
// and ground truth.

#ifndef ALEM_DATA_DATASET_H_
#define ALEM_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "data/table.h"

namespace alem {

// One candidate record pair: row indices into the left and right tables.
struct RecordPair {
  uint32_t left = 0;
  uint32_t right = 0;

  friend bool operator==(const RecordPair&, const RecordPair&) = default;
};

// Packs a pair into one 64-bit key (for hashing / set membership).
inline uint64_t PairKey(const RecordPair& pair) {
  return (static_cast<uint64_t>(pair.left) << 32) | pair.right;
}

// The set of truly matching pairs.
class GroundTruth {
 public:
  void AddMatch(RecordPair pair) { matches_.insert(PairKey(pair)); }
  bool IsMatch(RecordPair pair) const {
    return matches_.count(PairKey(pair)) > 0;
  }
  size_t num_matches() const { return matches_.size(); }

 private:
  std::unordered_set<uint64_t> matches_;
};

// A pair of aligned column indices (left table column, right table column).
struct MatchedColumns {
  int left_column = 0;
  int right_column = 0;
};

// A complete EM task: two tables, the pre-aligned attribute pairs the
// feature extractor operates on, and the ground-truth match set.
struct EmDataset {
  std::string name;
  Table left;
  Table right;
  std::vector<MatchedColumns> matched_columns;
  GroundTruth truth;

  // Size of the Cartesian pair space.
  uint64_t TotalPairs() const {
    return static_cast<uint64_t>(left.num_rows()) * right.num_rows();
  }

  // Labels (1 = match) for a list of candidate pairs.
  std::vector<int> LabelsFor(const std::vector<RecordPair>& pairs) const;

  // Fraction of `pairs` that are matches (the post-blocking class skew of
  // Table 1 when called on the blocked pair list).
  double ClassSkew(const std::vector<RecordPair>& pairs) const;

  // Aligns identically named columns of `left` and `right`; columns present
  // in only one table are skipped.
  static std::vector<MatchedColumns> AlignByName(const Table& left,
                                                 const Table& right);
};

}  // namespace alem

#endif  // ALEM_DATA_DATASET_H_
