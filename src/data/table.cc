#include "data/table.h"

#include <utility>

#include "util/check.h"
#include "util/csv.h"

namespace alem {

Schema::Schema(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

const std::string& Schema::column(size_t i) const {
  ALEM_CHECK_LT(i, columns_.size());
  return columns_[i];
}

int Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Table::Table(Schema schema) : schema_(std::move(schema)) {}

const Record& Table::row(size_t i) const {
  ALEM_CHECK_LT(i, rows_.size());
  return rows_[i];
}

void Table::AddRow(Record row) {
  ALEM_CHECK_EQ(row.size(), schema_.num_columns());
  rows_.push_back(std::move(row));
}

std::string_view Table::Value(size_t row, size_t column) const {
  ALEM_CHECK_LT(row, rows_.size());
  if (column >= rows_[row].size()) return {};
  return rows_[row][column];
}

bool Table::FromCsvFile(const std::string& path, Table* table) {
  std::vector<std::vector<std::string>> rows;
  if (!ReadCsvFile(path, &rows)) return false;
  if (rows.empty()) return false;

  Table result{Schema(rows[0])};
  const size_t arity = rows[0].size();
  for (size_t i = 1; i < rows.size(); ++i) {
    // Tolerate ragged rows by padding/truncating to the header arity; real
    // EM dataset dumps frequently have trailing-field irregularities.
    rows[i].resize(arity);
    result.AddRow(std::move(rows[i]));
  }
  *table = std::move(result);
  return true;
}

bool Table::ToCsvFile(const std::string& path) const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(rows_.size() + 1);
  rows.push_back(schema_.columns());
  for (const Record& record : rows_) rows.push_back(record);
  return WriteCsvFile(path, rows);
}

}  // namespace alem
