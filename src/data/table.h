// Relational primitives: Schema, Record, Table.
//
// A Table is a named schema plus string-valued rows. The EM pipeline treats
// all attributes as strings (numeric attributes such as price are compared
// through the string similarity functions, exactly as the paper's Simmetrics
// setup does); missing values are empty strings.

#ifndef ALEM_DATA_TABLE_H_
#define ALEM_DATA_TABLE_H_

#include <string>
#include <string_view>
#include <vector>

namespace alem {

// Ordered list of column names.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> columns);

  size_t num_columns() const { return columns_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::string& column(size_t i) const;

  // Index of `name`, or -1 when absent.
  int IndexOf(std::string_view name) const;

 private:
  std::vector<std::string> columns_;
};

// One row; fields align with the owning table's schema.
using Record = std::vector<std::string>;

// A schema plus rows.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  const Record& row(size_t i) const;
  const std::vector<Record>& rows() const { return rows_; }

  // Appends a row; its arity must match the schema.
  void AddRow(Record row);

  // Field access; returns an empty view for out-of-range columns.
  std::string_view Value(size_t row, size_t column) const;

  // Loads a table from a CSV file whose first row is the header.
  // Returns false on I/O or parse-shape failure.
  static bool FromCsvFile(const std::string& path, Table* table);

  // Writes the table (with header) to a CSV file.
  bool ToCsvFile(const std::string& path) const;

 private:
  Schema schema_;
  std::vector<Record> rows_;
};

}  // namespace alem

#endif  // ALEM_DATA_TABLE_H_
