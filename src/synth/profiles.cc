#include "synth/profiles.h"

#include <type_traits>

#include "util/check.h"

namespace alem {

SynthProfile AbtBuyProfile() {
  SynthProfile profile;
  profile.name = "Abt-Buy";
  profile.heterogeneous_modes = true;
  profile.family_size = 8;
  profile.family_desc_share = 0.8;
  profile.domain = DomainKind::kProduct;
  profile.columns = {{"name", ColumnKind::kName},
                     {"description", ColumnKind::kDescription},
                     {"price", ColumnKind::kPrice}};
  profile.num_matched_entities = 420;
  profile.num_left_only = 60;
  profile.num_right_only = 60;
  profile.left_noise = 0.12;
  profile.right_noise = 0.34;
  profile.null_rate = 0.12;
  profile.sibling_rate = 0.9;
  profile.blocking_threshold = 0.1875;
  profile.vocab_seed = 1001;
  return profile;
}

SynthProfile AmazonGoogleProfile() {
  SynthProfile profile;
  profile.name = "Amazon-GoogleProducts";
  profile.heterogeneous_modes = true;
  profile.family_size = 10;
  profile.domain = DomainKind::kProduct;
  profile.columns = {{"name", ColumnKind::kName},
                     {"description", ColumnKind::kDescription},
                     {"manufacturer", ColumnKind::kBrand},
                     {"price", ColumnKind::kPrice}};
  profile.num_matched_entities = 450;
  profile.num_left_only = 80;
  profile.num_right_only = 80;
  // The hardest product dataset in the paper (best F1 ~0.7 for non-tree
  // learners): heavier noise and more hard negatives.
  profile.left_noise = 0.14;
  profile.right_noise = 0.38;
  profile.sibling_rate = 1.0;
  profile.null_rate = 0.08;
  profile.blocking_threshold = 0.12;
  profile.vocab_seed = 1002;
  return profile;
}

SynthProfile DblpAcmProfile() {
  SynthProfile profile;
  profile.name = "DBLP-ACM";
  profile.family_size = 5;
  profile.domain = DomainKind::kPublication;
  profile.columns = {{"title", ColumnKind::kTitle},
                     {"authors", ColumnKind::kAuthors},
                     {"venue", ColumnKind::kVenue},
                     {"year", ColumnKind::kYear}};
  // The cleanest dataset (F1 ~0.98 in the paper): light noise.
  profile.num_matched_entities = 500;
  profile.num_left_only = 40;
  profile.num_right_only = 40;
  profile.left_noise = 0.04;
  profile.right_noise = 0.12;
  profile.sibling_rate = 0.35;
  profile.null_rate = 0.02;
  profile.blocking_threshold = 0.1875;
  profile.vocab_seed = 1003;
  return profile;
}

SynthProfile DblpScholarProfile() {
  SynthProfile profile;
  profile.name = "DBLP-Scholar";
  profile.family_size = 9;
  profile.domain = DomainKind::kPublication;
  profile.columns = {{"title", ColumnKind::kTitle},
                     {"authors", ColumnKind::kAuthors},
                     {"venue", ColumnKind::kVenue},
                     {"year", ColumnKind::kYear}};
  // Scholar-side records are noisy (F1 ~0.93 in the paper).
  profile.num_matched_entities = 650;
  profile.num_left_only = 60;
  profile.num_right_only = 120;
  profile.left_noise = 0.05;
  profile.right_noise = 0.28;
  profile.sibling_rate = 0.8;
  profile.null_rate = 0.10;
  profile.blocking_threshold = 0.1875;
  profile.vocab_seed = 1004;
  return profile;
}

SynthProfile CoraProfile() {
  SynthProfile profile;
  profile.name = "Cora";
  profile.family_size = 8;
  profile.domain = DomainKind::kPublication;
  profile.columns = {{"author", ColumnKind::kAuthors},
                     {"title", ColumnKind::kTitle},
                     {"venue", ColumnKind::kVenue},
                     {"address", ColumnKind::kAddress},
                     {"publisher", ColumnKind::kPublisher},
                     {"editor", ColumnKind::kEditor},
                     {"date", ColumnKind::kDate},
                     {"vol", ColumnKind::kVolume},
                     {"pgs", ColumnKind::kPages}};
  // Citation clusters: most entities have several right-side variants, so
  // the post-blocking pair space is the largest of the five (as in the
  // paper, where Cora has 114K post-blocking pairs).
  profile.num_matched_entities = 260;
  profile.num_left_only = 30;
  profile.num_right_only = 40;
  profile.multi_match_rate = 0.85;
  profile.max_right_copies = 5;
  profile.left_noise = 0.10;
  profile.right_noise = 0.26;
  profile.sibling_rate = 0.5;
  profile.null_rate = 0.15;
  profile.blocking_threshold = 0.16;
  profile.vocab_seed = 1005;
  return profile;
}

SynthProfile WalmartAmazonProfile() {
  SynthProfile profile;
  profile.name = "Walmart-Amazon";
  profile.heterogeneous_modes = true;
  profile.family_size = 11;
  profile.domain = DomainKind::kProduct;
  profile.columns = {{"brand", ColumnKind::kBrand},
                     {"modelno", ColumnKind::kModel},
                     {"title", ColumnKind::kName},
                     {"price", ColumnKind::kPrice},
                     {"dimensions", ColumnKind::kDimensions},
                     {"shipweight", ColumnKind::kWeight},
                     {"orig_longdescr", ColumnKind::kDescription},
                     {"shortdescr", ColumnKind::kShortText},
                     {"longdescr", ColumnKind::kDescription},
                     {"groupname", ColumnKind::kCategory}};
  // A challenging dataset: convergence needs many labels (Fig. 15a).
  profile.num_matched_entities = 380;
  profile.num_left_only = 70;
  profile.num_right_only = 70;
  profile.left_noise = 0.14;
  profile.right_noise = 0.36;
  profile.sibling_rate = 1.0;
  profile.null_rate = 0.12;
  profile.blocking_threshold = 0.16;
  profile.vocab_seed = 1006;
  return profile;
}

SynthProfile AmazonBestBuyProfile() {
  SynthProfile profile;
  profile.name = "Amazon-BestBuy";
  profile.family_size = 7;
  profile.domain = DomainKind::kProduct;
  profile.columns = {{"brand", ColumnKind::kBrand},
                     {"title", ColumnKind::kName},
                     {"price", ColumnKind::kPrice},
                     {"features", ColumnKind::kDescription}};
  // The paper uses the 395-pair labeled sample as the post-blocking set.
  profile.num_matched_entities = 55;
  profile.num_left_only = 8;
  profile.num_right_only = 8;
  profile.left_noise = 0.08;
  profile.right_noise = 0.24;
  profile.sibling_rate = 1.0;
  profile.blocking_threshold = 0.14;
  profile.vocab_seed = 1007;
  return profile;
}

SynthProfile BeerProfile() {
  SynthProfile profile;
  profile.name = "BeerAdvocate-RateBeer";
  profile.family_size = 7;
  profile.family_desc_share = 0.4;
  profile.domain = DomainKind::kProduct;
  profile.columns = {{"beer_name", ColumnKind::kName},
                     {"brew_factory_name", ColumnKind::kBrand},
                     {"style", ColumnKind::kStyle},
                     {"abv", ColumnKind::kAbv}};
  profile.num_matched_entities = 62;
  profile.num_left_only = 10;
  profile.num_right_only = 10;
  profile.left_noise = 0.08;
  profile.right_noise = 0.26;
  profile.sibling_rate = 1.0;
  profile.blocking_threshold = 0.26;
  profile.vocab_seed = 1008;
  return profile;
}

SynthProfile BabyProductsProfile() {
  SynthProfile profile;
  profile.name = "BuyBuyBaby-BabiesRUs";
  profile.family_size = 4;
  profile.domain = DomainKind::kProduct;
  profile.columns = {{"title", ColumnKind::kName},
                     {"price", ColumnKind::kPrice},
                     {"is_discounted", ColumnKind::kBoolean},
                     {"category", ColumnKind::kCategory},
                     {"company_struct", ColumnKind::kBrand},
                     {"company_free", ColumnKind::kBrand},
                     {"brand", ColumnKind::kBrand},
                     {"weight", ColumnKind::kWeight},
                     {"length", ColumnKind::kDimensions},
                     {"width", ColumnKind::kDimensions},
                     {"height", ColumnKind::kDimensions},
                     {"fabrics", ColumnKind::kStyle},
                     {"colors", ColumnKind::kStyle},
                     {"materials", ColumnKind::kStyle}};
  // Highest class skew of the nine (0.27 in Table 1).
  profile.num_matched_entities = 70;
  profile.num_left_only = 6;
  profile.num_right_only = 6;
  profile.left_noise = 0.10;
  profile.right_noise = 0.30;
  profile.sibling_rate = 0.7;
  profile.null_rate = 0.10;
  profile.blocking_threshold = 0.24;
  profile.vocab_seed = 1009;
  return profile;
}

SynthProfile SocialMediaProfile() {
  SynthProfile profile;
  profile.name = "SocialMedia";
  profile.family_size = 5;
  profile.domain = DomainKind::kSocial;
  profile.columns = {{"name", ColumnKind::kPersonName},
                     {"location", ColumnKind::kCity},
                     {"email", ColumnKind::kEmail},
                     {"occupation", ColumnKind::kOccupation},
                     {"gender", ColumnKind::kGender},
                     {"url", ColumnKind::kUrl}};
  // Employee records (left) vs a much larger profile universe (right).
  profile.num_matched_entities = 500;
  profile.num_left_only = 100;
  profile.num_right_only = 1500;
  profile.left_noise = 0.06;
  profile.right_noise = 0.22;
  profile.sibling_rate = 0.4;
  profile.null_rate = 0.18;
  profile.blocking_threshold = 0.3;
  profile.vocab_seed = 1010;
  return profile;
}

std::vector<SynthProfile> AllPublicProfiles() {
  return {AbtBuyProfile(),        AmazonGoogleProfile(),
          DblpAcmProfile(),       DblpScholarProfile(),
          CoraProfile(),          WalmartAmazonProfile(),
          AmazonBestBuyProfile(), BeerProfile(),
          BabyProductsProfile()};
}

SynthProfile ProfileByName(const std::string& name) {
  for (SynthProfile& profile : AllPublicProfiles()) {
    if (profile.name == name) return profile;
  }
  if (name == "SocialMedia") return SocialMediaProfile();
  ALEM_CHECK(false);  // Unknown dataset name.
}

namespace {

uint64_t Fnv1aMix(uint64_t hash, const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

uint64_t MixString(uint64_t hash, const std::string& s) {
  hash = Fnv1aMix(hash, s.data(), s.size());
  return Fnv1aMix(hash, "|", 1);
}

template <typename T>
uint64_t MixValue(uint64_t hash, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  return Fnv1aMix(hash, &value, sizeof(value));
}

}  // namespace

uint64_t ProfileFingerprint(const SynthProfile& profile) {
  // Every field that influences generated records contributes; doubles are
  // hashed by bit pattern (profile parameters are exact literals, never
  // computed values, so bit equality is the right identity).
  uint64_t hash = 1469598103934665603ULL;
  hash = MixString(hash, profile.name);
  hash = MixValue(hash, static_cast<int32_t>(profile.domain));
  hash = MixValue(hash, static_cast<uint64_t>(profile.columns.size()));
  for (const ColumnSpec& column : profile.columns) {
    hash = MixString(hash, column.name);
    hash = MixValue(hash, static_cast<int32_t>(column.kind));
  }
  hash = MixValue(hash, static_cast<int64_t>(profile.num_matched_entities));
  hash = MixValue(hash, static_cast<int64_t>(profile.num_left_only));
  hash = MixValue(hash, static_cast<int64_t>(profile.num_right_only));
  hash = MixValue(hash, profile.multi_match_rate);
  hash = MixValue(hash, static_cast<int64_t>(profile.max_right_copies));
  hash = MixValue(hash, profile.left_noise);
  hash = MixValue(hash, profile.right_noise);
  hash = MixValue(hash, profile.null_rate);
  hash = MixValue(hash, static_cast<int64_t>(profile.family_size));
  hash = MixValue(hash, profile.family_desc_share);
  hash = MixValue(hash, static_cast<int32_t>(profile.heterogeneous_modes));
  hash = MixValue(hash, profile.sibling_rate);
  hash = MixValue(hash, profile.blocking_threshold);
  hash = MixValue(hash, profile.vocab_seed);
  return hash;
}

}  // namespace alem
