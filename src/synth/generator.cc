#include "synth/generator.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "synth/vocab.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace alem {
namespace {

// Shared context of a group of related-but-distinct entities: a product line
// (same brand/category, common naming stem, shared marketing vocabulary), a
// paper series (same venue and author group, overlapping title stems), or a
// household (same last name and city). Within-family cross pairs survive
// blocking and act as the hard negatives that give the synthetic datasets
// their paper-like class skew.
struct EntityFamily {
  std::string brand, category, style, venue, publisher, city, last_name;
  std::vector<std::string> shared_name_words;   // 1-2 tokens.
  std::vector<std::string> shared_title_words;  // 2-3 tokens.
  std::vector<std::string> description_pool;    // ~10 tokens.
  std::vector<std::string> author_pool;         // 3-5 names.
  double base_price = 100.0;
};

// Canonical (pre-rendering) state of one real-world entity.
struct EntityCore {
  std::string brand, model, category, style;
  std::vector<std::string> name_words;         // Product-name tokens.
  std::vector<std::string> description_words;  // Long-text tokens.
  std::vector<std::string> title_words;        // Publication title tokens.
  std::vector<std::string> authors;            // "first last" strings.
  std::string venue, publisher, editor, city;
  std::string first_name, last_name, occupation, email_domain;
  char gender = 'm';
  int year = 2000;
  int volume = 1;
  int page_start = 1, page_count = 10;
  double price = 100.0, abv = 5.0, weight = 2.0;
  int dim1 = 10, dim2 = 10, dim3 = 10;
  bool discounted = false;
};

std::string PersonName(const Vocabulary& vocab, Rng& rng) {
  return Vocabulary::Choose(vocab.first_names(), rng) + " " +
         Vocabulary::Choose(vocab.last_names(), rng);
}

EntityFamily MakeFamily(const Vocabulary& vocab, Rng& rng) {
  EntityFamily family;
  family.brand = Vocabulary::Choose(vocab.brands(), rng);
  family.category = Vocabulary::Choose(vocab.categories(), rng);
  family.style = Vocabulary::Choose(vocab.categories(), rng);
  family.venue = Vocabulary::Choose(vocab.venues(), rng);
  family.publisher = Vocabulary::Choose(vocab.venues(), rng);
  family.city = Vocabulary::Choose(vocab.cities(), rng);
  family.last_name = Vocabulary::Choose(vocab.last_names(), rng);
  const int name_stem = static_cast<int>(rng.NextInRange(1, 2));
  for (int i = 0; i < name_stem; ++i) {
    family.shared_name_words.push_back(
        Vocabulary::Choose(vocab.filler(), rng));
  }
  const int title_stem = static_cast<int>(rng.NextInRange(2, 3));
  for (int i = 0; i < title_stem; ++i) {
    family.shared_title_words.push_back(
        Vocabulary::Choose(vocab.filler(), rng));
  }
  const int pool = static_cast<int>(rng.NextInRange(8, 12));
  for (int i = 0; i < pool; ++i) {
    family.description_pool.push_back(Vocabulary::Choose(vocab.filler(), rng));
  }
  const int authors = static_cast<int>(rng.NextInRange(3, 5));
  for (int i = 0; i < authors; ++i) {
    family.author_pool.push_back(PersonName(vocab, rng));
  }
  family.base_price = 10.0 + rng.NextDouble() * rng.NextDouble() * 900.0;
  return family;
}

EntityCore MakeEntity(const EntityFamily& family, const Vocabulary& vocab,
                      double family_desc_share, Rng& rng) {
  EntityCore core;
  core.brand = family.brand;
  core.category = family.category;
  core.style = family.style;
  core.model = vocab.MakeModelCode(rng);

  core.name_words = family.shared_name_words;
  const int unique_name = static_cast<int>(rng.NextInRange(1, 2));
  for (int i = 0; i < unique_name; ++i) {
    core.name_words.push_back(Vocabulary::Choose(vocab.filler(), rng));
  }

  const int description_words = static_cast<int>(rng.NextInRange(8, 16));
  for (int i = 0; i < description_words; ++i) {
    // A profile-controlled share of the marketing copy comes from the
    // family's shared vocabulary.
    core.description_words.push_back(
        rng.NextBernoulli(family_desc_share)
            ? Vocabulary::Choose(family.description_pool, rng)
            : Vocabulary::Choose(vocab.filler(), rng));
  }

  core.title_words = family.shared_title_words;
  const int unique_title = static_cast<int>(rng.NextInRange(3, 5));
  for (int i = 0; i < unique_title; ++i) {
    core.title_words.push_back(Vocabulary::Choose(vocab.filler(), rng));
  }

  const int authors = static_cast<int>(
      rng.NextInRange(1, static_cast<int64_t>(family.author_pool.size())));
  std::vector<size_t> picks = rng.SampleWithoutReplacement(
      family.author_pool.size(), static_cast<size_t>(authors));
  for (const size_t pick : picks) {
    core.authors.push_back(family.author_pool[pick]);
  }

  core.venue = family.venue;
  core.publisher = family.publisher;
  core.editor = PersonName(vocab, rng);
  core.city = family.city;
  core.first_name = Vocabulary::Choose(vocab.first_names(), rng);
  core.last_name = family.last_name;
  core.occupation = Vocabulary::Choose(vocab.occupations(), rng);
  core.email_domain = Vocabulary::Choose(vocab.filler(), rng);
  core.gender = rng.NextBernoulli(0.5) ? 'm' : 'f';
  core.year = static_cast<int>(rng.NextInRange(1985, 2015));
  core.volume = static_cast<int>(rng.NextInRange(1, 40));
  core.page_start = static_cast<int>(rng.NextInRange(1, 900));
  core.page_count = static_cast<int>(rng.NextInRange(5, 25));
  core.price = family.base_price * (0.5 + rng.NextDouble());
  core.abv = 3.0 + rng.NextDouble() * 9.0;
  core.weight = 0.5 + rng.NextDouble() * 20.0;
  core.dim1 = static_cast<int>(rng.NextInRange(2, 40));
  core.dim2 = static_cast<int>(rng.NextInRange(2, 40));
  core.dim3 = static_cast<int>(rng.NextInRange(2, 40));
  core.discounted = rng.NextBernoulli(0.3);
  return core;
}

// The hardest negative: identical to `base` except for the model code and
// small numeric shifts (the "same product, different model number" case).
EntityCore MakeSibling(const EntityCore& base, const Vocabulary& vocab,
                       Rng& rng) {
  EntityCore sibling = base;
  sibling.model = vocab.MakeModelCode(rng);
  // Prices of sibling models sit close to the original, overlapping the
  // price jitter of true matches.
  sibling.price = base.price * (1.02 + rng.NextDouble() * 0.12);
  sibling.year = base.year + static_cast<int>(rng.NextInRange(1, 3));
  sibling.volume = base.volume + 1;
  sibling.page_start = static_cast<int>(rng.NextInRange(1, 900));
  sibling.abv = base.abv + 0.5 + rng.NextDouble();
  sibling.dim1 = base.dim1 + static_cast<int>(rng.NextInRange(1, 6));
  // Social domain: the sibling is a *family member* -- same last name, city,
  // and email domain, but a different person (first name, occupation,
  // derived email/url). Copying the person verbatim would create
  // indistinguishable "non-matches" that no learner could ever separate.
  sibling.first_name = Vocabulary::Choose(vocab.first_names(), rng);
  sibling.occupation = Vocabulary::Choose(vocab.occupations(), rng);
  sibling.gender = rng.NextBernoulli(0.5) ? 'm' : 'f';

  // Replace a minority of name/title tokens; keep the rest as shared stem.
  auto mutate_words = [&](std::vector<std::string>& words, double rate) {
    for (std::string& word : words) {
      if (rng.NextBernoulli(rate)) {
        word = Vocabulary::Choose(vocab.filler(), rng);
      }
    }
  };
  mutate_words(sibling.name_words, 0.05);
  mutate_words(sibling.title_words, 0.05);
  for (size_t i = sibling.description_words.size() / 2;
       i < sibling.description_words.size(); ++i) {
    if (rng.NextBernoulli(0.3)) {
      sibling.description_words[i] = Vocabulary::Choose(vocab.filler(), rng);
    }
  }
  return sibling;
}

std::string JoinWords(const std::vector<std::string>& words) {
  return Join(words, " ");
}

std::string CanonicalValue(const EntityCore& core, ColumnKind kind) {
  switch (kind) {
    case ColumnKind::kName:
      return core.brand + " " + JoinWords(core.name_words) + " " + core.model;
    case ColumnKind::kDescription:
      return core.brand + " " + JoinWords(core.name_words) + " " +
             core.model + " " + JoinWords(core.description_words);
    case ColumnKind::kShortText: {
      std::vector<std::string> words(core.name_words);
      const size_t take = std::min<size_t>(6, core.description_words.size());
      words.insert(words.end(), core.description_words.begin(),
                   core.description_words.begin() + static_cast<long>(take));
      return JoinWords(words);
    }
    case ColumnKind::kBrand:
      return core.brand;
    case ColumnKind::kModel:
      return core.model;
    case ColumnKind::kPrice:
      return FormatDouble(core.price, 2);
    case ColumnKind::kCategory:
      return core.category;
    case ColumnKind::kTitle:
      return JoinWords(core.title_words);
    case ColumnKind::kAuthors:
      return Join(core.authors, ", ");
    case ColumnKind::kVenue:
      return core.venue;
    case ColumnKind::kYear:
      return std::to_string(core.year);
    case ColumnKind::kAddress:
      return core.city;
    case ColumnKind::kPublisher:
      return core.publisher;
    case ColumnKind::kEditor:
      return core.editor;
    case ColumnKind::kDate:
      return std::to_string(1 + core.volume % 12) + "/" +
             std::to_string(core.year);
    case ColumnKind::kVolume:
      return std::to_string(core.volume);
    case ColumnKind::kPages:
      return "pp " + std::to_string(core.page_start) + "-" +
             std::to_string(core.page_start + core.page_count);
    case ColumnKind::kPersonName:
      return core.first_name + " " + core.last_name;
    case ColumnKind::kEmail:
      return core.first_name + "." + core.last_name + "@" +
             core.email_domain + ".com";
    case ColumnKind::kOccupation:
      return core.occupation;
    case ColumnKind::kGender:
      return std::string(1, core.gender);
    case ColumnKind::kUrl:
      return "www." + core.last_name + core.first_name.substr(0, 1) + ".com";
    case ColumnKind::kCity:
      return core.city;
    case ColumnKind::kAbv:
      return FormatDouble(core.abv, 1);
    case ColumnKind::kStyle:
      return core.style;
    case ColumnKind::kDimensions:
      return std::to_string(core.dim1) + " x " + std::to_string(core.dim2) +
             " x " + std::to_string(core.dim3);
    case ColumnKind::kWeight:
      return FormatDouble(core.weight, 1) + " lb";
    case ColumnKind::kBoolean:
      return core.discounted ? "1" : "0";
  }
  ALEM_CHECK(false);  // Unreachable: all enum values handled above.
}

bool IsNumericKind(ColumnKind kind) {
  switch (kind) {
    case ColumnKind::kPrice:
    case ColumnKind::kYear:
    case ColumnKind::kVolume:
    case ColumnKind::kAbv:
    case ColumnKind::kWeight:
      return true;
    default:
      return false;
  }
}

// Primary identifying columns are never nulled: losing them would drop the
// matching pair at the blocking stage and make the pair unlabeled forever.
bool IsPrimaryKind(ColumnKind kind) {
  switch (kind) {
    case ColumnKind::kName:
    case ColumnKind::kTitle:
    case ColumnKind::kPersonName:
      return true;
    default:
      return false;
  }
}

void ApplyTypo(std::string& token, Rng& rng) {
  if (token.empty()) return;
  const size_t pos = rng.NextBelow(token.size());
  switch (rng.NextBelow(3)) {
    case 0:  // Substitute.
      token[pos] = static_cast<char>('a' + rng.NextBelow(26));
      break;
    case 1:  // Delete.
      token.erase(pos, 1);
      break;
    default:  // Insert.
      token.insert(pos, 1, static_cast<char>('a' + rng.NextBelow(26)));
      break;
  }
}

std::string PerturbText(const std::string& value, ColumnKind kind,
                        double strength, Rng& rng) {
  std::vector<std::string> tokens = Split(value, ' ');
  // Truncate the tail of long free text (catalog descriptions get cut off).
  if ((kind == ColumnKind::kDescription || kind == ColumnKind::kShortText) &&
      tokens.size() > 4 && rng.NextBernoulli(strength)) {
    const size_t keep = std::max<size_t>(
        4, tokens.size() -
               static_cast<size_t>(rng.NextDouble() * strength *
                                   static_cast<double>(tokens.size())));
    tokens.resize(keep);
  }
  std::vector<std::string> output;
  output.reserve(tokens.size());
  for (std::string& token : tokens) {
    if (token.empty()) continue;
    if (tokens.size() > 2 && rng.NextBernoulli(0.22 * strength)) {
      continue;  // Drop token.
    }
    if (rng.NextBernoulli(0.30 * strength)) ApplyTypo(token, rng);
    if (token.size() > 2 && rng.NextBernoulli(0.10 * strength)) {
      token = token.substr(0, 1) + ".";  // Abbreviate.
    }
    output.push_back(std::move(token));
  }
  if (output.empty()) output.push_back("x");
  // Occasionally swap two adjacent tokens (word-order variation).
  if (output.size() >= 2 && rng.NextBernoulli(0.3 * strength)) {
    const size_t i = rng.NextBelow(output.size() - 1);
    std::swap(output[i], output[i + 1]);
  }
  return Join(output, " ");
}

std::string PerturbNumeric(const std::string& value, ColumnKind kind,
                           double strength, Rng& rng) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str()) return value;
  if (kind == ColumnKind::kYear) {
    // Years occasionally off by one between catalogs.
    if (rng.NextBernoulli(0.3 * strength)) {
      return std::to_string(static_cast<int>(parsed) +
                            (rng.NextBernoulli(0.5) ? 1 : -1));
    }
    return value;
  }
  double result = parsed;
  if (rng.NextBernoulli(strength)) {
    result *= 1.0 + (rng.NextDouble() - 0.5) * 0.08;  // +-4% jitter.
  }
  // Format variation: some catalogs round to integers.
  if (rng.NextBernoulli(0.3 * strength)) {
    return std::to_string(static_cast<long>(std::lround(result)));
  }
  return FormatDouble(result, kind == ColumnKind::kAbv ? 1 : 2);
}

std::string PerturbValue(const std::string& value, ColumnKind kind,
                         double strength, Rng& rng) {
  if (value.empty() || strength <= 0.0) return value;
  if (kind == ColumnKind::kGender || kind == ColumnKind::kBoolean) {
    return value;  // Single-token categorical flags stay intact.
  }
  if (IsNumericKind(kind)) return PerturbNumeric(value, kind, strength, rng);
  return PerturbText(value, kind, strength, rng);
}

// Per-render noise shaping. Heterogeneous modes (Section "substitutions" in
// DESIGN.md) multiply the base noise differently per column family, so
// matched pairs fall into several clusters in similarity space: one cluster
// has mangled names but clean descriptions, another clean names but
// truncated/missing descriptions, a third moderate noise everywhere plus
// strong price jitter. Tree ensembles carve these clusters out; a single
// linear boundary cannot.
struct NoisePlan {
  double primary_mult = 1.0;   // kName/kTitle/kPersonName columns.
  double longtext_mult = 1.0;  // kDescription/kShortText columns.
  double numeric_mult = 1.0;   // Price-like columns.
  double longtext_null = 0.0;  // Extra null probability for long text.
};

NoisePlan PickMode(bool heterogeneous, Rng& rng) {
  NoisePlan plan;
  if (!heterogeneous) return plan;
  switch (rng.NextBelow(3)) {
    case 0:  // Heavy name noise, trustworthy description.
      plan.primary_mult = 3.8;
      plan.longtext_mult = 0.4;
      break;
    case 1:  // Clean name, degraded/missing description.
      plan.primary_mult = 0.35;
      plan.longtext_mult = 2.8;
      plan.longtext_null = 0.55;
      break;
    default:  // Moderate noise everywhere, unreliable numerics.
      plan.primary_mult = 1.4;
      plan.longtext_mult = 1.4;
      plan.numeric_mult = 3.5;
      break;
  }
  return plan;
}

bool IsLongTextKind(ColumnKind kind) {
  return kind == ColumnKind::kDescription || kind == ColumnKind::kShortText;
}

Record RenderRecord(const EntityCore& core,
                    const std::vector<ColumnSpec>& columns, double noise,
                    double null_rate, const NoisePlan& plan, Rng& rng) {
  Record record;
  record.reserve(columns.size());
  for (const ColumnSpec& column : columns) {
    double column_null = null_rate;
    double column_noise = noise;
    if (IsPrimaryKind(column.kind)) {
      column_noise *= plan.primary_mult;
      column_null = 0.0;
    } else if (IsLongTextKind(column.kind)) {
      column_noise *= plan.longtext_mult;
      column_null = std::min(1.0, null_rate + plan.longtext_null);
    } else if (IsNumericKind(column.kind)) {
      column_noise *= plan.numeric_mult;
    }
    column_noise = std::min(1.0, column_noise);
    if (rng.NextBernoulli(column_null)) {
      record.emplace_back();  // Missing value.
      continue;
    }
    record.push_back(PerturbValue(CanonicalValue(core, column.kind),
                                  column.kind, column_noise, rng));
  }
  return record;
}

int Scaled(int count, double scale) {
  return std::max(1, static_cast<int>(std::lround(count * scale)));
}

}  // namespace

EmDataset GenerateDataset(const SynthProfile& profile, uint64_t seed,
                          double scale) {
  ALEM_CHECK(!profile.columns.empty());
  ALEM_CHECK_GT(scale, 0.0);
  ALEM_CHECK_GE(profile.family_size, 1);
  const Vocabulary vocab(profile.vocab_seed);
  Rng rng(seed);

  std::vector<std::string> column_names;
  column_names.reserve(profile.columns.size());
  for (const ColumnSpec& column : profile.columns) {
    column_names.push_back(column.name);
  }
  EmDataset dataset;
  dataset.name = profile.name;
  dataset.left = Table(Schema(column_names));
  dataset.right = Table(Schema(column_names));
  for (size_t c = 0; c < profile.columns.size(); ++c) {
    dataset.matched_columns.push_back(
        MatchedColumns{static_cast<int>(c), static_cast<int>(c)});
  }

  const int matched = Scaled(profile.num_matched_entities, scale);
  const int left_only = Scaled(profile.num_left_only, scale);
  const int right_only = Scaled(profile.num_right_only, scale);
  const int total_entities = matched + left_only + right_only;

  // All entities (matched, left-only, right-only) live in families so every
  // record has plausible hard-negative neighbours.
  EntityFamily family;
  int family_members = 0;
  auto next_entity = [&]() {
    if (family_members == 0) family = MakeFamily(vocab, rng);
    family_members = (family_members + 1) % profile.family_size;
    return MakeEntity(family, vocab, profile.family_desc_share, rng);
  };
  (void)total_entities;

  for (int e = 0; e < matched; ++e) {
    const EntityCore core = next_entity();
    const uint32_t left_index = static_cast<uint32_t>(dataset.left.num_rows());
    dataset.left.AddRow(RenderRecord(core, profile.columns,
                                     profile.left_noise, profile.null_rate,
                                     NoisePlan{}, rng));
    int copies = 1;
    if (profile.max_right_copies > 1 &&
        rng.NextBernoulli(profile.multi_match_rate)) {
      copies = static_cast<int>(rng.NextInRange(2, profile.max_right_copies));
    }
    for (int c = 0; c < copies; ++c) {
      const uint32_t right_index =
          static_cast<uint32_t>(dataset.right.num_rows());
      dataset.right.AddRow(RenderRecord(
          core, profile.columns, profile.right_noise, profile.null_rate,
          PickMode(profile.heterogeneous_modes, rng), rng));
      dataset.truth.AddMatch(RecordPair{left_index, right_index});
    }
    if (rng.NextBernoulli(profile.sibling_rate)) {
      const EntityCore sibling = MakeSibling(core, vocab, rng);
      // Siblings render with *light* noise: a clean-looking, nearly
      // identical non-match is the hardest negative.
      dataset.right.AddRow(RenderRecord(sibling, profile.columns,
                                        profile.left_noise,
                                        profile.null_rate, NoisePlan{}, rng));
    }
  }
  for (int e = 0; e < left_only; ++e) {
    dataset.left.AddRow(RenderRecord(next_entity(), profile.columns,
                                     profile.left_noise, profile.null_rate,
                                     NoisePlan{}, rng));
  }
  for (int e = 0; e < right_only; ++e) {
    dataset.right.AddRow(RenderRecord(
        next_entity(), profile.columns, profile.right_noise,
        profile.null_rate, PickMode(profile.heterogeneous_modes, rng), rng));
  }
  return dataset;
}

}  // namespace alem
