// Deterministic synthetic vocabulary pools.
//
// All strings in the synthetic EM datasets are drawn from pools generated
// from a seeded RNG (pronounceable syllable words, alphanumeric model codes,
// person names), so datasets are fully reproducible and contain no real-world
// data. Pool sizes are deliberately small for brands/categories/venues: token
// collisions across distinct entities are what make post-blocking
// non-matches survive, which controls the class skew the paper reports in
// Table 1.

#ifndef ALEM_SYNTH_VOCAB_H_
#define ALEM_SYNTH_VOCAB_H_

#include <string>
#include <vector>

#include "util/rng.h"

namespace alem {

class Vocabulary {
 public:
  explicit Vocabulary(uint64_t seed);

  // A pronounceable word of 2-4 syllables.
  std::string MakeWord(Rng& rng) const;

  // An alphanumeric model code like "kx450" or "dr-2200".
  std::string MakeModelCode(Rng& rng) const;

  const std::vector<std::string>& brands() const { return brands_; }
  const std::vector<std::string>& categories() const { return categories_; }
  const std::vector<std::string>& filler() const { return filler_; }
  const std::vector<std::string>& first_names() const { return first_names_; }
  const std::vector<std::string>& last_names() const { return last_names_; }
  const std::vector<std::string>& venues() const { return venues_; }
  const std::vector<std::string>& cities() const { return cities_; }
  const std::vector<std::string>& occupations() const { return occupations_; }

  // Uniform choice from a pool.
  static const std::string& Choose(const std::vector<std::string>& pool,
                                   Rng& rng);

 private:
  std::vector<std::string> brands_;
  std::vector<std::string> categories_;
  std::vector<std::string> filler_;
  std::vector<std::string> first_names_;
  std::vector<std::string> last_names_;
  std::vector<std::string> venues_;
  std::vector<std::string> cities_;
  std::vector<std::string> occupations_;
};

}  // namespace alem

#endif  // ALEM_SYNTH_VOCAB_H_
