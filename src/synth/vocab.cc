#include "synth/vocab.h"

#include "util/check.h"

namespace alem {
namespace {

constexpr const char* kOnsets[] = {"b",  "br", "c",  "cr", "d",  "dr",
                                   "f",  "g",  "gr", "h",  "j",  "k",
                                   "l",  "m",  "n",  "p",  "pr", "r",
                                   "s",  "st", "t",  "tr", "v",  "z"};
constexpr const char* kNuclei[] = {"a", "e", "i", "o", "u", "ai", "ea", "io"};
constexpr const char* kCodas[] = {"",  "n", "r", "s", "l", "x",
                                  "t", "m", "k", "d", "v"};

std::string MakeSyllable(Rng& rng) {
  std::string s = kOnsets[rng.NextBelow(std::size(kOnsets))];
  s += kNuclei[rng.NextBelow(std::size(kNuclei))];
  s += kCodas[rng.NextBelow(std::size(kCodas))];
  return s;
}

std::vector<std::string> MakePool(Rng& rng, size_t size, int min_syllables,
                                  int max_syllables) {
  std::vector<std::string> pool;
  pool.reserve(size);
  while (pool.size() < size) {
    std::string word;
    const int syllables =
        static_cast<int>(rng.NextInRange(min_syllables, max_syllables));
    for (int s = 0; s < syllables; ++s) word += MakeSyllable(rng);
    // Keep pools duplicate-free so pool index == distinct concept.
    bool duplicate = false;
    for (const std::string& existing : pool) {
      if (existing == word) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) pool.push_back(std::move(word));
  }
  return pool;
}

}  // namespace

Vocabulary::Vocabulary(uint64_t seed) {
  Rng rng(seed);
  brands_ = MakePool(rng, 18, 2, 3);
  categories_ = MakePool(rng, 14, 2, 3);
  filler_ = MakePool(rng, 220, 1, 3);
  first_names_ = MakePool(rng, 60, 2, 3);
  last_names_ = MakePool(rng, 120, 2, 4);
  venues_ = MakePool(rng, 16, 2, 4);
  cities_ = MakePool(rng, 40, 2, 3);
  occupations_ = MakePool(rng, 30, 2, 4);
}

std::string Vocabulary::MakeWord(Rng& rng) const {
  std::string word;
  const int syllables = static_cast<int>(rng.NextInRange(1, 3));
  for (int s = 0; s < syllables; ++s) word += MakeSyllable(rng);
  return word;
}

std::string Vocabulary::MakeModelCode(Rng& rng) const {
  std::string code;
  const int letters = static_cast<int>(rng.NextInRange(1, 3));
  for (int i = 0; i < letters; ++i) {
    code.push_back(static_cast<char>('a' + rng.NextBelow(26)));
  }
  if (rng.NextBernoulli(0.3)) code.push_back('-');
  const int digits = static_cast<int>(rng.NextInRange(2, 4));
  for (int i = 0; i < digits; ++i) {
    code.push_back(static_cast<char>('0' + rng.NextBelow(10)));
  }
  return code;
}

const std::string& Vocabulary::Choose(const std::vector<std::string>& pool,
                                      Rng& rng) {
  ALEM_CHECK(!pool.empty());
  return pool[rng.NextBelow(pool.size())];
}

}  // namespace alem
