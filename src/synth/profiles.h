// Per-dataset generation profiles.
//
// Each profile replicates one of the paper's evaluation datasets (Table 1):
// the same matched-column schema, the same domain flavor (product vs
// publication vs social media), an approximated class skew, and a hardness
// level chosen so the paper's qualitative outcomes (which classifiers
// struggle, which datasets are "challenging") carry over. Record counts are
// scaled down from the originals so the full benchmark grid runs on a laptop
// core; every generator accepts a scale multiplier.

#ifndef ALEM_SYNTH_PROFILES_H_
#define ALEM_SYNTH_PROFILES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace alem {

// What a column contains; drives canonical value generation + perturbation.
enum class ColumnKind {
  kName,         // Product name: brand + category + model + filler.
  kDescription,  // Long free text containing the name tokens.
  kShortText,    // Shorter free text.
  kBrand,
  kModel,
  kPrice,
  kCategory,
  kTitle,        // Publication title.
  kAuthors,
  kVenue,
  kYear,
  kAddress,
  kPublisher,
  kEditor,
  kDate,
  kVolume,
  kPages,
  kPersonName,
  kEmail,
  kOccupation,
  kGender,
  kUrl,
  kCity,
  kAbv,          // Alcohol-by-volume style small decimal.
  kStyle,
  kDimensions,
  kWeight,
  kBoolean,
};

struct ColumnSpec {
  std::string name;
  ColumnKind kind;
};

enum class DomainKind { kProduct, kPublication, kSocial };

struct SynthProfile {
  std::string name;
  DomainKind domain = DomainKind::kProduct;
  std::vector<ColumnSpec> columns;

  // Entities present in both tables (each yields >= 1 matching pair).
  int num_matched_entities = 300;
  // Entities present in only one table.
  int num_left_only = 50;
  int num_right_only = 50;

  // Fraction of matched entities with multiple right-side copies, and the
  // copy-count cap (models Cora-style citation clusters).
  double multi_match_rate = 0.0;
  int max_right_copies = 1;

  // Perturbation strengths in [0, 1] applied when rendering records.
  double left_noise = 0.08;
  double right_noise = 0.25;
  // Probability that a rendered attribute is nulled out.
  double null_rate = 0.04;

  // Entities are generated in "families" (product lines, paper series,
  // household members) sharing brand/category/title stems and description
  // vocabulary. Within-family cross pairs survive blocking as hard
  // negatives, so the post-blocking class skew is roughly 1 / family_size.
  // 1 disables family structure.
  int family_size = 1;

  // Fraction of description/free-text tokens drawn from the family's shared
  // vocabulary (rather than the global pool). Higher values make
  // within-family non-matches more similar, increasing the number of hard
  // negatives that survive blocking (lowering class skew).
  double family_desc_share = 0.5;

  // When true, right-side renders pick one of three heterogeneous noise
  // modes (heavy-name-noise, heavy-description-noise, or balanced+price
  // jitter). Matches then form multiple clusters in similarity space that no
  // single linear boundary separates from the hard negatives — reproducing
  // the paper's gap between tree ensembles (F1 ~1.0) and linear/NN/rule
  // models (F1 0.2-0.7) on the product datasets.
  bool heterogeneous_modes = false;

  // Fraction of matched entities that also spawn a near-duplicate sibling
  // (same brand/category or title stem, different model/year) placed in the
  // right table as a hard negative.
  double sibling_rate = 0.6;

  // Offline blocking threshold used for this dataset (Section 6).
  double blocking_threshold = 0.1875;

  // Seed for the vocabulary pools (fixed per dataset so the "world" of
  // brands/venues is stable across runs; the record-level seed is a
  // GenerateDataset argument).
  uint64_t vocab_seed = 42;
};

// The five perfect-oracle datasets (Sections 6.1, Table 2).
SynthProfile AbtBuyProfile();
SynthProfile AmazonGoogleProfile();
SynthProfile DblpAcmProfile();
SynthProfile DblpScholarProfile();
SynthProfile CoraProfile();

// The Magellan/DeepMatcher datasets (Sections 6.2, Figs. 15-16).
SynthProfile WalmartAmazonProfile();
SynthProfile AmazonBestBuyProfile();
SynthProfile BeerProfile();
SynthProfile BabyProductsProfile();

// The enterprise/social-media matching task of Fig. 19.
SynthProfile SocialMediaProfile();

// All nine public-dataset profiles, in Table 1 order.
std::vector<SynthProfile> AllPublicProfiles();

// Looks a profile up by its dataset name; aborts on unknown names.
SynthProfile ProfileByName(const std::string& name);

// Stable 64-bit fingerprint over every profile field that influences the
// generated records. The persistent feature-matrix cache mixes it into its
// key, so editing a profile automatically invalidates cached matrices for
// that dataset (see docs/featurization.md).
uint64_t ProfileFingerprint(const SynthProfile& profile);

}  // namespace alem

#endif  // ALEM_SYNTH_PROFILES_H_
