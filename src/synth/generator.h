// Synthetic EM dataset generator.
//
// GenerateDataset materializes a SynthProfile into a concrete EmDataset:
// a universe of canonical entities is generated from seeded vocabulary
// pools; each matched entity is rendered once into the left table (light
// noise) and one-or-more times into the right table (heavier noise:
// typos, token drops, abbreviations, truncation, value jitter, missing
// fields); hard-negative "sibling" entities share brand/category or title
// stems with a matched entity but differ in model/year, so they survive
// blocking and force classifiers to use fine-grained features.
//
// This module is the documented substitution for the paper's public EM
// datasets (see DESIGN.md): active-learning dynamics depend on the induced
// feature distribution, which the generator reproduces, not on the literal
// strings.

#ifndef ALEM_SYNTH_GENERATOR_H_
#define ALEM_SYNTH_GENERATOR_H_

#include <cstdint>

#include "data/dataset.h"
#include "synth/profiles.h"

namespace alem {

// Generates a dataset. `scale` multiplies all entity counts (1.0 keeps the
// profile's laptop-scale defaults). Deterministic in (profile, seed, scale).
EmDataset GenerateDataset(const SynthProfile& profile, uint64_t seed,
                          double scale = 1.0);

}  // namespace alem

#endif  // ALEM_SYNTH_GENERATOR_H_
