#include "sim/similarity.h"

#include "obs/profile.h"
#include "parallel/pool.h"
#include "util/check.h"

namespace alem {
namespace {

// Chunk size for batch evaluation. Large enough that per-chunk overhead
// (span bookkeeping, scratch-buffer warmup in the overrides) is amortized,
// small enough that a few thousand pairs still fan out across workers.
constexpr size_t kBatchGrain = 256;

}  // namespace

void SimilarityFunction::EvaluateBatch(
    std::span<const AttributeProfile* const> left,
    std::span<const AttributeProfile* const> right, float* out) const {
  ALEM_CHECK_EQ(left.size(), right.size());
  if (left.empty()) return;
  // Roofline accounting (obs/profile.h): one pair per output slot, input
  // bytes = both sides' raw text. The scope covers the ParallelFor fan-out,
  // so the region's seconds are the caller-observed batch wall time.
  static obs::profile::Region& profile_region =
      obs::profile::GetRegion("sim.batch");
  obs::profile::ScopedWork profile_scope(profile_region);
  if (profile_scope.engaged()) {
    uint64_t bytes = 0;
    for (size_t i = 0; i < left.size(); ++i) {
      bytes += left[i]->text.size() + right[i]->text.size();
    }
    profile_scope.Add(left.size(), bytes);
  }
  parallel::ParallelFor(
      0, left.size(), kBatchGrain,
      [this, &left, &right, out](size_t begin, size_t end, size_t chunk) {
        (void)chunk;
        EvaluateChunk(left.data(), right.data(), begin, end, out);
      },
      "sim.batch");
}

void SimilarityFunction::EvaluateChunk(const AttributeProfile* const* left,
                                       const AttributeProfile* const* right,
                                       size_t begin, size_t end,
                                       float* out) const {
  for (size_t i = begin; i < end; ++i) {
    out[i] = static_cast<float>(Similarity(*left[i], *right[i]));
  }
}

uint64_t SimRegistryFingerprint() {
  // FNV-1a over the registry version and the ordered function names.
  uint64_t hash = 1469598103934665603ULL;
  auto mix = [&hash](const void* data, size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      hash ^= bytes[i];
      hash *= 1099511628211ULL;
    }
  };
  const uint32_t version = kSimRegistryVersion;
  mix(&version, sizeof(version));
  for (const SimilarityFunction* function : AllSimilarityFunctions()) {
    const std::string_view name = function->name();
    mix(name.data(), name.size());
    mix("|", 1);
  }
  return hash;
}

}  // namespace alem
