// Character q-gram (q=2, padded) similarity functions.

#ifndef ALEM_SIM_QGRAM_BASED_H_
#define ALEM_SIM_QGRAM_BASED_H_

#include <string_view>

#include "sim/similarity.h"

namespace alem {

// Ukkonen q-gram distance, normalized:
// 1 - L1(bigrams(a), bigrams(b)) / (total(a) + total(b)).
class QGramSimilarity final : public SimilarityFunction {
 public:
  std::string_view name() const override { return "QGram"; }

 protected:
  double ComputeNonNull(const AttributeProfile& a,
                        const AttributeProfile& b) const override;
};

// Cosine over bigram count vectors.
class CosineQGramSimilarity final : public SimilarityFunction {
 public:
  std::string_view name() const override { return "CosineQGrams"; }

 protected:
  double ComputeNonNull(const AttributeProfile& a,
                        const AttributeProfile& b) const override;
};

// Simon White coefficient: Dice over bigram multisets,
// 2 * |multiset intersection| / (total(a) + total(b)).
class SimonWhiteSimilarity final : public SimilarityFunction {
 public:
  std::string_view name() const override { return "SimonWhite"; }

 protected:
  double ComputeNonNull(const AttributeProfile& a,
                        const AttributeProfile& b) const override;
};

// Jaccard over distinct bigrams.
class JaccardQGramSimilarity final : public SimilarityFunction {
 public:
  std::string_view name() const override { return "JaccardQGrams"; }

 protected:
  double ComputeNonNull(const AttributeProfile& a,
                        const AttributeProfile& b) const override;
};

}  // namespace alem

#endif  // ALEM_SIM_QGRAM_BASED_H_
