// Character-level (edit/alignment-based) similarity functions.
//
// All O(n*m) dynamic programs operate on a bounded prefix of the input
// (kMaxAlignmentLength characters) so that long free-text attributes such as
// product descriptions do not blow up feature-extraction cost. The public EM
// datasets' discriminative signal for these functions lives in short
// attributes (names, titles), which fit well under the cap.

#ifndef ALEM_SIM_EDIT_BASED_H_
#define ALEM_SIM_EDIT_BASED_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/similarity.h"

namespace alem {

namespace internal_edit {

// Reusable scratch buffers for the alignment dynamic programs and the Jaro
// matched-flag arrays. The scalar similarity path constructs one per call
// (equivalent to the old per-call std::vector allocations); the batch
// kernels construct one per chunk and reuse it across pairs, which is what
// hoists the allocation cost out of the pair loop. Every function that
// takes an EditScratch fully (re)initializes the rows it reads via
// assign(), so a reused scratch computes bitwise-identical results to a
// fresh one.
struct EditScratch {
  std::vector<int> int_rows[3];
  std::vector<double> dbl_rows[4];
  std::vector<uint8_t> flags[2];
};

}  // namespace internal_edit

// Maximum prefix length considered by the quadratic alignment functions.
inline constexpr size_t kMaxAlignmentLength = 64;

// Exact string equality on the normalized text (Simmetrics "Identity").
class IdentitySimilarity final : public SimilarityFunction {
 public:
  std::string_view name() const override { return "Identity"; }

 protected:
  double ComputeNonNull(const AttributeProfile& a,
                        const AttributeProfile& b) const override;
};

// 1 - levenshtein(a, b) / max(|a|, |b|).
class LevenshteinSimilarity final : public SimilarityFunction {
 public:
  std::string_view name() const override { return "Levenshtein"; }

 protected:
  double ComputeNonNull(const AttributeProfile& a,
                        const AttributeProfile& b) const override;
  void EvaluateChunk(const AttributeProfile* const* left,
                     const AttributeProfile* const* right, size_t begin,
                     size_t end, float* out) const override;
};

// Optimal-string-alignment variant of Damerau-Levenshtein (adjacent
// transpositions cost 1), normalized like Levenshtein.
class DamerauLevenshteinSimilarity final : public SimilarityFunction {
 public:
  std::string_view name() const override { return "DamerauLevenshtein"; }

 protected:
  double ComputeNonNull(const AttributeProfile& a,
                        const AttributeProfile& b) const override;
  void EvaluateChunk(const AttributeProfile* const* left,
                     const AttributeProfile* const* right, size_t begin,
                     size_t end, float* out) const override;
};

// Jaro similarity.
class JaroSimilarity final : public SimilarityFunction {
 public:
  std::string_view name() const override { return "Jaro"; }

 protected:
  double ComputeNonNull(const AttributeProfile& a,
                        const AttributeProfile& b) const override;
  void EvaluateChunk(const AttributeProfile* const* left,
                     const AttributeProfile* const* right, size_t begin,
                     size_t end, float* out) const override;
};

// Jaro-Winkler with the standard prefix scale 0.1 and max prefix 4.
class JaroWinklerSimilarity final : public SimilarityFunction {
 public:
  std::string_view name() const override { return "JaroWinkler"; }

 protected:
  double ComputeNonNull(const AttributeProfile& a,
                        const AttributeProfile& b) const override;
  void EvaluateChunk(const AttributeProfile* const* left,
                     const AttributeProfile* const* right, size_t begin,
                     size_t end, float* out) const override;
};

// Global alignment (Needleman-Wunsch) with match +1, mismatch -1, gap -1,
// normalized to [0, 1] by (score + maxLen) / (2 * maxLen).
class NeedlemanWunschSimilarity final : public SimilarityFunction {
 public:
  std::string_view name() const override { return "NeedlemanWunsch"; }

 protected:
  double ComputeNonNull(const AttributeProfile& a,
                        const AttributeProfile& b) const override;
  void EvaluateChunk(const AttributeProfile* const* left,
                     const AttributeProfile* const* right, size_t begin,
                     size_t end, float* out) const override;
};

// Local alignment (Smith-Waterman) with match +1, mismatch -1, gap -0.5,
// normalized by min(|a|, |b|).
class SmithWatermanSimilarity final : public SimilarityFunction {
 public:
  std::string_view name() const override { return "SmithWaterman"; }

 protected:
  double ComputeNonNull(const AttributeProfile& a,
                        const AttributeProfile& b) const override;
  void EvaluateChunk(const AttributeProfile* const* left,
                     const AttributeProfile* const* right, size_t begin,
                     size_t end, float* out) const override;
};

// Smith-Waterman with Gotoh affine gaps (open -0.5, extend -0.25),
// normalized by min(|a|, |b|).
class SmithWatermanGotohSimilarity final : public SimilarityFunction {
 public:
  std::string_view name() const override { return "SmithWatermanGotoh"; }

 protected:
  double ComputeNonNull(const AttributeProfile& a,
                        const AttributeProfile& b) const override;
  void EvaluateChunk(const AttributeProfile* const* left,
                     const AttributeProfile* const* right, size_t begin,
                     size_t end, float* out) const override;
};

// Longest common subsequence: 2 * lcs / (|a| + |b|).
class LongestCommonSubsequenceSimilarity final : public SimilarityFunction {
 public:
  std::string_view name() const override {
    return "LongestCommonSubsequence";
  }

 protected:
  double ComputeNonNull(const AttributeProfile& a,
                        const AttributeProfile& b) const override;
  void EvaluateChunk(const AttributeProfile* const* left,
                     const AttributeProfile* const* right, size_t begin,
                     size_t end, float* out) const override;
};

// Longest common contiguous substring: lcstr / max(|a|, |b|).
class LongestCommonSubstringSimilarity final : public SimilarityFunction {
 public:
  std::string_view name() const override { return "LongestCommonSubstring"; }

 protected:
  double ComputeNonNull(const AttributeProfile& a,
                        const AttributeProfile& b) const override;
  void EvaluateChunk(const AttributeProfile* const* left,
                     const AttributeProfile* const* right, size_t begin,
                     size_t end, float* out) const override;
};

namespace internal_edit {

// Raw Jaro similarity on string views (shared with Monge-Elkan's inner
// metric). Exposed for tests.
double JaroRaw(std::string_view a, std::string_view b);

// Raw Jaro-Winkler on string views.
double JaroWinklerRaw(std::string_view a, std::string_view b);

// Raw Jaro-Winkler using caller-provided scratch (Monge-Elkan's batch
// kernel reuses one scratch across its whole token-pair inner loop).
double JaroWinklerRawWith(std::string_view a, std::string_view b,
                          EditScratch& scratch);

// Raw Levenshtein distance (uncapped). Exposed for tests.
int LevenshteinDistance(std::string_view a, std::string_view b);

}  // namespace internal_edit

}  // namespace alem

#endif  // ALEM_SIM_EDIT_BASED_H_
