#include "sim/edit_based.h"

#include <algorithm>
#include <vector>

#include "kernels/backend.h"

namespace alem {
namespace {

using internal_edit::EditScratch;

std::string_view Capped(const std::string& s) {
  return std::string_view(s).substr(0, kMaxAlignmentLength);
}

// ---- Scratch-based cores -----------------------------------------------
//
// Each dynamic program below is the single implementation shared by the
// scalar path (fresh EditScratch per call) and the batch kernels (one
// EditScratch per chunk). Every row a program reads is (re)initialized via
// assign() before use, so buffer reuse cannot change results.

int LevenshteinDistanceWith(std::string_view a, std::string_view b,
                            EditScratch& scratch) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return static_cast<int>(m);
  if (m == 0) return static_cast<int>(n);

  std::vector<int>& previous = scratch.int_rows[0];
  std::vector<int>& current = scratch.int_rows[1];
  previous.assign(m + 1, 0);
  current.assign(m + 1, 0);
  for (size_t j = 0; j <= m; ++j) previous[j] = static_cast<int>(j);
  // The row update is backend-dispatched (kernels::Active()); every
  // backend computes the exact integer DP row, so results are identical.
  const kernels::KernelOps& ops = kernels::Active();
  for (size_t i = 1; i <= n; ++i) {
    ops.lev_row(previous.data(), current.data(), b.data(), m, a[i - 1],
                static_cast<int>(i));
    std::swap(previous, current);
  }
  return previous[m];
}

double JaroRawWith(std::string_view a, std::string_view b,
                   EditScratch& scratch) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;

  const size_t window =
      std::max<size_t>(1, std::max(n, m) / 2) - 1;  // Match window.
  std::vector<uint8_t>& a_matched = scratch.flags[0];
  std::vector<uint8_t>& b_matched = scratch.flags[1];
  a_matched.assign(n, 0);
  b_matched.assign(m, 0);

  // The first-match window scan is backend-dispatched (kernels::Active());
  // it is exact integer work, so every backend finds the same match set.
  const kernels::KernelOps& ops = kernels::Active();
  size_t matches = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t lo = i > window ? i - window : 0;
    const size_t hi = std::min(m, i + window + 1);
    const size_t j = ops.jaro_scan(b.data(), b_matched.data(), lo, hi, a[i]);
    if (j < hi) {
      a_matched[i] = 1;
      b_matched[j] = 1;
      ++matches;
    }
  }
  if (matches == 0) return 0.0;

  size_t transpositions = 0;
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    if (a_matched[i] == 0) continue;
    while (b_matched[k] == 0) ++k;
    if (a[i] != b[k]) ++transpositions;
    ++k;
  }
  const double dm = static_cast<double>(matches);
  return (dm / n + dm / m + (dm - transpositions / 2.0) / dm) / 3.0;
}

double LevenshteinSim(const AttributeProfile& a, const AttributeProfile& b,
                      EditScratch& scratch) {
  const std::string_view sa = Capped(a.text);
  const std::string_view sb = Capped(b.text);
  const size_t max_len = std::max(sa.size(), sb.size());
  if (max_len == 0) return 1.0;
  const int distance = LevenshteinDistanceWith(sa, sb, scratch);
  return 1.0 - static_cast<double>(distance) / static_cast<double>(max_len);
}

double DamerauLevenshteinSim(const AttributeProfile& a,
                             const AttributeProfile& b,
                             EditScratch& scratch) {
  const std::string_view sa = Capped(a.text);
  const std::string_view sb = Capped(b.text);
  const size_t n = sa.size();
  const size_t m = sb.size();
  const size_t max_len = std::max(n, m);
  if (max_len == 0) return 1.0;
  if (n == 0 || m == 0) {
    return 1.0 - static_cast<double>(std::max(n, m)) /
                     static_cast<double>(max_len);
  }

  // Optimal string alignment: three rolling rows.
  std::vector<int>& two_back = scratch.int_rows[0];
  std::vector<int>& previous = scratch.int_rows[1];
  std::vector<int>& current = scratch.int_rows[2];
  two_back.assign(m + 1, 0);
  previous.assign(m + 1, 0);
  current.assign(m + 1, 0);
  for (size_t j = 0; j <= m; ++j) previous[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    current[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      const int cost = sa[i - 1] == sb[j - 1] ? 0 : 1;
      int best = std::min({previous[j] + 1, current[j - 1] + 1,
                           previous[j - 1] + cost});
      if (i > 1 && j > 1 && sa[i - 1] == sb[j - 2] && sa[i - 2] == sb[j - 1]) {
        best = std::min(best, two_back[j - 2] + 1);
      }
      current[j] = best;
    }
    std::swap(two_back, previous);
    std::swap(previous, current);
  }
  return 1.0 -
         static_cast<double>(previous[m]) / static_cast<double>(max_len);
}

double JaroSim(const AttributeProfile& a, const AttributeProfile& b,
               EditScratch& scratch) {
  return JaroRawWith(a.text, b.text, scratch);
}

double JaroWinklerSim(const AttributeProfile& a, const AttributeProfile& b,
                      EditScratch& scratch) {
  return internal_edit::JaroWinklerRawWith(a.text, b.text, scratch);
}

double NeedlemanWunschSim(const AttributeProfile& a, const AttributeProfile& b,
                          EditScratch& scratch) {
  const std::string_view sa = Capped(a.text);
  const std::string_view sb = Capped(b.text);
  const size_t n = sa.size();
  const size_t m = sb.size();
  const double max_len = static_cast<double>(std::max(n, m));
  if (max_len == 0) return 1.0;

  constexpr double kGap = -1.0;
  std::vector<double>& previous = scratch.dbl_rows[0];
  std::vector<double>& current = scratch.dbl_rows[1];
  previous.assign(m + 1, 0.0);
  current.assign(m + 1, 0.0);
  for (size_t j = 0; j <= m; ++j) previous[j] = kGap * static_cast<double>(j);
  for (size_t i = 1; i <= n; ++i) {
    current[0] = kGap * static_cast<double>(i);
    for (size_t j = 1; j <= m; ++j) {
      const double match = sa[i - 1] == sb[j - 1] ? 1.0 : -1.0;
      current[j] = std::max({previous[j - 1] + match, previous[j] + kGap,
                             current[j - 1] + kGap});
    }
    std::swap(previous, current);
  }
  const double score = previous[m];
  return (score + max_len) / (2.0 * max_len);
}

double SmithWatermanSim(const AttributeProfile& a, const AttributeProfile& b,
                        EditScratch& scratch) {
  const std::string_view sa = Capped(a.text);
  const std::string_view sb = Capped(b.text);
  const size_t n = sa.size();
  const size_t m = sb.size();
  const double min_len = static_cast<double>(std::min(n, m));
  if (min_len == 0) return n == m ? 1.0 : 0.0;

  constexpr double kGap = -0.5;
  std::vector<double>& previous = scratch.dbl_rows[0];
  std::vector<double>& current = scratch.dbl_rows[1];
  previous.assign(m + 1, 0.0);
  current.assign(m + 1, 0.0);
  double best = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    current[0] = 0.0;
    for (size_t j = 1; j <= m; ++j) {
      const double match = sa[i - 1] == sb[j - 1] ? 1.0 : -1.0;
      current[j] = std::max({0.0, previous[j - 1] + match, previous[j] + kGap,
                             current[j - 1] + kGap});
      best = std::max(best, current[j]);
    }
    std::swap(previous, current);
  }
  return best / min_len;
}

double SmithWatermanGotohSim(const AttributeProfile& a,
                             const AttributeProfile& b,
                             EditScratch& scratch) {
  const std::string_view sa = Capped(a.text);
  const std::string_view sb = Capped(b.text);
  const size_t n = sa.size();
  const size_t m = sb.size();
  const double min_len = static_cast<double>(std::min(n, m));
  if (min_len == 0) return n == m ? 1.0 : 0.0;

  constexpr double kGapOpen = -0.5;
  constexpr double kGapExtend = -0.25;
  constexpr double kNegInf = -1e30;

  // H: best local alignment score ending at (i, j).
  // E: best ending with a gap in `a` (horizontal); F: gap in `b` (vertical).
  std::vector<double>& h_prev = scratch.dbl_rows[0];
  std::vector<double>& h_cur = scratch.dbl_rows[1];
  std::vector<double>& f_prev = scratch.dbl_rows[2];
  std::vector<double>& f_cur = scratch.dbl_rows[3];
  h_prev.assign(m + 1, 0.0);
  h_cur.assign(m + 1, 0.0);
  f_prev.assign(m + 1, kNegInf);
  f_cur.assign(m + 1, kNegInf);
  double best = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    double e = kNegInf;
    h_cur[0] = 0.0;
    for (size_t j = 1; j <= m; ++j) {
      e = std::max(e + kGapExtend, h_cur[j - 1] + kGapOpen);
      f_cur[j] = std::max(f_prev[j] + kGapExtend, h_prev[j] + kGapOpen);
      const double match = sa[i - 1] == sb[j - 1] ? 1.0 : -1.0;
      h_cur[j] = std::max({0.0, h_prev[j - 1] + match, e, f_cur[j]});
      best = std::max(best, h_cur[j]);
    }
    std::swap(h_prev, h_cur);
    std::swap(f_prev, f_cur);
  }
  return best / min_len;
}

double LongestCommonSubsequenceSim(const AttributeProfile& a,
                                   const AttributeProfile& b,
                                   EditScratch& scratch) {
  const std::string_view sa = Capped(a.text);
  const std::string_view sb = Capped(b.text);
  const size_t n = sa.size();
  const size_t m = sb.size();
  if (n + m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;

  std::vector<int>& previous = scratch.int_rows[0];
  std::vector<int>& current = scratch.int_rows[1];
  previous.assign(m + 1, 0);
  current.assign(m + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      current[j] = sa[i - 1] == sb[j - 1]
                       ? previous[j - 1] + 1
                       : std::max(previous[j], current[j - 1]);
    }
    std::swap(previous, current);
  }
  return 2.0 * previous[m] / static_cast<double>(n + m);
}

double LongestCommonSubstringSim(const AttributeProfile& a,
                                 const AttributeProfile& b,
                                 EditScratch& scratch) {
  const std::string_view sa = Capped(a.text);
  const std::string_view sb = Capped(b.text);
  const size_t n = sa.size();
  const size_t m = sb.size();
  const size_t max_len = std::max(n, m);
  if (max_len == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;

  std::vector<int>& previous = scratch.int_rows[0];
  std::vector<int>& current = scratch.int_rows[1];
  previous.assign(m + 1, 0);
  current.assign(m + 1, 0);
  int best = 0;
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      current[j] = sa[i - 1] == sb[j - 1] ? previous[j - 1] + 1 : 0;
      best = std::max(best, current[j]);
    }
    std::swap(previous, current);
  }
  return static_cast<double>(best) / static_cast<double>(max_len);
}

// Runs `sim` over one batch chunk with a single shared scratch, applying
// the same null-check + clamp + float cast as the scalar Similarity() path.
template <typename Sim>
void ChunkWith(const AttributeProfile* const* left,
               const AttributeProfile* const* right, size_t begin, size_t end,
               float* out, Sim sim) {
  EditScratch scratch;
  for (size_t i = begin; i < end; ++i) {
    const AttributeProfile& a = *left[i];
    const AttributeProfile& b = *right[i];
    out[i] = (a.is_null || b.is_null)
                 ? 0.0f
                 : static_cast<float>(
                       std::clamp(sim(a, b, scratch), 0.0, 1.0));
  }
}

}  // namespace

namespace internal_edit {

int LevenshteinDistance(std::string_view a, std::string_view b) {
  EditScratch scratch;
  return LevenshteinDistanceWith(a, b, scratch);
}

double JaroRaw(std::string_view a, std::string_view b) {
  EditScratch scratch;
  return JaroRawWith(a, b, scratch);
}

double JaroWinklerRawWith(std::string_view a, std::string_view b,
                          EditScratch& scratch) {
  const double jaro = JaroRawWith(a, b, scratch);
  constexpr double kPrefixScale = 0.1;
  constexpr size_t kMaxPrefix = 4;
  size_t prefix = 0;
  const size_t limit = std::min({a.size(), b.size(), kMaxPrefix});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * kPrefixScale * (1.0 - jaro);
}

double JaroWinklerRaw(std::string_view a, std::string_view b) {
  EditScratch scratch;
  return JaroWinklerRawWith(a, b, scratch);
}

}  // namespace internal_edit

double IdentitySimilarity::ComputeNonNull(const AttributeProfile& a,
                                          const AttributeProfile& b) const {
  return a.text == b.text ? 1.0 : 0.0;
}

double LevenshteinSimilarity::ComputeNonNull(const AttributeProfile& a,
                                             const AttributeProfile& b) const {
  EditScratch scratch;
  return LevenshteinSim(a, b, scratch);
}

void LevenshteinSimilarity::EvaluateChunk(const AttributeProfile* const* left,
                                          const AttributeProfile* const* right,
                                          size_t begin, size_t end,
                                          float* out) const {
  ChunkWith(left, right, begin, end, out, LevenshteinSim);
}

double DamerauLevenshteinSimilarity::ComputeNonNull(
    const AttributeProfile& a, const AttributeProfile& b) const {
  EditScratch scratch;
  return DamerauLevenshteinSim(a, b, scratch);
}

void DamerauLevenshteinSimilarity::EvaluateChunk(
    const AttributeProfile* const* left, const AttributeProfile* const* right,
    size_t begin, size_t end, float* out) const {
  ChunkWith(left, right, begin, end, out, DamerauLevenshteinSim);
}

double JaroSimilarity::ComputeNonNull(const AttributeProfile& a,
                                      const AttributeProfile& b) const {
  EditScratch scratch;
  return JaroSim(a, b, scratch);
}

void JaroSimilarity::EvaluateChunk(const AttributeProfile* const* left,
                                   const AttributeProfile* const* right,
                                   size_t begin, size_t end,
                                   float* out) const {
  ChunkWith(left, right, begin, end, out, JaroSim);
}

double JaroWinklerSimilarity::ComputeNonNull(const AttributeProfile& a,
                                             const AttributeProfile& b) const {
  EditScratch scratch;
  return JaroWinklerSim(a, b, scratch);
}

void JaroWinklerSimilarity::EvaluateChunk(const AttributeProfile* const* left,
                                          const AttributeProfile* const* right,
                                          size_t begin, size_t end,
                                          float* out) const {
  ChunkWith(left, right, begin, end, out, JaroWinklerSim);
}

double NeedlemanWunschSimilarity::ComputeNonNull(
    const AttributeProfile& a, const AttributeProfile& b) const {
  EditScratch scratch;
  return NeedlemanWunschSim(a, b, scratch);
}

void NeedlemanWunschSimilarity::EvaluateChunk(
    const AttributeProfile* const* left, const AttributeProfile* const* right,
    size_t begin, size_t end, float* out) const {
  ChunkWith(left, right, begin, end, out, NeedlemanWunschSim);
}

double SmithWatermanSimilarity::ComputeNonNull(
    const AttributeProfile& a, const AttributeProfile& b) const {
  EditScratch scratch;
  return SmithWatermanSim(a, b, scratch);
}

void SmithWatermanSimilarity::EvaluateChunk(
    const AttributeProfile* const* left, const AttributeProfile* const* right,
    size_t begin, size_t end, float* out) const {
  ChunkWith(left, right, begin, end, out, SmithWatermanSim);
}

double SmithWatermanGotohSimilarity::ComputeNonNull(
    const AttributeProfile& a, const AttributeProfile& b) const {
  EditScratch scratch;
  return SmithWatermanGotohSim(a, b, scratch);
}

void SmithWatermanGotohSimilarity::EvaluateChunk(
    const AttributeProfile* const* left, const AttributeProfile* const* right,
    size_t begin, size_t end, float* out) const {
  ChunkWith(left, right, begin, end, out, SmithWatermanGotohSim);
}

double LongestCommonSubsequenceSimilarity::ComputeNonNull(
    const AttributeProfile& a, const AttributeProfile& b) const {
  EditScratch scratch;
  return LongestCommonSubsequenceSim(a, b, scratch);
}

void LongestCommonSubsequenceSimilarity::EvaluateChunk(
    const AttributeProfile* const* left, const AttributeProfile* const* right,
    size_t begin, size_t end, float* out) const {
  ChunkWith(left, right, begin, end, out, LongestCommonSubsequenceSim);
}

double LongestCommonSubstringSimilarity::ComputeNonNull(
    const AttributeProfile& a, const AttributeProfile& b) const {
  EditScratch scratch;
  return LongestCommonSubstringSim(a, b, scratch);
}

void LongestCommonSubstringSimilarity::EvaluateChunk(
    const AttributeProfile* const* left, const AttributeProfile* const* right,
    size_t begin, size_t end, float* out) const {
  ChunkWith(left, right, begin, end, out, LongestCommonSubstringSim);
}

}  // namespace alem
