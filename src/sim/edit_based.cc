#include "sim/edit_based.h"

#include <algorithm>
#include <vector>

namespace alem {
namespace {

std::string_view Capped(const std::string& s) {
  return std::string_view(s).substr(0, kMaxAlignmentLength);
}

}  // namespace

namespace internal_edit {

int LevenshteinDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return static_cast<int>(m);
  if (m == 0) return static_cast<int>(n);

  std::vector<int> previous(m + 1);
  std::vector<int> current(m + 1);
  for (size_t j = 0; j <= m; ++j) previous[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    current[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      const int substitution = previous[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      current[j] =
          std::min({previous[j] + 1, current[j - 1] + 1, substitution});
    }
    std::swap(previous, current);
  }
  return previous[m];
}

double JaroRaw(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;

  const size_t window =
      std::max<size_t>(1, std::max(n, m) / 2) - 1;  // Match window.
  std::vector<bool> a_matched(n, false);
  std::vector<bool> b_matched(m, false);

  size_t matches = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t lo = i > window ? i - window : 0;
    const size_t hi = std::min(m, i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (!b_matched[j] && a[i] == b[j]) {
        a_matched[i] = true;
        b_matched[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;

  size_t transpositions = 0;
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[k]) ++k;
    if (a[i] != b[k]) ++transpositions;
    ++k;
  }
  const double dm = static_cast<double>(matches);
  return (dm / n + dm / m + (dm - transpositions / 2.0) / dm) / 3.0;
}

double JaroWinklerRaw(std::string_view a, std::string_view b) {
  const double jaro = JaroRaw(a, b);
  constexpr double kPrefixScale = 0.1;
  constexpr size_t kMaxPrefix = 4;
  size_t prefix = 0;
  const size_t limit = std::min({a.size(), b.size(), kMaxPrefix});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * kPrefixScale * (1.0 - jaro);
}

}  // namespace internal_edit

double IdentitySimilarity::ComputeNonNull(const AttributeProfile& a,
                                          const AttributeProfile& b) const {
  return a.text == b.text ? 1.0 : 0.0;
}

double LevenshteinSimilarity::ComputeNonNull(const AttributeProfile& a,
                                             const AttributeProfile& b) const {
  const std::string_view sa = Capped(a.text);
  const std::string_view sb = Capped(b.text);
  const size_t max_len = std::max(sa.size(), sb.size());
  if (max_len == 0) return 1.0;
  const int distance = internal_edit::LevenshteinDistance(sa, sb);
  return 1.0 - static_cast<double>(distance) / static_cast<double>(max_len);
}

double DamerauLevenshteinSimilarity::ComputeNonNull(
    const AttributeProfile& a, const AttributeProfile& b) const {
  const std::string_view sa = Capped(a.text);
  const std::string_view sb = Capped(b.text);
  const size_t n = sa.size();
  const size_t m = sb.size();
  const size_t max_len = std::max(n, m);
  if (max_len == 0) return 1.0;
  if (n == 0 || m == 0) {
    return 1.0 - static_cast<double>(std::max(n, m)) /
                     static_cast<double>(max_len);
  }

  // Optimal string alignment: three rolling rows.
  std::vector<int> two_back(m + 1);
  std::vector<int> previous(m + 1);
  std::vector<int> current(m + 1);
  for (size_t j = 0; j <= m; ++j) previous[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    current[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      const int cost = sa[i - 1] == sb[j - 1] ? 0 : 1;
      int best = std::min({previous[j] + 1, current[j - 1] + 1,
                           previous[j - 1] + cost});
      if (i > 1 && j > 1 && sa[i - 1] == sb[j - 2] && sa[i - 2] == sb[j - 1]) {
        best = std::min(best, two_back[j - 2] + 1);
      }
      current[j] = best;
    }
    std::swap(two_back, previous);
    std::swap(previous, current);
  }
  return 1.0 -
         static_cast<double>(previous[m]) / static_cast<double>(max_len);
}

double JaroSimilarity::ComputeNonNull(const AttributeProfile& a,
                                      const AttributeProfile& b) const {
  return internal_edit::JaroRaw(a.text, b.text);
}

double JaroWinklerSimilarity::ComputeNonNull(const AttributeProfile& a,
                                             const AttributeProfile& b) const {
  return internal_edit::JaroWinklerRaw(a.text, b.text);
}

double NeedlemanWunschSimilarity::ComputeNonNull(
    const AttributeProfile& a, const AttributeProfile& b) const {
  const std::string_view sa = Capped(a.text);
  const std::string_view sb = Capped(b.text);
  const size_t n = sa.size();
  const size_t m = sb.size();
  const double max_len = static_cast<double>(std::max(n, m));
  if (max_len == 0) return 1.0;

  constexpr double kGap = -1.0;
  std::vector<double> previous(m + 1);
  std::vector<double> current(m + 1);
  for (size_t j = 0; j <= m; ++j) previous[j] = kGap * static_cast<double>(j);
  for (size_t i = 1; i <= n; ++i) {
    current[0] = kGap * static_cast<double>(i);
    for (size_t j = 1; j <= m; ++j) {
      const double match = sa[i - 1] == sb[j - 1] ? 1.0 : -1.0;
      current[j] = std::max({previous[j - 1] + match, previous[j] + kGap,
                             current[j - 1] + kGap});
    }
    std::swap(previous, current);
  }
  const double score = previous[m];
  return (score + max_len) / (2.0 * max_len);
}

double SmithWatermanSimilarity::ComputeNonNull(
    const AttributeProfile& a, const AttributeProfile& b) const {
  const std::string_view sa = Capped(a.text);
  const std::string_view sb = Capped(b.text);
  const size_t n = sa.size();
  const size_t m = sb.size();
  const double min_len = static_cast<double>(std::min(n, m));
  if (min_len == 0) return n == m ? 1.0 : 0.0;

  constexpr double kGap = -0.5;
  std::vector<double> previous(m + 1, 0.0);
  std::vector<double> current(m + 1, 0.0);
  double best = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    current[0] = 0.0;
    for (size_t j = 1; j <= m; ++j) {
      const double match = sa[i - 1] == sb[j - 1] ? 1.0 : -1.0;
      current[j] = std::max({0.0, previous[j - 1] + match, previous[j] + kGap,
                             current[j - 1] + kGap});
      best = std::max(best, current[j]);
    }
    std::swap(previous, current);
  }
  return best / min_len;
}

double SmithWatermanGotohSimilarity::ComputeNonNull(
    const AttributeProfile& a, const AttributeProfile& b) const {
  const std::string_view sa = Capped(a.text);
  const std::string_view sb = Capped(b.text);
  const size_t n = sa.size();
  const size_t m = sb.size();
  const double min_len = static_cast<double>(std::min(n, m));
  if (min_len == 0) return n == m ? 1.0 : 0.0;

  constexpr double kGapOpen = -0.5;
  constexpr double kGapExtend = -0.25;
  constexpr double kNegInf = -1e30;

  // H: best local alignment score ending at (i, j).
  // E: best ending with a gap in `a` (horizontal); F: gap in `b` (vertical).
  std::vector<double> h_prev(m + 1, 0.0), h_cur(m + 1, 0.0);
  std::vector<double> f_prev(m + 1, kNegInf), f_cur(m + 1, kNegInf);
  double best = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    double e = kNegInf;
    h_cur[0] = 0.0;
    for (size_t j = 1; j <= m; ++j) {
      e = std::max(e + kGapExtend, h_cur[j - 1] + kGapOpen);
      f_cur[j] = std::max(f_prev[j] + kGapExtend, h_prev[j] + kGapOpen);
      const double match = sa[i - 1] == sb[j - 1] ? 1.0 : -1.0;
      h_cur[j] = std::max({0.0, h_prev[j - 1] + match, e, f_cur[j]});
      best = std::max(best, h_cur[j]);
    }
    std::swap(h_prev, h_cur);
    std::swap(f_prev, f_cur);
  }
  return best / min_len;
}

double LongestCommonSubsequenceSimilarity::ComputeNonNull(
    const AttributeProfile& a, const AttributeProfile& b) const {
  const std::string_view sa = Capped(a.text);
  const std::string_view sb = Capped(b.text);
  const size_t n = sa.size();
  const size_t m = sb.size();
  if (n + m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;

  std::vector<int> previous(m + 1, 0);
  std::vector<int> current(m + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      current[j] = sa[i - 1] == sb[j - 1]
                       ? previous[j - 1] + 1
                       : std::max(previous[j], current[j - 1]);
    }
    std::swap(previous, current);
  }
  return 2.0 * previous[m] / static_cast<double>(n + m);
}

double LongestCommonSubstringSimilarity::ComputeNonNull(
    const AttributeProfile& a, const AttributeProfile& b) const {
  const std::string_view sa = Capped(a.text);
  const std::string_view sb = Capped(b.text);
  const size_t n = sa.size();
  const size_t m = sb.size();
  const size_t max_len = std::max(n, m);
  if (max_len == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;

  std::vector<int> previous(m + 1, 0);
  std::vector<int> current(m + 1, 0);
  int best = 0;
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      current[j] = sa[i - 1] == sb[j - 1] ? previous[j - 1] + 1 : 0;
      best = std::max(best, current[j]);
    }
    std::swap(previous, current);
  }
  return static_cast<double>(best) / static_cast<double>(max_len);
}

}  // namespace alem
