#include "sim/similarity.h"

#include <memory>

#include "sim/edit_based.h"
#include "sim/qgram_based.h"
#include "sim/token_based.h"
#include "util/check.h"

namespace alem {

const std::vector<const SimilarityFunction*>& AllSimilarityFunctions() {
  // Function-local static reference: initialized once, never destroyed
  // (trivially-destructible static storage per the style guide).
  static const auto& registry = *new std::vector<const SimilarityFunction*>{
      new IdentitySimilarity(),                  // 0
      new LevenshteinSimilarity(),               // 1
      new DamerauLevenshteinSimilarity(),        // 2
      new JaroSimilarity(),                      // 3
      new JaroWinklerSimilarity(),               // 4
      new NeedlemanWunschSimilarity(),           // 5
      new SmithWatermanSimilarity(),             // 6
      new SmithWatermanGotohSimilarity(),        // 7
      new LongestCommonSubsequenceSimilarity(),  // 8
      new LongestCommonSubstringSimilarity(),    // 9
      new QGramSimilarity(),                     // 10
      new CosineQGramSimilarity(),               // 11
      new SimonWhiteSimilarity(),                // 12
      new JaccardTokenSimilarity(),              // 13
      new DiceTokenSimilarity(),                 // 14
      new OverlapCoefficientSimilarity(),        // 15
      new CosineTokenSimilarity(),               // 16
      new MatchingCoefficientSimilarity(),       // 17
      new BlockDistanceSimilarity(),             // 18
      new EuclideanSimilarity(),                 // 19
      new MongeElkanSimilarity(),                // 20
  };
  ALEM_CHECK_EQ(registry.size(),
                static_cast<size_t>(kNumSimilarityFunctions));
  return registry;
}

const std::vector<int>& RuleSimilarityIndices() {
  // Equality, Jaro-Winkler, Jaccard — the three functions supported by the
  // rule-based learner of Qian et al. (Section 3 of the paper).
  static const auto& indices = *new std::vector<int>{0, 4, 13};
  return indices;
}

int SimilarityIndexByName(std::string_view name) {
  const auto& registry = AllSimilarityFunctions();
  for (size_t i = 0; i < registry.size(); ++i) {
    if (registry[i]->name() == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace alem
