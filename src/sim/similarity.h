// Similarity-function interface and registry.
//
// The paper's feature extractor applies the 21 similarity functions of the
// Java Simmetrics library to every aligned attribute pair. This module
// provides from-scratch implementations with uniform semantics:
//   * results are clamped to [0, 1], 1 meaning "identical";
//   * if either attribute value is null/missing, the similarity is 0
//     (Section 3 of the paper);
//   * functions consume pre-tokenized AttributeProfiles so tokenization cost
//     is paid once per record attribute, not once per function call.

#ifndef ALEM_SIM_SIMILARITY_H_
#define ALEM_SIM_SIMILARITY_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "text/profile.h"

namespace alem {

// Base class for all similarity functions.
class SimilarityFunction {
 public:
  virtual ~SimilarityFunction() = default;

  // Similarity in [0, 1]; 0 when either profile is null.
  double Similarity(const AttributeProfile& a,
                    const AttributeProfile& b) const {
    if (a.is_null || b.is_null) return 0.0;
    return std::clamp(ComputeNonNull(a, b), 0.0, 1.0);
  }

  // Structure-of-arrays batch evaluation: out[i] = float(Similarity(
  // *left[i], *right[i])) for every i in [0, left.size()). Chunked over the
  // deterministic thread pool (region "sim.batch") when it is engaged;
  // results are bitwise-identical to per-pair Similarity() calls at any
  // thread count. `out` must hold left.size() floats; left/right must have
  // equal length.
  void EvaluateBatch(std::span<const AttributeProfile* const> left,
                     std::span<const AttributeProfile* const> right,
                     float* out) const;

  // Stable, human-readable name (appears in feature and rule-atom names).
  virtual std::string_view name() const = 0;

 protected:
  // Core computation; inputs are guaranteed non-null. May return slightly
  // out-of-range values due to floating-point error; the caller clamps.
  virtual double ComputeNonNull(const AttributeProfile& a,
                                const AttributeProfile& b) const = 0;

  // One contiguous chunk of EvaluateBatch. The default loops Similarity();
  // functions whose scalar path allocates per call (the edit-based dynamic
  // programs, Monge-Elkan) override it to hoist their scratch buffers out
  // of the pair loop while running the exact same arithmetic.
  virtual void EvaluateChunk(const AttributeProfile* const* left,
                             const AttributeProfile* const* right,
                             size_t begin, size_t end, float* out) const;
};

// Number of similarity functions in the registry (matches the paper's 21).
inline constexpr int kNumSimilarityFunctions = 21;

// Bump whenever any similarity function changes semantics (or the registry
// changes order/membership): persistent feature-matrix caches key on the
// registry fingerprint, so a bump invalidates every cached matrix.
inline constexpr uint32_t kSimRegistryVersion = 1;

// Stable 64-bit fingerprint of the registry: kSimRegistryVersion plus the
// ordered function names. Feature caches mix it into their content hash so
// cached matrices go stale the moment the similarity semantics could have
// moved (see docs/featurization.md).
uint64_t SimRegistryFingerprint();

// The full registry, in a stable order. Index i of a feature vector block
// corresponds to AllSimilarityFunctions()[i]. The returned objects live for
// the duration of the program.
const std::vector<const SimilarityFunction*>& AllSimilarityFunctions();

// Indices (into AllSimilarityFunctions) of the 3 functions supported by the
// rule-based learner of Qian et al.: equality, Jaro-Winkler, and Jaccard
// (Section 3 of the paper).
const std::vector<int>& RuleSimilarityIndices();

// Looks up a registry index by function name; returns -1 when absent.
int SimilarityIndexByName(std::string_view name);

}  // namespace alem

#endif  // ALEM_SIM_SIMILARITY_H_
