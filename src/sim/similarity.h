// Similarity-function interface and registry.
//
// The paper's feature extractor applies the 21 similarity functions of the
// Java Simmetrics library to every aligned attribute pair. This module
// provides from-scratch implementations with uniform semantics:
//   * results are clamped to [0, 1], 1 meaning "identical";
//   * if either attribute value is null/missing, the similarity is 0
//     (Section 3 of the paper);
//   * functions consume pre-tokenized AttributeProfiles so tokenization cost
//     is paid once per record attribute, not once per function call.

#ifndef ALEM_SIM_SIMILARITY_H_
#define ALEM_SIM_SIMILARITY_H_

#include <algorithm>
#include <string_view>
#include <vector>

#include "text/profile.h"

namespace alem {

// Base class for all similarity functions.
class SimilarityFunction {
 public:
  virtual ~SimilarityFunction() = default;

  // Similarity in [0, 1]; 0 when either profile is null.
  double Similarity(const AttributeProfile& a,
                    const AttributeProfile& b) const {
    if (a.is_null || b.is_null) return 0.0;
    return std::clamp(ComputeNonNull(a, b), 0.0, 1.0);
  }

  // Stable, human-readable name (appears in feature and rule-atom names).
  virtual std::string_view name() const = 0;

 protected:
  // Core computation; inputs are guaranteed non-null. May return slightly
  // out-of-range values due to floating-point error; the caller clamps.
  virtual double ComputeNonNull(const AttributeProfile& a,
                                const AttributeProfile& b) const = 0;
};

// Number of similarity functions in the registry (matches the paper's 21).
inline constexpr int kNumSimilarityFunctions = 21;

// The full registry, in a stable order. Index i of a feature vector block
// corresponds to AllSimilarityFunctions()[i]. The returned objects live for
// the duration of the program.
const std::vector<const SimilarityFunction*>& AllSimilarityFunctions();

// Indices (into AllSimilarityFunctions) of the 3 functions supported by the
// rule-based learner of Qian et al.: equality, Jaro-Winkler, and Jaccard
// (Section 3 of the paper).
const std::vector<int>& RuleSimilarityIndices();

// Looks up a registry index by function name; returns -1 when absent.
int SimilarityIndexByName(std::string_view name);

}  // namespace alem

#endif  // ALEM_SIM_SIMILARITY_H_
