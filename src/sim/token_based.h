// Token-level similarity functions (word tokens produced by TokenizeWords).

#ifndef ALEM_SIM_TOKEN_BASED_H_
#define ALEM_SIM_TOKEN_BASED_H_

#include <string_view>

#include "sim/similarity.h"

namespace alem {

// Set Jaccard over word tokens: |A ∩ B| / |A ∪ B|. This is also the
// similarity used by offline blocking and one of the three functions
// available to the rule learner.
class JaccardTokenSimilarity final : public SimilarityFunction {
 public:
  std::string_view name() const override { return "Jaccard"; }

 protected:
  double ComputeNonNull(const AttributeProfile& a,
                        const AttributeProfile& b) const override;
};

// Sorensen-Dice over distinct tokens: 2|A ∩ B| / (|A| + |B|).
class DiceTokenSimilarity final : public SimilarityFunction {
 public:
  std::string_view name() const override { return "Dice"; }

 protected:
  double ComputeNonNull(const AttributeProfile& a,
                        const AttributeProfile& b) const override;
};

// Overlap coefficient: |A ∩ B| / min(|A|, |B|).
class OverlapCoefficientSimilarity final : public SimilarityFunction {
 public:
  std::string_view name() const override { return "OverlapCoefficient"; }

 protected:
  double ComputeNonNull(const AttributeProfile& a,
                        const AttributeProfile& b) const override;
};

// Set cosine (Otsuka-Ochiai): |A ∩ B| / sqrt(|A| * |B|).
class CosineTokenSimilarity final : public SimilarityFunction {
 public:
  std::string_view name() const override { return "CosineTokens"; }

 protected:
  double ComputeNonNull(const AttributeProfile& a,
                        const AttributeProfile& b) const override;
};

// Matching coefficient: |A ∩ B| / max(|A|, |B|).
class MatchingCoefficientSimilarity final : public SimilarityFunction {
 public:
  std::string_view name() const override { return "MatchingCoefficient"; }

 protected:
  double ComputeNonNull(const AttributeProfile& a,
                        const AttributeProfile& b) const override;
};

// Block (L1/Manhattan) distance over token counts, normalized:
// 1 - L1(a, b) / (total(a) + total(b)).
class BlockDistanceSimilarity final : public SimilarityFunction {
 public:
  std::string_view name() const override { return "BlockDistance"; }

 protected:
  double ComputeNonNull(const AttributeProfile& a,
                        const AttributeProfile& b) const override;
};

// Euclidean distance over token counts, normalized:
// 1 - L2(a, b) / sqrt(total(a)^2 + total(b)^2).
class EuclideanSimilarity final : public SimilarityFunction {
 public:
  std::string_view name() const override { return "Euclidean"; }

 protected:
  double ComputeNonNull(const AttributeProfile& a,
                        const AttributeProfile& b) const override;
};

// Symmetric Monge-Elkan with Jaro-Winkler as the inner metric:
// mean over tokens of A of the best Jaro-Winkler match in B, averaged with
// the B-to-A direction. Token lists are capped for cost control.
class MongeElkanSimilarity final : public SimilarityFunction {
 public:
  std::string_view name() const override { return "MongeElkan"; }

 protected:
  double ComputeNonNull(const AttributeProfile& a,
                        const AttributeProfile& b) const override;
  void EvaluateChunk(const AttributeProfile* const* left,
                     const AttributeProfile* const* right, size_t begin,
                     size_t end, float* out) const override;
};

}  // namespace alem

#endif  // ALEM_SIM_TOKEN_BASED_H_
