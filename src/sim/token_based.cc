#include "sim/token_based.h"

#include <algorithm>
#include <cmath>

#include "sim/edit_based.h"

namespace alem {

double JaccardTokenSimilarity::ComputeNonNull(const AttributeProfile& a,
                                              const AttributeProfile& b) const {
  const int intersection =
      CountedMultiset::SetIntersection(a.token_counts, b.token_counts);
  const int unions = static_cast<int>(a.token_counts.distinct()) +
                     static_cast<int>(b.token_counts.distinct()) -
                     intersection;
  if (unions == 0) return 1.0;  // Both token sets empty (e.g., punctuation).
  return static_cast<double>(intersection) / unions;
}

double DiceTokenSimilarity::ComputeNonNull(const AttributeProfile& a,
                                           const AttributeProfile& b) const {
  const int intersection =
      CountedMultiset::SetIntersection(a.token_counts, b.token_counts);
  const size_t denom = a.token_counts.distinct() + b.token_counts.distinct();
  if (denom == 0) return 1.0;
  return 2.0 * intersection / static_cast<double>(denom);
}

double OverlapCoefficientSimilarity::ComputeNonNull(
    const AttributeProfile& a, const AttributeProfile& b) const {
  const int intersection =
      CountedMultiset::SetIntersection(a.token_counts, b.token_counts);
  const size_t denom =
      std::min(a.token_counts.distinct(), b.token_counts.distinct());
  if (denom == 0) {
    return a.token_counts.distinct() == b.token_counts.distinct() ? 1.0 : 0.0;
  }
  return static_cast<double>(intersection) / static_cast<double>(denom);
}

double CosineTokenSimilarity::ComputeNonNull(const AttributeProfile& a,
                                             const AttributeProfile& b) const {
  const int intersection =
      CountedMultiset::SetIntersection(a.token_counts, b.token_counts);
  const double denom =
      std::sqrt(static_cast<double>(a.token_counts.distinct()) *
                static_cast<double>(b.token_counts.distinct()));
  if (denom == 0.0) {
    return a.token_counts.distinct() == b.token_counts.distinct() ? 1.0 : 0.0;
  }
  return intersection / denom;
}

double MatchingCoefficientSimilarity::ComputeNonNull(
    const AttributeProfile& a, const AttributeProfile& b) const {
  const int intersection =
      CountedMultiset::SetIntersection(a.token_counts, b.token_counts);
  const size_t denom =
      std::max(a.token_counts.distinct(), b.token_counts.distinct());
  if (denom == 0) return 1.0;
  return static_cast<double>(intersection) / static_cast<double>(denom);
}

double BlockDistanceSimilarity::ComputeNonNull(
    const AttributeProfile& a, const AttributeProfile& b) const {
  const int total = a.token_counts.total() + b.token_counts.total();
  if (total == 0) return 1.0;
  const int distance =
      CountedMultiset::L1Distance(a.token_counts, b.token_counts);
  return 1.0 - static_cast<double>(distance) / static_cast<double>(total);
}

double EuclideanSimilarity::ComputeNonNull(const AttributeProfile& a,
                                           const AttributeProfile& b) const {
  const double ta = a.token_counts.total();
  const double tb = b.token_counts.total();
  const double bound = std::sqrt(ta * ta + tb * tb);
  if (bound == 0.0) return 1.0;
  const double distance = std::sqrt(
      CountedMultiset::SquaredL2Distance(a.token_counts, b.token_counts));
  return 1.0 - distance / bound;
}

namespace {

// Core symmetric Monge-Elkan with caller-provided Jaro-Winkler scratch:
// the single implementation behind both the scalar path (fresh scratch per
// call) and the batch kernel (one scratch per chunk).
double MongeElkanSim(const AttributeProfile& a, const AttributeProfile& b,
                     internal_edit::EditScratch& scratch) {
  // Cost control: the inner loop is |A| * |B| Jaro-Winkler calls.
  constexpr size_t kMaxTokens = 30;
  const size_t na = std::min(a.tokens.size(), kMaxTokens);
  const size_t nb = std::min(b.tokens.size(), kMaxTokens);
  if (na == 0 || nb == 0) return na == nb ? 1.0 : 0.0;

  auto directed = [&scratch](const std::vector<std::string>& from,
                             const std::vector<std::string>& to, size_t nf,
                             size_t nt) {
    double sum = 0.0;
    for (size_t i = 0; i < nf; ++i) {
      double best = 0.0;
      for (size_t j = 0; j < nt; ++j) {
        best = std::max(best, internal_edit::JaroWinklerRawWith(
                                  from[i], to[j], scratch));
        if (best >= 1.0) break;
      }
      sum += best;
    }
    return sum / static_cast<double>(nf);
  };
  return 0.5 * (directed(a.tokens, b.tokens, na, nb) +
                directed(b.tokens, a.tokens, nb, na));
}

}  // namespace

double MongeElkanSimilarity::ComputeNonNull(const AttributeProfile& a,
                                            const AttributeProfile& b) const {
  internal_edit::EditScratch scratch;
  return MongeElkanSim(a, b, scratch);
}

void MongeElkanSimilarity::EvaluateChunk(const AttributeProfile* const* left,
                                         const AttributeProfile* const* right,
                                         size_t begin, size_t end,
                                         float* out) const {
  internal_edit::EditScratch scratch;
  for (size_t i = begin; i < end; ++i) {
    const AttributeProfile& a = *left[i];
    const AttributeProfile& b = *right[i];
    out[i] = (a.is_null || b.is_null)
                 ? 0.0f
                 : static_cast<float>(
                       std::clamp(MongeElkanSim(a, b, scratch), 0.0, 1.0));
  }
}

}  // namespace alem
