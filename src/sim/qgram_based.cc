#include "sim/qgram_based.h"

namespace alem {

double QGramSimilarity::ComputeNonNull(const AttributeProfile& a,
                                       const AttributeProfile& b) const {
  const int total = a.bigram_counts.total() + b.bigram_counts.total();
  if (total == 0) return 1.0;
  const int distance =
      CountedMultiset::L1Distance(a.bigram_counts, b.bigram_counts);
  return 1.0 - static_cast<double>(distance) / static_cast<double>(total);
}

double CosineQGramSimilarity::ComputeNonNull(const AttributeProfile& a,
                                             const AttributeProfile& b) const {
  const double denom = a.bigram_counts.norm() * b.bigram_counts.norm();
  if (denom == 0.0) {
    return a.bigram_counts.total() == b.bigram_counts.total() ? 1.0 : 0.0;
  }
  return CountedMultiset::Dot(a.bigram_counts, b.bigram_counts) / denom;
}

double SimonWhiteSimilarity::ComputeNonNull(const AttributeProfile& a,
                                            const AttributeProfile& b) const {
  const int total = a.bigram_counts.total() + b.bigram_counts.total();
  if (total == 0) return 1.0;
  const int intersection =
      CountedMultiset::MultisetIntersection(a.bigram_counts, b.bigram_counts);
  return 2.0 * intersection / static_cast<double>(total);
}

double JaccardQGramSimilarity::ComputeNonNull(const AttributeProfile& a,
                                              const AttributeProfile& b) const {
  const int intersection =
      CountedMultiset::SetIntersection(a.bigram_counts, b.bigram_counts);
  const int unions = static_cast<int>(a.bigram_counts.distinct()) +
                     static_cast<int>(b.bigram_counts.distinct()) -
                     intersection;
  if (unions == 0) return 1.0;
  return static_cast<double>(intersection) / unions;
}

}  // namespace alem
