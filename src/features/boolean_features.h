// Boolean featurization for rule-based learners.
//
// Rule models (Qian et al.) operate on Boolean atoms of the form
//   sim(left.attr, right.attr) >= tau
// with sim restricted to {equality, Jaro-Winkler, Jaccard} and tau swept over
// a discrete grid in (0, 1] (Section 3 of the paper). This module derives
// those atoms from an already extracted float feature matrix, so the
// similarity computations are shared with the other learners.

#ifndef ALEM_FEATURES_BOOLEAN_FEATURES_H_
#define ALEM_FEATURES_BOOLEAN_FEATURES_H_

#include <string>
#include <vector>

#include "features/feature_matrix.h"
#include "features/feature_schema.h"

namespace alem {

// One Boolean predicate: float feature `float_dim` >= `threshold`.
struct BooleanAtom {
  size_t float_dim = 0;
  double threshold = 0.0;
  std::string description;  // e.g. "Jaccard(name) >= 0.4"
};

class BooleanFeaturizer {
 public:
  // Builds the atom grid for the given feature schema: for every matched
  // column, every rule-supported similarity function, thresholds 0.1, 0.2,
  // ..., 1.0. Takes the schema (names + shape), not an extractor: atom
  // construction needs no profiled attribute data, so a warm feature-cache
  // hit can build the featurizer without profiling the tables.
  explicit BooleanFeaturizer(const FeatureSchema& schema);

  size_t num_atoms() const { return atoms_.size(); }
  const std::vector<BooleanAtom>& atoms() const { return atoms_; }
  const BooleanAtom& atom(size_t i) const;

  // Converts float features to a 0/1 matrix with one column per atom.
  FeatureMatrix Featurize(const FeatureMatrix& float_features) const;

  // Evaluates a single atom against a float feature row.
  bool Evaluate(size_t atom_index, const float* float_row) const;

 private:
  std::vector<BooleanAtom> atoms_;
};

}  // namespace alem

#endif  // ALEM_FEATURES_BOOLEAN_FEATURES_H_
