#include "features/feature_cache.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <utility>

#include "obs/obs.h"

namespace alem {
namespace {

void CountCacheHit() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("featurize.cache.hit");
  counter.Add(1);
}

void CountCacheMiss() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("featurize.cache.miss");
  counter.Add(1);
}

void CountCacheWrite() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("featurize.cache.write");
  counter.Add(1);
}

uint64_t Fnv1aMix(uint64_t hash, const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace

std::string FeatureCacheKey::FileName() const {
  // Digest every field the matrix is a function of; the double is hashed
  // by bit pattern (scales are exact user inputs, not computed values).
  uint64_t hash = 1469598103934665603ULL;
  hash = Fnv1aMix(hash, dataset_name.data(), dataset_name.size());
  hash = Fnv1aMix(hash, &profile_fingerprint, sizeof(profile_fingerprint));
  hash = Fnv1aMix(hash, &data_seed, sizeof(data_seed));
  hash = Fnv1aMix(hash, &scale, sizeof(scale));
  hash = Fnv1aMix(hash, &sim_fingerprint, sizeof(sim_fingerprint));
  hash = Fnv1aMix(hash, &num_dims, sizeof(num_dims));

  std::string sanitized;
  sanitized.reserve(dataset_name.size());
  for (const char c : dataset_name) {
    sanitized.push_back(
        std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
  }
  char digest[17];
  std::snprintf(digest, sizeof(digest), "%016llx",
                static_cast<unsigned long long>(hash));
  return sanitized + "-" + digest + ".fmat";
}

FeatureCache::FeatureCache(std::string dir) : dir_(std::move(dir)) {}

std::string FeatureCache::ResolveDir(const std::string& override_dir) {
  if (!override_dir.empty()) return override_dir;
  const char* env = std::getenv("ALEM_CACHE_DIR");
  return (env != nullptr && *env != '\0') ? std::string(env) : std::string();
}

std::string FeatureCache::EntryPath(const FeatureCacheKey& key) const {
  return dir_ + "/" + key.FileName();
}

bool FeatureCache::Load(const FeatureCacheKey& key, FeatureMatrix* out) const {
  if (!enabled()) {
    CountCacheMiss();
    return false;
  }
  std::ifstream file(EntryPath(key), std::ios::binary);
  if (!file.is_open()) {
    CountCacheMiss();
    return false;
  }
  std::ostringstream content;
  content << file.rdbuf();
  const std::string blob = content.str();
  FeatureMatrix parsed;
  if (!file.good() || !FeatureMatrix::Deserialize(blob, &parsed) ||
      parsed.dims() != key.num_dims) {
    CountCacheMiss();
    return false;
  }
  *out = std::move(parsed);
  CountCacheHit();
  return true;
}

bool FeatureCache::Store(const FeatureCacheKey& key,
                         const FeatureMatrix& matrix) const {
  if (!enabled()) return false;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) return false;

  const std::string path = EntryPath(key);
  // Process-unique temp name so concurrent writers never interleave; the
  // rename publishes a complete file or nothing.
  const std::string tmp_path =
      path + ".tmp." +
      std::to_string(static_cast<unsigned long long>(
          std::hash<std::string>{}(path) ^
          static_cast<unsigned long long>(
              std::chrono::steady_clock::now().time_since_epoch().count())));
  {
    std::ofstream file(tmp_path, std::ios::binary | std::ios::trunc);
    if (!file.is_open()) return false;
    const std::string blob = matrix.Serialize();
    file.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    if (!file.good()) {
      file.close();
      std::filesystem::remove(tmp_path, ec);
      return false;
    }
  }
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    std::filesystem::remove(tmp_path, ec);
    return false;
  }
  CountCacheWrite();
  return true;
}

}  // namespace alem
