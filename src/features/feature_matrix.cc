#include "features/feature_matrix.h"

#include <cstring>

#include "util/check.h"

namespace alem {

FeatureMatrix::FeatureMatrix(size_t rows, size_t dims)
    : rows_(rows), dims_(dims), data_(rows * dims, 0.0f) {}

const float* FeatureMatrix::Row(size_t i) const {
  ALEM_CHECK_LT(i, rows_);
  return data_.data() + i * dims_;
}

float* FeatureMatrix::MutableRow(size_t i) {
  ALEM_CHECK_LT(i, rows_);
  return data_.data() + i * dims_;
}

float FeatureMatrix::At(size_t row, size_t dim) const {
  ALEM_CHECK_LT(row, rows_);
  ALEM_CHECK_LT(dim, dims_);
  return data_[row * dims_ + dim];
}

void FeatureMatrix::Set(size_t row, size_t dim, float value) {
  ALEM_CHECK_LT(row, rows_);
  ALEM_CHECK_LT(dim, dims_);
  data_[row * dims_ + dim] = value;
}

FeatureMatrix FeatureMatrix::Gather(
    const std::vector<size_t>& row_indices) const {
  FeatureMatrix out(row_indices.size(), dims_);
  for (size_t i = 0; i < row_indices.size(); ++i) {
    std::memcpy(out.MutableRow(i), Row(row_indices[i]),
                dims_ * sizeof(float));
  }
  return out;
}

void FeatureMatrix::AppendRow(const std::vector<float>& row) {
  if (rows_ == 0 && dims_ == 0) dims_ = row.size();
  ALEM_CHECK_EQ(row.size(), dims_);
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

}  // namespace alem
