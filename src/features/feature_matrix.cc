#include "features/feature_matrix.h"

#include <cstdint>
#include <cstring>

#include "util/check.h"

namespace alem {
namespace {

// Serialization format (all fields little-endian host layout):
//   bytes 0..3   magic "ALFM"
//   bytes 4..7   uint32 format version (kMatrixFormatVersion)
//   bytes 8..15  uint64 rows
//   bytes 16..23 uint64 dims
//   bytes 24..31 uint64 FNV-1a hash of the float payload
//   bytes 32..   rows * dims raw floats
constexpr char kMatrixMagic[4] = {'A', 'L', 'F', 'M'};
constexpr uint32_t kMatrixFormatVersion = 1;
constexpr size_t kMatrixHeaderSize = 4 + 4 + 8 + 8 + 8;

uint64_t Fnv1a(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = 1469598103934665603ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

void AppendRaw(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

}  // namespace

FeatureMatrix::FeatureMatrix(size_t rows, size_t dims)
    : rows_(rows), dims_(dims), data_(rows * dims, 0.0f) {}

const float* FeatureMatrix::Row(size_t i) const {
  ALEM_CHECK_LT(i, rows_);
  return data_.data() + i * dims_;
}

float* FeatureMatrix::MutableRow(size_t i) {
  ALEM_CHECK_LT(i, rows_);
  return data_.data() + i * dims_;
}

float FeatureMatrix::At(size_t row, size_t dim) const {
  ALEM_CHECK_LT(row, rows_);
  ALEM_CHECK_LT(dim, dims_);
  return data_[row * dims_ + dim];
}

void FeatureMatrix::Set(size_t row, size_t dim, float value) {
  ALEM_CHECK_LT(row, rows_);
  ALEM_CHECK_LT(dim, dims_);
  data_[row * dims_ + dim] = value;
}

FeatureMatrix FeatureMatrix::Gather(
    const std::vector<size_t>& row_indices) const {
  FeatureMatrix out(row_indices.size(), dims_);
  for (size_t i = 0; i < row_indices.size(); ++i) {
    std::memcpy(out.MutableRow(i), Row(row_indices[i]),
                dims_ * sizeof(float));
  }
  return out;
}

void FeatureMatrix::AppendRow(const std::vector<float>& row) {
  if (rows_ == 0 && dims_ == 0) dims_ = row.size();
  ALEM_CHECK_EQ(row.size(), dims_);
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

std::string FeatureMatrix::Serialize() const {
  const size_t payload_bytes = data_.size() * sizeof(float);
  std::string out;
  out.reserve(kMatrixHeaderSize + payload_bytes);
  AppendRaw(&out, kMatrixMagic, sizeof(kMatrixMagic));
  const uint32_t version = kMatrixFormatVersion;
  AppendRaw(&out, &version, sizeof(version));
  const uint64_t rows = rows_;
  const uint64_t dims = dims_;
  AppendRaw(&out, &rows, sizeof(rows));
  AppendRaw(&out, &dims, sizeof(dims));
  const uint64_t checksum = Fnv1a(data_.data(), payload_bytes);
  AppendRaw(&out, &checksum, sizeof(checksum));
  AppendRaw(&out, data_.data(), payload_bytes);
  return out;
}

bool FeatureMatrix::Deserialize(std::string_view blob, FeatureMatrix* out) {
  if (blob.size() < kMatrixHeaderSize) return false;
  const char* cursor = blob.data();
  if (std::memcmp(cursor, kMatrixMagic, sizeof(kMatrixMagic)) != 0) {
    return false;
  }
  cursor += sizeof(kMatrixMagic);
  uint32_t version = 0;
  std::memcpy(&version, cursor, sizeof(version));
  cursor += sizeof(version);
  if (version != kMatrixFormatVersion) return false;
  uint64_t rows = 0;
  uint64_t dims = 0;
  uint64_t checksum = 0;
  std::memcpy(&rows, cursor, sizeof(rows));
  cursor += sizeof(rows);
  std::memcpy(&dims, cursor, sizeof(dims));
  cursor += sizeof(dims);
  std::memcpy(&checksum, cursor, sizeof(checksum));
  cursor += sizeof(checksum);

  // Reject shapes whose element count overflows or whose payload size does
  // not exactly match the remaining bytes (truncated or padded file).
  if (dims != 0 && rows > SIZE_MAX / sizeof(float) / dims) return false;
  const size_t expected_payload =
      static_cast<size_t>(rows) * static_cast<size_t>(dims) * sizeof(float);
  if (blob.size() - kMatrixHeaderSize != expected_payload) return false;
  if (Fnv1a(cursor, expected_payload) != checksum) return false;

  FeatureMatrix parsed(static_cast<size_t>(rows), static_cast<size_t>(dims));
  std::memcpy(parsed.data_.data(), cursor, expected_payload);
  *out = std::move(parsed);
  return true;
}

}  // namespace alem
