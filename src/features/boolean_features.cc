#include "features/boolean_features.h"

#include "sim/similarity.h"
#include "util/check.h"
#include "util/string_util.h"

namespace alem {

BooleanFeaturizer::BooleanFeaturizer(const FeatureSchema& schema) {
  const std::vector<int>& rule_sims = RuleSimilarityIndices();
  for (size_t column = 0; column < schema.num_matched_columns(); ++column) {
    for (const int sim_index : rule_sims) {
      const size_t float_dim =
          column * static_cast<size_t>(kNumSimilarityFunctions) +
          static_cast<size_t>(sim_index);
      for (int step = 1; step <= 10; ++step) {
        const double threshold = 0.1 * step;
        BooleanAtom atom;
        atom.float_dim = float_dim;
        atom.threshold = threshold;
        atom.description = schema.FeatureName(float_dim) + " >= " +
                           FormatDouble(threshold, 1);
        atoms_.push_back(std::move(atom));
      }
    }
  }
}

const BooleanAtom& BooleanFeaturizer::atom(size_t i) const {
  ALEM_CHECK_LT(i, atoms_.size());
  return atoms_[i];
}

FeatureMatrix BooleanFeaturizer::Featurize(
    const FeatureMatrix& float_features) const {
  FeatureMatrix out(float_features.rows(), atoms_.size());
  for (size_t row = 0; row < float_features.rows(); ++row) {
    const float* in = float_features.Row(row);
    float* out_row = out.MutableRow(row);
    for (size_t a = 0; a < atoms_.size(); ++a) {
      // A tiny epsilon keeps thresholds like 0.3 stable against float
      // rounding of similarity values that are exactly at the boundary.
      out_row[a] =
          in[atoms_[a].float_dim] >= atoms_[a].threshold - 1e-9 ? 1.0f : 0.0f;
    }
  }
  return out;
}

bool BooleanFeaturizer::Evaluate(size_t atom_index,
                                 const float* float_row) const {
  const BooleanAtom& atom = this->atom(atom_index);
  return float_row[atom.float_dim] >= atom.threshold - 1e-9;
}

}  // namespace alem
