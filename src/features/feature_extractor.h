// Float feature extraction: 21 similarity functions x matched columns.
//
// Attribute profiles are computed once per record attribute at construction;
// per-pair extraction then consists only of similarity evaluations. The
// extractor also supports single-dimension extraction, which is what makes
// the paper's selection-time blocking optimization (Section 5.1) meaningful:
// the blocking dimension of an unlabeled pair can be evaluated without
// constructing the full feature vector.

#ifndef ALEM_FEATURES_FEATURE_EXTRACTOR_H_
#define ALEM_FEATURES_FEATURE_EXTRACTOR_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "features/feature_matrix.h"
#include "sim/similarity.h"
#include "text/profile.h"

namespace alem {

class FeatureExtractor {
 public:
  // Profiles every matched-column attribute of both tables. The dataset must
  // outlive nothing — all needed state is copied into the extractor.
  explicit FeatureExtractor(const EmDataset& dataset);

  FeatureExtractor(const FeatureExtractor&) = delete;
  FeatureExtractor& operator=(const FeatureExtractor&) = delete;

  // Feature dimensionality: kNumSimilarityFunctions * #matched columns.
  // Dimension d corresponds to similarity function (d % 21) applied to
  // matched-column pair (d / 21).
  size_t num_dims() const { return num_dims_; }

  // Extracts the full feature vector of one pair into `out[0..num_dims)`.
  void ExtractPair(const RecordPair& pair, float* out) const;

  // Extracts a single feature dimension of one pair.
  float ExtractDim(const RecordPair& pair, size_t dim) const;

  // Extracts all pairs into a matrix (rows align with `pairs`).
  FeatureMatrix ExtractAll(const std::vector<RecordPair>& pairs) const;

  // Human-readable name of a dimension, e.g. "JaroWinkler(name)".
  std::string FeatureName(size_t dim) const;

  // All dimension names in order.
  std::vector<std::string> FeatureNames() const;

  size_t num_matched_columns() const { return column_names_.size(); }

 private:
  const AttributeProfile& LeftProfile(uint32_t row, size_t column_pair) const;
  const AttributeProfile& RightProfile(uint32_t row, size_t column_pair) const;

  size_t num_dims_ = 0;
  // Profiles indexed [column_pair][row].
  std::vector<std::vector<AttributeProfile>> left_profiles_;
  std::vector<std::vector<AttributeProfile>> right_profiles_;
  std::vector<std::string> column_names_;
};

}  // namespace alem

#endif  // ALEM_FEATURES_FEATURE_EXTRACTOR_H_
