// Float feature extraction: 21 similarity functions x matched columns.
//
// Attribute profiles are computed once per record attribute at construction;
// extraction then consists only of similarity evaluations. The extraction
// API is batch-first: ExtractBatch sweeps one similarity kernel down a whole
// column of pairs at a time (structure-of-arrays, chunked over the
// deterministic thread pool by SimilarityFunction::EvaluateBatch), which is
// measurably faster than the per-pair loop and bitwise-identical to it.
// ExtractPair/ExtractDim remain for selection-time blocking (paper §5.1):
// the blocking dimension of an unlabeled pair can be evaluated without
// constructing the full feature vector.

#ifndef ALEM_FEATURES_FEATURE_EXTRACTOR_H_
#define ALEM_FEATURES_FEATURE_EXTRACTOR_H_

#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "features/feature_matrix.h"
#include "features/feature_schema.h"
#include "sim/similarity.h"
#include "text/profile.h"

namespace alem {

class FeatureExtractor {
 public:
  // Profiles every matched-column attribute of both tables. The dataset must
  // outlive nothing — all needed state is copied into the extractor.
  explicit FeatureExtractor(const EmDataset& dataset);

  FeatureExtractor(const FeatureExtractor&) = delete;
  FeatureExtractor& operator=(const FeatureExtractor&) = delete;

  // Feature dimensionality: kNumSimilarityFunctions * #matched columns.
  // Dimension d corresponds to similarity function (d % 21) applied to
  // matched-column pair (d / 21).
  size_t num_dims() const { return schema_.num_dims(); }

  // The name/shape schema of this extractor's feature space (cheap to copy;
  // consumers that only need names should take this, not the extractor).
  const FeatureSchema& schema() const { return schema_; }

  // Extracts the full feature vector of one pair into `out[0..num_dims)`.
  void ExtractPair(const RecordPair& pair, float* out) const;

  // Extracts a single feature dimension of one pair.
  float ExtractDim(const RecordPair& pair, size_t dim) const;

  // Batch extraction plan: fills `out` (resized to pairs.size() x
  // num_dims()) one dimension at a time — for each matched column, the
  // left/right profile pointers of every pair are gathered once, then each
  // of the 21 kernels sweeps the whole column via EvaluateBatch and the
  // resulting column is transposed into the row-major matrix. Results are
  // bitwise-identical to per-pair ExtractPair extraction.
  void ExtractBatch(std::span<const RecordPair> pairs,
                    FeatureMatrix* out) const;

  // Extracts all pairs into a matrix (rows align with `pairs`); delegates
  // to ExtractBatch.
  FeatureMatrix ExtractAll(const std::vector<RecordPair>& pairs) const;

  // Human-readable name of a dimension, e.g. "JaroWinkler(name)".
  std::string FeatureName(size_t dim) const { return schema_.FeatureName(dim); }

  // All dimension names in order.
  std::vector<std::string> FeatureNames() const {
    return schema_.FeatureNames();
  }

  size_t num_matched_columns() const { return schema_.num_matched_columns(); }

 private:
  const AttributeProfile& LeftProfile(uint32_t row, size_t column_pair) const;
  const AttributeProfile& RightProfile(uint32_t row, size_t column_pair) const;

  FeatureSchema schema_;
  // Profiles indexed [column_pair][row].
  std::vector<std::vector<AttributeProfile>> left_profiles_;
  std::vector<std::vector<AttributeProfile>> right_profiles_;
};

}  // namespace alem

#endif  // ALEM_FEATURES_FEATURE_EXTRACTOR_H_
