#include "features/feature_schema.h"

#include <utility>

#include "util/check.h"

namespace alem {

FeatureSchema::FeatureSchema(std::vector<std::string> column_names)
    : column_names_(std::move(column_names)) {}

FeatureSchema FeatureSchema::FromDataset(const EmDataset& dataset) {
  ALEM_CHECK_GT(dataset.matched_columns.size(), 0u);
  std::vector<std::string> names;
  names.reserve(dataset.matched_columns.size());
  for (const MatchedColumns& mc : dataset.matched_columns) {
    names.push_back(
        dataset.left.schema().column(static_cast<size_t>(mc.left_column)));
  }
  return FeatureSchema(std::move(names));
}

std::string FeatureSchema::FeatureName(size_t dim) const {
  ALEM_CHECK_LT(dim, num_dims());
  const size_t column_pair = dim / kNumSimilarityFunctions;
  const size_t function_index = dim % kNumSimilarityFunctions;
  return std::string(AllSimilarityFunctions()[function_index]->name()) + "(" +
         column_names_[column_pair] + ")";
}

std::vector<std::string> FeatureSchema::FeatureNames() const {
  std::vector<std::string> names;
  names.reserve(num_dims());
  for (size_t dim = 0; dim < num_dims(); ++dim) {
    names.push_back(FeatureName(dim));
  }
  return names;
}

}  // namespace alem
