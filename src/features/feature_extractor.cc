#include "features/feature_extractor.h"

#include "obs/obs.h"
#include "util/check.h"

namespace alem {
namespace {

// Similarity-function cost accounting (one Add per pair/batch, not per
// call, to keep the extraction loops tight).
void CountSimCalls(size_t calls) {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("sim.calls");
  counter.Add(calls);
}

}  // namespace

FeatureExtractor::FeatureExtractor(const EmDataset& dataset)
    : schema_(FeatureSchema::FromDataset(dataset)) {
  const size_t num_columns = dataset.matched_columns.size();
  left_profiles_.resize(num_columns);
  right_profiles_.resize(num_columns);
  for (size_t c = 0; c < num_columns; ++c) {
    const MatchedColumns& mc = dataset.matched_columns[c];
    left_profiles_[c].reserve(dataset.left.num_rows());
    for (size_t row = 0; row < dataset.left.num_rows(); ++row) {
      left_profiles_[c].push_back(AttributeProfile::Build(
          dataset.left.Value(row, static_cast<size_t>(mc.left_column))));
    }
    right_profiles_[c].reserve(dataset.right.num_rows());
    for (size_t row = 0; row < dataset.right.num_rows(); ++row) {
      right_profiles_[c].push_back(AttributeProfile::Build(
          dataset.right.Value(row, static_cast<size_t>(mc.right_column))));
    }
  }
}

const AttributeProfile& FeatureExtractor::LeftProfile(
    uint32_t row, size_t column_pair) const {
  ALEM_CHECK_LT(column_pair, left_profiles_.size());
  ALEM_CHECK_LT(row, left_profiles_[column_pair].size());
  return left_profiles_[column_pair][row];
}

const AttributeProfile& FeatureExtractor::RightProfile(
    uint32_t row, size_t column_pair) const {
  ALEM_CHECK_LT(column_pair, right_profiles_.size());
  ALEM_CHECK_LT(row, right_profiles_[column_pair].size());
  return right_profiles_[column_pair][row];
}

void FeatureExtractor::ExtractPair(const RecordPair& pair, float* out) const {
  const auto& functions = AllSimilarityFunctions();
  size_t dim = 0;
  for (size_t c = 0; c < left_profiles_.size(); ++c) {
    const AttributeProfile& left = LeftProfile(pair.left, c);
    const AttributeProfile& right = RightProfile(pair.right, c);
    for (const SimilarityFunction* function : functions) {
      out[dim++] = static_cast<float>(function->Similarity(left, right));
    }
  }
  CountSimCalls(dim);
}

float FeatureExtractor::ExtractDim(const RecordPair& pair, size_t dim) const {
  ALEM_CHECK_LT(dim, num_dims());
  const size_t column_pair = dim / kNumSimilarityFunctions;
  const size_t function_index = dim % kNumSimilarityFunctions;
  const SimilarityFunction* function =
      AllSimilarityFunctions()[function_index];
  CountSimCalls(1);
  return static_cast<float>(function->Similarity(
      LeftProfile(pair.left, column_pair),
      RightProfile(pair.right, column_pair)));
}

void FeatureExtractor::ExtractBatch(std::span<const RecordPair> pairs,
                                    FeatureMatrix* out) const {
  const size_t n = pairs.size();
  const size_t dims = num_dims();
  if (out->rows() != n || out->dims() != dims) {
    *out = FeatureMatrix(n, dims);
  }
  if (n == 0) return;

  const auto& functions = AllSimilarityFunctions();
  std::vector<const AttributeProfile*> left(n);
  std::vector<const AttributeProfile*> right(n);
  std::vector<float> column(n);
  for (size_t c = 0; c < left_profiles_.size(); ++c) {
    for (size_t i = 0; i < n; ++i) {
      left[i] = &LeftProfile(pairs[i].left, c);
      right[i] = &RightProfile(pairs[i].right, c);
    }
    for (size_t f = 0; f < functions.size(); ++f) {
      functions[f]->EvaluateBatch(left, right, column.data());
      // Transpose the finished column into the row-major matrix.
      const size_t dim = c * functions.size() + f;
      for (size_t i = 0; i < n; ++i) {
        out->MutableRow(i)[dim] = column[i];
      }
    }
  }
  CountSimCalls(n * dims);
}

FeatureMatrix FeatureExtractor::ExtractAll(
    const std::vector<RecordPair>& pairs) const {
  FeatureMatrix matrix(pairs.size(), num_dims());
  ExtractBatch(pairs, &matrix);
  return matrix;
}

}  // namespace alem
