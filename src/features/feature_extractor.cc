#include "features/feature_extractor.h"

#include "obs/obs.h"
#include "util/check.h"

namespace alem {
namespace {

// Similarity-function cost accounting (one Add per pair, not per call, to
// keep the extraction loop tight).
void CountSimCalls(size_t calls) {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("sim.calls");
  counter.Add(calls);
}

}  // namespace

FeatureExtractor::FeatureExtractor(const EmDataset& dataset) {
  const size_t num_columns = dataset.matched_columns.size();
  ALEM_CHECK_GT(num_columns, 0u);
  num_dims_ = static_cast<size_t>(kNumSimilarityFunctions) * num_columns;

  left_profiles_.resize(num_columns);
  right_profiles_.resize(num_columns);
  column_names_.reserve(num_columns);
  for (size_t c = 0; c < num_columns; ++c) {
    const MatchedColumns& mc = dataset.matched_columns[c];
    column_names_.push_back(
        dataset.left.schema().column(static_cast<size_t>(mc.left_column)));

    left_profiles_[c].reserve(dataset.left.num_rows());
    for (size_t row = 0; row < dataset.left.num_rows(); ++row) {
      left_profiles_[c].push_back(AttributeProfile::Build(
          dataset.left.Value(row, static_cast<size_t>(mc.left_column))));
    }
    right_profiles_[c].reserve(dataset.right.num_rows());
    for (size_t row = 0; row < dataset.right.num_rows(); ++row) {
      right_profiles_[c].push_back(AttributeProfile::Build(
          dataset.right.Value(row, static_cast<size_t>(mc.right_column))));
    }
  }
}

const AttributeProfile& FeatureExtractor::LeftProfile(
    uint32_t row, size_t column_pair) const {
  ALEM_CHECK_LT(column_pair, left_profiles_.size());
  ALEM_CHECK_LT(row, left_profiles_[column_pair].size());
  return left_profiles_[column_pair][row];
}

const AttributeProfile& FeatureExtractor::RightProfile(
    uint32_t row, size_t column_pair) const {
  ALEM_CHECK_LT(column_pair, right_profiles_.size());
  ALEM_CHECK_LT(row, right_profiles_[column_pair].size());
  return right_profiles_[column_pair][row];
}

void FeatureExtractor::ExtractPair(const RecordPair& pair, float* out) const {
  const auto& functions = AllSimilarityFunctions();
  size_t dim = 0;
  for (size_t c = 0; c < left_profiles_.size(); ++c) {
    const AttributeProfile& left = LeftProfile(pair.left, c);
    const AttributeProfile& right = RightProfile(pair.right, c);
    for (const SimilarityFunction* function : functions) {
      out[dim++] = static_cast<float>(function->Similarity(left, right));
    }
  }
  CountSimCalls(dim);
}

float FeatureExtractor::ExtractDim(const RecordPair& pair, size_t dim) const {
  ALEM_CHECK_LT(dim, num_dims_);
  const size_t column_pair = dim / kNumSimilarityFunctions;
  const size_t function_index = dim % kNumSimilarityFunctions;
  const SimilarityFunction* function =
      AllSimilarityFunctions()[function_index];
  CountSimCalls(1);
  return static_cast<float>(function->Similarity(
      LeftProfile(pair.left, column_pair),
      RightProfile(pair.right, column_pair)));
}

FeatureMatrix FeatureExtractor::ExtractAll(
    const std::vector<RecordPair>& pairs) const {
  FeatureMatrix matrix(pairs.size(), num_dims_);
  for (size_t i = 0; i < pairs.size(); ++i) {
    ExtractPair(pairs[i], matrix.MutableRow(i));
  }
  return matrix;
}

std::string FeatureExtractor::FeatureName(size_t dim) const {
  ALEM_CHECK_LT(dim, num_dims_);
  const size_t column_pair = dim / kNumSimilarityFunctions;
  const size_t function_index = dim % kNumSimilarityFunctions;
  return std::string(AllSimilarityFunctions()[function_index]->name()) + "(" +
         column_names_[column_pair] + ")";
}

std::vector<std::string> FeatureExtractor::FeatureNames() const {
  std::vector<std::string> names;
  names.reserve(num_dims_);
  for (size_t dim = 0; dim < num_dims_; ++dim) {
    names.push_back(FeatureName(dim));
  }
  return names;
}

}  // namespace alem
