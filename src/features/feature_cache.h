// Content-addressed persistent cache for extracted feature matrices.
//
// Feature rows are deterministic in (synth profile, data_seed, scale) and
// the similarity registry, so the float feature matrix of a prepared
// dataset can be persisted once and reloaded on every later run — the
// dominant `harness.featurize` cost becomes a single file read. Entries
// are keyed by a fingerprint of everything the matrix depends on
// (FeatureCacheKey); any semantic change (a similarity-function tweak bumps
// kSimRegistryVersion, a profile edit changes the profile fingerprint)
// changes the file name, so stale entries are simply never found.
//
// Robustness contract: a missing, truncated, corrupted, or wrong-shape
// cache file is a silent miss — the caller recomputes and overwrites.
// Writes go to a temp file and are renamed into place so a crashed or
// concurrent writer can never publish a partial entry.
//
// Observability: Load/Store bump the `featurize.cache.{hit,miss,write}`
// counters (no-ops while metrics are disabled, like every counter).

#ifndef ALEM_FEATURES_FEATURE_CACHE_H_
#define ALEM_FEATURES_FEATURE_CACHE_H_

#include <cstdint>
#include <string>

#include "features/feature_matrix.h"

namespace alem {

// Everything a cached float feature matrix is a pure function of.
struct FeatureCacheKey {
  std::string dataset_name;       // For a readable file name only.
  uint64_t profile_fingerprint = 0;  // synth::ProfileFingerprint
  uint64_t data_seed = 0;
  double scale = 1.0;
  uint64_t sim_fingerprint = 0;   // SimRegistryFingerprint()
  uint64_t num_dims = 0;

  // "<sanitized dataset_name>-<16 hex digest>.fmat".
  std::string FileName() const;
};

class FeatureCache {
 public:
  // A cache rooted at `dir`; empty = disabled (Load misses, Store no-ops).
  explicit FeatureCache(std::string dir);

  // Resolves the cache directory: `override_dir` when nonempty, else the
  // ALEM_CACHE_DIR environment variable, else "" (caching disabled).
  static std::string ResolveDir(const std::string& override_dir);

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  // Loads the entry for `key` into *out. Returns false — and counts a miss
  // — when disabled, absent, unreadable, or invalid in any way.
  bool Load(const FeatureCacheKey& key, FeatureMatrix* out) const;

  // Persists `matrix` under `key` (temp file + atomic rename; creates the
  // cache directory if needed). Returns false on any I/O failure; failures
  // are non-fatal to callers — the cache is an optimization, not a store
  // of record.
  bool Store(const FeatureCacheKey& key, const FeatureMatrix& matrix) const;

 private:
  std::string EntryPath(const FeatureCacheKey& key) const;

  std::string dir_;
};

}  // namespace alem

#endif  // ALEM_FEATURES_FEATURE_CACHE_H_
