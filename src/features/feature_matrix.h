// Dense row-major feature matrix shared by all learners.

#ifndef ALEM_FEATURES_FEATURE_MATRIX_H_
#define ALEM_FEATURES_FEATURE_MATRIX_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace alem {

// A dense matrix of float features; rows are examples (record pairs),
// columns are feature dimensions. Boolean featurizations store 0/1 floats so
// every learner consumes the same type.
class FeatureMatrix {
 public:
  FeatureMatrix() = default;
  FeatureMatrix(size_t rows, size_t dims);

  size_t rows() const { return rows_; }
  size_t dims() const { return dims_; }
  bool empty() const { return rows_ == 0; }

  const float* Row(size_t i) const;
  float* MutableRow(size_t i);
  float At(size_t row, size_t dim) const;
  void Set(size_t row, size_t dim, float value);

  // Copies the given rows into a new matrix (used for bootstrap samples and
  // train/test splits).
  FeatureMatrix Gather(const std::vector<size_t>& row_indices) const;

  // Appends one row (must have `dims()` entries; sets dims on first append).
  void AppendRow(const std::vector<float>& row);

  // Versioned binary serialization: magic + format version + shape +
  // payload checksum + raw floats. A Deserialize of the blob is bitwise
  // identical to the source matrix. Used by the persistent feature cache
  // (see docs/featurization.md).
  std::string Serialize() const;

  // Parses a Serialize() blob. Returns false (leaving *out untouched) on
  // any validation failure: wrong magic, unsupported version, truncated or
  // oversized payload, or checksum mismatch — corrupt cache files must
  // read as a miss, never crash.
  static bool Deserialize(std::string_view blob, FeatureMatrix* out);

 private:
  size_t rows_ = 0;
  size_t dims_ = 0;
  std::vector<float> data_;
};

}  // namespace alem

#endif  // ALEM_FEATURES_FEATURE_MATRIX_H_
