// Dense row-major feature matrix shared by all learners.

#ifndef ALEM_FEATURES_FEATURE_MATRIX_H_
#define ALEM_FEATURES_FEATURE_MATRIX_H_

#include <cstddef>
#include <vector>

namespace alem {

// A dense matrix of float features; rows are examples (record pairs),
// columns are feature dimensions. Boolean featurizations store 0/1 floats so
// every learner consumes the same type.
class FeatureMatrix {
 public:
  FeatureMatrix() = default;
  FeatureMatrix(size_t rows, size_t dims);

  size_t rows() const { return rows_; }
  size_t dims() const { return dims_; }
  bool empty() const { return rows_ == 0; }

  const float* Row(size_t i) const;
  float* MutableRow(size_t i);
  float At(size_t row, size_t dim) const;
  void Set(size_t row, size_t dim, float value);

  // Copies the given rows into a new matrix (used for bootstrap samples and
  // train/test splits).
  FeatureMatrix Gather(const std::vector<size_t>& row_indices) const;

  // Appends one row (must have `dims()` entries; sets dims on first append).
  void AppendRow(const std::vector<float>& row);

 private:
  size_t rows_ = 0;
  size_t dims_ = 0;
  std::vector<float> data_;
};

}  // namespace alem

#endif  // ALEM_FEATURES_FEATURE_MATRIX_H_
