// FeatureSchema: the shape and naming of the float feature space, without
// the profiled attribute data needed to fill it.
//
// Dimension d corresponds to similarity function (d % 21) applied to
// matched-column pair (d / 21) — the layout shared by FeatureExtractor,
// BooleanFeaturizer, and every persisted FeatureMatrix. Building a schema
// only copies the matched-column names, so consumers that need names and
// dimensionality but no similarity evaluations (the Boolean featurizer, a
// warm feature-cache hit) can skip profiling both tables entirely.

#ifndef ALEM_FEATURES_FEATURE_SCHEMA_H_
#define ALEM_FEATURES_FEATURE_SCHEMA_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "sim/similarity.h"

namespace alem {

class FeatureSchema {
 public:
  FeatureSchema() = default;
  explicit FeatureSchema(std::vector<std::string> column_names);

  // Schema over the dataset's matched columns (left-table column names).
  static FeatureSchema FromDataset(const EmDataset& dataset);

  // Feature dimensionality: kNumSimilarityFunctions * #matched columns.
  size_t num_dims() const {
    return static_cast<size_t>(kNumSimilarityFunctions) *
           column_names_.size();
  }
  size_t num_matched_columns() const { return column_names_.size(); }
  const std::vector<std::string>& column_names() const {
    return column_names_;
  }

  // Human-readable name of a dimension, e.g. "JaroWinkler(name)".
  std::string FeatureName(size_t dim) const;

  // All dimension names in order.
  std::vector<std::string> FeatureNames() const;

 private:
  std::vector<std::string> column_names_;
};

}  // namespace alem

#endif  // ALEM_FEATURES_FEATURE_SCHEMA_H_
