#include "core/approaches.h"

#include <cstdlib>

#include "util/check.h"

namespace alem {

std::string ApproachSpec::DisplayName() const {
  std::string learner_part;
  switch (learner) {
    case LearnerKind::kLinearSvm:
      learner_part = "Linear";
      break;
    case LearnerKind::kNeuralNet:
      learner_part = "NN";
      break;
    case LearnerKind::kRandomForest:
      if (selector == SelectorKind::kRandom) {
        return "SupervisedTrees(Random-" + std::to_string(num_trees) + ")";
      }
      return "Trees(" + std::to_string(num_trees) + ")";
    case LearnerKind::kRules:
      learner_part = "Rules";
      break;
    case LearnerKind::kDeepMatcherProxy:
      return "DeepMatcher";
  }
  switch (selector) {
    case SelectorKind::kMargin: {
      std::string suffix;
      if (active_ensemble) {
        suffix = "(Ensemble)";
      } else if (blocking_dims > 0) {
        suffix = "(" + std::to_string(blocking_dims) + "Dim)";
      }
      return learner_part + "-Margin" + suffix;
    }
    case SelectorKind::kQbc:
      return learner_part + "-QBC(" + std::to_string(committee_size) + ")";
    case SelectorKind::kForestQbc:
      return learner_part + "-ForestQBC";
    case SelectorKind::kLfpLfn:
      return learner_part + "(LFP/LFN)";
    case SelectorKind::kRandom:
      return learner_part + "-Random";
  }
  return learner_part;
}

ApproachSpec TreesSpec(int num_trees) {
  ApproachSpec spec;
  spec.learner = LearnerKind::kRandomForest;
  spec.selector = SelectorKind::kForestQbc;
  spec.num_trees = num_trees;
  return spec;
}

ApproachSpec LinearMarginSpec(size_t blocking_dims) {
  ApproachSpec spec;
  spec.learner = LearnerKind::kLinearSvm;
  spec.selector = SelectorKind::kMargin;
  spec.blocking_dims = blocking_dims;
  return spec;
}

ApproachSpec LinearMarginEnsembleSpec(double precision) {
  ApproachSpec spec = LinearMarginSpec(0);
  spec.active_ensemble = true;
  spec.ensemble_precision = precision;
  return spec;
}

ApproachSpec LinearQbcSpec(int committee_size) {
  ApproachSpec spec;
  spec.learner = LearnerKind::kLinearSvm;
  spec.selector = SelectorKind::kQbc;
  spec.committee_size = committee_size;
  return spec;
}

ApproachSpec NeuralMarginSpec() {
  ApproachSpec spec;
  spec.learner = LearnerKind::kNeuralNet;
  spec.selector = SelectorKind::kMargin;
  return spec;
}

ApproachSpec NeuralMarginEnsembleSpec(double precision) {
  ApproachSpec spec = NeuralMarginSpec();
  spec.active_ensemble = true;
  spec.ensemble_precision = precision;
  return spec;
}

ApproachSpec NeuralQbcSpec(int committee_size) {
  ApproachSpec spec;
  spec.learner = LearnerKind::kNeuralNet;
  spec.selector = SelectorKind::kQbc;
  spec.committee_size = committee_size;
  return spec;
}

ApproachSpec RulesLfpLfnSpec() {
  ApproachSpec spec;
  spec.learner = LearnerKind::kRules;
  spec.selector = SelectorKind::kLfpLfn;
  return spec;
}

ApproachSpec RulesQbcSpec(int committee_size) {
  ApproachSpec spec;
  spec.learner = LearnerKind::kRules;
  spec.selector = SelectorKind::kQbc;
  spec.committee_size = committee_size;
  return spec;
}

ApproachSpec SupervisedTreesSpec(int num_trees) {
  ApproachSpec spec;
  spec.learner = LearnerKind::kRandomForest;
  spec.selector = SelectorKind::kRandom;
  spec.num_trees = num_trees;
  return spec;
}

ApproachSpec DeepMatcherSpec() {
  ApproachSpec spec;
  spec.learner = LearnerKind::kDeepMatcherProxy;
  spec.selector = SelectorKind::kRandom;
  return spec;
}

namespace {

// Parses a trailing integer, e.g. ("trees20", "trees") -> 20.
bool ParseSuffixInt(const std::string& name, const std::string& prefix,
                    int* value) {
  if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0) {
    return false;
  }
  const std::string digits = name.substr(prefix.size());
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
  }
  *value = std::atoi(digits.c_str());
  return *value > 0;
}

}  // namespace

bool ApproachFromName(const std::string& name, ApproachSpec* spec) {
  int value = 0;
  if (ParseSuffixInt(name, "trees", &value)) {
    *spec = TreesSpec(value);
    return true;
  }
  if (ParseSuffixInt(name, "supervised-trees", &value)) {
    *spec = SupervisedTreesSpec(value);
    return true;
  }
  if (name == "linear-margin") {
    *spec = LinearMarginSpec(0);
    return true;
  }
  if (name == "linear-margin-ensemble") {
    *spec = LinearMarginEnsembleSpec();
    return true;
  }
  if (name.size() > 17 && name.compare(0, 14, "linear-margin-") == 0 &&
      name.size() >= 3 && name.substr(name.size() - 3) == "dim") {
    const std::string digits =
        name.substr(14, name.size() - 14 - 3);
    bool numeric = !digits.empty();
    for (const char c : digits) numeric &= c >= '0' && c <= '9';
    if (numeric) {
      *spec = LinearMarginSpec(static_cast<size_t>(std::atoi(digits.c_str())));
      return true;
    }
    return false;
  }
  if (ParseSuffixInt(name, "linear-qbc", &value)) {
    *spec = LinearQbcSpec(value);
    return true;
  }
  if (name == "nn-margin") {
    *spec = NeuralMarginSpec();
    return true;
  }
  if (name == "nn-margin-ensemble") {
    *spec = NeuralMarginEnsembleSpec();
    return true;
  }
  if (ParseSuffixInt(name, "nn-qbc", &value)) {
    *spec = NeuralQbcSpec(value);
    return true;
  }
  if (name == "rules") {
    *spec = RulesLfpLfnSpec();
    return true;
  }
  if (ParseSuffixInt(name, "rules-qbc", &value)) {
    *spec = RulesQbcSpec(value);
    return true;
  }
  if (name == "deepmatcher") {
    *spec = DeepMatcherSpec();
    return true;
  }
  return false;
}

Approach MakeApproach(const ApproachSpec& spec, uint64_t seed) {
  Approach approach;
  switch (spec.learner) {
    case LearnerKind::kLinearSvm: {
      LinearSvmConfig config;
      config.seed = seed;
      approach.learner = std::make_unique<SvmLearner>(config);
      break;
    }
    case LearnerKind::kNeuralNet: {
      NeuralNetConfig config;
      config.seed = seed;
      approach.learner = std::make_unique<NeuralNetLearner>(config);
      break;
    }
    case LearnerKind::kRandomForest: {
      RandomForestConfig config;
      config.num_trees = spec.num_trees;
      config.seed = seed;
      approach.learner = std::make_unique<ForestLearner>(config);
      break;
    }
    case LearnerKind::kRules: {
      approach.learner = std::make_unique<RuleLearner>(DnfRuleLearnerConfig{});
      break;
    }
    case LearnerKind::kDeepMatcherProxy: {
      approach.learner =
          std::make_unique<NeuralNetLearner>(DeepMatcherProxyConfig(seed));
      break;
    }
  }
  switch (spec.selector) {
    case SelectorKind::kMargin:
      approach.selector = std::make_unique<MarginSelector>(spec.blocking_dims);
      break;
    case SelectorKind::kQbc:
      approach.selector =
          std::make_unique<QbcSelector>(spec.committee_size, seed ^ 0x9e37u);
      break;
    case SelectorKind::kForestQbc:
      approach.selector = std::make_unique<ForestQbcSelector>(seed ^ 0x517cu);
      break;
    case SelectorKind::kLfpLfn:
      approach.selector = std::make_unique<LfpLfnSelector>();
      break;
    case SelectorKind::kRandom:
      approach.selector = std::make_unique<RandomSelector>(seed ^ 0x2545u);
      break;
  }
  ALEM_CHECK(approach.selector->CompatibleWith(*approach.learner));
  if (spec.active_ensemble) {
    // Ensembles require a margin learner (checked again by the loop).
    ALEM_CHECK(dynamic_cast<MarginLearner*>(approach.learner.get()) !=
               nullptr);
  }
  return approach;
}

}  // namespace alem
