// Evaluators: turn per-iteration model predictions into quality metrics.
//
// ProgressiveEvaluator implements the paper's progressive F1: the model is
// tested on the *entire* post-blocking pair space (labeled + unlabeled) every
// iteration. HoldoutEvaluator implements the conventional 80/20 split used
// for the active-vs-supervised comparisons (Figs. 16-17), where a fixed 20%
// test set never participates in example selection.

#ifndef ALEM_CORE_EVALUATOR_H_
#define ALEM_CORE_EVALUATOR_H_

#include <vector>

#include "ml/metrics.h"

namespace alem {

class Evaluator {
 public:
  virtual ~Evaluator() = default;

  // Pool rows the model must be applied to each iteration.
  virtual const std::vector<size_t>& eval_rows() const = 0;

  // Metrics for predictions aligned with eval_rows().
  virtual BinaryMetrics Evaluate(
      const std::vector<int>& predictions) const = 0;

  // Ground-truth labels aligned with eval_rows(). Exposed so the session's
  // incremental progressive-F1 tally (docs/training.md) can adjust TP/FP/FN/
  // TN counts for only the rows whose prediction changed.
  virtual const std::vector<int>& eval_truth() const = 0;
};

class ProgressiveEvaluator final : public Evaluator {
 public:
  // `truth` holds the ground-truth label of every pool row.
  explicit ProgressiveEvaluator(std::vector<int> truth);

  const std::vector<size_t>& eval_rows() const override { return rows_; }
  BinaryMetrics Evaluate(const std::vector<int>& predictions) const override;
  const std::vector<int>& eval_truth() const override { return truth_; }

 private:
  std::vector<int> truth_;
  std::vector<size_t> rows_;
};

class HoldoutEvaluator final : public Evaluator {
 public:
  // `test_rows` are pool rows reserved for evaluation; `truth` is aligned
  // with `test_rows`.
  HoldoutEvaluator(std::vector<size_t> test_rows, std::vector<int> truth);

  const std::vector<size_t>& eval_rows() const override { return rows_; }
  BinaryMetrics Evaluate(const std::vector<int>& predictions) const override;
  const std::vector<int>& eval_truth() const override { return truth_; }

 private:
  std::vector<size_t> rows_;
  std::vector<int> truth_;
};

}  // namespace alem

#endif  // ALEM_CORE_EVALUATOR_H_
