// Approach specifications: named (learner, example selector) combinations.
//
// An ApproachSpec captures one cell of the paper's comparison grid, e.g.
// "Trees(20)" = random forest of 20 trees + learner-aware QBC, or
// "Linear-Margin(Ensemble)" = linear SVM + margin selection + active
// ensemble. The factory enforces the learner/selector compatibility encoded
// in the class hierarchy (Fig. 2).

#ifndef ALEM_CORE_APPROACHES_H_
#define ALEM_CORE_APPROACHES_H_

#include <memory>
#include <string>

#include "core/learner.h"
#include "core/selector.h"

namespace alem {

enum class LearnerKind {
  kLinearSvm,
  kNeuralNet,
  kRandomForest,
  kRules,
  kDeepMatcherProxy,  // Deeper supervised NN (Fig. 16 baseline).
};

enum class SelectorKind {
  kMargin,
  kQbc,        // Learner-agnostic bootstrap QBC.
  kForestQbc,  // Learner-aware QBC (trees are the committee).
  kLfpLfn,
  kRandom,     // Supervised-learning baseline.
};

struct ApproachSpec {
  LearnerKind learner = LearnerKind::kRandomForest;
  SelectorKind selector = SelectorKind::kForestQbc;

  // QBC bootstrap committee size (SelectorKind::kQbc).
  int committee_size = 2;
  // Forest size (LearnerKind::kRandomForest).
  int num_trees = 10;
  // Margin selection-time blocking dimensions; 0 = no blocking.
  size_t blocking_dims = 0;
  // Learn an active ensemble (margin learners only, Section 5.2).
  bool active_ensemble = false;
  double ensemble_precision = 0.85;

  // Display name matching the paper's figure legends, e.g.
  // "Trees(20)", "Linear-Margin(1Dim)", "NN-QBC(2)", "Rules(LFP/LFN)".
  std::string DisplayName() const;
};

// Common specs used throughout the evaluation section.
ApproachSpec TreesSpec(int num_trees);
ApproachSpec LinearMarginSpec(size_t blocking_dims = 0);
ApproachSpec LinearMarginEnsembleSpec(double precision = 0.85);
ApproachSpec LinearQbcSpec(int committee_size);
ApproachSpec NeuralMarginSpec();
// Active ensemble of neural networks — the paper's Section 5.2 notes the
// technique "can be applied as discussed without much modification".
ApproachSpec NeuralMarginEnsembleSpec(double precision = 0.85);
ApproachSpec NeuralQbcSpec(int committee_size);
ApproachSpec RulesLfpLfnSpec();
ApproachSpec RulesQbcSpec(int committee_size);
ApproachSpec SupervisedTreesSpec(int num_trees);
ApproachSpec DeepMatcherSpec();

// Parses a CLI-friendly approach name into a spec. Accepted names:
//   trees<N>                   e.g. trees20
//   linear-margin              margin, no blocking
//   linear-margin-<K>dim       margin with K blocking dimensions
//   linear-margin-ensemble     active ensemble (tau 0.85)
//   linear-qbc<B>              bootstrap QBC with B members
//   nn-margin, nn-qbc<B>       neural network variants
//   rules                      LFP/LFN rule learning
//   rules-qbc<B>               rules with bootstrap QBC
//   supervised-trees<N>        random selection baseline
//   deepmatcher                supervised deep proxy
// Returns false for unknown names.
bool ApproachFromName(const std::string& name, ApproachSpec* spec);

// Instantiated approach: a learner plus a compatible selector.
struct Approach {
  std::unique_ptr<Learner> learner;
  std::unique_ptr<ExampleSelector> selector;
};

// Builds learner + selector per the spec; aborts on incompatible combos.
// `seed` drives all stochastic components.
Approach MakeApproach(const ApproachSpec& spec, uint64_t seed);

}  // namespace alem

#endif  // ALEM_CORE_APPROACHES_H_
