// Active ensembles of high-precision classifiers (Section 5.2).
//
// Instead of refining a single classifier, the ensemble loop repeatedly
// trains a *candidate* margin learner on the remaining labeled data. When
// the candidate's precision on the Oracle-labeled examples it predicts
// positive clears a threshold (tau = 0.85 in the paper), the candidate is
// accepted: every example it predicts positive is removed from both the
// labeled and unlabeled pools, and the next candidate is learned on the
// uncovered remainder. The ensemble predicts the union of the positive
// predictions of all accepted members (plus the current candidate), which
// trades a little precision for substantially higher recall — the same idea
// rule ensembles use (Arasu et al., Qian et al.).

#ifndef ALEM_CORE_ACTIVE_ENSEMBLE_H_
#define ALEM_CORE_ACTIVE_ENSEMBLE_H_

#include <vector>

#include "core/active_loop.h"
#include "core/evaluator.h"
#include "core/learner.h"
#include "core/oracle.h"
#include "core/pool.h"
#include "core/selector.h"

namespace alem {

struct ActiveEnsembleConfig {
  ActiveLearningConfig base;
  // Minimum precision (on labeled data) for accepting a candidate.
  double precision_threshold = 0.85;
  // Require at least this many labeled predicted-positives before judging a
  // candidate's precision; prevents accepting on vacuous evidence.
  size_t min_labeled_positives = 5;
};

class ActiveEnsembleLoop {
 public:
  // `candidate` is retrained in place each iteration; `selector` is
  // typically a MarginSelector (the paper confines ensembles to margin-based
  // strategies because QBC's committee-creation times dominate).
  ActiveEnsembleLoop(MarginLearner& candidate, ExampleSelector& selector,
                     Oracle& oracle, const Evaluator& evaluator,
                     const ActiveEnsembleConfig& config);

  std::vector<IterationStats> Run(ActivePool& pool);

  // #classifiers accepted into the ensemble by termination
  // (the "#AcceptedSVMs" annotation of Fig. 11).
  size_t accepted_count() const { return accepted_count_; }

 private:
  MarginLearner& candidate_;
  ExampleSelector& selector_;
  Oracle& oracle_;
  const Evaluator& evaluator_;
  ActiveEnsembleConfig config_;
  size_t accepted_count_ = 0;
};

}  // namespace alem

#endif  // ALEM_CORE_ACTIVE_ENSEMBLE_H_
