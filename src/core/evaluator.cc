#include "core/evaluator.h"

#include <numeric>
#include <utility>

#include "util/check.h"

namespace alem {

ProgressiveEvaluator::ProgressiveEvaluator(std::vector<int> truth)
    : truth_(std::move(truth)), rows_(truth_.size()) {
  std::iota(rows_.begin(), rows_.end(), 0u);
}

BinaryMetrics ProgressiveEvaluator::Evaluate(
    const std::vector<int>& predictions) const {
  ALEM_CHECK_EQ(predictions.size(), truth_.size());
  return ComputeBinaryMetrics(predictions, truth_);
}

HoldoutEvaluator::HoldoutEvaluator(std::vector<size_t> test_rows,
                                   std::vector<int> truth)
    : rows_(std::move(test_rows)), truth_(std::move(truth)) {
  ALEM_CHECK_EQ(rows_.size(), truth_.size());
}

BinaryMetrics HoldoutEvaluator::Evaluate(
    const std::vector<int>& predictions) const {
  ALEM_CHECK_EQ(predictions.size(), truth_.size());
  return ComputeBinaryMetrics(predictions, truth_);
}

}  // namespace alem
