#include "core/run_report.h"

#include "kernels/backend.h"
#include "parallel/pool.h"

namespace alem {

obs::RunReport BuildRunReport(const PreparedDataset& data,
                              const RunConfig& config,
                              const RunResult& result, double wall_seconds,
                              std::string_view tool) {
  obs::RunReport report;
  report.kind = "run";
  report.tool = std::string(tool);

  report.dataset = data.name;
  report.approach = result.approach_name;
  report.data_seed = data.data_seed;
  report.run_seed = config.run_seed;
  report.scale = data.scale;
  report.threads = parallel::NumThreads();
  report.seed_size = config.seed_size;
  report.batch_size = config.batch_size;
  report.max_labels = config.max_labels;
  report.oracle_noise = config.oracle_noise;
  report.holdout = config.holdout;
  report.cache = data.feature_cache;
  report.kernel_backend = std::string(kernels::BackendName());
  report.warm_start = std::string(WarmStartModeName(config.warm_start));

  report.curve.reserve(result.curve.size());
  for (const IterationStats& stats : result.curve) {
    obs::ReportIteration it;
    it.iteration = stats.iteration;
    it.labels_used = stats.labels_used;
    it.precision = stats.metrics.precision;
    it.recall = stats.metrics.recall;
    it.f1 = stats.metrics.f1;
    it.train_seconds = stats.train_seconds;
    it.evaluate_seconds = stats.evaluate_seconds;
    it.select_seconds = stats.select_seconds;
    it.committee_seconds = stats.committee_seconds;
    it.scoring_seconds = stats.scoring_seconds;
    it.label_seconds = stats.label_seconds;
    it.wait_seconds = stats.wait_seconds;
    it.scored_examples = stats.scored_examples;
    it.pruned_examples = stats.pruned_examples;
    it.dnf_atoms = stats.dnf_atoms;
    it.tree_depth = stats.tree_depth;
    it.ensemble_size = stats.ensemble_size;
    report.curve.push_back(it);
  }

  report.best_f1 = result.best_f1;
  report.final_f1 =
      result.curve.empty() ? 0.0 : result.curve.back().metrics.f1;
  report.labels_to_converge = result.labels_to_converge;
  report.total_wait_seconds = result.total_wait_seconds;
  report.ensemble_accepted = result.ensemble_accepted;

  // Pool profile and kernel-backend gauge first so they land in the
  // observability snapshot below.
  parallel::StampPoolProfile(&report);
  kernels::StampBackendGauge();
  obs::StampObservability(&report);
  report.wall_seconds = wall_seconds;
  return report;
}

}  // namespace alem
