// Example selectors (Section 4 of the paper).
//
//   ExampleSelector
//   |-- RandomSelector      (supervised-learning baseline: random batches)
//   |-- QbcSelector         (learner-agnostic query-by-committee, Sec 4.1)
//   |-- ForestQbcSelector   (learner-aware QBC on a trained forest, 4.1.1)
//   |-- MarginSelector      (margin-based, Sec 4.2; optional selection-time
//   |                        blocking over top-K |weight| dims, Sec 5.1)
//   `-- LfpLfnSelector      (likely false positives/negatives for rules, 4.3)
//
// Each Select() reports its latency split into committee-creation time and
// example-scoring time, which is exactly the breakdown plotted in Fig. 10.

#ifndef ALEM_CORE_SELECTOR_H_
#define ALEM_CORE_SELECTOR_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/learner.h"
#include "core/pool.h"
#include "util/rng.h"

namespace alem {

// Seeds for one bootstrap-committee member, derived from the selection
// round's base seed through a per-member std::seed_seq. A member's streams
// depend only on (round_seed, member) — not on committee size or on the
// order members are fitted — which makes committee construction safe to
// parallelize and keeps member m's resample stable when the committee
// grows. (The pre-parallel code drew both seeds from one shared engine
// consumed in fit order, a latent seed-stability bug even in serial mode.)
struct CommitteeMemberSeeds {
  uint64_t resample_seed = 0;  // Drives the member's bootstrap resample.
  uint64_t learner_seed = 0;   // Reseeds the member learner's randomness.
};

CommitteeMemberSeeds MemberSeeds(uint64_t round_seed, int member);

struct SelectionTiming {
  double committee_seconds = 0.0;
  double scoring_seconds = 0.0;
  // #unlabeled examples fully scored and #skipped by selection-time blocking.
  size_t scored_examples = 0;
  size_t pruned_examples = 0;
};

class ExampleSelector {
 public:
  virtual ~ExampleSelector() = default;

  // Picks up to `k` unlabeled rows for the Oracle. `model` is the learner
  // trained in the current iteration. An empty result signals that the
  // selector found nothing worth labeling (the rule learner's termination
  // criterion). `timing` may be null.
  virtual std::vector<size_t> Select(const Learner& model,
                                     const ActivePool& pool, size_t k,
                                     SelectionTiming* timing) = 0;

  // Whether this selector can drive the given learner (Fig. 2 class
  // compatibility).
  virtual bool CompatibleWith(const Learner& model) const = 0;

  // Serializes the selector's mutable state — for the stochastic selectors
  // that is exactly the RNG stream position — so a restored labeling
  // session proposes the same example sequence the uninterrupted run would
  // have (docs/sessions.md). Stateless selectors return an empty blob;
  // RestoreState returns false on malformed input.
  virtual std::string SaveState() const { return {}; }
  virtual bool RestoreState(const std::string& state) {
    return state.empty();
  }

  virtual std::string_view name() const = 0;
};

// Uniform random selection — the "supervised learning" arm of Figs. 16/17,
// where each iteration labels a random batch instead of an informative one.
class RandomSelector final : public ExampleSelector {
 public:
  explicit RandomSelector(uint64_t seed) : rng_(seed) {}

  std::vector<size_t> Select(const Learner& model, const ActivePool& pool,
                             size_t k, SelectionTiming* timing) override;
  bool CompatibleWith(const Learner& model) const override;
  std::string SaveState() const override { return rng_.SaveState(); }
  bool RestoreState(const std::string& state) override {
    return rng_.RestoreState(state);
  }
  std::string_view name() const override { return "Random"; }

 private:
  Rng rng_;
};

// Learner-agnostic QBC: draws `committee_size` bootstrap samples from the
// labeled data, trains a committee of clones, and scores each unlabeled
// example by the vote variance Pi/C * (1 - Pi/C) (Mozafari et al.).
class QbcSelector final : public ExampleSelector {
 public:
  QbcSelector(int committee_size, uint64_t seed);

  std::vector<size_t> Select(const Learner& model, const ActivePool& pool,
                             size_t k, SelectionTiming* timing) override;
  bool CompatibleWith(const Learner& model) const override;
  std::string SaveState() const override { return rng_.SaveState(); }
  bool RestoreState(const std::string& state) override {
    return rng_.RestoreState(state);
  }
  std::string_view name() const override { return name_; }

  int committee_size() const { return committee_size_; }

 private:
  int committee_size_;
  Rng rng_;
  std::string name_;
};

// Learner-aware QBC for tree ensembles: the trees of the trained forest are
// the committee, so committee-creation time is zero by construction.
class ForestQbcSelector final : public ExampleSelector {
 public:
  explicit ForestQbcSelector(uint64_t seed) : rng_(seed) {}

  std::vector<size_t> Select(const Learner& model, const ActivePool& pool,
                             size_t k, SelectionTiming* timing) override;
  bool CompatibleWith(const Learner& model) const override;
  std::string SaveState() const override { return rng_.SaveState(); }
  bool RestoreState(const std::string& state) override {
    return rng_.RestoreState(state);
  }
  std::string_view name() const override { return "ForestQBC"; }

 private:
  Rng rng_;
};

// Margin-based selection: picks the unlabeled examples with the smallest
// |margin|. With blocking_dims > 0 and a linear learner, examples whose
// top-K |weight| feature dimensions are all zero are pruned without
// computing the full dot product (Section 5.1); blocking_dims == 0 disables
// the optimization (equivalent to using all dimensions for blocking).
class MarginSelector final : public ExampleSelector {
 public:
  explicit MarginSelector(size_t blocking_dims = 0)
      : blocking_dims_(blocking_dims) {}

  std::vector<size_t> Select(const Learner& model, const ActivePool& pool,
                             size_t k, SelectionTiming* timing) override;
  bool CompatibleWith(const Learner& model) const override;
  std::string_view name() const override { return "Margin"; }

  size_t blocking_dims() const { return blocking_dims_; }

 private:
  size_t blocking_dims_;
};

// Importance-weighted active learning (IWAL, Beygelzimer et al.), the
// related-work baseline of Section 2. Instead of deterministically taking
// the top-variance examples, each unlabeled example is *sampled* with a
// probability that grows with the committee disagreement on it
// (p = p_min + (1 - p_min) * 4 * variance), which preserves a non-zero
// selection probability everywhere. This implementation omits the
// importance-weighted training correction (our learners are unweighted);
// the paper's observation that IWAL "incurs excessive labels" for EM stems
// from exactly this exploration-heavy sampling.
class IwalSelector final : public ExampleSelector {
 public:
  IwalSelector(int committee_size, double min_probability, uint64_t seed);

  std::vector<size_t> Select(const Learner& model, const ActivePool& pool,
                             size_t k, SelectionTiming* timing) override;
  bool CompatibleWith(const Learner& model) const override;
  std::string SaveState() const override { return rng_.SaveState(); }
  bool RestoreState(const std::string& state) override {
    return rng_.RestoreState(state);
  }
  std::string_view name() const override { return name_; }

 private:
  int committee_size_;
  double min_probability_;
  Rng rng_;
  std::string name_;
};

// Density-weighted uncertainty sampling (Settles' information-density
// framework; an extension beyond the paper's three selector families).
// Plain margin selection can burn labels on outliers that are ambiguous but
// unrepresentative; this selector scores
//   uncertainty(x) * (average cosine similarity of x to a pool sample)^beta
// so ambiguous examples in dense regions win.
class DensityWeightedSelector final : public ExampleSelector {
 public:
  DensityWeightedSelector(double beta, uint64_t seed);

  std::vector<size_t> Select(const Learner& model, const ActivePool& pool,
                             size_t k, SelectionTiming* timing) override;
  bool CompatibleWith(const Learner& model) const override;
  std::string SaveState() const override { return rng_.SaveState(); }
  bool RestoreState(const std::string& state) override {
    return rng_.RestoreState(state);
  }
  std::string_view name() const override { return "DensityMargin"; }

 private:
  double beta_;
  Rng rng_;
};

// LFP/LFN heuristic for rule learners: likely false positives are unlabeled
// examples the DNF matches but that look dissimilar (low fraction of
// satisfied atoms); likely false negatives are examples some Rule-Minus
// relaxation matches but the full DNF rejects, that look similar. Returns an
// empty batch when neither kind exists — the paper's early-termination
// criterion for rule learning.
class LfpLfnSelector final : public ExampleSelector {
 public:
  LfpLfnSelector() = default;

  std::vector<size_t> Select(const Learner& model, const ActivePool& pool,
                             size_t k, SelectionTiming* timing) override;
  bool CompatibleWith(const Learner& model) const override;
  std::string_view name() const override { return "LFP/LFN"; }
};

}  // namespace alem

#endif  // ALEM_CORE_SELECTOR_H_
