// LabelingSession: the step-wise, resumable core of the active-learning
// loop (docs/sessions.md).
//
// ActiveLearningLoop::Run used to own the whole iterate-until-termination
// control flow, which made pausing, snapshotting, or feeding labels from an
// external UI impossible without re-running from scratch. The session
// inverts that: the caller drives
//
//     Step()          train + evaluate the current labeled data
//     NextBatch()     select the next examples to label
//     SubmitLabels()  add the labels (from the Oracle or supplied directly)
//
// and termination is a queryable state instead of a loop exit:
//
//     kNeedsStep --Step()--> kBatchReady --NextBatch()--+
//         ^                                             | batch non-empty
//         |                                             v
//         +------SubmitLabels()------------------ kAwaitingLabels
//
//     NextBatch() with an empty batch  -> kFinished  (stop_reason() says why)
//     invalid transition / bad input   -> recoverable error (state unchanged)
//
// At any iteration boundary (kNeedsStep or kFinished) the session can be
// serialized with Save()/SaveTo() and reconstructed in a fresh process with
// Restore(): learner model, labeled-pool contents, selector + oracle RNG
// streams, the cumulative IterationStats curve, plateau state, and config
// all round-trip, so the resumed run's curve and RunReport are
// bitwise-identical to the uninterrupted run at any thread count.
//
// Snapshots use the checksummed binary-container conventions of the ALFM
// feature-cache format: "ALSS" magic, u32 version, u64 payload size, u64
// FNV-1a checksum, then tagged sections ([4-char tag][u64 length][bytes]).
// Corrupt, truncated, or version-skewed files fail Read() with a clean
// error. Harness-level callers (SessionRunner, alem_cli) add their own
// sections — dataset provenance, run config, metric counters — alongside
// the session's; unknown tags are preserved and ignored.

#ifndef ALEM_CORE_SESSION_H_
#define ALEM_CORE_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/active_loop.h"
#include "core/evaluator.h"
#include "core/learner.h"
#include "core/oracle.h"
#include "core/pool.h"
#include "core/selector.h"
#include "obs/obs.h"

namespace alem {

enum class SessionState {
  kNeedsStep,       // Ready to train/evaluate the next iteration.
  kBatchReady,      // Step done; call NextBatch().
  kAwaitingLabels,  // A batch is pending; call SubmitLabels().
  kFinished,        // Terminated; stop_reason() says why.
  kFailed,          // Unrecoverable (restore mismatch); error() says why.
};

enum class StopReason {
  kRunning,           // Not terminated yet.
  kBudgetExhausted,   // Label budget consumed.
  kTargetReached,     // Progressive F1 reached target_f1.
  kPlateaued,         // Predictions stable for plateau_window iterations.
  kSelectorExhausted  // Empty pool or the selector found nothing to label.
};

std::string_view SessionStateName(SessionState state);
std::string_view StopReasonName(StopReason reason);

// A validated ALSS snapshot container: 4-char tag -> payload bytes. The
// container layer owns magic/version/checksum handling; section payloads
// are opaque here and interpreted by their writers.
struct SessionSnapshot {
  std::map<std::string, std::string> sections;

  bool has(std::string_view tag) const;
  // Payload of `tag`, or empty when absent.
  const std::string& section(std::string_view tag) const;
  void set(std::string_view tag, std::string payload);

  // Serializes/parses the checksummed container. ReadFile/Parse fail (with
  // a human-readable *error) on bad magic, unsupported version, truncated
  // or oversized payload, checksum mismatch, or malformed section framing.
  std::string Serialize() const;
  static bool Parse(std::string_view blob, SessionSnapshot* out,
                    std::string* error);
  bool WriteFile(const std::string& path, std::string* error) const;
  static bool ReadFile(const std::string& path, SessionSnapshot* out,
                       std::string* error);
};

// Decodes the session's own loop-config section out of a snapshot (the
// harness rebuilds its RunConfig budget from it before re-constructing the
// environment and restoring the session).
bool DecodeSessionLoopConfig(const SessionSnapshot& snapshot,
                             ActiveLearningConfig* config);

class LabelingSession {
 public:
  // Construction seeds the pool (SeedPool) and opens the run: the session
  // starts in kNeedsStep. All references must outlive the session; the
  // learner is retrained in place each Step.
  LabelingSession(Learner& learner, ExampleSelector& selector, Oracle& oracle,
                  const Evaluator& evaluator, ActivePool& pool,
                  const ActiveLearningConfig& config);

  // Reconstructs a mid-run session from a snapshot. The pool must be
  // freshly constructed (no labels) over the same dataset, with the same
  // exclusions applied, and learner/selector/oracle/evaluator must match
  // the original run's construction — the snapshot re-labels the pool and
  // restores model, RNG streams, curve, and plateau state. Returns null
  // with *error set when the snapshot is incomplete or inconsistent.
  static std::unique_ptr<LabelingSession> Restore(
      Learner& learner, ExampleSelector& selector, Oracle& oracle,
      const Evaluator& evaluator, ActivePool& pool,
      const SessionSnapshot& snapshot, std::string* error);

  ~LabelingSession();

  LabelingSession(const LabelingSession&) = delete;
  LabelingSession& operator=(const LabelingSession&) = delete;

  // --- Stepping ---

  // Trains on the cumulative labeled data and evaluates (one iteration's
  // phases 1-2). Valid only in kNeedsStep; returns false (state unchanged,
  // error() set) otherwise.
  bool Step();

  // Selects the next batch (phase 3). Valid only in kBatchReady. An empty
  // batch terminates the session (kFinished); otherwise the returned rows
  // await labels (kAwaitingLabels).
  std::vector<size_t> NextBatch();

  // Labels the pending batch by querying the session's Oracle (phase 4).
  // Valid only in kAwaitingLabels; double submission or submission without
  // a pending batch returns false with error() set, state unchanged.
  bool SubmitLabels();

  // Labels the pending batch with caller-provided labels (an external
  // labeling UI standing in for the Oracle). `labels[i]` applies to
  // `pending_batch()[i]` and must be 0 or 1; a size mismatch or an invalid
  // label is rejected recoverably (false, state unchanged).
  bool SubmitLabels(std::span<const int> labels);

  // --- Introspection ---

  SessionState state() const { return state_; }
  StopReason stop_reason() const { return stop_reason_; }
  bool finished() const {
    return state_ == SessionState::kFinished || state_ == SessionState::kFailed;
  }
  // Last recoverable-rejection or failure message; empty when none.
  const std::string& error() const { return error_; }

  // Completed + in-flight iteration count (0 until the first Step).
  size_t iteration() const { return iteration_; }
  // #times this session has been restored from a snapshot (provenance).
  uint32_t resume_count() const { return resume_count_; }
  const SeedResult& seed_result() const { return seed_result_; }
  const std::vector<size_t>& pending_batch() const { return pending_batch_; }
  const ActiveLearningConfig& config() const { return config_; }

  // Per-iteration statistics recorded so far (one entry per completed
  // iteration; the terminating no-op iteration included once finished).
  const std::vector<IterationStats>& curve() const { return curve_; }
  std::vector<IterationStats> TakeCurve() && { return std::move(curve_); }

  // --- Snapshotting ---

  // Serializes the session's sections into `snapshot` (merging with any
  // sections already present, e.g. harness provenance). Valid only at an
  // iteration boundary — kNeedsStep or kFinished; mid-iteration saves are
  // rejected (false, *error set) because the determinism contract is
  // defined at boundaries.
  bool SaveTo(SessionSnapshot* snapshot, std::string* error) const;

  // SaveTo + WriteFile convenience.
  bool Save(const std::string& path, std::string* error) const;

 private:
  LabelingSession(Learner& learner, ExampleSelector& selector, Oracle& oracle,
                  const Evaluator& evaluator, ActivePool& pool,
                  const ActiveLearningConfig& config, bool seed_pool);

  // Phases 3b/4 bookkeeping shared by SubmitLabels and the terminating
  // NextBatch: wait time, metrics, curve push, iteration span close.
  void FinishIteration();
  void Finish(StopReason reason);
  bool Reject(std::string message);

  // Delta-based progressive F1 (warm_start != kOff; docs/training.md):
  // updates the TP/FP/FN/TN tally for only the rows whose prediction changed
  // since the cached previous iteration, falling back to a full rescore when
  // the cache is cold and auditing against one periodically. Counts updated
  // rows into eval.rows_rescored. Bitwise-equal doubles to a full
  // Evaluate(): both funnel through MetricsFromCounts.
  BinaryMetrics EvaluateIncremental(const std::vector<int>& predictions);
  void ResetEvalCache();

  Learner& learner_;
  ExampleSelector& selector_;
  Oracle& oracle_;
  const Evaluator& evaluator_;
  ActivePool& pool_;
  ActiveLearningConfig config_;

  SessionState state_ = SessionState::kNeedsStep;
  StopReason stop_reason_ = StopReason::kRunning;
  std::string error_;

  size_t iteration_ = 0;
  uint32_t resume_count_ = 0;
  SeedResult seed_result_;
  std::vector<IterationStats> curve_;
  IterationStats stats_;  // The in-flight iteration's record.
  std::vector<size_t> pending_batch_;

  // Plateau-termination state (config.plateau_window > 0).
  std::vector<int> previous_predictions_;
  size_t stable_iterations_ = 0;

  // Incremental-evaluation cache (warm_start != kOff): the previous
  // iteration's predictions aligned with evaluator_.eval_rows() (empty =
  // cold, full rescore next Step), the confusion tally they imply, and the
  // countdown to the next full-rescore audit. Snapshotted as the "IEVL"
  // section so eval.rows_rescored stitches exactly across save/resume; a
  // malformed or absent section degrades to a cold cache, never a restore
  // failure.
  std::vector<uint8_t> eval_cache_;
  uint64_t eval_tp_ = 0;
  uint64_t eval_fp_ = 0;
  uint64_t eval_fn_ = 0;
  uint64_t eval_tn_ = 0;
  uint32_t eval_audit_countdown_ = 0;

  // The loop.run / loop.iteration trace spans outlive single calls, so the
  // session holds them open across the step-wise API (ObsSpan is
  // intentionally pinned — neither copyable nor movable).
  std::unique_ptr<obs::ObsSpan> run_span_;
  std::unique_ptr<obs::ObsSpan> iteration_span_;
};

}  // namespace alem

#endif  // ALEM_CORE_SESSION_H_
