// End-to-end experiment harness.
//
// PrepareDataset runs the full preprocessing pipeline once per dataset
// (generate -> offline blocking -> float features -> Boolean features), and
// RunActiveLearning executes one (approach, oracle, evaluation-protocol)
// cell on a prepared dataset. Benchmarks and examples are thin layers over
// these two calls.
//
// PrepareDataset takes a PrepareOptions aggregate rather than positional
// arguments: the options map 1:1 onto the provenance block of RunReport
// artifacts, so every knob that changes the prepared bytes (profile, seed,
// scale) or how they are obtained (cache policy, thread count) is named at
// the call site. The float feature matrix is served from the persistent
// feature cache when one is configured (see docs/featurization.md).

#ifndef ALEM_CORE_HARNESS_H_
#define ALEM_CORE_HARNESS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/active_loop.h"
#include "core/approaches.h"
#include "core/evaluator.h"
#include "core/oracle.h"
#include "core/pool.h"
#include "core/session.h"
#include "data/dataset.h"
#include "features/boolean_features.h"
#include "features/feature_matrix.h"
#include "synth/profiles.h"

namespace alem {

struct PreparedDataset {
  std::string name;
  EmDataset dataset;
  // Post-blocking candidate pairs and their ground-truth labels.
  std::vector<RecordPair> pairs;
  std::vector<int> truth;
  // Float features (21 sims x matched columns) for all pairs.
  FeatureMatrix float_features;
  // Boolean atom features for the rule learner.
  FeatureMatrix boolean_features;
  // Kept for pretty-printing learned rules. Shared because PreparedDataset
  // is copied into per-run state while featurizers are not copyable.
  std::shared_ptr<BooleanFeaturizer> featurizer;
  std::vector<std::string> feature_names;

  double class_skew = 0.0;
  size_t num_matches = 0;

  // Generation provenance, stamped into RunReport artifacts so a learning
  // curve is reproducible from its report alone.
  uint64_t data_seed = 0;
  double scale = 1.0;
  // How the float feature matrix was obtained: "off" (no cache configured),
  // "miss" (computed and stored), or "hit" (loaded from the cache).
  std::string feature_cache = "off";
};

// Everything PrepareDataset needs, in RunReport-provenance order. Designated
// initializers keep call sites readable:
//   PrepareDataset({.profile = AbtBuyProfile(), .data_seed = 7, .scale = 0.3});
struct PrepareOptions {
  SynthProfile profile;
  uint64_t data_seed = 7;
  double scale = 1.0;
  // Feature-matrix cache policy. When use_cache is true the cache directory
  // resolves as cache_dir (if non-empty) > $ALEM_CACHE_DIR > disabled; when
  // false the cache is never consulted regardless of the environment.
  bool use_cache = true;
  std::string cache_dir;
  // > 0 pins the deterministic thread pool before featurization (same effect
  // as parallel::SetNumThreads); 0 leaves the current setting alone.
  int threads = 0;
};

// Generates the dataset and runs the preprocessing pipeline.
PreparedDataset PrepareDataset(const PrepareOptions& options);

// The seed/batch/budget/target knobs live in the shared LoopBudget base
// (core/active_loop.h), so RunConfig and ActiveLearningConfig can never
// drift apart; `config.budget() = other.budget()` copies them across.
struct RunConfig : LoopBudget {
  ApproachSpec approach;
  // Oracle label-flip probability (0 = perfect Oracle).
  double oracle_noise = 0.0;
  // Evaluate on a held-out split instead of progressively on all pairs.
  bool holdout = false;
  double holdout_fraction = 0.2;
  // Drives seed sampling, learner randomness, noisy-oracle flips, splits.
  uint64_t run_seed = 1;
  // Incremental training + evaluation engine (--warm-start, docs/
  // training.md). Results-affecting like run_seed: a resumed session takes
  // the mode from the snapshot, not the CLI.
  WarmStartMode warm_start = WarmStartMode::kOff;
};

struct RunResult {
  std::string approach_name;
  std::vector<IterationStats> curve;

  // Best F1 along the curve, and the fewest labels at which the curve is
  // within `kConvergenceSlack` of it (the paper's "#labels to convergence").
  double best_f1 = 0.0;
  size_t labels_to_converge = 0;

  // Active-ensemble runs: #accepted classifiers at termination.
  size_t ensemble_accepted = 0;

  // Total user wait time across all iterations.
  double total_wait_seconds = 0.0;

  // The learner as trained at termination (shared so RunResult stays
  // copyable). For ensemble runs this is the final candidate; the accepted
  // members' predictions are not retained beyond the curve metrics.
  std::shared_ptr<Learner> final_model;
};

inline constexpr double kConvergenceSlack = 0.005;

// Fills the derived summary fields (best_f1, labels_to_converge,
// total_wait_seconds, ensemble_accepted) from result->curve.
void FinalizeRunResult(RunResult* result);

// Runs one approach on a prepared dataset.
RunResult RunActiveLearning(const PreparedDataset& data,
                            const RunConfig& config);

// The per-run environment RunActiveLearning used to build inline: pool over
// the approach-appropriate features, evaluation protocol, oracle, and the
// instantiated approach. Factored out so a resumed session (which must
// reconstruct the identical environment in a fresh process) and a fresh run
// share one construction path — the RNG seed derivations inside are part of
// the determinism contract (docs/sessions.md).
struct RunEnv {
  ActivePool pool;
  std::unique_ptr<Evaluator> evaluator;
  std::unique_ptr<Oracle> oracle;
  Approach approach;
};

RunEnv BuildRunEnv(const PreparedDataset& data, const RunConfig& config);

// Provenance parsed back out of a session snapshot: everything needed to
// re-prepare the dataset and rebuild the run environment before restoring
// the session itself (`alem_cli session resume` drives this).
struct SessionRunInfo {
  std::string dataset;
  uint64_t data_seed = 7;
  double scale = 1.0;
  // The original prepare's feature-cache outcome ("off"/"miss"/"hit") —
  // the stitched report's config.cache provenance.
  std::string feature_cache = "off";
  RunConfig config;
};

bool ReadSessionRunInfo(const SessionSnapshot& snapshot, SessionRunInfo* info,
                        std::string* error);

// Owns one non-ensemble run's environment plus its LabelingSession, and
// layers run-level snapshotting on top of the session's: Save() adds
// dataset provenance, the RunConfig, the ApproachSpec, and the metric
// counter/gauge totals to the session sections; Restore() rebuilds the
// counters (histograms restart empty — they are latency telemetry, not part
// of the determinism contract) and the session from them. RunActiveLearning
// is a thin wrapper over this class.
class SessionRunner {
 public:
  // Fresh run: builds the environment and seeds the session. Ensemble
  // approaches are not sessionable (ActiveEnsembleLoop owns its own loop);
  // constructing with one aborts.
  SessionRunner(const PreparedDataset& data, const RunConfig& config);

  // Rebuilds the environment for `data`/`config` (obtained from the
  // snapshot via ReadSessionRunInfo) and restores the session mid-run.
  // Returns null with *error set on any mismatch or malformed section.
  static std::unique_ptr<SessionRunner> Restore(
      const PreparedDataset& data, const RunConfig& config,
      const SessionSnapshot& snapshot, std::string* error);

  LabelingSession& session() { return *session_; }
  const LabelingSession& session() const { return *session_; }

  // Drives the session until it finishes, or — when stop_after > 0 — until
  // `stop_after` iterations have completed, pausing at the iteration
  // boundary (the session is then saveable).
  void Run(size_t stop_after = 0);

  // Session sections + provenance + metrics, as one ALSS container file.
  bool Save(const std::string& path, std::string* error) const;

  // Converts the finished (or paused) session into the same RunResult
  // RunActiveLearning returns. Consumes the curve.
  RunResult TakeResult();

 private:
  SessionRunner(const PreparedDataset& data, const RunConfig& config,
                bool start_session);

  std::string dataset_name_;
  uint64_t data_seed_ = 0;
  double scale_ = 1.0;
  std::string feature_cache_ = "off";
  RunConfig config_;
  RunEnv env_;
  std::unique_ptr<LabelingSession> session_;
};

// Averages F1 curves of repeated runs (distinct run seeds), padding shorter
// curves with their final value; used for noisy-oracle experiments. Returns
// (labels, mean F1) points.
struct AveragedPoint {
  size_t labels = 0;
  double mean_f1 = 0.0;
  double stddev_f1 = 0.0;
};
std::vector<AveragedPoint> AverageCurves(
    const std::vector<std::vector<IterationStats>>& curves);

}  // namespace alem

#endif  // ALEM_CORE_HARNESS_H_
