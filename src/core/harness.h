// End-to-end experiment harness.
//
// PrepareDataset runs the full preprocessing pipeline once per dataset
// (generate -> offline blocking -> float features -> Boolean features), and
// RunActiveLearning executes one (approach, oracle, evaluation-protocol)
// cell on a prepared dataset. Benchmarks and examples are thin layers over
// these two calls.
//
// PrepareDataset takes a PrepareOptions aggregate rather than positional
// arguments: the options map 1:1 onto the provenance block of RunReport
// artifacts, so every knob that changes the prepared bytes (profile, seed,
// scale) or how they are obtained (cache policy, thread count) is named at
// the call site. The float feature matrix is served from the persistent
// feature cache when one is configured (see docs/featurization.md).

#ifndef ALEM_CORE_HARNESS_H_
#define ALEM_CORE_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/active_loop.h"
#include "core/approaches.h"
#include "data/dataset.h"
#include "features/boolean_features.h"
#include "features/feature_matrix.h"
#include "synth/profiles.h"

namespace alem {

struct PreparedDataset {
  std::string name;
  EmDataset dataset;
  // Post-blocking candidate pairs and their ground-truth labels.
  std::vector<RecordPair> pairs;
  std::vector<int> truth;
  // Float features (21 sims x matched columns) for all pairs.
  FeatureMatrix float_features;
  // Boolean atom features for the rule learner.
  FeatureMatrix boolean_features;
  // Kept for pretty-printing learned rules. Shared because PreparedDataset
  // is copied into per-run state while featurizers are not copyable.
  std::shared_ptr<BooleanFeaturizer> featurizer;
  std::vector<std::string> feature_names;

  double class_skew = 0.0;
  size_t num_matches = 0;

  // Generation provenance, stamped into RunReport artifacts so a learning
  // curve is reproducible from its report alone.
  uint64_t data_seed = 0;
  double scale = 1.0;
  // How the float feature matrix was obtained: "off" (no cache configured),
  // "miss" (computed and stored), or "hit" (loaded from the cache).
  std::string feature_cache = "off";
};

// Everything PrepareDataset needs, in RunReport-provenance order. Designated
// initializers keep call sites readable:
//   PrepareDataset({.profile = AbtBuyProfile(), .data_seed = 7, .scale = 0.3});
struct PrepareOptions {
  SynthProfile profile;
  uint64_t data_seed = 7;
  double scale = 1.0;
  // Feature-matrix cache policy. When use_cache is true the cache directory
  // resolves as cache_dir (if non-empty) > $ALEM_CACHE_DIR > disabled; when
  // false the cache is never consulted regardless of the environment.
  bool use_cache = true;
  std::string cache_dir;
  // > 0 pins the deterministic thread pool before featurization (same effect
  // as parallel::SetNumThreads); 0 leaves the current setting alone.
  int threads = 0;
};

// Generates the dataset and runs the preprocessing pipeline.
PreparedDataset PrepareDataset(const PrepareOptions& options);

struct RunConfig {
  ApproachSpec approach;
  size_t seed_size = 30;
  size_t batch_size = 10;
  size_t max_labels = 400;
  // Early stop at this progressive F1 (0 disables).
  double target_f1 = 0.0;
  // Oracle label-flip probability (0 = perfect Oracle).
  double oracle_noise = 0.0;
  // Evaluate on a held-out split instead of progressively on all pairs.
  bool holdout = false;
  double holdout_fraction = 0.2;
  // Drives seed sampling, learner randomness, noisy-oracle flips, splits.
  uint64_t run_seed = 1;
};

struct RunResult {
  std::string approach_name;
  std::vector<IterationStats> curve;

  // Best F1 along the curve, and the fewest labels at which the curve is
  // within `kConvergenceSlack` of it (the paper's "#labels to convergence").
  double best_f1 = 0.0;
  size_t labels_to_converge = 0;

  // Active-ensemble runs: #accepted classifiers at termination.
  size_t ensemble_accepted = 0;

  // Total user wait time across all iterations.
  double total_wait_seconds = 0.0;

  // The learner as trained at termination (shared so RunResult stays
  // copyable). For ensemble runs this is the final candidate; the accepted
  // members' predictions are not retained beyond the curve metrics.
  std::shared_ptr<Learner> final_model;
};

inline constexpr double kConvergenceSlack = 0.005;

// Runs one approach on a prepared dataset.
RunResult RunActiveLearning(const PreparedDataset& data,
                            const RunConfig& config);

// Averages F1 curves of repeated runs (distinct run seeds), padding shorter
// curves with their final value; used for noisy-oracle experiments. Returns
// (labels, mean F1) points.
struct AveragedPoint {
  size_t labels = 0;
  double mean_f1 = 0.0;
  double stddev_f1 = 0.0;
};
std::vector<AveragedPoint> AverageCurves(
    const std::vector<std::vector<IterationStats>>& curves);

}  // namespace alem

#endif  // ALEM_CORE_HARNESS_H_
