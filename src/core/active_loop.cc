#include "core/active_loop.h"

#include <algorithm>

#include "obs/obs.h"
#include "obs/profile.h"
#include "util/check.h"
#include "util/rng.h"

namespace alem {

size_t SeedPool(ActivePool& pool, Oracle& oracle, size_t seed_size,
                uint64_t seed) {
  Rng rng(seed);
  size_t labeled = 0;
  bool has_positive = false;
  bool has_negative = false;

  auto label_random_batch = [&](size_t count) {
    const std::vector<size_t>& unlabeled = pool.unlabeled_rows();
    if (unlabeled.empty()) return;
    const size_t take = std::min(count, unlabeled.size());
    const std::vector<size_t> picks =
        rng.SampleWithoutReplacement(unlabeled.size(), take);
    // Materialize rows first: labeling invalidates `unlabeled`.
    std::vector<size_t> rows(take);
    for (size_t i = 0; i < take; ++i) rows[i] = unlabeled[picks[i]];
    for (const size_t row : rows) {
      const int label = oracle.Label(row);
      pool.AddLabel(row, label);
      ++labeled;
      (label == 1 ? has_positive : has_negative) = true;
    }
  };

  label_random_batch(seed_size);
  // Both classes are required to train any of the learners. Under heavy
  // class skew a 30-example seed occasionally misses the minority class;
  // keep labeling small random batches until it shows up.
  int extra_rounds = 0;
  while ((!has_positive || !has_negative) && extra_rounds < 50 &&
         !pool.unlabeled_rows().empty()) {
    label_random_batch(10);
    ++extra_rounds;
  }
  return labeled;
}

void CollectInterpretability(const Learner& learner, IterationStats* stats) {
  if (const auto* forest = dynamic_cast<const ForestLearner*>(&learner)) {
    stats->dnf_atoms = forest->model().TotalDnfAtoms();
    stats->tree_depth = forest->model().MaxDepth();
  } else if (const auto* rules = dynamic_cast<const RuleLearner*>(&learner)) {
    stats->dnf_atoms = rules->dnf().NumAtoms();
  }
}

ActiveLearningLoop::ActiveLearningLoop(Learner& learner,
                                       ExampleSelector& selector,
                                       Oracle& oracle,
                                       const Evaluator& evaluator,
                                       const ActiveLearningConfig& config)
    : learner_(learner),
      selector_(selector),
      oracle_(oracle),
      evaluator_(evaluator),
      config_(config) {
  ALEM_CHECK(selector.CompatibleWith(learner));
  ALEM_CHECK_GT(config.batch_size, 0u);
}

std::vector<IterationStats> ActiveLearningLoop::Run(ActivePool& pool) {
  obs::ObsSpan run_span("loop.run", "core");
  static obs::Counter& iteration_counter =
      obs::MetricsRegistry::Global().GetCounter("loop.iterations");
  static obs::Gauge& labels_gauge =
      obs::MetricsRegistry::Global().GetGauge("loop.labels_used");
  static obs::Histogram& wait_histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          "loop.wait_seconds", {0.001, 0.01, 0.1, 1.0, 10.0, 60.0});

  std::vector<IterationStats> curve;
  {
    obs::ObsSpan seed_span("loop.seed", "core");
    SeedPool(pool, oracle_, config_.seed_size, config_.seed);
  }

  std::vector<int> previous_predictions;
  size_t stable_iterations = 0;
  for (size_t iteration = 1;; ++iteration) {
    obs::ObsSpan iteration_span("loop.iteration", "core");
    iteration_counter.Increment();
    IterationStats stats;
    stats.iteration = iteration;
    stats.labels_used = pool.num_labeled();

    // 1. Train on the cumulative labeled data.
    {
      obs::ObsSpan train_span("loop.train", "core");
      learner_.Fit(pool.ActiveLabeledFeatures(), pool.ActiveLabeledLabels());
      stats.train_seconds = train_span.Close();
    }

    // 2. Evaluate. Excluded from user wait time: the paper's wait metric
    // only counts work between the user's label submissions.
    {
      obs::ObsSpan evaluate_span("loop.evaluate", "core");
      const std::vector<size_t>& eval_rows = evaluator_.eval_rows();
      // Roofline items: one per evaluated row (obs/profile.h).
      if (obs::profile::Region* profiled =
              obs::profile::ActiveRegion("loop.evaluate")) {
        obs::profile::AddWork(*profiled, eval_rows.size());
      }
      std::vector<int> predictions(eval_rows.size());
      // One batched sweep through the learner's vector kernel (the fan-out
      // runs under "ml.batch" inside this evaluate span).
      learner_.PredictBatch(pool.features(), eval_rows, predictions.data());
      stats.metrics = evaluator_.Evaluate(predictions);
      CollectInterpretability(learner_, &stats);

      // Plateau detection: count consecutive iterations whose predictions
      // are identical to the previous iteration's.
      if (config_.plateau_window > 0) {
        if (predictions == previous_predictions) {
          ++stable_iterations;
        } else {
          stable_iterations = 0;
        }
        previous_predictions = std::move(predictions);
      }
      stats.evaluate_seconds = evaluate_span.Close();
    }

    // 3. Select the next batch.
    const bool plateaued = config_.plateau_window > 0 &&
                           stable_iterations >= config_.plateau_window;
    const bool budget_exhausted =
        pool.num_labeled() + config_.batch_size > config_.max_labels &&
        pool.num_labeled() >= config_.max_labels;
    const bool target_reached =
        config_.target_f1 > 0.0 && stats.metrics.f1 >= config_.target_f1;
    std::vector<size_t> batch;
    {
      obs::ObsSpan select_span("loop.select", "core");
      if (!budget_exhausted && !target_reached && !plateaued &&
          !pool.unlabeled_rows().empty()) {
        SelectionTiming timing;
        const size_t remaining_budget =
            config_.max_labels > pool.num_labeled()
                ? config_.max_labels - pool.num_labeled()
                : 0;
        batch = selector_.Select(
            learner_, pool, std::min(config_.batch_size, remaining_budget),
            &timing);
        stats.committee_seconds = timing.committee_seconds;
        stats.scoring_seconds = timing.scoring_seconds;
        stats.scored_examples = timing.scored_examples;
        stats.pruned_examples = timing.pruned_examples;
      }
      stats.select_seconds = select_span.Close();
    }

    // 4. Query the Oracle and grow the training set (a no-op span on the
    // terminating iteration). Label time is the user's own and excluded
    // from wait time.
    {
      obs::ObsSpan label_span("loop.label", "core");
      for (const size_t row : batch) {
        pool.AddLabel(row, oracle_.Label(row));
      }
      stats.label_seconds = label_span.Close();
    }

    // User wait time is the sum of the measured phase spans (train +
    // select); summing spans rather than re-reading a restarted wall clock
    // keeps evaluator time out of it (paper §6, Fig. 13).
    stats.wait_seconds = stats.train_seconds + stats.select_seconds;
    wait_histogram.Observe(stats.wait_seconds);
    labels_gauge.Set(static_cast<double>(pool.num_labeled()));
    curve.push_back(stats);

    if (batch.empty()) break;  // Termination: budget, target, or selector.
  }
  // High-water-mark memory at the end of the run, for the flight recorder.
  static obs::Gauge& peak_rss_gauge =
      obs::MetricsRegistry::Global().GetGauge("process.peak_rss_bytes");
  peak_rss_gauge.Set(static_cast<double>(obs::PeakRssBytes()));
  return curve;
}

}  // namespace alem
