#include "core/active_loop.h"

#include <algorithm>

#include "core/session.h"
#include "util/check.h"
#include "util/rng.h"

namespace alem {

std::string_view WarmStartModeName(WarmStartMode mode) {
  switch (mode) {
    case WarmStartMode::kOn:
      return "on";
    case WarmStartMode::kAuto:
      return "auto";
    case WarmStartMode::kOff:
      break;
  }
  return "off";
}

bool ParseWarmStartMode(std::string_view name, WarmStartMode* mode) {
  if (name == "off") {
    *mode = WarmStartMode::kOff;
  } else if (name == "on") {
    *mode = WarmStartMode::kOn;
  } else if (name == "auto") {
    *mode = WarmStartMode::kAuto;
  } else {
    return false;
  }
  return true;
}

SeedResult SeedPool(ActivePool& pool, Oracle& oracle, size_t seed_size,
                    uint64_t seed) {
  Rng rng(seed);
  SeedResult result;
  bool has_positive = false;
  bool has_negative = false;

  auto label_random_batch = [&](size_t count) {
    const std::vector<size_t>& unlabeled = pool.unlabeled_rows();
    if (unlabeled.empty()) return;
    const size_t take = std::min(count, unlabeled.size());
    const std::vector<size_t> picks =
        rng.SampleWithoutReplacement(unlabeled.size(), take);
    // Materialize rows first: labeling invalidates `unlabeled`.
    std::vector<size_t> rows(take);
    for (size_t i = 0; i < take; ++i) rows[i] = unlabeled[picks[i]];
    for (const size_t row : rows) {
      const int label = oracle.Label(row);
      pool.AddLabel(row, label);
      ++result.labeled;
      (label == 1 ? has_positive : has_negative) = true;
    }
  };

  label_random_batch(seed_size);
  // Both classes are required to train any of the learners. Under heavy
  // class skew a 30-example seed occasionally misses the minority class;
  // keep labeling small random batches until it shows up. Pool exhaustion
  // bounds the retry — a single-class pool terminates with the whole pool
  // labeled and has_both_classes = false, never an unbounded spin.
  while ((!has_positive || !has_negative) && !pool.unlabeled_rows().empty()) {
    label_random_batch(10);
  }
  result.has_both_classes = has_positive && has_negative;
  return result;
}

void CollectInterpretability(const Learner& learner, IterationStats* stats) {
  if (const auto* forest = dynamic_cast<const ForestLearner*>(&learner)) {
    stats->dnf_atoms = forest->model().TotalDnfAtoms();
    stats->tree_depth = forest->model().MaxDepth();
  } else if (const auto* rules = dynamic_cast<const RuleLearner*>(&learner)) {
    stats->dnf_atoms = rules->dnf().NumAtoms();
  }
}

ActiveLearningLoop::ActiveLearningLoop(Learner& learner,
                                       ExampleSelector& selector,
                                       Oracle& oracle,
                                       const Evaluator& evaluator,
                                       const ActiveLearningConfig& config)
    : learner_(learner),
      selector_(selector),
      oracle_(oracle),
      evaluator_(evaluator),
      config_(config) {
  ALEM_CHECK(selector.CompatibleWith(learner));
  ALEM_CHECK_GT(config.batch_size, 0u);
}

std::vector<IterationStats> ActiveLearningLoop::Run(ActivePool& pool) {
  LabelingSession session(learner_, selector_, oracle_, evaluator_, pool,
                          config_);
  while (!session.finished()) {
    switch (session.state()) {
      case SessionState::kNeedsStep:
        ALEM_CHECK(session.Step());
        break;
      case SessionState::kBatchReady:
        session.NextBatch();
        break;
      case SessionState::kAwaitingLabels:
        ALEM_CHECK(session.SubmitLabels());
        break;
      default:
        ALEM_CHECK(false);  // kFinished/kFailed are handled by the loop guard.
    }
  }
  ALEM_CHECK(session.state() == SessionState::kFinished);
  return std::move(session).TakeCurve();
}

}  // namespace alem
