#include "core/harness.h"

#include <algorithm>

#include "blocking/jaccard_blocking.h"
#include "core/active_ensemble.h"
#include "core/evaluator.h"
#include "core/oracle.h"
#include "features/feature_cache.h"
#include "features/feature_extractor.h"
#include "features/feature_schema.h"
#include "obs/obs.h"
#include "obs/profile.h"
#include "parallel/pool.h"
#include "sim/similarity.h"
#include "synth/generator.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/stats.h"

namespace alem {

PreparedDataset PrepareDataset(const PrepareOptions& options) {
  if (options.threads > 0) parallel::SetNumThreads(options.threads);
  const SynthProfile& profile = options.profile;
  obs::ObsSpan prepare_span("harness.prepare", "harness", profile.name);
  PreparedDataset prepared;
  prepared.name = profile.name;
  prepared.data_seed = options.data_seed;
  prepared.scale = options.scale;
  {
    obs::ObsSpan generate_span("harness.generate", "harness");
    prepared.dataset = GenerateDataset(profile, options.data_seed,
                                       options.scale);
  }

  {
    obs::ObsSpan block_span("harness.block", "harness");
    BlockingConfig blocking;
    blocking.jaccard_threshold = profile.blocking_threshold;
    prepared.pairs = JaccardBlocking(prepared.dataset, blocking);
    prepared.truth = prepared.dataset.LabelsFor(prepared.pairs);
    prepared.class_skew = prepared.dataset.ClassSkew(prepared.pairs);
    prepared.num_matches = static_cast<size_t>(
        std::count(prepared.truth.begin(), prepared.truth.end(), 1));
  }

  {
    obs::ObsSpan featurize_span("harness.featurize", "harness");
    const FeatureSchema schema = FeatureSchema::FromDataset(prepared.dataset);
    prepared.feature_names = schema.FeatureNames();

    FeatureCache cache(options.use_cache
                           ? FeatureCache::ResolveDir(options.cache_dir)
                           : "");
    FeatureCacheKey key;
    key.dataset_name = profile.name;
    key.profile_fingerprint = ProfileFingerprint(profile);
    key.data_seed = options.data_seed;
    key.scale = options.scale;
    key.sim_fingerprint = SimRegistryFingerprint();
    key.num_dims = schema.num_dims();

    bool loaded = false;
    if (cache.enabled()) {
      obs::ObsSpan cache_span("harness.featurize.cache", "harness");
      loaded = cache.Load(key, &prepared.float_features) &&
               prepared.float_features.rows() == prepared.pairs.size();
    }
    if (loaded) {
      prepared.feature_cache = "hit";
      // A cache hit skips every similarity evaluation, so nothing registers
      // the sim.calls counter; register it explicitly so warm-run reports
      // still carry sim.calls=0 instead of omitting the key.
      obs::MetricsRegistry::Global().GetCounter("sim.calls");
    } else {
      // Recompute (also covers the corrupt / truncated / stale-rows cases,
      // which Load reports as misses) and publish for the next process.
      FeatureExtractor extractor(prepared.dataset);
      prepared.float_features = extractor.ExtractAll(prepared.pairs);
      if (cache.enabled()) {
        obs::ObsSpan cache_span("harness.featurize.cache", "harness");
        cache.Store(key, prepared.float_features);
        prepared.feature_cache = "miss";
      }
    }
    prepared.featurizer = std::make_shared<BooleanFeaturizer>(schema);
    prepared.boolean_features =
        prepared.featurizer->Featurize(prepared.float_features);
    // Roofline items for the featurize region (obs/profile.h): one item
    // per candidate pair, whether the matrix was recomputed or loaded from
    // cache; output traffic is the produced float matrix.
    if (obs::profile::Region* profiled =
            obs::profile::ActiveRegion("harness.featurize")) {
      obs::profile::AddWork(*profiled, prepared.pairs.size(),
                            static_cast<uint64_t>(
                                prepared.float_features.rows()) *
                                prepared.float_features.dims() *
                                sizeof(float));
    }
  }
  return prepared;
}

namespace {

bool IsRuleApproach(const ApproachSpec& spec) {
  return spec.learner == LearnerKind::kRules;
}

void FinalizeResult(const PreparedDataset& data, RunResult* result) {
  (void)data;
  for (const IterationStats& stats : result->curve) {
    result->best_f1 = std::max(result->best_f1, stats.metrics.f1);
    result->total_wait_seconds += stats.wait_seconds;
    result->ensemble_accepted =
        std::max(result->ensemble_accepted, stats.ensemble_size);
  }
  result->labels_to_converge =
      result->curve.empty() ? 0 : result->curve.back().labels_used;
  for (const IterationStats& stats : result->curve) {
    if (stats.metrics.f1 >= result->best_f1 - kConvergenceSlack) {
      result->labels_to_converge = stats.labels_used;
      break;
    }
  }
}

}  // namespace

RunResult RunActiveLearning(const PreparedDataset& data,
                            const RunConfig& config) {
  obs::ObsSpan run_span("harness.run", "harness",
                        config.approach.DisplayName());
  const FeatureMatrix& features = IsRuleApproach(config.approach)
                                      ? data.boolean_features
                                      : data.float_features;
  ALEM_CHECK_GT(features.rows(), 0u);

  ActivePool pool(features);

  // Evaluation protocol.
  std::unique_ptr<Evaluator> evaluator;
  if (config.holdout) {
    // Random held-out test split; test rows never enter example selection.
    Rng split_rng(config.run_seed ^ 0x8badf00dULL);
    const size_t test_size = static_cast<size_t>(
        static_cast<double>(pool.size()) * config.holdout_fraction);
    std::vector<size_t> test_rows =
        split_rng.SampleWithoutReplacement(pool.size(), test_size);
    std::sort(test_rows.begin(), test_rows.end());
    std::vector<int> test_truth(test_rows.size());
    for (size_t i = 0; i < test_rows.size(); ++i) {
      test_truth[i] = data.truth[test_rows[i]];
      pool.Exclude(test_rows[i]);
    }
    evaluator = std::make_unique<HoldoutEvaluator>(std::move(test_rows),
                                                   std::move(test_truth));
  } else {
    evaluator = std::make_unique<ProgressiveEvaluator>(data.truth);
  }

  // Oracle.
  std::unique_ptr<Oracle> oracle;
  if (config.oracle_noise > 0.0) {
    oracle = std::make_unique<NoisyOracle>(data.truth, config.oracle_noise,
                                           config.run_seed ^ 0x0c0ffeeULL);
  } else {
    oracle = std::make_unique<PerfectOracle>(data.truth);
  }

  Approach approach = MakeApproach(config.approach, config.run_seed);

  RunResult result;
  result.approach_name = config.approach.DisplayName();

  if (config.approach.active_ensemble) {
    auto* margin_learner =
        dynamic_cast<MarginLearner*>(approach.learner.get());
    ALEM_CHECK(margin_learner != nullptr);
    ActiveEnsembleConfig ensemble_config;
    ensemble_config.base.seed_size = config.seed_size;
    ensemble_config.base.batch_size = config.batch_size;
    ensemble_config.base.max_labels = config.max_labels;
    ensemble_config.base.target_f1 = config.target_f1;
    ensemble_config.base.seed = config.run_seed;
    ensemble_config.precision_threshold = config.approach.ensemble_precision;
    ActiveEnsembleLoop loop(*margin_learner, *approach.selector, *oracle,
                            *evaluator, ensemble_config);
    result.curve = loop.Run(pool);
    result.ensemble_accepted = loop.accepted_count();
  } else {
    ActiveLearningConfig loop_config;
    loop_config.seed_size = config.seed_size;
    loop_config.batch_size = config.batch_size;
    loop_config.max_labels = config.max_labels;
    loop_config.target_f1 = config.target_f1;
    loop_config.seed = config.run_seed;
    ActiveLearningLoop loop(*approach.learner, *approach.selector, *oracle,
                            *evaluator, loop_config);
    result.curve = loop.Run(pool);
  }
  result.final_model = std::move(approach.learner);
  FinalizeResult(data, &result);
  return result;
}

std::vector<AveragedPoint> AverageCurves(
    const std::vector<std::vector<IterationStats>>& curves) {
  std::vector<AveragedPoint> points;
  if (curves.empty()) return points;
  size_t longest = 0;
  for (const auto& curve : curves) longest = std::max(longest, curve.size());

  for (size_t i = 0; i < longest; ++i) {
    RunningStats f1;
    size_t labels = 0;
    for (const auto& curve : curves) {
      if (curve.empty()) continue;
      // Pad finished curves with their final value (an approach that
      // terminated early keeps its final F1).
      const IterationStats& stats =
          i < curve.size() ? curve[i] : curve.back();
      f1.Add(stats.metrics.f1);
      labels = std::max(labels, stats.labels_used);
    }
    points.push_back(AveragedPoint{labels, f1.mean(), f1.stddev()});
  }
  return points;
}

}  // namespace alem
