#include "core/harness.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include "blocking/jaccard_blocking.h"
#include "core/active_ensemble.h"
#include "core/evaluator.h"
#include "core/oracle.h"
#include "features/feature_cache.h"
#include "features/feature_extractor.h"
#include "features/feature_schema.h"
#include "obs/obs.h"
#include "obs/profile.h"
#include "parallel/pool.h"
#include "sim/similarity.h"
#include "synth/generator.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/stats.h"

namespace alem {

PreparedDataset PrepareDataset(const PrepareOptions& options) {
  if (options.threads > 0) parallel::SetNumThreads(options.threads);
  const SynthProfile& profile = options.profile;
  obs::ObsSpan prepare_span("harness.prepare", "harness", profile.name);
  PreparedDataset prepared;
  prepared.name = profile.name;
  prepared.data_seed = options.data_seed;
  prepared.scale = options.scale;
  {
    obs::ObsSpan generate_span("harness.generate", "harness");
    prepared.dataset = GenerateDataset(profile, options.data_seed,
                                       options.scale);
  }

  {
    obs::ObsSpan block_span("harness.block", "harness");
    BlockingConfig blocking;
    blocking.jaccard_threshold = profile.blocking_threshold;
    prepared.pairs = JaccardBlocking(prepared.dataset, blocking);
    prepared.truth = prepared.dataset.LabelsFor(prepared.pairs);
    prepared.class_skew = prepared.dataset.ClassSkew(prepared.pairs);
    prepared.num_matches = static_cast<size_t>(
        std::count(prepared.truth.begin(), prepared.truth.end(), 1));
  }

  {
    obs::ObsSpan featurize_span("harness.featurize", "harness");
    const FeatureSchema schema = FeatureSchema::FromDataset(prepared.dataset);
    prepared.feature_names = schema.FeatureNames();

    FeatureCache cache(options.use_cache
                           ? FeatureCache::ResolveDir(options.cache_dir)
                           : "");
    FeatureCacheKey key;
    key.dataset_name = profile.name;
    key.profile_fingerprint = ProfileFingerprint(profile);
    key.data_seed = options.data_seed;
    key.scale = options.scale;
    key.sim_fingerprint = SimRegistryFingerprint();
    key.num_dims = schema.num_dims();

    bool loaded = false;
    if (cache.enabled()) {
      obs::ObsSpan cache_span("harness.featurize.cache", "harness");
      loaded = cache.Load(key, &prepared.float_features) &&
               prepared.float_features.rows() == prepared.pairs.size();
    }
    if (loaded) {
      prepared.feature_cache = "hit";
      // A cache hit skips every similarity evaluation, so nothing registers
      // the sim.calls counter; register it explicitly so warm-run reports
      // still carry sim.calls=0 instead of omitting the key.
      obs::MetricsRegistry::Global().GetCounter("sim.calls");
    } else {
      // Recompute (also covers the corrupt / truncated / stale-rows cases,
      // which Load reports as misses) and publish for the next process.
      FeatureExtractor extractor(prepared.dataset);
      prepared.float_features = extractor.ExtractAll(prepared.pairs);
      if (cache.enabled()) {
        obs::ObsSpan cache_span("harness.featurize.cache", "harness");
        cache.Store(key, prepared.float_features);
        prepared.feature_cache = "miss";
      }
    }
    prepared.featurizer = std::make_shared<BooleanFeaturizer>(schema);
    prepared.boolean_features =
        prepared.featurizer->Featurize(prepared.float_features);
    // Roofline items for the featurize region (obs/profile.h): one item
    // per candidate pair, whether the matrix was recomputed or loaded from
    // cache; output traffic is the produced float matrix.
    if (obs::profile::Region* profiled =
            obs::profile::ActiveRegion("harness.featurize")) {
      obs::profile::AddWork(*profiled, prepared.pairs.size(),
                            static_cast<uint64_t>(
                                prepared.float_features.rows()) *
                                prepared.float_features.dims() *
                                sizeof(float));
    }
  }
  return prepared;
}

namespace {

bool IsRuleApproach(const ApproachSpec& spec) {
  return spec.learner == LearnerKind::kRules;
}

// ---- Snapshot provenance sections (text, one "key value" per line) -----
//
// The session's own sections are binary (core/session.cc); the harness
// provenance riding alongside them is line-based text — small, stable, and
// diagnosable with `strings` on a snapshot file. Doubles travel as raw hex
// bit patterns so they round-trip exactly.

std::string DoubleToHexBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%llx",
                static_cast<unsigned long long>(bits));
  return buffer;
}

bool HexBitsToDouble(const std::string& hex, double* v) {
  unsigned long long bits = 0;
  char trailing = 0;
  if (std::sscanf(hex.c_str(), "%llx %c", &bits, &trailing) != 1) return false;
  const uint64_t raw = static_cast<uint64_t>(bits);
  std::memcpy(v, &raw, sizeof(*v));
  return true;
}

// "PROV": dataset generation provenance, plus the original prepare's
// feature-cache outcome (the stitched report's config.cache must describe
// the run's own prepare, not the resume process's). The dataset name is
// last and consumes the rest of its line (names may contain spaces).
std::string EncodeProvenanceSection(const std::string& dataset,
                                    uint64_t data_seed, double scale,
                                    const std::string& feature_cache) {
  std::ostringstream out;
  out << "data_seed " << data_seed << "\n";
  out << "scale " << DoubleToHexBits(scale) << "\n";
  out << "cache " << feature_cache << "\n";
  out << "dataset " << dataset << "\n";
  return out.str();
}

bool DecodeProvenanceSection(const std::string& blob, SessionRunInfo* info) {
  std::istringstream in(blob);
  std::string keyword;
  std::string scale_hex;
  if (!(in >> keyword >> info->data_seed) || keyword != "data_seed") {
    return false;
  }
  if (!(in >> keyword >> scale_hex) || keyword != "scale" ||
      !HexBitsToDouble(scale_hex, &info->scale)) {
    return false;
  }
  if (!(in >> keyword >> info->feature_cache) || keyword != "cache") {
    return false;
  }
  if (!(in >> keyword) || keyword != "dataset") return false;
  std::getline(in, info->dataset);
  while (!info->dataset.empty() && info->dataset.front() == ' ') {
    info->dataset.erase(info->dataset.begin());
  }
  return !info->dataset.empty();
}

// "RCFG": the RunConfig fields beyond the loop budget (which the session's
// own "BCFG" section carries).
std::string EncodeRunConfigSection(const RunConfig& config) {
  std::ostringstream out;
  out << "oracle_noise " << DoubleToHexBits(config.oracle_noise) << "\n";
  out << "holdout " << (config.holdout ? 1 : 0) << "\n";
  out << "holdout_fraction " << DoubleToHexBits(config.holdout_fraction)
      << "\n";
  out << "run_seed " << config.run_seed << "\n";
  return out.str();
}

bool DecodeRunConfigSection(const std::string& blob, RunConfig* config) {
  std::istringstream in(blob);
  std::string keyword;
  std::string noise_hex;
  std::string fraction_hex;
  int holdout = 0;
  if (!(in >> keyword >> noise_hex) || keyword != "oracle_noise" ||
      !HexBitsToDouble(noise_hex, &config->oracle_noise)) {
    return false;
  }
  if (!(in >> keyword >> holdout) || keyword != "holdout" ||
      (holdout != 0 && holdout != 1)) {
    return false;
  }
  config->holdout = holdout == 1;
  if (!(in >> keyword >> fraction_hex) || keyword != "holdout_fraction" ||
      !HexBitsToDouble(fraction_hex, &config->holdout_fraction)) {
    return false;
  }
  if (!(in >> keyword >> config->run_seed) || keyword != "run_seed") {
    return false;
  }
  return true;
}

// "APPR": the ApproachSpec, field by field. DisplayName() output is not
// parseable by ApproachFromName (e.g. "Trees(20)" vs "trees20"), so the
// snapshot stores the structured fields instead of a name.
std::string EncodeApproachSection(const ApproachSpec& spec) {
  std::ostringstream out;
  out << "learner " << static_cast<int>(spec.learner) << "\n";
  out << "selector " << static_cast<int>(spec.selector) << "\n";
  out << "committee_size " << spec.committee_size << "\n";
  out << "num_trees " << spec.num_trees << "\n";
  out << "blocking_dims " << spec.blocking_dims << "\n";
  out << "active_ensemble " << (spec.active_ensemble ? 1 : 0) << "\n";
  out << "ensemble_precision " << DoubleToHexBits(spec.ensemble_precision)
      << "\n";
  return out.str();
}

bool DecodeApproachSection(const std::string& blob, ApproachSpec* spec) {
  std::istringstream in(blob);
  std::string keyword;
  int learner = 0;
  int selector = 0;
  int active_ensemble = 0;
  uint64_t blocking_dims = 0;
  std::string precision_hex;
  if (!(in >> keyword >> learner) || keyword != "learner" || learner < 0 ||
      learner > static_cast<int>(LearnerKind::kDeepMatcherProxy)) {
    return false;
  }
  if (!(in >> keyword >> selector) || keyword != "selector" || selector < 0 ||
      selector > static_cast<int>(SelectorKind::kRandom)) {
    return false;
  }
  if (!(in >> keyword >> spec->committee_size) || keyword != "committee_size") {
    return false;
  }
  if (!(in >> keyword >> spec->num_trees) || keyword != "num_trees") {
    return false;
  }
  if (!(in >> keyword >> blocking_dims) || keyword != "blocking_dims") {
    return false;
  }
  if (!(in >> keyword >> active_ensemble) || keyword != "active_ensemble" ||
      (active_ensemble != 0 && active_ensemble != 1)) {
    return false;
  }
  if (!(in >> keyword >> precision_hex) || keyword != "ensemble_precision" ||
      !HexBitsToDouble(precision_hex, &spec->ensemble_precision)) {
    return false;
  }
  spec->learner = static_cast<LearnerKind>(learner);
  spec->selector = static_cast<SelectorKind>(selector);
  spec->blocking_dims = static_cast<size_t>(blocking_dims);
  spec->active_ensemble = active_ensemble == 1;
  return true;
}

// "CNTR"/"GAUG": the metric registry totals at save time, one "name value"
// line each (counter values decimal, gauge values hex double bits). A
// resumed process discards its own prepare-phase metrics and re-establishes
// these, so the finished run's totals stitch up exactly as if it had never
// been interrupted. Histograms are deliberately not snapshotted: they hold
// latency telemetry, which is outside the determinism contract.
std::string EncodeCounterSection(
    const std::vector<std::pair<std::string, uint64_t>>& counters) {
  std::ostringstream out;
  for (const auto& [name, value] : counters) {
    out << name << " " << value << "\n";
  }
  return out.str();
}

std::string EncodeGaugeSection(
    const std::vector<std::pair<std::string, double>>& gauges) {
  std::ostringstream out;
  for (const auto& [name, value] : gauges) {
    out << name << " " << DoubleToHexBits(value) << "\n";
  }
  return out.str();
}

bool RestoreMetricsFromSnapshot(const SessionSnapshot& snapshot,
                                std::string* error) {
  // Parse both sections fully before touching the registry, so a malformed
  // snapshot cannot leave the metrics half-restored.
  std::vector<std::pair<std::string, uint64_t>> counters;
  {
    std::istringstream in(snapshot.section("CNTR"));
    std::string name;
    uint64_t value = 0;
    while (in >> name >> value) counters.emplace_back(name, value);
    if (!in.eof()) {
      *error = "session snapshot: malformed counter section";
      return false;
    }
  }
  std::vector<std::pair<std::string, double>> gauges;
  {
    std::istringstream in(snapshot.section("GAUG"));
    std::string name;
    std::string hex;
    while (in >> name >> hex) {
      double value = 0.0;
      if (!HexBitsToDouble(hex, &value)) {
        *error = "session snapshot: malformed gauge section";
        return false;
      }
      gauges.emplace_back(name, value);
    }
    if (!in.eof()) {
      *error = "session snapshot: malformed gauge section";
      return false;
    }
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.ResetAll();
  for (const auto& [name, value] : counters) {
    // ml.predict_calls is synthesized from its dedicated hot-path atomic
    // (obs/obs.h); registering a registry counter under the same name
    // would make Snapshot() report the key twice.
    if (name == "ml.predict_calls") {
      obs::SetPredictCalls(value);
    } else {
      registry.GetCounter(name).Set(value);
    }
  }
  for (const auto& [name, value] : gauges) {
    registry.GetGauge(name).Set(value);
  }
  return true;
}

}  // namespace

void FinalizeRunResult(RunResult* result) {
  for (const IterationStats& stats : result->curve) {
    result->best_f1 = std::max(result->best_f1, stats.metrics.f1);
    result->total_wait_seconds += stats.wait_seconds;
    result->ensemble_accepted =
        std::max(result->ensemble_accepted, stats.ensemble_size);
  }
  result->labels_to_converge =
      result->curve.empty() ? 0 : result->curve.back().labels_used;
  for (const IterationStats& stats : result->curve) {
    if (stats.metrics.f1 >= result->best_f1 - kConvergenceSlack) {
      result->labels_to_converge = stats.labels_used;
      break;
    }
  }
}

RunEnv BuildRunEnv(const PreparedDataset& data, const RunConfig& config) {
  const FeatureMatrix& features = IsRuleApproach(config.approach)
                                      ? data.boolean_features
                                      : data.float_features;
  ALEM_CHECK_GT(features.rows(), 0u);

  RunEnv env{ActivePool(features), nullptr, nullptr, {}};

  // Evaluation protocol.
  if (config.holdout) {
    // Random held-out test split; test rows never enter example selection.
    Rng split_rng(config.run_seed ^ 0x8badf00dULL);
    const size_t test_size = static_cast<size_t>(
        static_cast<double>(env.pool.size()) * config.holdout_fraction);
    std::vector<size_t> test_rows =
        split_rng.SampleWithoutReplacement(env.pool.size(), test_size);
    std::sort(test_rows.begin(), test_rows.end());
    std::vector<int> test_truth(test_rows.size());
    for (size_t i = 0; i < test_rows.size(); ++i) {
      test_truth[i] = data.truth[test_rows[i]];
      env.pool.Exclude(test_rows[i]);
    }
    env.evaluator = std::make_unique<HoldoutEvaluator>(std::move(test_rows),
                                                       std::move(test_truth));
  } else {
    env.evaluator = std::make_unique<ProgressiveEvaluator>(data.truth);
  }

  // Oracle.
  if (config.oracle_noise > 0.0) {
    env.oracle = std::make_unique<NoisyOracle>(
        data.truth, config.oracle_noise, config.run_seed ^ 0x0c0ffeeULL);
  } else {
    env.oracle = std::make_unique<PerfectOracle>(data.truth);
  }

  env.approach = MakeApproach(config.approach, config.run_seed);
  return env;
}

RunResult RunActiveLearning(const PreparedDataset& data,
                            const RunConfig& config) {
  obs::ObsSpan run_span("harness.run", "harness",
                        config.approach.DisplayName());

  if (config.approach.active_ensemble) {
    RunEnv env = BuildRunEnv(data, config);
    auto* margin_learner =
        dynamic_cast<MarginLearner*>(env.approach.learner.get());
    ALEM_CHECK(margin_learner != nullptr);
    ActiveEnsembleConfig ensemble_config;
    ensemble_config.base.budget() = config.budget();
    ensemble_config.base.seed = config.run_seed;
    ensemble_config.precision_threshold = config.approach.ensemble_precision;
    ActiveEnsembleLoop loop(*margin_learner, *env.approach.selector,
                            *env.oracle, *env.evaluator, ensemble_config);
    RunResult result;
    result.approach_name = config.approach.DisplayName();
    result.curve = loop.Run(env.pool);
    result.ensemble_accepted = loop.accepted_count();
    result.final_model = std::move(env.approach.learner);
    FinalizeRunResult(&result);
    return result;
  }

  SessionRunner runner(data, config);
  runner.Run();
  return runner.TakeResult();
}

bool ReadSessionRunInfo(const SessionSnapshot& snapshot, SessionRunInfo* info,
                        std::string* error) {
  for (const std::string_view tag : {"PROV", "RCFG", "APPR", "BCFG"}) {
    if (!snapshot.has(tag)) {
      *error = "session snapshot: missing harness section '" +
               std::string(tag) + "' (saved without run provenance?)";
      return false;
    }
  }
  SessionRunInfo parsed;
  if (!DecodeProvenanceSection(snapshot.section("PROV"), &parsed)) {
    *error = "session snapshot: malformed provenance section";
    return false;
  }
  if (!DecodeRunConfigSection(snapshot.section("RCFG"), &parsed.config)) {
    *error = "session snapshot: malformed run-config section";
    return false;
  }
  if (!DecodeApproachSection(snapshot.section("APPR"),
                             &parsed.config.approach)) {
    *error = "session snapshot: malformed approach section";
    return false;
  }
  ActiveLearningConfig loop_config;
  if (!DecodeSessionLoopConfig(snapshot, &loop_config)) {
    *error = "session snapshot: malformed loop-config section";
    return false;
  }
  parsed.config.budget() = loop_config.budget();
  // warm_start travels in the session's own loop-config section: a resumed
  // run continues in the snapshot's mode regardless of the resuming CLI.
  parsed.config.warm_start = loop_config.warm_start;
  *info = std::move(parsed);
  return true;
}

SessionRunner::SessionRunner(const PreparedDataset& data,
                             const RunConfig& config)
    : SessionRunner(data, config, /*start_session=*/true) {}

SessionRunner::SessionRunner(const PreparedDataset& data,
                             const RunConfig& config, bool start_session)
    : dataset_name_(data.name),
      data_seed_(data.data_seed),
      scale_(data.scale),
      feature_cache_(data.feature_cache),
      config_(config),
      env_(BuildRunEnv(data, config)) {
  ALEM_CHECK(!config.approach.active_ensemble);
  if (start_session) {
    ActiveLearningConfig loop_config;
    loop_config.budget() = config.budget();
    loop_config.seed = config.run_seed;
    loop_config.warm_start = config.warm_start;
    session_ = std::make_unique<LabelingSession>(
        *env_.approach.learner, *env_.approach.selector, *env_.oracle,
        *env_.evaluator, env_.pool, loop_config);
  }
}

std::unique_ptr<SessionRunner> SessionRunner::Restore(
    const PreparedDataset& data, const RunConfig& config,
    const SessionSnapshot& snapshot, std::string* error) {
  if (config.approach.active_ensemble) {
    *error = "active-ensemble runs are not resumable";
    return nullptr;
  }
  std::unique_ptr<SessionRunner> runner(
      new SessionRunner(data, config, /*start_session=*/false));
  // Discard this process's prepare-phase metrics and re-establish the
  // snapshot totals (which already contain the original prepare + first
  // half), so the resumed run's final counters stitch up exactly.
  if (!RestoreMetricsFromSnapshot(snapshot, error)) return nullptr;
  runner->session_ = LabelingSession::Restore(
      *runner->env_.approach.learner, *runner->env_.approach.selector,
      *runner->env_.oracle, *runner->env_.evaluator, runner->env_.pool,
      snapshot, error);
  if (runner->session_ == nullptr) return nullptr;
  return runner;
}

void SessionRunner::Run(size_t stop_after) {
  while (!session_->finished()) {
    if (stop_after > 0 && session_->state() == SessionState::kNeedsStep &&
        session_->curve().size() >= stop_after) {
      return;  // Paused at an iteration boundary; Save() is valid here.
    }
    switch (session_->state()) {
      case SessionState::kNeedsStep:
        ALEM_CHECK(session_->Step());
        break;
      case SessionState::kBatchReady:
        session_->NextBatch();
        break;
      case SessionState::kAwaitingLabels:
        ALEM_CHECK(session_->SubmitLabels());
        break;
      default:
        ALEM_CHECK(false);
    }
  }
  ALEM_CHECK(session_->state() == SessionState::kFinished);
}

bool SessionRunner::Save(const std::string& path, std::string* error) const {
  SessionSnapshot snapshot;
  if (!session_->SaveTo(&snapshot, error)) return false;
  snapshot.set("PROV", EncodeProvenanceSection(dataset_name_, data_seed_,
                                               scale_, feature_cache_));
  snapshot.set("RCFG", EncodeRunConfigSection(config_));
  snapshot.set("APPR", EncodeApproachSection(config_.approach));
  const obs::MetricsSnapshot metrics =
      obs::MetricsRegistry::Global().Snapshot();
  snapshot.set("CNTR", EncodeCounterSection(metrics.counters));
  snapshot.set("GAUG", EncodeGaugeSection(metrics.gauges));
  return snapshot.WriteFile(path, error);
}

RunResult SessionRunner::TakeResult() {
  RunResult result;
  result.approach_name = config_.approach.DisplayName();
  result.curve = std::move(*session_).TakeCurve();
  result.final_model = std::move(env_.approach.learner);
  FinalizeRunResult(&result);
  return result;
}

std::vector<AveragedPoint> AverageCurves(
    const std::vector<std::vector<IterationStats>>& curves) {
  std::vector<AveragedPoint> points;
  if (curves.empty()) return points;
  size_t longest = 0;
  for (const auto& curve : curves) longest = std::max(longest, curve.size());

  for (size_t i = 0; i < longest; ++i) {
    RunningStats f1;
    size_t labels = 0;
    for (const auto& curve : curves) {
      if (curve.empty()) continue;
      // Pad finished curves with their final value (an approach that
      // terminated early keeps its final F1).
      const IterationStats& stats =
          i < curve.size() ? curve[i] : curve.back();
      f1.Add(stats.metrics.f1);
      labels = std::max(labels, stats.labels_used);
    }
    points.push_back(AveragedPoint{labels, f1.mean(), f1.stddev()});
  }
  return points;
}

}  // namespace alem
