// The active-learning driver (Fig. 1a of the paper).
//
// Starting from a small labeled seed (~30 examples), each iteration:
//   1. trains the learner on the cumulative labeled data,
//   2. evaluates it (progressive or holdout F1),
//   3. asks the example selector for the next batch of ambiguous examples,
//   4. queries the Oracle for their labels and adds them to the pool.
// Per-iteration statistics capture every metric the paper plots: quality
// (P/R/F1), latency (training, committee-creation, example-scoring, user
// wait time), #labels, and interpretability (#DNF atoms, tree depth).

#ifndef ALEM_CORE_ACTIVE_LOOP_H_
#define ALEM_CORE_ACTIVE_LOOP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/evaluator.h"
#include "core/learner.h"
#include "core/oracle.h"
#include "core/pool.h"
#include "core/selector.h"
#include "ml/metrics.h"

namespace alem {

// The label-budget knobs shared by every driver of the loop: the harness's
// RunConfig and the loop's ActiveLearningConfig both inherit this one struct
// (they used to duplicate the four fields, which invited drift), and the
// session snapshot serializes exactly these. budget() gives copy-across
// assignment between the two configs without naming each field.
struct LoopBudget {
  // Initial random labeled seed (the paper uses ~30).
  size_t seed_size = 30;
  // Examples labeled per iteration (the paper uses 10).
  size_t batch_size = 10;
  // Hard label budget (counts the seed).
  size_t max_labels = 400;
  // Early stop once progressive F1 reaches this value; 0 disables. The
  // paper stops perfect-oracle runs when an approach nears F1 = 1.0.
  double target_f1 = 0.0;

  LoopBudget& budget() { return *this; }
  const LoopBudget& budget() const { return *this; }
};

// Incremental-engine mode (docs/training.md; --warm-start CLI knob):
//   kOff  — every iteration refits cold and rescores the full pool; the
//           exact-replay path the golden baselines are pinned on (default).
//   kOn   — warm-start refits (FitHint::kWarm) plus the delta-based
//           incremental progressive-F1 tally. Curves are gated against cold
//           baselines by F1 tolerance, not bitwise.
//   kAuto — incremental evaluation only, with cold refits: the model stream
//           is untouched, so curves stay bitwise-identical to kOff while the
//           evaluation tally is still O(changed rows).
enum class WarmStartMode { kOff, kOn, kAuto };

// "off" / "on" / "auto".
std::string_view WarmStartModeName(WarmStartMode mode);
// Parses a mode name; returns false on anything else (*mode untouched).
bool ParseWarmStartMode(std::string_view name, WarmStartMode* mode);

struct ActiveLearningConfig : LoopBudget {
  // Seed for the initial sample (selectors carry their own RNGs).
  uint64_t seed = 1;
  // Ground-truth-free termination: stop once the model's predictions over
  // the evaluation rows are unchanged for this many consecutive iterations
  // (0 disables). Section 6.3 of the paper motivates termination criteria
  // that do not require ground truth.
  size_t plateau_window = 0;
  // Incremental training + evaluation engine mode (see above).
  WarmStartMode warm_start = WarmStartMode::kOff;
};

struct IterationStats {
  size_t iteration = 0;
  // Cumulative #labels consumed (including the seed).
  size_t labels_used = 0;
  BinaryMetrics metrics;

  // Phase latencies, each derived from the phase's trace span (obs::ObsSpan)
  // so the recorded trace and the stats can never disagree.
  double train_seconds = 0.0;
  // Full example-selection span; committee + scoring below are the
  // selector-reported breakdown of it (Fig. 10).
  double select_seconds = 0.0;
  double committee_seconds = 0.0;
  double scoring_seconds = 0.0;
  // Evaluation and Oracle-labeling time, excluded from user wait time: the
  // paper's wait metric (Fig. 13) covers only what blocks the user between
  // submitting labels and receiving the next batch.
  double evaluate_seconds = 0.0;
  double label_seconds = 0.0;
  // train_seconds + select_seconds, summed from the phase spans rather than
  // read from an independently restarted wall clock.
  double wait_seconds = 0.0;

  // Interpretability (0 when not applicable to the learner).
  size_t dnf_atoms = 0;
  int tree_depth = 0;

  // Selection-time blocking counters (margin selector only).
  size_t scored_examples = 0;
  size_t pruned_examples = 0;

  // #accepted classifiers (active-ensemble runs only).
  size_t ensemble_size = 0;
};

struct SeedResult {
  // #examples labeled while seeding (counts toward the budget).
  size_t labeled = 0;
  // False when the pool ran out of unlabeled examples before both classes
  // appeared. Callers that need a trainable seed should surface this as a
  // diagnosable condition (a single-class pool, e.g. an all-negative
  // candidate set, makes every learner degenerate).
  bool has_both_classes = false;
};

// Labels a random seed batch, retrying with extra random examples until both
// classes are present (a learner cannot be trained otherwise). Retrying is
// bounded by pool exhaustion: on a single-class pool the loop stops when no
// unlabeled examples remain and reports has_both_classes = false rather than
// labeling forever.
SeedResult SeedPool(ActivePool& pool, Oracle& oracle, size_t seed_size,
                    uint64_t seed);

// Collects interpretability statistics from learners that support them.
void CollectInterpretability(const Learner& learner, IterationStats* stats);

// One-shot driver over the step-wise LabelingSession (core/session.h). Run
// seeds the pool, then drives Step / NextBatch / SubmitLabels to termination
// — it is a thin wrapper kept for the many call sites that want the whole
// curve in one call; code that needs to pause, snapshot, or feed labels from
// elsewhere uses LabelingSession directly.
class ActiveLearningLoop {
 public:
  // All references must outlive the loop. The learner is retrained in place
  // each iteration.
  ActiveLearningLoop(Learner& learner, ExampleSelector& selector,
                     Oracle& oracle, const Evaluator& evaluator,
                     const ActiveLearningConfig& config);

  // Runs to termination (label budget, selector exhaustion, or target F1)
  // and returns the per-iteration statistics curve.
  std::vector<IterationStats> Run(ActivePool& pool);

 private:
  Learner& learner_;
  ExampleSelector& selector_;
  Oracle& oracle_;
  const Evaluator& evaluator_;
  ActiveLearningConfig config_;
};

}  // namespace alem

#endif  // ALEM_CORE_ACTIVE_LOOP_H_
