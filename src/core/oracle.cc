#include "core/oracle.h"

#include <sstream>
#include <utility>

#include "obs/obs.h"
#include "util/check.h"

namespace alem {
namespace {

// Serialized noisy-oracle state: query count, RNG stream, and the sparse
// already-queried entries of the flip cache. Line-based text so a corrupt
// snapshot section fails parsing instead of silently misaligning.
std::string SaveNoisyState(size_t queries, const Rng& rng,
                           const std::vector<int8_t>& cached) {
  std::ostringstream out;
  out << "queries " << queries << "\n";
  out << "rng " << rng.SaveState() << "\n";
  size_t resolved = 0;
  for (const int8_t entry : cached) resolved += entry >= 0 ? 1 : 0;
  out << "cached " << resolved << "\n";
  for (size_t row = 0; row < cached.size(); ++row) {
    if (cached[row] >= 0) {
      out << row << " " << static_cast<int>(cached[row]) << "\n";
    }
  }
  return out.str();
}

bool RestoreNoisyState(const std::string& state, size_t* queries, Rng* rng,
                       std::vector<int8_t>* cached) {
  std::istringstream in(state);
  std::string keyword;
  uint64_t query_count = 0;
  if (!(in >> keyword >> query_count) || keyword != "queries") return false;
  std::string rng_state;
  if (!(in >> keyword) || keyword != "rng") return false;
  // The RNG state is the rest of its line (space-separated hex words).
  std::getline(in, rng_state);
  Rng restored_rng(0);
  if (!restored_rng.RestoreState(rng_state)) return false;
  uint64_t resolved = 0;
  if (!(in >> keyword >> resolved) || keyword != "cached") return false;
  std::vector<int8_t> restored_cache(cached->size(), -1);
  for (uint64_t i = 0; i < resolved; ++i) {
    uint64_t row = 0;
    int label = 0;
    if (!(in >> row >> label)) return false;
    if (row >= restored_cache.size() || (label != 0 && label != 1)) {
      return false;
    }
    restored_cache[row] = static_cast<int8_t>(label);
  }
  *queries = static_cast<size_t>(query_count);
  *rng = restored_rng;
  *cached = std::move(restored_cache);
  return true;
}

}  // namespace

void Oracle::CountQuery() {
  ++queries_;
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("oracle.queries");
  counter.Increment();
}

std::string Oracle::SaveState() const {
  std::ostringstream out;
  out << "queries " << queries_ << "\n";
  return out.str();
}

bool Oracle::RestoreState(const std::string& state) {
  std::istringstream in(state);
  std::string keyword;
  uint64_t query_count = 0;
  if (!(in >> keyword >> query_count) || keyword != "queries") return false;
  queries_ = static_cast<size_t>(query_count);
  return true;
}

PerfectOracle::PerfectOracle(std::vector<int> truth)
    : truth_(std::move(truth)) {}

int PerfectOracle::Label(size_t row) {
  ALEM_CHECK_LT(row, truth_.size());
  CountQuery();
  return truth_[row];
}

NoisyOracle::NoisyOracle(std::vector<int> truth, double noise, uint64_t seed)
    : truth_(std::move(truth)),
      cached_(truth_.size(), -1),
      noise_(noise),
      rng_(seed) {
  ALEM_CHECK_GE(noise, 0.0);
  ALEM_CHECK_LE(noise, 1.0);
}

int NoisyOracle::Label(size_t row) {
  ALEM_CHECK_LT(row, truth_.size());
  CountQuery();
  if (cached_[row] < 0) {
    const bool flip = rng_.NextBernoulli(noise_);
    cached_[row] = static_cast<int8_t>(flip ? 1 - truth_[row] : truth_[row]);
  }
  return cached_[row];
}

std::string NoisyOracle::SaveState() const {
  return SaveNoisyState(queries(), rng_, cached_);
}

bool NoisyOracle::RestoreState(const std::string& state) {
  size_t query_count = 0;
  if (!RestoreNoisyState(state, &query_count, &rng_, &cached_)) return false;
  set_queries(query_count);
  return true;
}

MajorityVoteOracle::MajorityVoteOracle(std::vector<int> truth, double noise,
                                       int num_voters, uint64_t seed)
    : truth_(std::move(truth)),
      cached_(truth_.size(), -1),
      noise_(noise),
      num_voters_(num_voters),
      rng_(seed) {
  ALEM_CHECK_GE(noise, 0.0);
  ALEM_CHECK_LE(noise, 1.0);
  ALEM_CHECK_GE(num_voters, 1);
  ALEM_CHECK_EQ(num_voters % 2, 1);  // Odd, so the majority is defined.
}

int MajorityVoteOracle::Label(size_t row) {
  ALEM_CHECK_LT(row, truth_.size());
  CountQuery();
  if (cached_[row] < 0) {
    int positive_votes = 0;
    for (int voter = 0; voter < num_voters_; ++voter) {
      const bool flip = rng_.NextBernoulli(noise_);
      positive_votes += flip ? 1 - truth_[row] : truth_[row];
    }
    cached_[row] =
        static_cast<int8_t>(2 * positive_votes > num_voters_ ? 1 : 0);
  }
  return cached_[row];
}

std::string MajorityVoteOracle::SaveState() const {
  return SaveNoisyState(queries(), rng_, cached_);
}

bool MajorityVoteOracle::RestoreState(const std::string& state) {
  size_t query_count = 0;
  if (!RestoreNoisyState(state, &query_count, &rng_, &cached_)) return false;
  set_queries(query_count);
  return true;
}

}  // namespace alem
