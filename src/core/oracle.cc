#include "core/oracle.h"

#include <utility>

#include "obs/obs.h"
#include "util/check.h"

namespace alem {

void Oracle::CountQuery() {
  ++queries_;
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("oracle.queries");
  counter.Increment();
}

PerfectOracle::PerfectOracle(std::vector<int> truth)
    : truth_(std::move(truth)) {}

int PerfectOracle::Label(size_t row) {
  ALEM_CHECK_LT(row, truth_.size());
  CountQuery();
  return truth_[row];
}

NoisyOracle::NoisyOracle(std::vector<int> truth, double noise, uint64_t seed)
    : truth_(std::move(truth)),
      cached_(truth_.size(), -1),
      noise_(noise),
      rng_(seed) {
  ALEM_CHECK_GE(noise, 0.0);
  ALEM_CHECK_LE(noise, 1.0);
}

int NoisyOracle::Label(size_t row) {
  ALEM_CHECK_LT(row, truth_.size());
  CountQuery();
  if (cached_[row] < 0) {
    const bool flip = rng_.NextBernoulli(noise_);
    cached_[row] = static_cast<int8_t>(flip ? 1 - truth_[row] : truth_[row]);
  }
  return cached_[row];
}

MajorityVoteOracle::MajorityVoteOracle(std::vector<int> truth, double noise,
                                       int num_voters, uint64_t seed)
    : truth_(std::move(truth)),
      cached_(truth_.size(), -1),
      noise_(noise),
      num_voters_(num_voters),
      rng_(seed) {
  ALEM_CHECK_GE(noise, 0.0);
  ALEM_CHECK_LE(noise, 1.0);
  ALEM_CHECK_GE(num_voters, 1);
  ALEM_CHECK_EQ(num_voters % 2, 1);  // Odd, so the majority is defined.
}

int MajorityVoteOracle::Label(size_t row) {
  ALEM_CHECK_LT(row, truth_.size());
  CountQuery();
  if (cached_[row] < 0) {
    int positive_votes = 0;
    for (int voter = 0; voter < num_voters_; ++voter) {
      const bool flip = rng_.NextBernoulli(noise_);
      positive_votes += flip ? 1 - truth_[row] : truth_[row];
    }
    cached_[row] =
        static_cast<int8_t>(2 * positive_votes > num_voters_ ? 1 : 0);
  }
  return cached_[row];
}

}  // namespace alem
