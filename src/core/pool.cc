#include "core/pool.h"

#include <utility>

#include "util/check.h"

namespace alem {

ActivePool::ActivePool(FeatureMatrix features)
    : features_(std::move(features)),
      state_(features_.rows(), RowState::kUnlabeled),
      excluded_(features_.rows(), 0),
      labels_(features_.rows(), -1) {}

void ActivePool::AddLabel(size_t row, int label) {
  ALEM_CHECK_LT(row, size());
  ALEM_CHECK(state_[row] == RowState::kUnlabeled);
  state_[row] = RowState::kLabeled;
  labels_[row] = label;
  labeled_.push_back(row);
  unlabeled_cache_valid_ = false;
}

bool ActivePool::IsLabeled(size_t row) const {
  ALEM_CHECK_LT(row, size());
  return state_[row] == RowState::kLabeled;
}

int ActivePool::LabelOf(size_t row) const {
  ALEM_CHECK(IsLabeled(row));
  return labels_[row];
}

const std::vector<size_t>& ActivePool::unlabeled_rows() const {
  if (!unlabeled_cache_valid_) {
    unlabeled_cache_.clear();
    for (size_t row = 0; row < size(); ++row) {
      if (state_[row] == RowState::kUnlabeled && excluded_[row] == 0) {
        unlabeled_cache_.push_back(row);
      }
    }
    unlabeled_cache_valid_ = true;
  }
  return unlabeled_cache_;
}

std::vector<size_t> ActivePool::ActiveLabeledRows() const {
  std::vector<size_t> rows;
  rows.reserve(labeled_.size());
  for (const size_t row : labeled_) {
    if (excluded_[row] == 0) rows.push_back(row);
  }
  return rows;
}

FeatureMatrix ActivePool::ActiveLabeledFeatures() const {
  return features_.Gather(ActiveLabeledRows());
}

std::vector<int> ActivePool::ActiveLabeledLabels() const {
  std::vector<int> labels;
  labels.reserve(labeled_.size());
  for (const size_t row : labeled_) {
    if (excluded_[row] == 0) labels.push_back(labels_[row]);
  }
  return labels;
}

void ActivePool::Exclude(size_t row) {
  ALEM_CHECK_LT(row, size());
  excluded_[row] = 1;
  unlabeled_cache_valid_ = false;
}

bool ActivePool::IsExcluded(size_t row) const {
  ALEM_CHECK_LT(row, size());
  return excluded_[row] != 0;
}

}  // namespace alem
