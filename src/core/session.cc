#include "core/session.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/profile.h"
#include "util/check.h"

namespace alem {
namespace {

// Snapshot container (all fields little-endian host layout), following the
// ALFM feature-cache conventions (features/feature_matrix.cc):
//   bytes 0..3   magic "ALSS"
//   bytes 4..7   uint32 format version (kSessionFormatVersion)
//   bytes 8..15  uint64 payload size
//   bytes 16..23 uint64 FNV-1a hash of the payload
//   bytes 24..   payload: sections, each [4-char tag][uint64 length][bytes]
constexpr char kSessionMagic[4] = {'A', 'L', 'S', 'S'};
constexpr uint32_t kSessionFormatVersion = 1;
constexpr size_t kSessionHeaderSize = 4 + 4 + 8 + 8;
constexpr size_t kTagSize = 4;

uint64_t Fnv1a(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = 1469598103934665603ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

void AppendRaw(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

// Field-by-field binary encoding, free of struct padding and alignment
// concerns. Doubles travel as raw bit patterns so they round-trip exactly.
class ByteWriter {
 public:
  void U8(uint8_t v) { AppendRaw(&out_, &v, sizeof(v)); }
  void U32(uint32_t v) { AppendRaw(&out_, &v, sizeof(v)); }
  void U64(uint64_t v) { AppendRaw(&out_, &v, sizeof(v)); }
  void I64(int64_t v) { AppendRaw(&out_, &v, sizeof(v)); }
  void F64(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

// Bounds-checked reader over a section payload; every accessor fails on
// truncation instead of reading past the end.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool U8(uint8_t* v) { return Raw(v, sizeof(*v)); }
  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool I64(int64_t* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) {
    uint64_t bits = 0;
    if (!U64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool AtEnd() const { return cursor_ == data_.size(); }

 private:
  bool Raw(void* out, size_t size) {
    if (data_.size() - cursor_ < size) return false;
    std::memcpy(out, data_.data() + cursor_, size);
    cursor_ += size;
    return true;
  }

  std::string_view data_;
  size_t cursor_ = 0;
};

// ---- Section encodings -------------------------------------------------

// "BCFG": the full ActiveLearningConfig (LoopBudget + seed + plateau +
// warm-start mode). The warm-start byte is a config knob that changes the
// result stream (like the seed), so it travels with the session and a
// resumed run continues in the saved mode.
std::string EncodeConfig(const ActiveLearningConfig& config) {
  ByteWriter w;
  w.U64(config.seed_size);
  w.U64(config.batch_size);
  w.U64(config.max_labels);
  w.F64(config.target_f1);
  w.U64(config.seed);
  w.U64(config.plateau_window);
  w.U8(static_cast<uint8_t>(config.warm_start));
  return w.Take();
}

bool DecodeConfig(std::string_view blob, ActiveLearningConfig* config) {
  ByteReader r(blob);
  uint64_t seed_size = 0;
  uint64_t batch_size = 0;
  uint64_t max_labels = 0;
  uint64_t plateau_window = 0;
  if (!r.U64(&seed_size) || !r.U64(&batch_size) || !r.U64(&max_labels) ||
      !r.F64(&config->target_f1) || !r.U64(&config->seed) ||
      !r.U64(&plateau_window)) {
    return false;
  }
  // Optional warm-start byte; snapshots written before the incremental
  // engine end here, meaning "off".
  uint8_t warm = 0;
  if (!r.AtEnd() && (!r.U8(&warm) || warm > 2)) return false;
  if (!r.AtEnd()) return false;
  if (batch_size == 0) return false;
  config->seed_size = static_cast<size_t>(seed_size);
  config->batch_size = static_cast<size_t>(batch_size);
  config->max_labels = static_cast<size_t>(max_labels);
  config->plateau_window = static_cast<size_t>(plateau_window);
  config->warm_start = static_cast<WarmStartMode>(warm);
  return true;
}

// "POOL": labeled rows in labeling order, so a replay reproduces the pool's
// internal ordering (and thus unlabeled_rows()) exactly.
std::string EncodePool(const ActivePool& pool) {
  ByteWriter w;
  const std::vector<size_t>& rows = pool.labeled_rows();
  w.U64(rows.size());
  for (const size_t row : rows) {
    w.U64(row);
    w.U8(static_cast<uint8_t>(pool.LabelOf(row)));
  }
  return w.Take();
}

bool ReplayPool(std::string_view blob, ActivePool* pool, std::string* error) {
  ByteReader r(blob);
  uint64_t count = 0;
  if (!r.U64(&count)) {
    *error = "session snapshot: truncated pool section";
    return false;
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t row = 0;
    uint8_t label = 0;
    if (!r.U64(&row) || !r.U8(&label)) {
      *error = "session snapshot: truncated pool section";
      return false;
    }
    if (row >= pool->size() || (label != 0 && label != 1) ||
        pool->IsLabeled(static_cast<size_t>(row))) {
      *error = "session snapshot: invalid pool entry";
      return false;
    }
    pool->AddLabel(static_cast<size_t>(row), static_cast<int>(label));
  }
  if (!r.AtEnd()) {
    *error = "session snapshot: trailing bytes in pool section";
    return false;
  }
  return true;
}

// "CRVE": the cumulative IterationStats curve, every field, doubles as bit
// patterns — a resumed run's stitched curve is byte-for-byte the original's
// prefix plus its own iterations.
std::string EncodeCurve(const std::vector<IterationStats>& curve) {
  ByteWriter w;
  w.U64(curve.size());
  for (const IterationStats& s : curve) {
    w.U64(s.iteration);
    w.U64(s.labels_used);
    w.U64(s.metrics.true_positives);
    w.U64(s.metrics.false_positives);
    w.U64(s.metrics.false_negatives);
    w.U64(s.metrics.true_negatives);
    w.F64(s.metrics.precision);
    w.F64(s.metrics.recall);
    w.F64(s.metrics.f1);
    w.F64(s.train_seconds);
    w.F64(s.select_seconds);
    w.F64(s.committee_seconds);
    w.F64(s.scoring_seconds);
    w.F64(s.evaluate_seconds);
    w.F64(s.label_seconds);
    w.F64(s.wait_seconds);
    w.U64(s.dnf_atoms);
    w.I64(s.tree_depth);
    w.U64(s.scored_examples);
    w.U64(s.pruned_examples);
    w.U64(s.ensemble_size);
  }
  return w.Take();
}

bool DecodeCurve(std::string_view blob, std::vector<IterationStats>* curve) {
  ByteReader r(blob);
  uint64_t count = 0;
  if (!r.U64(&count)) return false;
  std::vector<IterationStats> parsed;
  for (uint64_t i = 0; i < count; ++i) {
    IterationStats s;
    uint64_t iteration = 0;
    uint64_t labels_used = 0;
    uint64_t tp = 0;
    uint64_t fp = 0;
    uint64_t fn = 0;
    uint64_t tn = 0;
    uint64_t dnf_atoms = 0;
    int64_t tree_depth = 0;
    uint64_t scored = 0;
    uint64_t pruned = 0;
    uint64_t ensemble = 0;
    if (!r.U64(&iteration) || !r.U64(&labels_used) || !r.U64(&tp) ||
        !r.U64(&fp) || !r.U64(&fn) || !r.U64(&tn) ||
        !r.F64(&s.metrics.precision) || !r.F64(&s.metrics.recall) ||
        !r.F64(&s.metrics.f1) || !r.F64(&s.train_seconds) ||
        !r.F64(&s.select_seconds) || !r.F64(&s.committee_seconds) ||
        !r.F64(&s.scoring_seconds) || !r.F64(&s.evaluate_seconds) ||
        !r.F64(&s.label_seconds) || !r.F64(&s.wait_seconds) ||
        !r.U64(&dnf_atoms) || !r.I64(&tree_depth) || !r.U64(&scored) ||
        !r.U64(&pruned) || !r.U64(&ensemble)) {
      return false;
    }
    s.iteration = static_cast<size_t>(iteration);
    s.labels_used = static_cast<size_t>(labels_used);
    s.metrics.true_positives = static_cast<size_t>(tp);
    s.metrics.false_positives = static_cast<size_t>(fp);
    s.metrics.false_negatives = static_cast<size_t>(fn);
    s.metrics.true_negatives = static_cast<size_t>(tn);
    s.dnf_atoms = static_cast<size_t>(dnf_atoms);
    s.tree_depth = static_cast<int>(tree_depth);
    s.scored_examples = static_cast<size_t>(scored);
    s.pruned_examples = static_cast<size_t>(pruned);
    s.ensemble_size = static_cast<size_t>(ensemble);
    parsed.push_back(s);
  }
  if (!r.AtEnd()) return false;
  *curve = std::move(parsed);
  return true;
}

// "PLAT": plateau-termination state.
std::string EncodePlateau(size_t stable_iterations,
                          const std::vector<int>& previous_predictions) {
  ByteWriter w;
  w.U64(stable_iterations);
  w.U64(previous_predictions.size());
  for (const int p : previous_predictions) w.U8(static_cast<uint8_t>(p));
  return w.Take();
}

bool DecodePlateau(std::string_view blob, size_t* stable_iterations,
                   std::vector<int>* previous_predictions) {
  ByteReader r(blob);
  uint64_t stable = 0;
  uint64_t count = 0;
  if (!r.U64(&stable) || !r.U64(&count)) return false;
  std::vector<int> predictions;
  predictions.reserve(static_cast<size_t>(std::min<uint64_t>(count, 1 << 20)));
  for (uint64_t i = 0; i < count; ++i) {
    uint8_t p = 0;
    if (!r.U8(&p) || p > 1) return false;
    predictions.push_back(static_cast<int>(p));
  }
  if (!r.AtEnd()) return false;
  *stable_iterations = static_cast<size_t>(stable);
  *previous_predictions = std::move(predictions);
  return true;
}

// Full-rescore audit cadence for the incremental progressive-F1 tally:
// every kEvalAuditInterval incremental evaluations, Step recounts the whole
// prediction vector and asserts the tally matches exactly.
constexpr uint32_t kEvalAuditInterval = 16;

// "IEVL": the incremental-evaluation cache — previous predictions (u8),
// their confusion tally, and the audit countdown. Written only when the
// incremental engine is active; decode failures degrade to a cold cache
// rather than failing the restore (the cache is an accelerator, not part of
// the result stream).
std::string EncodeEvalCache(const std::vector<uint8_t>& cache, uint64_t tp,
                            uint64_t fp, uint64_t fn, uint64_t tn,
                            uint32_t audit_countdown) {
  ByteWriter w;
  w.U64(cache.size());
  std::string out = w.Take();
  out.append(reinterpret_cast<const char*>(cache.data()), cache.size());
  ByteWriter tail;
  tail.U64(tp);
  tail.U64(fp);
  tail.U64(fn);
  tail.U64(tn);
  tail.U32(audit_countdown);
  out += tail.Take();
  return out;
}

bool DecodeEvalCache(std::string_view blob, std::vector<uint8_t>* cache,
                     uint64_t* tp, uint64_t* fp, uint64_t* fn, uint64_t* tn,
                     uint32_t* audit_countdown) {
  ByteReader r(blob);
  uint64_t count = 0;
  if (!r.U64(&count) || count > blob.size()) return false;
  std::vector<uint8_t> parsed(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    if (!r.U8(&parsed[i]) || parsed[i] > 1) return false;
  }
  uint64_t sums[4] = {0, 0, 0, 0};
  uint32_t countdown = 0;
  if (!r.U64(&sums[0]) || !r.U64(&sums[1]) || !r.U64(&sums[2]) ||
      !r.U64(&sums[3]) || !r.U32(&countdown) || !r.AtEnd()) {
    return false;
  }
  // The tally must account for exactly the cached rows.
  if (sums[0] + sums[1] + sums[2] + sums[3] != count) return false;
  if (countdown == 0 || countdown > kEvalAuditInterval) return false;
  *cache = std::move(parsed);
  *tp = sums[0];
  *fp = sums[1];
  *fn = sums[2];
  *tn = sums[3];
  *audit_countdown = countdown;
  return true;
}

// "SCOR": the session's own progress record.
std::string EncodeCore(size_t iteration, uint32_t resume_count,
                       SessionState state, StopReason stop_reason,
                       const SeedResult& seed_result) {
  ByteWriter w;
  w.U64(iteration);
  w.U32(resume_count);
  w.U32(static_cast<uint32_t>(state));
  w.U32(static_cast<uint32_t>(stop_reason));
  w.U64(seed_result.labeled);
  w.U8(seed_result.has_both_classes ? 1 : 0);
  return w.Take();
}

struct DecodedCore {
  size_t iteration = 0;
  uint32_t resume_count = 0;
  SessionState state = SessionState::kNeedsStep;
  StopReason stop_reason = StopReason::kRunning;
  SeedResult seed_result;
};

bool DecodeCore(std::string_view blob, DecodedCore* core) {
  ByteReader r(blob);
  uint64_t iteration = 0;
  uint32_t state = 0;
  uint32_t stop_reason = 0;
  uint64_t seed_labeled = 0;
  uint8_t has_both = 0;
  if (!r.U64(&iteration) || !r.U32(&core->resume_count) || !r.U32(&state) ||
      !r.U32(&stop_reason) || !r.U64(&seed_labeled) || !r.U8(&has_both) ||
      !r.AtEnd()) {
    return false;
  }
  // Only iteration-boundary states are valid snapshot states.
  if (state != static_cast<uint32_t>(SessionState::kNeedsStep) &&
      state != static_cast<uint32_t>(SessionState::kFinished)) {
    return false;
  }
  if (stop_reason > static_cast<uint32_t>(StopReason::kSelectorExhausted)) {
    return false;
  }
  if (has_both > 1) return false;
  core->iteration = static_cast<size_t>(iteration);
  core->state = static_cast<SessionState>(state);
  core->stop_reason = static_cast<StopReason>(stop_reason);
  core->seed_result.labeled = static_cast<size_t>(seed_labeled);
  core->seed_result.has_both_classes = has_both == 1;
  return true;
}

}  // namespace

bool DecodeSessionLoopConfig(const SessionSnapshot& snapshot,
                             ActiveLearningConfig* config) {
  return snapshot.has("BCFG") &&
         DecodeConfig(snapshot.section("BCFG"), config);
}

std::string_view SessionStateName(SessionState state) {
  switch (state) {
    case SessionState::kNeedsStep:
      return "needs_step";
    case SessionState::kBatchReady:
      return "batch_ready";
    case SessionState::kAwaitingLabels:
      return "awaiting_labels";
    case SessionState::kFinished:
      return "finished";
    case SessionState::kFailed:
      return "failed";
  }
  return "unknown";
}

std::string_view StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kRunning:
      return "running";
    case StopReason::kBudgetExhausted:
      return "budget_exhausted";
    case StopReason::kTargetReached:
      return "target_reached";
    case StopReason::kPlateaued:
      return "plateaued";
    case StopReason::kSelectorExhausted:
      return "selector_exhausted";
  }
  return "unknown";
}

// ---- SessionSnapshot ---------------------------------------------------

bool SessionSnapshot::has(std::string_view tag) const {
  return sections.find(std::string(tag)) != sections.end();
}

const std::string& SessionSnapshot::section(std::string_view tag) const {
  static const std::string kEmpty;
  const auto it = sections.find(std::string(tag));
  return it == sections.end() ? kEmpty : it->second;
}

void SessionSnapshot::set(std::string_view tag, std::string payload) {
  ALEM_CHECK_EQ(tag.size(), kTagSize);
  sections[std::string(tag)] = std::move(payload);
}

std::string SessionSnapshot::Serialize() const {
  std::string payload;
  for (const auto& [tag, bytes] : sections) {
    ALEM_CHECK_EQ(tag.size(), kTagSize);
    payload.append(tag);
    const uint64_t length = bytes.size();
    AppendRaw(&payload, &length, sizeof(length));
    payload.append(bytes);
  }
  std::string out;
  out.reserve(kSessionHeaderSize + payload.size());
  out.append(kSessionMagic, sizeof(kSessionMagic));
  const uint32_t version = kSessionFormatVersion;
  AppendRaw(&out, &version, sizeof(version));
  const uint64_t payload_size = payload.size();
  AppendRaw(&out, &payload_size, sizeof(payload_size));
  const uint64_t checksum = Fnv1a(payload.data(), payload.size());
  AppendRaw(&out, &checksum, sizeof(checksum));
  out.append(payload);
  return out;
}

bool SessionSnapshot::Parse(std::string_view blob, SessionSnapshot* out,
                            std::string* error) {
  if (blob.size() < kSessionHeaderSize) {
    *error = "session snapshot: truncated header";
    return false;
  }
  const char* cursor = blob.data();
  if (std::memcmp(cursor, kSessionMagic, sizeof(kSessionMagic)) != 0) {
    *error = "session snapshot: bad magic (not an ALSS file)";
    return false;
  }
  cursor += sizeof(kSessionMagic);
  uint32_t version = 0;
  std::memcpy(&version, cursor, sizeof(version));
  cursor += sizeof(version);
  if (version != kSessionFormatVersion) {
    *error = "session snapshot: unsupported format version " +
             std::to_string(version) + " (expected " +
             std::to_string(kSessionFormatVersion) + ")";
    return false;
  }
  uint64_t payload_size = 0;
  uint64_t checksum = 0;
  std::memcpy(&payload_size, cursor, sizeof(payload_size));
  cursor += sizeof(payload_size);
  std::memcpy(&checksum, cursor, sizeof(checksum));
  cursor += sizeof(checksum);
  if (blob.size() - kSessionHeaderSize != payload_size) {
    *error = "session snapshot: payload size mismatch (truncated or padded)";
    return false;
  }
  if (Fnv1a(cursor, static_cast<size_t>(payload_size)) != checksum) {
    *error = "session snapshot: checksum mismatch (corrupt file)";
    return false;
  }

  SessionSnapshot parsed;
  size_t offset = 0;
  const std::string_view payload(cursor, static_cast<size_t>(payload_size));
  while (offset < payload.size()) {
    if (payload.size() - offset < kTagSize + sizeof(uint64_t)) {
      *error = "session snapshot: truncated section header";
      return false;
    }
    const std::string tag(payload.substr(offset, kTagSize));
    offset += kTagSize;
    uint64_t length = 0;
    std::memcpy(&length, payload.data() + offset, sizeof(length));
    offset += sizeof(length);
    if (payload.size() - offset < length) {
      *error = "session snapshot: truncated section '" + tag + "'";
      return false;
    }
    parsed.sections[tag] =
        std::string(payload.substr(offset, static_cast<size_t>(length)));
    offset += static_cast<size_t>(length);
  }
  *out = std::move(parsed);
  return true;
}

bool SessionSnapshot::WriteFile(const std::string& path,
                                std::string* error) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    *error = "session snapshot: cannot open '" + path + "' for writing";
    return false;
  }
  const std::string blob = Serialize();
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  out.flush();
  if (!out) {
    *error = "session snapshot: short write to '" + path + "'";
    return false;
  }
  return true;
}

bool SessionSnapshot::ReadFile(const std::string& path, SessionSnapshot* out,
                               std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "session snapshot: cannot open '" + path + "'";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str(), out, error);
}

// ---- LabelingSession ---------------------------------------------------

LabelingSession::LabelingSession(Learner& learner, ExampleSelector& selector,
                                 Oracle& oracle, const Evaluator& evaluator,
                                 ActivePool& pool,
                                 const ActiveLearningConfig& config)
    : LabelingSession(learner, selector, oracle, evaluator, pool, config,
                      /*seed_pool=*/true) {}

LabelingSession::LabelingSession(Learner& learner, ExampleSelector& selector,
                                 Oracle& oracle, const Evaluator& evaluator,
                                 ActivePool& pool,
                                 const ActiveLearningConfig& config,
                                 bool seed_pool)
    : learner_(learner),
      selector_(selector),
      oracle_(oracle),
      evaluator_(evaluator),
      pool_(pool),
      config_(config) {
  ALEM_CHECK(selector.CompatibleWith(learner));
  ALEM_CHECK_GT(config.batch_size, 0u);
  run_span_ = std::make_unique<obs::ObsSpan>("loop.run", "core");
  if (seed_pool) {
    obs::ObsSpan seed_span("loop.seed", "core");
    seed_result_ = SeedPool(pool_, oracle_, config_.seed_size, config_.seed);
  }
}

LabelingSession::~LabelingSession() = default;

bool LabelingSession::Step() {
  if (state_ != SessionState::kNeedsStep) {
    return Reject("Step() requires the needs_step state (currently " +
                  std::string(SessionStateName(state_)) + ")");
  }
  static obs::Counter& iteration_counter =
      obs::MetricsRegistry::Global().GetCounter("loop.iterations");
  ++iteration_;
  iteration_span_ = std::make_unique<obs::ObsSpan>("loop.iteration", "core");
  iteration_counter.Increment();
  stats_ = IterationStats{};
  stats_.iteration = iteration_;
  stats_.labels_used = pool_.num_labeled();

  // 1. Train on the cumulative labeled data. Mode kOn asks the learner to
  // warm-start from the previous iteration's model; kOff/kAuto always refit
  // cold, keeping the model stream bitwise-identical to the baselines.
  {
    obs::ObsSpan train_span("loop.train", "core");
    const FitHint hint = config_.warm_start == WarmStartMode::kOn
                             ? FitHint::kWarm
                             : FitHint::kCold;
    learner_.Fit(pool_.ActiveLabeledFeatures(), pool_.ActiveLabeledLabels(),
                 hint);
    stats_.train_seconds = train_span.Close();
  }

  // 2. Evaluate. Excluded from user wait time: the paper's wait metric
  // only counts work between the user's label submissions.
  {
    obs::ObsSpan evaluate_span("loop.evaluate", "core");
    const std::vector<size_t>& eval_rows = evaluator_.eval_rows();
    // Roofline items: one per evaluated row (obs/profile.h).
    if (obs::profile::Region* profiled =
            obs::profile::ActiveRegion("loop.evaluate")) {
      obs::profile::AddWork(*profiled, eval_rows.size());
    }
    std::vector<int> predictions(eval_rows.size());
    // One batched sweep through the learner's vector kernel (the fan-out
    // runs under "ml.batch" inside this evaluate span).
    learner_.PredictBatch(pool_.features(), eval_rows, predictions.data());
    stats_.metrics = config_.warm_start != WarmStartMode::kOff
                         ? EvaluateIncremental(predictions)
                         : evaluator_.Evaluate(predictions);
    CollectInterpretability(learner_, &stats_);

    // Plateau detection: count consecutive iterations whose predictions
    // are identical to the previous iteration's.
    if (config_.plateau_window > 0) {
      if (predictions == previous_predictions_) {
        ++stable_iterations_;
      } else {
        stable_iterations_ = 0;
      }
      previous_predictions_ = std::move(predictions);
    }
    stats_.evaluate_seconds = evaluate_span.Close();
  }

  state_ = SessionState::kBatchReady;
  return true;
}

std::vector<size_t> LabelingSession::NextBatch() {
  if (state_ != SessionState::kBatchReady) {
    Reject("NextBatch() requires the batch_ready state (currently " +
           std::string(SessionStateName(state_)) + ")");
    return {};
  }

  // 3. Select the next batch.
  const bool plateaued = config_.plateau_window > 0 &&
                         stable_iterations_ >= config_.plateau_window;
  const bool budget_exhausted =
      pool_.num_labeled() + config_.batch_size > config_.max_labels &&
      pool_.num_labeled() >= config_.max_labels;
  const bool target_reached =
      config_.target_f1 > 0.0 && stats_.metrics.f1 >= config_.target_f1;
  std::vector<size_t> batch;
  {
    obs::ObsSpan select_span("loop.select", "core");
    if (!budget_exhausted && !target_reached && !plateaued &&
        !pool_.unlabeled_rows().empty()) {
      SelectionTiming timing;
      const size_t remaining_budget =
          config_.max_labels > pool_.num_labeled()
              ? config_.max_labels - pool_.num_labeled()
              : 0;
      batch = selector_.Select(
          learner_, pool_, std::min(config_.batch_size, remaining_budget),
          &timing);
      stats_.committee_seconds = timing.committee_seconds;
      stats_.scoring_seconds = timing.scoring_seconds;
      stats_.scored_examples = timing.scored_examples;
      stats_.pruned_examples = timing.pruned_examples;
    }
    stats_.select_seconds = select_span.Close();
  }

  if (batch.empty()) {
    // Termination: budget, target, plateau, or selector exhaustion. The
    // no-op label span keeps the terminating iteration's trace shape
    // identical to the historical loop's.
    {
      obs::ObsSpan label_span("loop.label", "core");
      stats_.label_seconds = label_span.Close();
    }
    FinishIteration();
    Finish(budget_exhausted   ? StopReason::kBudgetExhausted
           : target_reached   ? StopReason::kTargetReached
           : plateaued        ? StopReason::kPlateaued
                              : StopReason::kSelectorExhausted);
    return {};
  }

  pending_batch_ = batch;
  state_ = SessionState::kAwaitingLabels;
  return batch;
}

bool LabelingSession::SubmitLabels() {
  if (state_ != SessionState::kAwaitingLabels) {
    return Reject("SubmitLabels() without a pending batch (currently " +
                  std::string(SessionStateName(state_)) + ")");
  }
  // 4. Query the Oracle and grow the training set. Label time is the
  // user's own and excluded from wait time.
  {
    obs::ObsSpan label_span("loop.label", "core");
    for (const size_t row : pending_batch_) {
      pool_.AddLabel(row, oracle_.Label(row));
    }
    stats_.label_seconds = label_span.Close();
  }
  pending_batch_.clear();
  FinishIteration();
  state_ = SessionState::kNeedsStep;
  return true;
}

bool LabelingSession::SubmitLabels(std::span<const int> labels) {
  if (state_ != SessionState::kAwaitingLabels) {
    return Reject("SubmitLabels() without a pending batch (currently " +
                  std::string(SessionStateName(state_)) + ")");
  }
  if (labels.size() != pending_batch_.size()) {
    return Reject("SubmitLabels(): got " + std::to_string(labels.size()) +
                  " labels for a batch of " +
                  std::to_string(pending_batch_.size()));
  }
  for (const int label : labels) {
    if (label != 0 && label != 1) {
      return Reject("SubmitLabels(): labels must be 0 or 1 (got " +
                    std::to_string(label) + ")");
    }
  }
  {
    obs::ObsSpan label_span("loop.label", "core");
    for (size_t i = 0; i < pending_batch_.size(); ++i) {
      pool_.AddLabel(pending_batch_[i], labels[i]);
    }
    stats_.label_seconds = label_span.Close();
  }
  pending_batch_.clear();
  FinishIteration();
  state_ = SessionState::kNeedsStep;
  return true;
}

void LabelingSession::FinishIteration() {
  static obs::Histogram& wait_histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          "loop.wait_seconds", {0.001, 0.01, 0.1, 1.0, 10.0, 60.0});
  static obs::Gauge& labels_gauge =
      obs::MetricsRegistry::Global().GetGauge("loop.labels_used");
  // User wait time is the sum of the measured phase spans (train +
  // select); summing spans rather than re-reading a restarted wall clock
  // keeps evaluator time out of it (paper §6, Fig. 13).
  stats_.wait_seconds = stats_.train_seconds + stats_.select_seconds;
  wait_histogram.Observe(stats_.wait_seconds);
  labels_gauge.Set(static_cast<double>(pool_.num_labeled()));
  curve_.push_back(stats_);
  iteration_span_->Close();
  iteration_span_.reset();
}

void LabelingSession::Finish(StopReason reason) {
  stop_reason_ = reason;
  state_ = SessionState::kFinished;
  // High-water-mark memory at the end of the run, for the flight recorder.
  static obs::Gauge& peak_rss_gauge =
      obs::MetricsRegistry::Global().GetGauge("process.peak_rss_bytes");
  peak_rss_gauge.Set(static_cast<double>(obs::PeakRssBytes()));
  run_span_->Close();
}

bool LabelingSession::Reject(std::string message) {
  error_ = std::move(message);
  return false;
}

void LabelingSession::ResetEvalCache() {
  eval_cache_.clear();
  eval_tp_ = eval_fp_ = eval_fn_ = eval_tn_ = 0;
  eval_audit_countdown_ = 0;
}

BinaryMetrics LabelingSession::EvaluateIncremental(
    const std::vector<int>& predictions) {
  const std::vector<int>& truth = evaluator_.eval_truth();
  ALEM_CHECK_EQ(predictions.size(), truth.size());
  static obs::Counter& rescored =
      obs::MetricsRegistry::Global().GetCounter("eval.rows_rescored");
  static obs::Gauge& pool_rows =
      obs::MetricsRegistry::Global().GetGauge("eval.pool_rows");
  const size_t n = predictions.size();
  // Published so tooling can bound eval.rows_rescored against the pool
  // size (tools/trace_summary.py --check).
  pool_rows.Set(static_cast<double>(n));

  auto full_count = [&](uint64_t* tp, uint64_t* fp, uint64_t* fn,
                        uint64_t* tn) {
    *tp = *fp = *fn = *tn = 0;
    for (size_t i = 0; i < n; ++i) {
      const bool predicted = predictions[i] == 1;
      const bool actual = truth[i] == 1;
      uint64_t& bucket = predicted ? (actual ? *tp : *fp)
                                   : (actual ? *fn : *tn);
      ++bucket;
    }
  };

  if (eval_cache_.size() != n) {
    // Cold cache (first incremental iteration, or restore fallback): one
    // full rescore seeds the tally.
    full_count(&eval_tp_, &eval_fp_, &eval_fn_, &eval_tn_);
    eval_cache_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      eval_cache_[i] = static_cast<uint8_t>(predictions[i] == 1 ? 1 : 0);
    }
    eval_audit_countdown_ = kEvalAuditInterval;
    rescored.Add(n);
    return MetricsFromCounts(eval_tp_, eval_fp_, eval_fn_, eval_tn_);
  }

  // Warm path: move only the changed rows between confusion buckets. The
  // tally stays exactly the full recount by induction, and the returned
  // doubles are bitwise-equal because MetricsFromCounts is the single
  // counts-to-metrics function.
  uint64_t changed = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint8_t current = predictions[i] == 1 ? 1 : 0;
    const uint8_t previous = eval_cache_[i];
    if (current == previous) continue;
    ++changed;
    const bool actual = truth[i] == 1;
    if (previous == 1) {
      --(actual ? eval_tp_ : eval_fp_);
    } else {
      --(actual ? eval_fn_ : eval_tn_);
    }
    if (current == 1) {
      ++(actual ? eval_tp_ : eval_fp_);
    } else {
      ++(actual ? eval_fn_ : eval_tn_);
    }
    eval_cache_[i] = current;
  }
  rescored.Add(changed);

  // Periodic audit: recount everything and require exact agreement.
  if (--eval_audit_countdown_ == 0) {
    eval_audit_countdown_ = kEvalAuditInterval;
    uint64_t tp = 0;
    uint64_t fp = 0;
    uint64_t fn = 0;
    uint64_t tn = 0;
    full_count(&tp, &fp, &fn, &tn);
    rescored.Add(n);
    ALEM_CHECK_EQ(tp, eval_tp_);
    ALEM_CHECK_EQ(fp, eval_fp_);
    ALEM_CHECK_EQ(fn, eval_fn_);
    ALEM_CHECK_EQ(tn, eval_tn_);
  }
  return MetricsFromCounts(eval_tp_, eval_fp_, eval_fn_, eval_tn_);
}

// ---- Snapshot / restore ------------------------------------------------

bool LabelingSession::SaveTo(SessionSnapshot* snapshot,
                             std::string* error) const {
  if (state_ != SessionState::kNeedsStep &&
      state_ != SessionState::kFinished) {
    *error = "session save requires an iteration boundary (needs_step or "
             "finished), currently " +
             std::string(SessionStateName(state_));
    return false;
  }
  snapshot->set("BCFG", EncodeConfig(config_));
  snapshot->set("SCOR", EncodeCore(iteration_, resume_count_, state_,
                                   stop_reason_, seed_result_));
  snapshot->set("POOL", EncodePool(pool_));
  snapshot->set("CRVE", EncodeCurve(curve_));
  snapshot->set("PLAT", EncodePlateau(stable_iterations_,
                                      previous_predictions_));
  snapshot->set("LRNR", learner_.SaveModel());
  snapshot->set("SLCT", selector_.SaveState());
  snapshot->set("ORCL", oracle_.SaveState());
  // The incremental-eval cache travels only when the engine is on and warm:
  // carrying it keeps eval.rows_rescored identical across save/resume.
  if (config_.warm_start != WarmStartMode::kOff && !eval_cache_.empty()) {
    snapshot->set("IEVL",
                  EncodeEvalCache(eval_cache_, eval_tp_, eval_fp_, eval_fn_,
                                  eval_tn_, eval_audit_countdown_));
  }
  return true;
}

bool LabelingSession::Save(const std::string& path, std::string* error) const {
  SessionSnapshot snapshot;
  if (!SaveTo(&snapshot, error)) return false;
  return snapshot.WriteFile(path, error);
}

std::unique_ptr<LabelingSession> LabelingSession::Restore(
    Learner& learner, ExampleSelector& selector, Oracle& oracle,
    const Evaluator& evaluator, ActivePool& pool,
    const SessionSnapshot& snapshot, std::string* error) {
  for (const std::string_view tag :
       {"BCFG", "SCOR", "POOL", "CRVE", "PLAT"}) {
    if (!snapshot.has(tag)) {
      *error = "session snapshot: missing section '" + std::string(tag) + "'";
      return nullptr;
    }
  }
  ActiveLearningConfig config;
  if (!DecodeConfig(snapshot.section("BCFG"), &config)) {
    *error = "session snapshot: malformed config section";
    return nullptr;
  }
  DecodedCore core;
  if (!DecodeCore(snapshot.section("SCOR"), &core)) {
    *error = "session snapshot: malformed session-core section";
    return nullptr;
  }
  std::vector<IterationStats> curve;
  if (!DecodeCurve(snapshot.section("CRVE"), &curve)) {
    *error = "session snapshot: malformed curve section";
    return nullptr;
  }
  size_t stable_iterations = 0;
  std::vector<int> previous_predictions;
  if (!DecodePlateau(snapshot.section("PLAT"), &stable_iterations,
                     &previous_predictions)) {
    *error = "session snapshot: malformed plateau section";
    return nullptr;
  }
  // At an iteration boundary the curve holds exactly the completed
  // iterations.
  if (core.iteration != curve.size()) {
    *error = "session snapshot: iteration count disagrees with curve length";
    return nullptr;
  }
  if (pool.num_labeled() != 0) {
    *error = "session restore requires a freshly constructed (label-free) "
             "pool";
    return nullptr;
  }

  std::unique_ptr<LabelingSession> session(
      new LabelingSession(learner, selector, oracle, evaluator, pool, config,
                          /*seed_pool=*/false));
  if (!ReplayPool(snapshot.section("POOL"), &pool, error)) return nullptr;
  if (!learner.RestoreModel(snapshot.section("LRNR"))) {
    *error = "session snapshot: learner model blob does not match the "
             "configured learner";
    return nullptr;
  }
  if (!selector.RestoreState(snapshot.section("SLCT"))) {
    *error = "session snapshot: selector state does not match the "
             "configured selector";
    return nullptr;
  }
  if (!oracle.RestoreState(snapshot.section("ORCL"))) {
    *error = "session snapshot: oracle state does not match the configured "
             "oracle";
    return nullptr;
  }

  session->iteration_ = core.iteration;
  session->resume_count_ = core.resume_count + 1;
  session->seed_result_ = core.seed_result;
  session->stop_reason_ = core.stop_reason;
  session->state_ = core.state;
  session->curve_ = std::move(curve);
  session->stable_iterations_ = stable_iterations;
  session->previous_predictions_ = std::move(previous_predictions);
  // Incremental-eval cache: best-effort. Absent or malformed (corrupt bytes
  // that still passed the container checksum, or a tally that cannot be
  // right) falls back to a cold cache — the next Step() does one full
  // rescore and re-seeds the tally — rather than failing the restore.
  if (session->config_.warm_start != WarmStartMode::kOff &&
      snapshot.has("IEVL")) {
    if (!DecodeEvalCache(snapshot.section("IEVL"), &session->eval_cache_,
                         &session->eval_tp_, &session->eval_fp_,
                         &session->eval_fn_, &session->eval_tn_,
                         &session->eval_audit_countdown_)) {
      session->ResetEvalCache();
    }
  }
  if (session->state_ == SessionState::kFinished) {
    // Nothing left to run; close the run span the restoring constructor
    // opened so the trace does not dangle.
    session->run_span_->Close();
  }
  return session;
}

}  // namespace alem
