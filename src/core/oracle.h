// Oracles: the labeling authority queried by the active learner.
//
// PerfectOracle returns ground-truth labels. NoisyOracle models
// crowd-sourced labeling (Section 6.2): with a fixed probability the
// returned label is flipped. Flips are decided once per example and cached,
// so repeated queries are consistent, and the whole noise pattern is
// reproducible from the seed.

#ifndef ALEM_CORE_ORACLE_H_
#define ALEM_CORE_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace alem {

class Oracle {
 public:
  virtual ~Oracle() = default;

  // Label in {0, 1} for pool row `row`.
  virtual int Label(size_t row) = 0;

  // Number of labels handed out so far.
  size_t queries() const { return queries_; }

  // Serializes the oracle's mutable state (query count; for the noisy
  // oracles also the RNG stream and the per-row flip cache), so a restored
  // labeling session hands out the exact labels the uninterrupted run
  // would have (docs/sessions.md). RestoreState returns false on
  // malformed input. The base implementations cover stateless oracles.
  virtual std::string SaveState() const;
  virtual bool RestoreState(const std::string& state);

 protected:
  // Bumps both the per-instance count and the global "oracle.queries"
  // metric (defined in oracle.cc to keep obs out of this header).
  void CountQuery();

  void set_queries(size_t n) { queries_ = n; }

 private:
  size_t queries_ = 0;
};

// Returns ground truth labels unchanged.
class PerfectOracle final : public Oracle {
 public:
  explicit PerfectOracle(std::vector<int> truth);
  int Label(size_t row) override;

 private:
  std::vector<int> truth_;
};

// Flips the ground-truth label with probability `noise`; the flip decision
// per row is made lazily on first query and cached.
class NoisyOracle final : public Oracle {
 public:
  NoisyOracle(std::vector<int> truth, double noise, uint64_t seed);
  int Label(size_t row) override;

  double noise() const { return noise_; }

  std::string SaveState() const override;
  bool RestoreState(const std::string& state) override;

 private:
  std::vector<int> truth_;
  std::vector<int8_t> cached_;  // -1 = not yet queried, else the label.
  double noise_;
  Rng rng_;
};

// Majority voting over independent noisy labelers — the label-correction
// technique the paper's Section 6.2 points to for practical crowdsourcing
// ("crowd-sourcing in practical scenarios warrant ... error correction
// techniques such as majority voting"). Each query asks `num_voters`
// (odd) independent noisy workers and returns the majority label; the
// effective flip rate drops from p to P[Binomial(n, p) > n/2].
class MajorityVoteOracle final : public Oracle {
 public:
  MajorityVoteOracle(std::vector<int> truth, double noise, int num_voters,
                     uint64_t seed);
  int Label(size_t row) override;

  int num_voters() const { return num_voters_; }

  std::string SaveState() const override;
  bool RestoreState(const std::string& state) override;

 private:
  std::vector<int> truth_;
  std::vector<int8_t> cached_;
  double noise_;
  int num_voters_;
  Rng rng_;
};

}  // namespace alem

#endif  // ALEM_CORE_ORACLE_H_
