// ActivePool: the labeled / unlabeled example state of an active-learning
// run over a fixed post-blocking pair space.

#ifndef ALEM_CORE_POOL_H_
#define ALEM_CORE_POOL_H_

#include <cstdint>
#include <vector>

#include "features/feature_matrix.h"

namespace alem {

// Owns the feature matrix of all post-blocking pairs plus per-row state:
// unlabeled (selectable), labeled (training data), excluded (never
// selectable: held-out test rows, or rows covered by an accepted
// active-ensemble classifier).
class ActivePool {
 public:
  explicit ActivePool(FeatureMatrix features);

  size_t size() const { return features_.rows(); }
  const FeatureMatrix& features() const { return features_; }

  // --- Labeling ---

  // Marks `row` labeled with `label` (from the Oracle). The row must be
  // currently unlabeled.
  void AddLabel(size_t row, int label);

  bool IsLabeled(size_t row) const;
  // Oracle-provided label; row must be labeled.
  int LabelOf(size_t row) const;
  size_t num_labeled() const { return labeled_.size(); }

  // Rows labeled so far, in labeling order.
  const std::vector<size_t>& labeled_rows() const { return labeled_; }

  // Currently selectable rows (not labeled, not excluded). Rebuilt on
  // demand; invalidated by AddLabel/Exclude.
  const std::vector<size_t>& unlabeled_rows() const;

  // Gathered training data over the *active* labeled rows (excluded labeled
  // rows — e.g. covered by an accepted ensemble member — are omitted).
  FeatureMatrix ActiveLabeledFeatures() const;
  std::vector<int> ActiveLabeledLabels() const;
  std::vector<size_t> ActiveLabeledRows() const;

  // --- Exclusion ---

  // Removes a row from both the selectable set and the active training set.
  // Used for held-out test rows and for active-ensemble coverage removal.
  void Exclude(size_t row);
  bool IsExcluded(size_t row) const;

 private:
  enum class RowState : uint8_t { kUnlabeled, kLabeled };

  FeatureMatrix features_;
  std::vector<RowState> state_;
  std::vector<char> excluded_;
  std::vector<int> labels_;
  std::vector<size_t> labeled_;  // In labeling order.
  mutable std::vector<size_t> unlabeled_cache_;
  mutable bool unlabeled_cache_valid_ = false;
};

}  // namespace alem

#endif  // ALEM_CORE_POOL_H_
