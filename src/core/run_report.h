// Builds the obs::RunReport flight-recorder artifact for one
// RunActiveLearning call: translates the IterationStats curve (produced by
// either ActiveLearningLoop or ActiveEnsembleLoop), copies the run
// configuration and dataset provenance, and stamps the observability
// rollups (counters, span self-times, peak RSS) from the global
// registries. Callers that want counters and span rollups populated must
// enable metrics/tracing before the run (alem_cli --report does).

#ifndef ALEM_CORE_RUN_REPORT_H_
#define ALEM_CORE_RUN_REPORT_H_

#include <string_view>

#include "core/harness.h"
#include "obs/report.h"

namespace alem {

obs::RunReport BuildRunReport(const PreparedDataset& data,
                              const RunConfig& config,
                              const RunResult& result, double wall_seconds,
                              std::string_view tool = "alem_cli");

}  // namespace alem

#endif  // ALEM_CORE_RUN_REPORT_H_
