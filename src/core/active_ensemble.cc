#include "core/active_ensemble.h"

#include <algorithm>

#include "obs/obs.h"
#include "obs/profile.h"
#include "util/check.h"

namespace alem {

ActiveEnsembleLoop::ActiveEnsembleLoop(MarginLearner& candidate,
                                       ExampleSelector& selector,
                                       Oracle& oracle,
                                       const Evaluator& evaluator,
                                       const ActiveEnsembleConfig& config)
    : candidate_(candidate),
      selector_(selector),
      oracle_(oracle),
      evaluator_(evaluator),
      config_(config) {
  ALEM_CHECK(selector.CompatibleWith(candidate));
}

std::vector<IterationStats> ActiveEnsembleLoop::Run(ActivePool& pool) {
  obs::ObsSpan run_span("ensemble.run", "core");
  static obs::Gauge& accepted_gauge =
      obs::MetricsRegistry::Global().GetGauge("ensemble.accepted");

  std::vector<IterationStats> curve;
  {
    obs::ObsSpan seed_span("loop.seed", "core");
    SeedPool(pool, oracle_, config_.base.seed_size, config_.base.seed);
  }
  accepted_count_ = 0;

  // Union of positive predictions of all *accepted* members, per pool row.
  std::vector<char> accepted_positive(pool.size(), 0);

  for (size_t iteration = 1;; ++iteration) {
    obs::ObsSpan iteration_span("loop.iteration", "core");
    IterationStats stats;
    stats.iteration = iteration;
    stats.labels_used = pool.num_labeled();

    // Train the candidate on the uncovered labeled remainder. If an accepted
    // member covered everything, there may be nothing left to train on.
    const std::vector<int> labels = pool.ActiveLabeledLabels();
    const bool trainable =
        !labels.empty() &&
        std::count(labels.begin(), labels.end(), 1) > 0 &&
        std::count(labels.begin(), labels.end(), 0) > 0;
    {
      obs::ObsSpan train_span("loop.train", "core");
      if (trainable) {
        candidate_.Fit(pool.ActiveLabeledFeatures(), labels);
      }
      stats.train_seconds = train_span.Close();
    }

    // Precision gate: judge the candidate on the labeled examples it
    // predicts positive (their true labels came from the Oracle).
    double candidate_precision = 0.0;
    bool candidate_judgeable = false;
    if (trainable && candidate_.trained()) {
      size_t predicted_positives = 0;
      size_t correct_positives = 0;
      const std::vector<size_t> labeled_rows = pool.ActiveLabeledRows();
      std::vector<int> gate_predictions(labeled_rows.size());
      candidate_.PredictBatch(pool.features(), labeled_rows,
                              gate_predictions.data());
      for (size_t i = 0; i < labeled_rows.size(); ++i) {
        if (gate_predictions[i] == 1) {
          ++predicted_positives;
          correct_positives += static_cast<size_t>(
              pool.LabelOf(labeled_rows[i]) == 1 ? 1 : 0);
        }
      }
      if (predicted_positives >= config_.min_labeled_positives) {
        candidate_judgeable = true;
        candidate_precision = static_cast<double>(correct_positives) /
                              static_cast<double>(predicted_positives);
      }
    }

    // Evaluate the ensemble: the union of accepted members' positives, plus
    // the current candidate — but only while the candidate looks precise
    // (or no member has been accepted yet, so there is nothing else to
    // report). A post-coverage candidate trained on the residue would
    // otherwise pollute the union with false positives.
    {
      obs::ObsSpan evaluate_span("loop.evaluate", "core");
      // Roofline items: one per evaluated row (obs/profile.h).
      if (obs::profile::Region* profiled =
              obs::profile::ActiveRegion("loop.evaluate")) {
        obs::profile::AddWork(*profiled, evaluator_.eval_rows().size());
      }
      const bool include_candidate =
          trainable && candidate_.trained() &&
          (accepted_count_ == 0 ||
           (candidate_judgeable &&
            candidate_precision >= config_.precision_threshold));
      const std::vector<size_t>& eval_rows = evaluator_.eval_rows();
      std::vector<int> predictions(eval_rows.size());
      // Gather exactly the rows the candidate must judge (those no accepted
      // member already covers), sweep them in one batch, then scatter back.
      std::vector<size_t> candidate_rows;
      std::vector<size_t> candidate_slots;
      for (size_t i = 0; i < eval_rows.size(); ++i) {
        const size_t row = eval_rows[i];
        predictions[i] = accepted_positive[row];
        if (predictions[i] == 0 && include_candidate) {
          candidate_rows.push_back(row);
          candidate_slots.push_back(i);
        }
      }
      if (!candidate_rows.empty()) {
        std::vector<int> candidate_predictions(candidate_rows.size());
        candidate_.PredictBatch(pool.features(), candidate_rows,
                                candidate_predictions.data());
        for (size_t j = 0; j < candidate_rows.size(); ++j) {
          predictions[candidate_slots[j]] = candidate_predictions[j];
        }
      }
      stats.metrics = evaluator_.Evaluate(predictions);
      stats.evaluate_seconds = evaluate_span.Close();
    }

    if (candidate_judgeable &&
        candidate_precision >= config_.precision_threshold) {
      // Accept: record coverage and remove covered examples from both the
      // labeled and unlabeled sets.
      obs::ObsSpan coverage_span("ensemble.coverage", "core");
      ++accepted_count_;
      std::vector<size_t> uncovered;
      uncovered.reserve(pool.size());
      for (size_t row = 0; row < pool.size(); ++row) {
        if (accepted_positive[row] != 0 || pool.IsExcluded(row)) continue;
        uncovered.push_back(row);
      }
      std::vector<int> covered(uncovered.size());
      candidate_.PredictBatch(pool.features(), uncovered, covered.data());
      for (size_t j = 0; j < uncovered.size(); ++j) {
        if (covered[j] == 1) {
          accepted_positive[uncovered[j]] = 1;
          pool.Exclude(uncovered[j]);
        }
      }
    }
    stats.ensemble_size = accepted_count_;
    accepted_gauge.Set(static_cast<double>(accepted_count_));

    // Select the next batch from the uncovered unlabeled pool.
    const bool budget_exhausted =
        pool.num_labeled() >= config_.base.max_labels;
    const bool target_reached = config_.base.target_f1 > 0.0 &&
                                stats.metrics.f1 >= config_.base.target_f1;
    std::vector<size_t> batch;
    {
      obs::ObsSpan select_span("loop.select", "core");
      if (!budget_exhausted && !target_reached && trainable &&
          !pool.unlabeled_rows().empty()) {
        SelectionTiming timing;
        const size_t remaining_budget =
            config_.base.max_labels - pool.num_labeled();
        batch = selector_.Select(
            candidate_, pool,
            std::min(config_.base.batch_size, remaining_budget), &timing);
        stats.committee_seconds = timing.committee_seconds;
        stats.scoring_seconds = timing.scoring_seconds;
        stats.scored_examples = timing.scored_examples;
        stats.pruned_examples = timing.pruned_examples;
      }
      stats.select_seconds = select_span.Close();
    }
    {
      obs::ObsSpan label_span("loop.label", "core");
      for (const size_t row : batch) {
        pool.AddLabel(row, oracle_.Label(row));
      }
      stats.label_seconds = label_span.Close();
    }
    // Span-derived user wait time, as in ActiveLearningLoop::Run.
    stats.wait_seconds = stats.train_seconds + stats.select_seconds;
    curve.push_back(stats);

    if (batch.empty()) break;
  }
  // High-water-mark memory at the end of the run, for the flight recorder.
  static obs::Gauge& peak_rss_gauge =
      obs::MetricsRegistry::Global().GetGauge("process.peak_rss_bytes");
  peak_rss_gauge.Set(static_cast<double>(obs::PeakRssBytes()));
  return curve;
}

}  // namespace alem
