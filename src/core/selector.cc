#include "core/selector.h"

#include <algorithm>
#include <cmath>
#include <random>

#include "obs/obs.h"
#include "obs/profile.h"
#include "parallel/pool.h"
#include "util/check.h"

namespace alem {
namespace {

// Rows per ParallelFor chunk when scoring the unlabeled pool. Small enough
// to load-balance across workers, large enough to amortize dispatch.
constexpr size_t kScoringGrain = 256;

// Scored candidate with a random key for tie-breaking; sorting is by
// (score, tie) so equal scores resolve uniformly at random.
struct ScoredRow {
  size_t row;
  double score;
  uint64_t tie;
};

// Picks the k candidates with the *largest* score.
std::vector<size_t> TopKLargest(std::vector<ScoredRow>& scored, size_t k) {
  k = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(k),
                    scored.end(), [](const ScoredRow& a, const ScoredRow& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.tie < b.tie;
                    });
  std::vector<size_t> rows(k);
  for (size_t i = 0; i < k; ++i) rows[i] = scored[i].row;
  return rows;
}

// Picks the k candidates with the *smallest* score.
std::vector<size_t> TopKSmallest(std::vector<ScoredRow>& scored, size_t k) {
  k = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(k),
                    scored.end(), [](const ScoredRow& a, const ScoredRow& b) {
                      if (a.score != b.score) return a.score < b.score;
                      return a.tie < b.tie;
                    });
  std::vector<size_t> rows(k);
  for (size_t i = 0; i < k; ++i) rows[i] = scored[i].row;
  return rows;
}

// Metrics shared by all selectors: #examples fully scored and #examples
// skipped by selection-time blocking (paper Section 5.1). Scored examples
// double as the selector.scoring region's work items when that region is
// profiled (obs/profile.h) — every CountScored call happens inside the
// selector's scoring span.
void CountScored(size_t scored) {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("selector.scored_examples");
  counter.Add(scored);
  if (obs::profile::Region* profiled =
          obs::profile::ActiveRegion("selector.scoring")) {
    obs::profile::AddWork(*profiled, scored);
  }
}

void CountPruned(size_t pruned) {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("blocking.pruned");
  counter.Add(pruned);
}

// Bootstrap-fits a committee of `committee_size` clones of `model`, one
// member per pool task. Member seeds come from MemberSeeds(round_seed, m),
// so the result is identical at every thread count.
std::vector<std::unique_ptr<Learner>> FitBootstrapCommittee(
    const Learner& model, const ActivePool& pool, int committee_size,
    uint64_t round_seed) {
  const std::vector<size_t> labeled_rows = pool.ActiveLabeledRows();
  const std::vector<int> labeled_labels = pool.ActiveLabeledLabels();
  ALEM_CHECK(!labeled_rows.empty());

  std::vector<std::unique_ptr<Learner>> committee(
      static_cast<size_t>(committee_size));
  parallel::ParallelFor(
      0, static_cast<size_t>(committee_size), 1,
      [&](size_t begin, size_t end, size_t chunk) {
        (void)chunk;
        for (size_t member = begin; member < end; ++member) {
          const CommitteeMemberSeeds seeds =
              MemberSeeds(round_seed, static_cast<int>(member));
          Rng member_rng(seeds.resample_seed);
          const std::vector<size_t> sample = member_rng.SampleWithReplacement(
              labeled_rows.size(), labeled_rows.size());
          std::vector<size_t> rows(sample.size());
          std::vector<int> labels(sample.size());
          for (size_t i = 0; i < sample.size(); ++i) {
            rows[i] = labeled_rows[sample[i]];
            labels[i] = labeled_labels[sample[i]];
          }
          std::unique_ptr<Learner> clone = model.CloneUntrained();
          clone->set_seed(seeds.learner_seed);
          clone->Fit(pool.features().Gather(rows), labels);
          committee[member] = std::move(clone);
        }
      },
      "selector.committee");
  return committee;
}

}  // namespace

CommitteeMemberSeeds MemberSeeds(uint64_t round_seed, int member) {
  std::seed_seq sequence{static_cast<uint32_t>(round_seed),
                         static_cast<uint32_t>(round_seed >> 32),
                         static_cast<uint32_t>(member)};
  uint32_t words[4];
  sequence.generate(words, words + 4);
  CommitteeMemberSeeds seeds;
  seeds.resample_seed = words[0] | (uint64_t{words[1]} << 32);
  seeds.learner_seed = words[2] | (uint64_t{words[3]} << 32);
  return seeds;
}

// ---- RandomSelector ----

std::vector<size_t> RandomSelector::Select(const Learner& model,
                                           const ActivePool& pool, size_t k,
                                           SelectionTiming* timing) {
  (void)model;
  obs::ObsSpan scoring_span("selector.scoring", "selector", "Random");
  const std::vector<size_t>& unlabeled = pool.unlabeled_rows();
  const size_t take = std::min(k, unlabeled.size());
  std::vector<size_t> picks =
      rng_.SampleWithoutReplacement(unlabeled.size(), take);
  std::vector<size_t> rows(take);
  for (size_t i = 0; i < take; ++i) rows[i] = unlabeled[picks[i]];
  const double scoring_seconds = scoring_span.Close();
  if (timing != nullptr) {
    timing->scoring_seconds = scoring_seconds;
    timing->scored_examples = 0;
  }
  return rows;
}

bool RandomSelector::CompatibleWith(const Learner& model) const {
  (void)model;
  return true;
}

// ---- QbcSelector ----

QbcSelector::QbcSelector(int committee_size, uint64_t seed)
    : committee_size_(committee_size), rng_(seed) {
  ALEM_CHECK_GE(committee_size, 2);
  name_ = "QBC(" + std::to_string(committee_size) + ")";
}

std::vector<size_t> QbcSelector::Select(const Learner& model,
                                        const ActivePool& pool, size_t k,
                                        SelectionTiming* timing) {
  const std::vector<size_t>& unlabeled = pool.unlabeled_rows();
  if (unlabeled.empty()) return {};

  // Committee creation: bootstrap-resample the labeled data and train one
  // clone per member (one pool task each). This is the dominant cost of
  // learner-agnostic QBC (dashed lines in Fig. 10a-b).
  obs::ObsSpan committee_span("selector.committee", "selector", name_);
  const uint64_t round_seed = rng_.Next();
  const std::vector<std::unique_ptr<Learner>> committee =
      FitBootstrapCommittee(model, pool, committee_size_, round_seed);
  const double committee_seconds = committee_span.Close();

  // Example scoring: committee vote variance per unlabeled example. Each
  // member sweeps the whole pool through its batch kernel (the PredictBatch
  // fan-out runs under "ml.batch" inside this scoring span); integer votes
  // then accumulate member-by-member, so the variance is exactly the scalar
  // per-example committee vote. Tie keys are hashed from (tie_seed, row) so
  // they do not depend on scoring order.
  obs::ObsSpan scoring_span("selector.scoring", "selector", name_);
  const uint64_t tie_seed = rng_.Next();
  std::vector<int> votes(unlabeled.size(), 0);
  std::vector<int> member_votes(unlabeled.size());
  for (const auto& member : committee) {
    member->PredictBatch(pool.features(), unlabeled, member_votes.data());
    for (size_t i = 0; i < unlabeled.size(); ++i) votes[i] += member_votes[i];
  }
  std::vector<ScoredRow> scored(unlabeled.size());
  for (size_t i = 0; i < unlabeled.size(); ++i) {
    const size_t row = unlabeled[i];
    const double p = static_cast<double>(votes[i]) /
                     static_cast<double>(committee_size_);
    scored[i] =
        ScoredRow{row, p * (1.0 - p), parallel::TaskSeed(tie_seed, row)};
  }
  std::vector<size_t> rows = TopKLargest(scored, k);
  const double scoring_seconds = scoring_span.Close();
  CountScored(unlabeled.size());
  if (timing != nullptr) {
    timing->committee_seconds = committee_seconds;
    timing->scoring_seconds = scoring_seconds;
    timing->scored_examples = unlabeled.size();
  }
  return rows;
}

bool QbcSelector::CompatibleWith(const Learner& model) const {
  (void)model;
  return true;  // Learner-agnostic by design.
}

// ---- ForestQbcSelector ----

std::vector<size_t> ForestQbcSelector::Select(const Learner& model,
                                              const ActivePool& pool, size_t k,
                                              SelectionTiming* timing) {
  const auto* forest = dynamic_cast<const ForestLearner*>(&model);
  ALEM_CHECK(forest != nullptr);
  const std::vector<size_t>& unlabeled = pool.unlabeled_rows();
  if (unlabeled.empty()) return {};

  // The committee already exists (it was trained as part of the forest), so
  // selection is scoring only: one ProbaBatch sweep yields every example's
  // positive tree fraction through the flattened-forest kernel
  // (all trees in one contiguous node array), fanned out under "ml.batch".
  obs::ObsSpan scoring_span("selector.scoring", "selector", "ForestQBC");
  const uint64_t tie_seed = rng_.Next();
  std::vector<double> fractions(unlabeled.size());
  forest->ProbaBatch(pool.features(), unlabeled, fractions.data());
  std::vector<ScoredRow> scored(unlabeled.size());
  for (size_t i = 0; i < unlabeled.size(); ++i) {
    const size_t row = unlabeled[i];
    const double p = fractions[i];
    scored[i] =
        ScoredRow{row, p * (1.0 - p), parallel::TaskSeed(tie_seed, row)};
  }
  std::vector<size_t> rows = TopKLargest(scored, k);
  const double scoring_seconds = scoring_span.Close();
  CountScored(unlabeled.size());
  if (timing != nullptr) {
    timing->scoring_seconds = scoring_seconds;
    timing->scored_examples = unlabeled.size();
  }
  return rows;
}

bool ForestQbcSelector::CompatibleWith(const Learner& model) const {
  return dynamic_cast<const ForestLearner*>(&model) != nullptr;
}

// ---- MarginSelector ----

std::vector<size_t> MarginSelector::Select(const Learner& model,
                                           const ActivePool& pool, size_t k,
                                           SelectionTiming* timing) {
  const auto* margin_learner = dynamic_cast<const MarginLearner*>(&model);
  ALEM_CHECK(margin_learner != nullptr);
  const std::vector<size_t>& unlabeled = pool.unlabeled_rows();
  if (unlabeled.empty()) return {};

  // Blocking dimensions: the learner's top-K most discriminative features
  // (top |weight| for linear models, back-propagated weight products for
  // neural networks). When all blocking dimensions of an example are zero,
  // its margin reduces to a constant whose sign is an unambiguous
  // prediction — skip it.
  std::vector<size_t> blocking;
  if (blocking_dims_ > 0) {
    blocking = margin_learner->BlockingDimensions(blocking_dims_);
  }

  // Two passes. First a cheap blocking scan — the scalar early-exit path —
  // gathers survivors; blocking makes the per-chunk output variable-length,
  // so chunks fill private slots that are concatenated in chunk index order
  // afterwards (the merged order equals the serial scan order at any thread
  // count). Survivors then get their margins in one MarginBatch sweep
  // through the learner's vector kernel (fanned out under "ml.batch").
  obs::ObsSpan scoring_span("selector.scoring", "selector", "Margin");
  const size_t num_chunks =
      parallel::NumChunks(0, unlabeled.size(), kScoringGrain);
  std::vector<std::vector<size_t>> chunk_survivors(num_chunks);
  std::vector<size_t> chunk_pruned(num_chunks, 0);
  parallel::ParallelFor(
      0, unlabeled.size(), kScoringGrain,
      [&](size_t begin, size_t end, size_t chunk) {
        std::vector<size_t>& local = chunk_survivors[chunk];
        local.reserve(end - begin);
        for (size_t i = begin; i < end; ++i) {
          const size_t row = unlabeled[i];
          const float* x = pool.features().Row(row);
          if (!blocking.empty()) {
            bool all_zero = true;
            for (const size_t dim : blocking) {
              if (x[dim] != 0.0f) {
                all_zero = false;
                break;
              }
            }
            if (all_zero) {
              ++chunk_pruned[chunk];
              continue;
            }
          }
          local.push_back(row);
        }
      },
      "selector.scoring");
  std::vector<size_t> survivors;
  survivors.reserve(unlabeled.size());
  size_t pruned = 0;
  for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
    survivors.insert(survivors.end(), chunk_survivors[chunk].begin(),
                     chunk_survivors[chunk].end());
    pruned += chunk_pruned[chunk];
  }
  std::vector<double> margins(survivors.size());
  margin_learner->MarginBatch(pool.features(), survivors, margins.data());
  std::vector<ScoredRow> scored(survivors.size());
  for (size_t i = 0; i < survivors.size(); ++i) {
    scored[i] = ScoredRow{survivors[i], std::abs(margins[i]), 0};
  }
  std::vector<size_t> rows = TopKSmallest(scored, k);
  const double scoring_seconds = scoring_span.Close();
  CountScored(scored.size());
  CountPruned(pruned);
  if (timing != nullptr) {
    timing->scoring_seconds = scoring_seconds;
    timing->scored_examples = scored.size();
    timing->pruned_examples = pruned;
  }
  return rows;
}

bool MarginSelector::CompatibleWith(const Learner& model) const {
  return dynamic_cast<const MarginLearner*>(&model) != nullptr;
}

// ---- IwalSelector ----

IwalSelector::IwalSelector(int committee_size, double min_probability,
                           uint64_t seed)
    : committee_size_(committee_size),
      min_probability_(min_probability),
      rng_(seed) {
  ALEM_CHECK_GE(committee_size, 2);
  ALEM_CHECK_GE(min_probability, 0.0);
  ALEM_CHECK_LE(min_probability, 1.0);
  name_ = "IWAL(" + std::to_string(committee_size) + ")";
}

std::vector<size_t> IwalSelector::Select(const Learner& model,
                                         const ActivePool& pool, size_t k,
                                         SelectionTiming* timing) {
  const std::vector<size_t>& unlabeled = pool.unlabeled_rows();
  if (unlabeled.empty()) return {};

  // Bootstrap committee, exactly as in QBC (one parallel task per member).
  obs::ObsSpan committee_span("selector.committee", "selector", name_);
  const uint64_t round_seed = rng_.Next();
  const std::vector<std::unique_ptr<Learner>> committee =
      FitBootstrapCommittee(model, pool, committee_size_, round_seed);
  const double committee_seconds = committee_span.Close();

  // Rejection sampling stays serial: each keep/skip decision consumes the
  // shared Bernoulli stream in visit order, so it is order-dependent by
  // construction. Visit unlabeled examples in random order and keep
  // each with probability p_min + (1 - p_min) * 4 * variance.
  obs::ObsSpan scoring_span("selector.scoring", "selector", name_);
  std::vector<size_t> visit(unlabeled);
  rng_.Shuffle(visit);
  std::vector<size_t> rows;
  rows.reserve(k);
  size_t scored = 0;
  for (const size_t row : visit) {
    if (rows.size() >= k) break;
    const float* x = pool.features().Row(row);
    int positive_votes = 0;
    for (const auto& member : committee) positive_votes += member->Predict(x);
    ++scored;
    const double p = static_cast<double>(positive_votes) /
                     static_cast<double>(committee_size_);
    const double variance = p * (1.0 - p);
    const double keep =
        min_probability_ + (1.0 - min_probability_) * 4.0 * variance;
    if (rng_.NextBernoulli(keep)) rows.push_back(row);
  }
  // If rejection sampling under-fills the batch, top up with the most
  // recently skipped examples (rare once the pool has ambiguity).
  for (size_t i = 0; rows.size() < k && i < visit.size(); ++i) {
    bool already = false;
    for (const size_t row : rows) already |= row == visit[i];
    if (!already) rows.push_back(visit[i]);
  }
  const double scoring_seconds = scoring_span.Close();
  CountScored(scored);
  if (timing != nullptr) {
    timing->committee_seconds = committee_seconds;
    timing->scoring_seconds = scoring_seconds;
    timing->scored_examples = scored;
  }
  return rows;
}

bool IwalSelector::CompatibleWith(const Learner& model) const {
  (void)model;
  return true;  // Learner-agnostic, like QBC.
}

// ---- DensityWeightedSelector ----

DensityWeightedSelector::DensityWeightedSelector(double beta, uint64_t seed)
    : beta_(beta), rng_(seed) {}

std::vector<size_t> DensityWeightedSelector::Select(const Learner& model,
                                                    const ActivePool& pool,
                                                    size_t k,
                                                    SelectionTiming* timing) {
  const auto* margin_learner = dynamic_cast<const MarginLearner*>(&model);
  ALEM_CHECK(margin_learner != nullptr);
  const std::vector<size_t>& unlabeled = pool.unlabeled_rows();
  if (unlabeled.empty()) return {};

  obs::ObsSpan scoring_span("selector.scoring", "selector", "DensityMargin");
  const size_t dims = pool.features().dims();

  // Density reference: a fixed random sample of the unlabeled pool.
  constexpr size_t kDensitySample = 64;
  const size_t sample_size = std::min(kDensitySample, unlabeled.size());
  const std::vector<size_t> picks =
      rng_.SampleWithoutReplacement(unlabeled.size(), sample_size);
  std::vector<const float*> reference(sample_size);
  std::vector<double> reference_norms(sample_size);
  for (size_t i = 0; i < sample_size; ++i) {
    reference[i] = pool.features().Row(unlabeled[picks[i]]);
    double norm = 0.0;
    for (size_t d = 0; d < dims; ++d) {
      norm += static_cast<double>(reference[i][d]) * reference[i][d];
    }
    reference_norms[i] = std::sqrt(norm);
  }

  // Margins for the whole pool come from one MarginBatch sweep up front
  // (bitwise-identical to per-row Margin); the density pass below then only
  // computes cosine similarities against the reference sample.
  std::vector<double> margins(unlabeled.size());
  margin_learner->MarginBatch(pool.features(), unlabeled, margins.data());

  std::vector<ScoredRow> scored(unlabeled.size());
  parallel::ParallelFor(
      0, unlabeled.size(), kScoringGrain,
      [&](size_t chunk_begin, size_t chunk_end, size_t chunk) {
        (void)chunk;
        for (size_t index = chunk_begin; index < chunk_end; ++index) {
          const size_t row = unlabeled[index];
          const float* x = pool.features().Row(row);
          double x_norm = 0.0;
          for (size_t d = 0; d < dims; ++d) {
            x_norm += static_cast<double>(x[d]) * x[d];
          }
          x_norm = std::sqrt(x_norm);

          double density = 0.0;
          for (size_t i = 0; i < sample_size; ++i) {
            double dot = 0.0;
            for (size_t d = 0; d < dims; ++d) {
              dot += static_cast<double>(x[d]) * reference[i][d];
            }
            const double denom = x_norm * reference_norms[i];
            density += denom > 0.0 ? dot / denom : 0.0;
          }
          density /= static_cast<double>(sample_size);

          const double uncertainty = 1.0 / (std::abs(margins[index]) + 1e-6);
          scored[index] =
              ScoredRow{row, uncertainty * std::pow(density, beta_), 0};
        }
      },
      "selector.scoring");
  std::vector<size_t> rows = TopKLargest(scored, k);
  const double scoring_seconds = scoring_span.Close();
  CountScored(unlabeled.size());
  if (timing != nullptr) {
    timing->scoring_seconds = scoring_seconds;
    timing->scored_examples = unlabeled.size();
  }
  return rows;
}

bool DensityWeightedSelector::CompatibleWith(const Learner& model) const {
  return dynamic_cast<const MarginLearner*>(&model) != nullptr;
}

// ---- LfpLfnSelector ----

std::vector<size_t> LfpLfnSelector::Select(const Learner& model,
                                           const ActivePool& pool, size_t k,
                                           SelectionTiming* timing) {
  const auto* rules = dynamic_cast<const RuleLearner*>(&model);
  ALEM_CHECK(rules != nullptr);
  const std::vector<size_t>& unlabeled = pool.unlabeled_rows();
  if (unlabeled.empty()) return {};

  obs::ObsSpan scoring_span("selector.scoring", "selector", "LFP/LFN");
  const Dnf& dnf = rules->dnf();
  const std::vector<Conjunction> relaxed = dnf.RuleMinusVariants();
  const size_t num_atoms = pool.features().dims();

  // Proxy similarity: fraction of satisfied atoms. Low values among
  // predicted matches flag likely false positives; high values among
  // predicted non-matches flag likely false negatives.
  auto proxy = [&](const float* x) {
    double satisfied = 0.0;
    for (size_t a = 0; a < num_atoms; ++a) satisfied += x[a];
    return satisfied / static_cast<double>(num_atoms);
  };

  std::vector<ScoredRow> lfp;  // Predicted positive, ascending proxy.
  std::vector<ScoredRow> lfn;  // Rule-minus positive, descending proxy.
  for (const size_t row : unlabeled) {
    const float* x = pool.features().Row(row);
    if (!dnf.conjunctions.empty() && dnf.Matches(x)) {
      lfp.push_back(ScoredRow{row, proxy(x), 0});
      continue;
    }
    if (dnf.conjunctions.empty()) {
      // Bootstrap mode: before any rule exists there are no LFPs/LFNs in the
      // strict sense; treat the most similar-looking unlabeled examples as
      // likely (false) negatives so rule learning can get off the ground.
      lfn.push_back(ScoredRow{row, proxy(x), 0});
      continue;
    }
    for (const Conjunction& variant : relaxed) {
      if (variant.Matches(x)) {
        lfn.push_back(ScoredRow{row, proxy(x), 0});
        break;
      }
    }
  }

  std::vector<size_t> lfp_rows = TopKSmallest(lfp, k);
  std::vector<size_t> lfn_rows = TopKLargest(lfn, k);

  // Interleave LFPs and LFNs up to the batch size.
  std::vector<size_t> rows;
  rows.reserve(k);
  size_t i = 0, j = 0;
  while (rows.size() < k && (i < lfp_rows.size() || j < lfn_rows.size())) {
    if (i < lfp_rows.size()) rows.push_back(lfp_rows[i++]);
    if (rows.size() < k && j < lfn_rows.size()) rows.push_back(lfn_rows[j++]);
  }
  const double scoring_seconds = scoring_span.Close();
  CountScored(unlabeled.size());
  if (timing != nullptr) {
    timing->scoring_seconds = scoring_seconds;
    timing->scored_examples = unlabeled.size();
  }
  return rows;
}

bool LfpLfnSelector::CompatibleWith(const Learner& model) const {
  return dynamic_cast<const RuleLearner*>(&model) != nullptr;
}

}  // namespace alem
