#include "core/learner.h"

#include <numeric>
#include <utility>

#include "ml/serialization.h"
#include "obs/obs.h"
#include "obs/profile.h"
#include "parallel/pool.h"

namespace alem {
namespace {

// Chunk size for the ml.batch fan-out. Matches the selectors' scoring grain
// so batch spans tile the same row ranges the scalar scoring loops did.
constexpr size_t kBatchGrain = 256;

// Roofline accounting (obs/profile.h) for the ml.batch region. Every batch
// entry point reports its input traffic (rows x dims float features);
// *items* are added only by PredictBatch so the profiled row count stays
// exactly equal to the ml.predict_calls counter (a report_gate invariant).
// FLOPs are reported by the models themselves, which know the closed form.
obs::profile::Region& MlBatchRegion() {
  static obs::profile::Region& region = obs::profile::GetRegion("ml.batch");
  return region;
}

uint64_t MlBatchBytes(const FeatureMatrix& features, size_t rows) {
  return static_cast<uint64_t>(rows) * features.dims() * sizeof(float);
}

}  // namespace

void Learner::Fit(const FeatureMatrix& features,
                  const std::vector<int>& labels) {
  Fit(features, labels, FitHint::kCold);
}

void Learner::Fit(const FeatureMatrix& features, const std::vector<int>& labels,
                  FitHint hint) {
  obs::ObsSpan span("ml.fit", "ml", name());
  // A warm hint is best-effort: FitWarmImpl declines (returning false with
  // the model untouched) when it cannot resume, and the cold path runs.
  const bool warm = hint == FitHint::kWarm && FitWarmImpl(features, labels);
  if (!warm) FitImpl(features, labels);
  const double seconds = span.Close();
  static obs::Counter& fits =
      obs::MetricsRegistry::Global().GetCounter("ml.fit_calls");
  fits.Increment();
  // Warm/cold rollup: ml.warm_fits + ml.cold_fits == ml.fit_calls always
  // (trace_summary.py --check enforces it; docs/observability.md).
  if (warm) {
    static obs::Counter& warm_fits =
        obs::MetricsRegistry::Global().GetCounter("ml.warm_fits");
    warm_fits.Increment();
  } else {
    static obs::Counter& cold_fits =
        obs::MetricsRegistry::Global().GetCounter("ml.cold_fits");
    cold_fits.Increment();
  }
  static obs::Histogram& latency = obs::MetricsRegistry::Global().GetHistogram(
      "ml.fit_seconds", {0.0001, 0.001, 0.01, 0.1, 1.0, 10.0});
  latency.Observe(seconds);
}

void Learner::PredictBatch(const FeatureMatrix& features,
                           std::span<const size_t> rows, int* out) const {
  obs::profile::ScopedWork profile_scope(MlBatchRegion());
  profile_scope.Add(rows.size(), MlBatchBytes(features, rows.size()));
  // Each chunk writes its own disjoint slice and every kernel preserves the
  // scalar per-row accumulation order, so the result is bitwise-identical
  // at any thread count.
  parallel::ParallelFor(
      0, rows.size(), kBatchGrain,
      [&](size_t begin, size_t end, size_t chunk) {
        (void)chunk;
        PredictChunkImpl(features, rows.subspan(begin, end - begin),
                         out + begin);
      },
      "ml.batch");
  obs::CountPredictCalls(rows.size());
}

void Learner::ProbaBatch(const FeatureMatrix& features,
                         std::span<const size_t> rows, double* out) const {
  obs::profile::ScopedWork profile_scope(MlBatchRegion());
  profile_scope.Add(0, MlBatchBytes(features, rows.size()));
  parallel::ParallelFor(
      0, rows.size(), kBatchGrain,
      [&](size_t begin, size_t end, size_t chunk) {
        (void)chunk;
        ProbaChunkImpl(features, rows.subspan(begin, end - begin), out + begin);
      },
      "ml.batch");
}

std::vector<int> Learner::PredictAll(const FeatureMatrix& features) const {
  std::vector<int> predictions(features.rows());
  std::vector<size_t> rows(features.rows());
  std::iota(rows.begin(), rows.end(), 0u);
  PredictBatch(features, rows, predictions.data());
  return predictions;
}

void Learner::PredictChunkImpl(const FeatureMatrix& features,
                               std::span<const size_t> rows, int* out) const {
  for (size_t i = 0; i < rows.size(); ++i) {
    out[i] = PredictImpl(features.Row(rows[i]));
  }
}

void Learner::ProbaChunkImpl(const FeatureMatrix& features,
                             std::span<const size_t> rows, double* out) const {
  // Learners without a calibrated score report the hard 0/1 prediction.
  for (size_t i = 0; i < rows.size(); ++i) {
    out[i] = static_cast<double>(PredictImpl(features.Row(rows[i])));
  }
}

void MarginLearner::MarginBatch(const FeatureMatrix& features,
                                std::span<const size_t> rows,
                                double* out) const {
  obs::profile::ScopedWork profile_scope(MlBatchRegion());
  profile_scope.Add(0, MlBatchBytes(features, rows.size()));
  parallel::ParallelFor(
      0, rows.size(), kBatchGrain,
      [&](size_t begin, size_t end, size_t chunk) {
        (void)chunk;
        MarginChunkImpl(features, rows.subspan(begin, end - begin),
                        out + begin);
      },
      "ml.batch");
}

void MarginLearner::MarginChunkImpl(const FeatureMatrix& features,
                                    std::span<const size_t> rows,
                                    double* out) const {
  for (size_t i = 0; i < rows.size(); ++i) {
    out[i] = Margin(features.Row(rows[i]));
  }
}

// ---- SvmLearner ----

void SvmLearner::FitImpl(const FeatureMatrix& features,
                         const std::vector<int>& labels) {
  model_.Fit(features, labels);
}

bool SvmLearner::FitWarmImpl(const FeatureMatrix& features,
                             const std::vector<int>& labels) {
  return model_.FitWarm(features, labels);
}

int SvmLearner::PredictImpl(const float* x) const { return model_.Predict(x); }

std::unique_ptr<Learner> SvmLearner::CloneUntrained() const {
  return std::make_unique<SvmLearner>(model_.config());
}

void SvmLearner::set_seed(uint64_t seed) {
  LinearSvmConfig config = model_.config();
  config.seed = seed;
  model_ = LinearSvm(config);
}

std::string SvmLearner::SaveModel() const {
  return model_.trained() ? SerializeSvm(model_) : std::string();
}

bool SvmLearner::RestoreModel(const std::string& blob) {
  if (blob.empty()) return true;  // Untrained snapshot; nothing to install.
  return DeserializeSvm(blob, &model_);
}

double SvmLearner::Margin(const float* x) const { return model_.Margin(x); }

void SvmLearner::PredictChunkImpl(const FeatureMatrix& features,
                                  std::span<const size_t> rows,
                                  int* out) const {
  model_.PredictBatch(features, rows, out);
}

void SvmLearner::MarginChunkImpl(const FeatureMatrix& features,
                                 std::span<const size_t> rows,
                                 double* out) const {
  model_.MarginBatch(features, rows, out);
}

std::vector<size_t> SvmLearner::BlockingDimensions(size_t k) const {
  return model_.TopWeightDimensions(k);
}

// ---- NeuralNetLearner ----

void NeuralNetLearner::FitImpl(const FeatureMatrix& features,
                               const std::vector<int>& labels) {
  model_.Fit(features, labels);
}

bool NeuralNetLearner::FitWarmImpl(const FeatureMatrix& features,
                                   const std::vector<int>& labels) {
  return model_.FitWarm(features, labels);
}

int NeuralNetLearner::PredictImpl(const float* x) const {
  return model_.Predict(x);
}

std::unique_ptr<Learner> NeuralNetLearner::CloneUntrained() const {
  return std::make_unique<NeuralNetLearner>(model_.config());
}

void NeuralNetLearner::set_seed(uint64_t seed) {
  NeuralNetConfig config = model_.config();
  config.seed = seed;
  model_ = NeuralNetwork(config);
}

std::string NeuralNetLearner::SaveModel() const {
  return model_.trained() ? SerializeNeuralNet(model_) : std::string();
}

bool NeuralNetLearner::RestoreModel(const std::string& blob) {
  if (blob.empty()) return true;
  return DeserializeNeuralNet(blob, &model_);
}

double NeuralNetLearner::Margin(const float* x) const {
  return model_.Margin(x);
}

void NeuralNetLearner::PredictChunkImpl(const FeatureMatrix& features,
                                        std::span<const size_t> rows,
                                        int* out) const {
  model_.PredictBatch(features, rows, out);
}

void NeuralNetLearner::ProbaChunkImpl(const FeatureMatrix& features,
                                      std::span<const size_t> rows,
                                      double* out) const {
  model_.ProbaBatch(features, rows, out);
}

void NeuralNetLearner::MarginChunkImpl(const FeatureMatrix& features,
                                       std::span<const size_t> rows,
                                       double* out) const {
  model_.MarginBatch(features, rows, out);
}

std::vector<size_t> NeuralNetLearner::BlockingDimensions(size_t k) const {
  return model_.TopImportanceDimensions(k);
}

// ---- ForestLearner ----

void ForestLearner::FitImpl(const FeatureMatrix& features,
                            const std::vector<int>& labels) {
  model_.Fit(features, labels);
}

bool ForestLearner::FitWarmImpl(const FeatureMatrix& features,
                                const std::vector<int>& labels) {
  size_t trees_refit = 0;
  if (!model_.FitWarm(features, labels, &trees_refit)) return false;
  static obs::Counter& refit_counter =
      obs::MetricsRegistry::Global().GetCounter("ml.trees_refit");
  refit_counter.Add(trees_refit);
  return true;
}

int ForestLearner::PredictImpl(const float* x) const {
  return model_.Predict(x);
}

std::unique_ptr<Learner> ForestLearner::CloneUntrained() const {
  return std::make_unique<ForestLearner>(model_.config());
}

void ForestLearner::set_seed(uint64_t seed) {
  RandomForestConfig config = model_.config();
  config.seed = seed;
  model_ = RandomForest(config);
}

std::string ForestLearner::SaveModel() const {
  return model_.trained() ? SerializeForest(model_) : std::string();
}

bool ForestLearner::RestoreModel(const std::string& blob) {
  if (blob.empty()) return true;
  return DeserializeForest(blob, &model_);
}

double ForestLearner::PositiveFraction(const float* x) const {
  return model_.PositiveFraction(x);
}

void ForestLearner::PredictChunkImpl(const FeatureMatrix& features,
                                     std::span<const size_t> rows,
                                     int* out) const {
  model_.PredictBatch(features, rows, out);
}

void ForestLearner::ProbaChunkImpl(const FeatureMatrix& features,
                                   std::span<const size_t> rows,
                                   double* out) const {
  model_.PositiveFractionBatch(features, rows, out);
}

// ---- RuleLearner ----

void RuleLearner::FitImpl(const FeatureMatrix& boolean_features,
                          const std::vector<int>& labels) {
  model_.Fit(boolean_features, labels);
}

int RuleLearner::PredictImpl(const float* boolean_row) const {
  return model_.Predict(boolean_row);
}

std::unique_ptr<Learner> RuleLearner::CloneUntrained() const {
  return std::make_unique<RuleLearner>(model_.config());
}

void RuleLearner::set_seed(uint64_t seed) {
  // The greedy DNF learner is deterministic; nothing to reseed.
  (void)seed;
}

std::string RuleLearner::SaveModel() const {
  return model_.trained() ? SerializeDnf(model_.dnf()) : std::string();
}

bool RuleLearner::RestoreModel(const std::string& blob) {
  if (blob.empty()) return true;
  Dnf dnf;
  if (!DeserializeDnf(blob, &dnf)) return false;
  model_.RestoreTrained(std::move(dnf));
  return true;
}

}  // namespace alem
