#include "core/learner.h"

#include "obs/obs.h"
#include "parallel/pool.h"

namespace alem {

void Learner::Fit(const FeatureMatrix& features,
                  const std::vector<int>& labels) {
  obs::ObsSpan span("ml.fit", "ml", name());
  FitImpl(features, labels);
  const double seconds = span.Close();
  static obs::Counter& fits =
      obs::MetricsRegistry::Global().GetCounter("ml.fit_calls");
  fits.Increment();
  static obs::Histogram& latency = obs::MetricsRegistry::Global().GetHistogram(
      "ml.fit_seconds", {0.0001, 0.001, 0.01, 0.1, 1.0, 10.0});
  latency.Observe(seconds);
}

std::vector<int> Learner::PredictAll(const FeatureMatrix& features) const {
  // Chunked over rows; each chunk writes its own disjoint slice, so the
  // result is identical at any thread count.
  std::vector<int> predictions(features.rows());
  parallel::ParallelFor(
      0, features.rows(), 512,
      [&](size_t begin, size_t end, size_t chunk) {
        (void)chunk;
        for (size_t i = begin; i < end; ++i) {
          predictions[i] = Predict(features.Row(i));
        }
      },
      "ml.predict_batch");
  return predictions;
}

// ---- SvmLearner ----

void SvmLearner::FitImpl(const FeatureMatrix& features,
                         const std::vector<int>& labels) {
  model_.Fit(features, labels);
}

int SvmLearner::PredictImpl(const float* x) const { return model_.Predict(x); }

std::unique_ptr<Learner> SvmLearner::CloneUntrained() const {
  return std::make_unique<SvmLearner>(model_.config());
}

void SvmLearner::set_seed(uint64_t seed) {
  LinearSvmConfig config = model_.config();
  config.seed = seed;
  model_ = LinearSvm(config);
}

double SvmLearner::Margin(const float* x) const { return model_.Margin(x); }

std::vector<size_t> SvmLearner::BlockingDimensions(size_t k) const {
  return model_.TopWeightDimensions(k);
}

// ---- NeuralNetLearner ----

void NeuralNetLearner::FitImpl(const FeatureMatrix& features,
                               const std::vector<int>& labels) {
  model_.Fit(features, labels);
}

int NeuralNetLearner::PredictImpl(const float* x) const {
  return model_.Predict(x);
}

std::unique_ptr<Learner> NeuralNetLearner::CloneUntrained() const {
  return std::make_unique<NeuralNetLearner>(model_.config());
}

void NeuralNetLearner::set_seed(uint64_t seed) {
  NeuralNetConfig config = model_.config();
  config.seed = seed;
  model_ = NeuralNetwork(config);
}

double NeuralNetLearner::Margin(const float* x) const {
  return model_.Margin(x);
}

std::vector<size_t> NeuralNetLearner::BlockingDimensions(size_t k) const {
  return model_.TopImportanceDimensions(k);
}

// ---- ForestLearner ----

void ForestLearner::FitImpl(const FeatureMatrix& features,
                            const std::vector<int>& labels) {
  model_.Fit(features, labels);
}

int ForestLearner::PredictImpl(const float* x) const {
  return model_.Predict(x);
}

std::unique_ptr<Learner> ForestLearner::CloneUntrained() const {
  return std::make_unique<ForestLearner>(model_.config());
}

void ForestLearner::set_seed(uint64_t seed) {
  RandomForestConfig config = model_.config();
  config.seed = seed;
  model_ = RandomForest(config);
}

double ForestLearner::PositiveFraction(const float* x) const {
  return model_.PositiveFraction(x);
}

// ---- RuleLearner ----

void RuleLearner::FitImpl(const FeatureMatrix& boolean_features,
                          const std::vector<int>& labels) {
  model_.Fit(boolean_features, labels);
}

int RuleLearner::PredictImpl(const float* boolean_row) const {
  return model_.Predict(boolean_row);
}

std::unique_ptr<Learner> RuleLearner::CloneUntrained() const {
  return std::make_unique<RuleLearner>(model_.config());
}

void RuleLearner::set_seed(uint64_t seed) {
  // The greedy DNF learner is deterministic; nothing to reseed.
  (void)seed;
}

}  // namespace alem
