// Learner class hierarchy (Fig. 2 of the paper).
//
// The framework's plug-and-play design rests on this hierarchy: the base
// Learner class hosts the functionality every classifier shares (fit /
// predict / clone), and capability subclasses mark what each learner can do
// for example selection:
//
//   Learner
//   |-- MarginLearner            (margin-based selection is applicable)
//   |   |-- SvmLearner           (linear: exposes weights -> blocking dims)
//   |   `-- NeuralNetLearner     (non-convex non-linear)
//   |-- ForestLearner            (learner-aware committee: trees vote)
//   `-- RuleLearner              (monotone DNF; LFP/LFN heuristic applies)
//
// Example selectors declare compatibility against these interfaces, which is
// how the framework records which (learner, selector) combinations make
// sense (Section 3).

#ifndef ALEM_CORE_LEARNER_H_
#define ALEM_CORE_LEARNER_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "features/boolean_features.h"
#include "features/feature_matrix.h"
#include "ml/dnf_rule.h"
#include "ml/linear_svm.h"
#include "ml/neural_net.h"
#include "ml/random_forest.h"
#include "obs/obs.h"

namespace alem {

// Base class for all learners in the framework.
//
// Fit and Predict are non-virtual template methods so every training phase
// and prediction in the pipeline is observable from one place: Fit wraps
// FitImpl in an "ml.fit" trace span (committee-member training shows up
// nested under the selector's committee span), and Predict counts calls
// through a branch-predicted no-op when metrics are off. Subclasses
// implement FitImpl / PredictImpl.
//
// Batch inference: PredictBatch / ProbaBatch (and MarginLearner's
// MarginBatch) score a FeatureMatrix row range in one call, fanned out over
// the deterministic thread pool under the "ml.batch" obs region and routed
// to per-learner vector kernels — a blocked GEMV sweep for the linear SVM,
// a chunked fused forward pass for the neural net, a contiguous
// flattened-tree traversal for the forest. The kernels preserve the scalar
// accumulation order per row, so batch results are bitwise-identical to
// per-row Predict / Margin at every thread count. Selectors, the
// active-learning loops, and the evaluator all score through this path;
// the scalar entry points remain for selection-time blocking's early-exit
// and one-off calls.
// How Learner::Fit should obtain the new model (docs/training.md): kCold
// trains from scratch; kWarm asks the learner to resume from its current
// model via FitWarmImpl, silently falling back to a cold fit when the
// learner cannot (untrained, dimensionality change, or no warm support).
// The ml.warm_fits / ml.cold_fits counters record the path actually taken.
enum class FitHint { kCold, kWarm };

class Learner {
 public:
  virtual ~Learner() = default;

  // Trains from scratch on labels in {0, 1}.
  void Fit(const FeatureMatrix& features, const std::vector<int>& labels);

  // Trains with an explicit warm/cold hint; Fit(features, labels) is
  // equivalent to hint = FitHint::kCold.
  void Fit(const FeatureMatrix& features, const std::vector<int>& labels,
           FitHint hint);

  int Predict(const float* x) const {
    obs::CountPredictCall();
    return PredictImpl(x);
  }

  // Batched prediction: out[i] = prediction for row rows[i] of `features`
  // (out must hold rows.size() slots). Chunked over the thread pool under
  // the "ml.batch" region; counts rows.size() toward ml.predict_calls —
  // exactly what per-row Predict would have counted.
  void PredictBatch(const FeatureMatrix& features,
                    std::span<const size_t> rows, int* out) const;

  // Batched positive-class score per row: the forest reports its positive
  // tree fraction, the neural net its sigmoid probability; learners without
  // a calibrated score fall back to the 0/1 prediction. Does NOT count
  // predict calls (parity with the scalar PositiveFraction / Margin paths,
  // which never did).
  void ProbaBatch(const FeatureMatrix& features, std::span<const size_t> rows,
                  double* out) const;

  // All rows of `features`, in order, through the batch path.
  std::vector<int> PredictAll(const FeatureMatrix& features) const;

  virtual bool trained() const = 0;

  // Fresh untrained instance with identical configuration (used by the
  // learner-agnostic QBC selector to build bootstrap committees).
  virtual std::unique_ptr<Learner> CloneUntrained() const = 0;

  // Reseeds internal randomness (committee members need distinct streams).
  virtual void set_seed(uint64_t seed) = 0;

  // Serializes the trained model through ml/serialization so a labeling
  // session snapshot can carry it across processes (docs/sessions.md).
  // Returns an empty blob when untrained; RestoreModel accepts an empty
  // blob as "untrained" and returns false on malformed input. The defaults
  // cover learners without a persistent model format.
  virtual std::string SaveModel() const { return {}; }
  virtual bool RestoreModel(const std::string& blob) { return blob.empty(); }

  virtual std::string_view name() const = 0;

 protected:
  virtual void FitImpl(const FeatureMatrix& features,
                       const std::vector<int>& labels) = 0;
  virtual int PredictImpl(const float* x) const = 0;

  // Warm-start refit from the current model. Returns false (model untouched)
  // when the learner cannot warm-start — Fit then runs FitImpl instead. The
  // default marks warm starts unsupported for the learner.
  virtual bool FitWarmImpl(const FeatureMatrix& features,
                           const std::vector<int>& labels) {
    (void)features;
    (void)labels;
    return false;
  }

  // Serial batch kernels over one chunk of rows, invoked from inside the
  // PredictBatch / ProbaBatch fan-out. Defaults loop the scalar PredictImpl;
  // learners with vectorized kernels override.
  virtual void PredictChunkImpl(const FeatureMatrix& features,
                                std::span<const size_t> rows, int* out) const;
  virtual void ProbaChunkImpl(const FeatureMatrix& features,
                              std::span<const size_t> rows, double* out) const;
};

// Learners for which a margin (distance-to-decision-boundary proxy) exists.
class MarginLearner : public Learner {
 public:
  // |Margin| near 0 means the learner is ambiguous about x.
  virtual double Margin(const float* x) const = 0;

  // Batched signed margins over a row range, fanned out under "ml.batch"
  // like PredictBatch; bitwise-identical to per-row Margin. Does not count
  // predict calls (the scalar margin path never did).
  void MarginBatch(const FeatureMatrix& features, std::span<const size_t> rows,
                   double* out) const;

  // Indices of the top-k most discriminative feature dimensions, used as
  // selection-time blocking dimensions (Section 5.1 of the paper): when all
  // of them are zero for an example, the margin reduces to a constant and
  // the example is unambiguous. The default (empty) marks blocking as
  // unsupported for the learner.
  virtual std::vector<size_t> BlockingDimensions(size_t k) const {
    (void)k;
    return {};
  }

 protected:
  // Serial margin kernel for one chunk; default loops the scalar Margin.
  virtual void MarginChunkImpl(const FeatureMatrix& features,
                               std::span<const size_t> rows,
                               double* out) const;
};

// Linear SVM learner.
class SvmLearner final : public MarginLearner {
 public:
  SvmLearner() = default;
  explicit SvmLearner(const LinearSvmConfig& config) : model_(config) {}

  bool trained() const override { return model_.trained(); }
  std::unique_ptr<Learner> CloneUntrained() const override;
  void set_seed(uint64_t seed) override;
  std::string_view name() const override { return "LinearSVM"; }
  std::string SaveModel() const override;
  bool RestoreModel(const std::string& blob) override;
  double Margin(const float* x) const override;
  std::vector<size_t> BlockingDimensions(size_t k) const override;

  const LinearSvm& model() const { return model_; }

 protected:
  void FitImpl(const FeatureMatrix& features,
               const std::vector<int>& labels) override;
  bool FitWarmImpl(const FeatureMatrix& features,
                   const std::vector<int>& labels) override;
  int PredictImpl(const float* x) const override;
  // Blocked w·Xᵀ sweeps over the chunk (LinearSvm batch kernels).
  void PredictChunkImpl(const FeatureMatrix& features,
                        std::span<const size_t> rows, int* out) const override;
  void MarginChunkImpl(const FeatureMatrix& features,
                       std::span<const size_t> rows,
                       double* out) const override;

 private:
  LinearSvm model_;
};

// Single-hidden-layer feed-forward network learner.
class NeuralNetLearner final : public MarginLearner {
 public:
  NeuralNetLearner() = default;
  explicit NeuralNetLearner(const NeuralNetConfig& config) : model_(config) {}

  bool trained() const override { return model_.trained(); }
  std::unique_ptr<Learner> CloneUntrained() const override;
  void set_seed(uint64_t seed) override;
  std::string_view name() const override { return "NeuralNet"; }
  std::string SaveModel() const override;
  bool RestoreModel(const std::string& blob) override;
  double Margin(const float* x) const override;
  // Blocking for non-linear classifiers (paper Section 5.2 suggestion):
  // input dimensions ranked by back-propagated absolute weight products.
  std::vector<size_t> BlockingDimensions(size_t k) const override;

  const NeuralNetwork& model() const { return model_; }

 protected:
  void FitImpl(const FeatureMatrix& features,
               const std::vector<int>& labels) override;
  bool FitWarmImpl(const FeatureMatrix& features,
                   const std::vector<int>& labels) override;
  int PredictImpl(const float* x) const override;
  // Chunked fused forward passes (NeuralNetwork batch kernels).
  void PredictChunkImpl(const FeatureMatrix& features,
                        std::span<const size_t> rows, int* out) const override;
  void ProbaChunkImpl(const FeatureMatrix& features,
                      std::span<const size_t> rows,
                      double* out) const override;
  void MarginChunkImpl(const FeatureMatrix& features,
                       std::span<const size_t> rows,
                       double* out) const override;

 private:
  NeuralNetwork model_;
};

// Random-forest learner. The trees double as a learner-aware QBC committee.
class ForestLearner final : public Learner {
 public:
  ForestLearner() = default;
  explicit ForestLearner(const RandomForestConfig& config) : model_(config) {}

  bool trained() const override { return model_.trained(); }
  std::unique_ptr<Learner> CloneUntrained() const override;
  void set_seed(uint64_t seed) override;
  std::string_view name() const override { return "RandomForest"; }
  std::string SaveModel() const override;
  bool RestoreModel(const std::string& blob) override;

  // Fraction of trees voting positive on x (committee agreement).
  double PositiveFraction(const float* x) const;

  const RandomForest& model() const { return model_; }

 protected:
  void FitImpl(const FeatureMatrix& features,
               const std::vector<int>& labels) override;
  // Refits only the trees whose Poisson-bootstrap sample gained labels;
  // increments ml.trees_refit by the number actually re-fit.
  bool FitWarmImpl(const FeatureMatrix& features,
                   const std::vector<int>& labels) override;
  int PredictImpl(const float* x) const override;
  // Flattened-forest traversal with per-row register vote accumulation.
  // ProbaChunkImpl yields the positive tree fraction per row (the QBC vote
  // signal).
  void PredictChunkImpl(const FeatureMatrix& features,
                        std::span<const size_t> rows, int* out) const override;
  void ProbaChunkImpl(const FeatureMatrix& features,
                      std::span<const size_t> rows,
                      double* out) const override;

 private:
  RandomForest model_;
};

// Monotone-DNF rule learner. Consumes *Boolean* feature matrices (built by
// BooleanFeaturizer); the featurizer reference is kept for pretty-printing.
class RuleLearner final : public Learner {
 public:
  RuleLearner() = default;
  explicit RuleLearner(const DnfRuleLearnerConfig& config) : model_(config) {}

  bool trained() const override { return model_.trained(); }
  std::unique_ptr<Learner> CloneUntrained() const override;
  void set_seed(uint64_t seed) override;
  std::string_view name() const override { return "Rules"; }
  std::string SaveModel() const override;
  bool RestoreModel(const std::string& blob) override;

  const Dnf& dnf() const { return model_.dnf(); }
  const DnfRuleLearner& model() const { return model_; }

 protected:
  void FitImpl(const FeatureMatrix& boolean_features,
               const std::vector<int>& labels) override;
  int PredictImpl(const float* boolean_row) const override;

 private:
  DnfRuleLearner model_;
};

}  // namespace alem

#endif  // ALEM_CORE_LEARNER_H_
