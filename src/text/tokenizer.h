// Tokenization primitives used by the feature extractor and by offline
// blocking. Mirrors the preprocessing of the paper's Java Simmetrics setup:
// lower-case, split on non-alphanumeric characters, and (for the q-gram
// family) pad with sentinel characters.

#ifndef ALEM_TEXT_TOKENIZER_H_
#define ALEM_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace alem {

// Lower-cases and splits `text` on runs of non-alphanumeric ASCII characters.
// Empty tokens are dropped.
std::vector<std::string> TokenizeWords(std::string_view text);

// Extracts padded character q-grams from the lower-cased input. The string is
// padded with (q-1) '#' characters on both sides, so "ab" with q=2 yields
// {"#a", "ab", "b#"}. An empty input yields no q-grams.
std::vector<std::string> QGrams(std::string_view text, int q);

}  // namespace alem

#endif  // ALEM_TEXT_TOKENIZER_H_
