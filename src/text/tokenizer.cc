#include "text/tokenizer.h"

#include <cctype>

#include "util/check.h"

namespace alem {

std::vector<std::string> TokenizeWords(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char raw : text) {
    const unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c) != 0) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<std::string> QGrams(std::string_view text, int q) {
  ALEM_CHECK_GE(q, 1);
  std::vector<std::string> grams;
  if (text.empty()) return grams;

  std::string padded;
  padded.reserve(text.size() + static_cast<size_t>(2 * (q - 1)));
  padded.append(static_cast<size_t>(q - 1), '#');
  for (const char raw : text) {
    padded.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(raw))));
  }
  padded.append(static_cast<size_t>(q - 1), '#');

  if (padded.size() < static_cast<size_t>(q)) return grams;
  grams.reserve(padded.size() - static_cast<size_t>(q) + 1);
  for (size_t i = 0; i + static_cast<size_t>(q) <= padded.size(); ++i) {
    grams.emplace_back(padded.substr(i, static_cast<size_t>(q)));
  }
  return grams;
}

}  // namespace alem
