// AttributeProfile: a cached, pre-tokenized view of one attribute value.
//
// The feature extractor applies 21 similarity functions to every attribute
// pair of every candidate record pair. Re-tokenizing the same attribute value
// for each of those calls would dominate runtime, so each record attribute is
// profiled exactly once (lower-cased string, word tokens, token multiset,
// 2-gram multiset) and the similarity functions consume profiles.

#ifndef ALEM_TEXT_PROFILE_H_
#define ALEM_TEXT_PROFILE_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace alem {

// Sparse multiset of strings with cached aggregate statistics.
class CountedMultiset {
 public:
  CountedMultiset() = default;
  explicit CountedMultiset(const std::vector<std::string>& items);

  const std::unordered_map<std::string, int>& counts() const {
    return counts_;
  }
  // Total number of items, with multiplicity.
  int total() const { return total_; }
  // Number of distinct items.
  size_t distinct() const { return counts_.size(); }
  // Euclidean norm of the count vector.
  double norm() const { return norm_; }

  int CountOf(const std::string& item) const;

  // Size of the multiset intersection (sum of min counts).
  static int MultisetIntersection(const CountedMultiset& a,
                                  const CountedMultiset& b);
  // Number of distinct items present in both.
  static int SetIntersection(const CountedMultiset& a,
                             const CountedMultiset& b);
  // Dot product of the two count vectors.
  static double Dot(const CountedMultiset& a, const CountedMultiset& b);
  // L1 distance between the count vectors.
  static int L1Distance(const CountedMultiset& a, const CountedMultiset& b);
  // Squared L2 distance between the count vectors.
  static double SquaredL2Distance(const CountedMultiset& a,
                                  const CountedMultiset& b);

 private:
  std::unordered_map<std::string, int> counts_;
  int total_ = 0;
  double norm_ = 0.0;
};

// Pre-tokenized view of one attribute value.
struct AttributeProfile {
  // True when the source value was empty/missing; every similarity function
  // evaluates to 0 against a null profile (Section 3 of the paper).
  bool is_null = true;

  // Lower-cased raw text.
  std::string text;

  // Word tokens, in order (for Monge-Elkan).
  std::vector<std::string> tokens;

  // Token multiset (for Jaccard/Dice/cosine/overlap/block/Euclidean).
  CountedMultiset token_counts;

  // Padded character 2-gram multiset (for the q-gram family).
  CountedMultiset bigram_counts;

  // Builds a profile; `raw` is stripped and lower-cased first.
  static AttributeProfile Build(std::string_view raw);
};

}  // namespace alem

#endif  // ALEM_TEXT_PROFILE_H_
