#include "text/profile.h"

#include <algorithm>
#include <cmath>

#include "text/tokenizer.h"
#include "util/string_util.h"

namespace alem {

CountedMultiset::CountedMultiset(const std::vector<std::string>& items) {
  for (const std::string& item : items) {
    ++counts_[item];
    ++total_;
  }
  double sum_squares = 0.0;
  for (const auto& [item, count] : counts_) {
    sum_squares += static_cast<double>(count) * count;
  }
  norm_ = std::sqrt(sum_squares);
}

int CountedMultiset::CountOf(const std::string& item) const {
  const auto it = counts_.find(item);
  return it == counts_.end() ? 0 : it->second;
}

int CountedMultiset::MultisetIntersection(const CountedMultiset& a,
                                          const CountedMultiset& b) {
  const CountedMultiset& small = a.counts_.size() <= b.counts_.size() ? a : b;
  const CountedMultiset& large = a.counts_.size() <= b.counts_.size() ? b : a;
  int intersection = 0;
  for (const auto& [item, count] : small.counts_) {
    intersection += std::min(count, large.CountOf(item));
  }
  return intersection;
}

int CountedMultiset::SetIntersection(const CountedMultiset& a,
                                     const CountedMultiset& b) {
  const CountedMultiset& small = a.counts_.size() <= b.counts_.size() ? a : b;
  const CountedMultiset& large = a.counts_.size() <= b.counts_.size() ? b : a;
  int intersection = 0;
  for (const auto& [item, count] : small.counts_) {
    (void)count;
    if (large.CountOf(item) > 0) ++intersection;
  }
  return intersection;
}

double CountedMultiset::Dot(const CountedMultiset& a,
                            const CountedMultiset& b) {
  const CountedMultiset& small = a.counts_.size() <= b.counts_.size() ? a : b;
  const CountedMultiset& large = a.counts_.size() <= b.counts_.size() ? b : a;
  double dot = 0.0;
  for (const auto& [item, count] : small.counts_) {
    dot += static_cast<double>(count) * large.CountOf(item);
  }
  return dot;
}

int CountedMultiset::L1Distance(const CountedMultiset& a,
                                const CountedMultiset& b) {
  int distance = 0;
  for (const auto& [item, count] : a.counts_) {
    distance += std::abs(count - b.CountOf(item));
  }
  for (const auto& [item, count] : b.counts_) {
    if (a.CountOf(item) == 0) distance += count;
  }
  return distance;
}

double CountedMultiset::SquaredL2Distance(const CountedMultiset& a,
                                          const CountedMultiset& b) {
  double distance = 0.0;
  for (const auto& [item, count] : a.counts_) {
    const double diff = count - b.CountOf(item);
    distance += diff * diff;
  }
  for (const auto& [item, count] : b.counts_) {
    if (a.CountOf(item) == 0) {
      distance += static_cast<double>(count) * count;
    }
  }
  return distance;
}

AttributeProfile AttributeProfile::Build(std::string_view raw) {
  AttributeProfile profile;
  const std::string_view stripped = StripAsciiWhitespace(raw);
  if (stripped.empty()) {
    return profile;  // is_null stays true.
  }
  profile.is_null = false;
  profile.text = ToLowerAscii(stripped);
  profile.tokens = TokenizeWords(profile.text);
  profile.token_counts = CountedMultiset(profile.tokens);
  profile.bigram_counts = CountedMultiset(QGrams(profile.text, 2));
  return profile;
}

}  // namespace alem
