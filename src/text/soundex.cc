#include "text/soundex.h"

#include <cctype>

namespace alem {
namespace {

// Digit classes of the American Soundex algorithm; '0' marks vowels and the
// ignored letters h/w/y.
char SoundexDigit(char c) {
  switch (c) {
    case 'b':
    case 'f':
    case 'p':
    case 'v':
      return '1';
    case 'c':
    case 'g':
    case 'j':
    case 'k':
    case 'q':
    case 's':
    case 'x':
    case 'z':
      return '2';
    case 'd':
    case 't':
      return '3';
    case 'l':
      return '4';
    case 'm':
    case 'n':
      return '5';
    case 'r':
      return '6';
    default:
      return '0';
  }
}

}  // namespace

std::string SoundexCode(std::string_view s) {
  // Find the first alphabetic character.
  size_t start = 0;
  while (start < s.size() &&
         std::isalpha(static_cast<unsigned char>(s[start])) == 0) {
    ++start;
  }
  if (start == s.size()) return "";

  const char first = static_cast<char>(
      std::toupper(static_cast<unsigned char>(s[start])));
  std::string code(1, first);
  char previous_digit = SoundexDigit(static_cast<char>(
      std::tolower(static_cast<unsigned char>(s[start]))));

  for (size_t i = start + 1; i < s.size() && code.size() < 4; ++i) {
    const unsigned char uc = static_cast<unsigned char>(s[i]);
    if (std::isalpha(uc) == 0) break;  // Encode the first word only.
    const char lower = static_cast<char>(std::tolower(uc));
    const char digit = SoundexDigit(lower);
    // h and w do not reset the previous digit; vowels do.
    if (digit != '0') {
      if (digit != previous_digit) code.push_back(digit);
      previous_digit = digit;
    } else if (lower != 'h' && lower != 'w') {
      previous_digit = '0';
    }
  }
  code.append(4 - code.size(), '0');
  return code;
}

}  // namespace alem
