// American Soundex phonetic encoding. Included to round out the Simmetrics
// function inventory; useful for name-heavy schemas (e.g., the social-media
// profile dataset in Section 6.3.1).

#ifndef ALEM_TEXT_SOUNDEX_H_
#define ALEM_TEXT_SOUNDEX_H_

#include <string>
#include <string_view>

namespace alem {

// Returns the 4-character Soundex code of the first alphabetic word in `s`
// (e.g., "Robert" -> "R163"). Returns an empty string when `s` contains no
// alphabetic characters.
std::string SoundexCode(std::string_view s);

}  // namespace alem

#endif  // ALEM_TEXT_SOUNDEX_H_
