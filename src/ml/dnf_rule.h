// Monotone-DNF rule model and learner (Qian et al., CIKM 2017 style).
//
// Rules are disjunctions of conjunctions over Boolean atoms of the form
// sim(attr) >= tau (see BooleanFeaturizer). The learner greedily grows one
// high-precision conjunction at a time (set-cover over the positive
// examples), accepting a conjunction into the DNF only when its precision on
// the remaining training data clears a threshold — the "ensemble of high
// precision rules" that Sections 4.3 and 5.2 of the paper build on.
//
// The model also exposes its Rule-Minus relaxations (each conjunction with
// one atom dropped), which the LFP/LFN example selector executes to find
// likely false negatives.

#ifndef ALEM_ML_DNF_RULE_H_
#define ALEM_ML_DNF_RULE_H_

#include <string>
#include <utility>
#include <vector>

#include "features/boolean_features.h"
#include "features/feature_matrix.h"

namespace alem {

// A conjunction of Boolean atoms, stored as indices into a
// BooleanFeaturizer's atom list.
struct Conjunction {
  std::vector<size_t> atoms;

  // True when every atom evaluates to 1 on `boolean_row`.
  bool Matches(const float* boolean_row) const;
};

// A disjunction of conjunctions.
struct Dnf {
  std::vector<Conjunction> conjunctions;

  bool Matches(const float* boolean_row) const;

  // #atoms counted with repetition (the interpretability metric).
  size_t NumAtoms() const;

  // All one-atom-dropped relaxations of the conjunctions (Rule-Minus rules).
  // Single-atom conjunctions have no relaxation.
  std::vector<Conjunction> RuleMinusVariants() const;

  // Removes redundant conjunctions: duplicates, and any conjunction whose
  // atom set is a superset of another's (monotone DNF: the narrower rule is
  // implied by the broader one). Keeps semantics identical while reducing
  // the interpretability atom count. Returns #conjunctions removed.
  size_t Simplify();

  // Pretty-prints with atom descriptions from `featurizer`.
  std::string ToString(const BooleanFeaturizer& featurizer) const;
};

struct DnfRuleLearnerConfig {
  // Minimum training precision for a conjunction to enter the DNF.
  double min_precision = 0.85;
  // Safety caps; generously above what EM rule ensembles need in practice.
  size_t max_conjunctions = 64;
  size_t max_atoms_per_conjunction = 8;
};

class DnfRuleLearner {
 public:
  DnfRuleLearner() = default;
  explicit DnfRuleLearner(const DnfRuleLearnerConfig& config)
      : config_(config) {}

  // Trains on a 0/1 Boolean feature matrix. An empty DNF (predicting all
  // non-match) is a valid outcome when no high-precision rule exists.
  void Fit(const FeatureMatrix& boolean_features,
           const std::vector<int>& labels);

  int Predict(const float* boolean_row) const;
  std::vector<int> PredictAll(const FeatureMatrix& boolean_features) const;

  bool trained() const { return trained_; }
  const Dnf& dnf() const { return dnf_; }
  const DnfRuleLearnerConfig& config() const { return config_; }

  // Installs a deserialized DNF as the trained model (keeping the config);
  // the ml/serialization SerializeDnf round trip and session restore use
  // this because Fit is the only other way to produce a trained learner.
  void RestoreTrained(Dnf dnf) {
    dnf_ = std::move(dnf);
    trained_ = true;
  }

 private:
  DnfRuleLearnerConfig config_;
  Dnf dnf_;
  bool trained_ = false;
};

}  // namespace alem

#endif  // ALEM_ML_DNF_RULE_H_
