#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace alem {
namespace {

double GiniImpurity(size_t positives, size_t total) {
  if (total == 0) return 0.0;
  const double p = static_cast<double>(positives) / static_cast<double>(total);
  return 2.0 * p * (1.0 - p);
}

}  // namespace

void DecisionTree::Fit(const FeatureMatrix& features,
                       const std::vector<int>& labels) {
  ALEM_CHECK_EQ(features.rows(), labels.size());
  ALEM_CHECK_GT(features.rows(), 0u);
  nodes_.clear();
  depth_ = 0;

  std::vector<size_t> indices(features.rows());
  std::iota(indices.begin(), indices.end(), 0u);
  Rng rng(config_.seed);
  root_ = BuildNode(features, labels, indices, 0, indices.size(), 1, rng);
}

int DecisionTree::BuildNode(const FeatureMatrix& features,
                            const std::vector<int>& labels,
                            std::vector<size_t>& indices, size_t begin,
                            size_t end, int depth, Rng& rng) {
  const size_t count = end - begin;
  ALEM_CHECK_GT(count, 0u);
  depth_ = std::max(depth_, depth);

  size_t positives = 0;
  for (size_t i = begin; i < end; ++i) positives += labels[indices[i]];
  const int majority = positives * 2 >= count ? 1 : 0;

  auto make_leaf = [&]() {
    Node leaf;
    leaf.is_leaf = true;
    leaf.label = majority;
    nodes_.push_back(leaf);
    return static_cast<int>(nodes_.size() - 1);
  };

  const bool pure = positives == 0 || positives == count;
  const bool too_small =
      count < static_cast<size_t>(std::max(2, config_.min_samples_split));
  const bool too_deep = config_.max_depth > 0 && depth >= config_.max_depth;
  if (pure || too_small || too_deep) return make_leaf();

  const size_t dims = features.dims();
  size_t num_candidates;
  if (config_.max_features < 0) {
    num_candidates = dims;
  } else if (config_.max_features == 0) {
    num_candidates = static_cast<size_t>(
        std::floor(std::log2(static_cast<double>(dims))) + 1);
  } else {
    num_candidates = static_cast<size_t>(config_.max_features);
  }
  num_candidates = std::min(num_candidates, dims);

  const std::vector<size_t> candidates =
      rng.SampleWithoutReplacement(dims, num_candidates);

  // Find the (feature, threshold) split with minimum weighted Gini impurity.
  const double parent_impurity = GiniImpurity(positives, count);
  double best_gain = 1e-12;
  size_t best_dim = 0;
  float best_threshold = 0.0f;

  std::vector<std::pair<float, int>> values;
  values.reserve(count);
  for (const size_t dim : candidates) {
    values.clear();
    for (size_t i = begin; i < end; ++i) {
      values.emplace_back(features.At(indices[i], dim), labels[indices[i]]);
    }
    std::sort(values.begin(), values.end());
    if (values.front().first == values.back().first) continue;

    size_t left_count = 0;
    size_t left_positives = 0;
    for (size_t i = 0; i + 1 < values.size(); ++i) {
      ++left_count;
      left_positives += static_cast<size_t>(values[i].second);
      if (values[i].first == values[i + 1].first) continue;
      const size_t right_count = count - left_count;
      const size_t right_positives = positives - left_positives;
      const double weighted =
          (GiniImpurity(left_positives, left_count) * left_count +
           GiniImpurity(right_positives, right_count) * right_count) /
          static_cast<double>(count);
      const double gain = parent_impurity - weighted;
      if (gain > best_gain) {
        best_gain = gain;
        best_dim = dim;
        // Midpoint between the two distinct values.
        best_threshold = 0.5f * (values[i].first + values[i + 1].first);
      }
    }
  }
  if (best_gain <= 1e-12) return make_leaf();

  // Partition indices[begin, end) by the chosen split.
  const auto middle = std::partition(
      indices.begin() + static_cast<long>(begin),
      indices.begin() + static_cast<long>(end), [&](size_t row) {
        return features.At(row, best_dim) < best_threshold;
      });
  const size_t split =
      static_cast<size_t>(middle - indices.begin());
  if (split == begin || split == end) return make_leaf();

  const int left_child =
      BuildNode(features, labels, indices, begin, split, depth + 1, rng);
  const int right_child =
      BuildNode(features, labels, indices, split, end, depth + 1, rng);

  Node node;
  node.is_leaf = false;
  node.label = majority;
  node.dim = best_dim;
  node.threshold = best_threshold;
  node.left = left_child;
  node.right = right_child;
  nodes_.push_back(node);
  return static_cast<int>(nodes_.size() - 1);
}

int DecisionTree::Predict(const float* x) const {
  ALEM_CHECK(trained());
  int node = root_;
  while (!nodes_[static_cast<size_t>(node)].is_leaf) {
    const Node& current = nodes_[static_cast<size_t>(node)];
    node = x[current.dim] < current.threshold ? current.left : current.right;
  }
  return nodes_[static_cast<size_t>(node)].label;
}

std::vector<int> DecisionTree::PredictAll(const FeatureMatrix& features) const {
  std::vector<int> predictions(features.rows());
  for (size_t i = 0; i < features.rows(); ++i) {
    predictions[i] = Predict(features.Row(i));
  }
  return predictions;
}

int32_t DecisionTree::FlattenInto(std::vector<FlatNode>* out) const {
  ALEM_CHECK(trained());
  // Preorder with an explicit stack; both children of a split are allocated
  // together so sibling nodes share cache lines.
  struct Pending {
    int node;      // Index into nodes_.
    int32_t slot;  // Flat index reserved for it in *out.
  };
  const int32_t flat_root = static_cast<int32_t>(out->size());
  out->emplace_back();
  std::vector<Pending> stack{{root_, flat_root}};
  while (!stack.empty()) {
    const Pending current = stack.back();
    stack.pop_back();
    const Node& node = nodes_[static_cast<size_t>(current.node)];
    FlatNode& flat = (*out)[static_cast<size_t>(current.slot)];
    if (node.is_leaf) {
      flat.left = kFlatLeaf;
      flat.right = node.label;
      continue;
    }
    const int32_t left_slot = static_cast<int32_t>(out->size());
    out->emplace_back();
    const int32_t right_slot = static_cast<int32_t>(out->size());
    out->emplace_back();
    // emplace_back may reallocate; re-resolve the slot reference.
    FlatNode& split = (*out)[static_cast<size_t>(current.slot)];
    split.left = left_slot;
    split.right = right_slot;
    split.dim = static_cast<uint32_t>(node.dim);
    split.threshold = node.threshold;
    stack.push_back({node.right, right_slot});
    stack.push_back({node.left, left_slot});
  }
  return flat_root;
}

void DecisionTree::CollectClauses(int node, TreeDnfClause& path,
                                  std::vector<TreeDnfClause>* clauses) const {
  const Node& current = nodes_[static_cast<size_t>(node)];
  if (current.is_leaf) {
    if (current.label == 1) clauses->push_back(path);
    return;
  }
  path.push_back(TreePredicate{current.dim, current.threshold, false});
  CollectClauses(current.left, path, clauses);
  path.back().greater_equal = true;
  CollectClauses(current.right, path, clauses);
  path.pop_back();
}

std::vector<TreeDnfClause> DecisionTree::ToDnfClauses() const {
  std::vector<TreeDnfClause> clauses;
  if (trained()) {
    TreeDnfClause path;
    CollectClauses(root_, path, &clauses);
  }
  return clauses;
}

size_t DecisionTree::NumDnfAtoms() const {
  size_t atoms = 0;
  for (const TreeDnfClause& clause : ToDnfClauses()) {
    atoms += clause.size();
  }
  return atoms;
}

}  // namespace alem
