#include "ml/metrics.h"

#include "util/check.h"

namespace alem {

BinaryMetrics ComputeBinaryMetrics(const std::vector<int>& predictions,
                                   const std::vector<int>& labels) {
  ALEM_CHECK_EQ(predictions.size(), labels.size());
  BinaryMetrics metrics;
  for (size_t i = 0; i < predictions.size(); ++i) {
    const bool predicted = predictions[i] == 1;
    const bool actual = labels[i] == 1;
    if (predicted && actual) {
      ++metrics.true_positives;
    } else if (predicted && !actual) {
      ++metrics.false_positives;
    } else if (!predicted && actual) {
      ++metrics.false_negatives;
    } else {
      ++metrics.true_negatives;
    }
  }
  const size_t predicted_positives =
      metrics.true_positives + metrics.false_positives;
  const size_t actual_positives =
      metrics.true_positives + metrics.false_negatives;
  if (predicted_positives > 0) {
    metrics.precision = static_cast<double>(metrics.true_positives) /
                        static_cast<double>(predicted_positives);
  }
  if (actual_positives > 0) {
    metrics.recall = static_cast<double>(metrics.true_positives) /
                     static_cast<double>(actual_positives);
  }
  if (metrics.precision + metrics.recall > 0.0) {
    metrics.f1 = 2.0 * metrics.precision * metrics.recall /
                 (metrics.precision + metrics.recall);
  }
  return metrics;
}

}  // namespace alem
