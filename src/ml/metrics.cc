#include "ml/metrics.h"

#include "util/check.h"

namespace alem {

BinaryMetrics ComputeBinaryMetrics(const std::vector<int>& predictions,
                                   const std::vector<int>& labels) {
  ALEM_CHECK_EQ(predictions.size(), labels.size());
  size_t tp = 0;
  size_t fp = 0;
  size_t fn = 0;
  size_t tn = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    const bool predicted = predictions[i] == 1;
    const bool actual = labels[i] == 1;
    if (predicted && actual) {
      ++tp;
    } else if (predicted && !actual) {
      ++fp;
    } else if (!predicted && actual) {
      ++fn;
    } else {
      ++tn;
    }
  }
  return MetricsFromCounts(tp, fp, fn, tn);
}

BinaryMetrics MetricsFromCounts(size_t true_positives, size_t false_positives,
                                size_t false_negatives,
                                size_t true_negatives) {
  BinaryMetrics metrics;
  metrics.true_positives = true_positives;
  metrics.false_positives = false_positives;
  metrics.false_negatives = false_negatives;
  metrics.true_negatives = true_negatives;
  const size_t predicted_positives =
      metrics.true_positives + metrics.false_positives;
  const size_t actual_positives =
      metrics.true_positives + metrics.false_negatives;
  if (predicted_positives > 0) {
    metrics.precision = static_cast<double>(metrics.true_positives) /
                        static_cast<double>(predicted_positives);
  }
  if (actual_positives > 0) {
    metrics.recall = static_cast<double>(metrics.true_positives) /
                     static_cast<double>(actual_positives);
  }
  if (metrics.precision + metrics.recall > 0.0) {
    metrics.f1 = 2.0 * metrics.precision * metrics.recall /
                 (metrics.precision + metrics.recall);
  }
  return metrics;
}

}  // namespace alem
