// CART-style binary decision tree with random feature subsampling.
//
// Settings follow Corleone (Gokhale et al.), which the paper adopts for its
// tree-based learner: unlimited depth and a random subset of
// floor(log2(Dim)) + 1 candidate features per split. Splits minimize Gini
// impurity. Trees can be converted to monotone-DNF form (conjunctions of
// threshold predicates over paths that end in a positive leaf), which powers
// the interpretability comparison of Section 6.3.

#ifndef ALEM_ML_DECISION_TREE_H_
#define ALEM_ML_DECISION_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "features/feature_matrix.h"
#include "ml/tree_flat.h"
#include "util/rng.h"

namespace alem {

struct DecisionTreeConfig {
  // 0 means unlimited depth.
  int max_depth = 0;
  // Minimum examples in a node to attempt a split.
  int min_samples_split = 2;
  // 0 means use floor(log2(dims)) + 1 (the Corleone setting); a negative
  // value means consider all features.
  int max_features = 0;
  uint64_t seed = 1;
};

// One predicate along a root-to-leaf path: feature `dim` >= or < `threshold`.
struct TreePredicate {
  size_t dim = 0;
  float threshold = 0.0f;
  bool greater_equal = false;
};

// A conjunction of predicates ending in a positive leaf.
using TreeDnfClause = std::vector<TreePredicate>;

class DecisionTree {
 public:
  DecisionTree() = default;
  explicit DecisionTree(const DecisionTreeConfig& config) : config_(config) {}

  void Fit(const FeatureMatrix& features, const std::vector<int>& labels);

  int Predict(const float* x) const;
  std::vector<int> PredictAll(const FeatureMatrix& features) const;

  // Appends this tree to *out in the compact FlatNode layout (preorder,
  // sibling children adjacent) and returns the flat index of the root.
  // FlatPredict over the appended nodes is bitwise-identical to Predict.
  int32_t FlattenInto(std::vector<FlatNode>* out) const;

  bool trained() const { return !nodes_.empty(); }
  int depth() const { return depth_; }
  size_t num_nodes() const { return nodes_.size(); }

  // All root-to-positive-leaf paths as DNF clauses. The number of atoms in
  // the DNF (counted with repetition) is the interpretability metric of
  // Singh et al. used in Fig. 18.
  std::vector<TreeDnfClause> ToDnfClauses() const;
  size_t NumDnfAtoms() const;

 private:
  friend std::string SerializeTree(const DecisionTree& model);
  friend bool DeserializeTree(const std::string& text, DecisionTree* model);

  struct Node {
    bool is_leaf = true;
    int label = 0;
    size_t dim = 0;
    float threshold = 0.0f;  // Goes right when x[dim] >= threshold.
    int left = -1;
    int right = -1;
  };

  int BuildNode(const FeatureMatrix& features, const std::vector<int>& labels,
                std::vector<size_t>& indices, size_t begin, size_t end,
                int depth, Rng& rng);
  void CollectClauses(int node, TreeDnfClause& path,
                      std::vector<TreeDnfClause>* clauses) const;

  DecisionTreeConfig config_;
  std::vector<Node> nodes_;
  int root_ = -1;
  int depth_ = 0;
};

}  // namespace alem

#endif  // ALEM_ML_DECISION_TREE_H_
