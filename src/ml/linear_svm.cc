#include "ml/linear_svm.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "kernels/backend.h"
#include "obs/profile.h"
#include "util/check.h"
#include "util/rng.h"

namespace alem {

namespace {

// Deterministic seed for a warm refit over n labeled examples: mixes the
// configured seed with n (splitmix-style constant) so each growth step draws
// a fresh sampling stream, while staying a pure function of (seed, n) — the
// restartability contract needs no hidden step counter.
uint64_t WarmSeed(uint64_t seed, size_t n) {
  return seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(n) + 1));
}

}  // namespace

void LinearSvm::Fit(const FeatureMatrix& features,
                    const std::vector<int>& labels) {
  weights_.assign(features.dims(), 0.0);
  bias_ = 0.0;
  RunSgd(features, labels, static_cast<size_t>(config_.epochs),
         static_cast<uint64_t>(config_.t0), config_.seed,
         /*average_tail=*/false);
}

bool LinearSvm::FitWarm(const FeatureMatrix& features,
                        const std::vector<int>& labels) {
  if (!trained() || weights_.size() != features.dims()) return false;
  const size_t n = features.rows();
  // The warm refit runs a short Pegasos pass from the previous weights with
  // the step schedule of a *fresh* warm_epochs-epoch run (eta from
  // 1/(lambda * (t0 + warm_epochs * n))): continuing the cold schedule where
  // it decayed to would leave steps too small to adapt to the new labels.
  // The short run's last iterate is noisy, so the warm path averages the
  // tail-half iterates (averaged Pegasos) — the cold path stays last-iterate
  // to preserve the golden baselines bitwise. Everything here is a pure
  // function of (weights, data, config), which keeps warm fits restartable.
  const uint64_t t_offset = static_cast<uint64_t>(config_.t0) +
                            static_cast<uint64_t>(config_.warm_epochs) * n;
  RunSgd(features, labels, static_cast<size_t>(config_.warm_epochs), t_offset,
         WarmSeed(config_.seed, n), /*average_tail=*/true);
  return true;
}

void LinearSvm::RunSgd(const FeatureMatrix& features,
                       const std::vector<int>& labels, size_t epochs,
                       uint64_t t_offset, uint64_t rng_seed,
                       bool average_tail) {
  ALEM_CHECK_EQ(features.rows(), labels.size());
  ALEM_CHECK_GT(features.rows(), 0u);
  const size_t n = features.rows();
  const size_t d = features.dims();

  std::vector<size_t> positives;
  std::vector<size_t> negatives;
  for (size_t i = 0; i < n; ++i) {
    (labels[i] == 1 ? positives : negatives).push_back(i);
  }
  const bool balance =
      config_.balance_classes && !positives.empty() && !negatives.empty();

  Rng rng(rng_seed);
  const double lambda = config_.lambda;
  // Pegasos norm bound: the optimum satisfies ||w|| <= 1/sqrt(lambda).
  const double norm_bound = 1.0 / std::sqrt(lambda);
  const size_t steps = epochs * n;
  // Tail averaging (warm path only): accumulate the iterates of the second
  // half of the run and return their mean instead of the last iterate.
  const size_t average_from = average_tail ? steps / 2 + 1 : steps + 1;
  std::vector<double> weight_sum;
  double bias_sum = 0.0;
  size_t averaged = 0;
  if (average_tail) weight_sum.assign(d, 0.0);
  for (size_t t = 1; t <= steps; ++t) {
    size_t index;
    if (balance) {
      const std::vector<size_t>& pool =
          rng.NextBernoulli(0.5) ? positives : negatives;
      index = pool[rng.NextBelow(pool.size())];
    } else {
      index = static_cast<size_t>(rng.NextBelow(n));
    }
    const float* x = features.Row(index);
    const double y = labels[index] == 1 ? 1.0 : -1.0;
    const double eta = 1.0 / (lambda * static_cast<double>(t + t_offset));

    double dot = bias_;
    for (size_t j = 0; j < d; ++j) dot += weights_[j] * x[j];

    const double scale = 1.0 - eta * lambda;
    for (size_t j = 0; j < d; ++j) weights_[j] *= scale;
    if (y * dot < 1.0) {
      for (size_t j = 0; j < d; ++j) weights_[j] += eta * y * x[j];
      bias_ += eta * y;  // Bias is unregularized.
    }
    // Projection onto the ball of radius 1/sqrt(lambda).
    double norm_squared = 0.0;
    for (size_t j = 0; j < d; ++j) norm_squared += weights_[j] * weights_[j];
    if (norm_squared > norm_bound * norm_bound) {
      const double shrink = norm_bound / std::sqrt(norm_squared);
      for (size_t j = 0; j < d; ++j) weights_[j] *= shrink;
    }
    if (t >= average_from) {
      for (size_t j = 0; j < d; ++j) weight_sum[j] += weights_[j];
      bias_sum += bias_;
      ++averaged;
    }
  }
  if (averaged > 0) {
    const double inv = 1.0 / static_cast<double>(averaged);
    for (size_t j = 0; j < d; ++j) weights_[j] = weight_sum[j] * inv;
    bias_ = bias_sum * inv;
  }
}

double LinearSvm::Margin(const float* x) const {
  ALEM_CHECK(trained());
  double dot = bias_;
  for (size_t j = 0; j < weights_.size(); ++j) dot += weights_[j] * x[j];
  return dot;
}

void LinearSvm::MarginBatch(const FeatureMatrix& features,
                            std::span<const size_t> rows, double* out) const {
  ALEM_CHECK(trained());
  // Register-blocked GEMV, dispatched to the active kernel backend. Every
  // backend's svm_margin_block accumulates each row from bias_ through
  // weights_[j] * x[j] in ascending j — exactly the scalar Margin order —
  // so the margins are bitwise-identical across backends.
  constexpr size_t kBlock = kernels::kSvmMarginBlock;
  const size_t d = weights_.size();
  const double* w = weights_.data();
  // Roofline accounting: the GEMV's closed form is one multiply-add per
  // (row, weight) — 2·d FLOPs per margin (docs/observability.md).
  static obs::profile::Region& profile_region =
      obs::profile::GetRegion("ml.batch");
  if (profile_region.active.load(std::memory_order_relaxed)) {
    obs::profile::AddWork(profile_region, 0, 0,
                          static_cast<uint64_t>(rows.size()) * 2 * d);
  }
  const kernels::KernelOps& ops = kernels::Active();
  for (size_t base = 0; base < rows.size(); base += kBlock) {
    const size_t b = std::min(kBlock, rows.size() - base);
    const float* x[kBlock];
    for (size_t r = 0; r < b; ++r) x[r] = features.Row(rows[base + r]);
    ops.svm_margin_block(w, d, bias_, x, b, out + base);
  }
}

int LinearSvm::Predict(const float* x) const { return Margin(x) > 0.0 ? 1 : 0; }

void LinearSvm::PredictBatch(const FeatureMatrix& features,
                             std::span<const size_t> rows, int* out) const {
  // Small fixed margin buffer so prediction stays allocation-free per block.
  constexpr size_t kBlock = 64;
  double margins[kBlock];
  for (size_t base = 0; base < rows.size(); base += kBlock) {
    const size_t b = std::min(kBlock, rows.size() - base);
    MarginBatch(features, rows.subspan(base, b), margins);
    for (size_t r = 0; r < b; ++r) out[base + r] = margins[r] > 0.0 ? 1 : 0;
  }
}

std::vector<int> LinearSvm::PredictAll(const FeatureMatrix& features) const {
  std::vector<int> predictions(features.rows());
  std::vector<size_t> rows(features.rows());
  std::iota(rows.begin(), rows.end(), 0u);
  PredictBatch(features, rows, predictions.data());
  return predictions;
}

std::vector<size_t> LinearSvm::TopWeightDimensions(size_t k) const {
  ALEM_CHECK(trained());
  std::vector<size_t> order(weights_.size());
  std::iota(order.begin(), order.end(), 0u);
  k = std::min(k, order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(k),
                    order.end(), [this](size_t a, size_t b) {
                      return std::abs(weights_[a]) > std::abs(weights_[b]);
                    });
  order.resize(k);
  return order;
}

}  // namespace alem
