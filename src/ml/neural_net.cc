#include "ml/neural_net.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "kernels/backend.h"
#include "obs/profile.h"
#include "util/check.h"
#include "util/rng.h"

namespace alem {
namespace {

constexpr double kBnEpsilon = 1e-5;
constexpr double kBnMomentum = 0.9;  // Running-statistics smoothing.

double Sigmoid(double x) {
  if (x >= 0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

}  // namespace

NeuralNetConfig DeepMatcherProxyConfig(uint64_t seed) {
  NeuralNetConfig config;
  config.hidden_sizes = {64, 64};
  config.epochs = 60;
  config.seed = seed;
  return config;
}

void NeuralNetwork::InitializeLayers(size_t input_dims) {
  Rng rng(config_.seed);
  layers_.clear();
  int previous = static_cast<int>(input_dims);
  for (const int size : config_.hidden_sizes) {
    ALEM_CHECK_GT(size, 0);
    Layer layer;
    layer.in = previous;
    layer.out = size;
    const double he_scale = std::sqrt(2.0 / static_cast<double>(previous));
    layer.weights.resize(static_cast<size_t>(size) * previous);
    for (double& w : layer.weights) w = rng.NextGaussian() * he_scale;
    layer.bias.assign(static_cast<size_t>(size), 0.0);
    layer.gamma.assign(static_cast<size_t>(size), 1.0);
    layer.beta.assign(static_cast<size_t>(size), 0.0);
    layer.running_mean.assign(static_cast<size_t>(size), 0.0);
    layer.running_var.assign(static_cast<size_t>(size), 1.0);
    layer.v_weights.assign(layer.weights.size(), 0.0);
    layer.v_bias.assign(layer.bias.size(), 0.0);
    layer.v_gamma.assign(layer.gamma.size(), 0.0);
    layer.v_beta.assign(layer.beta.size(), 0.0);
    layers_.push_back(std::move(layer));
    previous = size;
  }
  const double out_scale = std::sqrt(1.0 / static_cast<double>(previous));
  out_weights_.resize(static_cast<size_t>(previous));
  for (double& w : out_weights_) w = rng.NextGaussian() * out_scale;
  out_bias_ = 0.0;
  v_out_weights_.assign(out_weights_.size(), 0.0);
  v_out_bias_ = 0.0;
}

void NeuralNetwork::Fit(const FeatureMatrix& features,
                        const std::vector<int>& labels) {
  InitializeLayers(features.dims());
  Train(features, labels, config_.epochs, config_.learning_rate,
        config_.seed ^ 0x5bd1e995u);
}

bool NeuralNetwork::FitWarm(const FeatureMatrix& features,
                            const std::vector<int>& labels) {
  if (!trained() ||
      static_cast<size_t>(layers_.front().in) != features.dims()) {
    return false;
  }
  // Zero the momentum velocities: the refit then depends only on the weights
  // and batch-norm statistics — exactly what SaveModel/RestoreModel carry.
  for (Layer& layer : layers_) {
    std::fill(layer.v_weights.begin(), layer.v_weights.end(), 0.0);
    std::fill(layer.v_bias.begin(), layer.v_bias.end(), 0.0);
    std::fill(layer.v_gamma.begin(), layer.v_gamma.end(), 0.0);
    std::fill(layer.v_beta.begin(), layer.v_beta.end(), 0.0);
  }
  std::fill(v_out_weights_.begin(), v_out_weights_.end(), 0.0);
  v_out_bias_ = 0.0;
  // Resume at the step size a full cold schedule would have reached, and
  // draw a fresh shuffle/dropout stream per labeled-set size (pure function
  // of (seed, n); same mixing as LinearSvm::FitWarm).
  const double warm_rate =
      config_.learning_rate *
      std::pow(config_.learning_rate_decay, config_.epochs);
  const uint64_t warm_seed =
      (config_.seed ^ 0x5bd1e995u) ^
      (0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(features.rows()) + 1));
  Train(features, labels, config_.warm_epochs, warm_rate, warm_seed);
  return true;
}

void NeuralNetwork::Train(const FeatureMatrix& features,
                          const std::vector<int>& labels, int epochs,
                          double initial_learning_rate, uint64_t rng_seed) {
  ALEM_CHECK_EQ(features.rows(), labels.size());
  ALEM_CHECK_GT(features.rows(), 0u);
  const size_t n = features.rows();

  // Class-skew compensation: positive examples get a larger gradient weight.
  size_t num_positives = 0;
  for (const int label : labels) num_positives += label == 1 ? 1 : 0;
  double positive_weight = 1.0;
  if (num_positives > 0 && num_positives < n) {
    positive_weight =
        std::min(static_cast<double>(n - num_positives) /
                     static_cast<double>(num_positives),
                 config_.positive_weight_cap);
  }

  Rng rng(rng_seed);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);

  const size_t batch_size =
      std::max<size_t>(1, static_cast<size_t>(config_.batch_size));
  const size_t num_layers = layers_.size();

  // Per-layer forward/backward scratch, sized for one mini-batch.
  struct LayerScratch {
    std::vector<double> pre;     // Affine output z.
    std::vector<double> relu;    // ReLU(z) = r.
    std::vector<double> rhat;    // Normalized r.
    std::vector<double> post;    // Layer output (after BN + dropout).
    std::vector<double> mean, var;
    std::vector<char> drop_mask;
    std::vector<double> d_post;  // Gradient wrt layer output.
    std::vector<double> d_pre;   // Gradient wrt z.
  };
  std::vector<LayerScratch> scratch(num_layers);

  double learning_rate = initial_learning_rate;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < n; start += batch_size) {
      const size_t b = std::min(batch_size, n - start);

      // ---- Forward pass ----
      // a0: the mini-batch inputs, row-major [b x input_dims].
      const double inv_keep = 1.0 / std::max(1e-9, 1.0 - config_.dropout);
      std::vector<const float*> batch_rows(b);
      std::vector<double> batch_weight(b);
      std::vector<double> batch_label(b);
      for (size_t i = 0; i < b; ++i) {
        const size_t row = order[start + i];
        batch_rows[i] = features.Row(row);
        batch_label[i] = labels[row] == 1 ? 1.0 : 0.0;
        batch_weight[i] = labels[row] == 1 ? positive_weight : 1.0;
      }

      const std::vector<double>* previous_activation = nullptr;
      std::vector<double> input_activation;  // Materialized a0 when needed.
      for (size_t l = 0; l < num_layers; ++l) {
        Layer& layer = layers_[l];
        LayerScratch& s = scratch[l];
        const size_t out = static_cast<size_t>(layer.out);
        const size_t in = static_cast<size_t>(layer.in);
        s.pre.assign(b * out, 0.0);
        // Affine.
        for (size_t i = 0; i < b; ++i) {
          for (size_t o = 0; o < out; ++o) {
            const double* w = layer.weights.data() + o * in;
            double z = layer.bias[o];
            if (l == 0) {
              const float* x = batch_rows[i];
              for (size_t j = 0; j < in; ++j) z += w[j] * x[j];
            } else {
              const double* x = previous_activation->data() + i * in;
              for (size_t j = 0; j < in; ++j) z += w[j] * x[j];
            }
            s.pre[i * out + o] = z;
          }
        }
        // ReLU.
        s.relu = s.pre;
        for (double& v : s.relu) v = std::max(0.0, v);
        // Batch norm (training statistics).
        s.mean.assign(out, 0.0);
        s.var.assign(out, 0.0);
        s.rhat.assign(b * out, 0.0);
        s.post.assign(b * out, 0.0);
        if (config_.use_batch_norm && b > 1) {
          for (size_t o = 0; o < out; ++o) {
            double mean = 0.0;
            for (size_t i = 0; i < b; ++i) mean += s.relu[i * out + o];
            mean /= static_cast<double>(b);
            double var = 0.0;
            for (size_t i = 0; i < b; ++i) {
              const double d = s.relu[i * out + o] - mean;
              var += d * d;
            }
            var /= static_cast<double>(b);
            s.mean[o] = mean;
            s.var[o] = var;
            layer.running_mean[o] = kBnMomentum * layer.running_mean[o] +
                                    (1.0 - kBnMomentum) * mean;
            layer.running_var[o] = kBnMomentum * layer.running_var[o] +
                                   (1.0 - kBnMomentum) * var;
            const double inv_std = 1.0 / std::sqrt(var + kBnEpsilon);
            for (size_t i = 0; i < b; ++i) {
              const double rhat = (s.relu[i * out + o] - mean) * inv_std;
              s.rhat[i * out + o] = rhat;
              s.post[i * out + o] = layer.gamma[o] * rhat + layer.beta[o];
            }
          }
        } else {
          s.rhat = s.relu;
          s.post = s.relu;
        }
        // Dropout (inverted scaling).
        s.drop_mask.assign(b * out, 1);
        if (config_.dropout > 0.0) {
          for (size_t idx = 0; idx < b * out; ++idx) {
            if (rng.NextBernoulli(config_.dropout)) {
              s.drop_mask[idx] = 0;
              s.post[idx] = 0.0;
            } else {
              s.post[idx] *= inv_keep;
            }
          }
        }
        previous_activation = &s.post;
        (void)input_activation;
      }

      // Output layer.
      const size_t last = static_cast<size_t>(layers_.back().out);
      const std::vector<double>& final_activation = scratch.back().post;
      std::vector<double> margin(b, 0.0);
      std::vector<double> d_margin(b, 0.0);
      for (size_t i = 0; i < b; ++i) {
        double z = out_bias_;
        const double* a = final_activation.data() + i * last;
        for (size_t j = 0; j < last; ++j) z += out_weights_[j] * a[j];
        margin[i] = z;
        const double p = Sigmoid(z);
        // d/dz of weighted L2 loss (p - y)^2 averaged over the batch.
        d_margin[i] = batch_weight[i] * 2.0 * (p - batch_label[i]) * p *
                      (1.0 - p) / static_cast<double>(b);
      }

      // ---- Backward pass ----
      // Output affine.
      std::vector<double> d_out_weights(last, 0.0);
      double d_out_bias = 0.0;
      LayerScratch& top = scratch.back();
      top.d_post.assign(b * last, 0.0);
      for (size_t i = 0; i < b; ++i) {
        const double g = d_margin[i];
        const double* a = final_activation.data() + i * last;
        for (size_t j = 0; j < last; ++j) {
          d_out_weights[j] += g * a[j];
          top.d_post[i * last + j] += g * out_weights_[j];
        }
        d_out_bias += g;
      }

      for (size_t l = num_layers; l-- > 0;) {
        Layer& layer = layers_[l];
        LayerScratch& s = scratch[l];
        const size_t out = static_cast<size_t>(layer.out);
        const size_t in = static_cast<size_t>(layer.in);

        // Dropout backward.
        if (config_.dropout > 0.0) {
          for (size_t idx = 0; idx < b * out; ++idx) {
            s.d_post[idx] =
                s.drop_mask[idx] != 0 ? s.d_post[idx] * inv_keep : 0.0;
          }
        }

        // Batch-norm backward.
        std::vector<double> d_relu(b * out, 0.0);
        std::vector<double> d_gamma(out, 0.0);
        std::vector<double> d_beta(out, 0.0);
        if (config_.use_batch_norm && b > 1) {
          for (size_t o = 0; o < out; ++o) {
            const double inv_std = 1.0 / std::sqrt(s.var[o] + kBnEpsilon);
            double sum_dy = 0.0, sum_dy_rhat = 0.0;
            for (size_t i = 0; i < b; ++i) {
              const double dy = s.d_post[i * out + o];
              sum_dy += dy;
              sum_dy_rhat += dy * s.rhat[i * out + o];
              d_gamma[o] += dy * s.rhat[i * out + o];
              d_beta[o] += dy;
            }
            const double inv_b = 1.0 / static_cast<double>(b);
            for (size_t i = 0; i < b; ++i) {
              const double dy = s.d_post[i * out + o];
              d_relu[i * out + o] =
                  layer.gamma[o] * inv_std *
                  (dy - sum_dy * inv_b - s.rhat[i * out + o] * sum_dy_rhat *
                                             inv_b);
            }
          }
        } else {
          d_relu = s.d_post;
        }

        // ReLU backward.
        s.d_pre.assign(b * out, 0.0);
        for (size_t idx = 0; idx < b * out; ++idx) {
          s.d_pre[idx] = s.pre[idx] > 0.0 ? d_relu[idx] : 0.0;
        }

        // Affine backward.
        std::vector<double> d_weights(out * in, 0.0);
        std::vector<double> d_bias(out, 0.0);
        if (l > 0) {
          scratch[l - 1].d_post.assign(
              b * static_cast<size_t>(layers_[l - 1].out), 0.0);
        }
        for (size_t i = 0; i < b; ++i) {
          for (size_t o = 0; o < out; ++o) {
            const double g = s.d_pre[i * out + o];
            if (g == 0.0) continue;
            double* dw = d_weights.data() + o * in;
            if (l == 0) {
              const float* x = batch_rows[i];
              for (size_t j = 0; j < in; ++j) dw[j] += g * x[j];
            } else {
              const double* x = scratch[l - 1].post.data() + i * in;
              double* dx = scratch[l - 1].d_post.data() + i * in;
              const double* w = layer.weights.data() + o * in;
              for (size_t j = 0; j < in; ++j) {
                dw[j] += g * x[j];
                dx[j] += g * w[j];
              }
            }
            d_bias[o] += g;
          }
        }

        // SGD with momentum.
        auto update = [&](std::vector<double>& param,
                          std::vector<double>& velocity,
                          const std::vector<double>& gradient) {
          for (size_t idx = 0; idx < param.size(); ++idx) {
            velocity[idx] = config_.momentum * velocity[idx] -
                            learning_rate * gradient[idx];
            param[idx] += velocity[idx];
          }
        };
        update(layer.weights, layer.v_weights, d_weights);
        update(layer.bias, layer.v_bias, d_bias);
        if (config_.use_batch_norm && b > 1) {
          update(layer.gamma, layer.v_gamma, d_gamma);
          update(layer.beta, layer.v_beta, d_beta);
        }
      }

      // Output-layer update.
      for (size_t j = 0; j < last; ++j) {
        v_out_weights_[j] = config_.momentum * v_out_weights_[j] -
                            learning_rate * d_out_weights[j];
        out_weights_[j] += v_out_weights_[j];
      }
      v_out_bias_ =
          config_.momentum * v_out_bias_ - learning_rate * d_out_bias;
      out_bias_ += v_out_bias_;
    }
    learning_rate *= config_.learning_rate_decay;
  }
}

double NeuralNetwork::Margin(const float* x) const {
  ALEM_CHECK(trained());
  std::vector<double> activation;
  std::vector<double> next;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    const size_t out = static_cast<size_t>(layer.out);
    const size_t in = static_cast<size_t>(layer.in);
    next.assign(out, 0.0);
    for (size_t o = 0; o < out; ++o) {
      const double* w = layer.weights.data() + o * in;
      double z = layer.bias[o];
      if (l == 0) {
        for (size_t j = 0; j < in; ++j) z += w[j] * x[j];
      } else {
        for (size_t j = 0; j < in; ++j) z += w[j] * activation[j];
      }
      z = std::max(0.0, z);  // ReLU.
      if (config_.use_batch_norm) {
        z = layer.gamma[o] * (z - layer.running_mean[o]) /
                std::sqrt(layer.running_var[o] + kBnEpsilon) +
            layer.beta[o];
      }
      next[o] = z;  // No dropout at inference.
    }
    activation.swap(next);
  }
  double z = out_bias_;
  for (size_t j = 0; j < activation.size(); ++j) {
    z += out_weights_[j] * activation[j];
  }
  return z;
}

std::vector<double> NeuralNetwork::InputImportances() const {
  ALEM_CHECK(trained());
  // Propagate absolute output weight backwards through the layers.
  std::vector<double> importance(out_weights_.size());
  for (size_t j = 0; j < out_weights_.size(); ++j) {
    importance[j] = std::abs(out_weights_[j]);
  }
  for (size_t l = layers_.size(); l-- > 0;) {
    const Layer& layer = layers_[l];
    const size_t out = static_cast<size_t>(layer.out);
    const size_t in = static_cast<size_t>(layer.in);
    std::vector<double> previous(in, 0.0);
    for (size_t o = 0; o < out; ++o) {
      // Batch norm rescales each channel by gamma / sqrt(var); without that
      // factor, channels fed by low-variance (uninformative) inputs would
      // look spuriously important.
      const double bn_scale =
          config_.use_batch_norm
              ? std::abs(layer.gamma[o]) /
                    std::sqrt(layer.running_var[o] + kBnEpsilon)
              : 1.0;
      const double scale = importance[o] * bn_scale;
      if (scale == 0.0) continue;
      const double* w = layer.weights.data() + o * in;
      for (size_t j = 0; j < in; ++j) {
        previous[j] += scale * std::abs(w[j]);
      }
    }
    importance.swap(previous);
  }
  return importance;
}

std::vector<size_t> NeuralNetwork::TopImportanceDimensions(size_t k) const {
  const std::vector<double> importance = InputImportances();
  std::vector<size_t> order(importance.size());
  std::iota(order.begin(), order.end(), 0u);
  k = std::min(k, order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(k),
                    order.end(), [&](size_t a, size_t b) {
                      return importance[a] > importance[b];
                    });
  order.resize(k);
  return order;
}

void NeuralNetwork::MarginBatch(const FeatureMatrix& features,
                                std::span<const size_t> rows,
                                double* out) const {
  ALEM_CHECK(trained());
  // Rows per forward sub-chunk: big enough that each hidden layer's weight
  // matrix is streamed once per ~32 examples instead of once per example,
  // small enough that two activation buffers stay L1/L2-resident.
  constexpr size_t kChunk = 32;
  size_t max_width = 0;
  for (const Layer& layer : layers_) {
    max_width = std::max(max_width, static_cast<size_t>(layer.out));
  }
  // Roofline accounting: one multiply-add per (row, layer weight) plus the
  // output dot product — 2·Σ(in·out) + 2·out_last FLOPs per row
  // (docs/observability.md).
  static obs::profile::Region& profile_region =
      obs::profile::GetRegion("ml.batch");
  if (profile_region.active.load(std::memory_order_relaxed)) {
    uint64_t flops_per_row = 0;
    for (const Layer& layer : layers_) {
      flops_per_row += 2ULL * static_cast<uint64_t>(layer.in) *
                       static_cast<uint64_t>(layer.out);
    }
    flops_per_row += 2ULL * static_cast<uint64_t>(layers_.back().out);
    obs::profile::AddWork(profile_region, 0, 0,
                          static_cast<uint64_t>(rows.size()) * flops_per_row);
  }
  // Per-call scratch, allocated once and reused for every chunk. The
  // batch-norm divisors are hoisted per layer so each sqrt is taken once
  // per call instead of once per (unit, example) as in scalar Margin.
  std::vector<double> activation(kChunk * max_width);
  std::vector<double> next(kChunk * max_width);
  const float* x[kChunk];
  std::vector<std::vector<double>> bn_sqrts(layers_.size());
  if (config_.use_batch_norm) {
    for (size_t l = 0; l < layers_.size(); ++l) {
      const Layer& layer = layers_[l];
      bn_sqrts[l].resize(static_cast<size_t>(layer.out));
      for (size_t o = 0; o < bn_sqrts[l].size(); ++o) {
        bn_sqrts[l][o] = std::sqrt(layer.running_var[o] + kBnEpsilon);
      }
    }
  }
  // SIMD backends vectorize the affine kernel across units, which wants
  // unit-contiguous weights: build one [in x out] transposed copy per
  // layer per call (amortized over every chunk of the batch).
  const kernels::KernelOps& ops = kernels::Active();
  std::vector<std::vector<double>> transposed(layers_.size());
  if (ops.nn_wants_transpose) {
    for (size_t l = 0; l < layers_.size(); ++l) {
      const Layer& layer = layers_[l];
      const size_t out_width = static_cast<size_t>(layer.out);
      const size_t in_width = static_cast<size_t>(layer.in);
      transposed[l].resize(in_width * out_width);
      for (size_t o = 0; o < out_width; ++o) {
        for (size_t j = 0; j < in_width; ++j) {
          transposed[l][j * out_width + o] = layer.weights[o * in_width + j];
        }
      }
    }
  }

  for (size_t base = 0; base < rows.size(); base += kChunk) {
    const size_t b = std::min(kChunk, rows.size() - base);
    for (size_t i = 0; i < b; ++i) x[i] = features.Row(rows[base + i]);

    for (size_t l = 0; l < layers_.size(); ++l) {
      const Layer& layer = layers_[l];
      const size_t out_width = static_cast<size_t>(layer.out);
      const size_t in_width = static_cast<size_t>(layer.in);
      // Row-outer / unit-inner: EM networks are narrow, so the layer's
      // whole weight matrix stays cache-resident across the chunk while
      // each example's input row stays in L1 for all of its units. The
      // affine part is backend-dispatched; every backend accumulates each
      // unit from bias through w[j] * x[j] in ascending j — the scalar
      // Margin order — and ReLU plus inference batch-norm stay scalar per
      // (row, unit) (the divisor stays a division by the hoisted sqrt), so
      // every intermediate double is bitwise-identical to the scalar pass.
      const double* wt =
          ops.nn_wants_transpose ? transposed[l].data() : nullptr;
      for (size_t i = 0; i < b; ++i) {
        const double* a = activation.data() + i * in_width;
        double* n = next.data() + i * out_width;
        if (l == 0) {
          ops.nn_affine_f32(layer.weights.data(), wt, layer.bias.data(),
                            in_width, out_width, x[i], n);
        } else {
          ops.nn_affine_f64(layer.weights.data(), wt, layer.bias.data(),
                            in_width, out_width, a, n);
        }
        for (size_t o = 0; o < out_width; ++o) {
          double z = std::max(0.0, n[o]);  // ReLU.
          if (config_.use_batch_norm) {
            z = layer.gamma[o] * (z - layer.running_mean[o]) / bn_sqrts[l][o] +
                layer.beta[o];
          }
          n[o] = z;  // No dropout at inference.
        }
      }
      activation.swap(next);
    }

    const size_t last = static_cast<size_t>(layers_.back().out);
    for (size_t i = 0; i < b; ++i) {
      double z = out_bias_;
      const double* a = activation.data() + i * last;
      for (size_t j = 0; j < last; ++j) z += out_weights_[j] * a[j];
      out[base + i] = z;
    }
  }
}

double NeuralNetwork::PredictProbability(const float* x) const {
  return Sigmoid(Margin(x));
}

void NeuralNetwork::ProbaBatch(const FeatureMatrix& features,
                               std::span<const size_t> rows,
                               double* out) const {
  MarginBatch(features, rows, out);
  for (size_t i = 0; i < rows.size(); ++i) out[i] = Sigmoid(out[i]);
}

int NeuralNetwork::Predict(const float* x) const {
  return PredictProbability(x) > 0.5 ? 1 : 0;
}

void NeuralNetwork::PredictBatch(const FeatureMatrix& features,
                                 std::span<const size_t> rows,
                                 int* out) const {
  constexpr size_t kBlock = 64;
  double proba[kBlock];
  for (size_t base = 0; base < rows.size(); base += kBlock) {
    const size_t b = std::min(kBlock, rows.size() - base);
    ProbaBatch(features, rows.subspan(base, b), proba);
    for (size_t r = 0; r < b; ++r) out[base + r] = proba[r] > 0.5 ? 1 : 0;
  }
}

std::vector<int> NeuralNetwork::PredictAll(
    const FeatureMatrix& features) const {
  std::vector<int> predictions(features.rows());
  std::vector<size_t> rows(features.rows());
  std::iota(rows.begin(), rows.end(), 0u);
  PredictBatch(features, rows, predictions.data());
  return predictions;
}

}  // namespace alem
