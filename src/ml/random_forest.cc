#include "ml/random_forest.h"

#include <algorithm>

#include "parallel/pool.h"
#include "util/check.h"
#include "util/rng.h"

namespace alem {

void RandomForest::Fit(const FeatureMatrix& features,
                       const std::vector<int>& labels) {
  ALEM_CHECK_EQ(features.rows(), labels.size());
  ALEM_CHECK_GT(features.rows(), 0u);
  ALEM_CHECK_GT(config_.num_trees, 0);
  const size_t num_trees = static_cast<size_t>(config_.num_trees);
  const size_t n = features.rows();

  // Draw every tree's seed and bootstrap sample serially first — the exact
  // RNG consumption order of the serial implementation — then fit the trees
  // in parallel (one per task). Tree fitting is pure given (seed, sample),
  // so the forest is bitwise-identical at every thread count.
  struct TreePlan {
    uint64_t seed = 0;
    std::vector<size_t> sample;
  };
  Rng rng(config_.seed);
  std::vector<TreePlan> plans(num_trees);
  for (TreePlan& plan : plans) {
    plan.seed = rng.Next();
    if (config_.bootstrap) plan.sample = rng.SampleWithReplacement(n, n);
  }

  trees_.clear();
  trees_.resize(num_trees);
  parallel::ParallelFor(
      0, num_trees, 1,
      [&](size_t begin, size_t end, size_t chunk) {
        (void)chunk;
        for (size_t t = begin; t < end; ++t) {
          DecisionTreeConfig tree_config = config_.tree;
          tree_config.seed = plans[t].seed;
          DecisionTree tree(tree_config);
          if (config_.bootstrap) {
            const std::vector<size_t>& sample = plans[t].sample;
            FeatureMatrix sampled = features.Gather(sample);
            std::vector<int> sampled_labels(n);
            for (size_t i = 0; i < n; ++i) {
              sampled_labels[i] = labels[sample[i]];
            }
            tree.Fit(sampled, sampled_labels);
          } else {
            tree.Fit(features, labels);
          }
          trees_[t] = std::move(tree);
        }
      },
      "ml.forest_fit");
}

double RandomForest::PositiveFraction(const float* x) const {
  ALEM_CHECK(trained());
  size_t votes = 0;
  for (const DecisionTree& tree : trees_) {
    votes += static_cast<size_t>(tree.Predict(x));
  }
  return static_cast<double>(votes) / static_cast<double>(trees_.size());
}

int RandomForest::Predict(const float* x) const {
  return PositiveFraction(x) >= 0.5 ? 1 : 0;
}

std::vector<int> RandomForest::PredictAll(const FeatureMatrix& features) const {
  std::vector<int> predictions(features.rows());
  parallel::ParallelFor(
      0, features.rows(), 512,
      [&](size_t begin, size_t end, size_t chunk) {
        (void)chunk;
        for (size_t i = begin; i < end; ++i) {
          predictions[i] = Predict(features.Row(i));
        }
      },
      "ml.predict_batch");
  return predictions;
}

int RandomForest::MaxDepth() const {
  int depth = 0;
  for (const DecisionTree& tree : trees_) {
    depth = std::max(depth, tree.depth());
  }
  return depth;
}

size_t RandomForest::TotalDnfAtoms() const {
  size_t atoms = 0;
  for (const DecisionTree& tree : trees_) {
    atoms += tree.NumDnfAtoms();
  }
  return atoms;
}

}  // namespace alem
