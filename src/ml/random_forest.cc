#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/profile.h"
#include "parallel/pool.h"
#include "util/check.h"
#include "util/rng.h"

namespace alem {
namespace {

// How many times labeled position p appears in tree t's Poisson-bootstrap
// sample: a Poisson(1) draw by inverse CDF on a uniform seeded purely from
// (forest seed, t, p). Stateless by construction — the count for an existing
// position never changes as the labeled set grows.
size_t PoissonMembership(uint64_t seed, size_t tree, size_t position) {
  Rng rng(seed ^ ((tree + 1) * 0x9e3779b97f4a7c15ULL) ^
          ((position + 1) * 0xbf58476d1ce4e5b9ULL));
  const double u = rng.NextDouble();
  double mass = std::exp(-1.0);  // P(k = 0) for Poisson(1).
  double cumulative = mass;
  size_t k = 0;
  while (u > cumulative && k < 16) {
    ++k;
    mass /= static_cast<double>(k);
    cumulative += mass;
  }
  return k;
}

// Stable per-tree fitting seed for warm refits. Unlike the cold path (which
// draws tree seeds from one sequential stream), this is position-independent
// so a refit of tree t produces identical randomness at any labeled-set
// size — the untouched-tree skip relies on it.
uint64_t WarmTreeSeed(uint64_t seed, size_t tree) {
  uint64_t h = seed + (tree + 1) * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

}  // namespace

void RandomForest::Fit(const FeatureMatrix& features,
                       const std::vector<int>& labels) {
  ALEM_CHECK_EQ(features.rows(), labels.size());
  ALEM_CHECK_GT(features.rows(), 0u);
  ALEM_CHECK_GT(config_.num_trees, 0);
  const size_t num_trees = static_cast<size_t>(config_.num_trees);
  const size_t n = features.rows();

  // Draw every tree's seed and bootstrap sample serially first — the exact
  // RNG consumption order of the serial implementation — then fit the trees
  // in parallel (one per task). Tree fitting is pure given (seed, sample),
  // so the forest is bitwise-identical at every thread count.
  struct TreePlan {
    uint64_t seed = 0;
    std::vector<size_t> sample;
  };
  Rng rng(config_.seed);
  std::vector<TreePlan> plans(num_trees);
  for (TreePlan& plan : plans) {
    plan.seed = rng.Next();
    if (config_.bootstrap) plan.sample = rng.SampleWithReplacement(n, n);
  }

  trees_.clear();
  trees_.resize(num_trees);
  parallel::ParallelFor(
      0, num_trees, 1,
      [&](size_t begin, size_t end, size_t chunk) {
        (void)chunk;
        for (size_t t = begin; t < end; ++t) {
          DecisionTreeConfig tree_config = config_.tree;
          tree_config.seed = plans[t].seed;
          DecisionTree tree(tree_config);
          if (config_.bootstrap) {
            const std::vector<size_t>& sample = plans[t].sample;
            FeatureMatrix sampled = features.Gather(sample);
            std::vector<int> sampled_labels(n);
            for (size_t i = 0; i < n; ++i) {
              sampled_labels[i] = labels[sample[i]];
            }
            tree.Fit(sampled, sampled_labels);
          } else {
            tree.Fit(features, labels);
          }
          trees_[t] = std::move(tree);
        }
      },
      "ml.forest_fit");
  RebuildFlatForest();
  last_fit_count_ = 0;  // Cold fits leave the warm scheme.
}

bool RandomForest::FitWarm(const FeatureMatrix& features,
                           const std::vector<int>& labels,
                           size_t* trees_refit) {
  ALEM_CHECK_EQ(features.rows(), labels.size());
  ALEM_CHECK_GT(features.rows(), 0u);
  ALEM_CHECK_GT(config_.num_trees, 0);
  const size_t num_trees = static_cast<size_t>(config_.num_trees);
  const size_t n = features.rows();
  // Without bootstrap every tree trains on the full data, so every new label
  // touches every tree and warm refits cannot save anything; a shrinking
  // labeled set breaks the append-only sample property. Both fall back cold.
  if (!config_.bootstrap) return false;
  if (last_fit_count_ > 0 && (n < last_fit_count_ || trees_.size() != num_trees)) {
    return false;
  }

  // A tree needs refitting iff any position added since the last warm fit
  // lands in its Poisson sample. The first warm fit (watermark 0) rebuilds
  // everything — cold-fit trees used the sequential bootstrap, not this
  // scheme.
  const bool rebuild_all = last_fit_count_ == 0 || trees_.empty();
  std::vector<char> refit(num_trees, rebuild_all ? 1 : 0);
  if (!rebuild_all) {
    for (size_t t = 0; t < num_trees; ++t) {
      for (size_t p = last_fit_count_; p < n; ++p) {
        if (PoissonMembership(config_.seed, t, p) > 0) {
          refit[t] = 1;
          break;
        }
      }
    }
  }

  trees_.resize(num_trees);
  size_t refit_count = 0;
  for (const char flag : refit) refit_count += flag != 0 ? 1u : 0u;
  parallel::ParallelFor(
      0, num_trees, 1,
      [&](size_t begin, size_t end, size_t chunk) {
        (void)chunk;
        for (size_t t = begin; t < end; ++t) {
          if (refit[t] == 0) continue;
          std::vector<size_t> sample;
          sample.reserve(n);
          for (size_t p = 0; p < n; ++p) {
            const size_t count = PoissonMembership(config_.seed, t, p);
            sample.insert(sample.end(), count, p);
          }
          // A fully empty sample (possible only for tiny n) falls back to
          // the whole labeled set, still a pure function of (seed, t, n).
          if (sample.empty()) {
            sample.resize(n);
            std::iota(sample.begin(), sample.end(), 0u);
          }
          DecisionTreeConfig tree_config = config_.tree;
          tree_config.seed = WarmTreeSeed(config_.seed, t);
          DecisionTree tree(tree_config);
          FeatureMatrix sampled = features.Gather(sample);
          std::vector<int> sampled_labels(sample.size());
          for (size_t i = 0; i < sample.size(); ++i) {
            sampled_labels[i] = labels[sample[i]];
          }
          tree.Fit(sampled, sampled_labels);
          trees_[t] = std::move(tree);
        }
      },
      "ml.forest_fit");
  RebuildFlatForest();
  last_fit_count_ = n;
  if (trees_refit != nullptr) *trees_refit = refit_count;
  return true;
}

void RandomForest::RebuildFlatForest() {
  flat_nodes_.clear();
  flat_roots_.clear();
  flat_roots_.reserve(trees_.size());
  size_t total_nodes = 0;
  for (const DecisionTree& tree : trees_) total_nodes += tree.num_nodes();
  flat_nodes_.reserve(total_nodes);
  for (const DecisionTree& tree : trees_) {
    flat_roots_.push_back(tree.FlattenInto(&flat_nodes_));
  }
}

double RandomForest::PositiveFraction(const float* x) const {
  ALEM_CHECK(trained());
  size_t votes = 0;
  for (const DecisionTree& tree : trees_) {
    votes += static_cast<size_t>(tree.Predict(x));
  }
  return static_cast<double>(votes) / static_cast<double>(trees_.size());
}

int RandomForest::Predict(const float* x) const {
  return PositiveFraction(x) >= 0.5 ? 1 : 0;
}

void RandomForest::VotesBatch(const FeatureMatrix& features,
                              std::span<const size_t> rows, int* votes) const {
  ALEM_CHECK(trained());
  // Examples-outer / trees-inner over the shared contiguous node array:
  // EM forests are many tiny trees over wide feature rows, so the row is
  // the hot operand — it stays in L1 across all trees while the whole
  // flattened forest (16-byte nodes) fits alongside it, and each example's
  // vote accumulates in a register in one pass. (Trees-outer re-streams the
  // full feature matrix once per tree and measures ~1.8x slower here.)
  const FlatNode* nodes = flat_nodes_.data();
  // Roofline accounting: tree traversal does comparisons, not FLOPs; one
  // unit per (row, tree) is the documented work proxy for forest voting
  // (docs/observability.md).
  static obs::profile::Region& profile_region =
      obs::profile::GetRegion("ml.batch");
  if (profile_region.active.load(std::memory_order_relaxed)) {
    obs::profile::AddWork(
        profile_region, 0, 0,
        static_cast<uint64_t>(rows.size()) * flat_roots_.size());
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    const float* x = features.Row(rows[i]);
    int row_votes = 0;
    for (const int32_t root : flat_roots_) {
      row_votes += FlatPredict(nodes, root, x);
    }
    votes[i] = row_votes;
  }
}

void RandomForest::PositiveFractionBatch(const FeatureMatrix& features,
                                         std::span<const size_t> rows,
                                         double* out) const {
  std::vector<int> votes(rows.size());
  VotesBatch(features, rows, votes.data());
  const double num_trees = static_cast<double>(trees_.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    out[i] = static_cast<double>(votes[i]) / num_trees;
  }
}

void RandomForest::PredictBatch(const FeatureMatrix& features,
                                std::span<const size_t> rows, int* out) const {
  std::vector<int> votes(rows.size());
  VotesBatch(features, rows, votes.data());
  const double num_trees = static_cast<double>(trees_.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    out[i] =
        static_cast<double>(votes[i]) / num_trees >= 0.5 ? 1 : 0;
  }
}

std::vector<int> RandomForest::PredictAll(const FeatureMatrix& features) const {
  std::vector<int> predictions(features.rows());
  std::vector<size_t> rows(features.rows());
  std::iota(rows.begin(), rows.end(), 0u);
  const std::span<const size_t> row_span(rows);
  parallel::ParallelFor(
      0, features.rows(), 256,
      [&](size_t begin, size_t end, size_t chunk) {
        (void)chunk;
        PredictBatch(features, row_span.subspan(begin, end - begin),
                     predictions.data() + begin);
      },
      "ml.batch");
  return predictions;
}

int RandomForest::MaxDepth() const {
  int depth = 0;
  for (const DecisionTree& tree : trees_) {
    depth = std::max(depth, tree.depth());
  }
  return depth;
}

size_t RandomForest::TotalDnfAtoms() const {
  size_t atoms = 0;
  for (const DecisionTree& tree : trees_) {
    atoms += tree.NumDnfAtoms();
  }
  return atoms;
}

}  // namespace alem
