#include "ml/random_forest.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"

namespace alem {

void RandomForest::Fit(const FeatureMatrix& features,
                       const std::vector<int>& labels) {
  ALEM_CHECK_EQ(features.rows(), labels.size());
  ALEM_CHECK_GT(features.rows(), 0u);
  ALEM_CHECK_GT(config_.num_trees, 0);
  trees_.clear();
  trees_.reserve(static_cast<size_t>(config_.num_trees));

  Rng rng(config_.seed);
  const size_t n = features.rows();
  for (int t = 0; t < config_.num_trees; ++t) {
    DecisionTreeConfig tree_config = config_.tree;
    tree_config.seed = rng.Next();
    DecisionTree tree(tree_config);
    if (config_.bootstrap) {
      const std::vector<size_t> sample = rng.SampleWithReplacement(n, n);
      FeatureMatrix sampled = features.Gather(sample);
      std::vector<int> sampled_labels(n);
      for (size_t i = 0; i < n; ++i) sampled_labels[i] = labels[sample[i]];
      tree.Fit(sampled, sampled_labels);
    } else {
      tree.Fit(features, labels);
    }
    trees_.push_back(std::move(tree));
  }
}

double RandomForest::PositiveFraction(const float* x) const {
  ALEM_CHECK(trained());
  size_t votes = 0;
  for (const DecisionTree& tree : trees_) {
    votes += static_cast<size_t>(tree.Predict(x));
  }
  return static_cast<double>(votes) / static_cast<double>(trees_.size());
}

int RandomForest::Predict(const float* x) const {
  return PositiveFraction(x) >= 0.5 ? 1 : 0;
}

std::vector<int> RandomForest::PredictAll(const FeatureMatrix& features) const {
  std::vector<int> predictions(features.rows());
  for (size_t i = 0; i < features.rows(); ++i) {
    predictions[i] = Predict(features.Row(i));
  }
  return predictions;
}

int RandomForest::MaxDepth() const {
  int depth = 0;
  for (const DecisionTree& tree : trees_) {
    depth = std::max(depth, tree.depth());
  }
  return depth;
}

size_t RandomForest::TotalDnfAtoms() const {
  size_t atoms = 0;
  for (const DecisionTree& tree : trees_) {
    atoms += tree.NumDnfAtoms();
  }
  return atoms;
}

}  // namespace alem
