// Model persistence.
//
// Trained models serialize to a human-readable, line-oriented text format
// (doubles at full round-trip precision), so an EM model learned in one
// session can be shipped and applied in another without retraining. The
// neural network serializes its inference state (weights, batch-norm running
// statistics); optimizer state (momentum buffers) is deliberately dropped.
//
// Format stability: every blob starts with a model tag and a version line;
// Deserialize rejects unknown tags/versions instead of guessing.

#ifndef ALEM_ML_SERIALIZATION_H_
#define ALEM_ML_SERIALIZATION_H_

#include <string>

#include "ml/decision_tree.h"
#include "ml/dnf_rule.h"
#include "ml/linear_svm.h"
#include "ml/neural_net.h"
#include "ml/random_forest.h"

namespace alem {

// Each Serialize* requires a trained model; each Deserialize* returns false
// on malformed input and leaves `model` unspecified.

std::string SerializeSvm(const LinearSvm& model);
bool DeserializeSvm(const std::string& text, LinearSvm* model);

std::string SerializeTree(const DecisionTree& model);
bool DeserializeTree(const std::string& text, DecisionTree* model);

std::string SerializeForest(const RandomForest& model);
bool DeserializeForest(const std::string& text, RandomForest* model);

std::string SerializeNeuralNet(const NeuralNetwork& model);
bool DeserializeNeuralNet(const std::string& text, NeuralNetwork* model);

std::string SerializeDnf(const Dnf& dnf);
bool DeserializeDnf(const std::string& text, Dnf* dnf);

// Convenience file wrappers.
bool SaveToFile(const std::string& path, const std::string& blob);
bool LoadFromFile(const std::string& path, std::string* blob);

}  // namespace alem

#endif  // ALEM_ML_SERIALIZATION_H_
