// Binary classification quality metrics.
//
// The paper evaluates EM quality with precision/recall/F1 over the positive
// (matching) class, since accuracy is meaningless under the heavy class skew
// of post-blocking pair spaces.

#ifndef ALEM_ML_METRICS_H_
#define ALEM_ML_METRICS_H_

#include <cstddef>
#include <vector>

namespace alem {

struct BinaryMetrics {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;
  size_t true_negatives = 0;

  // All three are 0 when undefined (no predicted / no actual positives).
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

// Computes metrics for the positive class (label 1). `predictions` and
// `labels` must have equal size.
BinaryMetrics ComputeBinaryMetrics(const std::vector<int>& predictions,
                                   const std::vector<int>& labels);

// Derives precision/recall/F1 from confusion-matrix counts. Both
// ComputeBinaryMetrics and the incremental progressive-F1 tally in
// LabelingSession funnel through this, so incrementally maintained counts
// produce bit-identical doubles to a full rescore (docs/training.md).
BinaryMetrics MetricsFromCounts(size_t true_positives, size_t false_positives,
                                size_t false_negatives, size_t true_negatives);

}  // namespace alem

#endif  // ALEM_ML_METRICS_H_
