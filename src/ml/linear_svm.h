// Linear support vector machine trained with the Pegasos stochastic
// sub-gradient algorithm (Shalev-Shwartz et al.).
//
// This is the framework's "linear classifier" (the paper uses Weka's SVM).
// The trained weight vector and bias are exposed directly because both the
// margin example selector and the selection-time blocking optimization of
// Section 5.1 need them: margin = |w . x + b|, and the blocking dimensions
// are the top-K features by |w|.

#ifndef ALEM_ML_LINEAR_SVM_H_
#define ALEM_ML_LINEAR_SVM_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "features/feature_matrix.h"

namespace alem {

struct LinearSvmConfig {
  // Regularization strength (Pegasos lambda).
  double lambda = 1e-2;
  // Learning-rate warm start: the step counter begins at this value, so the
  // first steps use eta = 1/(lambda * t0) instead of the enormous 1/lambda.
  // Without it, the first sampled examples dominate the weight vector
  // forever (multiplicative decay preserves weight ratios).
  int t0 = 50;
  // Number of passes over the training data.
  int epochs = 60;
  // When true, each SGD step samples a positive or negative example with
  // equal probability, which counteracts the heavy class skew of EM pair
  // spaces (equivalent to cost-sensitive hinge loss).
  bool balance_classes = true;
  // Passes over the data for a warm-start refit (FitWarm): the model resumes
  // from its current weights, so far fewer passes are needed than a cold fit
  // (docs/training.md). Not part of the serialized model format.
  int warm_epochs = 10;
  uint64_t seed = 1;
};

class LinearSvm {
 public:
  LinearSvm() = default;
  explicit LinearSvm(const LinearSvmConfig& config) : config_(config) {}

  // Trains on rows of `features` with labels in {0, 1}. Retraining from
  // scratch replaces the previous model.
  void Fit(const FeatureMatrix& features, const std::vector<int>& labels);

  // Warm-start refit: resumes Pegasos from the current weights instead of
  // zero, running `warm_epochs` passes with the step counter continued past
  // a full cold schedule (so step sizes stay in the fine-tuning regime).
  // A pure function of (current weights, features, labels, config) — no
  // hidden optimizer state — so a refit after model save/restore is bitwise
  // identical to one in the original process (deterministic-restartable,
  // docs/training.md). Returns false (model untouched) when untrained or
  // the feature dimensionality changed; callers then fall back to Fit.
  bool FitWarm(const FeatureMatrix& features, const std::vector<int>& labels);

  // Signed distance proxy: w . x + b (not normalized by ||w||; the margin
  // selector only compares magnitudes so the scale cancels).
  double Margin(const float* x) const;

  // Batched margins: out[i] = Margin of row rows[i]. A register-blocked
  // w·Xᵀ GEMV sweep over blocks of rows that reloads each weight once per
  // block instead of once per row; per-row accumulation order matches
  // Margin exactly, so results are bitwise-identical to the scalar path.
  void MarginBatch(const FeatureMatrix& features, std::span<const size_t> rows,
                   double* out) const;

  // 1 if Margin(x) > 0 else 0.
  int Predict(const float* x) const;
  // Batched predictions over selected rows (margin sign, as Predict).
  void PredictBatch(const FeatureMatrix& features, std::span<const size_t> rows,
                    int* out) const;
  std::vector<int> PredictAll(const FeatureMatrix& features) const;

  bool trained() const { return !weights_.empty(); }
  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }
  const LinearSvmConfig& config() const { return config_; }

  // Indices of the `k` features with the largest |weight| — the blocking
  // dimensions of Section 5.1. Requires a trained model.
  std::vector<size_t> TopWeightDimensions(size_t k) const;

 private:
  friend std::string SerializeSvm(const LinearSvm& model);
  friend bool DeserializeSvm(const std::string& text, LinearSvm* model);

  // Shared Pegasos loop: `epochs` passes over the data starting from the
  // current weights, with step sizes 1/(lambda * (t + t_offset)) and example
  // sampling driven by `rng_seed`. Fit resets the weights first; FitWarm
  // continues from them. With `average_tail` the result is the mean of the
  // second-half iterates (averaged Pegasos) instead of the last iterate —
  // the warm path uses this to tame short-run SGD noise; the cold path must
  // not, so the golden baselines stay bitwise.
  void RunSgd(const FeatureMatrix& features, const std::vector<int>& labels,
              size_t epochs, uint64_t t_offset, uint64_t rng_seed,
              bool average_tail);

  LinearSvmConfig config_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace alem

#endif  // ALEM_ML_LINEAR_SVM_H_
