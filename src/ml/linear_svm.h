// Linear support vector machine trained with the Pegasos stochastic
// sub-gradient algorithm (Shalev-Shwartz et al.).
//
// This is the framework's "linear classifier" (the paper uses Weka's SVM).
// The trained weight vector and bias are exposed directly because both the
// margin example selector and the selection-time blocking optimization of
// Section 5.1 need them: margin = |w . x + b|, and the blocking dimensions
// are the top-K features by |w|.

#ifndef ALEM_ML_LINEAR_SVM_H_
#define ALEM_ML_LINEAR_SVM_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "features/feature_matrix.h"

namespace alem {

struct LinearSvmConfig {
  // Regularization strength (Pegasos lambda).
  double lambda = 1e-2;
  // Learning-rate warm start: the step counter begins at this value, so the
  // first steps use eta = 1/(lambda * t0) instead of the enormous 1/lambda.
  // Without it, the first sampled examples dominate the weight vector
  // forever (multiplicative decay preserves weight ratios).
  int t0 = 50;
  // Number of passes over the training data.
  int epochs = 60;
  // When true, each SGD step samples a positive or negative example with
  // equal probability, which counteracts the heavy class skew of EM pair
  // spaces (equivalent to cost-sensitive hinge loss).
  bool balance_classes = true;
  uint64_t seed = 1;
};

class LinearSvm {
 public:
  LinearSvm() = default;
  explicit LinearSvm(const LinearSvmConfig& config) : config_(config) {}

  // Trains on rows of `features` with labels in {0, 1}. Retraining from
  // scratch replaces the previous model.
  void Fit(const FeatureMatrix& features, const std::vector<int>& labels);

  // Signed distance proxy: w . x + b (not normalized by ||w||; the margin
  // selector only compares magnitudes so the scale cancels).
  double Margin(const float* x) const;

  // Batched margins: out[i] = Margin of row rows[i]. A register-blocked
  // w·Xᵀ GEMV sweep over blocks of rows that reloads each weight once per
  // block instead of once per row; per-row accumulation order matches
  // Margin exactly, so results are bitwise-identical to the scalar path.
  void MarginBatch(const FeatureMatrix& features, std::span<const size_t> rows,
                   double* out) const;

  // 1 if Margin(x) > 0 else 0.
  int Predict(const float* x) const;
  // Batched predictions over selected rows (margin sign, as Predict).
  void PredictBatch(const FeatureMatrix& features, std::span<const size_t> rows,
                    int* out) const;
  std::vector<int> PredictAll(const FeatureMatrix& features) const;

  bool trained() const { return !weights_.empty(); }
  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }
  const LinearSvmConfig& config() const { return config_; }

  // Indices of the `k` features with the largest |weight| — the blocking
  // dimensions of Section 5.1. Requires a trained model.
  std::vector<size_t> TopWeightDimensions(size_t k) const;

 private:
  friend std::string SerializeSvm(const LinearSvm& model);
  friend bool DeserializeSvm(const std::string& text, LinearSvm* model);

  LinearSvmConfig config_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace alem

#endif  // ALEM_ML_LINEAR_SVM_H_
