#include "ml/dnf_rule.h"

#include <algorithm>

#include "util/check.h"

namespace alem {

bool Conjunction::Matches(const float* boolean_row) const {
  for (const size_t atom : atoms) {
    if (boolean_row[atom] < 0.5f) return false;
  }
  return true;
}

bool Dnf::Matches(const float* boolean_row) const {
  for (const Conjunction& conjunction : conjunctions) {
    if (conjunction.Matches(boolean_row)) return true;
  }
  return false;
}

size_t Dnf::NumAtoms() const {
  size_t atoms = 0;
  for (const Conjunction& conjunction : conjunctions) {
    atoms += conjunction.atoms.size();
  }
  return atoms;
}

std::vector<Conjunction> Dnf::RuleMinusVariants() const {
  std::vector<Conjunction> variants;
  for (const Conjunction& conjunction : conjunctions) {
    if (conjunction.atoms.size() < 2) continue;
    for (size_t drop = 0; drop < conjunction.atoms.size(); ++drop) {
      Conjunction relaxed;
      relaxed.atoms.reserve(conjunction.atoms.size() - 1);
      for (size_t i = 0; i < conjunction.atoms.size(); ++i) {
        if (i != drop) relaxed.atoms.push_back(conjunction.atoms[i]);
      }
      variants.push_back(std::move(relaxed));
    }
  }
  return variants;
}

size_t Dnf::Simplify() {
  // Work on sorted atom sets; subset testing is a sorted merge.
  std::vector<Conjunction> sorted(conjunctions);
  for (Conjunction& conjunction : sorted) {
    std::sort(conjunction.atoms.begin(), conjunction.atoms.end());
  }
  auto is_subset = [](const std::vector<size_t>& small,
                      const std::vector<size_t>& large) {
    return std::includes(large.begin(), large.end(), small.begin(),
                         small.end());
  };
  std::vector<char> keep(sorted.size(), 1);
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (keep[i] == 0) continue;
    for (size_t j = 0; j < sorted.size(); ++j) {
      if (i == j || keep[j] == 0) continue;
      // Drop j when i's atoms are a subset of j's (i matches everything j
      // matches). Ties (equal sets) keep the earlier conjunction.
      if (is_subset(sorted[i].atoms, sorted[j].atoms) &&
          (sorted[i].atoms.size() < sorted[j].atoms.size() || i < j)) {
        keep[j] = 0;
      }
    }
  }
  std::vector<Conjunction> kept;
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (keep[i] != 0) kept.push_back(conjunctions[i]);
  }
  const size_t removed = conjunctions.size() - kept.size();
  conjunctions = std::move(kept);
  return removed;
}

std::string Dnf::ToString(const BooleanFeaturizer& featurizer) const {
  if (conjunctions.empty()) return "<empty DNF>";
  std::string out;
  for (size_t c = 0; c < conjunctions.size(); ++c) {
    if (c > 0) out += "\n  OR ";
    out += "(";
    for (size_t a = 0; a < conjunctions[c].atoms.size(); ++a) {
      if (a > 0) out += " AND ";
      out += featurizer.atom(conjunctions[c].atoms[a]).description;
    }
    out += ")";
  }
  return out;
}

void DnfRuleLearner::Fit(const FeatureMatrix& boolean_features,
                         const std::vector<int>& labels) {
  ALEM_CHECK_EQ(boolean_features.rows(), labels.size());
  dnf_.conjunctions.clear();
  trained_ = true;
  const size_t n = boolean_features.rows();
  const size_t num_atoms = boolean_features.dims();
  if (n == 0 || num_atoms == 0) return;

  // `active[i]`: example i has not been covered by an accepted conjunction.
  std::vector<char> active(n, 1);
  size_t active_positives = 0;
  for (size_t i = 0; i < n; ++i) active_positives += labels[i] == 1 ? 1 : 0;

  while (active_positives > 0 &&
         dnf_.conjunctions.size() < config_.max_conjunctions) {
    // Greedy learn-one-rule: track the example set matched by the current
    // partial conjunction (within the active examples only).
    std::vector<char> matched = active;
    size_t matched_count = 0;
    size_t matched_positives = 0;
    for (size_t i = 0; i < n; ++i) {
      if (matched[i] != 0) {
        ++matched_count;
        matched_positives += labels[i] == 1 ? 1 : 0;
      }
    }

    Conjunction conjunction;
    while (conjunction.atoms.size() < config_.max_atoms_per_conjunction) {
      const double current_precision =
          matched_count == 0 ? 0.0
                             : static_cast<double>(matched_positives) /
                                   static_cast<double>(matched_count);
      if (matched_positives > 0 && matched_count == matched_positives) {
        break;  // Perfect precision; no further atoms needed.
      }

      // Pick the atom whose addition maximizes precision, breaking ties by
      // the number of positives retained. Only *strict* improvements over
      // the current precision qualify — otherwise an atom that leaves the
      // matched set unchanged (e.g., one already in the conjunction) would
      // be re-added forever.
      double best_precision = 0.0;
      size_t best_positives = 0;
      int best_atom = -1;
      for (size_t atom = 0; atom < num_atoms; ++atom) {
        size_t next_count = 0;
        size_t next_positives = 0;
        for (size_t i = 0; i < n; ++i) {
          if (matched[i] == 0) continue;
          if (boolean_features.At(i, atom) >= 0.5f) {
            ++next_count;
            next_positives += labels[i] == 1 ? 1 : 0;
          }
        }
        if (next_positives == 0) continue;  // Must keep covering positives.
        const double precision = static_cast<double>(next_positives) /
                                 static_cast<double>(next_count);
        if (precision <= current_precision + 1e-12) continue;
        if (best_atom < 0 || precision > best_precision + 1e-12 ||
            (precision > best_precision - 1e-12 &&
             next_positives > best_positives)) {
          best_precision = precision;
          best_positives = next_positives;
          best_atom = static_cast<int>(atom);
        }
      }
      if (best_atom < 0) break;  // No atom improves precision.

      conjunction.atoms.push_back(static_cast<size_t>(best_atom));
      matched_count = 0;
      matched_positives = 0;
      for (size_t i = 0; i < n; ++i) {
        if (matched[i] != 0 &&
            boolean_features.At(i, static_cast<size_t>(best_atom)) < 0.5f) {
          matched[i] = 0;
        }
        if (matched[i] != 0) {
          ++matched_count;
          matched_positives += labels[i] == 1 ? 1 : 0;
        }
      }
    }

    if (conjunction.atoms.empty()) break;
    const double precision =
        matched_count == 0 ? 0.0
                           : static_cast<double>(matched_positives) /
                                 static_cast<double>(matched_count);
    if (precision < config_.min_precision || matched_positives == 0) {
      break;  // Cannot learn another acceptable high-precision rule.
    }

    // Accept: remove everything the conjunction covers from the active set.
    dnf_.conjunctions.push_back(conjunction);
    for (size_t i = 0; i < n; ++i) {
      if (active[i] != 0 &&
          conjunction.Matches(boolean_features.Row(i))) {
        active[i] = 0;
        if (labels[i] == 1) --active_positives;
      }
    }
  }
  // Drop redundant (subsumed/duplicate) conjunctions; semantics unchanged,
  // interpretability (atom count) improved.
  dnf_.Simplify();
}

int DnfRuleLearner::Predict(const float* boolean_row) const {
  ALEM_CHECK(trained_);
  return dnf_.Matches(boolean_row) ? 1 : 0;
}

std::vector<int> DnfRuleLearner::PredictAll(
    const FeatureMatrix& boolean_features) const {
  std::vector<int> predictions(boolean_features.rows());
  for (size_t i = 0; i < boolean_features.rows(); ++i) {
    predictions[i] = Predict(boolean_features.Row(i));
  }
  return predictions;
}

}  // namespace alem
