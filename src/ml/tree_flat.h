// Flattened decision-tree representation for batch traversal.
//
// The pointer-style build nodes of DecisionTree (~40 bytes each, scattered
// by recursion order) are fine for fitting but wasteful for the scoring hot
// path, where a forest visits every tree for every example. FlatNode packs
// a node into 16 bytes and DecisionTree::FlattenInto lays a whole tree out
// in preorder with sibling children adjacent, so an entire Corleone-sized
// tree occupies a handful of cache lines. RandomForest keeps all of its
// trees concatenated in one contiguous FlatNode array, so the whole forest
// stays cache-resident while an examples-outer sweep accumulates committee
// votes per row in a register (see docs/parallelism.md).
//
// Flat traversal is bitwise-identical to DecisionTree::Predict: the split
// comparison (x[dim] < threshold goes left) and the leaf labels are copied
// verbatim; only the memory layout changes.

#ifndef ALEM_ML_TREE_FLAT_H_
#define ALEM_ML_TREE_FLAT_H_

#include <cstdint>

namespace alem {

// Marks a FlatNode as a leaf (stored in `left`; the label lives in `right`).
inline constexpr int32_t kFlatLeaf = -1;

// One node of a flattened tree. For split nodes `left`/`right` are flat
// indices into the same array; for leaves `left` is kFlatLeaf and `right`
// holds the 0/1 label.
struct FlatNode {
  int32_t left = kFlatLeaf;
  int32_t right = 0;
  uint32_t dim = 0;
  float threshold = 0.0f;
};
static_assert(sizeof(FlatNode) == 16, "FlatNode must stay 16 bytes");

// Walks the flattened tree rooted at `root` for feature row `x`. Identical
// decision path to DecisionTree::Predict (goes right when
// x[dim] >= threshold).
inline int FlatPredict(const FlatNode* nodes, int32_t root, const float* x) {
  int32_t index = root;
  while (nodes[index].left != kFlatLeaf) {
    const FlatNode& node = nodes[index];
    index = x[node.dim] < node.threshold ? node.left : node.right;
  }
  return nodes[index].right;
}

}  // namespace alem

#endif  // ALEM_ML_TREE_FLAT_H_
