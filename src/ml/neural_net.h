// Feed-forward neural network (the paper's non-convex non-linear learner).
//
// Architecture per Section 4.2.2: input -> affine -> ReLU -> batch
// normalization -> dropout -> ... -> affine(1) -> sigmoid. The scalar affine
// output is the *margin* in the sense of Nguyen & Sanner, which is what the
// margin example selector consumes. Training uses L2 loss and SGD with
// momentum; the paper's hyper-parameters are the defaults (50 epochs,
// mini-batch 8, learning rate 0.001, decay 0.99, momentum 0.95, dropout of
// half the hidden nodes).
//
// The number of hidden layers is configurable: one layer reproduces the
// paper's network, two layers with more units implement the DeepMatcherProxy
// used as the supervised deep-learning baseline of Fig. 16.

#ifndef ALEM_ML_NEURAL_NET_H_
#define ALEM_ML_NEURAL_NET_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "features/feature_matrix.h"

namespace alem {

struct NeuralNetConfig {
  std::vector<int> hidden_sizes = {32};
  int epochs = 50;
  int batch_size = 8;
  double learning_rate = 0.001;
  double learning_rate_decay = 0.99;  // Per epoch.
  double momentum = 0.95;
  double dropout = 0.5;
  bool use_batch_norm = true;
  // Gradient weight multiplier for positive examples is
  // min(#neg / #pos, positive_weight_cap); counteracts class skew.
  double positive_weight_cap = 10.0;
  // Epochs for a warm-start refit (FitWarm): training resumes from the
  // current weights, so far fewer passes are needed than a cold fit
  // (docs/training.md). Not part of the serialized model format.
  int warm_epochs = 10;
  uint64_t seed = 1;
};

class NeuralNetwork {
 public:
  NeuralNetwork() = default;
  explicit NeuralNetwork(const NeuralNetConfig& config) : config_(config) {}

  // Trains from scratch on labels in {0, 1}.
  void Fit(const FeatureMatrix& features, const std::vector<int>& labels);

  // Warm-start refit: resumes SGD from the current weights (and batch-norm
  // running statistics) for `warm_epochs` epochs, starting at the learning
  // rate a full cold schedule would have decayed to. Momentum velocities are
  // zeroed at entry, making the refit a pure function of (current weights,
  // features, labels, config) — the same contract DeserializeNeuralNet
  // provides — so a refit after model save/restore is bitwise identical to
  // one in the original process (docs/training.md). Returns false (model
  // untouched) when untrained or the input dimensionality changed.
  bool FitWarm(const FeatureMatrix& features, const std::vector<int>& labels);

  // Pre-sigmoid affine output (inference mode: running batch-norm
  // statistics, no dropout). |Margin| near 0 <=> output probability near
  // 0.5 <=> maximally ambiguous example.
  double Margin(const float* x) const;

  // Batched margins: out[i] = Margin of row rows[i]. The forward pass runs
  // chunked — sub-chunks of rows share one cache-resident pass over each
  // hidden layer's weight matrix, with ReLU and inference batch-norm fused
  // into the same sweep, batch-norm divisors hoisted per layer, and scratch
  // reused across chunks (mirroring SimilarityFunction::EvaluateChunk).
  // Per-(row, unit) arithmetic matches Margin exactly, so results are
  // bitwise-identical to the scalar path.
  void MarginBatch(const FeatureMatrix& features, std::span<const size_t> rows,
                   double* out) const;

  // Sigmoid(Margin(x)).
  double PredictProbability(const float* x) const;

  // Batched probabilities: sigmoid fused onto the MarginBatch output.
  void ProbaBatch(const FeatureMatrix& features, std::span<const size_t> rows,
                  double* out) const;

  // 1 if probability > 0.5.
  int Predict(const float* x) const;
  // Batched predictions over selected rows (probability > 0.5, as Predict).
  void PredictBatch(const FeatureMatrix& features, std::span<const size_t> rows,
                    int* out) const;
  std::vector<int> PredictAll(const FeatureMatrix& features) const;

  bool trained() const { return !layers_.empty(); }
  const NeuralNetConfig& config() const { return config_; }

  // Per-input-dimension importance: the absolute-weight product propagated
  // from the output back to each input (|W1|^T |gamma1| ... |w_out|). This
  // generalizes the linear "top |weight| dimensions" idea and implements the
  // paper's suggested blocking scheme for non-linear classifiers
  // (Section 5.2, "include the largest weights for each exponent").
  std::vector<double> InputImportances() const;

  // Indices of the `k` inputs with the largest importance.
  std::vector<size_t> TopImportanceDimensions(size_t k) const;

 private:
  friend std::string SerializeNeuralNet(const NeuralNetwork& model);
  friend bool DeserializeNeuralNet(const std::string& text,
                                   NeuralNetwork* model);

  struct Layer {
    int in = 0;
    int out = 0;
    // Row-major [out x in] weights and [out] bias.
    std::vector<double> weights, bias;
    // Batch-norm parameters and running statistics, all [out].
    std::vector<double> gamma, beta, running_mean, running_var;
    // Momentum velocity buffers.
    std::vector<double> v_weights, v_bias, v_gamma, v_beta;
  };

  void InitializeLayers(size_t input_dims);

  // Shared SGD loop: `epochs` passes from the current weights, starting at
  // `learning_rate` (decayed per epoch) with shuffling/dropout driven by
  // `rng_seed`. Fit initializes fresh layers first; FitWarm zeroes the
  // velocity buffers and continues.
  void Train(const FeatureMatrix& features, const std::vector<int>& labels,
             int epochs, double initial_learning_rate, uint64_t rng_seed);

  NeuralNetConfig config_;
  std::vector<Layer> layers_;  // Hidden layers.
  // Output affine layer: [1 x last_hidden] weights + scalar bias.
  std::vector<double> out_weights_;
  double out_bias_ = 0.0;
  std::vector<double> v_out_weights_;
  double v_out_bias_ = 0.0;
};

// A deeper supervised network standing in for DeepMatcher (Mudgal et al.) in
// the Fig. 16 comparison: two hidden layers of 64 units. DESIGN.md documents
// this substitution.
NeuralNetConfig DeepMatcherProxyConfig(uint64_t seed);

}  // namespace alem

#endif  // ALEM_ML_NEURAL_NET_H_
