// Random forest: bagged ensemble of CART trees (Corleone settings).
//
// The forest doubles as a *learner-aware QBC committee* (Section 4.1.1 of
// the paper): the per-tree votes on an unlabeled example give the positive
// fraction Pi/C from which the committee variance Pi/C * (1 - Pi/C) is
// computed, with no separate bootstrap committee construction.

#ifndef ALEM_ML_RANDOM_FOREST_H_
#define ALEM_ML_RANDOM_FOREST_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "features/feature_matrix.h"
#include "ml/decision_tree.h"
#include "ml/tree_flat.h"

namespace alem {

struct RandomForestConfig {
  // Corleone uses 10; the paper parameterizes this (2, 10, 20).
  int num_trees = 10;
  bool bootstrap = true;
  DecisionTreeConfig tree;
  uint64_t seed = 1;
};

class RandomForest {
 public:
  RandomForest() = default;
  explicit RandomForest(const RandomForestConfig& config) : config_(config) {}

  void Fit(const FeatureMatrix& features, const std::vector<int>& labels);

  // Warm-start refit for a labeled set that grew since the last warm fit.
  // Uses a *stateless Poisson bootstrap*: tree t's sample over n labeled
  // positions repeats position p `PoissonCount(seed, t, p)` times, where the
  // count is a pure hash of (config seed, tree, position). Growing the
  // labeled set therefore only appends to each tree's sample, so a tree
  // whose count is zero for every new position has exactly the sample it was
  // last fit on and is skipped — bitwise-preserved (refitting it would use
  // the identical sample and the same stable per-tree seed). The first warm
  // fit (or one following a cold Fit, whose sequential bootstrap draws
  // differ) rebuilds every tree under this scheme. `trees_refit`, when
  // non-null, receives the number of trees actually re-fit. Returns false
  // (model untouched) when bootstrap is disabled or the labeled set shrank;
  // callers then fall back to Fit. See docs/training.md.
  bool FitWarm(const FeatureMatrix& features, const std::vector<int>& labels,
               size_t* trees_refit = nullptr);

  // Labeled-set size at the last warm fit (0 = not in the warm scheme).
  // Serialized with the model so warm refits resume across processes.
  size_t warm_fit_count() const { return last_fit_count_; }

  // Fraction of trees voting positive (the committee agreement statistic).
  double PositiveFraction(const float* x) const;

  // Batched committee voting over selected rows: votes[i] = #trees voting
  // positive on row rows[i]. Traverses the contiguous flattened forest
  // (16-byte nodes, all trees in one array) examples-outer, each example's
  // vote accumulating in a register across trees in one cache-friendly
  // pass. Integer votes are exact, so every derived statistic is
  // bitwise-equal to the scalar path.
  void VotesBatch(const FeatureMatrix& features, std::span<const size_t> rows,
                  int* votes) const;

  // Batched PositiveFraction / Predict built on VotesBatch.
  void PositiveFractionBatch(const FeatureMatrix& features,
                             std::span<const size_t> rows, double* out) const;
  void PredictBatch(const FeatureMatrix& features, std::span<const size_t> rows,
                    int* out) const;

  // Majority vote: 1 when at least half of the trees vote positive.
  int Predict(const float* x) const;
  std::vector<int> PredictAll(const FeatureMatrix& features) const;

  bool trained() const { return !trees_.empty(); }
  const std::vector<DecisionTree>& trees() const { return trees_; }
  const RandomForestConfig& config() const { return config_; }

  // Maximum depth across all trees (Fig. 18b).
  int MaxDepth() const;
  // Total #DNF atoms across all trees (Fig. 18a).
  size_t TotalDnfAtoms() const;

 private:
  friend std::string SerializeForest(const RandomForest& model);
  friend bool DeserializeForest(const std::string& text, RandomForest* model);

  // Rebuilds the contiguous flattened-forest arrays from trees_. Must be
  // called whenever trees_ changes (Fit, deserialization).
  void RebuildFlatForest();

  RandomForestConfig config_;
  std::vector<DecisionTree> trees_;
  // Warm-refit watermark: #labeled examples covered by the current trees'
  // Poisson-bootstrap samples. Reset to 0 by cold Fit.
  size_t last_fit_count_ = 0;
  // All trees' nodes concatenated in one contiguous array (16-byte FlatNode
  // layout), plus each tree's root offset — the batch traversal structure.
  std::vector<FlatNode> flat_nodes_;
  std::vector<int32_t> flat_roots_;
};

}  // namespace alem

#endif  // ALEM_ML_RANDOM_FOREST_H_
