#include "ml/serialization.h"

#include <fstream>
#include <sstream>

#include "util/check.h"

namespace alem {
namespace {

// Writers use max_digits10 so doubles round-trip exactly.
class Writer {
 public:
  Writer() { out_.precision(17); }

  template <typename T>
  Writer& Line(const T& value) {
    out_ << value << '\n';
    return *this;
  }

  template <typename T>
  Writer& Vector(const std::vector<T>& values) {
    out_ << values.size();
    for (const T& value : values) out_ << ' ' << value;
    out_ << '\n';
    return *this;
  }

  std::string str() const { return out_.str(); }

 private:
  std::ostringstream out_;
};

class Reader {
 public:
  explicit Reader(const std::string& text) : in_(text) {}

  bool ExpectTag(const std::string& tag) {
    std::string line;
    return static_cast<bool>(std::getline(in_, line)) && line == tag;
  }

  template <typename T>
  bool Read(T* value) {
    return static_cast<bool>(in_ >> *value);
  }

  template <typename T>
  bool ReadVector(std::vector<T>* values) {
    size_t count = 0;
    if (!Read(&count)) return false;
    // Guards against absurd counts from corrupt input.
    if (count > (1u << 26)) return false;
    values->resize(count);
    for (T& value : *values) {
      if (!Read(&value)) return false;
    }
    return true;
  }

 private:
  std::istringstream in_;
};

}  // namespace

// ---- LinearSvm ----

std::string SerializeSvm(const LinearSvm& model) {
  ALEM_CHECK(model.trained());
  Writer writer;
  writer.Line("alem-svm").Line(1);
  writer.Line(model.config_.lambda)
      .Line(model.config_.t0)
      .Line(model.config_.epochs)
      .Line(model.config_.balance_classes ? 1 : 0)
      .Line(model.config_.seed);
  writer.Vector(model.weights_);
  writer.Line(model.bias_);
  return writer.str();
}

bool DeserializeSvm(const std::string& text, LinearSvm* model) {
  Reader reader(text);
  int version = 0;
  if (!reader.ExpectTag("alem-svm") || !reader.Read(&version) ||
      version != 1) {
    return false;
  }
  LinearSvm result;
  int balance = 0;
  if (!reader.Read(&result.config_.lambda) ||
      !reader.Read(&result.config_.t0) ||
      !reader.Read(&result.config_.epochs) || !reader.Read(&balance) ||
      !reader.Read(&result.config_.seed) ||
      !reader.ReadVector(&result.weights_) || !reader.Read(&result.bias_)) {
    return false;
  }
  if (result.weights_.empty()) return false;
  result.config_.balance_classes = balance != 0;
  *model = std::move(result);
  return true;
}

// ---- DecisionTree ----

std::string SerializeTree(const DecisionTree& model) {
  ALEM_CHECK(model.trained());
  Writer writer;
  writer.Line("alem-tree").Line(1);
  writer.Line(model.config_.max_depth)
      .Line(model.config_.min_samples_split)
      .Line(model.config_.max_features)
      .Line(model.config_.seed);
  writer.Line(model.root_).Line(model.depth_).Line(model.nodes_.size());
  for (const auto& node : model.nodes_) {
    std::ostringstream row;
    row.precision(9);
    row << (node.is_leaf ? 1 : 0) << ' ' << node.label << ' ' << node.dim
        << ' ' << node.threshold << ' ' << node.left << ' ' << node.right;
    writer.Line(row.str());
  }
  return writer.str();
}

bool DeserializeTree(const std::string& text, DecisionTree* model) {
  Reader reader(text);
  int version = 0;
  if (!reader.ExpectTag("alem-tree") || !reader.Read(&version) ||
      version != 1) {
    return false;
  }
  DecisionTree result;
  size_t num_nodes = 0;
  if (!reader.Read(&result.config_.max_depth) ||
      !reader.Read(&result.config_.min_samples_split) ||
      !reader.Read(&result.config_.max_features) ||
      !reader.Read(&result.config_.seed) || !reader.Read(&result.root_) ||
      !reader.Read(&result.depth_) || !reader.Read(&num_nodes)) {
    return false;
  }
  if (num_nodes == 0 || num_nodes > (1u << 26)) return false;
  result.nodes_.resize(num_nodes);
  for (auto& node : result.nodes_) {
    int is_leaf = 0;
    if (!reader.Read(&is_leaf) || !reader.Read(&node.label) ||
        !reader.Read(&node.dim) || !reader.Read(&node.threshold) ||
        !reader.Read(&node.left) || !reader.Read(&node.right)) {
      return false;
    }
    node.is_leaf = is_leaf != 0;
    // Child indices must stay in bounds (or be -1 for leaves).
    if (node.left >= static_cast<int>(num_nodes) ||
        node.right >= static_cast<int>(num_nodes)) {
      return false;
    }
  }
  if (result.root_ < 0 || result.root_ >= static_cast<int>(num_nodes)) {
    return false;
  }
  *model = std::move(result);
  return true;
}

// ---- RandomForest ----

std::string SerializeForest(const RandomForest& model) {
  ALEM_CHECK(model.trained());
  Writer writer;
  writer.Line("alem-forest").Line(1);
  writer.Line(model.config_.num_trees)
      .Line(model.config_.bootstrap ? 1 : 0)
      .Line(model.config_.seed);
  writer.Line(model.trees_.size());
  // Warm-refit watermark (docs/training.md), written only when the forest is
  // in the Poisson-bootstrap scheme. Readers that predate it skip straight
  // to the tree section (located by tag), so the format version stays 1.
  if (model.last_fit_count_ > 0) {
    writer.Line(std::string("warm ") + std::to_string(model.last_fit_count_));
  }
  std::string blob = writer.str();
  for (const DecisionTree& tree : model.trees_) {
    blob += SerializeTree(tree);
  }
  return blob;
}

bool DeserializeForest(const std::string& text, RandomForest* model) {
  // Split: header lines first, then concatenated tree blobs.
  std::istringstream in(text);
  std::string tag;
  int version = 0;
  std::getline(in, tag);
  if (tag != "alem-forest" || !(in >> version) || version != 1) return false;
  RandomForest result;
  int bootstrap = 0;
  size_t num_trees = 0;
  if (!(in >> result.config_.num_trees >> bootstrap >> result.config_.seed >>
        num_trees)) {
    return false;
  }
  result.config_.bootstrap = bootstrap != 0;
  if (num_trees == 0 || num_trees > 4096) return false;

  // Optional warm-refit watermark ("warm <count>"); absent in blobs written
  // before warm-start existed and after cold fits. Anything else here is the
  // tree section, found by tag below, so a failed read is not an error.
  std::string maybe_warm;
  if (in >> maybe_warm && maybe_warm == "warm") {
    if (!(in >> result.last_fit_count_)) return false;
  }

  // Find the start of the tree section and split on the tree tag.
  const std::string tree_tag = "alem-tree\n";
  size_t cursor = text.find(tree_tag);
  result.trees_.resize(num_trees);
  for (size_t t = 0; t < num_trees; ++t) {
    if (cursor == std::string::npos) return false;
    const size_t next = text.find(tree_tag, cursor + tree_tag.size());
    const std::string tree_blob =
        text.substr(cursor, next == std::string::npos ? std::string::npos
                                                      : next - cursor);
    if (!DeserializeTree(tree_blob, &result.trees_[t])) return false;
    cursor = next;
  }
  // Restore the contiguous batch-traversal arrays alongside the trees.
  result.RebuildFlatForest();
  *model = std::move(result);
  return true;
}

// ---- NeuralNetwork ----

std::string SerializeNeuralNet(const NeuralNetwork& model) {
  ALEM_CHECK(model.trained());
  Writer writer;
  writer.Line("alem-nn").Line(1);
  const NeuralNetConfig& config = model.config_;
  std::vector<int> hidden = config.hidden_sizes;
  writer.Vector(hidden);
  writer.Line(config.epochs)
      .Line(config.batch_size)
      .Line(config.learning_rate)
      .Line(config.learning_rate_decay)
      .Line(config.momentum)
      .Line(config.dropout)
      .Line(config.use_batch_norm ? 1 : 0)
      .Line(config.positive_weight_cap)
      .Line(config.seed);
  writer.Line(model.layers_.size());
  for (const auto& layer : model.layers_) {
    writer.Line(layer.in).Line(layer.out);
    writer.Vector(layer.weights);
    writer.Vector(layer.bias);
    writer.Vector(layer.gamma);
    writer.Vector(layer.beta);
    writer.Vector(layer.running_mean);
    writer.Vector(layer.running_var);
  }
  writer.Vector(model.out_weights_);
  writer.Line(model.out_bias_);
  return writer.str();
}

bool DeserializeNeuralNet(const std::string& text, NeuralNetwork* model) {
  Reader reader(text);
  int version = 0;
  if (!reader.ExpectTag("alem-nn") || !reader.Read(&version) || version != 1) {
    return false;
  }
  NeuralNetConfig config;
  if (!reader.ReadVector(&config.hidden_sizes)) return false;
  int use_batch_norm = 0;
  if (!reader.Read(&config.epochs) || !reader.Read(&config.batch_size) ||
      !reader.Read(&config.learning_rate) ||
      !reader.Read(&config.learning_rate_decay) ||
      !reader.Read(&config.momentum) || !reader.Read(&config.dropout) ||
      !reader.Read(&use_batch_norm) ||
      !reader.Read(&config.positive_weight_cap) ||
      !reader.Read(&config.seed)) {
    return false;
  }
  config.use_batch_norm = use_batch_norm != 0;

  NeuralNetwork result(config);
  size_t num_layers = 0;
  if (!reader.Read(&num_layers) || num_layers != config.hidden_sizes.size()) {
    return false;
  }
  result.layers_.resize(num_layers);
  for (auto& layer : result.layers_) {
    if (!reader.Read(&layer.in) || !reader.Read(&layer.out) ||
        !reader.ReadVector(&layer.weights) || !reader.ReadVector(&layer.bias) ||
        !reader.ReadVector(&layer.gamma) || !reader.ReadVector(&layer.beta) ||
        !reader.ReadVector(&layer.running_mean) ||
        !reader.ReadVector(&layer.running_var)) {
      return false;
    }
    if (layer.in <= 0 || layer.out <= 0 ||
        layer.weights.size() !=
            static_cast<size_t>(layer.in) * static_cast<size_t>(layer.out)) {
      return false;
    }
    // Optimizer state is not persisted; re-initialize zeroed buffers so the
    // model could be fine-tuned after loading.
    layer.v_weights.assign(layer.weights.size(), 0.0);
    layer.v_bias.assign(layer.bias.size(), 0.0);
    layer.v_gamma.assign(layer.gamma.size(), 0.0);
    layer.v_beta.assign(layer.beta.size(), 0.0);
  }
  if (!reader.ReadVector(&result.out_weights_) ||
      !reader.Read(&result.out_bias_)) {
    return false;
  }
  result.v_out_weights_.assign(result.out_weights_.size(), 0.0);
  result.v_out_bias_ = 0.0;
  *model = std::move(result);
  return true;
}

// ---- Dnf ----

std::string SerializeDnf(const Dnf& dnf) {
  Writer writer;
  writer.Line("alem-dnf").Line(1);
  writer.Line(dnf.conjunctions.size());
  for (const Conjunction& conjunction : dnf.conjunctions) {
    writer.Vector(conjunction.atoms);
  }
  return writer.str();
}

bool DeserializeDnf(const std::string& text, Dnf* dnf) {
  Reader reader(text);
  int version = 0;
  if (!reader.ExpectTag("alem-dnf") || !reader.Read(&version) ||
      version != 1) {
    return false;
  }
  Dnf result;
  size_t num_conjunctions = 0;
  if (!reader.Read(&num_conjunctions) || num_conjunctions > (1u << 20)) {
    return false;
  }
  result.conjunctions.resize(num_conjunctions);
  for (Conjunction& conjunction : result.conjunctions) {
    if (!reader.ReadVector(&conjunction.atoms)) return false;
  }
  *dnf = std::move(result);
  return true;
}

// ---- Files ----

bool SaveToFile(const std::string& path, const std::string& blob) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << blob;
  return static_cast<bool>(out);
}

bool LoadFromFile(const std::string& path, std::string* blob) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *blob = buffer.str();
  return true;
}

}  // namespace alem
