#include "blocking/minhash_lsh.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "text/tokenizer.h"
#include "util/check.h"
#include "util/rng.h"

namespace alem {
namespace internal_minhash {
namespace {

// FNV-1a over a token; stable across platforms/processes (std::hash is not).
uint64_t HashToken(const std::string& token) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : token) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

// Mixes a token hash with a slot seed (splitmix64 finalizer).
uint64_t Mix(uint64_t token_hash, uint64_t slot_seed) {
  uint64_t z = token_hash ^ slot_seed;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Unique token hashes of a record's matched columns, sorted (so the exact
// Jaccard verification can merge-intersect).
std::vector<uint64_t> RecordTokenHashes(const Table& table, size_t row,
                                        const std::vector<int>& columns) {
  std::string concatenated;
  for (const int column : columns) {
    concatenated.append(table.Value(row, static_cast<size_t>(column)));
    concatenated.push_back(' ');
  }
  std::vector<uint64_t> hashes;
  for (const std::string& token : TokenizeWords(concatenated)) {
    hashes.push_back(HashToken(token));
  }
  std::sort(hashes.begin(), hashes.end());
  hashes.erase(std::unique(hashes.begin(), hashes.end()), hashes.end());
  return hashes;
}

double SortedJaccard(const std::vector<uint64_t>& a,
                     const std::vector<uint64_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  size_t i = 0, j = 0, intersection = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++intersection;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return static_cast<double>(intersection) /
         static_cast<double>(a.size() + b.size() - intersection);
}

}  // namespace

std::vector<uint64_t> Signature(const std::vector<uint64_t>& token_hashes,
                                const std::vector<uint64_t>& slot_seeds) {
  std::vector<uint64_t> signature(slot_seeds.size(), ~0ULL);
  for (const uint64_t token : token_hashes) {
    for (size_t slot = 0; slot < slot_seeds.size(); ++slot) {
      signature[slot] = std::min(signature[slot], Mix(token, slot_seeds[slot]));
    }
  }
  return signature;
}

double CollisionProbability(double s, int num_bands, int rows_per_band) {
  return 1.0 - std::pow(1.0 - std::pow(s, rows_per_band),
                        static_cast<double>(num_bands));
}

}  // namespace internal_minhash

MinHashConfig ConfigForThreshold(double threshold, int signature_size) {
  ALEM_CHECK_GT(threshold, 0.0);
  ALEM_CHECK_LE(threshold, 1.0);
  ALEM_CHECK_GE(signature_size, 4);
  // The S-curve of (b, r) banding rises around s* ~ (1/b)^(1/r). Try all
  // factorizations of the signature budget and keep the one whose midpoint
  // is closest to the requested threshold.
  MinHashConfig best;
  double best_distance = 1e9;
  for (int rows = 1; rows <= signature_size; ++rows) {
    const int bands = signature_size / rows;
    if (bands < 1) break;
    const double midpoint =
        std::pow(1.0 / static_cast<double>(bands),
                 1.0 / static_cast<double>(rows));
    const double distance = std::abs(midpoint - threshold);
    if (distance < best_distance) {
      best_distance = distance;
      best.num_bands = bands;
      best.rows_per_band = rows;
    }
  }
  best.jaccard_threshold = threshold;
  return best;
}

std::vector<RecordPair> MinHashBlocking(const EmDataset& dataset,
                                        const MinHashConfig& config) {
  using internal_minhash::RecordTokenHashes;
  using internal_minhash::Signature;
  using internal_minhash::SortedJaccard;
  ALEM_CHECK_GE(config.num_bands, 1);
  ALEM_CHECK_GE(config.rows_per_band, 1);

  std::vector<int> left_columns;
  std::vector<int> right_columns;
  for (const MatchedColumns& mc : dataset.matched_columns) {
    left_columns.push_back(mc.left_column);
    right_columns.push_back(mc.right_column);
  }

  // Per-slot seeds.
  Rng rng(config.seed);
  const size_t slots = static_cast<size_t>(config.num_bands) *
                       static_cast<size_t>(config.rows_per_band);
  std::vector<uint64_t> slot_seeds(slots);
  for (uint64_t& seed : slot_seeds) seed = rng.Next();

  // Token hashes + signatures for both sides.
  std::vector<std::vector<uint64_t>> left_tokens(dataset.left.num_rows());
  std::vector<std::vector<uint64_t>> right_tokens(dataset.right.num_rows());
  std::vector<std::vector<uint64_t>> left_signatures(dataset.left.num_rows());
  std::vector<std::vector<uint64_t>> right_signatures(
      dataset.right.num_rows());
  for (size_t row = 0; row < dataset.left.num_rows(); ++row) {
    left_tokens[row] = RecordTokenHashes(dataset.left, row, left_columns);
    left_signatures[row] = Signature(left_tokens[row], slot_seeds);
  }
  for (size_t row = 0; row < dataset.right.num_rows(); ++row) {
    right_tokens[row] = RecordTokenHashes(dataset.right, row, right_columns);
    right_signatures[row] = Signature(right_tokens[row], slot_seeds);
  }

  // Band buckets: hash of the band's slot values -> right record ids.
  std::unordered_set<uint64_t> candidate_keys;
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
  for (int band = 0; band < config.num_bands; ++band) {
    buckets.clear();
    const size_t begin = static_cast<size_t>(band) *
                         static_cast<size_t>(config.rows_per_band);
    auto band_key = [&](const std::vector<uint64_t>& signature) {
      uint64_t key = 0x9e3779b97f4a7c15ULL ^ static_cast<uint64_t>(band);
      for (int r = 0; r < config.rows_per_band; ++r) {
        key ^= signature[begin + static_cast<size_t>(r)] + 0x9e3779b9 +
               (key << 6) + (key >> 2);
      }
      return key;
    };
    for (uint32_t row = 0; row < right_signatures.size(); ++row) {
      if (right_tokens[row].empty()) continue;
      buckets[band_key(right_signatures[row])].push_back(row);
    }
    for (uint32_t row = 0; row < left_signatures.size(); ++row) {
      if (left_tokens[row].empty()) continue;
      const auto it = buckets.find(band_key(left_signatures[row]));
      if (it == buckets.end()) continue;
      for (const uint32_t right : it->second) {
        candidate_keys.insert(PairKey(RecordPair{row, right}));
      }
    }
  }

  // Materialize, optionally verify, and sort.
  std::vector<RecordPair> pairs;
  pairs.reserve(candidate_keys.size());
  for (const uint64_t key : candidate_keys) {
    const RecordPair pair{static_cast<uint32_t>(key >> 32),
                          static_cast<uint32_t>(key & 0xffffffffu)};
    if (config.verify &&
        SortedJaccard(left_tokens[pair.left], right_tokens[pair.right]) <
            config.jaccard_threshold) {
      continue;
    }
    pairs.push_back(pair);
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const RecordPair& a, const RecordPair& b) {
              return a.left != b.left ? a.left < b.left : a.right < b.right;
            });
  return pairs;
}

}  // namespace alem
