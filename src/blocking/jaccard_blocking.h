// Offline blocking (Section 6 of the paper).
//
// The paper prunes the Cartesian product of record pairs with a Jaccard
// similarity threshold over the tokenized attributes of each pair (threshold
// 0.1875 on Abt-Buy/DBLP-ACM/DBLP-Scholar, 0.12 on Amazon-GoogleProducts,
// 0.16 on Cora and Walmart-Amazon). This module implements that step with a
// token inverted index so that only pairs sharing at least one token are
// scored, plus a brute-force reference implementation used by the tests to
// verify exact equivalence.

#ifndef ALEM_BLOCKING_JACCARD_BLOCKING_H_
#define ALEM_BLOCKING_JACCARD_BLOCKING_H_

#include <vector>

#include "data/dataset.h"

namespace alem {

struct BlockingConfig {
  // Minimum token-set Jaccard similarity for a pair to survive blocking.
  double jaccard_threshold = 0.1875;
};

// Candidate pairs whose tokenized matched-column concatenation has Jaccard
// similarity >= threshold. Output is sorted by (left, right).
std::vector<RecordPair> JaccardBlocking(const EmDataset& dataset,
                                        const BlockingConfig& config);

// O(|left| * |right|) reference implementation; identical output.
std::vector<RecordPair> JaccardBlockingBruteForce(const EmDataset& dataset,
                                                  const BlockingConfig& config);

// Prefix-filtered exact join (AllPairs/PPJoin-style): tokens are globally
// ordered by ascending document frequency and only each record's prefix
// (the first |x| - ceil(t*|x|) + 1 tokens) is indexed/probed — any pair
// with Jaccard >= t must collide on at least one prefix token, so the
// output is *identical* to JaccardBlocking while probing far fewer
// postings. Preferred for large, skewed-vocabulary tables.
std::vector<RecordPair> JaccardBlockingPrefix(const EmDataset& dataset,
                                              const BlockingConfig& config);

// Fraction of ground-truth matches retained by `pairs` (blocking recall).
double BlockingRecall(const EmDataset& dataset,
                      const std::vector<RecordPair>& pairs);

namespace internal_blocking {

// Token-set representation used by both implementations: sorted unique token
// ids of the concatenated matched columns of each record.
std::vector<std::vector<int>> TokenizeRecords(
    const Table& table, const std::vector<int>& columns);

// Jaccard over two sorted unique int vectors.
double SortedJaccard(const std::vector<int>& a, const std::vector<int>& b);

}  // namespace internal_blocking

}  // namespace alem

#endif  // ALEM_BLOCKING_JACCARD_BLOCKING_H_
