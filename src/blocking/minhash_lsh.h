// MinHash-LSH blocking: the approximate, sub-quadratic alternative to the
// exact Jaccard join.
//
// Section 5.1 of the paper contrasts its selection-time blocking with the
// LSH approach of Jain et al.; this module supplies the classic LSH
// substrate for the *offline* blocking stage: per-record MinHash signatures
// (one permutation per signature slot), banded into b bands of r rows.
// Records colliding in at least one band become candidate pairs; an
// optional verification pass removes candidates below the exact Jaccard
// threshold.
//
// With collision probability P(s) = 1 - (1 - s^r)^b for true Jaccard s, the
// (b, r) choice tunes where the S-curve rises; BandsForThreshold picks a
// configuration whose curve is steep around the requested threshold.

#ifndef ALEM_BLOCKING_MINHASH_LSH_H_
#define ALEM_BLOCKING_MINHASH_LSH_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace alem {

struct MinHashConfig {
  // Signature layout: num_bands * rows_per_band hash slots total.
  int num_bands = 16;
  int rows_per_band = 4;
  // When true, candidates are verified against the exact token-set Jaccard
  // and `jaccard_threshold` below; when false, raw band collisions are
  // returned (higher recall, lower precision, faster).
  bool verify = true;
  double jaccard_threshold = 0.1875;
  uint64_t seed = 0x5eedULL;
};

// Suggests (num_bands, rows_per_band) whose collision S-curve is centered
// near `threshold`, given a total signature budget of `signature_size`.
MinHashConfig ConfigForThreshold(double threshold, int signature_size = 64);

// Candidate pairs via banded MinHash. Output sorted by (left, right),
// deduplicated. Deterministic in config.seed.
std::vector<RecordPair> MinHashBlocking(const EmDataset& dataset,
                                        const MinHashConfig& config);

namespace internal_minhash {

// MinHash signature of a hashed-token set (one 64-bit mix per slot).
std::vector<uint64_t> Signature(const std::vector<uint64_t>& token_hashes,
                                const std::vector<uint64_t>& slot_seeds);

// Expected collision probability of a pair with Jaccard `s`.
double CollisionProbability(double s, int num_bands, int rows_per_band);

}  // namespace internal_minhash

}  // namespace alem

#endif  // ALEM_BLOCKING_MINHASH_LSH_H_
