#include "blocking/jaccard_blocking.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "obs/obs.h"
#include "obs/profile.h"
#include "text/tokenizer.h"
#include "util/check.h"

namespace alem {
namespace internal_blocking {
namespace {

// Interns tokens across both tables so records hold compact int ids.
class TokenDictionary {
 public:
  int Intern(const std::string& token) {
    const auto [it, inserted] =
        ids_.emplace(token, static_cast<int>(ids_.size()));
    (void)inserted;
    return it->second;
  }
  size_t size() const { return ids_.size(); }

 private:
  std::unordered_map<std::string, int> ids_;
};

std::vector<std::vector<int>> TokenizeWithDictionary(
    const Table& table, const std::vector<int>& columns,
    TokenDictionary* dictionary) {
  std::vector<std::vector<int>> result(table.num_rows());
  std::string concatenated;
  for (size_t row = 0; row < table.num_rows(); ++row) {
    concatenated.clear();
    for (const int column : columns) {
      concatenated.append(table.Value(row, static_cast<size_t>(column)));
      concatenated.push_back(' ');
    }
    std::vector<int>& ids = result[row];
    for (const std::string& token : TokenizeWords(concatenated)) {
      ids.push_back(dictionary->Intern(token));
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  }
  return result;
}

struct TokenizedDataset {
  std::vector<std::vector<int>> left;
  std::vector<std::vector<int>> right;
};

TokenizedDataset TokenizeDataset(const EmDataset& dataset) {
  std::vector<int> left_columns;
  std::vector<int> right_columns;
  for (const MatchedColumns& mc : dataset.matched_columns) {
    left_columns.push_back(mc.left_column);
    right_columns.push_back(mc.right_column);
  }
  TokenDictionary dictionary;
  TokenizedDataset tokenized;
  tokenized.left =
      TokenizeWithDictionary(dataset.left, left_columns, &dictionary);
  tokenized.right =
      TokenizeWithDictionary(dataset.right, right_columns, &dictionary);
  return tokenized;
}

}  // namespace

std::vector<std::vector<int>> TokenizeRecords(const Table& table,
                                              const std::vector<int>& columns) {
  TokenDictionary dictionary;
  return TokenizeWithDictionary(table, columns, &dictionary);
}

double SortedJaccard(const std::vector<int>& a, const std::vector<int>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  size_t i = 0, j = 0, intersection = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++intersection;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t unions = a.size() + b.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(unions);
}

}  // namespace internal_blocking

namespace {

// Reports the size of an offline-blocking result to the metrics registry
// and, when the producing region is being profiled (obs/profile.h), as
// that region's work items so candidate pairs/sec shows up in the
// roofline tables.
void CountCandidatePairs(size_t pairs, std::string_view region) {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("blocking.candidate_pairs");
  counter.Add(pairs);
  if (obs::profile::Region* profiled = obs::profile::ActiveRegion(region)) {
    obs::profile::AddWork(*profiled, pairs);
  }
}

}  // namespace

std::vector<RecordPair> JaccardBlocking(const EmDataset& dataset,
                                        const BlockingConfig& config) {
  obs::ObsSpan span("blocking.jaccard", "blocking");
  using internal_blocking::TokenizeDataset;
  ALEM_CHECK_GT(config.jaccard_threshold, 0.0);
  const auto tokenized = TokenizeDataset(dataset);

  // Inverted index: token id -> right-record ids containing it.
  std::unordered_map<int, std::vector<uint32_t>> index;
  for (uint32_t r = 0; r < tokenized.right.size(); ++r) {
    for (const int token : tokenized.right[r]) {
      index[token].push_back(r);
    }
  }

  std::vector<RecordPair> pairs;
  std::unordered_map<uint32_t, int> overlap;  // right id -> shared tokens.
  for (uint32_t l = 0; l < tokenized.left.size(); ++l) {
    const std::vector<int>& left_tokens = tokenized.left[l];
    if (left_tokens.empty()) continue;
    overlap.clear();
    for (const int token : left_tokens) {
      const auto it = index.find(token);
      if (it == index.end()) continue;
      for (const uint32_t r : it->second) ++overlap[r];
    }
    for (const auto& [r, shared] : overlap) {
      const size_t unions =
          left_tokens.size() + tokenized.right[r].size() -
          static_cast<size_t>(shared);
      const double jaccard =
          static_cast<double>(shared) / static_cast<double>(unions);
      if (jaccard >= config.jaccard_threshold) {
        pairs.push_back(RecordPair{l, r});
      }
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const RecordPair& a,
                                           const RecordPair& b) {
    return a.left != b.left ? a.left < b.left : a.right < b.right;
  });
  CountCandidatePairs(pairs.size(), "blocking.jaccard");
  return pairs;
}

std::vector<RecordPair> JaccardBlockingBruteForce(
    const EmDataset& dataset, const BlockingConfig& config) {
  obs::ObsSpan span("blocking.brute_force", "blocking");
  using internal_blocking::SortedJaccard;
  using internal_blocking::TokenizeDataset;
  const auto tokenized = TokenizeDataset(dataset);

  std::vector<RecordPair> pairs;
  for (uint32_t l = 0; l < tokenized.left.size(); ++l) {
    if (tokenized.left[l].empty()) continue;
    for (uint32_t r = 0; r < tokenized.right.size(); ++r) {
      if (tokenized.right[r].empty()) continue;
      if (SortedJaccard(tokenized.left[l], tokenized.right[r]) >=
          config.jaccard_threshold) {
        pairs.push_back(RecordPair{l, r});
      }
    }
  }
  return pairs;
}

std::vector<RecordPair> JaccardBlockingPrefix(const EmDataset& dataset,
                                              const BlockingConfig& config) {
  obs::ObsSpan span("blocking.prefix", "blocking");
  using internal_blocking::SortedJaccard;
  using internal_blocking::TokenizeDataset;
  ALEM_CHECK_GT(config.jaccard_threshold, 0.0);
  const double threshold = config.jaccard_threshold;
  const auto tokenized = TokenizeDataset(dataset);

  // Global document frequency of every token id, over both sides.
  std::unordered_map<int, int> document_frequency;
  for (const auto& tokens : tokenized.left) {
    for (const int token : tokens) ++document_frequency[token];
  }
  for (const auto& tokens : tokenized.right) {
    for (const int token : tokens) ++document_frequency[token];
  }

  // Per-record token lists ordered rare-first (ascending df, then id), the
  // canonical prefix-filter ordering: rare tokens concentrate candidates.
  auto frequency_order = [&](const std::vector<int>& tokens) {
    std::vector<int> ordered(tokens);
    std::sort(ordered.begin(), ordered.end(), [&](int a, int b) {
      const int fa = document_frequency.at(a);
      const int fb = document_frequency.at(b);
      return fa != fb ? fa < fb : a < b;
    });
    return ordered;
  };
  // Prefix length for Jaccard threshold t: |x| - ceil(t * |x|) + 1.
  auto prefix_length = [&](size_t size) {
    const size_t required =
        static_cast<size_t>(std::ceil(threshold * static_cast<double>(size)));
    return size - required + 1;
  };

  // Index the prefixes of the right side.
  std::unordered_map<int, std::vector<uint32_t>> index;
  std::vector<std::vector<int>> right_ordered(tokenized.right.size());
  for (uint32_t row = 0; row < tokenized.right.size(); ++row) {
    if (tokenized.right[row].empty()) continue;
    right_ordered[row] = frequency_order(tokenized.right[row]);
    const size_t prefix = prefix_length(right_ordered[row].size());
    for (size_t i = 0; i < prefix; ++i) {
      index[right_ordered[row][i]].push_back(row);
    }
  }

  // Probe with the prefixes of the left side, then verify exactly.
  std::vector<RecordPair> pairs;
  std::unordered_set<uint32_t> candidates;
  for (uint32_t left = 0; left < tokenized.left.size(); ++left) {
    const std::vector<int>& left_tokens = tokenized.left[left];
    if (left_tokens.empty()) continue;
    const std::vector<int> ordered = frequency_order(left_tokens);
    const size_t prefix = prefix_length(ordered.size());
    candidates.clear();
    for (size_t i = 0; i < prefix; ++i) {
      const auto it = index.find(ordered[i]);
      if (it == index.end()) continue;
      for (const uint32_t right : it->second) candidates.insert(right);
    }
    for (const uint32_t right : candidates) {
      if (SortedJaccard(left_tokens, tokenized.right[right]) >= threshold) {
        pairs.push_back(RecordPair{left, right});
      }
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const RecordPair& a, const RecordPair& b) {
              return a.left != b.left ? a.left < b.left : a.right < b.right;
            });
  return pairs;
}

double BlockingRecall(const EmDataset& dataset,
                      const std::vector<RecordPair>& pairs) {
  if (dataset.truth.num_matches() == 0) return 1.0;
  size_t retained = 0;
  for (const RecordPair& pair : pairs) {
    if (dataset.truth.IsMatch(pair)) ++retained;
  }
  return static_cast<double>(retained) /
         static_cast<double>(dataset.truth.num_matches());
}

}  // namespace alem
