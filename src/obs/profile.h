// Per-region hardware-counter profiling and work/throughput accounting —
// the "roofline" layer (docs/observability.md, "Profiling").
//
// Two halves, combined per named region:
//
//  (a) Hardware counters. On Linux, a grouped perf_event_open set (cycles,
//      instructions, cache references/misses, branch misses) is opened per
//      thread and read around each profiled region, so the report can show
//      IPC and miss rates. Worker threads contribute through the hook in
//      parallel::ParallelFor, so parallel regions attribute correctly.
//      Graceful degradation is part of the contract: when perf_event_open
//      is unavailable (containers, perf_event_paranoid, non-Linux, or
//      ALEM_PROFILE_DISABLE_HW=1) the HW half silently disables and
//      HwAvailability() reports "unavailable" — everything else keeps
//      working.
//  (b) Work counters. Code that already knows its workload reports it:
//      SimilarityFunction::EvaluateBatch adds pairs and bytes, the batch
//      learners add rows, bytes, and closed-form FLOPs, blocking adds
//      candidate pairs. Dividing by the region's accumulated wall seconds
//      yields pairs/s, GB/s, and FLOP/s per region.
//
// Profiling is opt-in (--profile-regions / ALEM_PROFILE_REGIONS) against a
// region allowlist, defaulting to the curated hot set in kDefaultRegions.
// When disabled, every instrumentation site costs one relaxed atomic load
// and a predicted branch: no clocks, no syscalls, no metric writes — the
// golden-baseline replays at --counter-tol=0 are unaffected.
//
// Region wall time comes from two sources that never overlap:
//   * ScopedWork at the batch call sites ("sim.batch", "ml.batch") — these
//     run on the calling thread even when ParallelFor fans the body out,
//     so the scope covers the whole batch including the fan-out wait;
//   * the ObsSpan hooks (SpanOpen/SpanClose) for pure span regions
//     ("selector.scoring", "harness.featurize", "loop.evaluate").
// Pool workers add only HW deltas (ScopedHwSample), never seconds, so a
// region's throughput is always work / caller-observed wall time.

#ifndef ALEM_OBS_PROFILE_H_
#define ALEM_OBS_PROFILE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace alem {
namespace obs {
namespace profile {

// Number of hardware events in the perf group, in HwEvent order.
inline constexpr int kNumHwEvents = 5;
enum HwEvent {
  kCycles = 0,
  kInstructions = 1,
  kCacheReferences = 2,
  kCacheMisses = 3,
  kBranchMisses = 4,
};

// The curated hot set used when --profile-regions / ALEM_PROFILE_REGIONS is
// given without a value.
inline constexpr std::string_view kDefaultRegions =
    "sim.batch,ml.batch,selector.scoring,harness.featurize,loop.evaluate";

namespace detail {
extern std::atomic<bool> g_profile_enabled;
}  // namespace detail

// One profiled region's accumulators. Stable address for the process
// lifetime (the registry leaks its nodes), so call sites may cache the
// reference in a function-local static. All fields are plain atomics so
// pool workers and the caller thread accumulate without locks.
struct Region {
  explicit Region(std::string name) : name(std::move(name)) {}
  const std::string name;
  // True iff profiling is enabled AND this region is on the allowlist —
  // the single fast-path gate every instrumentation site checks.
  std::atomic<bool> active{false};
  std::atomic<uint64_t> spans{0};  // Completed ScopedWork / span closures.
  std::atomic<uint64_t> nanos{0};  // Caller-observed wall time.
  std::atomic<uint64_t> items{0};
  std::atomic<uint64_t> bytes{0};
  std::atomic<uint64_t> flops{0};
  std::atomic<uint64_t> hw[kNumHwEvents] = {};
};

// Returns the stable accumulator for `name`, creating it inactive on first
// use. Never returns null; never invalidated.
Region& GetRegion(std::string_view name);

// Returns &GetRegion(name) when that region is currently being profiled,
// nullptr otherwise (including whenever profiling is globally off) —
// without creating regions as a side effect.
Region* ActiveRegion(std::string_view name);

// True when profiling is on (some allowlist is active).
inline bool Enabled() {
  return detail::g_profile_enabled.load(std::memory_order_relaxed);
}

// Turns profiling on for the comma-separated region list (whitespace
// ignored; empty string selects kDefaultRegions), clearing any previously
// accumulated stats. Hardware-counter availability is resolved lazily on
// the first region entered per thread.
void Enable(std::string_view regions_csv);

// Turns profiling off and deactivates every region. Accumulated stats are
// kept until the next Enable() so reports built after the run still see
// them.
void Disable();

// Zeroes every region's accumulators (test isolation).
void ResetStats();

// Region names currently allowlisted, in Enable() order; empty when off.
std::vector<std::string> EnabledRegions();

// "available" once any thread has successfully opened its perf group,
// "unavailable" once an open has failed (or ALEM_PROFILE_DISABLE_HW=1, or
// non-Linux), "untried" before either. Stamped into the report's
// profile.hw field (where "untried" degrades to "unavailable": no region
// was ever entered, so no counters exist either way).
std::string_view HwAvailability();

// Raw grouped-counter reading plus the enable/run times needed to scale
// multiplexed deltas. valid=false when this thread has no working group.
struct HwReading {
  bool valid = false;
  uint64_t time_enabled = 0;
  uint64_t time_running = 0;
  uint64_t raw[kNumHwEvents] = {};
};

// Reads this thread's perf group (opening it on first use). Returns a
// reading with valid=false when hardware counters are unavailable.
HwReading ReadHw();

// Accumulates the scaled delta end-start into region->hw. No-op when
// either reading is invalid or region is null.
void AccumulateHwDelta(Region* region, const HwReading& start,
                       const HwReading& end);

// Adds explicit work to a region. The caller is expected to have checked
// region.active (or hold a ScopedWork); adding to an inactive region is
// harmless but wasted.
inline void AddWork(Region& region, uint64_t items, uint64_t bytes = 0,
                    uint64_t flops = 0) {
  if (items) region.items.fetch_add(items, std::memory_order_relaxed);
  if (bytes) region.bytes.fetch_add(bytes, std::memory_order_relaxed);
  if (flops) region.flops.fetch_add(flops, std::memory_order_relaxed);
}

// RAII wall-time + caller-thread HW sample + work for one region entry.
// Constructed against the cached Region& of a batch call site; engages
// only while that region is actively profiled, otherwise every member is a
// no-op after one relaxed load.
class ScopedWork {
 public:
  explicit ScopedWork(Region& region);
  ~ScopedWork();

  ScopedWork(const ScopedWork&) = delete;
  ScopedWork& operator=(const ScopedWork&) = delete;

  bool engaged() const { return region_ != nullptr; }

  void Add(uint64_t items, uint64_t bytes = 0, uint64_t flops = 0) {
    if (region_ != nullptr) AddWork(*region_, items, bytes, flops);
  }

 private:
  Region* region_ = nullptr;
  uint64_t start_ns_ = 0;
  HwReading hw_start_;
};

// RAII HW-only sampler for pool worker chunks: adds this worker thread's
// counter deltas to the region resolved by ParallelFor before the fan-out,
// without touching the region's wall time (the submitting thread's
// ScopedWork / span already covers it). Null region = no-op.
class ScopedHwSample {
 public:
  explicit ScopedHwSample(Region* region);
  ~ScopedHwSample();

  ScopedHwSample(const ScopedHwSample&) = delete;
  ScopedHwSample& operator=(const ScopedHwSample&) = delete;

 private:
  Region* region_ = nullptr;
  HwReading hw_start_;
};

// ObsSpan integration (obs.cc). SpanOpen pushes a per-thread frame (HW
// reading) when `name` is an actively profiled region and returns true so
// the span marks itself profiled; SpanClose pops the frame and accumulates
// duration + HW delta. Frames are strictly LIFO per thread because spans
// are RAII.
bool SpanOpen(std::string_view name);
void SpanClose(std::string_view name, uint64_t duration_ns);

// Snapshot for report stamping and tests. Regions appear in allowlist
// order; regions never entered still appear (zero counters) so a profiled
// run always reports every allowlisted region.
struct RegionSnapshot {
  std::string name;
  uint64_t spans = 0;
  double seconds = 0.0;
  uint64_t items = 0;
  uint64_t bytes = 0;
  uint64_t flops = 0;
  uint64_t hw[kNumHwEvents] = {};
};

struct Snapshot {
  std::string hw;  // "available" or "unavailable".
  std::vector<RegionSnapshot> regions;
};

Snapshot TakeSnapshot();

}  // namespace profile
}  // namespace obs
}  // namespace alem

#endif  // ALEM_OBS_PROFILE_H_
