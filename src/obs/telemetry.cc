#include "obs/telemetry.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace alem {
namespace obs {

namespace {

struct ProbeList {
  std::mutex mutex;
  std::vector<std::pair<std::string, std::function<double()>>> probes;
};

ProbeList& Probes() {
  static ProbeList* probes = new ProbeList();
  return *probes;
}

}  // namespace

void RegisterTelemetryProbe(std::string name, std::function<double()> probe) {
  ProbeList& list = Probes();
  std::lock_guard<std::mutex> lock(list.mutex);
  list.probes.emplace_back(std::move(name), std::move(probe));
}

TelemetrySampler& TelemetrySampler::Global() {
  static TelemetrySampler* sampler = new TelemetrySampler();
  return *sampler;
}

void TelemetrySampler::SampleOnce() {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.RecordCounter("telemetry.rss_mib",
                         static_cast<double>(CurrentRssBytes()) /
                             (1024.0 * 1024.0));
  recorder.RecordCounter(
      "telemetry.predict_calls",
      static_cast<double>(
          detail::g_predict_calls.load(std::memory_order_relaxed)));
  // Cached references: GetCounter registers on first use and the returned
  // reference stays valid for the process lifetime.
  static Counter& cache_hits =
      MetricsRegistry::Global().GetCounter("featurize.cache.hit");
  static Counter& cache_misses =
      MetricsRegistry::Global().GetCounter("featurize.cache.miss");
  recorder.RecordCounter("telemetry.cache_hits",
                         static_cast<double>(cache_hits.value()));
  recorder.RecordCounter("telemetry.cache_misses",
                         static_cast<double>(cache_misses.value()));

  ProbeList& list = Probes();
  std::lock_guard<std::mutex> lock(list.mutex);
  for (const auto& [name, probe] : list.probes) {
    recorder.RecordCounter(name, probe());
  }
  samples_.fetch_add(1, std::memory_order_relaxed);
}

void TelemetrySampler::Loop(double hz) {
  const auto period = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(1.0 / hz));
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    lock.unlock();
    SampleOnce();
    lock.lock();
    cv_.wait_for(lock, period, [&] { return stop_requested_; });
  }
}

bool TelemetrySampler::Start(double hz) {
  if (hz <= 0.0) return false;
  hz = std::min(1000.0, std::max(0.1, hz));
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_.load(std::memory_order_relaxed)) return false;
  stop_requested_ = false;
  samples_.store(0, std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this, hz] { Loop(hz); });
  return true;
}

void TelemetrySampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_.load(std::memory_order_relaxed)) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  // One final sample so the series extends to the end of the run even at
  // low sampling rates.
  SampleOnce();
  running_.store(false, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace alem
