// RunReport — the flight recorder for one process / one active-learning
// run. Everything a perf or parity claim needs lands in a single JSON
// artifact: the configuration and git build stamp, the per-iteration
// learning curve (progressive/holdout F1 plus the committee-creation vs.
// example-scoring vs. train latency split the paper plots in Figs. 8-13),
// the key metric counters, a span self-time rollup, and process totals
// (wall clock, peak RSS).
//
// Producers:
//   * alem_cli run --report=PATH          one "run"-kind report per run
//   * bench binaries + ALEM_REPORT_DIR    one "bench"-kind report per
//                                         process (counters + spans +
//                                         process totals; no curve)
// Consumers:
//   * tools/alem_report                   show / compare / diff / check /
//                                         aggregate (BENCH_alembench.json)
//   * tools/trace_summary.py --check      schema validation
//   * CheckReports() below                the regression gate ctest runs
//                                         against the golden baseline
//
// The JSON layout (schema_version 1):
//   { "schema_version": 1, "kind": "run"|"bench", "tool": ..., "build": ...,
//     "config":  { dataset, approach, data_seed, run_seed, scale, threads,
//                  seed_size, batch_size, max_labels, oracle_noise, holdout,
//                  cache, kernel_backend, session, session_resumes,
//                  warm_start },
//     "curve":   [ { iteration, labels_used, precision, recall, f1,
//                    train_seconds, evaluate_seconds, select_seconds,
//                    committee_seconds, scoring_seconds, label_seconds,
//                    wait_seconds, scored_examples, pruned_examples,
//                    dnf_atoms, tree_depth, ensemble_size }, ... ],
//     "summary": { iterations, best_f1, final_f1, labels_to_converge,
//                  total_wait_seconds, ensemble_accepted },
//     "counters": { name: value, ... },
//     "gauges":   { name: value, ... },
//     "latency": [ { name, count, sum_seconds, p50_seconds, p95_seconds,
//                    p99_seconds }, ... ],
//     "spans":   [ { name, count, total_seconds, self_seconds }, ... ],
//     "pool":    { workers, busy_seconds, idle_seconds, queue_wait_seconds,
//                  worker_wall_seconds, utilization,
//                  regions: [ { name, runs, chunks, min_chunk_seconds,
//                               max_chunk_seconds, mean_chunk_seconds,
//                               utilization }, ... ] },
//     "profile": { hw: "available"|"unavailable",
//                  regions: [ { name, spans, seconds, items, bytes, flops,
//                               cycles, instructions, cache_refs,
//                               cache_misses, branch_misses, items_per_sec,
//                               bytes_per_sec, flops_per_sec, ipc }, ... ] },
//     "process": { wall_seconds, peak_rss_bytes } }
// "curve"/"summary" are required for kind "run", optional for "bench".
// "latency" (per-region tail percentiles from the lat.* histograms),
// "pool" (thread-pool utilization; only present when the pool engaged, so
// threads=1 reports are unchanged), and "profile" (roofline throughput and
// hardware counters; only present when --profile-regions profiling ran)
// are optional on parse like config.cache, config.kernel_backend, and
// config.session/session_resumes, keeping schema v1 backward compatible.
// Doubles are written with %.17g so a parse-back is bit-identical — the
// determinism gate (--exact-curve) depends on this.

#ifndef ALEM_OBS_REPORT_H_
#define ALEM_OBS_REPORT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace alem {
namespace obs {

inline constexpr int kReportSchemaVersion = 1;

// One learning-curve point; mirrors IterationStats field for field (core
// translates — obs stays dependency-free below core).
struct ReportIteration {
  uint64_t iteration = 0;
  uint64_t labels_used = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double train_seconds = 0.0;
  double evaluate_seconds = 0.0;
  double select_seconds = 0.0;
  double committee_seconds = 0.0;
  double scoring_seconds = 0.0;
  double label_seconds = 0.0;
  double wait_seconds = 0.0;
  uint64_t scored_examples = 0;
  uint64_t pruned_examples = 0;
  uint64_t dnf_atoms = 0;
  int tree_depth = 0;
  uint64_t ensemble_size = 0;
};

// Per-span-name aggregate: total wall time and self time (total minus the
// time of spans nested inside it on the same thread).
struct SpanRollupEntry {
  std::string name;
  uint64_t count = 0;
  double total_seconds = 0.0;
  double self_seconds = 0.0;
};

// Tail-latency percentiles of one span region, estimated from its
// "lat.<name>" histogram (`name` here is the region without the prefix).
struct LatencyEntry {
  std::string name;
  uint64_t count = 0;
  double sum_seconds = 0.0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
};

// Chunk-imbalance stats for one ParallelFor region (parallel/pool.h).
struct PoolRegionStats {
  std::string name;
  uint64_t runs = 0;
  uint64_t chunks = 0;
  double min_chunk_seconds = 0.0;
  double max_chunk_seconds = 0.0;
  double mean_chunk_seconds = 0.0;
  double utilization = 0.0;  // busy / (workers × region wall)
};

// Thread-pool utilization totals; busy + idle + queue_wait ≈ worker_wall.
struct PoolStats {
  int workers = 0;
  double busy_seconds = 0.0;
  double idle_seconds = 0.0;
  double queue_wait_seconds = 0.0;
  double worker_wall_seconds = 0.0;
  double utilization = 0.0;  // busy / worker_wall
  std::vector<PoolRegionStats> regions;
};

// One profiled region's roofline accounting (obs/profile.h): explicit work
// counters, caller-observed wall seconds, hardware counters aggregated
// across the caller and every pool worker, and the derived throughputs
// (work / seconds) and IPC (instructions / cycles). Hardware fields are 0
// when profile.hw is "unavailable".
struct ProfileRegionStats {
  std::string name;
  uint64_t spans = 0;
  double seconds = 0.0;
  uint64_t items = 0;
  uint64_t bytes = 0;
  uint64_t flops = 0;
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t cache_refs = 0;
  uint64_t cache_misses = 0;
  uint64_t branch_misses = 0;
  double items_per_sec = 0.0;
  double bytes_per_sec = 0.0;
  double flops_per_sec = 0.0;
  double ipc = 0.0;
};

// The optional "profile" section: hardware-counter availability plus one
// entry per allowlisted region, in allowlist order.
struct ProfileStats {
  std::string hw = "unavailable";  // "available" or "unavailable"
  std::vector<ProfileRegionStats> regions;
};

struct RunReport {
  int schema_version = kReportSchemaVersion;
  std::string kind = "run";  // "run" or "bench"
  std::string tool;          // "alem_cli" or the bench artifact name
  std::string build;         // git describe, baked in at configure time

  // config
  std::string dataset;
  std::string approach;
  uint64_t data_seed = 0;
  uint64_t run_seed = 0;
  double scale = 1.0;
  int threads = 1;
  uint64_t seed_size = 0;
  uint64_t batch_size = 0;
  uint64_t max_labels = 0;
  double oracle_noise = 0.0;
  bool holdout = false;
  // Feature-cache provenance: "off" (caching disabled), "miss" (computed
  // and stored), or "hit" (loaded from ALEM_CACHE_DIR). Optional on parse
  // so pre-cache reports stay loadable; defaults to "off".
  std::string cache = "off";
  // SIMD kernel backend the run executed with ("scalar", "avx2"; see
  // src/kernels/backend.h). Optional on parse so pre-kernel reports stay
  // loadable; defaults to "scalar".
  std::string kernel_backend = "scalar";
  // Labeling-session provenance: "fresh" (uninterrupted run) or "resumed"
  // (continued from an ALSS snapshot; session_resumes counts the restores).
  // Optional on parse so pre-session reports stay loadable
  // (docs/sessions.md).
  std::string session = "fresh";
  uint64_t session_resumes = 0;
  // Incremental training + evaluation engine mode the run executed with
  // ("off", "on", "auto"; docs/training.md). Optional on parse so
  // pre-warm-start reports stay loadable; defaults to "off".
  std::string warm_start = "off";

  // curve + summary (required for kind "run")
  std::vector<ReportIteration> curve;
  double best_f1 = 0.0;
  double final_f1 = 0.0;
  uint64_t labels_to_converge = 0;
  double total_wait_seconds = 0.0;
  uint64_t ensemble_accepted = 0;

  // observability rollups
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<SpanRollupEntry> spans;
  // Per-region tail latency, sorted by name (empty = section absent).
  std::vector<LatencyEntry> latency;
  // Thread-pool utilization; only serialized when has_pool (pool engaged).
  bool has_pool = false;
  PoolStats pool;
  // Roofline profile; only serialized when has_profile (profiling ran).
  bool has_profile = false;
  ProfileStats profile;

  // process totals
  double wall_seconds = 0.0;
  uint64_t peak_rss_bytes = 0;

  // Counter lookup; returns `missing` when absent.
  uint64_t CounterOr(std::string_view name, uint64_t missing = 0) const;
};

// The compile-time git identity ("unknown" without git metadata).
const char* BuildStamp();

// Aggregates span records into per-name (count, total, self) rows, sorted
// by self time descending. Self time subtracts the duration of spans
// nested inside a span on the same thread (containment by [start, end]).
std::vector<SpanRollupEntry> SelfTimeRollup(
    const std::vector<SpanRecord>& records);

// Fills the observability sections of a report from the global registries:
// counter/gauge snapshot, span self-time rollup, per-region latency
// percentiles (from the lat.* histograms), and peak RSS (also published as
// the `process.peak_rss_bytes` gauge). Call parallel::StampPoolProfile
// first so its parallel.* gauges land in the same snapshot.
void StampObservability(RunReport* report);

std::string ReportToJson(const RunReport& report);

// Parses and schema-validates a report. Missing required fields, a wrong
// schema version, or malformed JSON fail with a message in *error.
bool ParseReportJson(std::string_view text, RunReport* report,
                     std::string* error);

bool WriteReportJson(const std::string& path, const RunReport& report);
bool LoadReportFile(const std::string& path, RunReport* report,
                    std::string* error);

// ---- Regression gate --------------------------------------------------

struct ReportCheckOptions {
  // Candidate F1 (final and best) may trail the baseline by at most this
  // much; improvements always pass.
  double f1_tol = 0.02;
  // When >= 0, candidate total_wait_seconds and wall_seconds must stay
  // within baseline * (1 + latency_tol) + 10ms grace. Off by default:
  // wall-clock gates need a quiet, comparable machine.
  double latency_tol = -1.0;
  // When >= 0, every baseline counter must exist in the candidate with a
  // relative difference of at most counter_tol.
  double counter_tol = -1.0;
  // When >= 0, every latency region present in BOTH reports must keep its
  // candidate p95 within baseline * (1 + latency_p95_tol) + 10ms grace.
  // Regions on only one side are skipped: thread-count changes add or
  // remove parallel regions structurally. Off by default (wall-clock gate).
  double latency_p95_tol = -1.0;
  // When >= 0, every profile region present in BOTH reports with a
  // positive items/sec on both sides must keep its candidate throughput at
  // or above baseline * (1 - throughput_tol); regressions beyond that
  // fail. Silently skipped when either report lacks a profile section (the
  // CLI prints an explicit skip notice). Off by default: throughput gates
  // need a quiet, comparable machine.
  double throughput_tol = -1.0;
  // Require the curves to be bit-identical (lengths, labels_used, f1) —
  // the determinism contract across thread counts.
  bool exact_curve = false;
};

// Compares a candidate report against a baseline; returns human-readable
// failure strings (empty = gate passes). Both "run"-kind reports must
// carry nonzero oracle.queries / selector.scored_examples counters.
std::vector<std::string> CheckReports(const RunReport& baseline,
                                      const RunReport& candidate,
                                      const ReportCheckOptions& options);

}  // namespace obs
}  // namespace alem

#endif  // ALEM_OBS_REPORT_H_
