#include "obs/profile.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <utility>

#include "obs/telemetry.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace alem {
namespace obs {
namespace profile {

namespace detail {
std::atomic<bool> g_profile_enabled{false};
}  // namespace detail

namespace {

uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---- Region registry ---------------------------------------------------

struct Registry {
  std::mutex mutex;
  // Node pointers are leaked deliberately: call sites cache Region& in
  // function-local statics, so addresses must stay valid for the process
  // lifetime (same pattern as MetricsRegistry).
  std::vector<Region*> regions;
  // Allowlist order of the current Enable() call.
  std::vector<Region*> enabled_order;
  // Regions that already registered their telemetry items probe.
  std::vector<Region*> probed;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

Region* FindLocked(Registry& registry, std::string_view name) {
  for (Region* region : registry.regions) {
    if (region->name == name) return region;
  }
  return nullptr;
}

Region& GetRegionLocked(Registry& registry, std::string_view name) {
  if (Region* region = FindLocked(registry, name)) return *region;
  registry.regions.push_back(new Region(std::string(name)));
  return *registry.regions.back();
}

void ResetRegionLocked(Region& region) {
  region.spans.store(0, std::memory_order_relaxed);
  region.nanos.store(0, std::memory_order_relaxed);
  region.items.store(0, std::memory_order_relaxed);
  region.bytes.store(0, std::memory_order_relaxed);
  region.flops.store(0, std::memory_order_relaxed);
  for (int e = 0; e < kNumHwEvents; ++e) {
    region.hw[e].store(0, std::memory_order_relaxed);
  }
}

// Splits "a, b,c" into trimmed non-empty tokens.
std::vector<std::string> SplitCsv(std::string_view csv) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t end = csv.find(',', start);
    if (end == std::string_view::npos) end = csv.size();
    std::string_view token = csv.substr(start, end - start);
    while (!token.empty() && (token.front() == ' ' || token.front() == '\t')) {
      token.remove_prefix(1);
    }
    while (!token.empty() && (token.back() == ' ' || token.back() == '\t')) {
      token.remove_suffix(1);
    }
    if (!token.empty()) out.emplace_back(token);
    if (end == csv.size()) break;
    start = end + 1;
  }
  return out;
}

// ---- Hardware counters (Linux perf_event_open) -------------------------
//
// Tri-state availability resolved once, process-wide, on the first ReadHw:
// 0 = untried, 1 = available, 2 = unavailable. Each thread then owns its
// own counter group (pid=0, cpu=-1), opened lazily and closed by the
// thread_local destructor. Counting is per-thread, so worker contributions
// are attributed exactly — the "ThreadPool accounting" half of the design.
std::atomic<int> g_hw_state{0};

#if defined(__linux__)

constexpr uint64_t kHwEventConfigs[kNumHwEvents] = {
    PERF_COUNT_HW_CPU_CYCLES,       PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_REFERENCES, PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_MISSES,
};

struct ThreadPerfGroup {
  int fds[kNumHwEvents] = {-1, -1, -1, -1, -1};
  bool tried = false;
  bool open = false;

  ~ThreadPerfGroup() { CloseAll(); }

  void CloseAll() {
    for (int& fd : fds) {
      if (fd >= 0) close(fd);
      fd = -1;
    }
    open = false;
  }

  // Opens the grouped counter set for this thread. Any failure closes
  // everything and reports false.
  bool Open() {
    tried = true;
    perf_event_attr attr;
    for (int e = 0; e < kNumHwEvents; ++e) {
      std::memset(&attr, 0, sizeof(attr));
      attr.type = PERF_TYPE_HARDWARE;
      attr.size = sizeof(attr);
      attr.config = kHwEventConfigs[e];
      attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                         PERF_FORMAT_TOTAL_TIME_RUNNING;
      attr.disabled = (e == 0) ? 1 : 0;  // Group starts with the leader.
      attr.exclude_kernel = 1;           // Works at perf_event_paranoid<=2.
      attr.exclude_hv = 1;
      const int group_fd = (e == 0) ? -1 : fds[0];
      const long fd = syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                              /*cpu=*/-1, group_fd, /*flags=*/0UL);
      if (fd < 0) {
        CloseAll();
        return false;
      }
      fds[e] = static_cast<int>(fd);
    }
    if (ioctl(fds[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP) != 0 ||
        ioctl(fds[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
      CloseAll();
      return false;
    }
    open = true;
    return true;
  }

  // One read() returns the whole group:
  //   u64 nr; u64 time_enabled; u64 time_running; u64 values[nr];
  bool Read(HwReading* out) {
    if (!open) return false;
    uint64_t buffer[3 + kNumHwEvents];
    const ssize_t n = read(fds[0], buffer, sizeof(buffer));
    if (n != static_cast<ssize_t>(sizeof(buffer)) ||
        buffer[0] != static_cast<uint64_t>(kNumHwEvents)) {
      return false;
    }
    out->time_enabled = buffer[1];
    out->time_running = buffer[2];
    for (int e = 0; e < kNumHwEvents; ++e) out->raw[e] = buffer[3 + e];
    out->valid = true;
    return true;
  }
};

ThreadPerfGroup& ThisThreadGroup() {
  thread_local ThreadPerfGroup group;
  return group;
}

// Resolves process-wide availability (first caller tries an open).
bool HwAvailable() {
  int state = g_hw_state.load(std::memory_order_acquire);
  if (state == 0) {
    const char* disable = std::getenv("ALEM_PROFILE_DISABLE_HW");
    if (disable != nullptr && disable[0] != '\0' &&
        !(disable[0] == '0' && disable[1] == '\0')) {
      state = 2;
    } else {
      ThreadPerfGroup& group = ThisThreadGroup();
      state = group.Open() ? 1 : 2;
    }
    g_hw_state.store(state, std::memory_order_release);
  }
  return state == 1;
}

#else  // !__linux__

bool HwAvailable() {
  g_hw_state.store(2, std::memory_order_release);
  return false;
}

#endif  // __linux__

}  // namespace

Region& GetRegion(std::string_view name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  return GetRegionLocked(registry, name);
}

Region* ActiveRegion(std::string_view name) {
  if (!Enabled()) return nullptr;
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  Region* region = FindLocked(registry, name);
  if (region == nullptr || !region->active.load(std::memory_order_relaxed)) {
    return nullptr;
  }
  return region;
}

void Enable(std::string_view regions_csv) {
  std::vector<std::string> names =
      SplitCsv(regions_csv.empty() ? kDefaultRegions : regions_csv);
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (Region* region : registry.regions) {
    region->active.store(false, std::memory_order_relaxed);
    ResetRegionLocked(*region);
  }
  registry.enabled_order.clear();
  for (const std::string& name : names) {
    Region& region = GetRegionLocked(registry, name);
    ResetRegionLocked(region);
    if (std::find(registry.enabled_order.begin(),
                  registry.enabled_order.end(),
                  &region) != registry.enabled_order.end()) {
      continue;  // Duplicate name in the CSV.
    }
    registry.enabled_order.push_back(&region);
    region.active.store(true, std::memory_order_relaxed);
    // One cumulative Chrome-trace counter series per profiled region,
    // sampled by the telemetry thread (obs/telemetry.h). Probes are
    // process-lifetime, so register each region's at most once.
    if (std::find(registry.probed.begin(), registry.probed.end(), &region) ==
        registry.probed.end()) {
      registry.probed.push_back(&region);
      RegisterTelemetryProbe(
          "telemetry.profile." + region.name + ".items", [&region] {
            return static_cast<double>(
                region.items.load(std::memory_order_relaxed));
          });
    }
  }
  detail::g_profile_enabled.store(true, std::memory_order_release);
}

void Disable() {
  detail::g_profile_enabled.store(false, std::memory_order_release);
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (Region* region : registry.regions) {
    region->active.store(false, std::memory_order_relaxed);
  }
}

void ResetStats() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (Region* region : registry.regions) ResetRegionLocked(*region);
}

std::vector<std::string> EnabledRegions() {
  std::vector<std::string> names;
  if (!Enabled()) return names;
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  names.reserve(registry.enabled_order.size());
  for (const Region* region : registry.enabled_order) {
    names.push_back(region->name);
  }
  return names;
}

std::string_view HwAvailability() {
  switch (g_hw_state.load(std::memory_order_acquire)) {
    case 1:
      return "available";
    case 2:
      return "unavailable";
    default:
      return "untried";
  }
}

HwReading ReadHw() {
  HwReading reading;
#if defined(__linux__)
  if (!HwAvailable()) return reading;
  ThreadPerfGroup& group = ThisThreadGroup();
  if (!group.open && !group.tried) group.Open();
  group.Read(&reading);
#endif
  return reading;
}

void AccumulateHwDelta(Region* region, const HwReading& start,
                       const HwReading& end) {
  if (region == nullptr || !start.valid || !end.valid) return;
  // Scale the raw deltas by the multiplexing ratio over this window, the
  // standard enabled/running correction for grouped counters that shared
  // the PMU with other groups.
  double scale = 1.0;
  if (end.time_running > start.time_running) {
    scale = static_cast<double>(end.time_enabled - start.time_enabled) /
            static_cast<double>(end.time_running - start.time_running);
  }
  for (int e = 0; e < kNumHwEvents; ++e) {
    if (end.raw[e] <= start.raw[e]) continue;
    const double delta =
        static_cast<double>(end.raw[e] - start.raw[e]) * scale;
    region->hw[e].fetch_add(static_cast<uint64_t>(delta),
                            std::memory_order_relaxed);
  }
}

// ---- ScopedWork / ScopedHwSample ---------------------------------------

ScopedWork::ScopedWork(Region& region) {
  if (!region.active.load(std::memory_order_relaxed)) return;
  region_ = &region;
  start_ns_ = MonotonicNanos();
  hw_start_ = ReadHw();
}

ScopedWork::~ScopedWork() {
  if (region_ == nullptr) return;
  const uint64_t duration = MonotonicNanos() - start_ns_;
  AccumulateHwDelta(region_, hw_start_, ReadHw());
  region_->nanos.fetch_add(duration, std::memory_order_relaxed);
  region_->spans.fetch_add(1, std::memory_order_relaxed);
}

ScopedHwSample::ScopedHwSample(Region* region) {
  if (region == nullptr || !region->active.load(std::memory_order_relaxed)) {
    return;
  }
  region_ = region;
  hw_start_ = ReadHw();
}

ScopedHwSample::~ScopedHwSample() {
  if (region_ == nullptr) return;
  AccumulateHwDelta(region_, hw_start_, ReadHw());
}

// ---- ObsSpan hooks -----------------------------------------------------
//
// Spans are RAII, so open/close pairs are strictly LIFO per thread; a
// small thread_local frame stack carries the HW reading from SpanOpen to
// the matching SpanClose. ObsSpan only calls SpanClose when SpanOpen
// returned true (its profiled_ flag), so the stack never underflows.

namespace {

struct SpanFrame {
  Region* region;
  HwReading hw_start;
};

std::vector<SpanFrame>& ThisThreadFrames() {
  thread_local std::vector<SpanFrame> frames;
  return frames;
}

}  // namespace

bool SpanOpen(std::string_view name) {
  Region* region = ActiveRegion(name);
  if (region == nullptr) return false;
  ThisThreadFrames().push_back(SpanFrame{region, ReadHw()});
  return true;
}

void SpanClose(std::string_view name, uint64_t duration_ns) {
  std::vector<SpanFrame>& frames = ThisThreadFrames();
  if (frames.empty()) return;  // Defensive; cannot happen via ObsSpan.
  SpanFrame frame = frames.back();
  frames.pop_back();
  if (frame.region->name != name) return;  // Defensive mismatch guard.
  AccumulateHwDelta(frame.region, frame.hw_start, ReadHw());
  frame.region->nanos.fetch_add(duration_ns, std::memory_order_relaxed);
  frame.region->spans.fetch_add(1, std::memory_order_relaxed);
}

// ---- Snapshot ----------------------------------------------------------

Snapshot TakeSnapshot() {
  Snapshot snapshot;
  snapshot.hw = HwAvailability() == "available" ? "available" : "unavailable";
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  snapshot.regions.reserve(registry.enabled_order.size());
  for (const Region* region : registry.enabled_order) {
    RegionSnapshot out;
    out.name = region->name;
    out.spans = region->spans.load(std::memory_order_relaxed);
    out.seconds =
        static_cast<double>(region->nanos.load(std::memory_order_relaxed)) /
        1e9;
    out.items = region->items.load(std::memory_order_relaxed);
    out.bytes = region->bytes.load(std::memory_order_relaxed);
    out.flops = region->flops.load(std::memory_order_relaxed);
    for (int e = 0; e < kNumHwEvents; ++e) {
      out.hw[e] = region->hw[e].load(std::memory_order_relaxed);
    }
    snapshot.regions.push_back(std::move(out));
  }
  return snapshot;
}

}  // namespace profile
}  // namespace obs
}  // namespace alem
