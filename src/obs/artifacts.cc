#include "obs/artifacts.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "obs/obs.h"
#include "obs/profile.h"
#include "obs/telemetry.h"

namespace alem {
namespace obs {

namespace {

// "<dir-env>/<sanitized artifact><ext>" when the env var is set, else "".
std::string PathFromDirEnv(const char* env_name, const std::string& artifact,
                           const char* ext) {
  const char* dir = std::getenv(env_name);
  if (dir == nullptr || *dir == '\0') return "";
  return std::string(dir) + "/" + SanitizeArtifactName(artifact) + ext;
}

}  // namespace

std::string SanitizeArtifactName(const std::string& name) {
  std::string sanitized;
  sanitized.reserve(name.size());
  for (const char c : name) {
    sanitized.push_back(
        std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
  }
  return sanitized;
}

ArtifactOptions ArtifactOptionsFromEnv(const std::string& artifact) {
  ArtifactOptions options;
  options.trace_path = PathFromDirEnv("ALEM_TRACE_DIR", artifact,
                                      ".trace.json");
  options.metrics_path = PathFromDirEnv("ALEM_TRACE_DIR", artifact,
                                        ".metrics.csv");
  options.report_path = PathFromDirEnv("ALEM_REPORT_DIR", artifact,
                                       ".report.json");
  const char* hz = std::getenv("ALEM_TELEMETRY_HZ");
  if (hz != nullptr && *hz != '\0') {
    const double parsed = std::atof(hz);
    if (parsed > 0.0) options.telemetry_hz = parsed;
  }
  // Presence of ALEM_PROFILE_REGIONS enables profiling; an empty value
  // selects the curated default region set.
  const char* profile_regions = std::getenv("ALEM_PROFILE_REGIONS");
  if (profile_regions != nullptr) {
    options.profile_enabled = true;
    options.profile_regions = profile_regions;
  }
  // cache_dir stays empty: FeatureCache::ResolveDir reads ALEM_CACHE_DIR.
  return options;
}

ArtifactOptions ArtifactOptionsFromFlags(const FlagParser& flags,
                                         const std::string& artifact) {
  ArtifactOptions options = ArtifactOptionsFromEnv(artifact);
  if (flags.Has("trace")) {
    options.trace_path = flags.GetString("trace", "trace.json");
  }
  if (flags.Has("trace-jsonl")) {
    options.trace_jsonl_path = flags.GetString("trace-jsonl", "trace.jsonl");
  }
  if (flags.Has("metrics")) {
    options.metrics_path = flags.GetString("metrics", "metrics.csv");
  }
  if (flags.Has("report")) {
    options.report_path = flags.GetString("report", "report.json");
  }
  if (flags.Has("cache-dir")) {
    options.cache_dir = flags.GetString("cache-dir", "");
  }
  options.use_cache = !flags.GetBool("no-cache", false);
  if (flags.Has("telemetry-hz")) {
    options.telemetry_hz = flags.GetDouble("telemetry-hz", 0.0);
  }
  if (flags.Has("profile-regions")) {
    options.profile_enabled = true;
    options.profile_regions = flags.GetString("profile-regions", "");
  }
  return options;
}

void ArtifactOptions::EnableObservability() const {
  if (tracing_wanted()) SetTracingEnabled(true);
  if (metrics_wanted()) SetMetricsEnabled(true);
  if (profile_enabled) {
    profile::Enable(profile_regions.empty() ? profile::kDefaultRegions
                                            : profile_regions);
  }
  if (telemetry_hz > 0.0) TelemetrySampler::Global().Start(telemetry_hz);
}

int ArtifactOptions::ExportTraceAndMetrics() const {
  // Freeze the counter series before snapshotting any artifact (no-op when
  // the sampler never started).
  TelemetrySampler::Global().Stop();
  int status = 0;
  if (!trace_path.empty()) {
    if (TraceRecorder::Global().WriteChromeTrace(trace_path)) {
      std::printf("(trace written to %s (%zu spans))\n", trace_path.c_str(),
                  TraceRecorder::Global().size());
    } else {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   trace_path.c_str());
      status = 1;
    }
  }
  if (!trace_jsonl_path.empty()) {
    if (TraceRecorder::Global().WriteJsonl(trace_jsonl_path)) {
      std::printf("(span JSONL written to %s)\n", trace_jsonl_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write spans to %s\n",
                   trace_jsonl_path.c_str());
      status = 1;
    }
  }
  if (!metrics_path.empty()) {
    if (MetricsRegistry::Global().WriteCsv(metrics_path)) {
      std::printf("(metrics written to %s)\n", metrics_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write metrics to %s\n",
                   metrics_path.c_str());
      status = 1;
    }
  }
  return status;
}

}  // namespace obs
}  // namespace alem
