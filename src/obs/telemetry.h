// Time-series telemetry sampler — the third observability pillar next to
// spans (tracing) and scalar metrics: a background thread that samples
// resource usage at a fixed rate and records each sample as a Chrome
// trace-event counter ("C" phase), so Perfetto shows RSS, cache traffic,
// predict-call throughput and pool occupancy as curves over the run
// instead of a single end-of-run number.
//
// Built-in series (all prefixed "telemetry."):
//   telemetry.rss_mib              current resident set (CurrentRssBytes)
//   telemetry.predict_calls        cumulative ml.predict_calls
//   telemetry.cache_hits           cumulative featurize.cache.hit
//   telemetry.cache_misses        cumulative featurize.cache.miss
//
// Other subsystems can contribute series without obs depending on them:
// RegisterTelemetryProbe registers a named callback sampled on every tick
// (src/parallel/pool.cc registers telemetry.pool_active_workers this way,
// keeping the obs -> parallel dependency direction clean).
//
// Off by default. alem_cli --telemetry-hz=HZ (or ALEM_TELEMETRY_HZ) starts
// the sampler via ArtifactOptions::EnableObservability; sampling implies
// tracing + metrics. The sampler only *reads* counters and appends trace
// counter records — it never touches run state, so enabling it cannot
// perturb results (the determinism gate still holds).

#ifndef ALEM_OBS_TELEMETRY_H_
#define ALEM_OBS_TELEMETRY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace alem {
namespace obs {

// Registers a callback sampled once per telemetry tick under `name`.
// Callbacks must be thread-safe (they run on the sampler thread) and fast;
// registration is process-lifetime (probes are never unregistered). Safe to
// call from static initializers.
void RegisterTelemetryProbe(std::string name, std::function<double()> probe);

// The background sampler. One global instance; Start/Stop are idempotent.
class TelemetrySampler {
 public:
  static TelemetrySampler& Global();

  // Starts sampling at `hz` (clamped to [0.1, 1000]); returns false (and
  // does nothing) when hz <= 0 or the sampler is already running. Requires
  // tracing to be enabled for the samples to be recorded.
  bool Start(double hz);

  // Takes one final sample, stops the thread and joins it. No-op when not
  // running.
  void Stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }
  uint64_t samples() const {
    return samples_.load(std::memory_order_relaxed);
  }

 private:
  TelemetrySampler() = default;

  void SampleOnce();
  void Loop(double hz);

  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> samples_{0};
};

}  // namespace obs
}  // namespace alem

#endif  // ALEM_OBS_TELEMETRY_H_
