#include "obs/obs.h"

#include "obs/profile.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace alem {
namespace obs {

namespace detail {
std::atomic<bool> g_tracing_enabled{false};
std::atomic<bool> g_metrics_enabled{false};
std::atomic<uint64_t> g_predict_calls{0};
}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point TraceEpoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

// Per-thread span nesting depth and compact thread id.
thread_local int t_span_depth = 0;

uint32_t ThisThreadId() {
  static std::atomic<uint32_t> next_id{0};
  thread_local const uint32_t id = next_id.fetch_add(1);
  return id;
}

// JSON string escaping for the small identifier strings we emit.
void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

// One span as a Chrome trace-event "complete" ("X") object.
void AppendChromeEvent(std::string* out, const SpanRecord& record) {
  char buf[64];
  out->append("{\"name\":\"");
  AppendJsonEscaped(out, record.name);
  out->append("\",\"cat\":\"");
  AppendJsonEscaped(out, record.category.empty() ? std::string_view("alem")
                                                 : record.category);
  out->append("\",\"ph\":\"X\",\"ts\":");
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(record.start_ns) / 1e3);
  out->append(buf);
  out->append(",\"dur\":");
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(record.duration_ns) / 1e3);
  out->append(buf);
  std::snprintf(buf, sizeof(buf), ",\"pid\":1,\"tid\":%u",
                record.thread_id);
  out->append(buf);
  out->append(",\"args\":{\"depth\":");
  std::snprintf(buf, sizeof(buf), "%d", record.depth);
  out->append(buf);
  if (!record.detail.empty()) {
    out->append(",\"detail\":\"");
    AppendJsonEscaped(out, record.detail);
    out->append("\"");
  }
  out->append("}}");
}

// One sampled counter value as a Chrome trace-event "counter" ("C")
// object; Perfetto plots consecutive samples of a name as a curve.
void AppendChromeCounterEvent(std::string* out, const CounterRecord& record) {
  char buf[64];
  out->append("{\"name\":\"");
  AppendJsonEscaped(out, record.name);
  out->append("\",\"cat\":\"telemetry\",\"ph\":\"C\",\"ts\":");
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(record.ts_ns) / 1e3);
  out->append(buf);
  out->append(",\"pid\":1,\"tid\":0,\"args\":{\"value\":");
  std::snprintf(buf, sizeof(buf), "%.9g", record.value);
  out->append(buf);
  out->append("}}");
}

bool WriteStringToFile(const std::string& path, const std::string& content) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file.is_open()) return false;
  file.write(content.data(), static_cast<std::streamsize>(content.size()));
  return file.good();
}

}  // namespace

void SetTracingEnabled(bool enabled) {
  if (enabled) TraceEpoch();  // Pin the epoch before the first span.
  detail::g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  detail::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

uint64_t TraceNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           TraceEpoch())
          .count());
}

uint64_t PeakRssBytes() {
#if defined(__linux__)
  // VmHWM ("high water mark") is the kernel's own peak-RSS accounting.
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      const uint64_t kib =
          std::strtoull(line.c_str() + 6, nullptr, 10);  // "VmHWM:  123 kB"
      if (kib > 0) return kib * 1024;
      break;
    }
  }
#endif
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    const uint64_t bytes = detail::RuMaxRssToBytes(usage.ru_maxrss);
    if (bytes > 0) return bytes;
  }
#endif
  return 0;
}

namespace detail {

uint64_t RuMaxRssToBytes(long ru_maxrss) {
  if (ru_maxrss <= 0) return 0;
#if defined(__APPLE__)
  return static_cast<uint64_t>(ru_maxrss);  // Bytes on macOS.
#else
  return static_cast<uint64_t>(ru_maxrss) * 1024;  // KiB elsewhere.
#endif
}

}  // namespace detail

uint64_t CurrentRssBytes() {
#if defined(__linux__)
  // /proc/self/statm: "size resident shared ..." in pages.
  std::ifstream statm("/proc/self/statm");
  uint64_t size_pages = 0;
  uint64_t resident_pages = 0;
  if (statm >> size_pages >> resident_pages) {
    const long page = sysconf(_SC_PAGESIZE);
    if (page > 0) return resident_pages * static_cast<uint64_t>(page);
  }
#endif
  return 0;
}

// ---- Histogram --------------------------------------------------------

const std::vector<double>& LatencyBounds() {
  static const std::vector<double>* bounds = [] {
    auto* b = new std::vector<double>();
    // 1µs .. 100s, four log-spaced buckets per decade (33 finite bounds).
    for (int k = 0; k <= 32; ++k) {
      b->push_back(std::pow(10.0, -6.0 + static_cast<double>(k) / 4.0));
    }
    return b;
  }();
  return *bounds;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t next = cumulative + buckets[i];
    if (static_cast<double>(next) >= rank) {
      if (i >= bounds.size()) {
        // Overflow bucket has no upper bound; clamp to the last finite one.
        return bounds.empty() ? 0.0 : bounds.back();
      }
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double fraction =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(buckets[i]);
      return lower + (bounds[i] - lower) * fraction;
    }
    cumulative = next;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::Observe(double v) {
  if (!MetricsEnabled()) return;
  // "le" semantics: bucket i counts v <= bounds[i], so v lands in the
  // first bucket whose bound is >= v (lower_bound).
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + v,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.buckets.reserve(buckets_.size());
  for (const auto& bucket : buckets_) {
    snapshot.buckets.push_back(bucket.load(std::memory_order_relaxed));
  }
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  return snapshot;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

// ---- MetricsSnapshot --------------------------------------------------

std::string MetricsSnapshot::ToText() const {
  std::string out;
  char buf[160];
  for (const auto& [name, value] : counters) {
    std::snprintf(buf, sizeof(buf), "%-32s %" PRIu64 "\n", name.c_str(),
                  value);
    out.append(buf);
  }
  for (const auto& [name, value] : gauges) {
    std::snprintf(buf, sizeof(buf), "%-32s %.6f\n", name.c_str(), value);
    out.append(buf);
  }
  for (const auto& [name, histogram] : histograms) {
    std::snprintf(buf, sizeof(buf),
                  "%-32s count=%" PRIu64 " sum=%.6f p50=%.6g p95=%.6g "
                  "p99=%.6g\n",
                  name.c_str(), histogram.count, histogram.sum,
                  histogram.P50(), histogram.P95(), histogram.P99());
    out.append(buf);
    // Cumulative counts ("le" semantics all the way up): the +Inf row
    // always equals the total count.
    uint64_t cumulative = 0;
    for (size_t i = 0; i < histogram.buckets.size(); ++i) {
      cumulative += histogram.buckets[i];
      if (i >= histogram.bounds.size()) {
        std::snprintf(buf, sizeof(buf), "  le=+Inf %" PRIu64 "\n",
                      cumulative);
      } else {
        std::snprintf(buf, sizeof(buf), "  le=%g %" PRIu64 "\n",
                      histogram.bounds[i], cumulative);
      }
      out.append(buf);
    }
  }
  return out;
}

std::string MetricsSnapshot::ToCsv() const {
  std::string out = "kind,name,field,value\n";
  char buf[160];
  for (const auto& [name, value] : counters) {
    std::snprintf(buf, sizeof(buf), "counter,%s,value,%" PRIu64 "\n",
                  name.c_str(), value);
    out.append(buf);
  }
  for (const auto& [name, value] : gauges) {
    std::snprintf(buf, sizeof(buf), "gauge,%s,value,%.9g\n", name.c_str(),
                  value);
    out.append(buf);
  }
  for (const auto& [name, histogram] : histograms) {
    std::snprintf(buf, sizeof(buf), "histogram,%s,count,%" PRIu64 "\n",
                  name.c_str(), histogram.count);
    out.append(buf);
    std::snprintf(buf, sizeof(buf), "histogram,%s,sum,%.9g\n", name.c_str(),
                  histogram.sum);
    out.append(buf);
    // Rows are cumulative ("le" means at-or-below), and the overflow row is
    // labeled +Inf explicitly, so a parser can treat every bucket row
    // uniformly: the le=+Inf row equals the count row by construction.
    uint64_t cumulative = 0;
    for (size_t i = 0; i < histogram.buckets.size(); ++i) {
      cumulative += histogram.buckets[i];
      if (i >= histogram.bounds.size()) {
        std::snprintf(buf, sizeof(buf), "histogram,%s,le=+Inf,%" PRIu64 "\n",
                      name.c_str(), cumulative);
      } else {
        std::snprintf(buf, sizeof(buf), "histogram,%s,le=%g,%" PRIu64 "\n",
                      name.c_str(), histogram.bounds[i], cumulative);
      }
      out.append(buf);
    }
  }
  return out;
}

// ---- MetricsRegistry --------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->value());
  }
  snapshot.counters.emplace_back(
      "ml.predict_calls",
      detail::g_predict_calls.load(std::memory_order_relaxed));
  std::sort(snapshot.counters.begin(), snapshot.counters.end());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace_back(name, histogram->Snapshot());
  }
  return snapshot;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
  detail::g_predict_calls.store(0, std::memory_order_relaxed);
}

bool MetricsRegistry::WriteCsv(const std::string& path) const {
  return WriteStringToFile(path, Snapshot().ToCsv());
}

// ---- TraceRecorder ----------------------------------------------------

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::Record(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.push_back(std::move(record));
}

std::vector<SpanRecord> TraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
  counters_.clear();
}

void TraceRecorder::RecordCounter(std::string_view name, double value) {
  if (!TracingEnabled()) return;
  CounterRecord record;
  record.name = std::string(name);
  record.ts_ns = TraceNowNanos();
  record.value = value;
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.push_back(std::move(record));
}

std::vector<CounterRecord> TraceRecorder::CounterSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

size_t TraceRecorder::counter_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size();
}

std::string TraceRecorder::ToChromeTraceJson() const {
  const std::vector<SpanRecord> records = Snapshot();
  const std::vector<CounterRecord> counters = CounterSnapshot();
  std::string out = "{\"traceEvents\":[";
  size_t emitted = 0;
  for (const SpanRecord& record : records) {
    if (emitted++ > 0) out.push_back(',');
    out.push_back('\n');
    AppendChromeEvent(&out, record);
  }
  for (const CounterRecord& record : counters) {
    if (emitted++ > 0) out.push_back(',');
    out.push_back('\n');
    AppendChromeCounterEvent(&out, record);
  }
  out.append("\n],\"displayTimeUnit\":\"ms\"}\n");
  return out;
}

std::string TraceRecorder::ToJsonl() const {
  const std::vector<SpanRecord> records = Snapshot();
  std::string out;
  char buf[96];
  for (const SpanRecord& record : records) {
    out.append("{\"name\":\"");
    AppendJsonEscaped(&out, record.name);
    out.append("\",\"cat\":\"");
    AppendJsonEscaped(&out, record.category);
    out.append("\",\"detail\":\"");
    AppendJsonEscaped(&out, record.detail);
    std::snprintf(buf, sizeof(buf),
                  "\",\"tid\":%u,\"depth\":%d,\"start_us\":%.3f,"
                  "\"dur_us\":%.3f}\n",
                  record.thread_id, record.depth,
                  static_cast<double>(record.start_ns) / 1e3,
                  static_cast<double>(record.duration_ns) / 1e3);
    out.append(buf);
  }
  return out;
}

bool TraceRecorder::WriteChromeTrace(const std::string& path) const {
  return WriteStringToFile(path, ToChromeTraceJson());
}

bool TraceRecorder::WriteJsonl(const std::string& path) const {
  return WriteStringToFile(path, ToJsonl());
}

// ---- ObsSpan ----------------------------------------------------------

ObsSpan::ObsSpan(std::string_view name, std::string_view category,
                 std::string_view detail)
    : name_(name),
      category_(category),
      detail_(detail),
      start_ns_(TraceNowNanos()),
      depth_(t_span_depth++) {
  // One relaxed load when profiling is off (obs/profile.h).
  if (profile::Enabled()) profiled_ = profile::SpanOpen(name_);
}

ObsSpan::~ObsSpan() { Close(); }

double ObsSpan::Close() {
  if (open_) {
    open_ = false;
    --t_span_depth;
    duration_ns_ = TraceNowNanos() - start_ns_;
    if (profiled_) {
      profiled_ = false;
      profile::SpanClose(name_, duration_ns_);
    }
    if (TracingEnabled()) {
      SpanRecord record;
      record.name = name_;
      record.category = category_;
      record.detail = detail_;
      record.thread_id = ThisThreadId();
      record.depth = depth_;
      record.start_ns = start_ns_;
      record.duration_ns = duration_ns_;
      TraceRecorder::Global().Record(std::move(record));
    }
    if (MetricsEnabled()) {
      // Every named region gets a tail-latency histogram for free; the
      // registry returns a stable reference, so repeated closes of the
      // same region name share one histogram.
      MetricsRegistry::Global()
          .GetHistogram("lat." + name_, LatencyBounds())
          .Observe(static_cast<double>(duration_ns_) / 1e9);
    }
  }
  return static_cast<double>(duration_ns_) / 1e9;
}

double ObsSpan::ElapsedSeconds() const {
  if (!open_) return static_cast<double>(duration_ns_) / 1e9;
  return static_cast<double>(TraceNowNanos() - start_ns_) / 1e9;
}

}  // namespace obs
}  // namespace alem
