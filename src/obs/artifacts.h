// ArtifactOptions — the single resolution point for observability artifact
// destinations and the feature-cache policy, shared by alem_cli and the
// bench binaries.
//
// Before this lived here, alem_cli parsed --trace/--metrics/--report flags
// while bench_util.cc separately interpreted ALEM_TRACE_DIR /
// ALEM_REPORT_DIR, and the two drifted. Now both front ends build an
// ArtifactOptions and the precedence rule lives in exactly one place:
//
//   explicit flag (--trace=PATH, --cache-dir=DIR, --no-cache)
//     > environment (ALEM_TRACE_DIR, ALEM_REPORT_DIR, ALEM_CACHE_DIR)
//       > off
//
// Directory-style environment knobs (ALEM_TRACE_DIR / ALEM_REPORT_DIR)
// expand to "<dir>/<sanitized artifact>.<ext>" file paths; flag values are
// used verbatim. The feature cache directory itself is resolved later by
// FeatureCache::ResolveDir (PrepareDataset), so cache_dir here only carries
// the explicit override and use_cache the --no-cache veto.

#ifndef ALEM_OBS_ARTIFACTS_H_
#define ALEM_OBS_ARTIFACTS_H_

#include <string>

#include "util/flags.h"

namespace alem {
namespace obs {

struct ArtifactOptions {
  // Destination paths; empty = that artifact is off.
  std::string trace_path;        // Chrome trace-event JSON
  std::string trace_jsonl_path;  // span-per-line JSONL
  std::string metrics_path;      // counter/gauge/histogram CSV
  std::string report_path;       // RunReport flight-recorder JSON

  // Feature-cache policy, forwarded into PrepareOptions.
  std::string cache_dir;  // explicit override; "" defers to ALEM_CACHE_DIR
  bool use_cache = true;  // false (--no-cache) disables the cache outright

  // Sampling rate for the background telemetry sampler (obs/telemetry.h);
  // <= 0 keeps it off. --telemetry-hz flag > ALEM_TELEMETRY_HZ env > off.
  // A positive rate implies tracing + metrics (the samples are trace
  // counter events reading the metric registry).
  double telemetry_hz = 0.0;

  // Roofline profiling (obs/profile.h). The --profile-regions flag or the
  // ALEM_PROFILE_REGIONS environment variable turns it on; the value is a
  // comma-separated region allowlist, and an empty value selects the
  // curated default hot set (profile::kDefaultRegions). Off by default so
  // unprofiled runs stay byte-identical.
  bool profile_enabled = false;
  std::string profile_regions;

  // The report needs spans (self-time rollup) and counters, so it implies
  // both subsystems; a metrics CSV alone only needs the metric registry.
  bool tracing_wanted() const {
    return !trace_path.empty() || !trace_jsonl_path.empty() ||
           !report_path.empty() || telemetry_hz > 0.0;
  }
  bool metrics_wanted() const {
    return tracing_wanted() || !metrics_path.empty();
  }

  // Switches the tracing / metrics subsystems on as implied by the paths
  // and starts the telemetry sampler when telemetry_hz > 0. Must run
  // before PrepareDataset so preprocessing spans are captured.
  void EnableObservability() const;

  // Stops the telemetry sampler (if running), then writes the trace /
  // JSONL / metrics artifacts from the global registries, printing one
  // line per file. Returns 0 on success, 1 if any write failed. The report
  // is written by the caller (run- and bench-kind reports are assembled
  // differently).
  int ExportTraceAndMetrics() const;
};

// Filesystem-safe artifact name: alphanumerics preserved, the rest '_'.
std::string SanitizeArtifactName(const std::string& name);

// Environment-only resolution (bench binaries).
ArtifactOptions ArtifactOptionsFromEnv(const std::string& artifact);

// Flag + environment resolution (alem_cli): explicit path flags win; absent
// ones fall back to the ALEM_*_DIR expansion for `artifact`.
ArtifactOptions ArtifactOptionsFromFlags(const FlagParser& flags,
                                         const std::string& artifact);

}  // namespace obs
}  // namespace alem

#endif  // ALEM_OBS_ARTIFACTS_H_
