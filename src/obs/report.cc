#include "obs/report.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "obs/profile.h"
#include "util/json.h"

// Injected by src/obs/CMakeLists.txt from `git describe` at configure time.
#ifndef ALEM_GIT_SHA
#define ALEM_GIT_SHA "unknown"
#endif

namespace alem {
namespace obs {

const char* BuildStamp() { return ALEM_GIT_SHA; }

uint64_t RunReport::CounterOr(std::string_view name, uint64_t missing) const {
  for (const auto& [counter_name, value] : counters) {
    if (counter_name == name) return value;
  }
  return missing;
}

// ---- Span rollup ------------------------------------------------------

std::vector<SpanRollupEntry> SelfTimeRollup(
    const std::vector<SpanRecord>& records) {
  // Index records per thread, sorted so parents precede their children
  // (earlier start; on ties the longer span is the parent).
  struct Indexed {
    const SpanRecord* record;
    uint64_t self_ns;
  };
  std::vector<std::vector<Indexed>> per_thread;
  for (const SpanRecord& record : records) {
    if (record.thread_id >= per_thread.size()) {
      per_thread.resize(record.thread_id + 1);
    }
    per_thread[record.thread_id].push_back({&record, record.duration_ns});
  }

  std::vector<SpanRollupEntry> rollup;
  auto find = [&rollup](const std::string& name) -> SpanRollupEntry& {
    for (SpanRollupEntry& entry : rollup) {
      if (entry.name == name) return entry;
    }
    rollup.push_back(SpanRollupEntry{name, 0, 0.0, 0.0});
    return rollup.back();
  };

  for (std::vector<Indexed>& thread_records : per_thread) {
    std::sort(thread_records.begin(), thread_records.end(),
              [](const Indexed& a, const Indexed& b) {
                if (a.record->start_ns != b.record->start_ns) {
                  return a.record->start_ns < b.record->start_ns;
                }
                return a.record->duration_ns > b.record->duration_ns;
              });
    // Stack of (end_ns, index) open ancestors; each span subtracts its
    // duration from the nearest enclosing span's self time.
    std::vector<std::pair<uint64_t, size_t>> stack;
    for (size_t i = 0; i < thread_records.size(); ++i) {
      const SpanRecord& record = *thread_records[i].record;
      while (!stack.empty() && stack.back().first <= record.start_ns) {
        stack.pop_back();
      }
      if (!stack.empty()) {
        Indexed& parent = thread_records[stack.back().second];
        parent.self_ns -= std::min(parent.self_ns, record.duration_ns);
      }
      stack.emplace_back(record.start_ns + record.duration_ns, i);
    }
    for (const Indexed& indexed : thread_records) {
      SpanRollupEntry& entry = find(indexed.record->name);
      entry.count += 1;
      entry.total_seconds +=
          static_cast<double>(indexed.record->duration_ns) / 1e9;
      entry.self_seconds += static_cast<double>(indexed.self_ns) / 1e9;
    }
  }
  std::sort(rollup.begin(), rollup.end(),
            [](const SpanRollupEntry& a, const SpanRollupEntry& b) {
              if (a.self_seconds != b.self_seconds) {
                return a.self_seconds > b.self_seconds;
              }
              return a.name < b.name;
            });
  return rollup;
}

void StampObservability(RunReport* report) {
  report->build = BuildStamp();
  const uint64_t rss = PeakRssBytes();
  report->peak_rss_bytes = rss;
  MetricsRegistry::Global()
      .GetGauge("process.peak_rss_bytes")
      .Set(static_cast<double>(rss));
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  report->counters = snapshot.counters;
  report->gauges = snapshot.gauges;
  report->spans = SelfTimeRollup(TraceRecorder::Global().Snapshot());
  // Per-region tail latency from the auto-observed lat.<region> histograms
  // (map iteration keeps the entries sorted by region name).
  report->latency.clear();
  for (const auto& [name, histogram] : snapshot.histograms) {
    constexpr std::string_view kPrefix = "lat.";
    if (name.compare(0, kPrefix.size(), kPrefix) != 0 ||
        histogram.count == 0) {
      continue;
    }
    LatencyEntry entry;
    entry.name = name.substr(kPrefix.size());
    entry.count = histogram.count;
    entry.sum_seconds = histogram.sum;
    entry.p50_seconds = histogram.P50();
    entry.p95_seconds = histogram.P95();
    entry.p99_seconds = histogram.P99();
    report->latency.push_back(std::move(entry));
  }
  // Roofline profile (obs/profile.h): stamped only when profiling ran, so
  // profiling-off reports stay byte-identical to pre-profile ones.
  report->has_profile = false;
  report->profile = ProfileStats();
  if (profile::Enabled()) {
    const profile::Snapshot snapshot_profile = profile::TakeSnapshot();
    report->has_profile = true;
    report->profile.hw = snapshot_profile.hw;
    for (const profile::RegionSnapshot& region : snapshot_profile.regions) {
      ProfileRegionStats entry;
      entry.name = region.name;
      entry.spans = region.spans;
      entry.seconds = region.seconds;
      entry.items = region.items;
      entry.bytes = region.bytes;
      entry.flops = region.flops;
      entry.cycles = region.hw[profile::kCycles];
      entry.instructions = region.hw[profile::kInstructions];
      entry.cache_refs = region.hw[profile::kCacheReferences];
      entry.cache_misses = region.hw[profile::kCacheMisses];
      entry.branch_misses = region.hw[profile::kBranchMisses];
      if (entry.seconds > 0.0) {
        entry.items_per_sec = static_cast<double>(entry.items) / entry.seconds;
        entry.bytes_per_sec = static_cast<double>(entry.bytes) / entry.seconds;
        entry.flops_per_sec = static_cast<double>(entry.flops) / entry.seconds;
      }
      if (entry.cycles > 0) {
        entry.ipc = static_cast<double>(entry.instructions) /
                    static_cast<double>(entry.cycles);
      }
      report->profile.regions.push_back(std::move(entry));
    }
  }
}

// ---- Serialization ----------------------------------------------------

namespace {

void AppendIteration(std::string* out, const ReportIteration& it) {
  out->append("    {\"iteration\":");
  AppendJsonUint(out, it.iteration);
  out->append(",\"labels_used\":");
  AppendJsonUint(out, it.labels_used);
  out->append(",\"precision\":");
  AppendJsonDouble(out, it.precision);
  out->append(",\"recall\":");
  AppendJsonDouble(out, it.recall);
  out->append(",\"f1\":");
  AppendJsonDouble(out, it.f1);
  out->append(",\"train_seconds\":");
  AppendJsonDouble(out, it.train_seconds);
  out->append(",\"evaluate_seconds\":");
  AppendJsonDouble(out, it.evaluate_seconds);
  out->append(",\"select_seconds\":");
  AppendJsonDouble(out, it.select_seconds);
  out->append(",\"committee_seconds\":");
  AppendJsonDouble(out, it.committee_seconds);
  out->append(",\"scoring_seconds\":");
  AppendJsonDouble(out, it.scoring_seconds);
  out->append(",\"label_seconds\":");
  AppendJsonDouble(out, it.label_seconds);
  out->append(",\"wait_seconds\":");
  AppendJsonDouble(out, it.wait_seconds);
  out->append(",\"scored_examples\":");
  AppendJsonUint(out, it.scored_examples);
  out->append(",\"pruned_examples\":");
  AppendJsonUint(out, it.pruned_examples);
  out->append(",\"dnf_atoms\":");
  AppendJsonUint(out, it.dnf_atoms);
  out->append(",\"tree_depth\":");
  out->append(std::to_string(it.tree_depth));
  out->append(",\"ensemble_size\":");
  AppendJsonUint(out, it.ensemble_size);
  out->append("}");
}

}  // namespace

std::string ReportToJson(const RunReport& report) {
  std::string out;
  out.reserve(4096 + report.curve.size() * 384);
  out.append("{\n  \"schema_version\": ");
  out.append(std::to_string(report.schema_version));
  out.append(",\n  \"kind\": ");
  AppendJsonString(&out, report.kind);
  out.append(",\n  \"tool\": ");
  AppendJsonString(&out, report.tool);
  out.append(",\n  \"build\": ");
  AppendJsonString(&out, report.build);

  out.append(",\n  \"config\": {\"dataset\": ");
  AppendJsonString(&out, report.dataset);
  out.append(", \"approach\": ");
  AppendJsonString(&out, report.approach);
  out.append(", \"data_seed\": ");
  AppendJsonUint(&out, report.data_seed);
  out.append(", \"run_seed\": ");
  AppendJsonUint(&out, report.run_seed);
  out.append(", \"scale\": ");
  AppendJsonDouble(&out, report.scale);
  out.append(", \"threads\": ");
  out.append(std::to_string(report.threads));
  out.append(", \"seed_size\": ");
  AppendJsonUint(&out, report.seed_size);
  out.append(", \"batch_size\": ");
  AppendJsonUint(&out, report.batch_size);
  out.append(", \"max_labels\": ");
  AppendJsonUint(&out, report.max_labels);
  out.append(", \"oracle_noise\": ");
  AppendJsonDouble(&out, report.oracle_noise);
  out.append(", \"holdout\": ");
  out.append(report.holdout ? "true" : "false");
  out.append(", \"cache\": ");
  AppendJsonString(&out, report.cache);
  out.append(", \"kernel_backend\": ");
  AppendJsonString(&out, report.kernel_backend);
  out.append(", \"session\": ");
  AppendJsonString(&out, report.session);
  out.append(", \"session_resumes\": ");
  AppendJsonUint(&out, report.session_resumes);
  out.append(", \"warm_start\": ");
  AppendJsonString(&out, report.warm_start);
  out.append("}");

  if (report.kind == "run" || !report.curve.empty()) {
    out.append(",\n  \"curve\": [\n");
    for (size_t i = 0; i < report.curve.size(); ++i) {
      if (i > 0) out.append(",\n");
      AppendIteration(&out, report.curve[i]);
    }
    out.append("\n  ],\n  \"summary\": {\"iterations\": ");
    AppendJsonUint(&out, report.curve.size());
    out.append(", \"best_f1\": ");
    AppendJsonDouble(&out, report.best_f1);
    out.append(", \"final_f1\": ");
    AppendJsonDouble(&out, report.final_f1);
    out.append(", \"labels_to_converge\": ");
    AppendJsonUint(&out, report.labels_to_converge);
    out.append(", \"total_wait_seconds\": ");
    AppendJsonDouble(&out, report.total_wait_seconds);
    out.append(", \"ensemble_accepted\": ");
    AppendJsonUint(&out, report.ensemble_accepted);
    out.append("}");
  }

  out.append(",\n  \"counters\": {");
  for (size_t i = 0; i < report.counters.size(); ++i) {
    if (i > 0) out.append(", ");
    AppendJsonString(&out, report.counters[i].first);
    out.append(": ");
    AppendJsonUint(&out, report.counters[i].second);
  }
  out.append("},\n  \"gauges\": {");
  for (size_t i = 0; i < report.gauges.size(); ++i) {
    if (i > 0) out.append(", ");
    AppendJsonString(&out, report.gauges[i].first);
    out.append(": ");
    AppendJsonDouble(&out, report.gauges[i].second);
  }
  out.append("}");
  if (!report.latency.empty()) {
    out.append(",\n  \"latency\": [\n");
    for (size_t i = 0; i < report.latency.size(); ++i) {
      const LatencyEntry& entry = report.latency[i];
      if (i > 0) out.append(",\n");
      out.append("    {\"name\": ");
      AppendJsonString(&out, entry.name);
      out.append(", \"count\": ");
      AppendJsonUint(&out, entry.count);
      out.append(", \"sum_seconds\": ");
      AppendJsonDouble(&out, entry.sum_seconds);
      out.append(", \"p50_seconds\": ");
      AppendJsonDouble(&out, entry.p50_seconds);
      out.append(", \"p95_seconds\": ");
      AppendJsonDouble(&out, entry.p95_seconds);
      out.append(", \"p99_seconds\": ");
      AppendJsonDouble(&out, entry.p99_seconds);
      out.append("}");
    }
    out.append("\n  ]");
  }
  out.append(",\n  \"spans\": [\n");
  for (size_t i = 0; i < report.spans.size(); ++i) {
    const SpanRollupEntry& entry = report.spans[i];
    if (i > 0) out.append(",\n");
    out.append("    {\"name\": ");
    AppendJsonString(&out, entry.name);
    out.append(", \"count\": ");
    AppendJsonUint(&out, entry.count);
    out.append(", \"total_seconds\": ");
    AppendJsonDouble(&out, entry.total_seconds);
    out.append(", \"self_seconds\": ");
    AppendJsonDouble(&out, entry.self_seconds);
    out.append("}");
  }
  out.append("\n  ]");
  if (report.has_pool) {
    out.append(",\n  \"pool\": {\"workers\": ");
    out.append(std::to_string(report.pool.workers));
    out.append(", \"busy_seconds\": ");
    AppendJsonDouble(&out, report.pool.busy_seconds);
    out.append(", \"idle_seconds\": ");
    AppendJsonDouble(&out, report.pool.idle_seconds);
    out.append(", \"queue_wait_seconds\": ");
    AppendJsonDouble(&out, report.pool.queue_wait_seconds);
    out.append(", \"worker_wall_seconds\": ");
    AppendJsonDouble(&out, report.pool.worker_wall_seconds);
    out.append(", \"utilization\": ");
    AppendJsonDouble(&out, report.pool.utilization);
    out.append(", \"regions\": [");
    for (size_t i = 0; i < report.pool.regions.size(); ++i) {
      const PoolRegionStats& region = report.pool.regions[i];
      if (i > 0) out.append(",");
      out.append("\n    {\"name\": ");
      AppendJsonString(&out, region.name);
      out.append(", \"runs\": ");
      AppendJsonUint(&out, region.runs);
      out.append(", \"chunks\": ");
      AppendJsonUint(&out, region.chunks);
      out.append(", \"min_chunk_seconds\": ");
      AppendJsonDouble(&out, region.min_chunk_seconds);
      out.append(", \"max_chunk_seconds\": ");
      AppendJsonDouble(&out, region.max_chunk_seconds);
      out.append(", \"mean_chunk_seconds\": ");
      AppendJsonDouble(&out, region.mean_chunk_seconds);
      out.append(", \"utilization\": ");
      AppendJsonDouble(&out, region.utilization);
      out.append("}");
    }
    if (!report.pool.regions.empty()) out.append("\n  ");
    out.append("]}");
  }
  if (report.has_profile) {
    out.append(",\n  \"profile\": {\"hw\": ");
    AppendJsonString(&out, report.profile.hw);
    out.append(", \"regions\": [");
    for (size_t i = 0; i < report.profile.regions.size(); ++i) {
      const ProfileRegionStats& region = report.profile.regions[i];
      if (i > 0) out.append(",");
      out.append("\n    {\"name\": ");
      AppendJsonString(&out, region.name);
      out.append(", \"spans\": ");
      AppendJsonUint(&out, region.spans);
      out.append(", \"seconds\": ");
      AppendJsonDouble(&out, region.seconds);
      out.append(", \"items\": ");
      AppendJsonUint(&out, region.items);
      out.append(", \"bytes\": ");
      AppendJsonUint(&out, region.bytes);
      out.append(", \"flops\": ");
      AppendJsonUint(&out, region.flops);
      out.append(", \"cycles\": ");
      AppendJsonUint(&out, region.cycles);
      out.append(", \"instructions\": ");
      AppendJsonUint(&out, region.instructions);
      out.append(", \"cache_refs\": ");
      AppendJsonUint(&out, region.cache_refs);
      out.append(", \"cache_misses\": ");
      AppendJsonUint(&out, region.cache_misses);
      out.append(", \"branch_misses\": ");
      AppendJsonUint(&out, region.branch_misses);
      out.append(", \"items_per_sec\": ");
      AppendJsonDouble(&out, region.items_per_sec);
      out.append(", \"bytes_per_sec\": ");
      AppendJsonDouble(&out, region.bytes_per_sec);
      out.append(", \"flops_per_sec\": ");
      AppendJsonDouble(&out, region.flops_per_sec);
      out.append(", \"ipc\": ");
      AppendJsonDouble(&out, region.ipc);
      out.append("}");
    }
    if (!report.profile.regions.empty()) out.append("\n  ");
    out.append("]}");
  }
  out.append(",\n  \"process\": {\"wall_seconds\": ");
  AppendJsonDouble(&out, report.wall_seconds);
  out.append(", \"peak_rss_bytes\": ");
  AppendJsonUint(&out, report.peak_rss_bytes);
  out.append("}\n}\n");
  return out;
}

// ---- Parsing ----------------------------------------------------------

namespace {

// Field extraction with required-field accounting: every miss appends to
// *missing so the error message names all absent fields at once.
struct FieldReader {
  const JsonValue& object;
  std::string* missing;
  std::string context;

  const JsonValue* Get(const char* key, bool required) const {
    const JsonValue* value = object.Find(key);
    if (value == nullptr && required) {
      if (!missing->empty()) missing->append(", ");
      missing->append(context + key);
    }
    return value;
  }

  std::string String(const char* key, bool required = true) const {
    const JsonValue* v = Get(key, required);
    return (v != nullptr && v->is_string()) ? v->string_value() : "";
  }
  double Number(const char* key, bool required = true) const {
    const JsonValue* v = Get(key, required);
    return (v != nullptr && v->is_number()) ? v->number_value() : 0.0;
  }
  uint64_t Uint(const char* key, bool required = true) const {
    const double v = Number(key, required);
    return v > 0 ? static_cast<uint64_t>(v + 0.5) : 0;
  }
  bool Bool(const char* key, bool required = true) const {
    const JsonValue* v = Get(key, required);
    return v != nullptr && v->is_bool() && v->bool_value();
  }
};

bool ParseIteration(const JsonValue& value, ReportIteration* it,
                    std::string* missing) {
  if (!value.is_object()) return false;
  FieldReader reader{value, missing, "curve[]."};
  it->iteration = reader.Uint("iteration");
  it->labels_used = reader.Uint("labels_used");
  it->precision = reader.Number("precision");
  it->recall = reader.Number("recall");
  it->f1 = reader.Number("f1");
  it->train_seconds = reader.Number("train_seconds");
  it->evaluate_seconds = reader.Number("evaluate_seconds");
  it->select_seconds = reader.Number("select_seconds");
  it->committee_seconds = reader.Number("committee_seconds");
  it->scoring_seconds = reader.Number("scoring_seconds");
  it->label_seconds = reader.Number("label_seconds");
  it->wait_seconds = reader.Number("wait_seconds");
  it->scored_examples = reader.Uint("scored_examples");
  it->pruned_examples = reader.Uint("pruned_examples");
  it->dnf_atoms = reader.Uint("dnf_atoms");
  it->tree_depth = static_cast<int>(reader.Number("tree_depth"));
  it->ensemble_size = reader.Uint("ensemble_size");
  return true;
}

}  // namespace

bool ParseReportJson(std::string_view text, RunReport* report,
                     std::string* error) {
  JsonValue root;
  std::string parse_error;
  if (!JsonValue::Parse(text, &root, &parse_error)) {
    if (error != nullptr) *error = "malformed JSON: " + parse_error;
    return false;
  }
  if (!root.is_object()) {
    if (error != nullptr) *error = "report root is not an object";
    return false;
  }

  std::string missing;
  FieldReader top{root, &missing, ""};
  RunReport parsed;
  parsed.schema_version = static_cast<int>(top.Number("schema_version"));
  parsed.kind = top.String("kind");
  parsed.tool = top.String("tool");
  parsed.build = top.String("build");

  const JsonValue* config = top.Get("config", true);
  if (config != nullptr && config->is_object()) {
    FieldReader cfg{*config, &missing, "config."};
    parsed.dataset = cfg.String("dataset");
    parsed.approach = cfg.String("approach");
    parsed.data_seed = cfg.Uint("data_seed");
    parsed.run_seed = cfg.Uint("run_seed");
    parsed.scale = cfg.Number("scale");
    parsed.threads = static_cast<int>(cfg.Number("threads"));
    parsed.seed_size = cfg.Uint("seed_size");
    parsed.batch_size = cfg.Uint("batch_size");
    parsed.max_labels = cfg.Uint("max_labels");
    parsed.oracle_noise = cfg.Number("oracle_noise");
    parsed.holdout = cfg.Bool("holdout");
    const std::string cache = cfg.String("cache", /*required=*/false);
    if (!cache.empty()) parsed.cache = cache;
    const std::string kernel_backend =
        cfg.String("kernel_backend", /*required=*/false);
    if (!kernel_backend.empty()) parsed.kernel_backend = kernel_backend;
    const std::string session = cfg.String("session", /*required=*/false);
    if (!session.empty()) parsed.session = session;
    if (cfg.Get("session_resumes", false) != nullptr) {
      parsed.session_resumes = cfg.Uint("session_resumes");
    }
    const std::string warm_start = cfg.String("warm_start", /*required=*/false);
    if (!warm_start.empty()) parsed.warm_start = warm_start;
  }

  const bool is_run = parsed.kind == "run";
  const JsonValue* curve = top.Get("curve", is_run);
  if (curve != nullptr && curve->is_array()) {
    for (const JsonValue& element : curve->array()) {
      ReportIteration it;
      if (!ParseIteration(element, &it, &missing)) {
        if (error != nullptr) *error = "curve element is not an object";
        return false;
      }
      parsed.curve.push_back(it);
    }
  }
  const JsonValue* summary = top.Get("summary", is_run);
  if (summary != nullptr && summary->is_object()) {
    FieldReader sum{*summary, &missing, "summary."};
    sum.Uint("iterations");
    parsed.best_f1 = sum.Number("best_f1");
    parsed.final_f1 = sum.Number("final_f1");
    parsed.labels_to_converge = sum.Uint("labels_to_converge");
    parsed.total_wait_seconds = sum.Number("total_wait_seconds");
    parsed.ensemble_accepted = sum.Uint("ensemble_accepted");
  }

  const JsonValue* counters = top.Get("counters", true);
  if (counters != nullptr && counters->is_object()) {
    for (const auto& [name, value] : counters->object()) {
      parsed.counters.emplace_back(
          name, value.is_number()
                    ? static_cast<uint64_t>(value.number_value() + 0.5)
                    : 0);
    }
  }
  const JsonValue* gauges = top.Get("gauges", true);
  if (gauges != nullptr && gauges->is_object()) {
    for (const auto& [name, value] : gauges->object()) {
      parsed.gauges.emplace_back(
          name, value.is_number() ? value.number_value() : 0.0);
    }
  }
  const JsonValue* spans = top.Get("spans", true);
  if (spans != nullptr && spans->is_array()) {
    for (const JsonValue& element : spans->array()) {
      if (!element.is_object()) continue;
      FieldReader span{element, &missing, "spans[]."};
      SpanRollupEntry entry;
      entry.name = span.String("name");
      entry.count = span.Uint("count");
      entry.total_seconds = span.Number("total_seconds");
      entry.self_seconds = span.Number("self_seconds");
      parsed.spans.push_back(std::move(entry));
    }
  }
  // Optional sections (pre-telemetry reports stay loadable).
  const JsonValue* latency = top.Get("latency", /*required=*/false);
  if (latency != nullptr && latency->is_array()) {
    for (const JsonValue& element : latency->array()) {
      if (!element.is_object()) continue;
      FieldReader lat{element, &missing, "latency[]."};
      LatencyEntry entry;
      entry.name = lat.String("name");
      entry.count = lat.Uint("count");
      entry.sum_seconds = lat.Number("sum_seconds");
      entry.p50_seconds = lat.Number("p50_seconds");
      entry.p95_seconds = lat.Number("p95_seconds");
      entry.p99_seconds = lat.Number("p99_seconds");
      parsed.latency.push_back(std::move(entry));
    }
  }
  const JsonValue* pool = top.Get("pool", /*required=*/false);
  if (pool != nullptr && pool->is_object()) {
    parsed.has_pool = true;
    FieldReader p{*pool, &missing, "pool."};
    parsed.pool.workers = static_cast<int>(p.Number("workers"));
    parsed.pool.busy_seconds = p.Number("busy_seconds");
    parsed.pool.idle_seconds = p.Number("idle_seconds");
    parsed.pool.queue_wait_seconds = p.Number("queue_wait_seconds");
    parsed.pool.worker_wall_seconds = p.Number("worker_wall_seconds");
    parsed.pool.utilization = p.Number("utilization");
    const JsonValue* regions = p.Get("regions", true);
    if (regions != nullptr && regions->is_array()) {
      for (const JsonValue& element : regions->array()) {
        if (!element.is_object()) continue;
        FieldReader reg{element, &missing, "pool.regions[]."};
        PoolRegionStats region;
        region.name = reg.String("name");
        region.runs = reg.Uint("runs");
        region.chunks = reg.Uint("chunks");
        region.min_chunk_seconds = reg.Number("min_chunk_seconds");
        region.max_chunk_seconds = reg.Number("max_chunk_seconds");
        region.mean_chunk_seconds = reg.Number("mean_chunk_seconds");
        region.utilization = reg.Number("utilization");
        parsed.pool.regions.push_back(std::move(region));
      }
    }
  }
  const JsonValue* profile = top.Get("profile", /*required=*/false);
  if (profile != nullptr && profile->is_object()) {
    parsed.has_profile = true;
    FieldReader prof{*profile, &missing, "profile."};
    parsed.profile.hw = prof.String("hw");
    const JsonValue* regions = prof.Get("regions", true);
    if (regions != nullptr && regions->is_array()) {
      for (const JsonValue& element : regions->array()) {
        if (!element.is_object()) continue;
        FieldReader reg{element, &missing, "profile.regions[]."};
        ProfileRegionStats region;
        region.name = reg.String("name");
        region.spans = reg.Uint("spans");
        region.seconds = reg.Number("seconds");
        region.items = reg.Uint("items");
        region.bytes = reg.Uint("bytes");
        region.flops = reg.Uint("flops");
        region.cycles = reg.Uint("cycles");
        region.instructions = reg.Uint("instructions");
        region.cache_refs = reg.Uint("cache_refs");
        region.cache_misses = reg.Uint("cache_misses");
        region.branch_misses = reg.Uint("branch_misses");
        region.items_per_sec = reg.Number("items_per_sec");
        region.bytes_per_sec = reg.Number("bytes_per_sec");
        region.flops_per_sec = reg.Number("flops_per_sec");
        region.ipc = reg.Number("ipc");
        parsed.profile.regions.push_back(std::move(region));
      }
    }
  }
  const JsonValue* process = top.Get("process", true);
  if (process != nullptr && process->is_object()) {
    FieldReader proc{*process, &missing, "process."};
    parsed.wall_seconds = proc.Number("wall_seconds");
    parsed.peak_rss_bytes = proc.Uint("peak_rss_bytes");
  }

  if (!missing.empty()) {
    if (error != nullptr) *error = "missing required fields: " + missing;
    return false;
  }
  if (parsed.schema_version != kReportSchemaVersion) {
    if (error != nullptr) {
      *error = "unsupported schema_version " +
               std::to_string(parsed.schema_version) + " (expected " +
               std::to_string(kReportSchemaVersion) + ")";
    }
    return false;
  }
  if (parsed.kind != "run" && parsed.kind != "bench") {
    if (error != nullptr) *error = "unknown report kind '" + parsed.kind + "'";
    return false;
  }
  if (is_run && parsed.curve.empty()) {
    if (error != nullptr) *error = "run report has an empty curve";
    return false;
  }
  *report = std::move(parsed);
  return true;
}

bool WriteReportJson(const std::string& path, const RunReport& report) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file.is_open()) return false;
  const std::string json = ReportToJson(report);
  file.write(json.data(), static_cast<std::streamsize>(json.size()));
  return file.good();
}

bool LoadReportFile(const std::string& path, RunReport* report,
                    std::string* error) {
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) {
    if (error != nullptr) *error = "cannot read " + path;
    return false;
  }
  std::ostringstream content;
  content << file.rdbuf();
  return ParseReportJson(content.str(), report, error);
}

// ---- Regression gate --------------------------------------------------

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void CheckLatency(const char* what, double baseline, double candidate,
                  double tolerance, std::vector<std::string>* failures) {
  // Relative tolerance with a 10ms absolute grace so micro-runs do not
  // fail on scheduler jitter.
  const double limit = baseline * (1.0 + tolerance) + 0.010;
  if (candidate > limit) {
    failures->push_back(std::string(what) + " regressed: " +
                        FormatDouble(candidate) + "s vs baseline " +
                        FormatDouble(baseline) + "s (limit " +
                        FormatDouble(limit) + "s)");
  }
}

}  // namespace

std::vector<std::string> CheckReports(const RunReport& baseline,
                                      const RunReport& candidate,
                                      const ReportCheckOptions& options) {
  std::vector<std::string> failures;
  if (baseline.kind != candidate.kind) {
    failures.push_back("kind mismatch: baseline '" + baseline.kind +
                       "' vs candidate '" + candidate.kind + "'");
    return failures;
  }

  if (options.exact_curve) {
    if (baseline.curve.size() != candidate.curve.size()) {
      failures.push_back(
          "curve length differs: " + std::to_string(baseline.curve.size()) +
          " vs " + std::to_string(candidate.curve.size()));
    } else {
      for (size_t i = 0; i < baseline.curve.size(); ++i) {
        const ReportIteration& a = baseline.curve[i];
        const ReportIteration& b = candidate.curve[i];
        if (a.labels_used != b.labels_used || a.f1 != b.f1 ||
            a.precision != b.precision || a.recall != b.recall) {
          failures.push_back(
              "curve diverges at iteration " + std::to_string(i + 1) +
              ": labels " + std::to_string(a.labels_used) + "/" +
              std::to_string(b.labels_used) + ", F1 " + FormatDouble(a.f1) +
              "/" + FormatDouble(b.f1));
          break;
        }
      }
    }
  }

  if (baseline.kind == "run") {
    if (candidate.final_f1 < baseline.final_f1 - options.f1_tol) {
      failures.push_back(
          "final F1 regressed: " + FormatDouble(candidate.final_f1) +
          " vs baseline " + FormatDouble(baseline.final_f1) + " (tolerance " +
          FormatDouble(options.f1_tol) + ")");
    }
    if (candidate.best_f1 < baseline.best_f1 - options.f1_tol) {
      failures.push_back(
          "best F1 regressed: " + FormatDouble(candidate.best_f1) +
          " vs baseline " + FormatDouble(baseline.best_f1) + " (tolerance " +
          FormatDouble(options.f1_tol) + ")");
    }
    // A run that scored no examples or queried no labels measured nothing.
    for (const char* name : {"oracle.queries", "selector.scored_examples"}) {
      if (candidate.CounterOr(name) == 0) {
        failures.push_back(std::string("counter ") + name +
                           " is zero or missing in candidate");
      }
    }
  }

  if (options.latency_tol >= 0.0) {
    CheckLatency("total_wait_seconds", baseline.total_wait_seconds,
                 candidate.total_wait_seconds, options.latency_tol,
                 &failures);
    CheckLatency("wall_seconds", baseline.wall_seconds,
                 candidate.wall_seconds, options.latency_tol, &failures);
  }

  if (options.latency_p95_tol >= 0.0) {
    // Gate only regions present on both sides: thread-count changes add or
    // remove parallel regions structurally, and a missing region is not a
    // latency regression.
    for (const LatencyEntry& base : baseline.latency) {
      const LatencyEntry* cand = nullptr;
      for (const LatencyEntry& entry : candidate.latency) {
        if (entry.name == base.name) {
          cand = &entry;
          break;
        }
      }
      if (cand == nullptr) continue;
      CheckLatency(("p95." + base.name).c_str(), base.p95_seconds,
                   cand->p95_seconds, options.latency_p95_tol, &failures);
    }
  }

  if (options.counter_tol >= 0.0) {
    for (const auto& [name, base_value] : baseline.counters) {
      const uint64_t cand_value = candidate.CounterOr(name, UINT64_MAX);
      if (cand_value == UINT64_MAX) {
        failures.push_back("counter " + name + " missing in candidate");
        continue;
      }
      const double denom =
          std::max<double>(1.0, static_cast<double>(base_value));
      const double relative =
          std::abs(static_cast<double>(cand_value) -
                   static_cast<double>(base_value)) /
          denom;
      if (relative > options.counter_tol) {
        failures.push_back("counter " + name + " drifted: " +
                           std::to_string(cand_value) + " vs baseline " +
                           std::to_string(base_value) + " (relative " +
                           FormatDouble(relative) + " > " +
                           FormatDouble(options.counter_tol) + ")");
      }
    }
  }

  if (options.throughput_tol >= 0.0 && baseline.has_profile &&
      candidate.has_profile) {
    // Gate only regions profiled on both sides with a measurable items/sec
    // on both sides: allowlist changes add or remove regions structurally,
    // and a region that never ran (zero work or zero time) has no
    // throughput to regress.
    for (const ProfileRegionStats& base : baseline.profile.regions) {
      if (base.items_per_sec <= 0.0) continue;
      const ProfileRegionStats* cand = nullptr;
      for (const ProfileRegionStats& entry : candidate.profile.regions) {
        if (entry.name == base.name) {
          cand = &entry;
          break;
        }
      }
      if (cand == nullptr || cand->items_per_sec <= 0.0) continue;
      const double floor = base.items_per_sec *
                           (1.0 - options.throughput_tol);
      if (cand->items_per_sec < floor) {
        failures.push_back(
            "throughput " + base.name + " regressed: " +
            FormatDouble(cand->items_per_sec) + " items/s vs baseline " +
            FormatDouble(base.items_per_sec) + " items/s (floor " +
            FormatDouble(floor) + ")");
      }
    }
  }
  return failures;
}

}  // namespace obs
}  // namespace alem
