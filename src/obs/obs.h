// Zero-dependency observability layer: trace spans + metrics.
//
// The paper's contribution is *measurement* — per-iteration F1, the
// committee-creation vs. example-scoring latency split, user wait time
// (Figs. 8-13). This library makes every pipeline stage independently
// observable instead of relying on scattered StopWatch fields:
//
//   * ObsSpan        RAII span forming a per-thread hierarchical stack.
//                    Always measures wall-clock time (callers derive their
//                    latency stats from it); records into the global
//                    TraceRecorder only while tracing is enabled.
//   * TraceRecorder  lock-protected global span sink, exportable as Chrome
//                    trace-event JSON (chrome://tracing / Perfetto) or flat
//                    JSONL.
//   * MetricsRegistry named Counters / Gauges / Histograms with a
//                    Snapshot() API and text/CSV dumps.
//
// Both subsystems are off by default. A disabled Counter::Add is one
// relaxed atomic load and a predicted branch; a disabled span is two
// steady_clock reads (the same cost as the StopWatch it replaces), so
// instrumented hot paths run at their uninstrumented speed.
//
// Canonical metric names used across the pipeline:
//   oracle.queries             #labels handed out by the Oracle
//   selector.scored_examples   #unlabeled examples fully scored
//   blocking.pruned            #examples skipped by selection-time blocking
//   blocking.candidate_pairs   #pairs surviving offline blocking
//   sim.calls                  #similarity-function evaluations
//   ml.fit_calls / ml.predict_calls
//   loop.iterations / loop.labels_used / ensemble.accepted

#ifndef ALEM_OBS_OBS_H_
#define ALEM_OBS_OBS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace alem {
namespace obs {

namespace detail {
extern std::atomic<bool> g_tracing_enabled;
extern std::atomic<bool> g_metrics_enabled;
// Hot counter for Learner::Predict: a registry lookup (even a cached one)
// is too heavy for a per-example call, so the inline wrapper touches this
// plain atomic directly. Snapshot() reports it as "ml.predict_calls".
extern std::atomic<uint64_t> g_predict_calls;
}  // namespace detail

inline bool TracingEnabled() {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}
inline bool MetricsEnabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
void SetTracingEnabled(bool enabled);
void SetMetricsEnabled(bool enabled);

// One relaxed load + predicted branch when metrics are off.
inline void CountPredictCall() {
  if (MetricsEnabled()) {
    detail::g_predict_calls.fetch_add(1, std::memory_order_relaxed);
  }
}

// Bulk variant for the batch prediction path: one relaxed add covers a
// whole row range, keeping ml.predict_calls exactly equal to what per-row
// counting would have produced.
inline void CountPredictCalls(uint64_t n) {
  if (MetricsEnabled()) {
    detail::g_predict_calls.fetch_add(n, std::memory_order_relaxed);
  }
}

// Unconditional absolute set of the predict-call count. ml.predict_calls is
// synthesized into Snapshot() from this atomic rather than living in the
// registry, so session restore (which re-establishes every counter from a
// snapshot; docs/sessions.md) needs this dedicated setter.
inline void SetPredictCalls(uint64_t n) {
  detail::g_predict_calls.store(n, std::memory_order_relaxed);
}

// ---- Metrics ----------------------------------------------------------

// Monotonically increasing count. Thread-safe; no-op while metrics are off.
class Counter {
 public:
  void Add(uint64_t n) {
    if (MetricsEnabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  // Sets the absolute value unconditionally (like Reset, unlike Add):
  // session restore re-establishes process-cumulative counts from a
  // snapshot so a resumed run's totals stitch up exactly
  // (docs/sessions.md).
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-written value. Thread-safe; no-op while metrics are off.
class Gauge {
 public:
  void Set(double v) {
    if (MetricsEnabled()) value_.store(v, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramSnapshot {
  // Upper bounds of the finite buckets; an implicit +Inf bucket follows.
  std::vector<double> bounds;
  // bucket[i] counts observations v with v <= bounds[i] (and > bounds[i-1]);
  // bucket[bounds.size()] is the overflow bucket.
  std::vector<uint64_t> buckets;
  uint64_t count = 0;
  double sum = 0.0;

  // Prometheus-style quantile estimate: linear interpolation inside the
  // bucket holding rank q*count (first bucket interpolates from 0).
  // Returns 0 for an empty histogram; observations in the overflow bucket
  // clamp to the last finite bound. q is clamped to [0, 1].
  double Quantile(double q) const;
  double P50() const { return Quantile(0.50); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }
};

// Fixed-bucket histogram. Bounds are sorted upper bounds ("le" semantics);
// observations above the last bound land in an overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);
  HistogramSnapshot Snapshot() const;
  const std::vector<double>& bounds() const { return bounds_; }
  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  // "name value" lines for terminals.
  std::string ToText() const;
  // "kind,name,field,value" rows (histograms expand to one row per bucket).
  std::string ToCsv() const;
};

// Global, mutex-protected registry. Get* registers on first use and returns
// a reference that stays valid for the process lifetime (values live behind
// unique_ptrs), so call sites can cache it in a function-local static.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  // The bounds are fixed by the first registration of `name`.
  Histogram& GetHistogram(std::string_view name, std::vector<double> bounds);

  MetricsSnapshot Snapshot() const;
  // Zeroes every registered metric (names stay registered).
  void ResetAll();

  bool WriteCsv(const std::string& path) const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Shared bucket layout for the per-region `lat.<name>` span-latency
// histograms: log-spaced upper bounds from 1µs to 100s, four buckets per
// decade, so p50/p95/p99 estimates stay within ~30% of the true value at
// any magnitude a pipeline stage can plausibly take.
const std::vector<double>& LatencyBounds();

// ---- Tracing ----------------------------------------------------------

struct SpanRecord {
  std::string name;
  std::string category;
  // Free-form annotation (e.g. the learner name for "ml.fit" spans).
  std::string detail;
  // Small sequential per-thread id (not the OS thread id).
  uint32_t thread_id = 0;
  // Nesting depth at the span's start (0 = top level on its thread).
  int depth = 0;
  // Nanoseconds relative to the process-wide trace epoch.
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
};

// One sampled value of a time-series counter (the telemetry sampler's
// output): exported as a Chrome trace-event counter ("C" phase) so
// Perfetto renders the series as a resource curve over the run.
struct CounterRecord {
  std::string name;
  uint64_t ts_ns = 0;  // Nanoseconds relative to the trace epoch.
  double value = 0.0;
};

// Global lock-protected span sink.
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  void Record(SpanRecord record);
  std::vector<SpanRecord> Snapshot() const;
  size_t size() const;  // Span records only (counter samples not included).
  void Clear();         // Drops spans and counter samples.

  // Appends one counter sample; no-op while tracing is disabled.
  void RecordCounter(std::string_view name, double value);
  std::vector<CounterRecord> CounterSnapshot() const;
  size_t counter_size() const;

  // {"traceEvents":[...]} with "X" (complete) span events plus "C"
  // (counter) events for sampled series, ts/dur in microseconds —
  // loadable by chrome://tracing and Perfetto.
  std::string ToChromeTraceJson() const;
  // One JSON object per line: name, cat, detail, tid, depth, start_us,
  // dur_us.
  std::string ToJsonl() const;

  bool WriteChromeTrace(const std::string& path) const;
  bool WriteJsonl(const std::string& path) const;

 private:
  TraceRecorder() = default;

  mutable std::mutex mutex_;
  std::vector<SpanRecord> records_;
  std::vector<CounterRecord> counters_;
};

// RAII trace span. Construction starts the clock; Close() (or destruction)
// stops it and, while tracing is enabled, records the span globally.
// Close() returns the elapsed seconds so latency statistics are *derived
// from the span* instead of being measured twice. While metrics are
// enabled, Close() additionally observes the duration into the
// "lat.<name>" histogram (LatencyBounds() buckets), giving every named
// region p50/p95/p99 tail-latency percentiles for free.
class ObsSpan {
 public:
  explicit ObsSpan(std::string_view name, std::string_view category = "",
                   std::string_view detail = "");
  ~ObsSpan();

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

  // Ends the span and returns its duration in seconds. Idempotent: later
  // calls return the recorded duration without re-recording.
  double Close();

  // Elapsed seconds so far without ending the span.
  double ElapsedSeconds() const;

 private:
  std::string name_;
  std::string category_;
  std::string detail_;
  uint64_t start_ns_;
  uint64_t duration_ns_ = 0;
  int depth_;
  bool open_ = true;
  // True when this span's name is an actively profiled region
  // (obs/profile.h): Close() then feeds the duration and this thread's
  // hardware-counter delta into that region's accumulators.
  bool profiled_ = false;
};

// Nanoseconds since the process-wide trace epoch (first use).
uint64_t TraceNowNanos();

// Peak resident set size of this process in bytes. Reads Linux
// /proc/self/status VmHWM, falling back to getrusage(ru_maxrss); returns 0
// when neither source is available. Stamped into every RunReport and
// published as the `process.peak_rss_bytes` gauge (obs/report.h).
uint64_t PeakRssBytes();

namespace detail {
// Normalizes a getrusage ru_maxrss value to bytes in one place: the field
// is KiB on Linux (and most Unixes) but *bytes* on macOS. Non-positive
// values (unset / unsupported platforms) normalize to 0.
uint64_t RuMaxRssToBytes(long ru_maxrss);
}  // namespace detail

// Current resident set size in bytes (Linux /proc/self/statm); 0 when
// unavailable. Sampled by the telemetry sampler (obs/telemetry.h) to plot
// the memory curve over a run.
uint64_t CurrentRssBytes();

}  // namespace obs
}  // namespace alem

#endif  // ALEM_OBS_OBS_H_
