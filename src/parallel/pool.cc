#include "parallel/pool.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "obs/obs.h"
#include "util/check.h"

namespace alem {
namespace parallel {

namespace {

thread_local bool t_pool_worker = false;

}  // namespace

// ---- ThreadPool --------------------------------------------------------

ThreadPool::ThreadPool(int num_threads) {
  ALEM_CHECK_GE(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::OnWorkerThread() { return t_pool_worker; }

void ThreadPool::WorkerLoop() {
  t_pool_worker = true;
  uint64_t seen_generation = 0;
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (generation_ != seen_generation && job_ != nullptr);
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
    }
    RunChunks(*job);
  }
}

void ThreadPool::RunChunks(Job& job) {
  while (true) {
    const size_t chunk = job.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job.num_chunks) return;
    try {
      (*job.fn)(chunk);
    } catch (...) {
      // Keep the lowest-indexed chunk's exception so the rethrow in Run()
      // does not depend on scheduling.
      std::lock_guard<std::mutex> lock(job.error_mutex);
      if (job.error == nullptr || chunk < job.error_chunk) {
        job.error = std::current_exception();
        job.error_chunk = chunk;
      }
    }
    // acq_rel: the final completion forms a release sequence Run()'s
    // acquire load synchronizes with, making every chunk's writes visible
    // to the submitter.
    if (job.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.num_chunks) {
      std::lock_guard<std::mutex> lock(mutex_);  // Pairs with Run()'s wait.
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::Run(size_t num_chunks, const std::function<void(size_t)>& fn) {
  if (OnWorkerThread()) {
    throw std::logic_error(
        "ThreadPool::Run: nested submission from a pool worker is rejected "
        "(it could deadlock); use ParallelFor, which runs nested regions "
        "inline");
  }
  if (num_chunks == 0) return;
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->num_chunks = num_chunks;

  std::unique_lock<std::mutex> lock(mutex_);
  // Serialize concurrent submitters: one fork-join region at a time.
  done_cv_.wait(lock, [&] { return job_ == nullptr; });
  job_ = job;
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [&] {
    return job->completed.load(std::memory_order_acquire) == job->num_chunks;
  });
  job_ = nullptr;
  done_cv_.notify_all();  // Wake submitters waiting for job_ == nullptr.
  lock.unlock();

  if (job->error != nullptr) std::rethrow_exception(job->error);
}

// ---- Global pool configuration -----------------------------------------

namespace {

std::mutex g_config_mutex;
int g_num_threads = 0;  // 0 = not yet resolved.
ThreadPool* g_pool = nullptr;

int ResolveDefaultThreads() {
  const char* env = std::getenv("ALEM_THREADS");
  if (env != nullptr && *env != '\0') {
    const long parsed = std::atol(env);
    if (parsed >= 1) return static_cast<int>(parsed);
  }
  return HardwareThreads();
}

// Callers must hold g_config_mutex.
int NumThreadsLocked() {
  if (g_num_threads == 0) g_num_threads = ResolveDefaultThreads();
  return g_num_threads;
}

}  // namespace

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int NumThreads() {
  std::lock_guard<std::mutex> lock(g_config_mutex);
  return NumThreadsLocked();
}

void SetNumThreads(int num_threads) {
  num_threads = std::max(1, num_threads);
  std::lock_guard<std::mutex> lock(g_config_mutex);
  if (num_threads == g_num_threads) return;
  g_num_threads = num_threads;
  delete g_pool;  // Joins the old workers.
  g_pool = nullptr;
}

// ---- ParallelFor -------------------------------------------------------

void ParallelFor(size_t begin, size_t end, size_t grain, const ChunkFn& fn,
                 std::string_view region) {
  ALEM_CHECK_GT(grain, 0u);
  if (end <= begin) return;
  const size_t num_chunks = NumChunks(begin, end, grain);
  auto run_chunk = [&](size_t chunk) {
    const size_t chunk_begin = begin + chunk * grain;
    const size_t chunk_end = std::min(end, chunk_begin + grain);
    fn(chunk_begin, chunk_end, chunk);
  };

  ThreadPool* pool = nullptr;
  if (num_chunks > 1 && !ThreadPool::OnWorkerThread()) {
    std::lock_guard<std::mutex> lock(g_config_mutex);
    if (NumThreadsLocked() > 1) {
      if (g_pool == nullptr) g_pool = new ThreadPool(g_num_threads);
      pool = g_pool;
    }
  }
  if (pool == nullptr) {
    // Serial path (threads=1, single chunk, or nested region): same chunk
    // decomposition, inline and in index order — bitwise-identical results,
    // and no extra trace spans so serial traces match the pre-parallel ones.
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) run_chunk(chunk);
    return;
  }

  if (!region.empty()) {
    obs::ObsSpan aggregate_span(std::string(region) + ".parallel", "parallel");
    pool->Run(num_chunks, [&](size_t chunk) {
      obs::ObsSpan chunk_span("parallel.chunk", "parallel", region);
      run_chunk(chunk);
    });
  } else {
    pool->Run(num_chunks, run_chunk);
  }
}

uint64_t TaskSeed(uint64_t base, uint64_t index) {
  // splitmix64 finalizer over a golden-ratio stride: distinct indices land
  // in distinct, well-mixed streams for any fixed base.
  uint64_t z = base + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace parallel
}  // namespace alem
