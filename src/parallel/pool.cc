#include "parallel/pool.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>

#include "obs/obs.h"
#include "obs/profile.h"
#include "obs/report.h"
#include "obs/telemetry.h"
#include "util/check.h"

namespace alem {
namespace parallel {

namespace {

thread_local bool t_pool_worker = false;

// ---- Profile globals ---------------------------------------------------

// Totals folded in from pools destroyed by SetNumThreads, so a run that
// reconfigures its thread count keeps its full accounting history.
struct FoldedTotals {
  int workers = 0;  // Largest worker count any folded pool had.
  double busy_seconds = 0.0;
  double idle_seconds = 0.0;
  double queue_wait_seconds = 0.0;
  double worker_wall_seconds = 0.0;
};

// Per-region running aggregate behind g_profile_mutex.
struct RegionAccum {
  uint64_t runs = 0;
  uint64_t chunks = 0;
  double min_chunk_seconds = std::numeric_limits<double>::infinity();
  double max_chunk_seconds = 0.0;
  double busy_seconds = 0.0;
  double wall_seconds = 0.0;
  // Sum over runs of workers × region wall — the utilization denominator.
  double capacity_seconds = 0.0;
};

std::mutex g_profile_mutex;
FoldedTotals g_folded;
std::map<std::string, RegionAccum>& Regions() {
  static std::map<std::string, RegionAccum>* regions =
      new std::map<std::string, RegionAccum>();
  return *regions;
}

std::atomic<int> g_active_workers{0};

void AccumulateRegionProfile(std::string_view region, int workers,
                             double wall_seconds,
                             const std::vector<double>& chunk_seconds) {
  double busy = 0.0;
  double min_chunk = std::numeric_limits<double>::infinity();
  double max_chunk = 0.0;
  for (const double s : chunk_seconds) {
    busy += s;
    min_chunk = std::min(min_chunk, s);
    max_chunk = std::max(max_chunk, s);
  }
  std::lock_guard<std::mutex> lock(g_profile_mutex);
  RegionAccum& accum = Regions()[std::string(region)];
  accum.runs += 1;
  accum.chunks += chunk_seconds.size();
  accum.min_chunk_seconds = std::min(accum.min_chunk_seconds, min_chunk);
  accum.max_chunk_seconds = std::max(accum.max_chunk_seconds, max_chunk);
  accum.busy_seconds += busy;
  accum.wall_seconds += wall_seconds;
  accum.capacity_seconds += static_cast<double>(workers) * wall_seconds;
}

// Telemetry pool-occupancy probe, registered from this TU so obs never
// depends on parallel. Probes() in obs/telemetry.cc is a leaked Meyers
// singleton, so registering from a static initializer is safe.
const bool g_pool_probe_registered = [] {
  obs::RegisterTelemetryProbe("telemetry.pool_active_workers", [] {
    return static_cast<double>(ActiveWorkers());
  });
  return true;
}();

}  // namespace

// ---- ThreadPool --------------------------------------------------------

ThreadPool::ThreadPool(int num_threads) {
  ALEM_CHECK_GE(num_threads, 1);
  accounts_ = std::make_unique<WorkerAccount[]>(
      static_cast<size_t>(num_threads));
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back(
        [this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Fold the final accounting into the process-wide profile so a pool
  // rebuild (SetNumThreads) does not lose history.
  const Totals totals = SnapshotAccounts();
  std::lock_guard<std::mutex> lock(g_profile_mutex);
  g_folded.workers = std::max(g_folded.workers, num_threads());
  g_folded.busy_seconds += totals.busy_seconds;
  g_folded.idle_seconds += totals.idle_seconds;
  g_folded.queue_wait_seconds += totals.queue_wait_seconds;
  g_folded.worker_wall_seconds += totals.worker_wall_seconds;
}

bool ThreadPool::OnWorkerThread() { return t_pool_worker; }

ThreadPool::Totals ThreadPool::SnapshotAccounts() const {
  Totals totals;
  const uint64_t now = obs::TraceNowNanos();
  for (size_t i = 0; i < workers_.size(); ++i) {
    const WorkerAccount& account = accounts_[i];
    const uint64_t start = account.start_ns.load(std::memory_order_relaxed);
    if (start == 0) continue;  // Worker thread not up yet.
    const uint64_t end = account.end_ns.load(std::memory_order_relaxed);
    const uint64_t upto = end != 0 ? end : std::max(now, start);
    totals.worker_wall_seconds += static_cast<double>(upto - start) / 1e9;
    totals.busy_seconds +=
        static_cast<double>(
            account.busy_ns.load(std::memory_order_relaxed)) /
        1e9;
    totals.queue_wait_seconds +=
        static_cast<double>(
            account.queue_ns.load(std::memory_order_relaxed)) /
        1e9;
    double idle =
        static_cast<double>(account.idle_ns.load(std::memory_order_relaxed)) /
        1e9;
    // A live worker blocked in its job wait has an open idle interval;
    // extend it to "now" so busy + idle + queue-wait tracks the wall.
    const uint64_t idle_since =
        account.idle_since_ns.load(std::memory_order_relaxed);
    if (end == 0 && idle_since != 0 && now > idle_since) {
      idle += static_cast<double>(now - idle_since) / 1e9;
    }
    totals.idle_seconds += idle;
  }
  return totals;
}

void ThreadPool::WorkerLoop(size_t worker) {
  t_pool_worker = true;
  WorkerAccount& account = accounts_[worker];
  uint64_t seen_generation = 0;
  // One "cycle" spans from waking with a job to re-entering the wait; the
  // part of it that was not chunk execution (claim overhead, completion
  // notify, mutex re-acquisition) is charged to queue wait, so busy +
  // idle + queue-wait tiles the worker wall with no gaps. The wall clock
  // starts at the first wait, not at thread spawn: spawn -> first mutex
  // acquisition is scheduler noise that belongs to no bucket, and charging
  // it would open a gap in the tiling whenever the host CPU is contended.
  uint64_t cycle_start_ns = 0;  // wait_end of the previous cycle; 0 = none.
  uint64_t cycle_busy_ns = 0;
  while (true) {
    std::shared_ptr<Job> job;
    uint64_t wait_end = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      const uint64_t wait_start = obs::TraceNowNanos();
      if (cycle_start_ns != 0) {
        account.queue_ns.fetch_add(wait_start - cycle_start_ns - cycle_busy_ns,
                                   std::memory_order_relaxed);
      } else {
        account.start_ns.store(wait_start, std::memory_order_relaxed);
      }
      account.idle_since_ns.store(wait_start, std::memory_order_relaxed);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (generation_ != seen_generation && job_ != nullptr);
      });
      wait_end = obs::TraceNowNanos();
      account.idle_since_ns.store(0, std::memory_order_relaxed);
      account.idle_ns.fetch_add(wait_end - wait_start,
                                std::memory_order_relaxed);
      if (shutdown_) {
        account.end_ns.store(wait_end, std::memory_order_relaxed);
        return;
      }
      seen_generation = generation_;
      job = job_;
    }
    cycle_busy_ns = RunChunks(*job, account);
    cycle_start_ns = wait_end;
  }
}

uint64_t ThreadPool::RunChunks(Job& job, WorkerAccount& account) {
  uint64_t busy_ns = 0;
  while (true) {
    const size_t chunk = job.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job.num_chunks) break;
    const uint64_t chunk_start = obs::TraceNowNanos();
    g_active_workers.fetch_add(1, std::memory_order_relaxed);
    try {
      (*job.fn)(chunk);
    } catch (...) {
      // Keep the lowest-indexed chunk's exception so the rethrow in Run()
      // does not depend on scheduling.
      std::lock_guard<std::mutex> lock(job.error_mutex);
      if (job.error == nullptr || chunk < job.error_chunk) {
        job.error = std::current_exception();
        job.error_chunk = chunk;
      }
    }
    g_active_workers.fetch_sub(1, std::memory_order_relaxed);
    busy_ns += obs::TraceNowNanos() - chunk_start;
    // acq_rel: the final completion forms a release sequence Run()'s
    // acquire load synchronizes with, making every chunk's writes visible
    // to the submitter.
    if (job.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.num_chunks) {
      std::lock_guard<std::mutex> lock(mutex_);  // Pairs with Run()'s wait.
      done_cv_.notify_all();
    }
  }
  account.busy_ns.fetch_add(busy_ns, std::memory_order_relaxed);
  return busy_ns;
}

void ThreadPool::Run(size_t num_chunks, const std::function<void(size_t)>& fn) {
  if (OnWorkerThread()) {
    throw std::logic_error(
        "ThreadPool::Run: nested submission from a pool worker is rejected "
        "(it could deadlock); use ParallelFor, which runs nested regions "
        "inline");
  }
  if (num_chunks == 0) return;
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->num_chunks = num_chunks;

  std::unique_lock<std::mutex> lock(mutex_);
  // Serialize concurrent submitters: one fork-join region at a time.
  done_cv_.wait(lock, [&] { return job_ == nullptr; });
  job_ = job;
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [&] {
    return job->completed.load(std::memory_order_acquire) == job->num_chunks;
  });
  job_ = nullptr;
  done_cv_.notify_all();  // Wake submitters waiting for job_ == nullptr.
  lock.unlock();

  if (job->error != nullptr) std::rethrow_exception(job->error);
}

// ---- Global pool configuration -----------------------------------------

namespace {

std::mutex g_config_mutex;
int g_num_threads = 0;  // 0 = not yet resolved.
ThreadPool* g_pool = nullptr;

int ResolveDefaultThreads() {
  const char* env = std::getenv("ALEM_THREADS");
  if (env != nullptr && *env != '\0') {
    const long parsed = std::atol(env);
    if (parsed >= 1) return static_cast<int>(parsed);
  }
  return HardwareThreads();
}

// Callers must hold g_config_mutex.
int NumThreadsLocked() {
  if (g_num_threads == 0) g_num_threads = ResolveDefaultThreads();
  return g_num_threads;
}

}  // namespace

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int NumThreads() {
  std::lock_guard<std::mutex> lock(g_config_mutex);
  return NumThreadsLocked();
}

void SetNumThreads(int num_threads) {
  num_threads = std::max(1, num_threads);
  std::lock_guard<std::mutex> lock(g_config_mutex);
  if (num_threads == g_num_threads) return;
  g_num_threads = num_threads;
  delete g_pool;  // Joins the old workers (folding their accounting).
  g_pool = nullptr;
}

// ---- Pool utilization profile ------------------------------------------

int ActiveWorkers() {
  return g_active_workers.load(std::memory_order_relaxed);
}

PoolProfile SnapshotPoolProfile() {
  PoolProfile profile;
  {
    // Lock order: config before profile (the ~ThreadPool fold inside
    // SetNumThreads takes them in the same order).
    std::lock_guard<std::mutex> config_lock(g_config_mutex);
    ThreadPool::Totals live;
    int live_workers = 0;
    if (g_pool != nullptr) {
      live = g_pool->SnapshotAccounts();
      live_workers = g_pool->num_threads();
    }
    std::lock_guard<std::mutex> lock(g_profile_mutex);
    profile.workers = std::max(live_workers, g_folded.workers);
    profile.busy_seconds = g_folded.busy_seconds + live.busy_seconds;
    profile.idle_seconds = g_folded.idle_seconds + live.idle_seconds;
    profile.queue_wait_seconds =
        g_folded.queue_wait_seconds + live.queue_wait_seconds;
    profile.worker_wall_seconds =
        g_folded.worker_wall_seconds + live.worker_wall_seconds;
    for (const auto& [name, accum] : Regions()) {
      PoolRegionProfile region;
      region.name = name;
      region.runs = accum.runs;
      region.chunks = accum.chunks;
      region.min_chunk_seconds =
          accum.chunks > 0 ? accum.min_chunk_seconds : 0.0;
      region.max_chunk_seconds = accum.max_chunk_seconds;
      region.mean_chunk_seconds =
          accum.chunks > 0
              ? accum.busy_seconds / static_cast<double>(accum.chunks)
              : 0.0;
      region.busy_seconds = accum.busy_seconds;
      region.wall_seconds = accum.wall_seconds;
      region.utilization = accum.capacity_seconds > 0.0
                               ? accum.busy_seconds / accum.capacity_seconds
                               : 0.0;
      profile.regions.push_back(std::move(region));
    }
  }
  if (profile.worker_wall_seconds > 0.0) {
    profile.utilization =
        profile.busy_seconds / profile.worker_wall_seconds;
  }
  return profile;
}

void ResetPoolProfile() {
  std::lock_guard<std::mutex> config_lock(g_config_mutex);
  delete g_pool;  // Folds its accounting first...
  g_pool = nullptr;
  std::lock_guard<std::mutex> lock(g_profile_mutex);
  g_folded = FoldedTotals();  // ...which this then discards.
  Regions().clear();
}

void StampPoolProfile(obs::RunReport* report) {
  const PoolProfile profile = SnapshotPoolProfile();
  if (!profile.engaged()) return;  // Serial run: no pool section, no gauges.
  report->has_pool = true;
  report->pool.workers = profile.workers;
  report->pool.busy_seconds = profile.busy_seconds;
  report->pool.idle_seconds = profile.idle_seconds;
  report->pool.queue_wait_seconds = profile.queue_wait_seconds;
  report->pool.worker_wall_seconds = profile.worker_wall_seconds;
  report->pool.utilization = profile.utilization;
  report->pool.regions.clear();
  for (const PoolRegionProfile& region : profile.regions) {
    obs::PoolRegionStats stats;
    stats.name = region.name;
    stats.runs = region.runs;
    stats.chunks = region.chunks;
    stats.min_chunk_seconds = region.min_chunk_seconds;
    stats.max_chunk_seconds = region.max_chunk_seconds;
    stats.mean_chunk_seconds = region.mean_chunk_seconds;
    stats.utilization = region.utilization;
    report->pool.regions.push_back(std::move(stats));
  }
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    registry.GetGauge("parallel.pool.workers")
        .Set(static_cast<double>(profile.workers));
    registry.GetGauge("parallel.pool.busy_seconds")
        .Set(profile.busy_seconds);
    registry.GetGauge("parallel.pool.idle_seconds")
        .Set(profile.idle_seconds);
    registry.GetGauge("parallel.pool.queue_wait_seconds")
        .Set(profile.queue_wait_seconds);
    registry.GetGauge("parallel.pool.worker_wall_seconds")
        .Set(profile.worker_wall_seconds);
    registry.GetGauge("parallel.pool.utilization")
        .Set(profile.utilization);
  }
}

// ---- ParallelFor -------------------------------------------------------

void ParallelFor(size_t begin, size_t end, size_t grain, const ChunkFn& fn,
                 std::string_view region) {
  ALEM_CHECK_GT(grain, 0u);
  if (end <= begin) return;
  const size_t num_chunks = NumChunks(begin, end, grain);
  auto run_chunk = [&](size_t chunk) {
    const size_t chunk_begin = begin + chunk * grain;
    const size_t chunk_end = std::min(end, chunk_begin + grain);
    fn(chunk_begin, chunk_end, chunk);
  };

  ThreadPool* pool = nullptr;
  if (num_chunks > 1 && !ThreadPool::OnWorkerThread()) {
    std::lock_guard<std::mutex> lock(g_config_mutex);
    if (NumThreadsLocked() > 1) {
      if (g_pool == nullptr) g_pool = new ThreadPool(g_num_threads);
      pool = g_pool;
    }
  }
  if (pool == nullptr) {
    // Serial path (threads=1, single chunk, or nested region): same chunk
    // decomposition, inline and in index order — bitwise-identical results,
    // and no extra trace spans so serial traces match the pre-parallel ones.
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) run_chunk(chunk);
    return;
  }

  if (!region.empty()) {
    // Chunk durations land in disjoint per-chunk slots (only read after
    // Run()'s completion barrier), feeding the per-region imbalance stats.
    const bool profile = obs::MetricsEnabled();
    std::vector<double> chunk_seconds;
    if (profile) chunk_seconds.assign(num_chunks, 0.0);
    // Roofline profiling (obs/profile.h): when this region is on the
    // profile allowlist, each worker samples its own hardware-counter
    // group around its chunk, so parallel regions attribute cycles and
    // cache traffic from every thread — the caller's ScopedWork or span
    // contributes the wall time and its own (mostly waiting) counters.
    obs::profile::Region* hw_region =
        obs::profile::Enabled() ? obs::profile::ActiveRegion(region) : nullptr;
    obs::ObsSpan aggregate_span(std::string(region) + ".parallel", "parallel");
    pool->Run(num_chunks, [&](size_t chunk) {
      obs::ObsSpan chunk_span("parallel.chunk", "parallel", region);
      obs::profile::ScopedHwSample hw_sample(hw_region);
      run_chunk(chunk);
      if (profile) chunk_seconds[chunk] = chunk_span.Close();
    });
    const double wall_seconds = aggregate_span.Close();
    if (profile) {
      AccumulateRegionProfile(region, pool->num_threads(), wall_seconds,
                              chunk_seconds);
    }
  } else {
    pool->Run(num_chunks, run_chunk);
  }
}

uint64_t TaskSeed(uint64_t base, uint64_t index) {
  // splitmix64 finalizer over a golden-ratio stride: distinct indices land
  // in distinct, well-mixed streams for any fixed base.
  uint64_t z = base + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace parallel
}  // namespace alem
