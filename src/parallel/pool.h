// Deterministic fixed-size thread-pool parallelism.
//
// The pool exists for the embarrassingly parallel hot paths of the
// benchmark — bootstrap-committee member fits, per-example committee voting
// and margin scoring, per-tree forest fits, batch prediction — under one
// hard contract: **results are bitwise-identical at every thread count,
// including 1**. The contract is enforced structurally:
//
//   * ParallelFor splits [begin, end) into fixed chunks of `grain`; the
//     decomposition depends only on (begin, end, grain), never on how many
//     workers exist or which worker runs which chunk.
//   * Randomized chunk work derives its stream from TaskSeed(base, index)
//     (or a per-member std::seed_seq at call sites), never from a shared
//     engine whose state would depend on execution order.
//   * Callers accumulate into disjoint per-chunk slots and merge in chunk
//     index order; the pool itself never reorders or merges results.
//
// There is no work stealing and no task graph: one blocking fork-join
// region at a time, chunks handed out by an atomic counter. Nested
// ParallelFor calls (from inside a pool worker) degrade to inline serial
// execution of the same chunk decomposition, so composition (e.g. a forest
// fit inside a committee-member fit) is safe and still deterministic.
//
// Thread count resolution: SetNumThreads() > ALEM_THREADS env > hardware
// concurrency; 1 selects the pure serial path (no pool threads, no extra
// trace spans — byte-identical behavior to the pre-parallel code).
//
// Observability: a ParallelFor with a nonempty `region` that actually runs
// on the pool emits an aggregate "<region>.parallel" span on the calling
// thread plus one "parallel.chunk" span (detail = region) on whichever
// worker executed each chunk, so traces show the fan-out per thread (see
// docs/parallelism.md).
//
// Utilization profiling: every pool worker keeps per-thread busy / idle /
// queue-wait nanosecond totals (a handful of relaxed atomics per chunk),
// and ParallelFor accumulates per-region chunk-duration imbalance stats
// while metrics are enabled. SnapshotPoolProfile() folds both into a
// PoolProfile; StampPoolProfile() writes it into a RunReport `pool`
// section plus `parallel.*` gauges. The pure serial path (threads=1) never
// creates a pool, so it carries zero accounting cost and reports stay
// byte-identical to pre-profiler ones.

#ifndef ALEM_PARALLEL_POOL_H_
#define ALEM_PARALLEL_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace alem {
namespace obs {
struct RunReport;
}  // namespace obs

namespace parallel {

// Fixed-size pool of worker threads executing one fork-join job at a time.
class ThreadPool {
 public:
  // Spawns exactly `num_threads` (>= 1) workers; the submitting thread
  // blocks in Run() and does not execute chunks itself.
  explicit ThreadPool(int num_threads);
  // Joins all workers. No job may be in flight.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Invokes fn(chunk) once for every chunk in [0, num_chunks), distributed
  // over the workers, and blocks until all chunks finished. If chunks
  // throw, the exception of the *lowest-indexed* throwing chunk is rethrown
  // (deterministic regardless of scheduling); the remaining chunks still
  // run. Throws std::logic_error when called from inside any pool worker:
  // nested submission could deadlock, so it is rejected outright (use
  // ParallelFor, which degrades to inline execution instead).
  void Run(size_t num_chunks, const std::function<void(size_t)>& fn);

  // True on a thread owned by any ThreadPool.
  static bool OnWorkerThread();

  // Per-pool busy / idle / queue-wait / wall totals in seconds, summed over
  // the workers. Safe to call while the pool is idle (between fork-join
  // regions); in-flight idle waits are extrapolated to "now".
  struct Totals {
    double busy_seconds = 0.0;
    double idle_seconds = 0.0;
    double queue_wait_seconds = 0.0;
    double worker_wall_seconds = 0.0;
  };
  Totals SnapshotAccounts() const;

 private:
  // Heap-allocated per-job state, shared with the workers so a straggler
  // that wakes after Run() returned still sees a consistent (stale) job
  // instead of racing the next one.
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t num_chunks = 0;
    std::atomic<size_t> next_chunk{0};
    std::atomic<size_t> completed{0};
    std::mutex error_mutex;
    std::exception_ptr error;
    size_t error_chunk = 0;
  };

  // Per-worker accounting slot. Cache-line aligned: the totals are bumped
  // with relaxed atomics on every chunk, and false sharing between workers
  // would show up as exactly the kind of overhead this profiler measures.
  struct alignas(64) WorkerAccount {
    std::atomic<uint64_t> busy_ns{0};        // Executing chunk bodies.
    std::atomic<uint64_t> idle_ns{0};        // Blocked waiting for a job.
    std::atomic<uint64_t> queue_ns{0};       // In a job but between chunks.
    std::atomic<uint64_t> start_ns{0};       // Worker wall-clock start.
    std::atomic<uint64_t> end_ns{0};         // Worker wall-clock end.
    std::atomic<uint64_t> idle_since_ns{0};  // Nonzero while blocked.
  };

  void WorkerLoop(size_t worker);
  // Executes chunks of `job` until none remain; returns the nanoseconds
  // spent inside chunk bodies (also added to account.busy_ns).
  uint64_t RunChunks(Job& job, WorkerAccount& account);

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Job> job_;  // Non-null while a job is in flight.
  uint64_t generation_ = 0;
  bool shutdown_ = false;
  std::unique_ptr<WorkerAccount[]> accounts_;  // One per worker.
  std::vector<std::thread> workers_;
};

// ---- Global pool configuration ----------------------------------------

// The thread count every ParallelFor uses. Resolved on first use from
// ALEM_THREADS (when set and >= 1) or std::thread::hardware_concurrency();
// always >= 1.
int NumThreads();

// Overrides the thread count (values < 1 clamp to 1; 1 = serial path).
// Rebuilds the lazily created global pool. Call from the main thread only,
// never while a ParallelFor is in flight.
void SetNumThreads(int num_threads);

// std::thread::hardware_concurrency(), never 0.
int HardwareThreads();

// ---- Pool utilization profile ------------------------------------------

// Chunk-duration imbalance statistics for one named ParallelFor region,
// accumulated across every pool execution of that region while metrics
// were enabled.
struct PoolRegionProfile {
  std::string name;
  uint64_t runs = 0;    // Pool-executed ParallelFor calls for this region.
  uint64_t chunks = 0;  // Total chunks across those runs.
  double min_chunk_seconds = 0.0;
  double max_chunk_seconds = 0.0;
  double mean_chunk_seconds = 0.0;
  double busy_seconds = 0.0;  // Sum of all chunk durations.
  double wall_seconds = 0.0;  // Sum of the region aggregate-span walls.
  // busy / (workers × wall): 1.0 = every worker busy for the whole region.
  double utilization = 0.0;
};

// Process-wide pool accounting: the live pool plus totals folded in from
// pools destroyed by SetNumThreads. Satisfies busy + idle + queue_wait ≈
// worker_wall (small accounting gaps at job handoff only).
struct PoolProfile {
  int workers = 0;  // Worker count of the live (or last) pool.
  double busy_seconds = 0.0;
  double idle_seconds = 0.0;
  double queue_wait_seconds = 0.0;
  double worker_wall_seconds = 0.0;
  double utilization = 0.0;  // busy / worker_wall, 0 when wall is 0.
  std::vector<PoolRegionProfile> regions;  // Sorted by name.

  // True once any pool worker has run; false on the pure serial path.
  bool engaged() const { return worker_wall_seconds > 0.0; }
};

PoolProfile SnapshotPoolProfile();

// Discards all accounting — folded totals, region stats, and the live pool
// (lazily rebuilt on the next ParallelFor). Test isolation only; never
// call while a ParallelFor is in flight.
void ResetPoolProfile();

// Number of pool workers executing a chunk body right now (telemetry's
// pool-occupancy series).
int ActiveWorkers();

// Writes SnapshotPoolProfile() into the report's `pool` section and
// publishes `parallel.*` gauges, but only when the pool actually engaged —
// a threads=1 run keeps its report byte-identical. Call before
// obs::StampObservability so the gauges land in the same report.
void StampPoolProfile(obs::RunReport* report);

// ---- Deterministic parallel-for ----------------------------------------

// Number of chunks ParallelFor(begin, end, grain, ...) executes. Exposed so
// callers can pre-size per-chunk accumulation slots that match the
// decomposition exactly.
inline size_t NumChunks(size_t begin, size_t end, size_t grain) {
  return end > begin ? (end - begin + grain - 1) / grain : 0;
}

// Chunk body: processes [begin, end) as chunk number `chunk`.
using ChunkFn = std::function<void(size_t begin, size_t end, size_t chunk)>;

// Runs fn over the fixed chunk decomposition of [begin, end) with chunk
// size `grain` (> 0; the final chunk may be short). Chunks run on the
// global pool when NumThreads() > 1, inline (in index order) otherwise or
// when already inside a pool worker. fn must only write to disjoint
// per-chunk state; merge in chunk index order afterwards.
void ParallelFor(size_t begin, size_t end, size_t grain, const ChunkFn& fn,
                 std::string_view region = "");

// Deterministic 64-bit stream seed for task `index` of a region keyed by
// `base` (splitmix64-style mix): independent of execution order and thread
// count, and distinct across indices for any fixed base.
uint64_t TaskSeed(uint64_t base, uint64_t index);

}  // namespace parallel
}  // namespace alem

#endif  // ALEM_PARALLEL_POOL_H_
