// Internal linkage between the dispatcher (backend.cc) and the per-backend
// translation units. Not installed; include only from src/kernels/.

#ifndef ALEM_KERNELS_KERNELS_INTERNAL_H_
#define ALEM_KERNELS_KERNELS_INTERNAL_H_

#include "kernels/backend.h"

namespace alem {
namespace kernels {
namespace internal {

// The portable reference table (kernel_scalar.cc). Always compiled.
extern const KernelOps kScalarOps;

#if defined(ALEM_KERNELS_HAVE_AVX2)
// AVX2 table (kernel_avx2.cc, built with -mavx2 -ffp-contract=off). Only
// dispatched to after __builtin_cpu_supports("avx2") says the host can run
// it — nothing outside that TU may execute AVX2 instructions.
extern const KernelOps kAvx2Ops;
#endif

}  // namespace internal
}  // namespace kernels
}  // namespace alem

#endif  // ALEM_KERNELS_KERNELS_INTERNAL_H_
